#include "kvcache/eviction_telemetry.h"

#include <algorithm>
#include <cmath>

#include "kvcache/kv_cache.h"

namespace kf::kv {

void EvictionTelemetry::begin_sequence(std::size_t n_layers,
                                       std::size_t n_heads,
                                       std::size_t span_tokens) {
  n_layers_ = n_layers;
  n_heads_ = n_heads;
  span_tokens_ = std::max<std::size_t>(1, span_tokens);
  heads_.assign(n_layers * n_heads, HeadHistogram{});
  position_totals_.fill(0);
  score_totals_.fill(0);
  decisions_ = 0;
  tokens_evicted_ = 0;
  tokens_kept_ = 0;
  score_sum_ = 0.0;
  score_min_ = 0.0;
  score_max_ = 0.0;
  score_samples_ = 0;
}

std::size_t EvictionTelemetry::score_bucket(double score) noexcept {
  if (!(score > 0.0)) {
    return 0;
  }
  const double b = 1.0 + std::floor(std::log2(score + 1.0));
  return std::min<std::size_t>(kScoreBuckets - 1,
                               static_cast<std::size_t>(b));
}

void EvictionTelemetry::record_decision(const KvCache& cache,
                                        std::size_t layer,
                                        std::span<const std::size_t> keep) {
  const std::size_t n = cache.size();
  if (layer >= n_layers_ || keep.size() >= n) {
    // Unshaped sink or nothing evicted: count the decision only.
    ++decisions_;
    tokens_kept_ += std::min<std::size_t>(keep.size(), n);
    return;
  }
  ++decisions_;
  tokens_kept_ += keep.size();
  tokens_evicted_ += n - keep.size();

  const auto positions = cache.original_positions();
  const std::size_t heads =
      std::min(n_heads_, cache.n_heads());  // grid was shaped for the model
  std::size_t next_keep = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (next_keep < keep.size() && keep[next_keep] == i) {
      ++next_keep;
      continue;
    }
    // Row i is evicted.
    const std::size_t pos = positions[i];
    const std::size_t bucket = std::min(
        kPositionBuckets - 1, pos * kPositionBuckets / span_tokens_);
    ++position_totals_[bucket];
    for (std::size_t h = 0; h < heads; ++h) {
      HeadHistogram& cell = heads_[layer * n_heads_ + h];
      const double score = cache.scores(h)[i];
      ++cell.positions[bucket];
      ++cell.scores[score_bucket(score)];
      if (cell.evicted == 0 || score < cell.score_min) {
        cell.score_min = score;
      }
      if (cell.evicted == 0 || score > cell.score_max) {
        cell.score_max = score;
      }
      ++cell.evicted;
      cell.score_sum += score;
      ++score_totals_[score_bucket(score)];
      if (score_samples_ == 0 || score < score_min_) score_min_ = score;
      if (score_samples_ == 0 || score > score_max_) score_max_ = score;
      score_sum_ += score;
      ++score_samples_;
    }
  }
}

EvictionSummary EvictionTelemetry::summary() const {
  EvictionSummary s;
  s.decisions = decisions_;
  s.tokens_evicted = tokens_evicted_;
  s.tokens_kept = tokens_kept_;
  s.position_counts = position_totals_;
  if (score_samples_ == 0) {
    return s;
  }
  s.score_min = score_min_;
  s.score_max = score_max_;
  s.score_mean = score_sum_ / static_cast<double>(score_samples_);
  // Nearest-rank walk over the log sketch; a bucket's representative is
  // its upper bound (2^b - 1), clamped into the exact extremes.
  const auto sketch_percentile = [&](double q) {
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(score_samples_))));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kScoreBuckets; ++b) {
      cumulative += score_totals_[b];
      if (cumulative >= rank) {
        const double upper =
            b == 0 ? 0.0 : std::exp2(static_cast<double>(b)) - 1.0;
        return std::clamp(upper, score_min_, score_max_);
      }
    }
    return score_max_;
  };
  s.score_p10 = sketch_percentile(0.10);
  s.score_p50 = sketch_percentile(0.50);
  s.score_p90 = sketch_percentile(0.90);
  return s;
}

void EvictionTelemetry::merge(const EvictionTelemetry& other) {
  if (other.heads_.empty() && other.decisions_ == 0) {
    return;
  }
  if (other.n_layers_ > n_layers_ || other.n_heads_ > n_heads_) {
    // Regrow to the union shape, remapping existing cells.
    const std::size_t new_layers = std::max(n_layers_, other.n_layers_);
    const std::size_t new_heads = std::max(n_heads_, other.n_heads_);
    std::vector<HeadHistogram> grown(new_layers * new_heads,
                                     HeadHistogram{});
    for (std::size_t l = 0; l < n_layers_; ++l) {
      for (std::size_t h = 0; h < n_heads_; ++h) {
        grown[l * new_heads + h] = heads_[l * n_heads_ + h];
      }
    }
    heads_ = std::move(grown);
    n_layers_ = new_layers;
    n_heads_ = new_heads;
  }
  span_tokens_ = std::max(span_tokens_, other.span_tokens_);
  for (std::size_t l = 0; l < other.n_layers_; ++l) {
    for (std::size_t h = 0; h < other.n_heads_; ++h) {
      HeadHistogram& dst = heads_[l * n_heads_ + h];
      const HeadHistogram& src = other.heads_[l * other.n_heads_ + h];
      if (src.evicted == 0) continue;
      for (std::size_t b = 0; b < kPositionBuckets; ++b) {
        dst.positions[b] += src.positions[b];
      }
      for (std::size_t b = 0; b < kScoreBuckets; ++b) {
        dst.scores[b] += src.scores[b];
      }
      if (dst.evicted == 0 || src.score_min < dst.score_min) {
        dst.score_min = src.score_min;
      }
      if (dst.evicted == 0 || src.score_max > dst.score_max) {
        dst.score_max = src.score_max;
      }
      dst.evicted += src.evicted;
      dst.score_sum += src.score_sum;
    }
  }
  for (std::size_t b = 0; b < kPositionBuckets; ++b) {
    position_totals_[b] += other.position_totals_[b];
  }
  for (std::size_t b = 0; b < kScoreBuckets; ++b) {
    score_totals_[b] += other.score_totals_[b];
  }
  decisions_ += other.decisions_;
  tokens_evicted_ += other.tokens_evicted_;
  tokens_kept_ += other.tokens_kept_;
  if (other.score_samples_ > 0) {
    if (score_samples_ == 0 || other.score_min_ < score_min_) {
      score_min_ = other.score_min_;
    }
    if (score_samples_ == 0 || other.score_max_ > score_max_) {
      score_max_ = other.score_max_;
    }
    score_sum_ += other.score_sum_;
    score_samples_ += other.score_samples_;
  }
}

}  // namespace kf::kv
