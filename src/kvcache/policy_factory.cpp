#include "kvcache/policy_factory.h"

#include <stdexcept>

#include "kvcache/policies/full.h"
#include "kvcache/policies/h2o.h"
#include "kvcache/policies/key_attention.h"
#include "kvcache/policies/random_evict.h"
#include "kvcache/policies/streaming_llm.h"
#include "kvcache/policies/window.h"

namespace kf::kv {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFull: return "full";
    case PolicyKind::kWindow: return "window";
    case PolicyKind::kDilatedWindow: return "dilated_window";
    case PolicyKind::kRandom: return "random";
    case PolicyKind::kKeyAttention: return "key_attention";
    case PolicyKind::kH2O: return "h2o";
    case PolicyKind::kStreamingLLM: return "streaming_llm";
    case PolicyKind::kKeyformer: return "keyformer";
  }
  return "unknown";
}

PolicyKind parse_policy_kind(const std::string& name) {
  if (name == "full") return PolicyKind::kFull;
  if (name == "window") return PolicyKind::kWindow;
  if (name == "dilated_window") return PolicyKind::kDilatedWindow;
  if (name == "random") return PolicyKind::kRandom;
  if (name == "key_attention") return PolicyKind::kKeyAttention;
  if (name == "h2o") return PolicyKind::kH2O;
  if (name == "streaming_llm") return PolicyKind::kStreamingLLM;
  if (name == "keyformer") return PolicyKind::kKeyformer;
  throw std::invalid_argument("unknown policy kind: " + name);
}

std::unique_ptr<EvictionPolicy> make_policy(const PolicyConfig& config) {
  switch (config.kind) {
    case PolicyKind::kFull:
      return std::make_unique<FullAttentionPolicy>();
    case PolicyKind::kWindow:
      return std::make_unique<WindowPolicy>(0);
    case PolicyKind::kDilatedWindow:
      return std::make_unique<WindowPolicy>(config.dilation);
    case PolicyKind::kRandom:
      return std::make_unique<RandomEvictPolicy>(config.seed);
    case PolicyKind::kKeyAttention:
      return std::make_unique<KeyAttentionPolicy>();
    case PolicyKind::kH2O:
      return std::make_unique<H2OPolicy>(config.h2o_damping);
    case PolicyKind::kStreamingLLM:
      return std::make_unique<StreamingLlmPolicy>(config.n_sinks);
    case PolicyKind::kKeyformer:
      return std::make_unique<KeyformerPolicy>(config.keyformer);
  }
  throw std::invalid_argument("unhandled policy kind");
}

std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind) {
  PolicyConfig config;
  config.kind = kind;
  return make_policy(config);
}

}  // namespace kf::kv
