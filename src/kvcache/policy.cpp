#include "kvcache/policy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "kvcache/eviction_telemetry.h"

namespace kf::kv {

void EvictionPolicy::compact_cache(const PolicyContext& ctx,
                                   std::span<const std::size_t> keep) {
  if (eviction_sink_ != nullptr) {
    eviction_sink_->record_decision(*ctx.cache, ctx.layer, keep);
  }
  ctx.cache->compact(keep);
}

CacheBudget make_budget(std::size_t prompt_len, double cache_ratio,
                        double recent_ratio) {
  CacheBudget b;
  if (cache_ratio <= 0.0 || cache_ratio >= 1.0) {
    return b;  // unlimited: full attention
  }
  const double raw_k =
      std::ceil(cache_ratio * static_cast<double>(prompt_len));
  b.max_tokens = std::max<std::size_t>(4, static_cast<std::size_t>(raw_k));
  b.max_tokens = std::min(b.max_tokens, prompt_len);
  const double raw_w =
      std::round(recent_ratio * static_cast<double>(b.max_tokens));
  b.recent_window = static_cast<std::size_t>(std::max(1.0, raw_w));
  if (b.max_tokens > 1) {
    b.recent_window = std::min(b.recent_window, b.max_tokens - 1);
  } else {
    b.recent_window = b.max_tokens;
  }
  return b;
}

std::vector<std::size_t> keep_topk_plus_recent(std::span<const double> scores,
                                               std::size_t n,
                                               std::size_t prefix_len,
                                               std::size_t keep_count) {
  assert(prefix_len <= n && scores.size() >= prefix_len);
  keep_count = std::min(keep_count, prefix_len);

  std::vector<std::size_t> order(prefix_len);
  for (std::size_t i = 0; i < prefix_len; ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + keep_count, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(keep_count);
  std::sort(order.begin(), order.end());

  std::vector<std::size_t> keep;
  keep.reserve(keep_count + (n - prefix_len));
  keep.insert(keep.end(), order.begin(), order.end());
  for (std::size_t i = prefix_len; i < n; ++i) keep.push_back(i);
  return keep;
}

std::vector<double> head_aggregated_scores(const KvCache& cache) {
  std::vector<double> total(cache.size(), 0.0);
  for (std::size_t h = 0; h < cache.n_heads(); ++h) {
    const auto s = cache.scores(h);
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += s[i];
  }
  return total;
}

}  // namespace kf::kv
