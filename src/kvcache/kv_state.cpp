#include "kvcache/kv_state.h"

#include "mem/paged_kv_cache.h"

namespace kf::kv {

SequenceKvState::SequenceKvState(std::size_t n_layers, std::size_t n_heads,
                                 std::size_t d_head,
                                 std::size_t capacity_hint) {
  caches_.reserve(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    caches_.push_back(
        std::make_unique<ContiguousKvCache>(n_heads, d_head, capacity_hint));
  }
}

SequenceKvState::SequenceKvState(mem::BlockPool& pool, std::size_t shard,
                                 std::size_t n_layers) {
  caches_.reserve(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    caches_.push_back(std::make_unique<mem::PagedKvCache>(pool, shard));
  }
}

std::size_t SequenceKvState::total_tokens() const noexcept {
  std::size_t total = 0;
  for (const auto& c : caches_) total += c->size();
  return total;
}

std::size_t SequenceKvState::max_layer_tokens() const noexcept {
  std::size_t peak = 0;
  for (const auto& c : caches_) peak = c->size() > peak ? c->size() : peak;
  return peak;
}

bool SequenceKvState::matches(std::size_t n_layers, std::size_t n_heads,
                              std::size_t d_head) const noexcept {
  if (caches_.size() != n_layers) return false;
  for (const auto& c : caches_) {
    if (c->n_heads() != n_heads || c->d_head() != d_head) return false;
  }
  return true;
}

bool SequenceKvState::empty() const noexcept {
  for (const auto& c : caches_) {
    if (!c->empty()) return false;
  }
  return true;
}

void SequenceKvState::clear() {
  for (auto& c : caches_) c->clear();
}

}  // namespace kf::kv
