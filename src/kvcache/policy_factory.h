// Constructs eviction policies from a declarative config — the single
// entry point used by examples, benches, and the experiment harness.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "kvcache/policies/keyformer.h"
#include "kvcache/policy.h"

namespace kf::kv {

enum class PolicyKind {
  kFull,
  kWindow,
  kDilatedWindow,
  kRandom,
  kKeyAttention,
  kH2O,
  kStreamingLLM,
  kKeyformer,
};

std::string to_string(PolicyKind kind);

/// Parses "full", "window", "dilated_window", "random", "key_attention",
/// "h2o", "streaming_llm", or "keyformer". Throws std::invalid_argument on
/// unknown names.
PolicyKind parse_policy_kind(const std::string& name);

/// Declarative policy description.
struct PolicyConfig {
  PolicyKind kind = PolicyKind::kKeyformer;
  std::size_t dilation = 1;        ///< dilated window stride - 1
  std::size_t n_sinks = 4;         ///< StreamingLLM attention sinks
  double h2o_damping = 1.0;        ///< Fig 5 damping (H2O only)
  KeyformerConfig keyformer;       ///< Keyformer score configuration
  std::uint64_t seed = 42;         ///< random policy seed
};

/// Builds the policy. The returned object carries no budget yet; callers
/// set it per sequence via set_budget(make_budget(...)).
std::unique_ptr<EvictionPolicy> make_policy(const PolicyConfig& config);

/// Convenience: default-configured policy of the given kind.
std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind);

}  // namespace kf::kv
