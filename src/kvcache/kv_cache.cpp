#include "kvcache/kv_cache.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace kf::kv {

// ---------------------------------------------------------------------------
// KvCache: metadata + validation shared by every storage implementation.

KvCache::KvCache(std::size_t n_heads, std::size_t d_head)
    : n_heads_(n_heads), d_head_(d_head), scores_(n_heads) {
  if (n_heads == 0 || d_head == 0) {
    throw std::invalid_argument("KvCache requires n_heads > 0 and d_head > 0");
  }
}

void KvCache::append(std::span<const float> k_row,
                     std::span<const float> v_row, std::size_t original_pos) {
  if (k_row.size() != row_width() || v_row.size() != row_width()) {
    throw std::invalid_argument("KvCache::append: row width mismatch");
  }
  if (!positions_.empty() && original_pos <= positions_.back()) {
    throw std::invalid_argument(
        "KvCache::append: original positions must be strictly increasing");
  }
  append_rows(k_row, v_row);  // size() is still the new token's index here
  positions_.push_back(original_pos);
  for (auto& s : scores_) s.push_back(0.0);
}

std::vector<float> KvCache::key_row(std::size_t idx) const {
  assert(idx < size());
  std::vector<float> row(row_width());
  for (std::size_t h = 0; h < n_heads_; ++h) {
    const auto head = key_head(idx, h);
    std::copy(head.begin(), head.end(), row.begin() + h * d_head_);
  }
  return row;
}

std::vector<float> KvCache::value_row(std::size_t idx) const {
  assert(idx < size());
  std::vector<float> row(row_width());
  for (std::size_t h = 0; h < n_heads_; ++h) {
    const auto head = value_head(idx, h);
    std::copy(head.begin(), head.end(), row.begin() + h * d_head_);
  }
  return row;
}

std::size_t KvCache::original_position(std::size_t idx) const {
  assert(idx < size());
  return positions_[idx];
}

std::span<double> KvCache::scores(std::size_t head) {
  assert(head < n_heads_);
  return scores_[head];
}

std::span<const double> KvCache::scores(std::size_t head) const {
  assert(head < n_heads_);
  return scores_[head];
}

void KvCache::add_score(std::size_t head, std::size_t idx, double v) {
  assert(head < n_heads_ && idx < size());
  scores_[head][idx] += v;
}

void KvCache::damp_scores(double factor) {
  for (auto& per_head : scores_) {
    for (double& s : per_head) s *= factor;
  }
}

double KvCache::total_score(std::size_t idx) const {
  assert(idx < size());
  double total = 0.0;
  for (const auto& per_head : scores_) total += per_head[idx];
  return total;
}

void KvCache::compact(std::span<const std::size_t> keep) {
  // Validate once; storage gathers can then move rows without re-checking.
  std::size_t prev = 0;
  for (std::size_t j = 0; j < keep.size(); ++j) {
    const std::size_t idx = keep[j];
    if (idx >= size()) {
      throw std::out_of_range("KvCache::compact: keep index out of range");
    }
    if (j > 0 && idx <= prev) {
      throw std::invalid_argument(
          "KvCache::compact: keep indices must be strictly ascending");
    }
    prev = idx;
  }
  compact_rows(keep);
  std::size_t out = 0;
  for (const std::size_t idx : keep) {
    if (idx != out) {
      positions_[out] = positions_[idx];
      for (auto& per_head : scores_) per_head[out] = per_head[idx];
    }
    ++out;
  }
  positions_.resize(out);
  for (auto& per_head : scores_) per_head.resize(out);
}

void KvCache::clear() {
  clear_rows();
  positions_.clear();
  for (auto& per_head : scores_) per_head.clear();
}

void KvCache::seed_metadata(std::span<const std::size_t> positions,
                            std::span<const std::vector<double>> scores) {
  if (!positions_.empty()) {
    throw std::logic_error("KvCache::seed_metadata requires an empty cache");
  }
  if (scores.size() != n_heads_) {
    throw std::invalid_argument(
        "KvCache::seed_metadata: one score vector per head required");
  }
  for (const auto& per_head : scores) {
    if (per_head.size() != positions.size()) {
      throw std::invalid_argument(
          "KvCache::seed_metadata: score length must match positions");
    }
  }
  for (std::size_t i = 1; i < positions.size(); ++i) {
    if (positions[i] <= positions[i - 1]) {
      throw std::invalid_argument(
          "KvCache::seed_metadata: positions must be strictly increasing");
    }
  }
  positions_.assign(positions.begin(), positions.end());
  for (std::size_t h = 0; h < n_heads_; ++h) scores_[h] = scores[h];
}

// ---------------------------------------------------------------------------
// ContiguousKvCache: one private head-major arena.

ContiguousKvCache::ContiguousKvCache(std::size_t n_heads, std::size_t d_head,
                                     std::size_t capacity_hint)
    : KvCache(n_heads, d_head) {
  if (capacity_hint > 0) ensure_capacity(capacity_hint);
}

void ContiguousKvCache::ensure_capacity(std::size_t need) {
  if (need <= capacity_) return;
  // Geometric growth: at least double every reallocation, so an append
  // stream costs O(log n) full-segment copies, not O(n).
  std::size_t new_cap = std::max({need, capacity_ * 2, std::size_t{16}});
  // Round the per-head stride up so capacity * d_head is a multiple of
  // kSimdAlign floats: with the arena base 64-byte aligned, every head's
  // segment then starts on an alignment boundary too.
  const std::size_t align_floats = kSimdAlign / sizeof(float);
  const std::size_t mult = align_floats / std::gcd(d_head(), align_floats);
  new_cap = (new_cap + mult - 1) / mult * mult;
  AlignedVector<float> new_keys(n_heads() * new_cap * d_head());
  AlignedVector<float> new_values(n_heads() * new_cap * d_head());
  assert(is_simd_aligned(new_keys.data()) &&
         is_simd_aligned(new_values.data()));
  const std::size_t live = size() * d_head();
  for (std::size_t h = 0; h < n_heads(); ++h) {
    std::copy_n(keys_.data() + h * capacity_ * d_head(), live,
                new_keys.data() + h * new_cap * d_head());
    std::copy_n(values_.data() + h * capacity_ * d_head(), live,
                new_values.data() + h * new_cap * d_head());
  }
  keys_ = std::move(new_keys);
  values_ = std::move(new_values);
  if (capacity_ > 0) ++reallocations_;  // first sizing is not a *re*alloc
  capacity_ = new_cap;
}

void ContiguousKvCache::append_rows(std::span<const float> k_row,
                                    std::span<const float> v_row) {
  const std::size_t t = size();
  ensure_capacity(t + 1);
  for (std::size_t h = 0; h < n_heads(); ++h) {
    const std::size_t dst = (h * capacity_ + t) * d_head();
    std::copy_n(k_row.data() + h * d_head(), d_head(), keys_.data() + dst);
    std::copy_n(v_row.data() + h * d_head(), d_head(), values_.data() + dst);
  }
}

std::span<const float> ContiguousKvCache::key_head(std::size_t idx,
                                                   std::size_t head) const {
  assert(idx < size() && head < n_heads());
  return {keys_.data() + (head * capacity_ + idx) * d_head(), d_head()};
}

std::span<const float> ContiguousKvCache::value_head(std::size_t idx,
                                                     std::size_t head) const {
  assert(idx < size() && head < n_heads());
  return {values_.data() + (head * capacity_ + idx) * d_head(), d_head()};
}

KvSegment ContiguousKvCache::segment(std::size_t head, std::size_t s) const {
  assert(head < n_heads() && s < segment_count());
  (void)s;
  KvSegment seg;
  seg.keys = keys_.data() + head * capacity_ * d_head();
  seg.values = values_.data() + head * capacity_ * d_head();
  seg.first = 0;
  seg.count = size();
  return seg;
}

std::span<const float> ContiguousKvCache::keys_head(std::size_t head) const {
  assert(head < n_heads());
  return {keys_.data() + head * capacity_ * d_head(), size() * d_head()};
}

std::span<const float> ContiguousKvCache::values_head(std::size_t head) const {
  assert(head < n_heads());
  return {values_.data() + head * capacity_ * d_head(), size() * d_head()};
}

void ContiguousKvCache::compact_rows(std::span<const std::size_t> keep) {
  // Head-major gather: within each head's contiguous segment, move the kept
  // d_head-wide rows forward. Source index >= destination index always, so
  // rows never overlap.
  for (std::size_t h = 0; h < n_heads(); ++h) {
    float* kbase = keys_.data() + h * capacity_ * d_head();
    float* vbase = values_.data() + h * capacity_ * d_head();
    std::size_t out = 0;
    for (const std::size_t idx : keep) {
      if (idx != out) {
        std::copy_n(kbase + idx * d_head(), d_head(), kbase + out * d_head());
        std::copy_n(vbase + idx * d_head(), d_head(), vbase + out * d_head());
      }
      ++out;
    }
  }
}

}  // namespace kf::kv
