#include "kvcache/kv_cache.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace kf::kv {

KvCache::KvCache(std::size_t n_heads, std::size_t d_head,
                 std::size_t capacity_hint)
    : n_heads_(n_heads), d_head_(d_head), scores_(n_heads) {
  if (n_heads == 0 || d_head == 0) {
    throw std::invalid_argument("KvCache requires n_heads > 0 and d_head > 0");
  }
  if (capacity_hint > 0) {
    keys_.reserve(capacity_hint * row_width());
    values_.reserve(capacity_hint * row_width());
    positions_.reserve(capacity_hint);
    for (auto& s : scores_) s.reserve(capacity_hint);
  }
}

void KvCache::append(std::span<const float> k_row,
                     std::span<const float> v_row, std::size_t original_pos) {
  if (k_row.size() != row_width() || v_row.size() != row_width()) {
    throw std::invalid_argument("KvCache::append: row width mismatch");
  }
  if (!positions_.empty() && original_pos <= positions_.back()) {
    throw std::invalid_argument(
        "KvCache::append: original positions must be strictly increasing");
  }
  keys_.insert(keys_.end(), k_row.begin(), k_row.end());
  values_.insert(values_.end(), v_row.begin(), v_row.end());
  positions_.push_back(original_pos);
  for (auto& s : scores_) s.push_back(0.0);
}

std::span<const float> KvCache::key(std::size_t idx) const {
  assert(idx < size());
  return {keys_.data() + idx * row_width(), row_width()};
}

std::span<const float> KvCache::value(std::size_t idx) const {
  assert(idx < size());
  return {values_.data() + idx * row_width(), row_width()};
}

std::span<const float> KvCache::key_head(std::size_t idx,
                                         std::size_t head) const {
  assert(idx < size() && head < n_heads_);
  return {keys_.data() + idx * row_width() + head * d_head_, d_head_};
}

std::span<const float> KvCache::value_head(std::size_t idx,
                                           std::size_t head) const {
  assert(idx < size() && head < n_heads_);
  return {values_.data() + idx * row_width() + head * d_head_, d_head_};
}

std::size_t KvCache::original_position(std::size_t idx) const {
  assert(idx < size());
  return positions_[idx];
}

std::span<double> KvCache::scores(std::size_t head) {
  assert(head < n_heads_);
  return scores_[head];
}

std::span<const double> KvCache::scores(std::size_t head) const {
  assert(head < n_heads_);
  return scores_[head];
}

void KvCache::add_score(std::size_t head, std::size_t idx, double v) {
  assert(head < n_heads_ && idx < size());
  scores_[head][idx] += v;
}

void KvCache::damp_scores(double factor) {
  for (auto& per_head : scores_) {
    for (double& s : per_head) s *= factor;
  }
}

double KvCache::total_score(std::size_t idx) const {
  assert(idx < size());
  double total = 0.0;
  for (const auto& per_head : scores_) total += per_head[idx];
  return total;
}

void KvCache::compact(std::span<const std::size_t> keep) {
  const std::size_t w = row_width();
  std::size_t out = 0;
  std::size_t prev = 0;
  for (const std::size_t idx : keep) {
    if (idx >= size()) {
      throw std::out_of_range("KvCache::compact: keep index out of range");
    }
    if (out > 0 && idx <= prev) {
      throw std::invalid_argument(
          "KvCache::compact: keep indices must be strictly ascending");
    }
    if (idx != out) {
      // idx > out, so source and destination rows never overlap; copy the
      // whole d_model-wide row contiguously (decode-loop hot path).
      std::copy_n(keys_.data() + idx * w, w, keys_.data() + out * w);
      std::copy_n(values_.data() + idx * w, w, values_.data() + out * w);
      positions_[out] = positions_[idx];
      for (auto& per_head : scores_) per_head[out] = per_head[idx];
    }
    prev = idx;
    ++out;
  }
  keys_.resize(out * w);
  values_.resize(out * w);
  positions_.resize(out);
  for (auto& per_head : scores_) per_head.resize(out);
}

void KvCache::clear() {
  keys_.clear();
  values_.clear();
  positions_.clear();
  for (auto& per_head : scores_) per_head.clear();
}

}  // namespace kf::kv
