// Per-layer Key/Value cache with the bookkeeping the paper's eviction
// policies need:
//   - K and V vectors per cached token and head,
//   - the *original* sequence position of every cached token (Table 3's
//     "Org Pos" mode and the recency ordering both rely on it),
//   - per-head accumulated score-function values f_theta that survive
//     compaction (Sections 3.3.2 and 2.3.1).
//
// Storage is *head-major*: each head owns one contiguous segment of
// [capacity, d_head] rows, so the decode hot path (per-head dot products,
// weighted-value accumulation, score scans, compaction) streams over
// contiguous memory instead of striding through token-major rows.
// `keys_head(h)` / `values_head(h)` expose a head's live segment as a
// [size, d_head] row-major span that can be fed straight into matvec.
//
// Rotation contract: the cache stores whatever the attention layer appends.
// Under RoPE with PositionMode::kOriginal the attention layer appends keys
// *pre-rotated* by their (immutable) original position, so no per-step
// re-rotation is needed; under PositionMode::kNew effective positions change
// with compaction, so keys are stored unrotated and rotated at attention
// time (see model/attention.h).
//
// The cache is always ordered by ascending original position; appends carry
// strictly increasing positions and compaction preserves order. "Recent w
// tokens" is therefore always the last w rows.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace kf::kv {

/// KV store for one decoder layer.
class KvCache {
 public:
  /// n_heads/d_head describe row layout; capacity_hint preallocates.
  KvCache(std::size_t n_heads, std::size_t d_head,
          std::size_t capacity_hint = 0);

  std::size_t n_heads() const noexcept { return n_heads_; }
  std::size_t d_head() const noexcept { return d_head_; }

  /// Width of one full K or V token row (= n_heads * d_head).
  std::size_t row_width() const noexcept { return n_heads_ * d_head_; }

  /// Number of cached tokens.
  std::size_t size() const noexcept { return positions_.size(); }

  bool empty() const noexcept { return positions_.empty(); }

  /// Appends one token's K and V rows (each row_width() floats, head-
  /// concatenated token-major order) with its original sequence position.
  /// Positions must be strictly increasing. The row is scattered into the
  /// per-head segments.
  void append(std::span<const float> k_row, std::span<const float> v_row,
              std::size_t original_pos);

  /// Full K row of cached token idx, gathered back to token-major
  /// (head-concatenated) order. Copies; intended for tests/diagnostics.
  std::vector<float> key_row(std::size_t idx) const;
  /// Full V row of cached token idx (token-major gather; copies).
  std::vector<float> value_row(std::size_t idx) const;

  /// Per-head, per-token slices (d_head contiguous floats).
  std::span<const float> key_head(std::size_t idx, std::size_t head) const;
  std::span<const float> value_head(std::size_t idx, std::size_t head) const;

  /// One head's whole live K segment: [size, d_head] row-major, contiguous.
  std::span<const float> keys_head(std::size_t head) const;
  /// One head's whole live V segment: [size, d_head] row-major, contiguous.
  std::span<const float> values_head(std::size_t head) const;

  /// Original sequence position of cached token idx.
  std::size_t original_position(std::size_t idx) const;
  /// All original positions, ascending.
  std::span<const std::size_t> original_positions() const noexcept {
    return positions_;
  }

  /// Accumulated score-function values for one head (length == size()).
  std::span<double> scores(std::size_t head);
  std::span<const double> scores(std::size_t head) const;

  /// Adds v to head's score at idx.
  void add_score(std::size_t head, std::size_t idx, double v);

  /// Multiplies every score of every head by factor (damping, Fig 5).
  void damp_scores(double factor);

  /// Sum of per-head scores at idx (head-aggregated ranking value).
  double total_score(std::size_t idx) const;

  /// Keeps exactly the rows in `keep` (indices into the current layout,
  /// strictly ascending); drops everything else. Scores and positions
  /// are gathered along with K/V rows.
  void compact(std::span<const std::size_t> keep);

  /// Removes all tokens and scores (capacity is retained).
  void clear();

 private:
  /// Grows the per-head segments to hold at least `need` tokens.
  void ensure_capacity(std::size_t need);

  std::size_t n_heads_;
  std::size_t d_head_;
  std::size_t capacity_ = 0;  ///< tokens per head segment
  /// Head-major: head h's token t lives at (h * capacity_ + t) * d_head_.
  std::vector<float> keys_;
  std::vector<float> values_;
  std::vector<std::size_t> positions_;
  std::vector<std::vector<double>> scores_;  // [n_heads][size]
};

}  // namespace kf::kv
