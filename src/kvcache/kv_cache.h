// Per-layer Key/Value cache with the bookkeeping the paper's eviction
// policies need:
//   - K and V vectors per cached token and head,
//   - the *original* sequence position of every cached token (Table 3's
//     "Org Pos" mode and the recency ordering both rely on it),
//   - per-head accumulated score-function values f_theta that survive
//     compaction (Sections 3.3.2 and 2.3.1).
//
// KvCache is the storage-agnostic interface: positions and scores (small
// metadata) live here, while K/V float storage is the derived class's
// business. Two implementations exist:
//   - ContiguousKvCache (this header): one private head-major arena of
//     [capacity, d_head] rows per head, geometric growth — the classic
//     single-sequence layout;
//   - mem::PagedKvCache (src/mem): a chain of fixed-size token blocks
//     allocated from a sharded BlockPool, so evicted memory returns to a
//     store other sequences draw from.
//
// The decode kernels never assume one contiguous span per head; they
// iterate *segments* — maximal contiguous [count, d_head] runs of a
// head's K (or V) rows. A contiguous cache exposes exactly one segment
// per head, a paged cache one per block. Per-row arithmetic is identical
// either way, so the two layouts are bit-exact (pinned by tests).
//
// Rotation contract: the cache stores whatever the attention layer appends.
// Under RoPE with PositionMode::kOriginal the attention layer appends keys
// *pre-rotated* by their (immutable) original position, so no per-step
// re-rotation is needed; under PositionMode::kNew effective positions change
// with compaction, so keys are stored unrotated and rotated at attention
// time (see model/attention.h).
//
// The cache is always ordered by ascending original position; appends carry
// strictly increasing positions and compaction preserves order. "Recent w
// tokens" is therefore always the last w rows.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/aligned.h"

namespace kf::kv {

/// One maximal contiguous run of a head's cached rows: `count` K rows and
/// `count` V rows of d_head floats each, row-major, covering cache indices
/// [first, first + count).
struct KvSegment {
  const float* keys = nullptr;
  const float* values = nullptr;
  std::size_t first = 0;
  std::size_t count = 0;
};

/// KV store interface for one decoder layer. Metadata (positions, scores)
/// and all validation live here; K/V float storage is virtual.
class KvCache {
 public:
  virtual ~KvCache() = default;

  std::size_t n_heads() const noexcept { return n_heads_; }
  std::size_t d_head() const noexcept { return d_head_; }

  /// Width of one full K or V token row (= n_heads * d_head).
  std::size_t row_width() const noexcept { return n_heads_ * d_head_; }

  /// Number of cached tokens.
  std::size_t size() const noexcept { return positions_.size(); }

  bool empty() const noexcept { return positions_.empty(); }

  /// Appends one token's K and V rows (each row_width() floats, head-
  /// concatenated token-major order) with its original sequence position.
  /// Positions must be strictly increasing. The row is scattered into the
  /// per-head storage.
  void append(std::span<const float> k_row, std::span<const float> v_row,
              std::size_t original_pos);

  /// Full K row of cached token idx, gathered back to token-major
  /// (head-concatenated) order. Copies; intended for tests/diagnostics.
  std::vector<float> key_row(std::size_t idx) const;
  /// Full V row of cached token idx (token-major gather; copies).
  std::vector<float> value_row(std::size_t idx) const;

  /// Per-head, per-token slices (d_head contiguous floats).
  virtual std::span<const float> key_head(std::size_t idx,
                                          std::size_t head) const = 0;
  virtual std::span<const float> value_head(std::size_t idx,
                                            std::size_t head) const = 0;

  /// Number of contiguous segments each head's rows split into (identical
  /// across heads; 0 when empty).
  virtual std::size_t segment_count() const noexcept = 0;
  /// Segment s of one head, ascending by `first`, jointly covering
  /// [0, size()).
  virtual KvSegment segment(std::size_t head, std::size_t s) const = 0;

  /// Original sequence position of cached token idx.
  std::size_t original_position(std::size_t idx) const;
  /// All original positions, ascending.
  std::span<const std::size_t> original_positions() const noexcept {
    return positions_;
  }

  /// Accumulated score-function values for one head (length == size()).
  std::span<double> scores(std::size_t head);
  std::span<const double> scores(std::size_t head) const;

  /// Adds v to head's score at idx.
  void add_score(std::size_t head, std::size_t idx, double v);

  /// Multiplies every score of every head by factor (damping, Fig 5).
  void damp_scores(double factor);

  /// Sum of per-head scores at idx (head-aggregated ranking value).
  double total_score(std::size_t idx) const;

  /// Keeps exactly the rows in `keep` (indices into the current layout,
  /// strictly ascending); drops everything else. Scores and positions
  /// are gathered along with K/V rows.
  void compact(std::span<const std::size_t> keep);

  /// Removes all tokens and scores (capacity is retained where the
  /// storage has any; a paged cache returns its blocks to the pool).
  void clear();

 protected:
  KvCache(std::size_t n_heads, std::size_t d_head);
  KvCache(const KvCache&) = default;
  KvCache& operator=(const KvCache&) = default;

  /// Storage hooks. append_rows runs with size() still the *new* token's
  /// index (metadata is pushed after); compact_rows gathers K/V only —
  /// the base gathers positions/scores; `keep` is pre-validated.
  virtual void append_rows(std::span<const float> k_row,
                           std::span<const float> v_row) = 0;
  virtual void compact_rows(std::span<const std::size_t> keep) = 0;
  virtual void clear_rows() = 0;

  /// Installs positions and per-head accumulated scores wholesale for rows
  /// the derived storage adopted without going through append() — a paged
  /// cache taking over a shared prefix chain. The cache must be empty;
  /// `scores` is one vector per head, each positions.size() long.
  void seed_metadata(std::span<const std::size_t> positions,
                     std::span<const std::vector<double>> scores);

 private:
  std::size_t n_heads_;
  std::size_t d_head_;
  std::vector<std::size_t> positions_;
  std::vector<std::vector<double>> scores_;  // [n_heads][size]
};

/// The classic single-arena implementation: each head owns one contiguous
/// segment of [capacity, d_head] rows, grown geometrically, so the decode
/// hot path streams over one run per head. `keys_head(h)` / `values_head(h)`
/// expose a head's whole live segment — the single-segment special case of
/// the KvSegment API.
class ContiguousKvCache final : public KvCache {
 public:
  /// n_heads/d_head describe row layout; capacity_hint preallocates.
  ContiguousKvCache(std::size_t n_heads, std::size_t d_head,
                    std::size_t capacity_hint = 0);

  ContiguousKvCache(const ContiguousKvCache&) = default;
  ContiguousKvCache& operator=(const ContiguousKvCache&) = default;

  std::span<const float> key_head(std::size_t idx,
                                  std::size_t head) const override;
  std::span<const float> value_head(std::size_t idx,
                                    std::size_t head) const override;

  std::size_t segment_count() const noexcept override {
    return empty() ? 0 : 1;
  }
  KvSegment segment(std::size_t head, std::size_t s) const override;

  /// One head's whole live K segment: [size, d_head] row-major, contiguous.
  std::span<const float> keys_head(std::size_t head) const;
  /// One head's whole live V segment: [size, d_head] row-major, contiguous.
  std::span<const float> values_head(std::size_t head) const;

  /// Tokens per head segment currently reserved.
  std::size_t capacity() const noexcept { return capacity_; }

  /// Full-arena reallocations performed so far. Growth is geometric
  /// (capacity at least doubles per reallocation), so a generation that
  /// starts from a capacity_hint covering its steady-state footprint pays
  /// zero reallocations, and a cold cache pays O(log size) — pinned by
  /// tests and relied on by the engine's capacity_hint derivation.
  std::size_t reallocations() const noexcept { return reallocations_; }

 protected:
  void append_rows(std::span<const float> k_row,
                   std::span<const float> v_row) override;
  void compact_rows(std::span<const std::size_t> keep) override;
  void clear_rows() override {}  // capacity retained; metadata clears size

 private:
  /// Grows the per-head segments to hold at least `need` tokens.
  void ensure_capacity(std::size_t need);

  std::size_t capacity_ = 0;  ///< tokens per head segment
  std::size_t reallocations_ = 0;
  /// Head-major: head h's token t lives at (h * capacity_ + t) * d_head_.
  /// 64-byte-aligned arenas with capacity_ rounded so every head's
  /// segment also starts on an alignment boundary (see ensure_capacity).
  AlignedVector<float> keys_;
  AlignedVector<float> values_;
};

}  // namespace kf::kv
