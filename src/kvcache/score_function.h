// Score functions f_theta for key-token identification (Sections 2.3.1,
// 3.1-3.3 and Table 4).
//
// A score function turns one head's unnormalized attention logits x_i
// (already scaled by 1/sqrt(d_head)) into per-token score increments that
// accumulate across decoding steps. Variants:
//
//   - AccumAttention (H2O): increment = softmax(x)_i. No noise, no
//     temperature. Optionally damped: f <- alpha * f before adding the new
//     increment (the damping study of Fig 5 / Section 2.3.3).
//   - Keyformer: increment = softmax((x + zeta) / tau)_i where zeta is a
//     per-slot logit adjustment (Gumbel by default; Gaussian / constant /
//     none for the Table 4 ablation) and tau follows the linear schedule of
//     Eq. 10: tau(t) = tau_init + t * (tau_end - tau_init) / T.
//
// Noise realizations zeta_i are *frozen per (seed, layer, head, original
// position)* via stateless hashing — Algorithm 1 draws zeta once and reuses
// it every step, and freezing keeps runs reproducible and order-independent.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace kf::kv {

/// Which distribution regularizes the unnormalized logits (Table 4).
enum class LogitAdjustment {
  kNone,      // y_i = x_i            (H2O-style)
  kConstant,  // y_i = x_i + c
  kGaussian,  // y_i = x_i + N(mu, sigma^2)
  kGumbel,    // y_i = x_i + Gumbel(0, 1)   (Keyformer)
};

/// Human-readable name ("gumbel", "gaussian", ...).
std::string to_string(LogitAdjustment a);

/// Temperature schedule (Eq. 10 and the Fig 16 static-vs-dynamic ablation).
struct TemperatureSchedule {
  double tau_init = 1.0;
  double tau_end = 2.0;
  bool dynamic = true;    ///< false: use tau_init for every step
  /// tau at decode step t of a generation of length T (t==0 covers the
  /// prompt phase, where Algorithm 1 uses tau_init).
  double at(std::size_t t, std::size_t total_steps) const;
};

/// Full configuration of a score function.
struct ScoreFunctionConfig {
  LogitAdjustment adjustment = LogitAdjustment::kGumbel;
  /// Constant c for kConstant (paper uses the Gumbel mean 0.5772).
  double constant = 0.57721566490153286;
  /// Gaussian parameters for kGaussian (paper matches Gumbel moments).
  double gaussian_mean = 0.57721566490153286;
  double gaussian_stddev = 1.28254983016186409;
  /// Scale applied to every logit adjustment. The paper uses the standard
  /// Gumbel against 7B-model logits (range ~±15); this reproduction's
  /// logits span ~±6, so the default keeps the noise-to-signal ratio
  /// comparable.
  double noise_scale = 0.5;
  TemperatureSchedule temperature;
  /// Exponential damping factor alpha applied to accumulated scores before
  /// each new increment; 1.0 disables damping (Fig 5 sweeps 0.875..1.0).
  double damping = 1.0;
  std::uint64_t seed = 42;
};

/// Computes per-token score increments for one attention head.
class ScoreFunction {
 public:
  explicit ScoreFunction(ScoreFunctionConfig config);

  const ScoreFunctionConfig& config() const noexcept { return config_; }

  /// The frozen logit adjustment zeta for a cache slot (memoized).
  double noise(std::size_t layer, std::size_t head,
               std::size_t original_pos) const;

  /// Drops every memoized noise table. Policies call this at sequence
  /// start so memo memory stays bounded by one sequence's positions
  /// instead of growing across every sequence a long-lived process serves.
  /// Values are pure functions of (seed, layer, head, position), so
  /// resetting never changes results.
  void reset_noise();

 private:
  double compute_noise(std::size_t layer, std::size_t head,
                       std::size_t original_pos) const;

  /// Flat memo row for (layer, head), grown to cover at least
  /// `min_positions` entries (new entries hold the NaN sentinel).
  std::vector<double>& noise_table(std::size_t layer, std::size_t head,
                                   std::size_t min_positions) const;

 public:

  /// Computes increments f_i = softmax((x_i + zeta_i) / tau) for one head
  /// over the current cache contents.
  ///   logits            one query row, length == positions.size()
  ///   positions         original positions of the cached tokens
  ///   layer/head        identify the noise stream
  ///   t / total_steps   temperature schedule inputs
  /// Writes into `out` (same length as logits).
  void increments(std::span<const float> logits,
                  std::span<const std::size_t> positions, std::size_t layer,
                  std::size_t head, std::size_t t, std::size_t total_steps,
                  std::span<double> out) const;

 private:
  /// Memoization bounds: slots addressed beyond these limits (huge
  /// positions, exotic head/layer indices) skip the memo and recompute the
  /// stateless draw directly — same value every time, just not cached —
  /// so flat indexing can never be tricked into allocating per-key.
  static constexpr std::size_t kMaxTableLayers = 1024;
  static constexpr std::size_t kMaxTableHeads = 512;
  static constexpr std::size_t kMaxTablePositions = std::size_t{1} << 22;

  ScoreFunctionConfig config_;
  /// Frozen noise realizations are pure functions of (layer, head,
  /// position); memoized because they are re-read every decoding step.
  /// Layout: one flat vector<double> per (layer, head), indexed by original
  /// position — an O(1) array read on the hot path where the old
  /// unordered_map paid a hash + probe per (layer, head, position) read.
  /// NaN marks a not-yet-drawn slot. Policies are driven from a single
  /// thread, so no locking is needed.
  mutable std::vector<std::vector<std::vector<double>>> noise_tables_;
};

}  // namespace kf::kv
