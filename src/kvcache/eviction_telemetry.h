// Eviction-decision introspection: which tokens did a policy evict,
// where did they sit in the sequence, and how much accumulated score did
// they carry when they were dropped? This is the paper's fig-3 question
// ("key tokens are an emergent property — a small set of positions gets
// most of the attention") turned into a live serving surface: every
// compaction a policy executes is recorded here, so any serving run can
// report the position distribution of evicted tokens instead of only
// the offline sweep.
//
// Threading model: identical to PolicyTimings — one telemetry instance
// per sequence, written single-threaded by that sequence's policy inside
// the batched decode step's parallel_for worker, read by the engine loop
// after the step joins (and merged into an engine-lifetime aggregate at
// retirement, behind the engine's stats mutex). Never shared between
// concurrently-observed sequences.
//
// Recompute-based resume replays a preempted sequence's decode steps, so
// its evictions are recorded again — the counters report decisions
// *executed* (like EngineStats::resume_replayed_tokens), not unique
// tokens dropped.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace kf::kv {

class KvCache;

/// Per-sequence digest of eviction activity, attached to a serving
/// Response. Position buckets are fractions of the sequence's full span
/// (prompt + planned generation): bucket b covers original positions in
/// [b/16, (b+1)/16) of the span — a coarse fig-3 x-axis.
struct EvictionSummary {
  static constexpr std::size_t kPositionBuckets = 16;

  std::uint64_t decisions = 0;       ///< compaction events (one per layer hit)
  std::uint64_t tokens_evicted = 0;  ///< cache rows dropped, summed
  std::uint64_t tokens_kept = 0;     ///< cache rows retained at decisions
  /// Evicted-token counts by relative original position (each dropped row
  /// counted once per layer decision, not per head).
  std::array<std::uint64_t, kPositionBuckets> position_counts{};
  /// Head-aggregated accumulated score at the moment of eviction: exact
  /// extremes and mean, log-sketch percentiles (within one power-of-two
  /// bucket of the true value).
  double score_min = 0.0;
  double score_max = 0.0;
  double score_mean = 0.0;
  double score_p10 = 0.0;
  double score_p50 = 0.0;
  double score_p90 = 0.0;
};

/// Single-writer sink an EvictionPolicy records its keep/evict decisions
/// into (see EvictionPolicy::set_eviction_sink). Holds per-(layer,head)
/// histograms of evicted-token positions and score-at-eviction, plus the
/// scalar decision counters behind EvictionSummary.
class EvictionTelemetry {
 public:
  static constexpr std::size_t kPositionBuckets =
      EvictionSummary::kPositionBuckets;
  /// Score sketch: bucket 0 holds scores <= 0, bucket b >= 1 holds
  /// (2^(b-1) - 1, 2^b - 1] — log2-spaced over accumulated softmax mass.
  static constexpr std::size_t kScoreBuckets = 24;

  /// Histograms for one (layer, head).
  struct HeadHistogram {
    std::array<std::uint64_t, kPositionBuckets> positions{};
    std::array<std::uint64_t, kScoreBuckets> scores{};
    std::uint64_t evicted = 0;
    double score_sum = 0.0;
    double score_min = 0.0;
    double score_max = 0.0;
  };

  /// Shapes the per-(layer,head) grid and clears all counts.
  /// `span_tokens` is the full sequence span (prompt + planned decode
  /// tokens) the position buckets normalize against.
  void begin_sequence(std::size_t n_layers, std::size_t n_heads,
                      std::size_t span_tokens);

  /// Records one compaction decision for `layer` of `cache`, taken while
  /// the cache still holds its pre-compaction rows: every row index not
  /// in `keep` (sorted ascending) is recorded as evicted, bucketing its
  /// original position and its per-head accumulated score.
  void record_decision(const KvCache& cache, std::size_t layer,
                       std::span<const std::size_t> keep);

  std::uint64_t decisions() const noexcept { return decisions_; }
  std::uint64_t tokens_evicted() const noexcept { return tokens_evicted_; }
  std::uint64_t tokens_kept() const noexcept { return tokens_kept_; }
  std::size_t n_layers() const noexcept { return n_layers_; }
  std::size_t n_heads() const noexcept { return n_heads_; }

  /// The (layer, head) cell; indices must be within the begun shape.
  const HeadHistogram& head(std::size_t layer, std::size_t head) const {
    return heads_[layer * n_heads_ + head];
  }

  /// Evicted-position counts aggregated over layers (each dropped row
  /// counted once per layer decision).
  const std::array<std::uint64_t, kPositionBuckets>& position_totals()
      const noexcept {
    return position_totals_;
  }

  /// Distills the counters into the Response-facing digest.
  EvictionSummary summary() const;

  /// Accumulates `other` into this (the engine-lifetime aggregate);
  /// grows the grid if `other` is larger.
  void merge(const EvictionTelemetry& other);

 private:
  static std::size_t score_bucket(double score) noexcept;

  std::size_t n_layers_ = 0;
  std::size_t n_heads_ = 0;
  std::size_t span_tokens_ = 1;
  std::vector<HeadHistogram> heads_;  ///< [layer * n_heads_ + head]
  std::array<std::uint64_t, kPositionBuckets> position_totals_{};
  std::array<std::uint64_t, kScoreBuckets> score_totals_{};
  std::uint64_t decisions_ = 0;
  std::uint64_t tokens_evicted_ = 0;
  std::uint64_t tokens_kept_ = 0;
  double score_sum_ = 0.0;
  double score_min_ = 0.0;
  double score_max_ = 0.0;
  std::uint64_t score_samples_ = 0;
};

}  // namespace kf::kv
