#include "kvcache/score_function.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/rng.h"

namespace kf::kv {

std::string to_string(LogitAdjustment a) {
  switch (a) {
    case LogitAdjustment::kNone: return "none";
    case LogitAdjustment::kConstant: return "constant";
    case LogitAdjustment::kGaussian: return "gaussian";
    case LogitAdjustment::kGumbel: return "gumbel";
  }
  return "unknown";
}

double TemperatureSchedule::at(std::size_t t, std::size_t total_steps) const {
  if (!dynamic || total_steps == 0) return tau_init;
  // Eq. 10 anneals tau from tau_init to tau_end over T steps; steps past T
  // (e.g. generation overrunning the planned length) hold at tau_end rather
  // than extrapolating.
  if (t >= total_steps) return tau_end;
  const double delta = (tau_end - tau_init) / static_cast<double>(total_steps);
  return tau_init + static_cast<double>(t) * delta;
}

ScoreFunction::ScoreFunction(ScoreFunctionConfig config)
    : config_(config) {
  if (config_.temperature.tau_init <= 0.0 ||
      config_.temperature.tau_end <= 0.0) {
    throw std::invalid_argument("temperature must be positive");
  }
  if (config_.damping <= 0.0 || config_.damping > 1.0) {
    throw std::invalid_argument("damping must be in (0, 1]");
  }
}

std::size_t ScoreFunction::NoiseKeyHash::operator()(
    const NoiseKey& k) const noexcept {
  std::uint64_t h = hash_combine(k.layer, k.head);
  h = hash_combine(h, k.original_pos);
  return static_cast<std::size_t>(h);
}

double ScoreFunction::noise(std::size_t layer, std::size_t head,
                            std::size_t original_pos) const {
  if (config_.adjustment == LogitAdjustment::kNone) return 0.0;
  if (config_.adjustment == LogitAdjustment::kConstant) {
    return config_.noise_scale * config_.constant;
  }
  const NoiseKey key{layer, head, original_pos};
  const auto it = noise_cache_.find(key);
  if (it != noise_cache_.end()) return it->second;
  const double value = compute_noise(layer, head, original_pos);
  noise_cache_.emplace(key, value);
  return value;
}

double ScoreFunction::compute_noise(std::size_t layer, std::size_t head,
                                    std::size_t original_pos) const {
  switch (config_.adjustment) {
    case LogitAdjustment::kNone:
      return 0.0;
    case LogitAdjustment::kConstant:
      return config_.noise_scale * config_.constant;
    case LogitAdjustment::kGaussian:
      return config_.noise_scale *
             (config_.gaussian_mean +
              config_.gaussian_stddev *
                  stateless_normal({config_.seed, 0xA5A5ULL, layer, head,
                                    original_pos}));
    case LogitAdjustment::kGumbel:
      return config_.noise_scale *
             stateless_gumbel(
                 {config_.seed, 0x6B6BULL, layer, head, original_pos});
  }
  return 0.0;
}

void ScoreFunction::increments(std::span<const float> logits,
                               std::span<const std::size_t> positions,
                               std::size_t layer, std::size_t head,
                               std::size_t t, std::size_t total_steps,
                               std::span<double> out) const {
  assert(logits.size() == positions.size() && out.size() == logits.size());
  if (logits.empty()) return;
  const double tau = config_.temperature.at(t, total_steps);

  // Stable softmax of (x + zeta) / tau in double precision.
  double max_y = -1e300;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double y =
        static_cast<double>(logits[i]) + noise(layer, head, positions[i]);
    out[i] = y;
    max_y = y > max_y ? y : max_y;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::exp((out[i] - max_y) / tau);
    sum += out[i];
  }
  const double inv = 1.0 / sum;
  for (double& v : out) v *= inv;
}

}  // namespace kf::kv
