#include "kvcache/score_function.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/rng.h"

namespace kf::kv {

std::string to_string(LogitAdjustment a) {
  switch (a) {
    case LogitAdjustment::kNone: return "none";
    case LogitAdjustment::kConstant: return "constant";
    case LogitAdjustment::kGaussian: return "gaussian";
    case LogitAdjustment::kGumbel: return "gumbel";
  }
  return "unknown";
}

double TemperatureSchedule::at(std::size_t t, std::size_t total_steps) const {
  if (!dynamic || total_steps == 0) return tau_init;
  // Eq. 10 anneals tau from tau_init to tau_end over T steps; steps past T
  // (e.g. generation overrunning the planned length) hold at tau_end rather
  // than extrapolating.
  if (t >= total_steps) return tau_end;
  const double delta = (tau_end - tau_init) / static_cast<double>(total_steps);
  return tau_init + static_cast<double>(t) * delta;
}

ScoreFunction::ScoreFunction(ScoreFunctionConfig config)
    : config_(config) {
  if (config_.temperature.tau_init <= 0.0 ||
      config_.temperature.tau_end <= 0.0) {
    throw std::invalid_argument("temperature must be positive");
  }
  if (config_.damping <= 0.0 || config_.damping > 1.0) {
    throw std::invalid_argument("damping must be in (0, 1]");
  }
}

std::vector<double>& ScoreFunction::noise_table(
    std::size_t layer, std::size_t head, std::size_t min_positions) const {
  if (noise_tables_.size() <= layer) noise_tables_.resize(layer + 1);
  auto& heads = noise_tables_[layer];
  if (heads.size() <= head) heads.resize(head + 1);
  auto& table = heads[head];
  if (table.size() < min_positions) {
    table.resize(min_positions, std::numeric_limits<double>::quiet_NaN());
  }
  return table;
}

double ScoreFunction::noise(std::size_t layer, std::size_t head,
                            std::size_t original_pos) const {
  if (config_.adjustment == LogitAdjustment::kNone) return 0.0;
  if (config_.adjustment == LogitAdjustment::kConstant) {
    return config_.noise_scale * config_.constant;
  }
  if (layer >= kMaxTableLayers || head >= kMaxTableHeads ||
      original_pos >= kMaxTablePositions) {
    // Outside the memo bounds: recompute the stateless draw (identical
    // value every call, just uncached).
    return compute_noise(layer, head, original_pos);
  }
  auto& table = noise_table(layer, head, original_pos + 1);
  double& slot = table[original_pos];
  if (std::isnan(slot)) slot = compute_noise(layer, head, original_pos);
  return slot;
}

void ScoreFunction::reset_noise() { noise_tables_.clear(); }

double ScoreFunction::compute_noise(std::size_t layer, std::size_t head,
                                    std::size_t original_pos) const {
  switch (config_.adjustment) {
    case LogitAdjustment::kNone:
      return 0.0;
    case LogitAdjustment::kConstant:
      return config_.noise_scale * config_.constant;
    case LogitAdjustment::kGaussian:
      return config_.noise_scale *
             (config_.gaussian_mean +
              config_.gaussian_stddev *
                  stateless_normal({config_.seed, 0xA5A5ULL, layer, head,
                                    original_pos}));
    case LogitAdjustment::kGumbel:
      return config_.noise_scale *
             stateless_gumbel(
                 {config_.seed, 0x6B6BULL, layer, head, original_pos});
  }
  return 0.0;
}

void ScoreFunction::increments(std::span<const float> logits,
                               std::span<const std::size_t> positions,
                               std::size_t layer, std::size_t head,
                               std::size_t t, std::size_t total_steps,
                               std::span<double> out) const {
  assert(logits.size() == positions.size() && out.size() == logits.size());
  if (logits.empty()) return;
  const double tau = config_.temperature.at(t, total_steps);

  const bool stochastic = config_.adjustment == LogitAdjustment::kGaussian ||
                          config_.adjustment == LogitAdjustment::kGumbel;
  // Hot path: one table covering the largest position turns every per-slot
  // noise read into a flat array access. Cache positions ascend in
  // practice, but the table is sized from the actual maximum so an
  // unsorted span can never index past the end. Slots beyond the memo
  // bound fall back to the (identical) direct computation.
  std::vector<double>* table = nullptr;
  if (stochastic && layer < kMaxTableLayers && head < kMaxTableHeads) {
    std::size_t max_pos = 0;
    for (const std::size_t p : positions) max_pos = p > max_pos ? p : max_pos;
    if (max_pos < kMaxTablePositions) {
      table = &noise_table(layer, head, max_pos + 1);
    }
  }
  const double constant_noise =
      config_.adjustment == LogitAdjustment::kConstant
          ? config_.noise_scale * config_.constant
          : 0.0;

  // Stable softmax of (x + zeta) / tau in double precision.
  double max_y = -1e300;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    double z = constant_noise;
    if (stochastic) {
      if (table != nullptr) {
        double& slot = (*table)[positions[i]];
        if (std::isnan(slot)) slot = compute_noise(layer, head, positions[i]);
        z = slot;
      } else {
        z = noise(layer, head, positions[i]);
      }
    }
    const double y = static_cast<double>(logits[i]) + z;
    out[i] = y;
    max_y = y > max_y ? y : max_y;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::exp((out[i] - max_y) / tau);
    sum += out[i];
  }
  if (sum == 0.0) {  // fully masked row: no distribution, emit zeros
    for (double& v : out) v = 0.0;
    return;
  }
  const double inv = 1.0 / sum;
  for (double& v : out) v *= inv;
}

}  // namespace kf::kv
