// Eviction-policy interface shared by every KV-cache reduction scheme in
// the paper: Full, Window, Dilated Window, Random, Key Attention (top-k
// only), H2O, StreamingLLM, and Keyformer.
//
// Runtime contract (matches Algorithm 1's phases):
//   1. The model runs attention for a layer; for each head it produces the
//      scaled unnormalized logits x = QK^T/sqrt(d) and the post-softmax
//      probabilities over the *current* cache contents.
//   2. The runtime calls `observe` with those arrays. The policy updates
//      its accumulated score state and, if the cache exceeds its budget k,
//      selects a keep-set and compacts the cache to exactly k tokens.
//   3. Budgets are static for the whole generation: k tokens total,
//      w = recent window, k - w key tokens (Section 3.4).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kvcache/kv_cache.h"

namespace kf::kv {

class EvictionTelemetry;  // kvcache/eviction_telemetry.h

/// Static cache budget for one generation.
struct CacheBudget {
  std::size_t max_tokens = 0;     ///< k; 0 means unlimited (full attention)
  std::size_t recent_window = 0;  ///< w <= max_tokens
};

/// Derives the paper's budget from ratios: k = ceil(cache_ratio * prompt_len)
/// (floored at 4 so the smallest caches stay usable), w = round(recent_ratio
/// * k), clamped to [1, k-1] whenever k allows key tokens at all.
CacheBudget make_budget(std::size_t prompt_len, double cache_ratio,
                        double recent_ratio = 0.3);

/// Everything a policy may look at after one attention call for one layer.
struct PolicyContext {
  std::size_t layer = 0;
  std::size_t n_heads = 0;
  std::size_t n_queries = 0;  ///< rows processed (prompt_len during prefill)
  std::size_t key_len = 0;    ///< cache length the attention ran against
  /// Scaled unnormalized logits, layout [head][query][key]; entry (h,q,i) is
  /// x_i for query q. Causally masked entries hold -inf.
  std::span<const float> logits;
  /// Post-softmax probabilities, same layout; masked entries hold 0.
  std::span<const float> probs;
  bool is_prompt = false;
  std::size_t decode_step = 0;   ///< t in Algorithm 1 (0 during prompt)
  std::size_t total_steps = 0;   ///< T, the planned generation length
  KvCache* cache = nullptr;      ///< the layer's cache (never null)
};

/// Per-sequence info handed to policies before the prompt is processed.
struct SequenceInfo {
  std::size_t prompt_len = 0;
  std::size_t total_steps = 0;  ///< T
  std::size_t n_layers = 0;
  std::size_t n_heads = 0;
};

/// Wall-clock accumulator for the per-step policy-cost breakdown
/// (bench_decode_throughput): score accumulation vs keep-set selection +
/// compaction. Policies that don't distinguish phases may attribute all
/// their observe() time to evict_seconds.
struct PolicyTimings {
  double score_seconds = 0.0;
  double evict_seconds = 0.0;
};

/// Base class for all eviction policies.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// Identifier used in tables ("keyformer", "h2o", ...).
  virtual std::string name() const = 0;

  /// False for policies that never trim the cache regardless of budget
  /// (full attention). Serving admission uses this to charge such
  /// sequences their real prompt+gen growth instead of the budget.
  virtual bool evicts() const { return true; }

  /// Sets the static budget (call before begin_sequence).
  void set_budget(CacheBudget budget) { budget_ = budget; }
  const CacheBudget& budget() const noexcept { return budget_; }

  /// Resets per-sequence state. Default: stores the info.
  virtual void begin_sequence(const SequenceInfo& info) { sequence_ = info; }

  /// Observes one layer's attention output; may compact ctx.cache.
  virtual void observe(const PolicyContext& ctx) = 0;

  /// Prefix-cache hooks. A policy whose accumulated score state lives
  /// *outside* the KvCache (Keyformer's shared scope) exports that state
  /// at a prompt-prefix boundary — after observing exactly the first
  /// `prefix_len` prompt rows — so the serving engine can snapshot it into
  /// the prefix cache, and imports it when a later sequence adopts the
  /// prefix instead of prefilling it. Cache-resident scores travel with
  /// the cache itself, so the defaults are empty/no-op.
  virtual std::vector<double> export_score_state(std::size_t prefix_len) const {
    (void)prefix_len;
    return {};
  }
  virtual void import_score_state(std::span<const double> state) {
    (void)state;
  }

  /// Installs a timing sink (nullptr disables). Instrumented policies
  /// (Keyformer, H2O) split observe() time into score vs evict phases.
  void set_timing_sink(PolicyTimings* sink) { timings_sink_ = sink; }

  /// Installs an eviction-introspection sink (nullptr disables): every
  /// keep/evict decision this policy executes is recorded into it before
  /// the cache is compacted (see kvcache/eviction_telemetry.h). Same
  /// per-sequence, single-writer contract as the timing sink.
  void set_eviction_sink(EvictionTelemetry* sink) { eviction_sink_ = sink; }

 protected:
  PolicyTimings* timings_sink_ = nullptr;
  EvictionTelemetry* eviction_sink_ = nullptr;

  /// Records the decision into the eviction sink (when installed) and
  /// compacts `ctx.cache` to the sorted `keep` set — the one funnel every
  /// evicting policy's observe() routes its compaction through.
  void compact_cache(const PolicyContext& ctx,
                     std::span<const std::size_t> keep);
  /// True when the cache is over budget and eviction applies.
  bool over_budget(const KvCache& cache) const {
    return budget_.max_tokens > 0 && cache.size() > budget_.max_tokens;
  }

  CacheBudget budget_;
  SequenceInfo sequence_;
};

/// Selects `keep_count` indices with the highest `scores` from the index
/// range [0, prefix_len) and returns them merged (ascending) with the full
/// range [prefix_len, n). Deterministic tie-break: lower index wins.
std::vector<std::size_t> keep_topk_plus_recent(std::span<const double> scores,
                                               std::size_t n,
                                               std::size_t prefix_len,
                                               std::size_t keep_count);

/// Sum of per-head accumulated scores for each cached token.
std::vector<double> head_aggregated_scores(const KvCache& cache);

}  // namespace kf::kv
