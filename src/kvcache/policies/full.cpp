#include "kvcache/policies/full.h"

namespace kf::kv {

void FullAttentionPolicy::observe(const PolicyContext& ctx) {
  // Intentionally empty: full attention keeps every token. The context is
  // still received so that instrumentation (heatmaps, sparsity stats) can
  // wrap this policy without special cases.
  (void)ctx;
}

}  // namespace kf::kv
