// H2O — Heavy-Hitter Oracle (Zhang et al., 2023), the paper's main
// baseline. Score function f_theta(acc attn): accumulated post-softmax
// attention probability; keep = recent window w  ∪  top-(k-w) heavy
// hitters among the older tokens.
//
// An optional exponential damping factor alpha implements the Section
// 2.3.3 study (Fig 5): f <- alpha * f before each accumulation step;
// alpha == 1 is canonical H2O.
#pragma once

#include "kvcache/policy.h"

namespace kf::kv {

class H2OPolicy final : public EvictionPolicy {
 public:
  explicit H2OPolicy(double damping = 1.0);

  std::string name() const override { return "h2o"; }

  void observe(const PolicyContext& ctx) override;

  double damping() const noexcept { return damping_; }

 private:
  double damping_;
};

}  // namespace kf::kv
