#include "kvcache/policies/streaming_llm.h"

#include <algorithm>

namespace kf::kv {

void StreamingLlmPolicy::observe(const PolicyContext& ctx) {
  KvCache& cache = *ctx.cache;
  if (!over_budget(cache)) return;

  const std::size_t n = cache.size();
  const std::size_t k = budget_.max_tokens;

  std::vector<std::size_t> keep;
  keep.reserve(k);
  // Sinks are identified by *original* position < n_sinks so they stay
  // pinned even after many compactions.
  std::size_t sinks_kept = 0;
  for (std::size_t i = 0; i < n && sinks_kept < std::min(n_sinks_, k); ++i) {
    if (cache.original_position(i) < n_sinks_) {
      keep.push_back(i);
      ++sinks_kept;
    } else {
      break;  // positions ascend, no more sinks possible
    }
  }
  const std::size_t recent = k - sinks_kept;
  const std::size_t first_recent = n - std::min(recent, n);
  for (std::size_t i = std::max(first_recent, sinks_kept); i < n; ++i) {
    keep.push_back(i);
  }
  // Deduplicate the corner case where sinks overlap the recent range.
  keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
  compact_cache(ctx, keep);
}

}  // namespace kf::kv
