#include "kvcache/policies/random_evict.h"

#include <algorithm>

namespace kf::kv {

void RandomEvictPolicy::begin_sequence(const SequenceInfo& info) {
  EvictionPolicy::begin_sequence(info);
  rng_ = Rng(hash_combine(seed_, info.prompt_len));
}

void RandomEvictPolicy::observe(const PolicyContext& ctx) {
  KvCache& cache = *ctx.cache;
  if (!over_budget(cache)) return;

  const std::size_t n = cache.size();
  const std::size_t k = budget_.max_tokens;
  const std::size_t w = std::min(budget_.recent_window, k);
  const std::size_t prefix = n - std::min(w, n);
  const std::size_t keep_from_prefix = k - w;

  // Partial Fisher-Yates over the prefix indices.
  std::vector<std::size_t> idx(prefix);
  for (std::size_t i = 0; i < prefix; ++i) idx[i] = i;
  for (std::size_t i = 0; i < std::min(keep_from_prefix, prefix); ++i) {
    const std::size_t j = i + rng_.uniform_u64(prefix - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(std::min(keep_from_prefix, prefix));
  std::sort(idx.begin(), idx.end());
  for (std::size_t i = prefix; i < n; ++i) idx.push_back(i);
  compact_cache(ctx, idx);
}

}  // namespace kf::kv
