#include "kvcache/policies/window.h"

#include <algorithm>

namespace kf::kv {

void WindowPolicy::observe(const PolicyContext& ctx) {
  KvCache& cache = *ctx.cache;
  if (!over_budget(cache)) return;

  const std::size_t n = cache.size();
  const std::size_t k = budget_.max_tokens;
  std::vector<std::size_t> keep;
  keep.reserve(k);

  const std::size_t stride = dilation_ + 1;
  // Walk backwards from the newest token with the dilation stride.
  std::size_t collected = 0;
  for (std::size_t back = 0; collected < k && back < n; back += stride) {
    keep.push_back(n - 1 - back);
    ++collected;
  }
  // If the strided walk ran off the front before filling the budget (only
  // possible with dilation > 0), fill with the newest unclaimed tokens.
  if (collected < k) {
    std::vector<bool> taken(n, false);
    for (const std::size_t idx : keep) taken[idx] = true;
    for (std::size_t back = 0; collected < k && back < n; ++back) {
      const std::size_t idx = n - 1 - back;
      if (!taken[idx]) {
        keep.push_back(idx);
        taken[idx] = true;
        ++collected;
      }
    }
  }
  std::sort(keep.begin(), keep.end());
  compact_cache(ctx, keep);
}

}  // namespace kf::kv
