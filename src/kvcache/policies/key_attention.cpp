#include "kvcache/policies/key_attention.h"

#include <cassert>

namespace kf::kv {

void accumulate_attention_probs(const PolicyContext& ctx) {
  KvCache& cache = *ctx.cache;
  assert(ctx.key_len == cache.size());
  assert(ctx.probs.size() >= ctx.n_heads * ctx.n_queries * ctx.key_len);
  for (std::size_t h = 0; h < ctx.n_heads; ++h) {
    const auto scores = cache.scores(h);
    const float* base = ctx.probs.data() + h * ctx.n_queries * ctx.key_len;
    for (std::size_t q = 0; q < ctx.n_queries; ++q) {
      const float* row = base + q * ctx.key_len;
      for (std::size_t i = 0; i < ctx.key_len; ++i) {
        scores[i] += static_cast<double>(row[i]);
      }
    }
  }
}

void KeyAttentionPolicy::observe(const PolicyContext& ctx) {
  accumulate_attention_probs(ctx);
  KvCache& cache = *ctx.cache;
  if (!over_budget(cache)) return;

  const std::vector<double> total = head_aggregated_scores(cache);
  // No protected recent window: pure top-k over the whole cache.
  const auto keep = keep_topk_plus_recent(total, cache.size(), cache.size(),
                                          budget_.max_tokens);
  compact_cache(ctx, keep);
}

}  // namespace kf::kv
