#include "kvcache/policies/h2o.h"

#include <stdexcept>

#include "core/timing.h"
#include "kvcache/policies/key_attention.h"

namespace kf::kv {

H2OPolicy::H2OPolicy(double damping) : damping_(damping) {
  if (damping_ <= 0.0 || damping_ > 1.0) {
    throw std::invalid_argument("H2O damping must be in (0, 1]");
  }
}

void H2OPolicy::observe(const PolicyContext& ctx) {
  KvCache& cache = *ctx.cache;
  double t0 = timings_sink_ != nullptr ? now_seconds() : 0.0;
  if (damping_ < 1.0) cache.damp_scores(damping_);
  accumulate_attention_probs(ctx);
  if (timings_sink_ != nullptr) {
    timings_sink_->score_seconds += now_seconds() - t0;
    t0 = now_seconds();
  }
  if (!over_budget(cache)) return;

  const std::size_t n = cache.size();
  const std::size_t k = budget_.max_tokens;
  const std::size_t w = std::min(budget_.recent_window, k);
  const std::size_t prefix = n - std::min(w, n);

  const std::vector<double> total = head_aggregated_scores(cache);
  const auto keep = keep_topk_plus_recent(total, n, prefix, k - w);
  compact_cache(ctx, keep);
  if (timings_sink_ != nullptr) {
    timings_sink_->evict_seconds += now_seconds() - t0;
  }
}

}  // namespace kf::kv
