// Full attention: the gold-standard baseline. Nothing is ever evicted
// (Fig 2a); the KV cache grows with the sequence.
#pragma once

#include "kvcache/policy.h"

namespace kf::kv {

class FullAttentionPolicy final : public EvictionPolicy {
 public:
  std::string name() const override { return "full"; }
  bool evicts() const override { return false; }
  void observe(const PolicyContext& ctx) override;
};

}  // namespace kf::kv
