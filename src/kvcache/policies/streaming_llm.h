// StreamingLLM (Xiao et al., 2023) — the "attention sinks" comparison of
// Section 4.4.5 / Table 3: keep the first `n_sinks` tokens of the original
// sequence (default 4) plus the most recent k - n_sinks tokens.
#pragma once

#include "kvcache/policy.h"

namespace kf::kv {

class StreamingLlmPolicy final : public EvictionPolicy {
 public:
  explicit StreamingLlmPolicy(std::size_t n_sinks = 4) : n_sinks_(n_sinks) {}

  std::string name() const override { return "streaming_llm"; }

  void observe(const PolicyContext& ctx) override;

  std::size_t n_sinks() const noexcept { return n_sinks_; }

 private:
  std::size_t n_sinks_;
};

}  // namespace kf::kv
