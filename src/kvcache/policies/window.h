// Window attention (Fig 2b) and dilated window attention (Fig 2c).
//
// Window: keep the most recent k tokens. Dilated: starting from the newest
// token, keep every (dilation+1)-th token walking backwards until k tokens
// are collected — the fixed-stride sparse pattern of Child et al. (2019).
#pragma once

#include "kvcache/policy.h"

namespace kf::kv {

class WindowPolicy final : public EvictionPolicy {
 public:
  /// dilation == 0 reproduces plain sliding-window attention.
  explicit WindowPolicy(std::size_t dilation = 0) : dilation_(dilation) {}

  std::string name() const override {
    return dilation_ == 0 ? "window" : "dilated_window";
  }

  void observe(const PolicyContext& ctx) override;

  std::size_t dilation() const noexcept { return dilation_; }

 private:
  std::size_t dilation_;
};

}  // namespace kf::kv
