// Random eviction baseline (not in the paper's figures, but a useful lower
// bound for ablations): keep the recent window plus a uniformly random
// subset of the older tokens. Deterministic given the seed.
#pragma once

#include "core/rng.h"
#include "kvcache/policy.h"

namespace kf::kv {

class RandomEvictPolicy final : public EvictionPolicy {
 public:
  explicit RandomEvictPolicy(std::uint64_t seed = 42) : seed_(seed) {}

  std::string name() const override { return "random"; }

  void begin_sequence(const SequenceInfo& info) override;
  void observe(const PolicyContext& ctx) override;

 private:
  std::uint64_t seed_;
  Rng rng_{42};
};

}  // namespace kf::kv
