// "Key Attention" from Fig 3c: rank purely by accumulated attention score
// and keep the global top-k — *without* a guaranteed recent window. The
// paper uses this to show that key tokens alone (like recency alone) are
// insufficient, motivating the mixed approach.
#pragma once

#include "kvcache/policy.h"

namespace kf::kv {

class KeyAttentionPolicy final : public EvictionPolicy {
 public:
  std::string name() const override { return "key_attention"; }
  void observe(const PolicyContext& ctx) override;
};

/// Shared helper: adds the post-softmax attention probabilities of every
/// query row in `ctx` to the per-head accumulated scores of the cache.
/// This is the f_theta(acc attn) accumulation used by H2O and KeyAttention.
void accumulate_attention_probs(const PolicyContext& ctx);

}  // namespace kf::kv
