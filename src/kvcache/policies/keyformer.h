// Keyformer (Algorithm 1) — the paper's contribution.
//
// Per decoding step and per head, the score function adds
//   f(i) += softmax over cache of ((x_i + zeta_i) / tau)
// where zeta_i is frozen Gumbel noise per cache slot (configurable to
// Gaussian / constant / none for the Table 4 ablation) and tau follows the
// linear schedule tau_init -> tau_end over the generation (Eq. 10).
//
// Keep-set: the w most recent tokens plus the top-(k-w) tokens of the
// accumulated score over the older prefix.
//
// Accumulation modes (Section 4.4.1, Table 3):
//   - kPerLayer (paper default/winner): f_theta lives in each layer's
//     cache, per head; heads are aggregated only for ranking.
//   - kShared: one global f_theta indexed by original token position,
//     accumulated across every layer and head.
#pragma once

#include <vector>

#include "kvcache/policy.h"
#include "kvcache/score_function.h"

namespace kf::kv {

/// Where the accumulated score function lives.
enum class ScoreScope { kPerLayer, kShared };

struct KeyformerConfig {
  ScoreFunctionConfig score;
  ScoreScope scope = ScoreScope::kPerLayer;
};

class KeyformerPolicy final : public EvictionPolicy {
 public:
  explicit KeyformerPolicy(KeyformerConfig config = {});

  std::string name() const override { return "keyformer"; }

  void begin_sequence(const SequenceInfo& info) override;
  void observe(const PolicyContext& ctx) override;

  /// Shared-scope scores are per-policy (indexed by original position), so
  /// prefix adoption must carry them explicitly; per-layer scores ride in
  /// the caches and these hooks stay no-ops.
  std::vector<double> export_score_state(std::size_t prefix_len) const override;
  void import_score_state(std::span<const double> state) override;

  const KeyformerConfig& config() const noexcept { return config_; }

  /// Shared-mode accumulated scores indexed by original position
  /// (empty in per-layer mode). Exposed for tests and analysis benches.
  std::span<const double> shared_scores() const noexcept {
    return shared_scores_;
  }

 private:
  void accumulate(const PolicyContext& ctx);

  KeyformerConfig config_;
  ScoreFunction score_fn_;
  std::vector<double> shared_scores_;  // indexed by original position
  std::vector<double> increments_;     // scratch, one cache row
};

}  // namespace kf::kv
