#include "kvcache/policies/keyformer.h"

#include <algorithm>
#include <cassert>

#include "core/timing.h"

namespace kf::kv {

KeyformerPolicy::KeyformerPolicy(KeyformerConfig config)
    : config_(config), score_fn_(config.score) {}

void KeyformerPolicy::begin_sequence(const SequenceInfo& info) {
  EvictionPolicy::begin_sequence(info);
  // Bound memo memory to one sequence: in a long-lived server the noise
  // tables would otherwise accumulate every sequence's positions forever.
  score_fn_.reset_noise();
  shared_scores_.assign(
      config_.scope == ScoreScope::kShared
          ? info.prompt_len + info.total_steps + 1
          : 0,
      0.0);
}

std::vector<double> KeyformerPolicy::export_score_state(
    std::size_t prefix_len) const {
  if (config_.scope != ScoreScope::kShared) return {};
  const std::size_t n = std::min(prefix_len, shared_scores_.size());
  return {shared_scores_.begin(),
          shared_scores_.begin() + static_cast<long>(n)};
}

void KeyformerPolicy::import_score_state(std::span<const double> state) {
  if (config_.scope != ScoreScope::kShared) return;
  const std::size_t n = std::min(state.size(), shared_scores_.size());
  std::copy_n(state.begin(), n, shared_scores_.begin());
}

void KeyformerPolicy::accumulate(const PolicyContext& ctx) {
  KvCache& cache = *ctx.cache;
  assert(ctx.key_len == cache.size());
  const auto positions = cache.original_positions();
  increments_.resize(ctx.key_len);

  if (config_.score.damping < 1.0) cache.damp_scores(config_.score.damping);

  for (std::size_t h = 0; h < ctx.n_heads; ++h) {
    const float* base = ctx.logits.data() + h * ctx.n_queries * ctx.key_len;
    for (std::size_t q = 0; q < ctx.n_queries; ++q) {
      const std::span<const float> row(base + q * ctx.key_len, ctx.key_len);
      score_fn_.increments(row, positions, ctx.layer, h, ctx.decode_step,
                           ctx.total_steps, increments_);
      if (config_.scope == ScoreScope::kPerLayer) {
        const auto scores = cache.scores(h);
        for (std::size_t i = 0; i < ctx.key_len; ++i) {
          scores[i] += increments_[i];
        }
      } else {
        for (std::size_t i = 0; i < ctx.key_len; ++i) {
          const std::size_t pos = positions[i];
          if (pos < shared_scores_.size()) shared_scores_[pos] += increments_[i];
        }
      }
    }
  }
}

void KeyformerPolicy::observe(const PolicyContext& ctx) {
  double t0 = timings_sink_ != nullptr ? now_seconds() : 0.0;
  accumulate(ctx);
  if (timings_sink_ != nullptr) {
    timings_sink_->score_seconds += now_seconds() - t0;
    t0 = now_seconds();
  }
  KvCache& cache = *ctx.cache;
  if (!over_budget(cache)) return;

  const std::size_t n = cache.size();
  const std::size_t k = budget_.max_tokens;
  const std::size_t w = std::min(budget_.recent_window, k);
  const std::size_t prefix = n - std::min(w, n);

  std::vector<double> ranking;
  if (config_.scope == ScoreScope::kPerLayer) {
    ranking = head_aggregated_scores(cache);
  } else {
    ranking.resize(n, 0.0);
    const auto positions = cache.original_positions();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pos = positions[i];
      ranking[i] = pos < shared_scores_.size() ? shared_scores_[pos] : 0.0;
    }
  }
  const auto keep = keep_topk_plus_recent(ranking, n, prefix, k - w);
  compact_cache(ctx, keep);
  if (timings_sink_ != nullptr) {
    timings_sink_->evict_seconds += now_seconds() - t0;
  }
}

}  // namespace kf::kv
