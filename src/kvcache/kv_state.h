// Per-sequence KV state: one KvCache per decoder layer, owned as a unit.
//
// Until the serving refactor the transformer owned a single resident set of
// layer caches, hard-wiring "one model == one sequence". SequenceKvState
// lifts that set into a value the *caller* owns, so N sequences can share
// one model's weights while each keeps its own caches (and its own
// EvictionPolicy instance for score state) — the structure continuous
// batching schedules over.
//
// The state is storage-agnostic: the contiguous constructor builds classic
// private-arena caches; the pool constructor builds paged caches whose
// blocks come from (and return to) one shard of a mem::BlockPool — the
// scheduler's placement decision materialized.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "kvcache/kv_cache.h"

namespace kf::mem {
class BlockPool;
}

namespace kf::kv {

/// All per-layer KV caches of one sequence.
class SequenceKvState {
 public:
  SequenceKvState() = default;

  /// One contiguous cache per layer, each laid out for n_heads x d_head
  /// rows.
  SequenceKvState(std::size_t n_layers, std::size_t n_heads,
                  std::size_t d_head, std::size_t capacity_hint = 0);

  /// One paged cache per layer, all drawing blocks from `pool`'s shard
  /// `shard` (geometry comes from the pool config).
  SequenceKvState(mem::BlockPool& pool, std::size_t shard,
                  std::size_t n_layers);

  SequenceKvState(SequenceKvState&&) = default;
  SequenceKvState& operator=(SequenceKvState&&) = default;

  std::size_t n_layers() const noexcept { return caches_.size(); }

  KvCache& layer(std::size_t l) { return *caches_.at(l); }
  const KvCache& layer(std::size_t l) const { return *caches_.at(l); }

  /// Cache length of one layer.
  std::size_t layer_size(std::size_t l) const { return caches_.at(l)->size(); }

  /// Sum of cache lengths across layers.
  std::size_t total_tokens() const noexcept;

  /// Longest per-layer cache (the per-sequence memory high-water mark is
  /// tracked in these units).
  std::size_t max_layer_tokens() const noexcept;

  /// True when every layer cache is empty.
  bool empty() const noexcept;

  /// True when the state has exactly `n_layers` caches, every one laid
  /// out for `n_heads` x `d_head` rows — the geometry check model entry
  /// points run on caller-supplied states (row widths can coincide across
  /// different head splits, so layer count alone is not enough).
  bool matches(std::size_t n_layers, std::size_t n_heads,
               std::size_t d_head) const noexcept;

  /// Clears every layer cache (a paged state returns its blocks).
  void clear();

 private:
  std::vector<std::unique_ptr<KvCache>> caches_;
};

}  // namespace kf::kv
