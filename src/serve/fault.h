// Seeded fault injection for chaos-testing the serving stack.
//
// SeededFaultInjector implements the mem::FaultInjector hook with
// independent Bernoulli failure rates for block reservations (admission
// claims losing their race) and block allocations (mid-decode exhaustion).
// The decision stream is a deterministic function of the seed, so a chaos
// run's failure pattern replays bit-for-bit given the same seed and the
// same sequence of pool calls; under the multi-threaded decode step the
// *assignment* of draws to call sites follows the thread interleaving,
// which is exactly the nondeterminism a chaos suite wants to explore while
// the engine's invariants (definite finish reasons, zero leaked blocks,
// no escaping exceptions) must hold regardless.
//
// Install on an engine with Engine::set_fault_injector(&injector); the
// injector must outlive the runs it is installed for.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/annotations.h"
#include "core/mutex.h"
#include "core/rng.h"
#include "mem/block_pool.h"

namespace kf::serve {

struct FaultInjectorConfig {
  /// P(try_reserve fails) on an otherwise-successful reservation.
  double reserve_failure_rate = 0.0;
  /// P(try_allocate fails) on an otherwise-successful allocation.
  double allocate_failure_rate = 0.0;
  std::uint64_t seed = 1;
};

/// Deterministic probabilistic failures for BlockPool reserve/allocate.
/// Thread-safe: the pool consults it under shard mutexes from concurrent
/// decode workers, so the draw stream sits behind its own mutex (acquired
/// after a shard mutex; the injector takes no other locks, so the order
/// is acyclic).
class SeededFaultInjector final : public mem::FaultInjector {
 public:
  explicit SeededFaultInjector(FaultInjectorConfig cfg)
      : cfg_(cfg), rng_(cfg.seed) {}

  bool should_fail(mem::FaultOp op, std::size_t /*shard*/) override
      KF_EXCLUDES(mu_) {
    const double rate = op == mem::FaultOp::kReserve
                            ? cfg_.reserve_failure_rate
                            : cfg_.allocate_failure_rate;
    if (rate <= 0.0) return false;
    const LockGuard lock(mu_);
    const bool fail = rng_.uniform() < rate;
    if (fail) {
      if (op == mem::FaultOp::kReserve) {
        ++reserve_failures_;
      } else {
        ++allocate_failures_;
      }
    }
    return fail;
  }

  /// Reservations vetoed so far.
  std::size_t reserve_failures() const KF_EXCLUDES(mu_) {
    const LockGuard lock(mu_);
    return reserve_failures_;
  }
  /// Allocations vetoed so far.
  std::size_t allocate_failures() const KF_EXCLUDES(mu_) {
    const LockGuard lock(mu_);
    return allocate_failures_;
  }

 private:
  const FaultInjectorConfig cfg_;
  mutable Mutex mu_;
  Rng rng_ KF_GUARDED_BY(mu_);
  std::size_t reserve_failures_ KF_GUARDED_BY(mu_) = 0;
  std::size_t allocate_failures_ KF_GUARDED_BY(mu_) = 0;
};

}  // namespace kf::serve
