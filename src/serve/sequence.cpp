#include "serve/sequence.h"

namespace kf::serve {

std::string to_string(FinishReason reason) {
  switch (reason) {
    case FinishReason::kRunning: return "running";
    case FinishReason::kLength: return "length";
    case FinishReason::kEos: return "eos";
    case FinishReason::kRejected: return "rejected";
    case FinishReason::kTimeout: return "timeout";
  }
  return "unknown";
}

double Response::decode_tokens_per_s() const {
  return model::decode_throughput(tokens.size(), decode_seconds);
}

}  // namespace kf::serve
