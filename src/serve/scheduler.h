// Continuous-batching admission control.
//
// The scheduler holds sequences in a FIFO waiting queue (ordered by
// arrival) and an active set that decodes together. Sequences join the
// active set as soon as they have arrived AND fit both limits:
//   - max_batch_size: concurrent sequences (GEMM batch width);
//   - max_concurrent_tokens: summed per-layer KV cache tokens, a true
//     memory cap. A joining sequence is charged its transient prefill
//     peak (admission_cost_tokens(): the full prompt is resident per
//     layer until the policy trims it) and settles down to its
//     steady-state cost_tokens() once prefill completes. Because a
//     budgeted sequence's steady cost is ~cache_ratio * prompt_len,
//     reducing the cache ratio admits proportionally more sequences into
//     the same budget: the mechanism behind Keyformer's Table 1 "bigger
//     batch" row.
// Sequences leave (release) when they finish, immediately freeing budget
// for the next waiting sequence — join/leave mid-stream, no draining.
//
// Admission is strict FIFO: the head of the queue blocks later arrivals
// even if those would fit, so large requests cannot starve. An oversized
// sequence (cost above the entire token budget) is admitted only when the
// active set is empty, running solo rather than deadlocking the queue.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "serve/sequence.h"

namespace kf::serve {

struct SchedulerConfig {
  /// Max sequences decoding together; 0 = unlimited.
  std::size_t max_batch_size = 8;
  /// Memory budget: summed charged tokens of active sequences (transient
  /// prefill peak until settle(), then steady-state cost); 0 = unlimited.
  std::size_t max_concurrent_tokens = 0;
};

class BatchScheduler {
 public:
  explicit BatchScheduler(SchedulerConfig cfg = {});

  const SchedulerConfig& config() const noexcept { return cfg_; }

  /// Queues a sequence. Callers submit in arrival order (the engine sorts
  /// by arrival_step, then submission order); the queue is strict FIFO.
  void submit(Sequence* seq);

  /// Moves every admissible waiting sequence (arrived by `now_step`, fits
  /// both limits) into the active set and returns the newly admitted ones
  /// in admission order.
  std::vector<Sequence*> admit(std::size_t now_step);

  /// Drops an active sequence's charge from its admission cost (transient
  /// prefill peak) to its steady-state cost_tokens(). The engine calls
  /// this once prefill has completed and the policy has trimmed the cache
  /// to budget, freeing the transient headroom for the next admission.
  void settle(Sequence* seq);

  /// Removes a finished sequence from the active set, freeing its budget.
  void release(Sequence* seq);

  std::span<Sequence* const> active() const noexcept { return active_; }
  std::size_t active_count() const noexcept { return active_.size(); }
  std::size_t waiting_count() const noexcept { return waiting_.size(); }
  /// Summed charged tokens of the active set.
  std::size_t tokens_in_use() const noexcept { return tokens_in_use_; }

  /// Arrival step of the queue head (the next sequence to admit), empty
  /// when no sequence is waiting. The engine jumps its clock here when the
  /// active set drains.
  std::optional<std::size_t> next_arrival() const;

 private:
  bool fits(const Sequence& seq) const;

  SchedulerConfig cfg_;
  std::deque<Sequence*> waiting_;
  std::vector<Sequence*> active_;
  std::size_t tokens_in_use_ = 0;
};

}  // namespace kf::serve
