// Continuous-batching admission control.
//
// The scheduler holds sequences in a FIFO waiting queue (ordered by
// arrival) and an active set that decodes together. Sequences join the
// active set as soon as they have arrived AND fit the limits:
//   - max_batch_size: concurrent sequences (GEMM batch width);
//   - memory, in one of two modes:
//       token mode (pool == nullptr): max_concurrent_tokens caps the
//       summed per-layer KV cache tokens — an abstract proxy;
//       block mode (pool != nullptr): admission *reserves real blocks*
//       on one BlockPool shard, chosen by the placement policy. The
//       reservation covers the sequence's whole-block demand across all
//       its layers (ceil per layer — internal fragmentation is charged,
//       not hidden), so pool capacity is an exact physical memory cap: an
//       admitted sequence can always allocate what it was charged.
//       When the sequence has a pinned prefix-cache match (seq.prefix_*),
//       shards already holding the shared chain are tried first and charge
//       only the *unshared* demand — the shared prefix blocks are resident
//       and paid for by the index; other shards charge the full demand
//       (the chain would have to be replicated or recomputed there).
//   In both modes a joining sequence is charged its transient prefill
//   peak (admission_cost: the full prompt is resident per layer until the
//   policy trims it) and settles down to its steady-state cost once
//   prefill completes. Because a budgeted sequence's steady cost is
//   ~cache_ratio * prompt_len, reducing the cache ratio admits
//   proportionally more sequences into the same memory: the mechanism
//   behind Keyformer's Table 1 "bigger batch" row.
// Sequences leave (release) when they finish, immediately freeing their
// budget/blocks for the next waiting sequence — join/leave mid-stream.
//
// Admission is strict FIFO: the head of the queue blocks later arrivals
// even if those would fit, so large requests cannot starve. In token mode
// an oversized sequence (cost above the entire budget) is admitted only
// when the active set is empty, running solo rather than deadlocking the
// queue. In block mode there is no such override — the cap is physical —
// so a sequence whose admission demand exceeds a whole shard is marked
// kRejected and parked on the rejected list (take_rejected()) instead of
// deadlocking; admission moves on to the next waiting sequence.
//
// Robustness hooks (PR 7):
//   - A block reservation that fails after fits() said yes (a TOCTOU
//     against concurrent prefix-index trims/inserts, or an injected
//     fault) rolls the admission back and retries next round; after
//     max_reserve_retries consecutive losses the sequence is rejected so
//     a shard that never grants the claim cannot spin the engine forever.
//   - preempt() is release()'s mid-flight sibling: it frees an active
//     sequence's charges/blocks but re-queues it (keeping its generated
//     tokens) behind every already-arrived waiter, so the starved head
//     gets the freed budget. pick_victim() chooses who pays: the
//     youngest-by-arrival active sequence old enough (victim-age floor)
//     and under its preemption cap — both bounds guarantee progress.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "core/annotations.h"
#include "core/mutex.h"
#include "serve/sequence.h"

namespace kf::mem {
class BlockPool;
class PrefixIndex;
}

namespace kf::obs {
class Counter;
class MetricsRegistry;
}

namespace kf::serve {

/// How block mode picks a shard for a joining sequence.
enum class ShardPlacement {
  kLeastLoaded,  ///< shard with the most unreserved blocks (ties: lowest id)
  kRoundRobin,   ///< cycle shards, skipping ones the sequence doesn't fit
};

struct SchedulerConfig {
  /// Max sequences decoding together; 0 = unlimited.
  std::size_t max_batch_size = 8;
  /// Token-mode memory budget: summed charged tokens of active sequences
  /// (transient prefill peak until settle(), then steady-state cost);
  /// 0 = unlimited. Ignored for admission when `pool` is set.
  std::size_t max_concurrent_tokens = 0;
  /// Block mode: admission reserves blocks against this pool's shards.
  /// The pool must outlive the scheduler. Null = token mode.
  mem::BlockPool* pool = nullptr;
  /// The engine's prefix index (for chain-residency placement queries);
  /// null when the prefix cache is disabled. Must outlive the scheduler.
  const mem::PrefixIndex* prefix_index = nullptr;
  ShardPlacement placement = ShardPlacement::kLeastLoaded;
  /// Consecutive failed block reservations (fits() said yes, try_reserve
  /// said no) a sequence tolerates before admission rejects it. Generous:
  /// a genuine TOCTOU loss resolves in one round; only a pathological
  /// injector (or bug) reaches the cap. 0 = retry forever.
  std::size_t max_reserve_retries = 64;
  /// Observability registry for admission counters (sched.admitted /
  /// sched.rejected / sched.preempted / sched.reservation_retries); null
  /// disables them. Must outlive the scheduler.
  obs::MetricsRegistry* metrics = nullptr;
};

class BatchScheduler {
 public:
  explicit BatchScheduler(SchedulerConfig cfg = {});

  const SchedulerConfig& config() const noexcept { return cfg_; }

  /// Queues a sequence. Callers submit in arrival order (the engine sorts
  /// by arrival_step, then submission order); the queue is strict FIFO.
  /// Block mode requires seq->n_layers > 0 (the block demand unit).
  void submit(Sequence* seq);

  /// Moves every admissible waiting sequence (arrived by `now_step`, fits
  /// both limits) into the active set and returns the newly admitted ones
  /// in admission order. Block mode: each admitted sequence has its shard
  /// chosen and its admission block demand reserved. A sequence whose
  /// demand exceeds a whole shard (it could never run) is marked
  /// kRejected and moved to the rejected list instead of blocking the
  /// queue; a reservation lost to a TOCTOU race rolls back and retries
  /// next round (see the header comment).
  std::vector<Sequence*> admit(std::size_t now_step);

  /// Sequences admission rejected since the last call (status kFinished,
  /// finish kRejected, error set). The engine drains this after admit()
  /// and turns each into a Response.
  std::vector<Sequence*> take_rejected();

  /// Parks an active sequence back into the waiting queue: frees its
  /// token charge and block reservation exactly like release(), but keeps
  /// its committed tokens and re-queues it (behind already-arrived
  /// waiters, ahead of future arrivals) for recompute-based resume.
  /// Bumps seq->preemptions and stamps seq->queue_enter_step.
  void preempt(Sequence* seq, std::size_t now_step);

  /// The preemption victim admission pressure should evict: the active
  /// sequence with the latest arrival (ties: latest admission) that has
  /// been active at least `min_age_steps` and has fewer than
  /// `max_preemptions` preemptions (0 = uncapped). Null when nobody
  /// qualifies.
  Sequence* pick_victim(std::size_t now_step, std::size_t min_age_steps,
                        std::size_t max_preemptions) const;

  /// Removes a sequence from the waiting queue (deadline shedding);
  /// false when it is not waiting.
  bool remove_waiting(Sequence* seq);

  /// Drops an active sequence's charge from its admission cost (transient
  /// prefill peak) to its steady-state cost. The engine calls this once
  /// prefill has completed and the policy has trimmed the cache to budget,
  /// freeing the transient headroom (tokens and reserved blocks alike)
  /// for the next admission.
  void settle(Sequence* seq);

  /// Removes a finished sequence from the active set, freeing its budget
  /// and returning its reserved blocks to the pool.
  void release(Sequence* seq);

  std::span<Sequence* const> active() const noexcept { return active_; }
  std::size_t active_count() const noexcept { return active_.size(); }
  std::size_t waiting_count() const noexcept { return waiting_.size(); }
  /// The FIFO queue, head first (the engine probes it for prefix-cache
  /// matches before each admission round).
  const std::deque<Sequence*>& waiting() const noexcept { return waiting_; }
  /// Summed charged tokens of the active set (tracked in both modes).
  /// Guarded: safe to read from a monitoring thread while the engine loop
  /// admits/settles/releases.
  std::size_t tokens_in_use() const KF_EXCLUDES(counters_mu_) {
    const LockGuard lock(counters_mu_);
    return tokens_in_use_;
  }
  /// Summed reserved blocks of the active set (block mode; 0 otherwise).
  /// Guarded like tokens_in_use().
  std::size_t blocks_in_use() const KF_EXCLUDES(counters_mu_) {
    const LockGuard lock(counters_mu_);
    return blocks_in_use_;
  }
  /// Admissions rolled back because a block reservation failed after
  /// fits() (TOCTOU losses and injected faults). Guarded for monitors.
  std::size_t reservation_retries() const KF_EXCLUDES(counters_mu_) {
    const LockGuard lock(counters_mu_);
    return reservation_retries_;
  }

  /// Arrival step of the queue head (the next sequence to admit), empty
  /// when no sequence is waiting. The engine jumps its clock here when the
  /// active set drains.
  std::optional<std::size_t> next_arrival() const;

 private:
  bool fits(const Sequence& seq) const;
  /// Block mode: a shard able to host the sequence and what admission
  /// would charge it there (unshared demand on shards holding its shared
  /// prefix chain, full demand elsewhere).
  struct Placement {
    std::size_t shard = 0;
    std::size_t demand = 0;
  };
  std::optional<Placement> choose_shard(const Sequence& seq) const;
  /// Placement policy over one candidate shard set; nullopt when none fit.
  std::optional<std::size_t> pick_shard(
      const std::vector<std::size_t>& candidates, std::size_t demand) const;

  SchedulerConfig cfg_;
  /// Queue/active-set structure is engine-loop-only (single writer, no
  /// concurrent readers); only the in-use counters below are shared with
  /// monitoring readers and guarded.
  std::deque<Sequence*> waiting_;
  std::vector<Sequence*> active_;
  /// Admission-rejected sequences awaiting the engine's drain.
  std::vector<Sequence*> rejected_;
  mutable Mutex counters_mu_;
  std::size_t tokens_in_use_ KF_GUARDED_BY(counters_mu_) = 0;
  std::size_t blocks_in_use_ KF_GUARDED_BY(counters_mu_) = 0;
  std::size_t reservation_retries_ KF_GUARDED_BY(counters_mu_) = 0;
  std::size_t rr_next_ = 0;  ///< round-robin cursor (advances on placement)
  /// Registry-owned counters, resolved once in the constructor; null when
  /// cfg_.metrics is null. The engine-loop-only call sites bump them with
  /// one relaxed sharded add.
  obs::Counter* ctr_admitted_ = nullptr;
  obs::Counter* ctr_rejected_ = nullptr;
  obs::Counter* ctr_preempted_ = nullptr;
  obs::Counter* ctr_retries_ = nullptr;
};

}  // namespace kf::serve
