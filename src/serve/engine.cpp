#include "serve/engine.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "core/timing.h"
#include "mem/paged_kv_cache.h"

namespace kf::serve {

Engine::Engine(model::Transformer& model, EngineConfig cfg)
    : model_(model), cfg_(std::move(cfg)) {
  if (cfg_.prefix.enabled && !cfg_.paged.enabled) {
    throw std::invalid_argument(
        "the prefix cache shares pool blocks; enable paged memory");
  }
  if (cfg_.prefix.enabled) {
    // The bit-exactness contract of prefix adoption (shared-prefix decode
    // identical to unshared) relies on score accumulation decomposing at
    // the prefix boundary. Exponential damping breaks that: a chunked
    // prompt phase damps the prefix contributions once more than a
    // monolithic one. Refuse loudly rather than drift silently.
    const bool damped =
        (cfg_.policy.kind == kv::PolicyKind::kKeyformer &&
         cfg_.policy.keyformer.score.damping < 1.0) ||
        (cfg_.policy.kind == kv::PolicyKind::kH2O &&
         cfg_.policy.h2o_damping < 1.0);
    if (damped) {
      throw std::invalid_argument(
          "the prefix cache requires damping == 1.0 (prefix-boundary score "
          "snapshots do not compose with exponential damping)");
    }
  }
  if (cfg_.paged.enabled) {
    if (cfg_.paged.n_shards == 0 || cfg_.paged.block_tokens == 0) {
      throw std::invalid_argument(
          "paged memory requires n_shards > 0 and block_tokens > 0");
    }
    mem::BlockPoolConfig pc;
    pc.n_shards = cfg_.paged.n_shards;
    pc.block_tokens = cfg_.paged.block_tokens;
    pc.n_heads = model_.config().n_heads;
    pc.d_head = model_.config().d_head();
    pc.blocks_per_shard = cfg_.paged.blocks_per_shard;
    if (pc.blocks_per_shard == 0 && cfg_.scheduler.max_concurrent_tokens > 0) {
      // Translate the abstract token budget into physical capacity: the
      // budget is per-layer tokens across the active set, so the pool
      // holds n_layers times its block equivalent, split across shards.
      // A bounded prefix cache rides on top, so caching prefixes never
      // eats into the admission capacity the budget promised.
      const std::size_t budget_blocks =
          model_.config().n_layers *
              ((cfg_.scheduler.max_concurrent_tokens + pc.block_tokens - 1) /
               pc.block_tokens) +
          (cfg_.prefix.enabled ? cfg_.prefix.max_blocks : 0);
      pc.blocks_per_shard =
          (budget_blocks + pc.n_shards - 1) / pc.n_shards;
    }
    pool_ = std::make_unique<mem::BlockPool>(pc);
    cfg_.scheduler.pool = pool_.get();
    if (cfg_.prefix.enabled) {
      mem::PrefixIndexConfig ic;
      ic.n_layers = model_.config().n_layers;
      ic.max_blocks = cfg_.prefix.max_blocks;
      ic.min_tokens = cfg_.prefix.min_tokens;
      prefix_index_ = std::make_unique<mem::PrefixIndex>(*pool_, ic);
      cfg_.scheduler.prefix_index = prefix_index_.get();
    }
  }
}

std::size_t Engine::insertable_prefix_tokens(const Sequence& seq) const {
  const std::size_t bt = pool_->block_tokens();
  // At least one prompt token must stay outside the prefix: the first
  // generated token comes from the last prompt row's logits, which must be
  // computed, not replayed.
  std::size_t want = seq.prompt.size() - 1;
  if (seq.shared_prefix_hint > 0) {
    want = std::min(want, seq.shared_prefix_hint);
  }
  const std::size_t m = (want / bt) * bt;
  return m >= prefix_index_->config().min_tokens ? m : 0;
}

EngineStats Engine::stats() const {
  const LockGuard lock(stats_mu_);
  return stats_;
}

void Engine::publish_stats(const EngineStats& stats) {
  const LockGuard lock(stats_mu_);
  stats_ = stats;
}

void Engine::start_sequence(Sequence& seq, std::size_t now_step,
                            EngineStats& stats) {
  seq.policy->set_budget(seq.budget);
  kv::SequenceInfo info;
  info.prompt_len = seq.prompt.size();
  info.total_steps = seq.gen.max_new_tokens;
  info.n_layers = model_.config().n_layers;
  info.n_heads = model_.config().n_heads;
  seq.policy->begin_sequence(info);

  seq.kv->clear();
  const double t0 = now_seconds();
  const std::span<const Token> prompt = seq.prompt;
  std::size_t computed = prompt.size();  // prompt rows actually prefilled
  Tensor prompt_logits;

  // Resolve the prefix-cache match: the entry pinned at the admission
  // probe, or — new this round — one an earlier sequence of the same
  // admission batch just inserted.
  const mem::PrefixEntry* entry = nullptr;
  if (prefix_index_ != nullptr && seq.prefix_eligible) {
    entry = seq.prefix_entry != nullptr
                ? seq.prefix_entry
                : prefix_index_->lookup(prompt, prompt.size() - 1);
  }

  bool adopted = false;
  if (entry != nullptr && prefix_index_->adopt(entry, *seq.kv)) {
    // Hit: the prefix K/V replays from the shared chain; only the suffix
    // runs. Cache-resident boundary scores were seeded by adopt();
    // policy-resident state (shared-scope Keyformer) imports here.
    seq.policy->import_score_state(entry->policy_scores());
    const std::size_t m = entry->tokens();
    prompt_logits = model_.prefill_continue(
        *seq.kv, prompt.subspan(m), m, *seq.policy, seq.gen.max_new_tokens);
    computed = prompt.size() - m;
    adopted = true;
    ++stats.prefix_hits;
    stats.prefix_tokens_reused += m;
    stats.prefix_blocks_shared +=
        model_.config().n_layers * entry->blocks_per_layer();
  }
  if (seq.prefix_entry != nullptr) {
    prefix_index_->unpin(seq.prefix_entry);
    seq.prefix_entry = nullptr;
    seq.prefix_blocks_per_layer = 0;
  }

  if (!adopted) {
    const std::size_t m = prefix_index_ != nullptr && seq.prefix_eligible
                              ? insertable_prefix_tokens(seq)
                              : 0;
    if (m > 0) {
      // Miss worth caching: chunk the prefill at the shareable boundary.
      // Chunk 1 runs with the budget masked so nothing evicts mid-prompt;
      // the suffix chunk restores it and evicts once over the full prompt
      // — the same single eviction, over the same accumulated scores, a
      // monolithic prefill performs (rows and scores are bit-exact; see
      // prefill_continue).
      const kv::CacheBudget real_budget = seq.policy->budget();
      seq.policy->set_budget(kv::CacheBudget{});
      model_.prefill_continue(*seq.kv, prompt.first(m), 0, *seq.policy,
                              seq.gen.max_new_tokens);
      seq.policy->set_budget(real_budget);
      prefix_index_->insert(prompt.first(m), *seq.kv,
                            seq.policy->export_score_state(m));
      prompt_logits = model_.prefill_continue(
          *seq.kv, prompt.subspan(m), m, *seq.policy, seq.gen.max_new_tokens);
      ++stats.prefix_misses;
    } else {
      prompt_logits = model_.prefill(*seq.kv, prompt, *seq.policy,
                                     seq.gen.max_new_tokens);
    }
  }

  seq.peak_cache_tokens = prompt.size();
  seq.first_decode_step = now_step;

  if (seq.gen.max_new_tokens == 0) {
    // Nothing to generate: matches generate(), whose loop never runs.
    seq.status = SequenceStatus::kFinished;
    seq.finish = FinishReason::kLength;
  } else {
    const Token first = model::select_greedy(
        prompt_logits.row(prompt_logits.dim(0) - 1), seq.recent_window(),
        seq.gen.repetition_penalty, seq.gen.banned_tokens);
    seq.commit(first);
  }
  seq.prefill_seconds = now_seconds() - t0;
  stats.prefilled_tokens += computed;
  stats.prefill_seconds += seq.prefill_seconds;
}

std::vector<Response> Engine::run(std::span<const Request> requests) {
  // The run accumulates into this local and publishes snapshots; readers
  // of stats() never observe a half-updated struct.
  EngineStats stats;
  publish_stats(stats);
  if (pool_ != nullptr) {
    pool_->reset_peaks();
    stats.pool_capacity_blocks = pool_->stats().capacity_blocks;
  }

  // Materialize sequences (deque: stable addresses for scheduler pointers).
  std::deque<Sequence> seqs;
  for (const Request& req : requests) {
    if (req.prompt.empty()) {
      throw std::invalid_argument("serve request requires a non-empty prompt");
    }
    Sequence s;
    s.id = req.id;
    s.prompt = req.prompt;
    s.gen = req.gen;
    s.arrival_step = req.arrival_step;
    s.n_layers = model_.config().n_layers;
    s.budget = kv::make_budget(s.prompt.size(), s.gen.cache_ratio,
                               s.gen.recent_ratio);
    if (req.policy != nullptr) {
      s.policy = req.policy;
    } else {
      s.owned_policy = kv::make_policy(cfg_.policy);
      s.policy = s.owned_policy.get();
    }
    // Prefix-cache participation: engine-built policies only — the cached
    // score snapshots are specific to the engine's policy configuration,
    // and a caller-owned instance may be anything.
    s.prefix_eligible = prefix_index_ != nullptr && req.policy == nullptr;
    s.shared_prefix_hint = req.shared_prefix_hint;
    if (req.kv_state != nullptr) {
      if (pool_ != nullptr) {
        // Placement decides the shard at admission; a pre-built external
        // state would bypass the pool's accounting entirely.
        throw std::invalid_argument(
            "paged memory mode cannot take external kv_state instances");
      }
      if (!req.kv_state->matches(model_.config().n_layers,
                                 model_.config().n_heads,
                                 model_.config().d_head())) {
        throw std::invalid_argument(
            "external kv_state geometry does not match the model");
      }
      s.kv = req.kv_state;
    } else if (pool_ == nullptr) {
      // Size the arenas for the admission peak max(prompt, k+1) — the
      // most this sequence ever holds per layer — so prefill appends
      // never reallocate, and budgeted sequences stop over-reserving
      // their full prompt+gen growth.
      s.owned_kv = std::make_unique<kv::SequenceKvState>(
          model_.make_kv_state(s.admission_cost_tokens()));
      s.kv = s.owned_kv.get();
    }
    // Paged sequences get their state at admission, once the scheduler
    // has placed them on a shard.
    seqs.push_back(std::move(s));
  }

  // Reject shared state up front: two requests on one kv_state (or one
  // policy instance) would clobber each other's caches/score state, and
  // step_batch's own distinctness check only fires mid-run when their
  // lifetimes happen to overlap — long after start_sequence() wiped the
  // other request's in-flight caches.
  {
    std::unordered_set<const void*> kv_seen;
    std::unordered_set<const void*> policy_seen;
    for (const Sequence& s : seqs) {
      if (s.kv != nullptr && !kv_seen.insert(s.kv).second) {
        throw std::invalid_argument(
            "serve requests must use distinct kv_state instances");
      }
      if (!policy_seen.insert(s.policy).second) {
        throw std::invalid_argument(
            "serve requests must use distinct policy instances");
      }
    }
  }

  // Submit in arrival order (stable: ties keep request order).
  std::vector<std::size_t> order(seqs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return seqs[a].arrival_step < seqs[b].arrival_step;
                   });
  BatchScheduler sched(cfg_.scheduler);
  for (const std::size_t i : order) sched.submit(&seqs[i]);

  std::size_t finished = 0;
  std::size_t step = 0;
  std::vector<model::DecodeSlot> slots;

  // Captures what the Response needs from the caches, then — in paged
  // mode — tears the sequence's state down so its blocks go back to the
  // shard free list *now*, while the reservation the scheduler is about
  // to release is still backing them. Contiguous states stay alive:
  // external kv_state callers (generate() among them) inspect them after
  // the run.
  const auto retire = [&](Sequence& seq) {
    seq.final_cache_sizes.clear();
    for (std::size_t l = 0; l < seq.kv->n_layers(); ++l) {
      seq.final_cache_sizes.push_back(seq.kv->layer_size(l));
    }
    if (pool_ != nullptr) {
      if (prefix_index_ != nullptr) {
        for (std::size_t l = 0; l < seq.kv->n_layers(); ++l) {
          const auto* paged =
              dynamic_cast<const mem::PagedKvCache*>(&seq.kv->layer(l));
          if (paged != nullptr) stats.prefix_cow_copies += paged->cow_copies();
        }
      }
      seq.owned_kv.reset();
      seq.kv = nullptr;
    }
  };

  // Admission-time prefix probe: pin a matching shared chain for every
  // waiting eligible sequence so (a) the scheduler charges only the
  // unshared demand on shards holding the chain and (b) the chain cannot
  // be trimmed between the reduced charge and the adoption it promised.
  const auto probe_waiting = [&]() {
    if (prefix_index_ == nullptr) return;
    for (Sequence* seq : sched.waiting()) {
      if (!seq->prefix_eligible || seq->prefix_entry != nullptr) continue;
      // A previous miss stays a miss until the entry set changes; skip
      // the longest-prefix probe until the index's revision moves.
      if (seq->prefix_probed_revision == prefix_index_->revision()) continue;
      seq->prefix_probed_revision = prefix_index_->revision();
      const mem::PrefixEntry* entry =
          prefix_index_->lookup(seq->prompt, seq->prompt.size() - 1);
      if (entry != nullptr) {
        prefix_index_->pin(entry);
        seq->prefix_entry = entry;
        seq->prefix_blocks_per_layer = entry->blocks_per_layer();
      }
    }
  };

  // Progress guard: with the engine idle and the queue head unable to fit,
  // the index's retained chains are the only reclaimable memory — drop
  // them LRU-first (clearing any waiting sequence's pins on the victim)
  // until the head fits or nothing is left to trim.
  const auto trim_for_progress = [&]() -> bool {
    if (prefix_index_ == nullptr) return false;
    const mem::PrefixEntry* victim =
        prefix_index_->lru_candidate(/*include_pinned=*/false);
    if (victim == nullptr) {
      victim = prefix_index_->lru_candidate(/*include_pinned=*/true);
      if (victim == nullptr) return false;
      for (Sequence* seq : sched.waiting()) {
        if (seq->prefix_entry == victim) {
          prefix_index_->unpin(victim);
          seq->prefix_entry = nullptr;
          seq->prefix_blocks_per_layer = 0;
        }
      }
    }
    // try_drop keeps the pin check and the drop under one index-mutex
    // acquisition: a pin landing in between (ours above are cleared, but
    // external pinners exist) makes this a clean false, never a throw.
    return prefix_index_->try_drop(victim);
  };
  while (finished < seqs.size()) {
    // Idle engine: jump the clock to the next arrival.
    if (sched.active_count() == 0) {
      const auto next = sched.next_arrival();
      if (next.has_value() && *next > step) step = *next;
    }

    // Admit + prefill newly eligible sequences; a sequence that finishes
    // during prefill (eos first token, max_new_tokens 0) retires at once,
    // freeing its budget for the next waiting request this same step.
    bool admitted_any = true;
    while (admitted_any) {
      admitted_any = false;
      probe_waiting();
      for (Sequence* seq : sched.admit(step)) {
        admitted_any = true;
        if (pool_ != nullptr) {
          // Materialize the placement decision: layer caches drawing
          // blocks from the shard the scheduler just reserved on.
          seq->owned_kv = std::make_unique<kv::SequenceKvState>(
              *pool_, seq->shard, model_.config().n_layers);
          seq->kv = seq->owned_kv.get();
        }
        // The admission charge covers the transient prefill peak; record
        // it before settling so max_tokens_in_use reflects true memory.
        stats.max_tokens_in_use =
            std::max(stats.max_tokens_in_use, sched.tokens_in_use());
        stats.max_blocks_in_use =
            std::max(stats.max_blocks_in_use, sched.blocks_in_use());
        start_sequence(*seq, step, stats);
        sched.settle(seq);
        if (seq->finished()) {
          seq->finish_step = step;
          retire(*seq);
          sched.release(seq);
          ++finished;
        }
      }
      // Idle engine, arrived head, no admission: the prefix cache's
      // retained blocks are squeezing the pool — reclaim and retry.
      if (!admitted_any && sched.active_count() == 0) {
        const auto head = sched.next_arrival();
        if (head.has_value() && *head <= step && trim_for_progress()) {
          admitted_any = true;
        }
      }
    }

    const std::vector<Sequence*> active(sched.active().begin(),
                                        sched.active().end());
    if (active.empty()) continue;  // everything admitted so far retired

    stats.max_batch = std::max(stats.max_batch, active.size());
    stats.max_tokens_in_use =
        std::max(stats.max_tokens_in_use, sched.tokens_in_use());
    stats.max_blocks_in_use =
        std::max(stats.max_blocks_in_use, sched.blocks_in_use());
    if (pool_ != nullptr) {
      // Internal fragmentation this step: tokens actually cached vs the
      // whole-block token slots holding them. The prefix index's retained
      // chains are excluded — they are deliberate caching, not slack (an
      // adopted chain is double-discounted here, so the measure clamps).
      const std::size_t index_blocks =
          prefix_index_ != nullptr ? prefix_index_->blocks_held() : 0;
      const std::size_t used = pool_->stats().used_blocks;
      const std::size_t used_tokens =
          (used > index_blocks ? used - index_blocks : 0) *
          pool_->block_tokens();
      if (used_tokens > 0) {
        std::size_t live = 0;
        for (const Sequence* seq : active) live += seq->kv->total_tokens();
        stats.max_fragmentation = std::max(
            stats.max_fragmentation,
            std::max(0.0, 1.0 - static_cast<double>(live) /
                                    static_cast<double>(used_tokens)));
      }
    }

    // One decode step for the whole batch. The step wall covers the model
    // call AND per-sequence sampling/bookkeeping, so decode_seconds is the
    // true decode-phase latency (prefill_seconds likewise includes its
    // first-token selection).
    const double t0 = now_seconds();
    slots.clear();
    for (const Sequence* seq : active) {
      model::DecodeSlot slot;
      slot.token = seq->feed_token();
      slot.position = seq->next_position();
      slot.t = seq->next_t();
      slot.total_steps = seq->gen.max_new_tokens;
      slot.state = seq->kv;
      slot.policy = seq->policy;
      slots.push_back(slot);
    }
    const Tensor logits = model_.step_batch(slots);
    for (std::size_t b = 0; b < active.size(); ++b) {
      Sequence* seq = active[b];
      seq->peak_cache_tokens =
          std::max(seq->peak_cache_tokens, seq->kv->max_layer_tokens());
      const Token next = model::select_greedy(
          logits.row(b), seq->recent_window(), seq->gen.repetition_penalty,
          seq->gen.banned_tokens);
      seq->commit(next);
      ++stats.decoded_tokens;
    }
    const double dt = now_seconds() - t0;
    stats.decode_seconds += dt;
    ++stats.steps;
    // Keep stats() live mid-run: one snapshot per decode step is the
    // granularity an async front-end polls at (per-token would publish
    // the same struct under the same lock anyway).
    publish_stats(stats);
    for (Sequence* seq : active) {
      seq->decode_seconds += dt;
      if (seq->finished()) {
        seq->finish_step = step;
        retire(*seq);
        sched.release(seq);
        ++finished;
      }
    }
    ++step;
  }

  if (pool_ != nullptr) {
    stats.pool_peak_used_blocks = pool_->stats().peak_used_blocks;
  }
  publish_stats(stats);

  std::vector<Response> responses;
  responses.reserve(seqs.size());
  for (Sequence& seq : seqs) {
    Response r;
    r.id = seq.id;
    r.tokens = std::move(seq.tokens);
    r.prompt_len = seq.prompt.size();
    r.budget = seq.budget;
    r.final_cache_sizes = std::move(seq.final_cache_sizes);
    r.peak_cache_tokens = seq.peak_cache_tokens;
    r.finish = seq.finish;
    r.arrival_step = seq.arrival_step;
    r.first_decode_step = seq.first_decode_step;
    r.finish_step = seq.finish_step;
    r.prefill_seconds = seq.prefill_seconds;
    r.decode_seconds = seq.decode_seconds;
    responses.push_back(std::move(r));
  }
  return responses;
}

}  // namespace kf::serve

namespace kf::model {

// Declared in model/generator.h; defined here so the model layer never
// depends on serve/ headers (the wrapper lives with the engine it wraps).
GenerationResult generate(Transformer& model, std::span<const Token> prompt,
                          kv::EvictionPolicy& policy,
                          const GenerationConfig& cfg) {
  if (prompt.empty()) {
    throw std::invalid_argument("generate requires a non-empty prompt");
  }
  // Batch of one through the serving engine: same prefill/decode calls,
  // same sampling, same budget derivation as the classic loop. The model's
  // default KV state is passed through — cleared by start_sequence like any
  // other state — so callers that inspect the caches after generation keep
  // seeing the sequence's final state.
  serve::Engine engine(model, serve::EngineConfig{});
  serve::Request req;
  req.prompt.assign(prompt.begin(), prompt.end());
  req.gen = cfg;
  req.policy = &policy;
  req.kv_state = &model.default_kv_state();
  auto responses = engine.run({&req, 1});
  serve::Response& r = responses.front();

  GenerationResult result;
  result.tokens = std::move(r.tokens);
  result.prompt_len = r.prompt_len;
  result.budget = r.budget;
  result.final_cache_sizes = std::move(r.final_cache_sizes);
  result.peak_cache_tokens = r.peak_cache_tokens;
  result.prefill_seconds = r.prefill_seconds;
  result.decode_seconds = r.decode_seconds;
  return result;
}

}  // namespace kf::model
