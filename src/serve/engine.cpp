#include "serve/engine.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/timing.h"
#include "cpu/cpu_isa.h"
#include "mem/paged_kv_cache.h"
#include "obs/monitor.h"
#include "obs/trace.h"

namespace kf::serve {

using obs::TimelineEventKind;

Engine::Engine(model::Transformer& model, EngineConfig cfg)
    : model_(model),
      cfg_(std::move(cfg)),
      hist_ttft_(metrics_.histogram("serve.ttft_seconds")),
      hist_inter_token_(metrics_.histogram("serve.inter_token_seconds")),
      hist_queue_wait_(metrics_.histogram("serve.queue_wait_seconds")),
      hist_step_(metrics_.histogram("serve.step_seconds")) {
  cfg_.scheduler.metrics = &metrics_;
  if (cfg_.prefix.enabled && !cfg_.paged.enabled) {
    throw std::invalid_argument(
        "the prefix cache shares pool blocks; enable paged memory");
  }
  if (cfg_.prefix.enabled) {
    // The bit-exactness contract of prefix adoption (shared-prefix decode
    // identical to unshared) relies on score accumulation decomposing at
    // the prefix boundary. Exponential damping breaks that: a chunked
    // prompt phase damps the prefix contributions once more than a
    // monolithic one. Refuse loudly rather than drift silently.
    const bool damped =
        (cfg_.policy.kind == kv::PolicyKind::kKeyformer &&
         cfg_.policy.keyformer.score.damping < 1.0) ||
        (cfg_.policy.kind == kv::PolicyKind::kH2O &&
         cfg_.policy.h2o_damping < 1.0);
    if (damped) {
      throw std::invalid_argument(
          "the prefix cache requires damping == 1.0 (prefix-boundary score "
          "snapshots do not compose with exponential damping)");
    }
  }
  if (cfg_.paged.enabled) {
    if (cfg_.paged.n_shards == 0 || cfg_.paged.block_tokens == 0) {
      throw std::invalid_argument(
          "paged memory requires n_shards > 0 and block_tokens > 0");
    }
    mem::BlockPoolConfig pc;
    pc.n_shards = cfg_.paged.n_shards;
    pc.block_tokens = cfg_.paged.block_tokens;
    pc.n_heads = model_.config().n_heads;
    pc.d_head = model_.config().d_head();
    pc.blocks_per_shard = cfg_.paged.blocks_per_shard;
    pc.metrics = &metrics_;
    if (pc.blocks_per_shard == 0 && cfg_.scheduler.max_concurrent_tokens > 0) {
      // Translate the abstract token budget into physical capacity: the
      // budget is per-layer tokens across the active set, so the pool
      // holds n_layers times its block equivalent, split across shards.
      // A bounded prefix cache rides on top, so caching prefixes never
      // eats into the admission capacity the budget promised.
      const std::size_t budget_blocks =
          model_.config().n_layers *
              ((cfg_.scheduler.max_concurrent_tokens + pc.block_tokens - 1) /
               pc.block_tokens) +
          (cfg_.prefix.enabled ? cfg_.prefix.max_blocks : 0);
      pc.blocks_per_shard =
          (budget_blocks + pc.n_shards - 1) / pc.n_shards;
    }
    pool_ = std::make_unique<mem::BlockPool>(pc);
    cfg_.scheduler.pool = pool_.get();
    if (cfg_.prefix.enabled) {
      mem::PrefixIndexConfig ic;
      ic.n_layers = model_.config().n_layers;
      ic.max_blocks = cfg_.prefix.max_blocks;
      ic.min_tokens = cfg_.prefix.min_tokens;
      ic.metrics = &metrics_;
      prefix_index_ = std::make_unique<mem::PrefixIndex>(*pool_, ic);
      cfg_.scheduler.prefix_index = prefix_index_.get();
    }
  }
}

std::size_t Engine::insertable_prefix_tokens(const Sequence& seq) const {
  const std::size_t bt = pool_->block_tokens();
  // At least one prompt token must stay outside the prefix: the first
  // generated token comes from the last prompt row's logits, which must be
  // computed, not replayed.
  std::size_t want = seq.prompt.size() - 1;
  if (seq.shared_prefix_hint > 0) {
    want = std::min(want, seq.shared_prefix_hint);
  }
  const std::size_t m = (want / bt) * bt;
  return m >= prefix_index_->config().min_tokens ? m : 0;
}

EngineStats Engine::stats() const {
  const LockGuard lock(stats_mu_);
  return stats_;
}

kv::EvictionTelemetry Engine::eviction_report() const {
  const LockGuard lock(stats_mu_);
  return eviction_agg_;
}

void Engine::publish_stats(const EngineStats& stats) {
  EngineStats snap = stats;
  snap.ttft = hist_ttft_.snapshot();
  snap.inter_token = hist_inter_token_.snapshot();
  snap.queue_wait = hist_queue_wait_.snapshot();
  snap.step_latency = hist_step_.snapshot();
  const LockGuard lock(stats_mu_);
  stats_ = snap;
}

void Engine::start_sequence(Sequence& seq, std::size_t now_step,
                            EngineStats& stats) {
  // Re-admission after a preemption: the prompt re-prefills exactly like
  // the first time (policies reset in begin_sequence and are deterministic
  // per sequence), then the parked tokens replay below.
  const bool resume = !seq.tokens.empty();
  KF_TRACE_SCOPE(resume ? "resume_prefill" : "prefill");
  seq.policy->set_budget(seq.budget);
  kv::SequenceInfo info;
  info.prompt_len = seq.prompt.size();
  info.total_steps = seq.gen.max_new_tokens;
  info.n_layers = model_.config().n_layers;
  info.n_heads = model_.config().n_heads;
  seq.policy->begin_sequence(info);

  seq.kv->clear();
  const double t0 = now_seconds();
  if (resume) seq.timeline.mark(TimelineEventKind::kResumed, t0);
  seq.timeline.mark(TimelineEventKind::kPrefillStart, t0);
  const std::span<const Token> prompt = seq.prompt;
  std::size_t computed = prompt.size();  // prompt rows actually prefilled
  Tensor prompt_logits;

  // Resolve the prefix-cache match: the entry pinned at the admission
  // probe, or — new this round — one an earlier sequence of the same
  // admission batch just inserted.
  const mem::PrefixEntry* entry = nullptr;
  if (prefix_index_ != nullptr && seq.prefix_eligible) {
    entry = seq.prefix_entry != nullptr
                ? seq.prefix_entry
                : prefix_index_->lookup(prompt, prompt.size() - 1);
  }

  bool adopted = false;
  if (entry != nullptr && prefix_index_->adopt(entry, *seq.kv)) {
    // Hit: the prefix K/V replays from the shared chain; only the suffix
    // runs. Cache-resident boundary scores were seeded by adopt();
    // policy-resident state (shared-scope Keyformer) imports here.
    seq.policy->import_score_state(entry->policy_scores());
    const std::size_t m = entry->tokens();
    prompt_logits = model_.prefill_continue(
        *seq.kv, prompt.subspan(m), m, *seq.policy, seq.gen.max_new_tokens);
    computed = prompt.size() - m;
    adopted = true;
    ++stats.prefix_hits;
    stats.prefix_tokens_reused += m;
    stats.prefix_blocks_shared +=
        model_.config().n_layers * entry->blocks_per_layer();
  }
  if (seq.prefix_entry != nullptr) {
    prefix_index_->unpin(seq.prefix_entry);
    seq.prefix_entry = nullptr;
    seq.prefix_blocks_per_layer = 0;
  }

  if (!adopted) {
    const std::size_t m = prefix_index_ != nullptr && seq.prefix_eligible
                              ? insertable_prefix_tokens(seq)
                              : 0;
    if (m > 0) {
      // Miss worth caching: chunk the prefill at the shareable boundary.
      // Chunk 1 runs with the budget masked so nothing evicts mid-prompt;
      // the suffix chunk restores it and evicts once over the full prompt
      // — the same single eviction, over the same accumulated scores, a
      // monolithic prefill performs (rows and scores are bit-exact; see
      // prefill_continue).
      const kv::CacheBudget real_budget = seq.policy->budget();
      seq.policy->set_budget(kv::CacheBudget{});
      model_.prefill_continue(*seq.kv, prompt.first(m), 0, *seq.policy,
                              seq.gen.max_new_tokens);
      seq.policy->set_budget(real_budget);
      prefix_index_->insert(prompt.first(m), *seq.kv,
                            seq.policy->export_score_state(m));
      // Chunk boundary: publish so the monitoring surface moves during a
      // long prefill instead of freezing at the last decode step.
      stats.prefilled_tokens += m;
      publish_stats(stats);
      stats.prefilled_tokens -= m;
      prompt_logits = model_.prefill_continue(
          *seq.kv, prompt.subspan(m), m, *seq.policy, seq.gen.max_new_tokens);
      ++stats.prefix_misses;
    } else {
      prompt_logits = model_.prefill(*seq.kv, prompt, *seq.policy,
                                     seq.gen.max_new_tokens);
    }
  }

  seq.peak_cache_tokens = std::max(seq.peak_cache_tokens, prompt.size());
  if (!resume) seq.first_decode_step = now_step;

  seq.timeline.mark(TimelineEventKind::kPrefillEnd, now_seconds());

  if (resume) {
    KF_TRACE_SCOPE("resume_replay");
    // Replay the committed tokens through the ordinary decode path:
    // tokens[0] came from the prompt logits (already committed), each
    // later tokens[i] from feeding tokens[i-1] at decode step i. The
    // logits are recomputed and discarded — only the KV/score state the
    // eviction policy built alongside them matters, and this stepwise
    // replay reproduces it exactly (a prompt-phase prefill over the same
    // tokens would evict once at the end instead of once per step).
    for (std::size_t i = 1; i < seq.tokens.size(); ++i) {
      model_.decode(*seq.kv, seq.tokens[i - 1], seq.prompt.size() + i - 1,
                    i, seq.gen.max_new_tokens, *seq.policy);
    }
    stats.resume_replayed_tokens += seq.tokens.size() - 1;
    seq.peak_cache_tokens =
        std::max(seq.peak_cache_tokens, seq.kv->max_layer_tokens());
  } else if (seq.gen.max_new_tokens == 0) {
    // Nothing to generate: matches generate(), whose loop never runs.
    seq.status = SequenceStatus::kFinished;
    seq.finish = FinishReason::kLength;
  } else {
    const Token first = model::select_greedy(
        prompt_logits.row(prompt_logits.dim(0) - 1), seq.recent_window(),
        seq.gen.repetition_penalty, seq.gen.banned_tokens);
    seq.commit(first);
  }
  if (!seq.tokens.empty()) {
    const double t_token = now_seconds();
    if (!seq.ttft_recorded) {
      seq.ttft_recorded = true;
      seq.timeline.mark(TimelineEventKind::kFirstToken, t_token);
      hist_ttft_.record(t_token -
                        (seq.queued_stamped ? seq.queued_seconds : t0));
    }
    // Inter-token gaps restart here: after a resume replay the next decode
    // step measures from the replay's end, not across the parked interval.
    seq.last_token_seconds = t_token;
  }
  const double wall = now_seconds() - t0;
  seq.prefill_seconds += wall;
  stats.prefilled_tokens += computed;
  stats.prefill_seconds += wall;
}

std::vector<Response> Engine::run(std::span<const Request> requests) {
  KF_TRACE_SCOPE("engine.run");
  // Kernel-level visibility while tracing: the attention timings sink is
  // updated only on the batch-step's calling thread (one shared sink is
  // safe); policy timings are written per sequence inside parallel_for
  // workers, so each sequence carries its own sink (seq.policy_timings,
  // installed at admission). Their deltas become synthetic child spans of
  // each step — the per-ISA kernels themselves stay trace-free.
  const bool tracing = obs::trace_enabled();
  model::AttentionTimings attn_timings;
  struct AttnSinkGuard {
    model::Transformer& model;
    bool active;
    ~AttnSinkGuard() {
      if (active) model.set_attention_timings(nullptr);
    }
  } attn_guard{model_, tracing};
  if (tracing) model_.set_attention_timings(&attn_timings);

  // The run accumulates into this local and publishes snapshots; readers
  // of stats() never observe a half-updated struct.
  EngineStats stats;
  stats.isa = cpu::isa_name(cpu::active_isa());
  publish_stats(stats);
  if (pool_ != nullptr) {
    pool_->reset_peaks();
    stats.pool_capacity_blocks = pool_->stats().capacity_blocks;
  }

  // Containment: an invalid request becomes a kRejected Response with an
  // error string instead of an exception killing the whole batch. The
  // rejected sequence is finished before it is ever submitted; everything
  // else proceeds normally.
  const auto reject = [&stats](Sequence& s, std::string why) {
    s.status = SequenceStatus::kFinished;
    s.finish = FinishReason::kRejected;
    s.error = std::move(why);
    s.timeline.mark(TimelineEventKind::kFinished, now_seconds());
    ++stats.rejections;
  };

  // Materialize sequences (deque: stable addresses for scheduler pointers).
  std::deque<Sequence> seqs;
  for (const Request& req : requests) {
    Sequence s;
    s.id = req.id;
    s.prompt = req.prompt;
    s.gen = req.gen;
    s.arrival_step = req.arrival_step;
    s.deadline_steps = req.deadline_steps;
    s.max_queue_steps = req.max_queue_steps;
    s.n_layers = model_.config().n_layers;
    s.budget = kv::make_budget(s.prompt.empty() ? 1 : s.prompt.size(),
                               s.gen.cache_ratio, s.gen.recent_ratio);
    // Shape the eviction-decision sink once per sequence; its counters
    // accumulate across preemption-resume replays (decisions executed,
    // not unique tokens) and are distilled onto the Response at retire.
    s.eviction.begin_sequence(model_.config().n_layers,
                              model_.config().n_heads,
                              s.prompt.size() + s.gen.max_new_tokens);
    if (req.policy != nullptr) {
      s.policy = req.policy;
    } else {
      s.owned_policy = kv::make_policy(cfg_.policy);
      s.policy = s.owned_policy.get();
    }
    // Prefix-cache participation: engine-built policies only — the cached
    // score snapshots are specific to the engine's policy configuration,
    // and a caller-owned instance may be anything.
    s.prefix_eligible = prefix_index_ != nullptr && req.policy == nullptr;
    s.shared_prefix_hint = req.shared_prefix_hint;
    if (req.prompt.empty()) {
      reject(s, "serve request requires a non-empty prompt");
      seqs.push_back(std::move(s));
      continue;
    }
    if (req.kv_state != nullptr) {
      if (pool_ != nullptr) {
        // Placement decides the shard at admission; a pre-built external
        // state would bypass the pool's accounting entirely.
        reject(s, "paged memory mode cannot take external kv_state instances");
        seqs.push_back(std::move(s));
        continue;
      }
      if (!req.kv_state->matches(model_.config().n_layers,
                                 model_.config().n_heads,
                                 model_.config().d_head())) {
        reject(s, "external kv_state geometry does not match the model");
        seqs.push_back(std::move(s));
        continue;
      }
      s.kv = req.kv_state;
    } else if (pool_ == nullptr) {
      // Size the arenas for the admission peak max(prompt, k+1) — the
      // most this sequence ever holds per layer — so prefill appends
      // never reallocate, and budgeted sequences stop over-reserving
      // their full prompt+gen growth.
      s.owned_kv = std::make_unique<kv::SequenceKvState>(
          model_.make_kv_state(s.admission_cost_tokens()));
      s.kv = s.owned_kv.get();
    }
    // Paged sequences get their state at admission, once the scheduler
    // has placed them on a shard.
    seqs.push_back(std::move(s));
  }

  // Reject shared state up front (first request keeps the instance): two
  // requests on one kv_state (or one policy instance) would clobber each
  // other's caches/score state, and step_batch's own distinctness check
  // only fires mid-run when their lifetimes happen to overlap — long
  // after start_sequence() wiped the other request's in-flight caches.
  {
    std::unordered_set<const void*> kv_seen;
    std::unordered_set<const void*> policy_seen;
    for (Sequence& s : seqs) {
      if (s.finished()) continue;
      if (s.kv != nullptr && s.owned_kv == nullptr &&
          !kv_seen.insert(s.kv).second) {
        reject(s, "serve requests must use distinct kv_state instances");
        continue;
      }
      if (s.owned_policy == nullptr && !policy_seen.insert(s.policy).second) {
        reject(s, "serve requests must use distinct policy instances");
      }
    }
  }

  // Submit the survivors in arrival order (stable: ties keep request
  // order); pre-rejected sequences are already finished.
  std::vector<std::size_t> order(seqs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return seqs[a].arrival_step < seqs[b].arrival_step;
                   });
  BatchScheduler sched(cfg_.scheduler);
  std::size_t finished = 0;
  for (const std::size_t i : order) {
    if (seqs[i].finished()) {
      ++finished;
    } else {
      sched.submit(&seqs[i]);
    }
  }
  publish_stats(stats);

  std::size_t step = 0;
  std::vector<model::DecodeSlot> slots;

  // Captures what the Response needs from the caches, then — in paged
  // mode — tears the sequence's state down so its blocks go back to the
  // shard free list *now*, while the reservation the scheduler is about
  // to release is still backing them. Contiguous states stay alive:
  // external kv_state callers (generate() among them) inspect them after
  // the run.
  const auto retire = [&](Sequence& seq) {
    KF_TRACE_SCOPE("retire", "sched");
    seq.timeline.mark(TimelineEventKind::kFinished, now_seconds());
    if (tracing && seq.policy != nullptr) seq.policy->set_timing_sink(nullptr);
    if (seq.policy != nullptr) seq.policy->set_eviction_sink(nullptr);
    // Fold this sequence's eviction decisions into the run counters, the
    // engine-lifetime aggregate, and the per-policy registry counters.
    stats.eviction_decisions += seq.eviction.decisions();
    stats.evicted_tokens += seq.eviction.tokens_evicted();
    stats.kept_tokens += seq.eviction.tokens_kept();
    if (seq.eviction.decisions() > 0) {
      {
        const LockGuard lock(stats_mu_);
        eviction_agg_.merge(seq.eviction);
      }
      if (seq.policy != nullptr) {
        const std::string base = "evict." + seq.policy->name();
        metrics_.counter(base + ".decisions").add(seq.eviction.decisions());
        metrics_.counter(base + ".tokens_evicted")
            .add(seq.eviction.tokens_evicted());
        metrics_.counter(base + ".tokens_kept")
            .add(seq.eviction.tokens_kept());
      }
    }
    seq.final_cache_sizes.clear();
    if (seq.kv == nullptr) return;  // never started (queue-time timeout)
    for (std::size_t l = 0; l < seq.kv->n_layers(); ++l) {
      seq.final_cache_sizes.push_back(seq.kv->layer_size(l));
    }
    if (pool_ != nullptr) {
      for (std::size_t l = 0; l < seq.kv->n_layers(); ++l) {
        const auto* paged =
            dynamic_cast<const mem::PagedKvCache*>(&seq.kv->layer(l));
        if (paged == nullptr) continue;
        if (prefix_index_ != nullptr) {
          stats.prefix_cow_copies += paged->cow_copies();
        }
        stats.alloc_failures += paged->alloc_failures();
      }
      seq.owned_kv.reset();
      seq.kv = nullptr;
    }
  };

  // Did any layer outgrow its reservation into emergency heap memory?
  // Latched by the no-throw allocation fallback; checked at every step
  // boundary (an escaping exception inside the parallel decode workers
  // is not an option — it would terminate the process).
  const auto kv_alloc_failed = [this](const Sequence& seq) -> bool {
    if (pool_ == nullptr || seq.kv == nullptr) return false;
    for (std::size_t l = 0; l < seq.kv->n_layers(); ++l) {
      const auto* paged =
          dynamic_cast<const mem::PagedKvCache*>(&seq.kv->layer(l));
      if (paged != nullptr && paged->alloc_failed()) return true;
    }
    return false;
  };

  // Admission-time prefix probe: pin a matching shared chain for every
  // waiting eligible sequence so (a) the scheduler charges only the
  // unshared demand on shards holding the chain and (b) the chain cannot
  // be trimmed between the reduced charge and the adoption it promised.
  const auto probe_waiting = [&]() {
    if (prefix_index_ == nullptr) return;
    for (Sequence* seq : sched.waiting()) {
      if (!seq->prefix_eligible || seq->prefix_entry != nullptr) continue;
      // A previous miss stays a miss until the entry set changes; skip
      // the longest-prefix probe until the index's revision moves.
      if (seq->prefix_probed_revision == prefix_index_->revision()) continue;
      seq->prefix_probed_revision = prefix_index_->revision();
      const mem::PrefixEntry* entry =
          prefix_index_->lookup(seq->prompt, seq->prompt.size() - 1);
      if (entry != nullptr) {
        prefix_index_->pin(entry);
        seq->prefix_entry = entry;
        seq->prefix_blocks_per_layer = entry->blocks_per_layer();
      }
    }
  };

  // Progress guard: with the engine idle and the queue head unable to fit,
  // the index's retained chains are the only reclaimable memory — drop
  // them LRU-first (clearing any waiting sequence's pins on the victim)
  // until the head fits or nothing is left to trim.
  const auto trim_for_progress = [&]() -> bool {
    if (prefix_index_ == nullptr) return false;
    const mem::PrefixEntry* victim =
        prefix_index_->lru_candidate(/*include_pinned=*/false);
    if (victim == nullptr) {
      victim = prefix_index_->lru_candidate(/*include_pinned=*/true);
      if (victim == nullptr) return false;
      for (Sequence* seq : sched.waiting()) {
        if (seq->prefix_entry == victim) {
          prefix_index_->unpin(victim);
          seq->prefix_entry = nullptr;
          seq->prefix_blocks_per_layer = 0;
        }
      }
    }
    // try_drop keeps the pin check and the drop under one index-mutex
    // acquisition: a pin landing in between (ours above are cleared, but
    // external pinners exist) makes this a clean false, never a throw.
    return prefix_index_->try_drop(victim);
  };

  // Preemption: release everything the sequence holds — paged state torn
  // down first so its blocks return while the reservation still backs
  // them, mirroring retire() — but keep its committed tokens and re-queue
  // it. Re-admission resumes it by recompute (see start_sequence).
  const auto park = [&](Sequence& seq) {
    KF_TRACE_SCOPE("preempt.park", "sched");
    KF_TRACE_INSTANT("preempt", "sched");
    const double t_park = now_seconds();
    seq.timeline.mark(TimelineEventKind::kPreempted, t_park);
    // Re-queue waits measure from the park, not the original arrival.
    seq.queued_seconds = t_park;
    if (tracing && seq.policy != nullptr) seq.policy->set_timing_sink(nullptr);
    if (seq.policy != nullptr) seq.policy->set_eviction_sink(nullptr);
    if (pool_ != nullptr && seq.kv != nullptr) {
      for (std::size_t l = 0; l < seq.kv->n_layers(); ++l) {
        const auto* paged =
            dynamic_cast<const mem::PagedKvCache*>(&seq.kv->layer(l));
        if (paged != nullptr) stats.alloc_failures += paged->alloc_failures();
      }
      seq.owned_kv.reset();
      seq.kv = nullptr;
    } else if (seq.kv != nullptr) {
      // Token mode: the arena stays with the sequence (it is re-sized
      // state, not shared capacity); dropping the rows releases the
      // abstract budget the scheduler uncharges below.
      seq.kv->clear();
    }
    sched.preempt(&seq, step);
    ++stats.preemptions;
  };

  // A sequence whose pool refused it memory mid-flight parks for a resume
  // under a fresh reservation — unless it already exhausted its preemption
  // cap, in which case it is contained as kRejected (keeping the tokens
  // generated so far) rather than thrash forever.
  const auto park_or_reject = [&](Sequence& seq) {
    if (cfg_.preempt.max_per_sequence > 0 &&
        seq.preemptions >= cfg_.preempt.max_per_sequence) {
      seq.status = SequenceStatus::kFinished;
      seq.finish = FinishReason::kRejected;
      seq.error = "KV block allocation kept failing after " +
                  std::to_string(seq.preemptions) + " preemptions";
      seq.finish_step = step;
      retire(seq);
      sched.release(&seq);
      ++finished;
      ++stats.rejections;
      return;
    }
    park(seq);
  };

  // Deadline enforcement in the engine's virtual clock: shed expired
  // sequences — waiting ones that overstayed deadline_steps or
  // max_queue_steps, active ones past deadline_steps (they keep their
  // generated-so-far tokens) — so a stuck queue frees budget instead of
  // growing.
  const auto past_deadline = [&](const Sequence& seq) {
    return seq.deadline_steps > 0 &&
           step >= seq.arrival_step + seq.deadline_steps;
  };
  const auto shed_timeouts = [&]() {
    const std::vector<Sequence*> waiting(sched.waiting().begin(),
                                         sched.waiting().end());
    for (Sequence* seq : waiting) {
      const bool wait_exceeded =
          seq->max_queue_steps > 0 && step >= seq->queue_enter_step &&
          step - seq->queue_enter_step >= seq->max_queue_steps;
      if (!past_deadline(*seq) && !wait_exceeded) continue;
      sched.remove_waiting(seq);
      if (seq->prefix_entry != nullptr) {
        prefix_index_->unpin(seq->prefix_entry);
        seq->prefix_entry = nullptr;
        seq->prefix_blocks_per_layer = 0;
      }
      seq->status = SequenceStatus::kFinished;
      seq->finish = FinishReason::kTimeout;
      seq->error = past_deadline(*seq)
                       ? "deadline_steps expired while queued"
                       : "queue wait exceeded max_queue_steps";
      seq->finish_step = step;
      seq->timeline.mark(TimelineEventKind::kFinished, now_seconds());
      KF_TRACE_INSTANT("timeout", "sched");
      ++finished;
      ++stats.timeouts;
    }
    const std::vector<Sequence*> active(sched.active().begin(),
                                        sched.active().end());
    for (Sequence* seq : active) {
      if (!past_deadline(*seq)) continue;
      seq->status = SequenceStatus::kFinished;
      seq->finish = FinishReason::kTimeout;
      seq->error = "deadline_steps expired";
      seq->finish_step = step;
      KF_TRACE_INSTANT("timeout", "sched");
      retire(*seq);
      sched.release(seq);
      ++finished;
      ++stats.timeouts;
    }
  };

  // Admission pressure: the queue head has been starved long enough —
  // park the scheduler's chosen victim so the head can take its budget.
  const auto pressure_preempt = [&]() -> bool {
    if (!cfg_.preempt.enabled) return false;
    if (sched.waiting().empty()) return false;
    Sequence* head = sched.waiting().front();
    if (head->arrival_step > step) return false;
    if (step < head->queue_enter_step + cfg_.preempt.queue_pressure_steps) {
      return false;
    }
    Sequence* victim =
        sched.pick_victim(step, cfg_.preempt.min_victim_age_steps,
                          cfg_.preempt.max_per_sequence);
    if (victim == nullptr) return false;
    park(*victim);
    return true;
  };

  // Timeline origin: stamp kQueued the first time the engine sees a
  // sequence arrived (the waiting queue is arrival-ordered, so stop at the
  // first future arrival). TTFT and queue wait measure from this stamp.
  const auto stamp_arrivals = [&]() {
    const double t_now = now_seconds();
    for (Sequence* seq : sched.waiting()) {
      if (seq->arrival_step > step) break;
      if (!seq->queued_stamped) {
        seq->queued_stamped = true;
        seq->queued_seconds = t_now;
        seq->timeline.mark(TimelineEventKind::kQueued, t_now);
      }
    }
  };
  while (finished < seqs.size()) {
    // Idle engine: jump the clock to the next arrival.
    if (sched.active_count() == 0) {
      const auto next = sched.next_arrival();
      if (next.has_value() && *next > step) step = *next;
    }
    stamp_arrivals();

    // Shed expired sequences first: their freed budget is admissible this
    // same step.
    shed_timeouts();

    // Admit + prefill newly eligible sequences; a sequence that finishes
    // during prefill (eos first token, max_new_tokens 0) retires at once,
    // freeing its budget for the next waiting request this same step.
    bool admitted_any = true;
    while (admitted_any) {
      admitted_any = false;
      KF_TRACE_SCOPE("admit");
      probe_waiting();
      for (Sequence* seq : sched.admit(step)) {
        admitted_any = true;
        const double t_admit = now_seconds();
        seq->timeline.mark(TimelineEventKind::kAdmitted, t_admit);
        if (seq->queued_stamped) {
          hist_queue_wait_.record(t_admit - seq->queued_seconds);
        }
        if (tracing) seq->policy->set_timing_sink(&seq->policy_timings);
        seq->policy->set_eviction_sink(&seq->eviction);
        if (pool_ != nullptr) {
          // Materialize the placement decision: layer caches drawing
          // blocks from the shard the scheduler just reserved on.
          seq->owned_kv = std::make_unique<kv::SequenceKvState>(
              *pool_, seq->shard, model_.config().n_layers);
          seq->kv = seq->owned_kv.get();
        }
        // The admission charge covers the transient prefill peak; record
        // it before settling so max_tokens_in_use reflects true memory.
        stats.max_tokens_in_use =
            std::max(stats.max_tokens_in_use, sched.tokens_in_use());
        stats.max_blocks_in_use =
            std::max(stats.max_blocks_in_use, sched.blocks_in_use());
        start_sequence(*seq, step, stats);
        if (!seq->finished() && kv_alloc_failed(*seq)) {
          // Prefill (or resume replay) outgrew its reservation into
          // emergency memory — an injected fault or a capacity race.
          // Park it for a later, fully pool-backed retry.
          park_or_reject(*seq);
          continue;
        }
        {
          KF_TRACE_SCOPE("settle");
          sched.settle(seq);
        }
        if (seq->finished()) {
          seq->finish_step = step;
          retire(*seq);
          sched.release(seq);
          ++finished;
        }
      }
      // Drain admission rejections (demand above a whole shard, or a
      // reservation denied past the retry cap): each becomes a kRejected
      // response, and the queue behind it keeps moving.
      for (Sequence* seq : sched.take_rejected()) {
        if (seq->prefix_entry != nullptr) {
          prefix_index_->unpin(seq->prefix_entry);
          seq->prefix_entry = nullptr;
          seq->prefix_blocks_per_layer = 0;
        }
        seq->finish_step = step;
        seq->timeline.mark(TimelineEventKind::kFinished, now_seconds());
        KF_TRACE_INSTANT("reject", "sched");
        ++finished;
        ++stats.rejections;
      }
      if (!admitted_any) {
        const auto head = sched.next_arrival();
        const bool head_ready = head.has_value() && *head <= step;
        // Idle engine, arrived head, no admission: the prefix cache's
        // retained blocks are squeezing the pool — reclaim and retry.
        if (head_ready && sched.active_count() == 0 && trim_for_progress()) {
          admitted_any = true;
        } else if (head_ready && pressure_preempt()) {
          // Starved head under admission pressure: a victim was parked;
          // retry admission against the freed budget.
          admitted_any = true;
        }
      }
    }

    const std::vector<Sequence*> active(sched.active().begin(),
                                        sched.active().end());
    if (active.empty()) continue;  // everything admitted so far retired

    stats.max_batch = std::max(stats.max_batch, active.size());
    // Per-batch occupancy, published with this step's snapshot — the
    // live series a Monitor samples (the engine loop owns the scheduler,
    // so reading waiting() here is within its threading contract).
    stats.active_sequences = active.size();
    stats.waiting_sequences = sched.waiting().size();
    stats.max_tokens_in_use =
        std::max(stats.max_tokens_in_use, sched.tokens_in_use());
    stats.max_blocks_in_use =
        std::max(stats.max_blocks_in_use, sched.blocks_in_use());
    if (pool_ != nullptr) {
      // Internal fragmentation this step: tokens actually cached vs the
      // whole-block token slots holding them. The prefix index's retained
      // chains are excluded — they are deliberate caching, not slack (an
      // adopted chain is double-discounted here, so the measure clamps).
      const std::size_t index_blocks =
          prefix_index_ != nullptr ? prefix_index_->blocks_held() : 0;
      const std::size_t used = pool_->stats().used_blocks;
      const std::size_t used_tokens =
          (used > index_blocks ? used - index_blocks : 0) *
          pool_->block_tokens();
      if (used_tokens > 0) {
        std::size_t live = 0;
        for (const Sequence* seq : active) live += seq->kv->total_tokens();
        const double frag =
            std::max(0.0, 1.0 - static_cast<double>(live) /
                                    static_cast<double>(used_tokens));
        stats.cur_fragmentation = frag;
        stats.max_fragmentation = std::max(stats.max_fragmentation, frag);
      }
    }

    // One decode step for the whole batch. The step wall covers the model
    // call AND per-sequence sampling/bookkeeping, so decode_seconds is the
    // true decode-phase latency (prefill_seconds likewise includes its
    // first-token selection).
    const double t0 = now_seconds();
    slots.clear();
    for (const Sequence* seq : active) {
      model::DecodeSlot slot;
      slot.token = seq->feed_token();
      slot.position = seq->next_position();
      slot.t = seq->next_t();
      slot.total_steps = seq->gen.max_new_tokens;
      slot.state = seq->kv;
      slot.policy = seq->policy;
      slots.push_back(slot);
    }
    // Kernel-sink baselines: what the timing sinks held before this step,
    // so the step's own project/attend/policy time can be carved into
    // synthetic child spans below.
    std::uint64_t step_ticks0 = 0;
    model::AttentionTimings attn_before = attn_timings;
    double policy_before = 0.0;
    if (tracing) {
      step_ticks0 = trace_ticks();
      for (const Sequence* seq : active) {
        policy_before +=
            seq->policy_timings.score_seconds + seq->policy_timings.evict_seconds;
      }
    }
    Tensor logits;
    {
      KF_TRACE_SCOPE("step_batch");
      logits = model_.step_batch(slots);
    }
    if (tracing) {
      double policy_after = 0.0;
      for (const Sequence* seq : active) {
        policy_after +=
            seq->policy_timings.score_seconds + seq->policy_timings.evict_seconds;
      }
      // Sequential pseudo-spans laid out from the step start: aggregate
      // sink deltas, not real thread-local intervals (policy observe runs
      // per sequence in parallel, so its span can exceed the step wall).
      std::uint64_t t = step_ticks0;
      const auto emit = [&t](const char* name, double seconds) {
        const std::uint64_t d = trace_seconds_to_ticks(seconds);
        obs::trace_complete(name, "kernel", t, t + d);
        t += d;
      };
      emit("attn.project",
           attn_timings.project_seconds - attn_before.project_seconds);
      emit("attn.attend",
           attn_timings.attend_seconds - attn_before.attend_seconds);
      emit("policy.observe", policy_after - policy_before);
    }
    {
      KF_TRACE_SCOPE("sample");
      for (std::size_t b = 0; b < active.size(); ++b) {
        Sequence* seq = active[b];
        seq->peak_cache_tokens =
            std::max(seq->peak_cache_tokens, seq->kv->max_layer_tokens());
        const Token next = model::select_greedy(
            logits.row(b), seq->recent_window(), seq->gen.repetition_penalty,
            seq->gen.banned_tokens);
        seq->commit(next);
        ++stats.decoded_tokens;
      }
    }
    const double dt = now_seconds() - t0;
    stats.decode_seconds += dt;
    ++stats.steps;
    hist_step_.record(dt);
    // Every active sequence committed one token this step: one shared
    // timestamp bounds the per-sequence inter-token gaps.
    const double t_tokens = t0 + dt;
    for (Sequence* seq : active) {
      if (seq->last_token_seconds > 0.0) {
        const double gap = t_tokens - seq->last_token_seconds;
        hist_inter_token_.record(gap);
        seq->inter_token.add(gap);
      }
      seq->last_token_seconds = t_tokens;
    }
    // Keep stats() live mid-run: one snapshot per decode step is the
    // granularity an async front-end polls at (per-token would publish
    // the same struct under the same lock anyway).
    stats.reservation_retries = sched.reservation_retries();
    publish_stats(stats);
    for (Sequence* seq : active) {
      seq->decode_seconds += dt;
      if (seq->finished()) {
        seq->finish_step = step;
        retire(*seq);
        sched.release(seq);
        ++finished;
      } else if (kv_alloc_failed(*seq)) {
        // The step completed exactly (emergency memory holds real rows),
        // but the sequence is over its physical budget: park it and
        // recompute under a fresh reservation.
        park_or_reject(*seq);
      }
    }
    ++step;
  }

  if (pool_ != nullptr) {
    stats.pool_peak_used_blocks = pool_->stats().peak_used_blocks;
  }
  stats.reservation_retries = sched.reservation_retries();
  stats.active_sequences = 0;  // run drained: occupancy series settles to 0
  stats.waiting_sequences = 0;
  publish_stats(stats);

  std::vector<Response> responses;
  responses.reserve(seqs.size());
  for (Sequence& seq : seqs) {
    Response r;
    r.id = seq.id;
    r.tokens = std::move(seq.tokens);
    r.prompt_len = seq.prompt.size();
    r.budget = seq.budget;
    r.final_cache_sizes = std::move(seq.final_cache_sizes);
    r.peak_cache_tokens = seq.peak_cache_tokens;
    r.finish = seq.finish;
    r.error = std::move(seq.error);
    r.preemptions = seq.preemptions;
    r.arrival_step = seq.arrival_step;
    r.first_decode_step = seq.first_decode_step;
    r.finish_step = seq.finish_step;
    r.prefill_seconds = seq.prefill_seconds;
    r.decode_seconds = seq.decode_seconds;
    r.timeline = std::move(seq.timeline);
    r.ttft_seconds = r.timeline.ttft_seconds();
    r.queue_wait_seconds = r.timeline.queue_wait_seconds();
    r.inter_token = seq.inter_token;
    r.eviction = seq.eviction.summary();
    responses.push_back(std::move(r));
  }
  return responses;
}

void add_engine_probes(obs::Monitor& monitor, Engine& engine) {
  Engine* e = &engine;
  monitor.add_probe("engine.steps", [e] {
    return static_cast<double>(e->stats().steps);
  });
  monitor.add_probe("engine.decoded_tokens", [e] {
    return static_cast<double>(e->stats().decoded_tokens);
  });
  monitor.add_probe("engine.prefilled_tokens", [e] {
    return static_cast<double>(e->stats().prefilled_tokens);
  });
  monitor.add_probe("engine.active_sequences", [e] {
    return static_cast<double>(e->stats().active_sequences);
  });
  monitor.add_probe("engine.waiting_sequences", [e] {
    return static_cast<double>(e->stats().waiting_sequences);
  });
  monitor.add_probe("engine.evicted_tokens", [e] {
    return static_cast<double>(e->stats().evicted_tokens);
  });
  if (engine.pool() != nullptr) {
    const mem::BlockPool* pool = engine.pool();
    monitor.add_probe("pool.used_blocks", [pool] {
      return static_cast<double>(pool->stats().used_blocks);
    });
    monitor.add_probe("pool.reserved_blocks", [pool] {
      return static_cast<double>(pool->stats().reserved_blocks);
    });
    monitor.add_probe("pool.fragmentation",
                      [e] { return e->stats().cur_fragmentation; });
  }
  if (engine.prefix_index() != nullptr) {
    monitor.add_probe("prefix.hit_rate",
                      [e] { return e->stats().prefix_hit_rate(); });
  }
  // Per-window latency series (rate + window percentiles) for the two
  // distributions that move every step.
  monitor.add_histogram_probe("step",
                              engine.metrics().histogram("serve.step_seconds"));
  monitor.add_histogram_probe(
      "itl", engine.metrics().histogram("serve.inter_token_seconds"));
}

}  // namespace kf::serve

namespace kf::model {

// Declared in model/generator.h; defined here so the model layer never
// depends on serve/ headers (the wrapper lives with the engine it wraps).
GenerationResult generate(Transformer& model, std::span<const Token> prompt,
                          kv::EvictionPolicy& policy,
                          const GenerationConfig& cfg) {
  if (prompt.empty()) {
    throw std::invalid_argument("generate requires a non-empty prompt");
  }
  // Batch of one through the serving engine: same prefill/decode calls,
  // same sampling, same budget derivation as the classic loop. The model's
  // default KV state is passed through — cleared by start_sequence like any
  // other state — so callers that inspect the caches after generation keep
  // seeing the sequence's final state.
  serve::Engine engine(model, serve::EngineConfig{});
  serve::Request req;
  req.prompt.assign(prompt.begin(), prompt.end());
  req.gen = cfg;
  req.policy = &policy;
  req.kv_state = &model.default_kv_state();
  auto responses = engine.run({&req, 1});
  serve::Response& r = responses.front();

  GenerationResult result;
  result.tokens = std::move(r.tokens);
  result.prompt_len = r.prompt_len;
  result.budget = r.budget;
  result.final_cache_sizes = std::move(r.final_cache_sizes);
  result.peak_cache_tokens = r.peak_cache_tokens;
  result.prefill_seconds = r.prefill_seconds;
  result.decode_seconds = r.decode_seconds;
  return result;
}

}  // namespace kf::model
