#include "serve/engine.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "core/timing.h"

namespace kf::serve {

Engine::Engine(model::Transformer& model, EngineConfig cfg)
    : model_(model), cfg_(std::move(cfg)) {
  if (cfg_.paged.enabled) {
    if (cfg_.paged.n_shards == 0 || cfg_.paged.block_tokens == 0) {
      throw std::invalid_argument(
          "paged memory requires n_shards > 0 and block_tokens > 0");
    }
    mem::BlockPoolConfig pc;
    pc.n_shards = cfg_.paged.n_shards;
    pc.block_tokens = cfg_.paged.block_tokens;
    pc.n_heads = model_.config().n_heads;
    pc.d_head = model_.config().d_head();
    pc.blocks_per_shard = cfg_.paged.blocks_per_shard;
    if (pc.blocks_per_shard == 0 && cfg_.scheduler.max_concurrent_tokens > 0) {
      // Translate the abstract token budget into physical capacity: the
      // budget is per-layer tokens across the active set, so the pool
      // holds n_layers times its block equivalent, split across shards.
      const std::size_t budget_blocks =
          model_.config().n_layers *
          ((cfg_.scheduler.max_concurrent_tokens + pc.block_tokens - 1) /
           pc.block_tokens);
      pc.blocks_per_shard =
          (budget_blocks + pc.n_shards - 1) / pc.n_shards;
    }
    pool_ = std::make_unique<mem::BlockPool>(pc);
    cfg_.scheduler.pool = pool_.get();
  }
}

void Engine::start_sequence(Sequence& seq, std::size_t now_step) {
  seq.policy->set_budget(seq.budget);
  kv::SequenceInfo info;
  info.prompt_len = seq.prompt.size();
  info.total_steps = seq.gen.max_new_tokens;
  info.n_layers = model_.config().n_layers;
  info.n_heads = model_.config().n_heads;
  seq.policy->begin_sequence(info);

  seq.kv->clear();
  const double t0 = now_seconds();
  const Tensor prompt_logits =
      model_.prefill(*seq.kv, seq.prompt, *seq.policy, seq.gen.max_new_tokens);
  seq.peak_cache_tokens = seq.prompt.size();
  seq.first_decode_step = now_step;

  if (seq.gen.max_new_tokens == 0) {
    // Nothing to generate: matches generate(), whose loop never runs.
    seq.status = SequenceStatus::kFinished;
    seq.finish = FinishReason::kLength;
  } else {
    const Token first = model::select_greedy(
        prompt_logits.row(seq.prompt.size() - 1), seq.recent_window(),
        seq.gen.repetition_penalty, seq.gen.banned_tokens);
    seq.commit(first);
  }
  seq.prefill_seconds = now_seconds() - t0;
  stats_.prefilled_tokens += seq.prompt.size();
  stats_.prefill_seconds += seq.prefill_seconds;
}

std::vector<Response> Engine::run(std::span<const Request> requests) {
  stats_ = EngineStats{};
  if (pool_ != nullptr) {
    pool_->reset_peaks();
    stats_.pool_capacity_blocks = pool_->stats().capacity_blocks;
  }

  // Materialize sequences (deque: stable addresses for scheduler pointers).
  std::deque<Sequence> seqs;
  for (const Request& req : requests) {
    if (req.prompt.empty()) {
      throw std::invalid_argument("serve request requires a non-empty prompt");
    }
    Sequence s;
    s.id = req.id;
    s.prompt = req.prompt;
    s.gen = req.gen;
    s.arrival_step = req.arrival_step;
    s.n_layers = model_.config().n_layers;
    s.budget = kv::make_budget(s.prompt.size(), s.gen.cache_ratio,
                               s.gen.recent_ratio);
    if (req.policy != nullptr) {
      s.policy = req.policy;
    } else {
      s.owned_policy = kv::make_policy(cfg_.policy);
      s.policy = s.owned_policy.get();
    }
    if (req.kv_state != nullptr) {
      if (pool_ != nullptr) {
        // Placement decides the shard at admission; a pre-built external
        // state would bypass the pool's accounting entirely.
        throw std::invalid_argument(
            "paged memory mode cannot take external kv_state instances");
      }
      if (!req.kv_state->matches(model_.config().n_layers,
                                 model_.config().n_heads,
                                 model_.config().d_head())) {
        throw std::invalid_argument(
            "external kv_state geometry does not match the model");
      }
      s.kv = req.kv_state;
    } else if (pool_ == nullptr) {
      // Size the arenas for the admission peak max(prompt, k+1) — the
      // most this sequence ever holds per layer — so prefill appends
      // never reallocate, and budgeted sequences stop over-reserving
      // their full prompt+gen growth.
      s.owned_kv = std::make_unique<kv::SequenceKvState>(
          model_.make_kv_state(s.admission_cost_tokens()));
      s.kv = s.owned_kv.get();
    }
    // Paged sequences get their state at admission, once the scheduler
    // has placed them on a shard.
    seqs.push_back(std::move(s));
  }

  // Reject shared state up front: two requests on one kv_state (or one
  // policy instance) would clobber each other's caches/score state, and
  // step_batch's own distinctness check only fires mid-run when their
  // lifetimes happen to overlap — long after start_sequence() wiped the
  // other request's in-flight caches.
  {
    std::unordered_set<const void*> kv_seen;
    std::unordered_set<const void*> policy_seen;
    for (const Sequence& s : seqs) {
      if (s.kv != nullptr && !kv_seen.insert(s.kv).second) {
        throw std::invalid_argument(
            "serve requests must use distinct kv_state instances");
      }
      if (!policy_seen.insert(s.policy).second) {
        throw std::invalid_argument(
            "serve requests must use distinct policy instances");
      }
    }
  }

  // Submit in arrival order (stable: ties keep request order).
  std::vector<std::size_t> order(seqs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return seqs[a].arrival_step < seqs[b].arrival_step;
                   });
  BatchScheduler sched(cfg_.scheduler);
  for (const std::size_t i : order) sched.submit(&seqs[i]);

  std::size_t finished = 0;
  std::size_t step = 0;
  std::vector<model::DecodeSlot> slots;

  // Captures what the Response needs from the caches, then — in paged
  // mode — tears the sequence's state down so its blocks go back to the
  // shard free list *now*, while the reservation the scheduler is about
  // to release is still backing them. Contiguous states stay alive:
  // external kv_state callers (generate() among them) inspect them after
  // the run.
  const auto retire = [&](Sequence& seq) {
    seq.final_cache_sizes.clear();
    for (std::size_t l = 0; l < seq.kv->n_layers(); ++l) {
      seq.final_cache_sizes.push_back(seq.kv->layer_size(l));
    }
    if (pool_ != nullptr) {
      seq.owned_kv.reset();
      seq.kv = nullptr;
    }
  };
  while (finished < seqs.size()) {
    // Idle engine: jump the clock to the next arrival.
    if (sched.active_count() == 0) {
      const auto next = sched.next_arrival();
      if (next.has_value() && *next > step) step = *next;
    }

    // Admit + prefill newly eligible sequences; a sequence that finishes
    // during prefill (eos first token, max_new_tokens 0) retires at once,
    // freeing its budget for the next waiting request this same step.
    bool admitted_any = true;
    while (admitted_any) {
      admitted_any = false;
      for (Sequence* seq : sched.admit(step)) {
        admitted_any = true;
        if (pool_ != nullptr) {
          // Materialize the placement decision: layer caches drawing
          // blocks from the shard the scheduler just reserved on.
          seq->owned_kv = std::make_unique<kv::SequenceKvState>(
              *pool_, seq->shard, model_.config().n_layers);
          seq->kv = seq->owned_kv.get();
        }
        // The admission charge covers the transient prefill peak; record
        // it before settling so max_tokens_in_use reflects true memory.
        stats_.max_tokens_in_use =
            std::max(stats_.max_tokens_in_use, sched.tokens_in_use());
        stats_.max_blocks_in_use =
            std::max(stats_.max_blocks_in_use, sched.blocks_in_use());
        start_sequence(*seq, step);
        sched.settle(seq);
        if (seq->finished()) {
          seq->finish_step = step;
          retire(*seq);
          sched.release(seq);
          ++finished;
        }
      }
    }

    const std::vector<Sequence*> active(sched.active().begin(),
                                        sched.active().end());
    if (active.empty()) continue;  // everything admitted so far retired

    stats_.max_batch = std::max(stats_.max_batch, active.size());
    stats_.max_tokens_in_use =
        std::max(stats_.max_tokens_in_use, sched.tokens_in_use());
    stats_.max_blocks_in_use =
        std::max(stats_.max_blocks_in_use, sched.blocks_in_use());
    if (pool_ != nullptr) {
      // Internal fragmentation this step: tokens actually cached vs the
      // whole-block token slots holding them.
      const std::size_t used_tokens =
          pool_->stats().used_blocks * pool_->block_tokens();
      if (used_tokens > 0) {
        std::size_t live = 0;
        for (const Sequence* seq : active) live += seq->kv->total_tokens();
        stats_.max_fragmentation = std::max(
            stats_.max_fragmentation,
            1.0 - static_cast<double>(live) /
                      static_cast<double>(used_tokens));
      }
    }

    // One decode step for the whole batch. The step wall covers the model
    // call AND per-sequence sampling/bookkeeping, so decode_seconds is the
    // true decode-phase latency (prefill_seconds likewise includes its
    // first-token selection).
    const double t0 = now_seconds();
    slots.clear();
    for (const Sequence* seq : active) {
      model::DecodeSlot slot;
      slot.token = seq->feed_token();
      slot.position = seq->next_position();
      slot.t = seq->next_t();
      slot.total_steps = seq->gen.max_new_tokens;
      slot.state = seq->kv;
      slot.policy = seq->policy;
      slots.push_back(slot);
    }
    const Tensor logits = model_.step_batch(slots);
    for (std::size_t b = 0; b < active.size(); ++b) {
      Sequence* seq = active[b];
      seq->peak_cache_tokens =
          std::max(seq->peak_cache_tokens, seq->kv->max_layer_tokens());
      const Token next = model::select_greedy(
          logits.row(b), seq->recent_window(), seq->gen.repetition_penalty,
          seq->gen.banned_tokens);
      seq->commit(next);
      ++stats_.decoded_tokens;
    }
    const double dt = now_seconds() - t0;
    stats_.decode_seconds += dt;
    ++stats_.steps;
    for (Sequence* seq : active) {
      seq->decode_seconds += dt;
      if (seq->finished()) {
        seq->finish_step = step;
        retire(*seq);
        sched.release(seq);
        ++finished;
      }
    }
    ++step;
  }

  if (pool_ != nullptr) {
    stats_.pool_peak_used_blocks = pool_->stats().peak_used_blocks;
  }

  std::vector<Response> responses;
  responses.reserve(seqs.size());
  for (Sequence& seq : seqs) {
    Response r;
    r.id = seq.id;
    r.tokens = std::move(seq.tokens);
    r.prompt_len = seq.prompt.size();
    r.budget = seq.budget;
    r.final_cache_sizes = std::move(seq.final_cache_sizes);
    r.peak_cache_tokens = seq.peak_cache_tokens;
    r.finish = seq.finish;
    r.arrival_step = seq.arrival_step;
    r.first_decode_step = seq.first_decode_step;
    r.finish_step = seq.finish_step;
    r.prefill_seconds = seq.prefill_seconds;
    r.decode_seconds = seq.decode_seconds;
    responses.push_back(std::move(r));
  }
  return responses;
}

}  // namespace kf::serve

namespace kf::model {

// Declared in model/generator.h; defined here so the model layer never
// depends on serve/ headers (the wrapper lives with the engine it wraps).
GenerationResult generate(Transformer& model, std::span<const Token> prompt,
                          kv::EvictionPolicy& policy,
                          const GenerationConfig& cfg) {
  if (prompt.empty()) {
    throw std::invalid_argument("generate requires a non-empty prompt");
  }
  // Batch of one through the serving engine: same prefill/decode calls,
  // same sampling, same budget derivation as the classic loop. The model's
  // default KV state is passed through — cleared by start_sequence like any
  // other state — so callers that inspect the caches after generation keep
  // seeing the sequence's final state.
  serve::Engine engine(model, serve::EngineConfig{});
  serve::Request req;
  req.prompt.assign(prompt.begin(), prompt.end());
  req.gen = cfg;
  req.policy = &policy;
  req.kv_state = &model.default_kv_state();
  auto responses = engine.run({&req, 1});
  serve::Response& r = responses.front();

  GenerationResult result;
  result.tokens = std::move(r.tokens);
  result.prompt_len = r.prompt_len;
  result.budget = r.budget;
  result.final_cache_sizes = std::move(r.final_cache_sizes);
  result.peak_cache_tokens = r.peak_cache_tokens;
  result.prefill_seconds = r.prefill_seconds;
  result.decode_seconds = r.decode_seconds;
  return result;
}

}  // namespace kf::model
