// The serving engine: continuous batching of independent generation
// requests over one shared model.
//
// Structure (the Table 1 serving stack):
//   Request --> Sequence (own KV caches + own policy instance + sampling
//   state) --> BatchScheduler (admission under a batch-size and KV-memory
//   budget) --> Engine loop:
//       1. admit newly arrived requests that fit, prefilling each
//          (prefill runs one sequence at a time, like the decode-centric
//          continuous-batching servers this models);
//       2. decode ONE token for every active sequence with a single
//          Transformer::step_batch call — one QKV/output projection GEMM
//          across the batch, per-sequence fused attention;
//       3. sample per sequence (greedy + repetition penalty/ban list,
//          identical to generate());
//       4. retire finished sequences, freeing budget so waiting requests
//          join mid-stream.
// The engine clock is the decode-step index; request arrival_step is
// expressed in it, making staggered-arrival runs deterministic.
//
// generate() is a batch-of-one client of this engine and remains
// token-for-token identical to the pre-engine loop.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/annotations.h"
#include "core/mutex.h"
#include "kvcache/policy_factory.h"
#include "mem/block_pool.h"
#include "mem/prefix_index.h"
#include "model/transformer.h"
#include "obs/metrics.h"
#include "serve/scheduler.h"
#include "serve/sequence.h"

namespace kf::obs {
class Monitor;
}

namespace kf::serve {

/// Paged KV memory: the engine owns a sharded mem::BlockPool, sequences
/// get PagedKvCache layers placed on a shard at admission, and the
/// scheduler's budget becomes a real block reservation (see scheduler.h).
struct PagedMemoryConfig {
  bool enabled = false;
  std::size_t n_shards = 1;
  std::size_t block_tokens = 16;
  /// Hard per-shard cap; 0 derives it from the scheduler token budget
  /// (n_layers * ceil(max_concurrent_tokens / block_tokens), split across
  /// shards) or leaves the pool unbounded when that budget is 0 too.
  std::size_t blocks_per_shard = 0;
};

/// Cross-request prefix cache (requires paged memory): prompts sharing a
/// block-aligned prefix adopt one immutable block chain per layer instead
/// of re-prefilling it, copy-on-write when eviction mutates a block. The
/// index lives as long as the engine (it keeps paying off across run()
/// calls); clear_prefix_cache() drops it. Only requests using the
/// engine-built policy participate — the cached score snapshots are
/// policy-specific.
struct PrefixCacheConfig {
  bool enabled = false;
  /// Block budget for the index (entries + shard replicas); LRU entries
  /// are trimmed to fit. 0 = bounded only by pool capacity. When the pool
  /// capacity is derived from the scheduler token budget, this budget is
  /// added on top so caching never shrinks admission capacity.
  std::size_t max_blocks = 0;
  /// Shortest prefix worth indexing, in tokens (default: one pool block).
  std::size_t min_tokens = 0;
};

/// Decode-phase preemption with recompute-based resume. When admission
/// pressure leaves the queue head starved, the engine parks a victim —
/// youngest arrival first — releasing its blocks/budget while keeping its
/// generated tokens; re-admission re-prefills the prompt and replays the
/// parked tokens step by step, which is token-exact (the decode path is
/// bit-exact regardless of batch composition, and policies are
/// deterministic given the sequence seed). The age floor and per-sequence
/// cap bound the recompute overhead and guarantee forward progress: each
/// preemption cycle a victim pays for has committed at least
/// min_victim_age_steps new tokens, at most max_per_sequence times.
struct PreemptionConfig {
  /// Master switch for pressure-triggered preemption. Forced parking on a
  /// mid-decode allocation failure is always on — a sequence holding
  /// emergency (non-pool) memory cannot keep decoding past the cap.
  bool enabled = true;
  /// Steps the queue head must sit arrived-but-unadmitted before the
  /// engine preempts a victim for it.
  std::size_t queue_pressure_steps = 8;
  /// Steps a sequence must have been active before it qualifies as a
  /// victim.
  std::size_t min_victim_age_steps = 4;
  /// Preemptions one sequence tolerates; past the cap it is no longer
  /// victimized, and a forced park instead rejects it. 0 = unlimited
  /// (not recommended: a permanently failing pool could then park the
  /// same sequence forever).
  std::size_t max_per_sequence = 8;
};

struct EngineConfig {
  SchedulerConfig scheduler;
  /// Built per sequence for requests that don't bring their own policy.
  kv::PolicyConfig policy;
  PagedMemoryConfig paged;
  PrefixCacheConfig prefix;
  PreemptionConfig preempt;
};

/// Aggregate counters of one run() call.
struct EngineStats {
  std::size_t steps = 0;             ///< decode iterations executed
  std::size_t decoded_tokens = 0;    ///< tokens produced by decode steps
  std::size_t prefilled_tokens = 0;  ///< prompt tokens processed
  std::size_t max_batch = 0;         ///< peak concurrent sequences
  std::size_t max_tokens_in_use = 0; ///< peak summed charged KV tokens
                                     ///< (includes transient prefill peaks)
  // Paged-pool visibility (all zero when paging is disabled):
  std::size_t max_blocks_in_use = 0;     ///< peak scheduler-reserved blocks
  std::size_t pool_peak_used_blocks = 0; ///< peak physically held blocks
  std::size_t pool_capacity_blocks = 0;  ///< aggregate cap (0 = unbounded)
  /// Worst per-step internal fragmentation: 1 - live_tokens /
  /// (used_blocks * block_tokens) — the whole-block surcharge paging pays.
  double max_fragmentation = 0.0;
  // Prefix-cache visibility (all zero when the prefix cache is disabled):
  std::size_t prefix_hits = 0;    ///< prompts that adopted a shared chain
  std::size_t prefix_misses = 0;  ///< eligible prompts that found none
  /// Prompt tokens whose prefill was skipped (replayed from shared K/V).
  std::size_t prefix_tokens_reused = 0;
  /// Block adoptions served by sharing instead of fresh allocation
  /// (layers x chain blocks, summed over hits).
  std::size_t prefix_blocks_shared = 0;
  /// Shared blocks privately copied when eviction/append first wrote them.
  std::size_t prefix_cow_copies = 0;
  // Robustness counters (published mid-run like everything else):
  std::size_t preemptions = 0;  ///< sequences parked mid-decode
  std::size_t timeouts = 0;     ///< kTimeout finishes (deadline/queue cap)
  std::size_t rejections = 0;   ///< kRejected finishes (containment)
  /// Generated tokens recomputed by preempt/resume replays — the decode
  /// work paid twice, the price of recompute-based resume.
  std::size_t resume_replayed_tokens = 0;
  /// Admissions rolled back because a block reservation failed after
  /// fits() (TOCTOU losses against prefix-index activity, injected
  /// faults); each retried cleanly on a later round.
  std::size_t reservation_retries = 0;
  /// Block allocations that fell back to emergency heap memory (the
  /// no-throw decode path); every one forces a park or retirement.
  std::size_t alloc_failures = 0;
  // Live-occupancy fields (current values at the publish point, not
  // peaks — what a Monitor's per-batch occupancy series samples):
  std::size_t active_sequences = 0;   ///< batch size at the last step
  std::size_t waiting_sequences = 0;  ///< queue depth at the last step
  /// Internal fragmentation at the last step (see max_fragmentation).
  double cur_fragmentation = 0.0;
  // Eviction introspection, accumulated at retirement from each
  // sequence's EvictionTelemetry (replayed resume decisions included):
  std::size_t eviction_decisions = 0;  ///< compaction events executed
  std::size_t evicted_tokens = 0;      ///< cache rows dropped
  std::size_t kept_tokens = 0;         ///< cache rows retained at decisions
  double prefill_seconds = 0.0;
  double decode_seconds = 0.0;  ///< summed batch-step walls
  // Latency distributions (seconds), extracted from the engine's metrics
  // histograms at every publish point. The histograms accumulate over the
  // engine's *lifetime* — a monitoring surface, like the prefix index —
  // so across several run() calls these summarize all of them.
  obs::Percentiles ttft;          ///< first token minus first-seen-queued
  obs::Percentiles inter_token;   ///< gaps between committed decode tokens
  obs::Percentiles queue_wait;    ///< admission minus queued (per admission)
  obs::Percentiles step_latency;  ///< per batched decode step wall
  /// CPU ISA the kernel dispatcher routed this run to (cpu::isa_name of
  /// the active ISA — "scalar"/"avx2"/"avx512"), so throughput artifacts
  /// stay comparable across heterogeneous CI runners. Static-storage
  /// string; safe to copy around.
  const char* isa = "";

  /// Fraction of prefix-eligible prompts that hit the shared index.
  double prefix_hit_rate() const {
    const std::size_t total = prefix_hits + prefix_misses;
    return total > 0 ? static_cast<double>(prefix_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }

  /// Aggregate decode throughput across all sequences (the bench metric:
  /// total decode-produced tokens per decode-phase second).
  double decode_tokens_per_s() const {
    return decoded_tokens > 0 && decode_seconds > 0.0
               ? static_cast<double>(decoded_tokens) / decode_seconds
               : 0.0;
  }
};

class Engine {
 public:
  explicit Engine(model::Transformer& model, EngineConfig cfg = {});

  const EngineConfig& config() const noexcept { return cfg_; }
  /// The engine's metrics registry: serving counters and the latency
  /// histograms behind EngineStats' percentile fields. The scheduler,
  /// block pool, and prefix index it owns record here too. Internally
  /// synchronized — safe to read from a monitoring thread mid-run.
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// Snapshot of the most recent run()'s counters. run() accumulates
  /// into run-local state and publishes under the stats mutex — at start,
  /// after every decode step, and at finish — so this is safe to call
  /// from any thread and tracks a run in flight at decode-step
  /// granularity: the monitoring hook the async front-end will poll.
  EngineStats stats() const KF_EXCLUDES(stats_mu_);
  /// The engine-owned block pool; null unless cfg.paged.enabled. Between
  /// run() calls the only blocks off the free lists are the prefix
  /// index's retained chains (leak-checked by tests).
  const mem::BlockPool* pool() const noexcept { return pool_.get(); }

  /// The engine-owned prefix index; null unless cfg.prefix.enabled.
  const mem::PrefixIndex* prefix_index() const noexcept {
    return prefix_index_.get();
  }

  /// Drops every cached prefix chain (their blocks and reservations return
  /// to the pool). Harmless when the prefix cache is disabled.
  void clear_prefix_cache() {
    if (prefix_index_ != nullptr) prefix_index_->clear();
  }

  /// Drives every request to completion under continuous batching.
  /// Responses are returned in the order of `requests` (not completion
  /// order). Every request terminates with a definite finish reason:
  /// invalid or un-servable requests (empty prompt, mismatched external
  /// KV state, shared kv_state/policy instances, demand above a whole
  /// shard) are contained as kRejected responses with an error string —
  /// they never throw, and the rest of the batch keeps decoding.
  std::vector<Response> run(std::span<const Request> requests);

  /// Aggregate eviction telemetry over the engine's lifetime: every
  /// retired sequence's per-(layer,head) eviction histograms merged into
  /// one (see kvcache/eviction_telemetry.h). Copied under the stats
  /// mutex — safe to call from a monitoring thread mid-run; sequences
  /// still in flight contribute at their retirement.
  kv::EvictionTelemetry eviction_report() const KF_EXCLUDES(stats_mu_);

  /// Installs (nullptr: clears) a fault injector on the engine-owned
  /// block pool — the chaos-testing hook (see serve/fault.h). No-op when
  /// paged memory is disabled. The injector must outlive its installation.
  void set_fault_injector(mem::FaultInjector* injector) noexcept {
    if (pool_ != nullptr) pool_->set_fault_injector(injector);
  }

 private:
  /// Prefill + first-token selection for a newly admitted sequence. With
  /// the prefix cache on: adopt a matching shared chain and prefill only
  /// the suffix, or chunk the prefill at the shareable boundary and insert
  /// the prefix chain into the index for the requests behind this one.
  /// Re-admission of a preempted sequence (seq.tokens non-empty) prefills
  /// the prompt the same way, then replays the parked tokens through
  /// single-sequence decode steps — exact recomputation of the evicted
  /// state. Counters accrue into `stats`, the run's local accumulator.
  void start_sequence(Sequence& seq, std::size_t now_step, EngineStats& stats);
  /// Prefix boundary this sequence would index on a miss (block-aligned,
  /// below the prompt end, at least the index minimum); 0 = don't index.
  std::size_t insertable_prefix_tokens(const Sequence& seq) const;
  /// Publishes a run's accumulator as the visible stats() snapshot.
  void publish_stats(const EngineStats& stats) KF_EXCLUDES(stats_mu_);

  model::Transformer& model_;
  EngineConfig cfg_;
  /// Guards the published stats snapshot: run() works on a local
  /// accumulator and publishes here, so readers never see a torn update.
  mutable Mutex stats_mu_;
  EngineStats stats_ KF_GUARDED_BY(stats_mu_);
  /// Engine-lifetime eviction aggregate (see eviction_report()).
  kv::EvictionTelemetry eviction_agg_ KF_GUARDED_BY(stats_mu_);
  /// Declared before the pool/index so it outlives them on destruction
  /// (they hold counter pointers into it).
  obs::MetricsRegistry metrics_;
  /// Latency histograms, resolved once (registry lookups lock).
  obs::Histogram& hist_ttft_;
  obs::Histogram& hist_inter_token_;
  obs::Histogram& hist_queue_wait_;
  obs::Histogram& hist_step_;
  std::unique_ptr<mem::BlockPool> pool_;
  std::unique_ptr<mem::PrefixIndex> prefix_index_;
};

/// Registers the standard serving probes on `monitor`: engine progress
/// counters (steps, decoded/prefilled tokens, evicted tokens), per-batch
/// occupancy (active/waiting sequences), pool used/reserved blocks and
/// fragmentation, prefix-cache hit rate, plus per-window rate/percentile
/// histogram probes for the step and inter-token latency distributions.
/// Every probe reads a thread-safe surface (Engine::stats(),
/// BlockPool::stats(), registry histograms), so the monitor may poll a
/// run in flight. `engine` must outlive the polling.
void add_engine_probes(obs::Monitor& monitor, Engine& engine);

}  // namespace kf::serve
