#include "serve/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "mem/block_pool.h"
#include "mem/prefix_index.h"
#include "obs/metrics.h"

namespace kf::serve {

BatchScheduler::BatchScheduler(SchedulerConfig cfg) : cfg_(cfg) {
  if (cfg_.metrics != nullptr) {
    ctr_admitted_ = &cfg_.metrics->counter("sched.admitted");
    ctr_rejected_ = &cfg_.metrics->counter("sched.rejected");
    ctr_preempted_ = &cfg_.metrics->counter("sched.preempted");
    ctr_retries_ = &cfg_.metrics->counter("sched.reservation_retries");
  }
}

void BatchScheduler::submit(Sequence* seq) {
  if (seq == nullptr) throw std::invalid_argument("submit(nullptr)");
  if (cfg_.pool != nullptr && seq->n_layers == 0) {
    throw std::invalid_argument(
        "block-mode scheduling requires seq->n_layers > 0");
  }
  seq->status = SequenceStatus::kWaiting;
  seq->queue_enter_step = seq->arrival_step;
  waiting_.push_back(seq);
}

std::optional<std::size_t> BatchScheduler::pick_shard(
    const std::vector<std::size_t>& candidates, std::size_t demand) const {
  if (candidates.empty()) return std::nullopt;
  if (cfg_.placement == ShardPlacement::kRoundRobin) {
    // Pure lookup: the cursor advances only when admit() actually places
    // a sequence (fits() probes this too and must not burn a turn).
    const std::size_t n = cfg_.pool->n_shards();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t s = (rr_next_ + i) % n;
      if (std::find(candidates.begin(), candidates.end(), s) ==
          candidates.end()) {
        continue;
      }
      if (cfg_.pool->unreserved_blocks(s) >= demand) return s;
    }
    return std::nullopt;
  }
  // Least loaded: fewest reserved blocks (capacity is uniform per shard,
  // so this equals most-free in bounded mode and still spreads load when
  // the pool is unbounded). Ties break to the lowest id so admission
  // stays deterministic.
  std::size_t best = candidates.front();
  std::size_t best_load = cfg_.pool->shard_stats(best).reserved_blocks;
  for (const std::size_t s : candidates) {
    const std::size_t load = cfg_.pool->shard_stats(s).reserved_blocks;
    if (load < best_load) {
      best = s;
      best_load = load;
    }
  }
  if (cfg_.pool->unreserved_blocks(best) >= demand) return best;
  return std::nullopt;
}

std::optional<BatchScheduler::Placement> BatchScheduler::choose_shard(
    const Sequence& seq) const {
  const std::size_t bt = cfg_.pool->block_tokens();
  const std::size_t n = cfg_.pool->n_shards();
  const std::size_t full = seq.admission_cost_blocks(bt);
  // Prefix affinity first: shards already holding the sequence's shared
  // chain serve it at the unshared demand — both cheaper for the pool and
  // the only placement that keeps chain reads shard-local.
  if (seq.prefix_entry != nullptr && seq.prefix_blocks_per_layer > 0 &&
      cfg_.prefix_index != nullptr) {
    const std::size_t reduced = seq.unshared_admission_blocks(bt);
    std::vector<std::size_t> resident;
    for (std::size_t s = 0; s < n; ++s) {
      if (cfg_.prefix_index->resident_on(seq.prefix_entry, s)) {
        resident.push_back(s);
      }
    }
    if (const auto s = pick_shard(resident, reduced)) {
      return Placement{*s, reduced};
    }
  }
  std::vector<std::size_t> all(n);
  for (std::size_t s = 0; s < n; ++s) all[s] = s;
  if (const auto s = pick_shard(all, full)) return Placement{*s, full};
  return std::nullopt;
}

bool BatchScheduler::fits(const Sequence& seq) const {
  if (cfg_.max_batch_size > 0 && active_.size() >= cfg_.max_batch_size) {
    return false;
  }
  if (cfg_.pool != nullptr) {
    return choose_shard(seq).has_value();
  }
  if (cfg_.max_concurrent_tokens == 0) return true;
  const std::size_t cost = seq.admission_cost_tokens();
  if (tokens_in_use() + cost <= cfg_.max_concurrent_tokens) return true;
  // Oversized sequences (admission cost > whole budget) run solo instead
  // of blocking the queue forever.
  return cost > cfg_.max_concurrent_tokens && active_.empty();
}

std::vector<Sequence*> BatchScheduler::admit(std::size_t now_step) {
  std::vector<Sequence*> admitted;
  while (!waiting_.empty()) {
    Sequence* head = waiting_.front();
    if (head->arrival_step > now_step) break;
    if (cfg_.pool != nullptr) {
      // A demand above a whole (bounded) shard can never be satisfied —
      // the cap is physical, there is no run-solo override. Reject the
      // request instead of deadlocking the FIFO; admission moves on to
      // the next waiting sequence. The check uses the smallest
      // conceivable charge: a pinned prefix match shrinks demand on its
      // resident shards.
      const std::size_t per_shard = cfg_.pool->config().blocks_per_shard;
      const std::size_t bt = cfg_.pool->block_tokens();
      const std::size_t min_demand =
          head->prefix_entry != nullptr
              ? head->unshared_admission_blocks(bt)
              : head->admission_cost_blocks(bt);
      if (per_shard > 0 && min_demand > per_shard) {
        waiting_.pop_front();
        head->status = SequenceStatus::kFinished;
        head->finish = FinishReason::kRejected;
        head->error =
            "sequence KV demand exceeds a whole pool shard; grow "
            "blocks_per_shard or reduce the request";
        rejected_.push_back(head);
        if (ctr_rejected_ != nullptr) ctr_rejected_->add();
        continue;
      }
    }
    if (!fits(*head)) break;
    waiting_.pop_front();
    head->status = SequenceStatus::kActive;
    head->charged_tokens = head->admission_cost_tokens();
    {
      const LockGuard lock(counters_mu_);
      tokens_in_use_ += head->charged_tokens;
    }
    if (cfg_.pool != nullptr) {
      const auto placement = choose_shard(*head);
      // fits() said yes a moment ago, but the reservation can still be
      // refused: a prefix-index insert/replication on another code path
      // claimed the capacity in between (TOCTOU), or a fault injector
      // vetoed it. Roll the admission back and retry next round — or
      // reject once the same sequence has lost too many rounds in a row
      // for a race to be the explanation.
      if (!placement.has_value() ||
          !cfg_.pool->try_reserve(placement->shard, placement->demand)) {
        {
          const LockGuard lock(counters_mu_);
          tokens_in_use_ -= head->charged_tokens;
          ++reservation_retries_;
        }
        if (ctr_retries_ != nullptr) ctr_retries_->add();
        head->charged_tokens = 0;
        ++head->reserve_failures;
        if (cfg_.max_reserve_retries > 0 &&
            head->reserve_failures > cfg_.max_reserve_retries) {
          head->status = SequenceStatus::kFinished;
          head->finish = FinishReason::kRejected;
          head->error = "block reservation denied " +
                        std::to_string(head->reserve_failures) +
                        " consecutive admission rounds";
          rejected_.push_back(head);
          if (ctr_rejected_ != nullptr) ctr_rejected_->add();
          continue;
        }
        head->status = SequenceStatus::kWaiting;
        waiting_.push_front(head);
        break;
      }
      head->reserve_failures = 0;
      head->shard = placement->shard;
      head->reserved_blocks = placement->demand;
      {
        const LockGuard lock(counters_mu_);
        blocks_in_use_ += placement->demand;
      }
      rr_next_ = (placement->shard + 1) % cfg_.pool->n_shards();
    }
    head->admitted_step = now_step;
    active_.push_back(head);
    admitted.push_back(head);
    if (ctr_admitted_ != nullptr) ctr_admitted_->add();
  }
  return admitted;
}

std::vector<Sequence*> BatchScheduler::take_rejected() {
  std::vector<Sequence*> out;
  out.swap(rejected_);
  return out;
}

void BatchScheduler::preempt(Sequence* seq, std::size_t now_step) {
  const auto it = std::find(active_.begin(), active_.end(), seq);
  if (it == active_.end()) {
    throw std::invalid_argument("preempt of a sequence that is not active");
  }
  active_.erase(it);
  {
    const LockGuard lock(counters_mu_);
    tokens_in_use_ -= seq->charged_tokens;
  }
  seq->charged_tokens = 0;
  if (cfg_.pool != nullptr && seq->shard != Sequence::kNoShard) {
    cfg_.pool->unreserve(seq->shard, seq->reserved_blocks);
    {
      const LockGuard lock(counters_mu_);
      blocks_in_use_ -= seq->reserved_blocks;
    }
    seq->reserved_blocks = 0;
    seq->shard = Sequence::kNoShard;
  }
  ++seq->preemptions;
  if (ctr_preempted_ != nullptr) ctr_preempted_->add();
  seq->status = SequenceStatus::kWaiting;
  seq->queue_enter_step = now_step;
  // Re-queue behind every already-arrived waiter — the starved head that
  // triggered the preemption must get the freed budget, not the victim
  // right back — but ahead of arrivals still in the future, preserving
  // the queue's arrival ordering for next_arrival() clock jumps.
  const auto pos =
      std::find_if(waiting_.begin(), waiting_.end(), [&](const Sequence* w) {
        return w->arrival_step > now_step;
      });
  waiting_.insert(pos, seq);
}

Sequence* BatchScheduler::pick_victim(std::size_t now_step,
                                      std::size_t min_age_steps,
                                      std::size_t max_preemptions) const {
  Sequence* best = nullptr;
  for (Sequence* s : active_) {
    if (max_preemptions > 0 && s->preemptions >= max_preemptions) continue;
    if (now_step - s->admitted_step < min_age_steps) continue;
    // Youngest arrival pays; >= breaks ties toward the latest admission
    // (active_ is admission-ordered), i.e. the least sunk work.
    if (best == nullptr || s->arrival_step >= best->arrival_step) best = s;
  }
  return best;
}

bool BatchScheduler::remove_waiting(Sequence* seq) {
  const auto it = std::find(waiting_.begin(), waiting_.end(), seq);
  if (it == waiting_.end()) return false;
  waiting_.erase(it);
  return true;
}

void BatchScheduler::settle(Sequence* seq) {
  const auto it = std::find(active_.begin(), active_.end(), seq);
  if (it == active_.end()) {
    throw std::invalid_argument("settle of a sequence that is not active");
  }
  const std::size_t steady = seq->cost_tokens();
  {
    const LockGuard lock(counters_mu_);
    tokens_in_use_ -=
        seq->charged_tokens - std::min(seq->charged_tokens, steady);
  }
  seq->charged_tokens = std::min(seq->charged_tokens, steady);
  if (cfg_.pool != nullptr && seq->shard != Sequence::kNoShard) {
    const std::size_t steady_blocks =
        std::min(seq->reserved_blocks,
                 seq->cost_blocks(cfg_.pool->block_tokens()));
    const std::size_t excess = seq->reserved_blocks - steady_blocks;
    if (excess > 0) {
      cfg_.pool->unreserve(seq->shard, excess);
      seq->reserved_blocks = steady_blocks;
      const LockGuard lock(counters_mu_);
      blocks_in_use_ -= excess;
    }
  }
}

void BatchScheduler::release(Sequence* seq) {
  const auto it = std::find(active_.begin(), active_.end(), seq);
  if (it == active_.end()) {
    throw std::invalid_argument("release of a sequence that is not active");
  }
  active_.erase(it);
  {
    const LockGuard lock(counters_mu_);
    tokens_in_use_ -= seq->charged_tokens;
  }
  seq->charged_tokens = 0;
  if (cfg_.pool != nullptr && seq->shard != Sequence::kNoShard) {
    cfg_.pool->unreserve(seq->shard, seq->reserved_blocks);
    {
      const LockGuard lock(counters_mu_);
      blocks_in_use_ -= seq->reserved_blocks;
    }
    seq->reserved_blocks = 0;
    seq->shard = Sequence::kNoShard;
  }
}

std::optional<std::size_t> BatchScheduler::next_arrival() const {
  if (waiting_.empty()) return std::nullopt;
  return waiting_.front()->arrival_step;
}

}  // namespace kf::serve
