#include "serve/scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace kf::serve {

BatchScheduler::BatchScheduler(SchedulerConfig cfg) : cfg_(cfg) {}

void BatchScheduler::submit(Sequence* seq) {
  if (seq == nullptr) throw std::invalid_argument("submit(nullptr)");
  seq->status = SequenceStatus::kWaiting;
  waiting_.push_back(seq);
}

bool BatchScheduler::fits(const Sequence& seq) const {
  if (cfg_.max_batch_size > 0 && active_.size() >= cfg_.max_batch_size) {
    return false;
  }
  if (cfg_.max_concurrent_tokens == 0) return true;
  const std::size_t cost = seq.admission_cost_tokens();
  if (tokens_in_use_ + cost <= cfg_.max_concurrent_tokens) return true;
  // Oversized sequences (admission cost > whole budget) run solo instead
  // of blocking the queue forever.
  return cost > cfg_.max_concurrent_tokens && active_.empty();
}

std::vector<Sequence*> BatchScheduler::admit(std::size_t now_step) {
  std::vector<Sequence*> admitted;
  while (!waiting_.empty()) {
    Sequence* head = waiting_.front();
    if (head->arrival_step > now_step || !fits(*head)) break;
    waiting_.pop_front();
    head->status = SequenceStatus::kActive;
    head->charged_tokens = head->admission_cost_tokens();
    tokens_in_use_ += head->charged_tokens;
    active_.push_back(head);
    admitted.push_back(head);
  }
  return admitted;
}

void BatchScheduler::settle(Sequence* seq) {
  const auto it = std::find(active_.begin(), active_.end(), seq);
  if (it == active_.end()) {
    throw std::invalid_argument("settle of a sequence that is not active");
  }
  const std::size_t steady = seq->cost_tokens();
  tokens_in_use_ -= seq->charged_tokens - std::min(seq->charged_tokens, steady);
  seq->charged_tokens = std::min(seq->charged_tokens, steady);
}

void BatchScheduler::release(Sequence* seq) {
  const auto it = std::find(active_.begin(), active_.end(), seq);
  if (it == active_.end()) {
    throw std::invalid_argument("release of a sequence that is not active");
  }
  active_.erase(it);
  tokens_in_use_ -= seq->charged_tokens;
  seq->charged_tokens = 0;
}

std::optional<std::size_t> BatchScheduler::next_arrival() const {
  if (waiting_.empty()) return std::nullopt;
  return waiting_.front()->arrival_step;
}

}  // namespace kf::serve
