// One sequence in the serving engine: its request parameters, committed
// tokens, per-layer KV caches, eviction-policy instance, and per-phase
// timing — everything that used to live implicitly in the generate() loop,
// lifted into a value so N sequences can share one model.
//
// Generation-loop contract (token-for-token identical to generate()):
//   - prefill produces the first token from the last prompt logit row;
//   - each decode step feeds the newest committed token and commits the
//     next one; a sequence finishes when it hits eos or max_new_tokens,
//     and the finishing token is never fed back.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kvcache/eviction_telemetry.h"
#include "kvcache/kv_state.h"
#include "kvcache/policy.h"
#include "model/generator.h"
#include "obs/timeline.h"

namespace kf::mem {
class PrefixEntry;
}

namespace kf::serve {

using model::Token;

/// Why a sequence stopped. Every request submitted to Engine::run()
/// terminates with a definite reason — containment (kRejected) and
/// deadline enforcement (kTimeout) replace the pre-robustness behavior of
/// throwing out of the run and killing the whole batch.
enum class FinishReason {
  kRunning,
  kLength,    ///< hit max_new_tokens
  kEos,       ///< emitted the stop token
  kRejected,  ///< un-servable (invalid request, oversized, repeated
              ///< allocation failure); Response::error says why
  kTimeout,   ///< deadline_steps / max_queue_steps expired
};

std::string to_string(FinishReason reason);

/// One generation request submitted to the Engine.
struct Request {
  std::uint64_t id = 0;
  std::vector<Token> prompt;
  model::GenerationConfig gen;
  /// Engine step (decode iteration — the engine's discrete clock) at which
  /// the request becomes visible to the scheduler; 0 = present at start.
  std::size_t arrival_step = 0;
  /// Optional externally-owned policy. When null the engine builds one per
  /// sequence from its EngineConfig policy description; sequences never
  /// share a policy instance (score state is per sequence).
  kv::EvictionPolicy* policy = nullptr;
  /// Optional externally-owned KV state (cleared at prefill). When null
  /// the engine allocates one. generate() passes the model's default state
  /// so post-run cache inspection keeps working.
  kv::SequenceKvState* kv_state = nullptr;
  /// Prompt prefix length the caller marks as shareable across requests
  /// (the end of a system prompt / few-shot context — an explicit cache
  /// breakpoint). 0 = let the engine index the whole prompt minus its last
  /// token. Rounded down to whole pool blocks; only consulted when the
  /// engine's prefix cache is enabled.
  std::size_t shared_prefix_hint = 0;
  /// End-to-end deadline in engine steps counted from arrival_step: once
  /// the clock reaches arrival_step + deadline_steps the sequence finishes
  /// with kTimeout (keeping any tokens generated so far) and frees its
  /// budget. 0 = no deadline.
  std::size_t deadline_steps = 0;
  /// Queue-wait cap in engine steps: a request still waiting this many
  /// steps after it arrived is shed with kTimeout instead of growing the
  /// queue. 0 = wait forever.
  std::size_t max_queue_steps = 0;
};

/// A completed request.
struct Response {
  std::uint64_t id = 0;
  std::vector<Token> tokens;  ///< generated tokens (prompt excluded)
  std::size_t prompt_len = 0;
  kv::CacheBudget budget;
  std::vector<std::size_t> final_cache_sizes;  ///< per layer, at finish
  std::size_t peak_cache_tokens = 0;
  FinishReason finish = FinishReason::kLength;
  /// Human-readable cause when finish == kRejected / kTimeout; empty
  /// otherwise.
  std::string error;
  /// Times this sequence was preempted (parked mid-decode and resumed by
  /// recompute). Its token stream is identical either way.
  std::size_t preemptions = 0;
  std::size_t arrival_step = 0;
  std::size_t first_decode_step = 0;  ///< step at which prefill first ran
  std::size_t finish_step = 0;
  double prefill_seconds = 0.0;  ///< prompt phase incl. first-token select
  /// Sum of the walls of every batch step this sequence was active in —
  /// its decode latency under whatever batch it shared the engine with.
  double decode_seconds = 0.0;

  /// Wall-clock lifecycle events the engine stamped for this request
  /// (queued, admitted, prefill start/end, first token, preempted/resumed,
  /// finished) — the raw record behind the latency fields below.
  obs::RequestTimeline timeline;
  /// Time to first token: first generated token committed minus the moment
  /// the engine first saw the request (0 when no token was produced).
  double ttft_seconds = 0.0;
  /// First admission minus queued (0 when never admitted).
  double queue_wait_seconds = 0.0;
  /// Wall-clock gaps between consecutive committed decode tokens.
  obs::StreamStats inter_token;

  /// Digest of the eviction decisions this request's policy executed:
  /// tokens kept/evicted, the relative-position distribution of evicted
  /// tokens (the serving-time fig-3 sketch), and score-at-eviction
  /// percentiles. All zero for non-evicting policies. Includes decisions
  /// re-executed by preemption-resume replays.
  kv::EvictionSummary eviction;

  /// See model::decode_throughput() (same rule as GenerationResult).
  double decode_tokens_per_s() const;
};

/// Lifecycle of a sequence inside the engine.
enum class SequenceStatus { kWaiting, kActive, kFinished };

/// Engine-internal per-sequence state. Public fields: the Engine and
/// BatchScheduler drive it, and tests poke it directly.
struct Sequence {
  std::uint64_t id = 0;
  std::vector<Token> prompt;
  model::GenerationConfig gen;
  std::size_t arrival_step = 0;

  SequenceStatus status = SequenceStatus::kWaiting;
  FinishReason finish = FinishReason::kRunning;
  /// Cause recorded when the engine rejects or times out the sequence.
  std::string error;
  kv::CacheBudget budget;
  std::vector<Token> tokens;  ///< committed generated tokens

  /// Deadline / queue-wait caps copied from the Request (0 = none).
  std::size_t deadline_steps = 0;
  std::size_t max_queue_steps = 0;

  /// Times this sequence was preempted (its blocks released, its tokens
  /// parked). Bounded by the engine's per-sequence cap so parking always
  /// converges to a definite finish.
  std::size_t preemptions = 0;
  /// Step the scheduler last moved this sequence into the active set;
  /// the victim-age floor reads it (a just-admitted sequence is not worth
  /// preempting: it has produced almost nothing since its prefill).
  std::size_t admitted_step = 0;
  /// Step this sequence last (re)entered the waiting queue: arrival for a
  /// fresh submit, the preemption step for a parked one. Admission
  /// pressure is measured from here.
  std::size_t queue_enter_step = 0;
  /// Consecutive admission rounds lost to a failed block reservation
  /// (fits() said yes, try_reserve lost the race — or a fault injector
  /// vetoed it). Cleared on successful admission; capped by the scheduler
  /// so a shard that never grants the claim rejects instead of spinning.
  std::size_t reserve_failures = 0;

  /// Cache/policy used for this sequence; point at the owned_* members or
  /// at externally-owned objects from the Request.
  kv::SequenceKvState* kv = nullptr;
  kv::EvictionPolicy* policy = nullptr;
  std::unique_ptr<kv::SequenceKvState> owned_kv;
  std::unique_ptr<kv::EvictionPolicy> owned_policy;

  std::size_t peak_cache_tokens = 0;
  std::size_t first_decode_step = 0;
  std::size_t finish_step = 0;
  double prefill_seconds = 0.0;
  double decode_seconds = 0.0;

  /// Lifecycle stamps accumulating toward Response::timeline.
  obs::RequestTimeline timeline;
  /// True once kQueued was stamped (the engine first saw the sequence
  /// arrived); queued_seconds then holds the wall clock of that moment —
  /// reset by a preemption so re-admission queue waits measure the park.
  bool queued_stamped = false;
  double queued_seconds = 0.0;
  /// Wall clock of the last committed token (prefill first token included);
  /// 0 until one exists. Decode steps measure inter-token gaps from here.
  double last_token_seconds = 0.0;
  /// TTFT is recorded once per request — a resume replay re-commits old
  /// tokens and must not re-record it.
  bool ttft_recorded = false;
  /// Wall-clock gaps between consecutive committed decode tokens.
  obs::StreamStats inter_token;
  /// Per-sequence policy timing sink, installed while tracing is enabled
  /// (policy observe() runs per sequence inside the batched decode step's
  /// parallel_for, so sequences cannot share one sink).
  kv::PolicyTimings policy_timings;
  /// Per-sequence eviction-decision sink (same single-writer contract as
  /// policy_timings); shaped by the engine at sequence creation, merged
  /// into the engine-lifetime aggregate and distilled onto the Response
  /// at retirement.
  kv::EvictionTelemetry eviction;

  /// Per-layer cache sizes captured at retirement. The engine records
  /// these the moment a sequence finishes because a paged sequence's
  /// caches are torn down right then — their blocks must return to the
  /// pool while other sequences are still running, not at end of run.
  std::vector<std::size_t> final_cache_sizes;

  /// Scheduler admission cost in per-layer cache tokens: the steady-state
  /// decode footprint. A budgeted sequence holds k tokens plus the
  /// transient append slot; full attention grows to its final length.
  /// This is where cache_ratio buys batch size: at ratio r the cost is
  /// ~r * prompt_len, so 1/r times as many sequences fit one memory
  /// budget — Table 1's bigger-batch row.
  std::size_t cost_tokens() const {
    // A budget only caps memory when the policy actually evicts: a
    // non-evicting policy (full attention) grows to prompt+gen per layer
    // no matter what cache_ratio the request asked for, and charging it
    // k+1 would let the scheduler over-commit the token budget.
    const bool evicting =
        budget.max_tokens > 0 && (policy == nullptr || policy->evicts());
    if (evicting) return budget.max_tokens + 1;
    return prompt.size() + gen.max_new_tokens;
  }

  /// Admission cost in per-layer cache tokens: prefill materializes the
  /// full prompt in every layer before the policy trims it to budget, so a
  /// joining sequence transiently needs max(prompt_len, steady-state)
  /// headroom. The scheduler charges this at admit() and settles down to
  /// cost_tokens() once prefill completes, keeping max_concurrent_tokens a
  /// true memory cap rather than a steady-state-only proxy.
  std::size_t admission_cost_tokens() const {
    return std::max(prompt.size(), cost_tokens());
  }

  /// What the scheduler currently charges this sequence against the token
  /// budget (admission cost until settle(), then cost_tokens()).
  std::size_t charged_tokens = 0;

  /// Decoder layers this sequence materializes caches for (set by the
  /// engine from the model config; block demands are per layer).
  std::size_t n_layers = 0;

  /// Block-pool placement: the shard this sequence's caches draw from
  /// (kNoShard until admitted under a paged scheduler) and the blocks the
  /// scheduler currently holds reserved on it.
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
  std::size_t shard = kNoShard;
  std::size_t reserved_blocks = 0;

  /// cost_tokens() expressed in pool blocks: every layer rounds its token
  /// footprint up to whole blocks — the internal-fragmentation surcharge
  /// real paged memory pays and abstract token counting hides.
  std::size_t cost_blocks(std::size_t block_tokens) const {
    return n_layers *
           ((cost_tokens() + block_tokens - 1) / block_tokens);
  }

  /// admission_cost_tokens() in pool blocks (the transient prefill peak).
  std::size_t admission_cost_blocks(std::size_t block_tokens) const {
    return n_layers *
           ((admission_cost_tokens() + block_tokens - 1) / block_tokens);
  }

  /// Prefix-cache match discovered before admission: blocks per layer
  /// already resident in the shared index (charged to the index, not this
  /// sequence) and the pinned entry backing them. Cleared once the prefix
  /// is adopted at prefill.
  const mem::PrefixEntry* prefix_entry = nullptr;
  std::size_t prefix_blocks_per_layer = 0;
  /// True when this request may use the engine's prefix cache (engine-
  /// built policy; snapshots are policy-specific).
  bool prefix_eligible = false;
  /// Index revision at this sequence's last missed probe: a miss stays a
  /// miss until the entry set changes, so the engine skips re-probing
  /// in between. SIZE_MAX = never probed.
  std::uint64_t prefix_probed_revision =
      static_cast<std::uint64_t>(-1);
  /// Request-declared shareable-prefix boundary (see Request).
  std::size_t shared_prefix_hint = 0;

  /// admission_cost_blocks() minus what the shared prefix already pays
  /// for, valid on shards where the entry's chain is resident. Per layer
  /// the unshared transient demand is the fresh suffix blocks plus the
  /// worst-case copy-on-write conversion of the live shared blocks
  /// (bounded by the steady footprint: eviction never keeps more), floored
  /// at the steady footprint decode settles into; a non-evicting sequence
  /// never mutates the chain, so its shared blocks are simply not charged.
  std::size_t unshared_admission_blocks(std::size_t block_tokens) const {
    const std::size_t bt = block_tokens;
    const std::size_t full_layer = (admission_cost_tokens() + bt - 1) / bt;
    std::size_t layer = full_layer;
    const std::size_t prefix_toks = prefix_blocks_per_layer * bt;
    if (prefix_blocks_per_layer > 0 && prefix_toks < prompt.size()) {
      const std::size_t suffix_blocks =
          (prompt.size() - prefix_toks + bt - 1) / bt;
      const std::size_t steady_layer = (cost_tokens() + bt - 1) / bt;
      const bool evicting =
          budget.max_tokens > 0 && (policy == nullptr || policy->evicts());
      const std::size_t want =
          evicting ? std::max(suffix_blocks +
                                  std::min(prefix_blocks_per_layer,
                                           steady_layer),
                              steady_layer)
                   : full_layer - std::min(full_layer,
                                           prefix_blocks_per_layer);
      layer = std::min(full_layer, want);
    }
    return n_layers * layer;
  }

  /// Recent committed tokens the repetition penalty applies to.
  std::span<const Token> recent_window() const {
    const std::size_t n = tokens.size();
    const std::size_t w =
        gen.repetition_window == 0 ? n : std::min(n, gen.repetition_window);
    return {tokens.data() + (n - w), w};
  }

  /// Commits the next token and applies the finish rules (eos, then
  /// length). Mirrors the generate() loop ordering exactly: the checks run
  /// before the token would ever be fed back.
  void commit(Token next) {
    tokens.push_back(next);
    if (gen.eos_token >= 0 && next == gen.eos_token) {
      status = SequenceStatus::kFinished;
      finish = FinishReason::kEos;
      return;
    }
    if (tokens.size() >= gen.max_new_tokens) {
      status = SequenceStatus::kFinished;
      finish = FinishReason::kLength;
    }
  }

  bool finished() const { return status == SequenceStatus::kFinished; }

  /// Token fed at the next decode step (the newest committed token).
  Token feed_token() const { return tokens.back(); }
  /// 1-based decode step t of the next step (Algorithm 1's t).
  std::size_t next_t() const { return tokens.size(); }
  /// Original sequence position of the token fed at the next step.
  std::size_t next_position() const {
    return prompt.size() + tokens.size() - 1;
  }
};

}  // namespace kf::serve
