// Scalar kernel variants: the semantics (and bit-pattern) reference for
// every wider variant. These bodies are the pre-dispatch scalar loops
// moved here verbatim — same expression shapes, same accumulator
// widths — so a KF_CPU_ISA=scalar run reproduces the historical scalar
// build bit for bit.

#include <cmath>
#include <limits>

#include "cpu/variants.h"

namespace kf::cpu::scalar {

void matvec_rows(const float* a, const float* x, float* y, std::size_t r0,
                 std::size_t r1, std::size_t k) {
  for (std::size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float acc = 0.0F;
    for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * x[kk];
    y[i] = acc;
  }
}

void vecmat_cols(const float* x, const float* a, float* y, std::size_t n,
                 std::size_t k, std::size_t j0, std::size_t j1) {
  for (std::size_t j = j0; j < j1; ++j) y[j] = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    const float xi = x[i];
    if (xi == 0.0F) continue;
    const float* arow = a + i * k;
    for (std::size_t j = j0; j < j1; ++j) y[j] += xi * arow[j];
  }
}

float dot(const float* a, const float* b, std::size_t n) {
  // Four independent accumulators break the loop-carried dependence so the
  // compiler can keep several FMA lanes in flight.
  float acc0 = 0.0F;
  float acc1 = 0.0F;
  float acc2 = 0.0F;
  float acc3 = 0.0F;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  float acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(float a, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

float max_value(const float* x, std::size_t n) {
  float m = x[0];
  for (std::size_t i = 0; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

double logsumexp(const float* x, std::size_t n) {
  const float m = max_value(x, n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += std::exp(static_cast<double>(x[i] - m));
  }
  return static_cast<double>(m) + std::log(acc);
}

void softmax(const float* x, float* out, std::size_t n, double tau) {
  const float m = max_value(x, n);
  // Every entry masked to -inf: there is no distribution to normalize
  // (and -inf - -inf below would be NaN). Return the all-zero row
  // (matching the "masked entries are 0" convention) instead of fanning
  // NaN out through the caller.
  if (m == -std::numeric_limits<float>::infinity()) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0.0F;
    return;
  }
  // Division by tau == 1.0 is exact, so the plain softmax and the
  // temperature form share this one body bit-identically.
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = std::exp(static_cast<double>(x[i] - m) / tau);
    out[i] = static_cast<float>(e);
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::size_t i = 0; i < n; ++i) out[i] *= inv;
}

void decode_attend(const KvSegmentView* segs, std::size_t n_segs,
                   const float* q_head, std::size_t dh, float scale,
                   const float* bias, const float* keys_override, float* lrow,
                   float* prow, float* ctx, std::size_t key_len) {
  // Dot products, streaming the head's contiguous segments (one segment
  // for the classic arena, one per block for a paged cache). Each output
  // logit is an independent row dot, so segmentation never changes the
  // arithmetic — paged and contiguous caches are bit-exact.
  if (keys_override != nullptr) {
    matvec_rows(keys_override, q_head, lrow, 0, key_len, dh);
  } else {
    for (std::size_t s = 0; s < n_segs; ++s) {
      const KvSegmentView& seg = segs[s];
      matvec_rows(seg.keys, q_head, lrow + seg.first, 0, seg.count, dh);
    }
  }

  if (bias != nullptr) {
    for (std::size_t i = 0; i < key_len; ++i) {
      lrow[i] = lrow[i] * scale + bias[i];
    }
  } else {
    for (std::size_t i = 0; i < key_len; ++i) lrow[i] *= scale;
  }

  // Fused pass: stable softmax and weighted-value accumulation together.
  // exp terms accumulate into the context unnormalized; one final scale
  // by 1/sum normalizes probs and context alike. V rows stream segment
  // by segment in ascending index order — the same accumulation sequence
  // as a single contiguous run.
  float m = lrow[0];
  for (std::size_t i = 1; i < key_len; ++i) m = lrow[i] > m ? lrow[i] : m;
  for (std::size_t j = 0; j < dh; ++j) ctx[j] = 0.0F;
  double sum = 0.0;
  for (std::size_t s = 0; s < n_segs; ++s) {
    const KvSegmentView& seg = segs[s];
    for (std::size_t r = 0; r < seg.count; ++r) {
      const std::size_t i = seg.first + r;
      const double e = std::exp(static_cast<double>(lrow[i] - m));
      const float ef = static_cast<float>(e);
      prow[i] = ef;
      sum += e;
      axpy(ef, seg.values + r * dh, ctx, dh);
    }
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::size_t i = 0; i < key_len; ++i) prow[i] *= inv;
  for (std::size_t j = 0; j < dh; ++j) ctx[j] *= inv;
}

}  // namespace kf::cpu::scalar
