// AVX2 + FMA kernel variants. This TU (alone) is compiled with
// -mavx2 -mfma; it is only ever reached through the dispatch tables,
// and only on hosts where cpu_isa.cpp detected AVX2 support.
//
// Numerics: dots/accumulations run 8 float lanes with FMA; exp runs a
// Cephes-style degree-5 polynomial (~1 ulp over the reduced range), and
// softmax/logsumexp sums accumulate in double lanes, keeping every
// variant within the 1e-5 parity budget against the scalar reference
// (pinned by test_simd_kernels). Inputs below the exp underflow cutoff
// flush to exactly 0.0f — masked (-inf) logits must produce probability
// exactly 0, same as the scalar std::exp(-inf) path.
//
// All loads/stores are unaligned (loadu/storeu): the 64-byte allocation
// alignment of KV arenas (core/aligned.h) makes segment *starts* cheap,
// but interior rows land wherever d_head puts them.

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "cpu/variants.h"

namespace kf::cpu::avx2 {

namespace {

/// Horizontal sum of 8 float lanes, in double (the callers accumulate
/// sums in double; summing lanes pairwise in double keeps the order
/// deterministic).
inline double hsum_pd(__m256 v) {
  const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
  const __m256d s = _mm256_add_pd(lo, hi);
  const __m128d s2 =
      _mm_add_pd(_mm256_castpd256_pd128(s), _mm256_extractf128_pd(s, 1));
  return _mm_cvtsd_f64(_mm_add_sd(s2, _mm_unpackhi_pd(s2, s2)));
}

/// Horizontal sum of 8 float lanes in float.
inline float hsum_ps(__m256 v) {
  const __m128 s =
      _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  const __m128 s2 = _mm_add_ps(s, _mm_movehl_ps(s, s));
  return _mm_cvtss_f32(_mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 1)));
}

/// Horizontal max of 8 float lanes.
inline float hmax_ps(__m256 v) {
  const __m128 m =
      _mm_max_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  const __m128 m2 = _mm_max_ps(m, _mm_movehl_ps(m, m));
  return _mm_cvtss_f32(_mm_max_ss(m2, _mm_shuffle_ps(m2, m2, 1)));
}

/// e^x for 8 lanes: Cephes-style range reduction (two-part ln 2) plus a
/// degree-5 polynomial. Lanes below kExpLowest — including -inf — return
/// exactly 0.0f; lanes above kExpHighest saturate near FLT_MAX.
inline __m256 exp256_ps(__m256 x) {
  const __m256 k_log2e = _mm256_set1_ps(1.44269504088896341F);
  const __m256 k_c1 = _mm256_set1_ps(0.693359375F);
  const __m256 k_c2 = _mm256_set1_ps(-2.12194440e-4F);
  const __m256 k_p0 = _mm256_set1_ps(1.9875691500e-4F);
  const __m256 k_p1 = _mm256_set1_ps(1.3981999507e-3F);
  const __m256 k_p2 = _mm256_set1_ps(8.3334519073e-3F);
  const __m256 k_p3 = _mm256_set1_ps(4.1665795894e-2F);
  const __m256 k_p4 = _mm256_set1_ps(1.6666665459e-1F);
  const __m256 k_p5 = _mm256_set1_ps(5.0000001201e-1F);
  const __m256 k_one = _mm256_set1_ps(1.0F);
  const __m256 k_lowest = _mm256_set1_ps(-87.33654F);
  const __m256 k_highest = _mm256_set1_ps(88.72283F);

  // Underflow lanes (and -inf, whose reduced form below is NaN) are
  // forced to exactly zero at the end.
  const __m256 zero_mask = _mm256_cmp_ps(x, k_lowest, _CMP_LT_OQ);
  x = _mm256_min_ps(x, k_highest);

  // n = round(x * log2 e); r = x - n*ln2 in two parts for accuracy.
  const __m256 n = _mm256_round_ps(
      _mm256_mul_ps(x, k_log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fnmadd_ps(n, k_c1, x);
  r = _mm256_fnmadd_ps(n, k_c2, r);
  const __m256 r2 = _mm256_mul_ps(r, r);

  __m256 p = k_p0;
  p = _mm256_fmadd_ps(p, r, k_p1);
  p = _mm256_fmadd_ps(p, r, k_p2);
  p = _mm256_fmadd_ps(p, r, k_p3);
  p = _mm256_fmadd_ps(p, r, k_p4);
  p = _mm256_fmadd_ps(p, r, k_p5);
  p = _mm256_fmadd_ps(p, r2, _mm256_add_ps(r, k_one));

  // Scale by 2^n via exponent-bit construction (n stays in [-126, 128]
  // after the clamps above, so the biased exponent never wraps).
  const __m256i biased =
      _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(127));
  const __m256 pow2 = _mm256_castsi256_ps(_mm256_slli_epi32(biased, 23));
  p = _mm256_mul_ps(p, pow2);
  return _mm256_andnot_ps(zero_mask, p);
}

}  // namespace

float dot(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float acc = hsum_ps(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void matvec_rows(const float* a, const float* x, float* y, std::size_t r0,
                 std::size_t r1, std::size_t k) {
  for (std::size_t i = r0; i < r1; ++i) y[i] = dot(a + i * k, x, k);
}

void vecmat_cols(const float* x, const float* a, float* y, std::size_t n,
                 std::size_t k, std::size_t j0, std::size_t j1) {
  for (std::size_t j = j0; j < j1; ++j) y[j] = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    const float xi = x[i];
    if (xi == 0.0F) continue;
    const float* arow = a + i * k;
    const __m256 vx = _mm256_set1_ps(xi);
    std::size_t j = j0;
    for (; j + 8 <= j1; j += 8) {
      const __m256 vy = _mm256_fmadd_ps(vx, _mm256_loadu_ps(arow + j),
                                        _mm256_loadu_ps(y + j));
      _mm256_storeu_ps(y + j, vy);
    }
    for (; j < j1; ++j) y[j] += xi * arow[j];
  }
}

void axpy(float a, const float* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vy =
        _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

float max_value(const float* x, std::size_t n) {
  float m = x[0];
  std::size_t i = 0;
  if (n >= 8) {
    __m256 vm = _mm256_loadu_ps(x);
    for (i = 8; i + 8 <= n; i += 8) {
      vm = _mm256_max_ps(vm, _mm256_loadu_ps(x + i));
    }
    m = hmax_ps(vm);
  }
  for (; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

double logsumexp(const float* x, std::size_t n) {
  const float m = max_value(x, n);
  if (m == -std::numeric_limits<float>::infinity()) {
    // Degenerate all-(-inf) input: reproduce the scalar NaN propagation.
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += std::exp(static_cast<double>(x[i] - m));
    }
    return static_cast<double>(m) + std::log(acc);
  }
  const __m256 vm = _mm256_set1_ps(m);
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    sum += hsum_pd(exp256_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vm)));
  }
  for (; i < n; ++i) sum += std::exp(static_cast<double>(x[i] - m));
  return static_cast<double>(m) + std::log(sum);
}

void softmax(const float* x, float* out, std::size_t n, double tau) {
  const float m = max_value(x, n);
  if (m == -std::numeric_limits<float>::infinity()) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0.0F;
    return;
  }
  const __m256 vm = _mm256_set1_ps(m);
  const float inv_tau_f = static_cast<float>(1.0 / tau);
  const __m256 v_inv_tau = _mm256_set1_ps(inv_tau_f);
  const bool unit_tau = tau == 1.0;
  double sum = 0.0;
  std::size_t i = 0;
  // x is read before out is written at every index, so out == x aliasing
  // (softmax in place) is fine.
  for (; i + 8 <= n; i += 8) {
    __m256 t = _mm256_sub_ps(_mm256_loadu_ps(x + i), vm);
    if (!unit_tau) t = _mm256_mul_ps(t, v_inv_tau);
    const __m256 e = exp256_ps(t);
    _mm256_storeu_ps(out + i, e);
    sum += hsum_pd(e);
  }
  for (; i < n; ++i) {
    const double e = std::exp(static_cast<double>(x[i] - m) / tau);
    out[i] = static_cast<float>(e);
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  const __m256 vinv = _mm256_set1_ps(inv);
  i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(out + i), vinv));
  }
  for (; i < n; ++i) out[i] *= inv;
}

void decode_attend(const KvSegmentView* segs, std::size_t n_segs,
                   const float* q_head, std::size_t dh, float scale,
                   const float* bias, const float* keys_override, float* lrow,
                   float* prow, float* ctx, std::size_t key_len) {
  if (keys_override != nullptr) {
    matvec_rows(keys_override, q_head, lrow, 0, key_len, dh);
  } else {
    for (std::size_t s = 0; s < n_segs; ++s) {
      const KvSegmentView& seg = segs[s];
      matvec_rows(seg.keys, q_head, lrow + seg.first, 0, seg.count, dh);
    }
  }

  const __m256 vscale = _mm256_set1_ps(scale);
  std::size_t i = 0;
  if (bias != nullptr) {
    for (; i + 8 <= key_len; i += 8) {
      const __m256 v = _mm256_fmadd_ps(_mm256_loadu_ps(lrow + i), vscale,
                                       _mm256_loadu_ps(bias + i));
      _mm256_storeu_ps(lrow + i, v);
    }
    for (; i < key_len; ++i) lrow[i] = lrow[i] * scale + bias[i];
  } else {
    for (; i + 8 <= key_len; i += 8) {
      _mm256_storeu_ps(lrow + i,
                       _mm256_mul_ps(_mm256_loadu_ps(lrow + i), vscale));
    }
    for (; i < key_len; ++i) lrow[i] *= scale;
  }

  // Unnormalized softmax over the logits (decode rows are never masked,
  // so no -inf handling is needed here), then a second pass accumulates
  // p_i * V_i with vectorized row axpys; one final 1/sum normalizes
  // probabilities and context together.
  const float m = max_value(lrow, key_len);
  const __m256 vm = _mm256_set1_ps(m);
  double sum = 0.0;
  i = 0;
  for (; i + 8 <= key_len; i += 8) {
    const __m256 e = exp256_ps(_mm256_sub_ps(_mm256_loadu_ps(lrow + i), vm));
    _mm256_storeu_ps(prow + i, e);
    sum += hsum_pd(e);
  }
  for (; i < key_len; ++i) {
    const double e = std::exp(static_cast<double>(lrow[i] - m));
    prow[i] = static_cast<float>(e);
    sum += e;
  }

  for (std::size_t j = 0; j < dh; ++j) ctx[j] = 0.0F;
  for (std::size_t s = 0; s < n_segs; ++s) {
    const KvSegmentView& seg = segs[s];
    for (std::size_t r = 0; r < seg.count; ++r) {
      axpy(prow[seg.first + r], seg.values + r * dh, ctx, dh);
    }
  }

  const float inv = static_cast<float>(1.0 / sum);
  const __m256 vinv = _mm256_set1_ps(inv);
  i = 0;
  for (; i + 8 <= key_len; i += 8) {
    _mm256_storeu_ps(prow + i, _mm256_mul_ps(_mm256_loadu_ps(prow + i), vinv));
  }
  for (; i < key_len; ++i) prow[i] *= inv;
  for (std::size_t j = 0; j < dh; ++j) ctx[j] *= inv;
}

}  // namespace kf::cpu::avx2
