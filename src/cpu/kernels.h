// Dispatch tables for the decode hot-path kernels.
//
// Each kernel is a DispatchStub-style table: one function-pointer slot
// per CpuIsa, filled at static-init time with the widest variant compiled
// in (narrower slots fall back to the next variant down, so every slot is
// callable on any host that can select it). A call resolves the active
// ISA (one relaxed atomic load, see cpu_isa.h) and jumps through the
// table — the portable wrappers in core/tensor.h, core/numerics.h and the
// fused decode attend in model/attention.cpp all route through here.
//
// Variant TUs (kernels_scalar.cpp / kernels_avx2.cpp / kernels_avx512.cpp)
// are compiled with per-file flags and must only be reached through these
// tables (scripts/lint.py check 6 enforces it); nothing outside src/cpu
// names a variant namespace.
//
// Contracts shared by every variant (the scalar variant is the
// semantics reference — it is the pre-dispatch code moved verbatim, so a
// KF_CPU_ISA=scalar run is bit-identical to the historical scalar build):
//   - softmax: tau == 1.0 is the plain softmax; an all-(-inf) input row
//     produces an all-zero output (no NaN), and any individually -inf
//     entry produces an exactly-0.0f probability. in == out aliasing is
//     allowed.
//   - decode_attend: one query head against `count`-row head-major
//     [count, dh] K/V segment streams; logits are pre-scaled/biased by
//     the caller-provided scale and optional bias row, then one fused
//     pass does stable softmax + weighted-V accumulation.
#pragma once

#include <cstddef>

#include "cpu/cpu_isa.h"

namespace kf::cpu {

/// POD mirror of kv::KvSegment (src/cpu stays dependency-free): one
/// contiguous [count, dh] run of a head's K and V rows covering cache
/// indices [first, first + count).
struct KvSegmentView {
  const float* keys = nullptr;
  const float* values = nullptr;
  std::size_t first = 0;
  std::size_t count = 0;
};

/// y[i] = dot(a_row_i, x) for rows [r0, r1) of the [*, k] matrix `a`.
using MatvecRowsFn = void (*)(const float* a, const float* x, float* y,
                              std::size_t r0, std::size_t r1, std::size_t k);

/// y[j] = sum_i x[i] * a[i][j] for columns [j0, j1) of the [n, k] matrix.
using VecmatColsFn = void (*)(const float* x, const float* a, float* y,
                              std::size_t n, std::size_t k, std::size_t j0,
                              std::size_t j1);

using DotFn = float (*)(const float* a, const float* b, std::size_t n);

/// y[i] += a * x[i].
using AxpyFn = void (*)(float a, const float* x, float* y, std::size_t n);

using MaxValueFn = float (*)(const float* x, std::size_t n);

using LogsumexpFn = double (*)(const float* x, std::size_t n);

/// out = softmax(x / tau); see the aliasing / -inf contract above.
using SoftmaxFn = void (*)(const float* x, float* out, std::size_t n,
                           double tau);

/// Fused single-query decode attend for ONE head:
///   - `segs`/`n_segs`: the head's K/V segment streams, jointly covering
///     [0, key_len);
///   - `q_head`: the (already rotated, if RoPE) dh-float query;
///   - logits[i] = dot(K_i, q) * scale (+ bias[i] when bias != nullptr);
///   - `keys_override`, when non-null, is a contiguous [key_len, dh] key
///     matrix replacing the segments' key streams (the RoPE + kNew
///     rotated-scratch path); V still streams from the segments;
///   - writes logits to `lrow`, normalized probabilities to `prow`
///     (both key_len floats) and the normalized context to `ctx`
///     (dh floats).
using DecodeAttendFn = void (*)(const KvSegmentView* segs, std::size_t n_segs,
                                const float* q_head, std::size_t dh,
                                float scale, const float* bias,
                                const float* keys_override, float* lrow,
                                float* prow, float* ctx, std::size_t key_len);

/// One function-pointer slot per CpuIsa. Slots are filled once during
/// static initialization (narrow fallbacks for variants not compiled in)
/// and never change, so lookups are data-race free without atomics.
template <typename Fn>
struct DispatchStub {
  Fn table[kIsaCount];

  Fn get() const { return table[static_cast<int>(active_isa())]; }
  Fn get(CpuIsa isa) const { return table[static_cast<int>(isa)]; }
};

extern const DispatchStub<MatvecRowsFn> matvec_rows_stub;
extern const DispatchStub<VecmatColsFn> vecmat_cols_stub;
extern const DispatchStub<DotFn> dot_stub;
extern const DispatchStub<AxpyFn> axpy_stub;
extern const DispatchStub<MaxValueFn> max_value_stub;
extern const DispatchStub<LogsumexpFn> logsumexp_stub;
extern const DispatchStub<SoftmaxFn> softmax_stub;
extern const DispatchStub<DecodeAttendFn> decode_attend_stub;

}  // namespace kf::cpu
