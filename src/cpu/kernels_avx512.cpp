// AVX-512 (F/BW/DQ/VL + FMA) kernel variants: the AVX2 structure widened
// to 16 float lanes. This TU (alone) is compiled with -mavx512* flags and
// is only reached through the dispatch tables on hosts that support it.
// See kernels_avx2.cpp for the numerics notes (exp polynomial, double
// sum accumulation, exact-zero underflow for masked logits) — identical
// here, lane width aside.

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "cpu/variants.h"

namespace kf::cpu::avx512 {

namespace {

/// Horizontal sum of 16 float lanes, accumulated in double.
inline double hsum_pd(__m512 v) {
  const __m512d lo = _mm512_cvtps_pd(_mm512_castps512_ps256(v));
  const __m512d hi =
      _mm512_cvtps_pd(_mm512_extractf32x8_ps(v, 1));
  return _mm512_reduce_add_pd(_mm512_add_pd(lo, hi));
}

/// e^x for 16 lanes; same Cephes-style reduction and polynomial as the
/// AVX2 variant. Lanes below the underflow cutoff (including -inf)
/// return exactly 0.0f.
inline __m512 exp512_ps(__m512 x) {
  const __m512 k_log2e = _mm512_set1_ps(1.44269504088896341F);
  const __m512 k_c1 = _mm512_set1_ps(0.693359375F);
  const __m512 k_c2 = _mm512_set1_ps(-2.12194440e-4F);
  const __m512 k_p0 = _mm512_set1_ps(1.9875691500e-4F);
  const __m512 k_p1 = _mm512_set1_ps(1.3981999507e-3F);
  const __m512 k_p2 = _mm512_set1_ps(8.3334519073e-3F);
  const __m512 k_p3 = _mm512_set1_ps(4.1665795894e-2F);
  const __m512 k_p4 = _mm512_set1_ps(1.6666665459e-1F);
  const __m512 k_p5 = _mm512_set1_ps(5.0000001201e-1F);
  const __m512 k_one = _mm512_set1_ps(1.0F);
  const __m512 k_lowest = _mm512_set1_ps(-87.33654F);
  const __m512 k_highest = _mm512_set1_ps(88.72283F);

  const __mmask16 live = _mm512_cmp_ps_mask(x, k_lowest, _CMP_GE_OQ);
  x = _mm512_min_ps(x, k_highest);

  const __m512 n = _mm512_roundscale_ps(
      _mm512_mul_ps(x, k_log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512 r = _mm512_fnmadd_ps(n, k_c1, x);
  r = _mm512_fnmadd_ps(n, k_c2, r);
  const __m512 r2 = _mm512_mul_ps(r, r);

  __m512 p = k_p0;
  p = _mm512_fmadd_ps(p, r, k_p1);
  p = _mm512_fmadd_ps(p, r, k_p2);
  p = _mm512_fmadd_ps(p, r, k_p3);
  p = _mm512_fmadd_ps(p, r, k_p4);
  p = _mm512_fmadd_ps(p, r, k_p5);
  p = _mm512_fmadd_ps(p, r2, _mm512_add_ps(r, k_one));

  const __m512i biased =
      _mm512_add_epi32(_mm512_cvtps_epi32(n), _mm512_set1_epi32(127));
  p = _mm512_mul_ps(p, _mm512_castsi512_ps(_mm512_slli_epi32(biased, 23)));
  return _mm512_maskz_mov_ps(live, p);
}

}  // namespace

float dot(const float* a, const float* b, std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  float acc = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void matvec_rows(const float* a, const float* x, float* y, std::size_t r0,
                 std::size_t r1, std::size_t k) {
  for (std::size_t i = r0; i < r1; ++i) y[i] = dot(a + i * k, x, k);
}

void vecmat_cols(const float* x, const float* a, float* y, std::size_t n,
                 std::size_t k, std::size_t j0, std::size_t j1) {
  for (std::size_t j = j0; j < j1; ++j) y[j] = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    const float xi = x[i];
    if (xi == 0.0F) continue;
    const float* arow = a + i * k;
    const __m512 vx = _mm512_set1_ps(xi);
    std::size_t j = j0;
    for (; j + 16 <= j1; j += 16) {
      _mm512_storeu_ps(y + j, _mm512_fmadd_ps(vx, _mm512_loadu_ps(arow + j),
                                              _mm512_loadu_ps(y + j)));
    }
    for (; j < j1; ++j) y[j] += xi * arow[j];
  }
}

void axpy(float a, const float* x, float* y, std::size_t n) {
  const __m512 va = _mm512_set1_ps(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(y + i, _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i),
                                            _mm512_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

float max_value(const float* x, std::size_t n) {
  float m = x[0];
  std::size_t i = 0;
  if (n >= 16) {
    __m512 vm = _mm512_loadu_ps(x);
    for (i = 16; i + 16 <= n; i += 16) {
      vm = _mm512_max_ps(vm, _mm512_loadu_ps(x + i));
    }
    m = _mm512_reduce_max_ps(vm);
  }
  for (; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

double logsumexp(const float* x, std::size_t n) {
  const float m = max_value(x, n);
  if (m == -std::numeric_limits<float>::infinity()) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += std::exp(static_cast<double>(x[i] - m));
    }
    return static_cast<double>(m) + std::log(acc);
  }
  const __m512 vm = _mm512_set1_ps(m);
  double sum = 0.0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    sum += hsum_pd(exp512_ps(_mm512_sub_ps(_mm512_loadu_ps(x + i), vm)));
  }
  for (; i < n; ++i) sum += std::exp(static_cast<double>(x[i] - m));
  return static_cast<double>(m) + std::log(sum);
}

void softmax(const float* x, float* out, std::size_t n, double tau) {
  const float m = max_value(x, n);
  if (m == -std::numeric_limits<float>::infinity()) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0.0F;
    return;
  }
  const __m512 vm = _mm512_set1_ps(m);
  const __m512 v_inv_tau = _mm512_set1_ps(static_cast<float>(1.0 / tau));
  const bool unit_tau = tau == 1.0;
  double sum = 0.0;
  std::size_t i = 0;
  // x is read before out is written at every index: aliasing-safe.
  for (; i + 16 <= n; i += 16) {
    __m512 t = _mm512_sub_ps(_mm512_loadu_ps(x + i), vm);
    if (!unit_tau) t = _mm512_mul_ps(t, v_inv_tau);
    const __m512 e = exp512_ps(t);
    _mm512_storeu_ps(out + i, e);
    sum += hsum_pd(e);
  }
  for (; i < n; ++i) {
    const double e = std::exp(static_cast<double>(x[i] - m) / tau);
    out[i] = static_cast<float>(e);
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  const __m512 vinv = _mm512_set1_ps(inv);
  i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(out + i, _mm512_mul_ps(_mm512_loadu_ps(out + i), vinv));
  }
  for (; i < n; ++i) out[i] *= inv;
}

void decode_attend(const KvSegmentView* segs, std::size_t n_segs,
                   const float* q_head, std::size_t dh, float scale,
                   const float* bias, const float* keys_override, float* lrow,
                   float* prow, float* ctx, std::size_t key_len) {
  if (keys_override != nullptr) {
    matvec_rows(keys_override, q_head, lrow, 0, key_len, dh);
  } else {
    for (std::size_t s = 0; s < n_segs; ++s) {
      const KvSegmentView& seg = segs[s];
      matvec_rows(seg.keys, q_head, lrow + seg.first, 0, seg.count, dh);
    }
  }

  const __m512 vscale = _mm512_set1_ps(scale);
  std::size_t i = 0;
  if (bias != nullptr) {
    for (; i + 16 <= key_len; i += 16) {
      _mm512_storeu_ps(lrow + i,
                       _mm512_fmadd_ps(_mm512_loadu_ps(lrow + i), vscale,
                                       _mm512_loadu_ps(bias + i)));
    }
    for (; i < key_len; ++i) lrow[i] = lrow[i] * scale + bias[i];
  } else {
    for (; i + 16 <= key_len; i += 16) {
      _mm512_storeu_ps(lrow + i,
                       _mm512_mul_ps(_mm512_loadu_ps(lrow + i), vscale));
    }
    for (; i < key_len; ++i) lrow[i] *= scale;
  }

  const float m = max_value(lrow, key_len);
  const __m512 vm = _mm512_set1_ps(m);
  double sum = 0.0;
  i = 0;
  for (; i + 16 <= key_len; i += 16) {
    const __m512 e = exp512_ps(_mm512_sub_ps(_mm512_loadu_ps(lrow + i), vm));
    _mm512_storeu_ps(prow + i, e);
    sum += hsum_pd(e);
  }
  for (; i < key_len; ++i) {
    const double e = std::exp(static_cast<double>(lrow[i] - m));
    prow[i] = static_cast<float>(e);
    sum += e;
  }

  for (std::size_t j = 0; j < dh; ++j) ctx[j] = 0.0F;
  for (std::size_t s = 0; s < n_segs; ++s) {
    const KvSegmentView& seg = segs[s];
    for (std::size_t r = 0; r < seg.count; ++r) {
      axpy(prow[seg.first + r], seg.values + r * dh, ctx, dh);
    }
  }

  const float inv = static_cast<float>(1.0 / sum);
  const __m512 vinv = _mm512_set1_ps(inv);
  i = 0;
  for (; i + 16 <= key_len; i += 16) {
    _mm512_storeu_ps(prow + i, _mm512_mul_ps(_mm512_loadu_ps(prow + i), vinv));
  }
  for (; i < key_len; ++i) prow[i] *= inv;
  for (std::size_t j = 0; j < dh; ++j) ctx[j] *= inv;
}

}  // namespace kf::cpu::avx512
