// Dispatch-table definitions: each stub's slots are filled with the
// widest variant available at build time, falling back down the chain
// (avx512 -> avx2 -> scalar) for slots whose variant was not compiled.
// A slot is only ever *selected* on a host that supports it (cpu_isa.cpp
// clamps), so filling e.g. the avx512 slot with the avx2 variant in an
// AVX2-only build is both safe and what makes every table index valid.

#include "cpu/variants.h"

namespace kf::cpu {

namespace {

#if defined(KF_BUILD_AVX2)
#define KF_AVX2(fn) avx2::fn
#else
#define KF_AVX2(fn) scalar::fn
#endif

#if defined(KF_BUILD_AVX512)
#define KF_AVX512(fn) avx512::fn
#else
#define KF_AVX512(fn) KF_AVX2(fn)
#endif

#define KF_FILL_TABLE(fn) \
  { scalar::fn, KF_AVX2(fn), KF_AVX512(fn) }

}  // namespace

const DispatchStub<MatvecRowsFn> matvec_rows_stub = {
    KF_FILL_TABLE(matvec_rows)};
const DispatchStub<VecmatColsFn> vecmat_cols_stub = {
    KF_FILL_TABLE(vecmat_cols)};
const DispatchStub<DotFn> dot_stub = {KF_FILL_TABLE(dot)};
const DispatchStub<AxpyFn> axpy_stub = {KF_FILL_TABLE(axpy)};
const DispatchStub<MaxValueFn> max_value_stub = {KF_FILL_TABLE(max_value)};
const DispatchStub<LogsumexpFn> logsumexp_stub = {KF_FILL_TABLE(logsumexp)};
const DispatchStub<SoftmaxFn> softmax_stub = {KF_FILL_TABLE(softmax)};
const DispatchStub<DecodeAttendFn> decode_attend_stub = {
    KF_FILL_TABLE(decode_attend)};

}  // namespace kf::cpu
