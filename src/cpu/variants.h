// Declarations of the per-ISA kernel variants. Included only by the
// variant TUs (which define their namespace's entries) and by
// dispatch.cpp (which wires them into the tables) — never by code
// outside src/cpu (scripts/lint.py check 6).
//
// Every namespace implements the same eight signatures from kernels.h;
// the scalar namespace is the semantics reference.
#pragma once

#include <cstddef>

#include "cpu/kernels.h"

namespace kf::cpu {

#define KF_CPU_DECLARE_VARIANTS                                               \
  void matvec_rows(const float* a, const float* x, float* y, std::size_t r0,  \
                   std::size_t r1, std::size_t k);                            \
  void vecmat_cols(const float* x, const float* a, float* y, std::size_t n,   \
                   std::size_t k, std::size_t j0, std::size_t j1);            \
  float dot(const float* a, const float* b, std::size_t n);                   \
  void axpy(float a, const float* x, float* y, std::size_t n);                \
  float max_value(const float* x, std::size_t n);                             \
  double logsumexp(const float* x, std::size_t n);                            \
  void softmax(const float* x, float* out, std::size_t n, double tau);        \
  void decode_attend(const KvSegmentView* segs, std::size_t n_segs,           \
                     const float* q_head, std::size_t dh, float scale,        \
                     const float* bias, const float* keys_override,           \
                     float* lrow, float* prow, float* ctx,                    \
                     std::size_t key_len)

namespace scalar {
KF_CPU_DECLARE_VARIANTS;
}  // namespace scalar

#if defined(KF_BUILD_AVX2)
namespace avx2 {
KF_CPU_DECLARE_VARIANTS;
}  // namespace avx2
#endif

#if defined(KF_BUILD_AVX512)
namespace avx512 {
KF_CPU_DECLARE_VARIANTS;
}  // namespace avx512
#endif

#undef KF_CPU_DECLARE_VARIANTS

}  // namespace kf::cpu
