#include "cpu/cpu_isa.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/log.h"

namespace kf::cpu {

namespace {

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
bool host_has_avx2() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

bool host_has_avx512() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
}
#else
bool host_has_avx2() { return false; }
bool host_has_avx512() { return false; }
#endif

CpuIsa probe_detected() {
#if defined(KF_BUILD_AVX512)
  if (host_has_avx512()) return CpuIsa::kAvx512;
#endif
#if defined(KF_BUILD_AVX2)
  if (host_has_avx2()) return CpuIsa::kAvx2;
#endif
  return CpuIsa::kScalar;
}

/// Detection + env parsing, run once (thread-safe magic static). The
/// describe() banner is materialized here too so callers get a stable
/// C string.
struct IsaState {
  CpuIsa detected = CpuIsa::kScalar;
  CpuIsa env_default = CpuIsa::kScalar;
  std::string banner;

  IsaState() {
    detected = probe_detected();
    env_default = detected;
    const char* requested = nullptr;
    if (const char* env = std::getenv("KF_CPU_ISA")) {
      CpuIsa parsed = CpuIsa::kScalar;
      if (!parse_isa(env, parsed)) {
        obs::diag(std::string("KF_CPU_ISA=") + env +
                  " not recognized (scalar|avx2|avx512); using detected " +
                  isa_name(detected));
      } else if (parsed > detected) {
        obs::diag(std::string("KF_CPU_ISA=") + env +
                  " exceeds what this host/build supports; clamping to " +
                  isa_name(detected));
      } else {
        env_default = parsed;
        requested = env;
      }
    }
    banner = std::string("cpu: detected ") + isa_name(detected) +
             ", dispatching " + isa_name(env_default) +
             (requested != nullptr ? " (KF_CPU_ISA)" : "");
  }
};

IsaState& state() {
  static IsaState s;
  return s;
}

/// Index of the ISA dispatch currently routes to; -1 until the first
/// active_isa() call resolves env + detection. Relaxed everywhere: the
/// value is a plain selector, and every variant is correct on any host
/// it can be selected on.
std::atomic<int> g_active{-1};

int ensure_active() {
  int cur = g_active.load(std::memory_order_relaxed);
  if (cur >= 0) return cur;
  int fresh = static_cast<int>(state().env_default);
  // First resolver wins; a racing set_isa_override simply lands after.
  g_active.compare_exchange_strong(cur, fresh, std::memory_order_relaxed);
  return g_active.load(std::memory_order_relaxed);
}

}  // namespace

CpuIsa detected_isa() { return state().detected; }

CpuIsa active_isa() { return static_cast<CpuIsa>(ensure_active()); }

void set_isa_override(CpuIsa isa) {
  const CpuIsa clamped = isa > state().detected ? state().detected : isa;
  ensure_active();
  g_active.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

void clear_isa_override() {
  g_active.store(static_cast<int>(state().env_default),
                 std::memory_order_relaxed);
}

bool isa_available(CpuIsa isa) { return isa <= state().detected; }

const char* isa_name(CpuIsa isa) {
  switch (isa) {
    case CpuIsa::kScalar:
      return "scalar";
    case CpuIsa::kAvx2:
      return "avx2";
    case CpuIsa::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool parse_isa(const char* text, CpuIsa& out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "scalar") == 0) {
    out = CpuIsa::kScalar;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    out = CpuIsa::kAvx2;
    return true;
  }
  if (std::strcmp(text, "avx512") == 0) {
    out = CpuIsa::kAvx512;
    return true;
  }
  return false;
}

const char* describe() { return state().banner.c_str(); }

}  // namespace kf::cpu
