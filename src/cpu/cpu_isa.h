// Runtime CPU-ISA selection for the dispatched kernels (src/cpu/kernels.h).
//
// The library ships one portable binary: every hot kernel exists as a
// scalar variant plus, when the compiler supports the per-file flags,
// AVX2 and AVX-512 variants built in their own translation units (only
// those TUs are compiled with -mavx2/-mavx512*, so the generic objects
// never contain illegal instructions). At first use the dispatcher probes
// the host with __builtin_cpu_supports and picks the widest variant both
// compiled in and supported; every later call is one relaxed atomic load
// plus an indexed function-pointer call.
//
// Selection order (first wins):
//   1. KF_CPU_ISA environment variable ("scalar" | "avx2" | "avx512"),
//      clamped down to the detected ISA with a one-time stderr warning
//      when it asks for more than the host/build provides;
//   2. the detected ISA (widest supported).
// Tests and benches that sweep variants in-process use set_isa_override()
// (also clamped) and clear_isa_override() to return to the env/detected
// default.
#pragma once

namespace kf::cpu {

/// Instruction sets the dispatcher distinguishes, narrowest first. The
/// integer values index dispatch tables; keep them dense.
enum class CpuIsa : int {
  kScalar = 0,
  kAvx2 = 1,    ///< AVX2 + FMA
  kAvx512 = 2,  ///< AVX-512 F/BW/DQ/VL + FMA
};

inline constexpr int kIsaCount = 3;

/// Widest ISA both compiled into this binary and supported by this host.
CpuIsa detected_isa();

/// The ISA dispatch currently routes to (env override, programmatic
/// override, or detected, in that precedence).
CpuIsa active_isa();

/// Routes subsequent dispatched calls to `isa`, clamped down to
/// detected_isa(). For in-process variant sweeps (parity tests, the
/// micro-kernel bench); not thread-safe against concurrent kernel calls
/// expecting a *specific* variant.
void set_isa_override(CpuIsa isa);

/// Returns dispatch to the env/detected default.
void clear_isa_override();

/// True when `isa`'s variants are compiled in and the host executes them.
bool isa_available(CpuIsa isa);

/// Short stable name: "scalar" | "avx2" | "avx512".
const char* isa_name(CpuIsa isa);

/// Parses an isa_name() string; false on unrecognized input (`out`
/// untouched).
bool parse_isa(const char* text, CpuIsa& out);

/// One-line human banner, e.g.
/// "cpu: detected avx512, dispatching avx2 (KF_CPU_ISA)".
const char* describe();

}  // namespace kf::cpu
