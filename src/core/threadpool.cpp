#include "core/threadpool.h"

#include "core/parse.h"
#include "obs/log.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace kf {

namespace {

// Set while a pool worker executes a task. A parallel_for issued from a
// worker must run inline: enqueuing chunks and blocking on done_cv would
// occupy a worker slot while waiting for other workers — with nested
// kernels (e.g. attention calling matvec) every worker can end up blocked
// waiting for chunks nobody is free to run.
thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_entry(); });
  }
}

void ThreadPool::worker_entry() {
  t_in_pool_worker = true;  // a worker thread is a worker for its lifetime
  worker_loop();
}

ThreadPool::~ThreadPool() {
  {
    const LockGuard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      const LockGuard lock(mutex_);
      while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  if (t_in_pool_worker) {  // nested call from a worker: run inline
    fn(0, n);
    return;
  }
  grain = std::max<std::size_t>(1, grain);
  const std::size_t max_chunks = std::max<std::size_t>(1, (n + grain - 1) / grain);
  const std::size_t num_chunks = std::min(workers_.size() * 2, max_chunks);
  if (num_chunks <= 1 || workers_.size() <= 1) {
    fn(0, n);
    return;
  }

  // The counter, its mutex, and the cv live on this stack frame, so the
  // decrement-to-zero must only become visible under done_mutex: with a
  // bare atomic, a spurious wakeup between a worker's final fetch_sub and
  // its notify lock could let this frame return and destroy the mutex the
  // worker is about to acquire. Decrementing and notifying under the lock
  // means the waiter can observe zero only after the last worker has
  // released done_mutex and touches these locals no more.
  std::size_t remaining = num_chunks;
  Mutex done_mutex;
  CondVar done_cv;

  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  {
    const LockGuard lock(mutex_);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      tasks_.push([&, begin, end] {
        if (begin < end) fn(begin, end);
        const LockGuard done_lock(done_mutex);
        if (--remaining == 0) done_cv.notify_all();
      });
    }
  }
  cv_.notify_all();

  const LockGuard lock(done_mutex);
  while (remaining != 0) done_cv.wait(done_mutex);
}

ThreadPool& ThreadPool::global() {
  // KF_NUM_THREADS overrides the hardware_concurrency default — serving
  // deployments pin the pool to their core allotment, and thread-scaling
  // benches sweep it without recompiling. Only a clean positive integer
  // in [1, kMaxPoolThreads] is honored; anything else warns and falls
  // back to the default (a wrapped negative would crash the constructor).
  static ThreadPool pool([] {
    const char* env = std::getenv("KF_NUM_THREADS");
    if (env == nullptr || *env == '\0') return std::size_t{0};
    constexpr unsigned long long kMaxPoolThreads = 256;
    const auto parsed = parse_count(env, kMaxPoolThreads);
    if (!parsed.has_value() || *parsed == 0) {
      obs::diag("ignoring KF_NUM_THREADS=\"" + std::string(env) + "\" (want 1.." +
                std::to_string(kMaxPoolThreads) + "); using hardware_concurrency");
      return std::size_t{0};
    }
    return static_cast<std::size_t>(*parsed);
  }());
  return pool;
}

}  // namespace kf
