#include "core/threadpool.h"

#include <algorithm>
#include <atomic>

namespace kf {

namespace {

// Set while a pool worker executes a task. A parallel_for issued from a
// worker must run inline: enqueuing chunks and blocking on done_cv would
// occupy a worker slot while waiting for other workers — with nested
// kernels (e.g. attention calling matvec) every worker can end up blocked
// waiting for chunks nobody is free to run.
thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_entry(); });
  }
}

void ThreadPool::worker_entry() {
  t_in_pool_worker = true;  // a worker thread is a worker for its lifetime
  worker_loop();
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  if (t_in_pool_worker) {  // nested call from a worker: run inline
    fn(0, n);
    return;
  }
  grain = std::max<std::size_t>(1, grain);
  const std::size_t max_chunks = std::max<std::size_t>(1, (n + grain - 1) / grain);
  const std::size_t num_chunks = std::min(workers_.size() * 2, max_chunks);
  if (num_chunks <= 1 || workers_.size() <= 1) {
    fn(0, n);
    return;
  }

  std::atomic<std::size_t> remaining(num_chunks);
  std::mutex done_mutex;
  std::condition_variable done_cv;

  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      tasks_.push([&, begin, end] {
        if (begin < end) fn(begin, end);
        if (remaining.fetch_sub(1) == 1) {
          const std::lock_guard<std::mutex> done_lock(done_mutex);
          done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace kf
