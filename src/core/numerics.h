// Numerically stable softmax-family primitives shared by the attention
// kernel, the eviction-score functions, and the evaluation metrics.
#pragma once

#include <span>

namespace kf {

/// max(x). Requires non-empty input.
float max_value(std::span<const float> x);

/// log(sum_i exp(x_i)) computed stably. Requires non-empty input.
double logsumexp(std::span<const float> x);

/// out_i = exp(x_i - max) / sum_j exp(x_j - max). `x` and `out` may alias.
void softmax(std::span<const float> x, std::span<float> out);

/// Softmax with temperature: softmax(x / tau). Requires tau > 0.
void softmax_temperature(std::span<const float> x, std::span<float> out,
                         double tau);

/// out_i = x_i - logsumexp(x) (log-probabilities).
void log_softmax(std::span<const float> x, std::span<float> out);

/// Shannon entropy of a probability vector (natural log). Zero entries are
/// skipped. Requires p to sum approximately to 1 for a meaningful value.
double entropy(std::span<const float> p);

/// KL(p || q) with natural log; entries where p_i == 0 contribute 0, and
/// q is floored at `eps` to avoid division by zero.
double kl_divergence(std::span<const float> p, std::span<const float> q,
                     double eps = 1e-12);

}  // namespace kf
