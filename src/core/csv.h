// Tiny CSV writer so bench binaries can persist the series they print
// (plotting-friendly output for EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

namespace kf {

class Table;

/// Accumulates rows and writes an RFC-4180-ish CSV file (quotes cells
/// containing separators or quotes).
class CsvWriter {
 public:
  /// Sets the header row.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row; ragged rows are allowed.
  void add_row(std::vector<std::string> cells);

  /// Serializes all rows.
  std::string to_string() const;

  /// Writes to `path`. Returns false (and leaves no partial file
  /// guarantee) on I/O failure.
  bool write_file(const std::string& path) const;

  /// Builds a CSV from an existing Table (header + rows).
  static CsvWriter from_table(const Table& table);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kf
