#include "core/csv.h"

#include <fstream>
#include <sstream>

#include "core/table.h"

namespace kf {

namespace {

std::string escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i > 0) os << ',';
      os << escape(r[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_string();
  return static_cast<bool>(out);
}

CsvWriter CsvWriter::from_table(const Table& table) {
  CsvWriter csv(table.header_row());
  for (const auto& r : table.rows()) {
    csv.add_row(r);
  }
  return csv;
}

}  // namespace kf
