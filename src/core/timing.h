// Shared wall-clock helper for the perf-instrumentation sinks
// (AttentionTimings, PolicyTimings) and the throughput benches, plus the
// trace clock backing src/obs: a raw monotonic tick counter (TSC where the
// target has one) with lazy steady_clock calibration, so a trace span costs
// one TSC read instead of a clock_gettime syscall path.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <x86intrin.h>
#define KF_TRACE_TSC 1
#endif

namespace kf {

/// Seconds on a monotonic clock; only differences are meaningful.
inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Raw ticks on the trace clock. On x86-64 this is one `rdtsc` (the cheap
/// path KF_TRACE_SCOPE pays when tracing is enabled); elsewhere, and when
/// the KF_TRACE_CLOCK=ns env override asks for it, steady_clock nanoseconds.
/// Only differences are meaningful; convert with trace_ticks_to_seconds.
std::uint64_t trace_ticks() noexcept;

/// The tick value captured when the trace clock was first touched in this
/// process. Every tick returned by trace_ticks() afterwards is >= this, so
/// it anchors trace timestamps at ~0.
std::uint64_t trace_clock_anchor();

/// Converts a tick difference to seconds using a steady_clock-calibrated
/// rate (exact when the nanosecond fallback is active). The first call may
/// block ~200us to measure a usable rate; afterwards the rate is cached.
double trace_ticks_to_seconds(std::uint64_t ticks_delta);

/// Inverse of trace_ticks_to_seconds (same cached rate).
std::uint64_t trace_seconds_to_ticks(double seconds);

#if defined(KF_TRACE_TSC)
namespace detail {
/// True unless KF_TRACE_CLOCK=ns forced the portable nanosecond clock.
bool trace_clock_uses_tsc();
}  // namespace detail

inline std::uint64_t trace_ticks() noexcept {
  if (detail::trace_clock_uses_tsc()) {
    return __rdtsc();
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#else
inline std::uint64_t trace_ticks() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif

}  // namespace kf
