// Shared wall-clock helper for the perf-instrumentation sinks
// (AttentionTimings, PolicyTimings) and the throughput benches.
#pragma once

#include <chrono>

namespace kf {

/// Seconds on a monotonic clock; only differences are meaningful.
inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace kf
