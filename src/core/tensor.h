// Minimal row-major float tensor plus the dense kernels the transformer
// needs: blocked (optionally threaded) matmul, matvec, bias/activation
// fusions, and LayerNorm. The reproduction is CPU-only and fp32; fp16
// effects appear only in the analytical performance model (src/perf).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace kf {

/// Owning row-major tensor of floats with up to 4 dimensions.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor with the given shape.
  explicit Tensor(std::initializer_list<std::size_t> shape);
  explicit Tensor(const std::vector<std::size_t>& shape);

  /// Total number of elements.
  std::size_t size() const noexcept { return data_.size(); }

  /// Shape vector (row-major, slowest dimension first).
  const std::vector<std::size_t>& shape() const noexcept { return shape_; }

  /// Dimension i. Requires i < shape().size().
  std::size_t dim(std::size_t i) const { return shape_.at(i); }

  /// Number of dimensions.
  std::size_t rank() const noexcept { return shape_.size(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }

  std::span<float> span() noexcept { return {data_.data(), data_.size()}; }
  std::span<const float> span() const noexcept {
    return {data_.data(), data_.size()};
  }

  /// 2-D indexed access (requires rank() == 2).
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;

  /// Row view for a rank-2 tensor: `dim(1)` contiguous floats.
  std::span<float> row(std::size_t i);
  std::span<const float> row(std::size_t i) const;

  /// Sets every element to v.
  void fill(float v) noexcept;

  /// Reshape in place; the element count must be unchanged.
  void reshape(const std::vector<std::size_t>& shape);

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// C[m,n] = A[m,k] * B[k,n]. Blocked, threaded via ThreadPool::global()
/// when the problem is large enough. Aliasing between C and A/B is not
/// allowed.
void matmul(std::span<const float> a, std::span<const float> b,
            std::span<float> c, std::size_t m, std::size_t k, std::size_t n);

/// C[m,n] = A[m,k] * B[n,k]^T — the natural layout for Q*K^T where keys
/// are stored row-major per token.
void matmul_transposed_b(std::span<const float> a, std::span<const float> b,
                         std::span<float> c, std::size_t m, std::size_t k,
                         std::size_t n);

/// y[n] = A[n,k] * x[k].
void matvec(std::span<const float> a, std::span<const float> x,
            std::span<float> y, std::size_t n, std::size_t k);

/// y[k] = x[n] * A[n,k] (vector-matrix; used for attention prob * V).
void vecmat(std::span<const float> x, std::span<const float> a,
            std::span<float> y, std::size_t n, std::size_t k);

/// Dot product of two equal-length spans. Unrolled into independent
/// accumulators so the compiler can auto-vectorize.
float dot(std::span<const float> a, std::span<const float> b);

/// y += a * x (equal lengths) — the weighted-value accumulation primitive
/// of the fused decode attention kernel.
void axpy(float a, std::span<const float> x, std::span<float> y);

/// y += x (equal lengths).
void add_inplace(std::span<float> y, std::span<const float> x);

/// y *= s.
void scale_inplace(std::span<float> y, float s);

/// Tanh-approximation GELU applied elementwise in place.
void gelu_inplace(std::span<float> y);

/// LayerNorm over the last dimension: out = (x - mean) / sqrt(var + eps)
/// * gamma + beta. `x` and `out` may alias.
void layer_norm(std::span<const float> x, std::span<const float> gamma,
                std::span<const float> beta, std::span<float> out,
                float eps = 1e-5F);

}  // namespace kf
