#include "core/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace kf {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(long long v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths;
  const auto grow = [&](const std::vector<std::string>& r) {
    if (r.size() > widths.size()) widths.resize(r.size(), 0);
    for (std::size_t i = 0; i < r.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  if (!title_.empty()) {
    os << "== " << title_ << " ==\n";
  }
  const auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[i])) << cell;
      if (i + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (const std::size_t w : widths) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string() << '\n'; }

}  // namespace kf
