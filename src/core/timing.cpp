// Trace-clock calibration: anchors the raw tick counter (TSC or steady_clock
// nanoseconds) against kf::now_seconds() so tick differences convert to
// seconds. The rate is measured lazily on the first conversion -- spinning a
// short interval if needed -- and cached; recording a span never pays more
// than the tick read itself.
#include "core/timing.h"

#include <atomic>
#include <cstdlib>

namespace kf {
namespace {

struct TraceClockAnchor {
  std::uint64_t ticks0;
  double seconds0;
};

const TraceClockAnchor& anchor() {
  static const TraceClockAnchor a{trace_ticks(), now_seconds()};
  return a;
}

// Ticks per second, measured against steady_clock. 0.0 = not yet measured.
std::atomic<double> g_ticks_per_second{0.0};

#if defined(KF_TRACE_TSC)
bool tsc_enabled_from_env() {
  const char* env = std::getenv("KF_TRACE_CLOCK");
  if (env != nullptr && env[0] == 'n' && env[1] == 's' && env[2] == '\0') {
    return false;
  }
  return true;
}
#endif

bool clock_is_exact_nanos() {
#if defined(KF_TRACE_TSC)
  return !detail::trace_clock_uses_tsc();
#else
  return true;
#endif
}

// Measures ticks/second against the anchor, spinning until enough wall time
// has elapsed for the ratio to be stable (~200us is plenty for a TSC-class
// counter). Caches the result once a high-confidence interval (>=10ms) has
// been observed; earlier calls return the short-interval measurement without
// caching so a later, longer-baseline call can improve it.
double measure_ticks_per_second() {
  constexpr double kMinInterval = 200e-6;
  constexpr double kCacheInterval = 10e-3;
  const TraceClockAnchor& a = anchor();
  double elapsed = now_seconds() - a.seconds0;
  while (elapsed < kMinInterval) {
    elapsed = now_seconds() - a.seconds0;
  }
  const std::uint64_t ticks = trace_ticks() - a.ticks0;
  const double rate = static_cast<double>(ticks) / elapsed;
  if (elapsed >= kCacheInterval) {
    g_ticks_per_second.store(rate, std::memory_order_relaxed);
  }
  return rate;
}

double ticks_per_second() {
  if (clock_is_exact_nanos()) {
    return 1e9;
  }
  const double cached = g_ticks_per_second.load(std::memory_order_relaxed);
  if (cached > 0.0) {
    return cached;
  }
  return measure_ticks_per_second();
}

}  // namespace

#if defined(KF_TRACE_TSC)
namespace detail {
bool trace_clock_uses_tsc() {
  static const bool use_tsc = tsc_enabled_from_env();
  return use_tsc;
}
}  // namespace detail
#endif

std::uint64_t trace_clock_anchor() { return anchor().ticks0; }

double trace_ticks_to_seconds(std::uint64_t ticks_delta) {
  return static_cast<double>(ticks_delta) / ticks_per_second();
}

std::uint64_t trace_seconds_to_ticks(double seconds) {
  if (seconds <= 0.0) {
    return 0;
  }
  return static_cast<std::uint64_t>(seconds * ticks_per_second());
}

}  // namespace kf
