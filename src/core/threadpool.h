// Fixed-size thread pool with a parallel_for helper.
//
// The pool is used by the tensor kernels (matmul, attention) to keep the
// CPU reproduction fast enough for the full benchmark sweep. Work items
// are deterministic functions of their index range, so parallel execution
// does not affect results.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "core/annotations.h"
#include "core/mutex.h"

namespace kf {

/// A fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(begin, end) over [0, n) split into roughly even chunks across
  /// the pool, blocking until all chunks finish. Falls back to a direct
  /// call when n is small or the pool has a single worker. Calls made from
  /// inside a pool worker (nested kernels) run inline rather than
  /// enqueueing — blocking a worker slot on nested chunks can deadlock the
  /// pool once every worker is waiting.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1) KF_EXCLUDES(mutex_);

  /// Process-wide shared pool (created on first use). Size defaults to
  /// hardware_concurrency; the KF_NUM_THREADS environment variable
  /// overrides it (read once, at first use).
  static ThreadPool& global();

 private:
  void worker_entry();  ///< marks the thread as a pool worker, then loops
  void worker_loop() KF_EXCLUDES(mutex_);

  /// Immutable after construction (joined in the destructor).
  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ KF_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stopping_ KF_GUARDED_BY(mutex_) = false;
};

}  // namespace kf
