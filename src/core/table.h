// Aligned plain-text table printer used by every bench binary to emit the
// rows/series of the corresponding paper table or figure.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace kf {

/// Builds a column-aligned text table. Cells are strings; numeric helpers
/// format with a fixed precision.
class Table {
 public:
  explicit Table(std::string title = {});

  /// Sets the header row.
  Table& header(std::vector<std::string> cols);

  /// Appends a data row (ragged rows are padded with empty cells).
  Table& row(std::vector<std::string> cells);

  /// Formats a double with `precision` decimal places.
  static std::string num(double v, int precision = 3);

  /// Formats an integer.
  static std::string num(long long v);

  /// Renders the table.
  std::string to_string() const;

  /// Prints to the stream followed by a blank line.
  void print(std::ostream& os) const;

  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }
  const std::vector<std::string>& header_row() const noexcept {
    return header_;
  }
  const std::string& title() const noexcept { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kf
