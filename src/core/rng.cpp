#include "core/rng.h"

#include <cmath>
#include <numbers>

namespace kf {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  // Mix b into a with an avalanche step so that (a, b) and (b, a) differ.
  std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

namespace {

/// Convert a 64-bit value to a double in [0, 1) using the top 53 bits.
double to_unit_double(std::uint64_t v) noexcept {
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : state_(seed) {
  // Burn one step so that seeds 0 and 1 do not share early outputs.
  (void)splitmix64(state_);
}

std::uint64_t Rng::u64() noexcept { return splitmix64(state_); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~0ULL) / n);
  std::uint64_t v = u64();
  while (v >= limit) v = u64();
  return v % n;
}

double Rng::uniform() noexcept { return to_unit_double(u64()); }

double Rng::uniform_open() noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return u;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  const double u1 = uniform_open();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::gumbel() noexcept { return -std::log(-std::log(uniform_open())); }

double Rng::gumbel(double mu, double beta) noexcept {
  return mu + beta * gumbel();
}

Rng Rng::fork(std::uint64_t tag) noexcept {
  Rng child(hash_combine(state_, tag));
  return child;
}

namespace {

std::uint64_t fold_key(std::initializer_list<std::uint64_t> key) noexcept {
  std::uint64_t acc = 0x8C12E6A7B4F3D591ULL;
  for (const std::uint64_t k : key) acc = hash_combine(acc, k);
  return acc;
}

}  // namespace

double stateless_uniform(std::initializer_list<std::uint64_t> key) noexcept {
  std::uint64_t s = fold_key(key);
  double u = to_unit_double(splitmix64(s));
  while (u <= 0.0 || u >= 1.0) u = to_unit_double(splitmix64(s));
  return u;
}

double stateless_gumbel(std::initializer_list<std::uint64_t> key) noexcept {
  return -std::log(-std::log(stateless_uniform(key)));
}

double stateless_normal(std::initializer_list<std::uint64_t> key) noexcept {
  std::uint64_t s = fold_key(key);
  double u1 = to_unit_double(splitmix64(s));
  while (u1 <= 0.0) u1 = to_unit_double(splitmix64(s));
  const double u2 = to_unit_double(splitmix64(s));
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace kf
