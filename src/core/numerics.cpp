#include "core/numerics.h"

#include <cassert>
#include <cmath>

#include "cpu/kernels.h"

namespace kf {

// max_value/logsumexp/softmax bodies live in the per-ISA variants under
// src/cpu (the scalar variant is the historical loop, moved verbatim);
// these wrappers keep the spans/asserts and resolve the dispatch table.

float max_value(std::span<const float> x) {
  assert(!x.empty());
  return cpu::max_value_stub.get()(x.data(), x.size());
}

double logsumexp(std::span<const float> x) {
  return cpu::logsumexp_stub.get()(x.data(), x.size());
}

void softmax(std::span<const float> x, std::span<float> out) {
  assert(x.size() == out.size() && !x.empty());
  // tau == 1.0 divides exactly: the temperature kernel with unit tau IS
  // the plain softmax, bit for bit.
  cpu::softmax_stub.get()(x.data(), out.data(), x.size(), 1.0);
}

void softmax_temperature(std::span<const float> x, std::span<float> out,
                         double tau) {
  assert(tau > 0.0 && x.size() == out.size() && !x.empty());
  cpu::softmax_stub.get()(x.data(), out.data(), x.size(), tau);
}

void log_softmax(std::span<const float> x, std::span<float> out) {
  assert(x.size() == out.size() && !x.empty());
  const double lse = logsumexp(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = static_cast<float>(static_cast<double>(x[i]) - lse);
  }
}

double entropy(std::span<const float> p) {
  double h = 0.0;
  for (const float v : p) {
    if (v > 0.0F) {
      h -= static_cast<double>(v) * std::log(static_cast<double>(v));
    }
  }
  return h;
}

double kl_divergence(std::span<const float> p, std::span<const float> q,
                     double eps) {
  assert(p.size() == q.size());
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0F) continue;
    const double pi = p[i];
    const double qi = q[i] > eps ? q[i] : eps;
    kl += pi * std::log(pi / qi);
  }
  return kl;
}

}  // namespace kf
