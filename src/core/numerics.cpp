#include "core/numerics.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace kf {

float max_value(std::span<const float> x) {
  assert(!x.empty());
  float m = x[0];
  for (const float v : x) m = v > m ? v : m;
  return m;
}

double logsumexp(std::span<const float> x) {
  const float m = max_value(x);
  double acc = 0.0;
  for (const float v : x) acc += std::exp(static_cast<double>(v - m));
  return static_cast<double>(m) + std::log(acc);
}

void softmax(std::span<const float> x, std::span<float> out) {
  assert(x.size() == out.size() && !x.empty());
  const float m = max_value(x);
  // Every entry masked to -inf: there is no distribution to normalize
  // (and -inf - -inf below would be NaN). Return the all-zero row
  // (matching the "masked entries are 0" convention) instead of fanning
  // NaN out through the caller.
  if (m == -std::numeric_limits<float>::infinity()) {
    for (float& v : out) v = 0.0F;
    return;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = std::exp(static_cast<double>(x[i] - m));
    out[i] = static_cast<float>(e);
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& v : out) v *= inv;
}

void softmax_temperature(std::span<const float> x, std::span<float> out,
                         double tau) {
  assert(tau > 0.0 && x.size() == out.size() && !x.empty());
  const float m = max_value(x);
  if (m == -std::numeric_limits<float>::infinity()) {
    for (float& v : out) v = 0.0F;  // all--inf row, see softmax()
    return;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = std::exp(static_cast<double>(x[i] - m) / tau);
    out[i] = static_cast<float>(e);
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& v : out) v *= inv;
}

void log_softmax(std::span<const float> x, std::span<float> out) {
  assert(x.size() == out.size() && !x.empty());
  const double lse = logsumexp(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = static_cast<float>(static_cast<double>(x[i]) - lse);
  }
}

double entropy(std::span<const float> p) {
  double h = 0.0;
  for (const float v : p) {
    if (v > 0.0F) h -= static_cast<double>(v) * std::log(static_cast<double>(v));
  }
  return h;
}

double kl_divergence(std::span<const float> p, std::span<const float> q,
                     double eps) {
  assert(p.size() == q.size());
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0F) continue;
    const double pi = p[i];
    const double qi = q[i] > eps ? q[i] : eps;
    kl += pi * std::log(pi / qi);
  }
  return kl;
}

}  // namespace kf
