#include "core/tensor.h"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/threadpool.h"
#include "cpu/kernels.h"

namespace kf {

namespace {

std::size_t shape_size(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (const std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

}  // namespace

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor::Tensor(const std::vector<std::size_t>& shape)
    : shape_(shape), data_(shape_size(shape), 0.0F) {
  if (shape_.size() > 4) {
    throw std::invalid_argument("Tensor supports at most 4 dimensions");
  }
}

float& Tensor::at(std::size_t i, std::size_t j) {
  assert(rank() == 2 && i < shape_[0] && j < shape_[1]);
  return data_[i * shape_[1] + j];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  assert(rank() == 2 && i < shape_[0] && j < shape_[1]);
  return data_[i * shape_[1] + j];
}

std::span<float> Tensor::row(std::size_t i) {
  assert(rank() == 2 && i < shape_[0]);
  return {data_.data() + i * shape_[1], shape_[1]};
}

std::span<const float> Tensor::row(std::size_t i) const {
  assert(rank() == 2 && i < shape_[0]);
  return {data_.data() + i * shape_[1], shape_[1]};
}

void Tensor::fill(float v) noexcept {
  for (float& x : data_) x = v;
}

void Tensor::reshape(const std::vector<std::size_t>& shape) {
  if (shape_size(shape) != data_.size()) {
    throw std::invalid_argument("reshape must preserve element count");
  }
  shape_ = shape;
}

namespace {

// Inner kernel for one row-block of C = A * B.
void matmul_rows(const float* a, const float* b, float* c, std::size_t m0,
                 std::size_t m1, std::size_t k, std::size_t n) {
  constexpr std::size_t kBlockK = 64;
  for (std::size_t i = m0; i < m1; ++i) {
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0F;
    for (std::size_t kb = 0; kb < k; kb += kBlockK) {
      const std::size_t ke = std::min(k, kb + kBlockK);
      for (std::size_t kk = kb; kk < ke; ++kk) {
        const float aik = a[i * k + kk];
        const float* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

}  // namespace

void matmul(std::span<const float> a, std::span<const float> b,
            std::span<float> c, std::size_t m, std::size_t k, std::size_t n) {
  assert(a.size() >= m * k && b.size() >= k * n && c.size() >= m * n);
  const std::size_t work = m * k * n;
  if (work > (1u << 18) && m > 1) {
    ThreadPool::global().parallel_for(
        m,
        [&](std::size_t r0, std::size_t r1) {
          matmul_rows(a.data(), b.data(), c.data(), r0, r1, k, n);
        },
        /*grain=*/4);
  } else {
    matmul_rows(a.data(), b.data(), c.data(), 0, m, k, n);
  }
}

void matmul_transposed_b(std::span<const float> a, std::span<const float> b,
                         std::span<float> c, std::size_t m, std::size_t k,
                         std::size_t n) {
  assert(a.size() >= m * k && b.size() >= n * k && c.size() >= m * n);
  const auto kernel = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const float* arow = a.data() + i * k;
      float* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = b.data() + j * k;
        float acc = 0.0F;
        for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
  };
  const std::size_t work = m * k * n;
  if (work > (1u << 18) && m > 1) {
    ThreadPool::global().parallel_for(m, kernel, /*grain=*/4);
  } else {
    kernel(0, m);
  }
}

void matvec(std::span<const float> a, std::span<const float> x,
            std::span<float> y, std::size_t n, std::size_t k) {
  assert(a.size() >= n * k && x.size() >= k && y.size() >= n);
  // ISA resolved once per call (one relaxed load); the row kernel runs
  // unchanged on every worker of a parallel split.
  const cpu::MatvecRowsFn rows = cpu::matvec_rows_stub.get();
  const auto kernel = [&, rows](std::size_t r0, std::size_t r1) {
    rows(a.data(), x.data(), y.data(), r0, r1, k);
  };
  if (n * k > (1u << 18)) {
    ThreadPool::global().parallel_for(n, kernel, /*grain=*/16);
  } else {
    kernel(0, n);
  }
}

void vecmat(std::span<const float> x, std::span<const float> a,
            std::span<float> y, std::size_t n, std::size_t k) {
  assert(a.size() >= n * k && x.size() >= n && y.size() >= k);
  // Each chunk owns a column range [j0, j1): it walks every row but only
  // touches its own slice of y, so chunks are independent and the row
  // slices it reads stay contiguous.
  const cpu::VecmatColsFn cols = cpu::vecmat_cols_stub.get();
  const auto kernel = [&, cols](std::size_t j0, std::size_t j1) {
    cols(x.data(), a.data(), y.data(), n, k, j0, j1);
  };
  if (n * k > (1u << 18) && k > 1) {
    ThreadPool::global().parallel_for(k, kernel, /*grain=*/64);
  } else {
    kernel(0, k);
  }
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  return cpu::dot_stub.get()(a.data(), b.data(), a.size());
}

void axpy(float a, std::span<const float> x, std::span<float> y) {
  assert(y.size() == x.size());
  cpu::axpy_stub.get()(a, x.data(), y.data(), y.size());
}

void add_inplace(std::span<float> y, std::span<const float> x) {
  assert(y.size() == x.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += x[i];
}

void scale_inplace(std::span<float> y, float s) {
  for (float& v : y) v *= s;
}

void gelu_inplace(std::span<float> y) {
  constexpr float kSqrt2OverPi = 0.7978845608028654F;
  for (float& v : y) {
    const float c = v + 0.044715F * v * v * v;
    v = 0.5F * v * (1.0F + std::tanh(kSqrt2OverPi * c));
  }
}

void layer_norm(std::span<const float> x, std::span<const float> gamma,
                std::span<const float> beta, std::span<float> out, float eps) {
  assert(x.size() == out.size() && gamma.size() == x.size() &&
         beta.size() == x.size());
  const std::size_t n = x.size();
  double mean = 0.0;
  for (const float v : x) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const float v : x) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(n);
  const float inv = 1.0F / std::sqrt(static_cast<float>(var) + eps);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (x[i] - static_cast<float>(mean)) * inv * gamma[i] + beta[i];
  }
}

}  // namespace kf
