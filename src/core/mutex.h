// Annotated mutex primitives for Clang Thread Safety Analysis.
//
// std::mutex carries no capability attributes in libstdc++, so guarded
// state locked through it is invisible to -Wthread-safety. These thin
// wrappers are the annotated equivalents the repo's concurrent
// subsystems lock with: kf::Mutex is a capability, kf::LockGuard the
// scoped acquire/release, kf::CondVar a condition variable whose wait
// keeps the analysis informed that the mutex is held whenever the
// caller's code runs. Zero overhead beyond the underlying std types
// (CondVar uses condition_variable_any, whose wait takes any
// BasicLockable — here the raw std::mutex inside kf::Mutex).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/annotations.h"

namespace kf {

/// An annotated std::mutex: the unit of mutual exclusion the analysis
/// tracks. Lock through LockGuard in application code; bare lock() /
/// unlock() exist for the rare hand-over-hand pattern.
class KF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() KF_ACQUIRE() { mu_.lock(); }
  void unlock() KF_RELEASE() { mu_.unlock(); }
  bool try_lock() KF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock of a kf::Mutex (the std::scoped_lock of the annotated
/// world): acquires in the constructor, releases in the destructor, and
/// tells the analysis the capability is held for the guard's scope.
class KF_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) KF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() KF_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable for kf::Mutex. wait() atomically releases and
/// reacquires the mutex internally, but from the caller's point of view
/// the mutex is held before and after — exactly what KF_REQUIRES
/// declares, so guarded predicate state can be read around the wait
/// without further ceremony. Use the classic loop:
///
///   LockGuard lock(mu_);
///   while (!ready_) cv_.wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until notified; `mu` must be held and is held again on
  /// return. Spurious wakeups are possible — always re-check the
  /// predicate in a loop.
  void wait(Mutex& mu) KF_REQUIRES(mu) { cv_.wait(mu.mu_); }

  /// Blocks until notified or `seconds` elapse; `mu` must be held and is
  /// held again on return. Returns true when the wait timed out, false
  /// when it was (possibly spuriously) notified — either way, re-check
  /// the predicate. This is the periodic-worker primitive: a monitor
  /// thread sleeps its poll period here and shutdown interrupts it
  /// immediately via notify.
  bool wait_for(Mutex& mu, double seconds) KF_REQUIRES(mu) {
    return cv_.wait_for(mu.mu_, std::chrono::duration<double>(seconds)) ==
           std::cv_status::timeout;
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace kf
