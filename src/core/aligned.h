// 64-byte-aligned allocation helpers for KV float storage.
//
// The dispatched SIMD kernels (src/cpu) use unaligned loads, so
// alignment is never a correctness requirement — but a 64-byte
// allocation base means AVX-512 loads on head-major segment starts never
// straddle a cache line, and keeps K/V rows from sharing lines with
// unrelated heap data. BlockPool slabs and ContiguousKvCache arenas
// allocate through these helpers and assert the base alignment in debug
// builds (pinned by the randomized property tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace kf {

/// Allocation alignment for KV float storage: one cache line, and the
/// widest vector width the dispatcher selects (AVX-512).
inline constexpr std::size_t kSimdAlign = 64;

/// True when `p` sits on a kSimdAlign boundary.
inline bool is_simd_aligned(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % kSimdAlign == 0;
}

struct AlignedFloatDeleter {
  void operator()(float* p) const noexcept {
    ::operator delete[](p, std::align_val_t{kSimdAlign});
  }
};

/// Owning pointer to a kSimdAlign-aligned float array.
using AlignedFloatArray = std::unique_ptr<float[], AlignedFloatDeleter>;

/// Allocates `n` zero-initialized floats at kSimdAlign (the drop-in
/// replacement for std::make_unique<float[]>(n), which value-initializes
/// too).
inline AlignedFloatArray make_aligned_floats(std::size_t n) {
  auto* p = static_cast<float*>(
      ::operator new[](n * sizeof(float), std::align_val_t{kSimdAlign}));
  for (std::size_t i = 0; i < n; ++i) p[i] = 0.0F;
  return AlignedFloatArray{p};
}

/// Minimal stateless allocator handing out kSimdAlign-aligned storage;
/// all instances are interchangeable.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kSimdAlign}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kSimdAlign});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector whose data() is always kSimdAlign-aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace kf
