// Strict digits-only count parsing, shared by every CLI/env entry point
// that reads a non-negative integer. A bare strtoull is the wrong tool for
// these: it skips leading whitespace, wraps negatives to huge values, and
// saturates overflow to ULLONG_MAX with only errno to show for it.
#pragma once

#include <optional>

namespace kf {

/// Parses a count written as plain digits. Returns std::nullopt on null or
/// empty input, any non-digit character (including leading whitespace or a
/// sign), or a value exceeding `max`.
inline std::optional<unsigned long long> parse_count(
    const char* s,
    unsigned long long max = ~0ULL) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  unsigned long long v = 0;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return std::nullopt;
    const unsigned long long digit = static_cast<unsigned long long>(*p - '0');
    if (digit > max || v > (max - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

}  // namespace kf
