// Deterministic random number generation for reproducible experiments.
//
// Two entry points:
//   - kf::Rng: a sequential SplitMix64-based generator with uniform, normal
//     (Box-Muller) and Gumbel(0,1) samplers.
//   - kf::stateless_*: counter-based stateless samplers keyed by a tuple of
//     identifiers (seed, layer, head, position). These give every KV-cache
//     slot a fixed noise realization that is independent of evaluation
//     order, which is what Algorithm 1's "Initialize zeta <- Gumbel"
//     requires (the noise is drawn once per slot and reused every step).
#pragma once

#include <cstdint>
#include <initializer_list>

namespace kf {

/// Euler-Mascheroni constant: mean of the standard Gumbel distribution.
inline constexpr double kGumbelMean = 0.57721566490153286;
/// Standard deviation of the standard Gumbel distribution (pi/sqrt(6)).
inline constexpr double kGumbelStddev = 1.28254983016186409;

/// SplitMix64 step: maps any 64-bit state to a well-mixed 64-bit output.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Order-independent-free hash combine used to derive stateless streams.
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

/// Sequential deterministic generator (not thread-safe; create one per
/// thread or derive independent child streams with `fork`).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t u64() noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in (0, 1) — never returns exactly 0 (safe for log()).
  double uniform_open() noexcept;

  /// Standard normal via Box-Muller.
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Standard Gumbel(0, 1): -log(-log(U)).
  double gumbel() noexcept;

  /// Gumbel with location mu and scale beta.
  double gumbel(double mu, double beta) noexcept;

  /// Derive an independent child generator; deterministic in (state, tag).
  Rng fork(std::uint64_t tag) noexcept;

 private:
  std::uint64_t state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Stateless uniform in (0, 1) keyed by a list of identifiers.
double stateless_uniform(std::initializer_list<std::uint64_t> key) noexcept;

/// Stateless standard Gumbel keyed by a list of identifiers. Used for the
/// per-slot noise zeta_i in the Keyformer score function.
double stateless_gumbel(std::initializer_list<std::uint64_t> key) noexcept;

/// Stateless standard normal keyed by a list of identifiers.
double stateless_normal(std::initializer_list<std::uint64_t> key) noexcept;

}  // namespace kf
