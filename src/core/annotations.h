// Clang Thread Safety Analysis capability macros.
//
// The serving stack's locks — the BlockPool's per-shard mutexes, the
// PrefixIndex's entry lock, the ThreadPool queue — protect refcount and
// reservation invariants that every correctness claim in the repo rests
// on (bit-exact paged vs contiguous caches, copy-on-write prefix
// sharing, used <= reserved <= capacity). TSan only sees the
// interleavings the tests happen to run; these macros let clang prove at
// compile time (-Wthread-safety) that every access to guarded state
// happens under the right lock, on every path.
//
// Under clang the macros expand to the thread-safety attributes; under
// gcc/MSVC they vanish, so annotated headers stay portable. Pair them
// with the kf::Mutex / kf::LockGuard wrappers in core/mutex.h — the
// analysis cannot see through std::mutex, which carries no annotations
// in libstdc++.
//
// Usage sketch:
//   class KF_CAPABILITY("mutex") Mutex { ... };
//   kf::Mutex mu_;
//   int value_ KF_GUARDED_BY(mu_);
//   void touch_locked() KF_REQUIRES(mu_);   // caller must hold mu_
//   void touch() KF_EXCLUDES(mu_);          // caller must NOT hold mu_
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define KF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef KF_THREAD_ANNOTATION
#define KF_THREAD_ANNOTATION(x)  // no-op: analysis is clang-only
#endif

/// Marks a class as a lockable capability (named in diagnostics).
#define KF_CAPABILITY(x) KF_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define KF_SCOPED_CAPABILITY KF_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define KF_GUARDED_BY(x) KF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability
/// (the pointer itself may be read freely).
#define KF_PT_GUARDED_BY(x) KF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that acquires the capability and holds it on return.
#define KF_ACQUIRE(...) KF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability held on entry.
#define KF_RELEASE(...) KF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns the given value.
#define KF_TRY_ACQUIRE(...) \
  KF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability exclusively (the `_locked` contract).
#define KF_REQUIRES(...) KF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for public entry
/// points of self-locking classes).
#define KF_EXCLUDES(...) KF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Documents lock-ordering edges for deadlock diagnostics.
#define KF_ACQUIRED_BEFORE(...) \
  KF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define KF_ACQUIRED_AFTER(...) \
  KF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returning a reference to a capability guarding other state.
#define KF_RETURN_CAPABILITY(x) KF_THREAD_ANNOTATION(lock_returned(x))

/// Last resort: disables the analysis for one function. Not used in
/// src/mem, src/serve, or src/core — the lint gate keeps it that way.
#define KF_NO_THREAD_SAFETY_ANALYSIS \
  KF_THREAD_ANNOTATION(no_thread_safety_analysis)
