// Umbrella header: the full public API of the Keyformer reproduction.
//
// Quick tour:
//   kf::model::Transformer     — from-scratch decoder-only transformer
//   kf::model::generate        — generation loop with eviction policies
//   kf::serve::Engine          — continuous-batching serving engine
//   kf::kv::KeyformerPolicy    — the paper's contribution (Algorithm 1)
//   kf::kv::make_policy        — all baselines (H2O, window, sinks, ...)
//   kf::perf::CostModel        — A100-calibrated latency/throughput model
//   kf::data::*                — synthetic corpora and few-shot tasks
//   kf::eval::*                — ROUGE, attention metrics, harness
#pragma once

#include "core/csv.h"
#include "core/numerics.h"
#include "core/rng.h"
#include "core/table.h"
#include "core/tensor.h"
#include "core/threadpool.h"
#include "core/timing.h"
#include "cpu/cpu_isa.h"
#include "data/fewshot.h"
#include "data/synthetic.h"
#include "data/vocab.h"
#include "eval/experiment.h"
#include "eval/heatmap.h"
#include "eval/metrics.h"
#include "eval/rouge.h"
#include "kvcache/kv_cache.h"
#include "kvcache/kv_state.h"
#include "kvcache/policies/full.h"
#include "kvcache/policies/h2o.h"
#include "kvcache/policies/key_attention.h"
#include "kvcache/policies/keyformer.h"
#include "kvcache/policies/random_evict.h"
#include "kvcache/policies/streaming_llm.h"
#include "kvcache/policies/window.h"
#include "kvcache/policy.h"
#include "kvcache/policy_factory.h"
#include "kvcache/score_function.h"
#include "mem/block_pool.h"
#include "mem/paged_kv_cache.h"
#include "model/attention.h"
#include "model/config.h"
#include "model/generator.h"
#include "model/positional.h"
#include "model/transformer.h"
#include "model/weights.h"
#include "perf/cost_model.h"
#include "perf/device.h"
#include "serve/engine.h"
#include "serve/scheduler.h"
#include "serve/sequence.h"
