#include "data/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/rng.h"

namespace kf::data {

namespace {

/// Power-law ("Zipf-ish") filler token: low filler ids are much more
/// frequent, mimicking natural-language unigram statistics.
Token zipf_filler(const TokenClasses& classes, Rng& rng) {
  const double u = rng.uniform();
  const std::size_t idx = static_cast<std::size_t>(
      std::pow(u, 1.2) * static_cast<double>(classes.n_filler()));
  return classes.filler_begin +
         static_cast<Token>(std::min(idx, classes.n_filler() - 1));
}

/// Picks `count` distinct positions uniformly from [begin, end).
std::vector<std::size_t> pick_positions(std::size_t begin, std::size_t end,
                                        std::size_t count, Rng& rng) {
  assert(end >= begin);
  std::vector<std::size_t> all(end - begin);
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = begin + i;
  count = std::min(count, all.size());
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.uniform_u64(all.size() - i);
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

/// Picks `count` distinct fact tokens.
std::vector<Token> pick_facts(const TokenClasses& classes, std::size_t count,
                              Rng& rng) {
  std::vector<Token> pool(classes.n_fact());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool[i] = classes.fact_begin + static_cast<Token>(i);
  }
  count = std::min(count, pool.size());
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.uniform_u64(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

/// Orders `facts` by their first appearance in `doc`.
std::vector<Token> reference_in_order(const std::vector<Token>& doc,
                                      const std::vector<Token>& facts) {
  std::vector<Token> ref;
  ref.reserve(facts.size());
  for (const Token t : doc) {
    if (std::find(facts.begin(), facts.end(), t) != facts.end() &&
        std::find(ref.begin(), ref.end(), t) == ref.end()) {
      ref.push_back(t);
    }
  }
  return ref;
}

/// Records every position of `doc` holding one of `facts`.
std::vector<std::size_t> positions_of(const std::vector<Token>& doc,
                                      const std::vector<Token>& facts) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    if (std::find(facts.begin(), facts.end(), doc[i]) != facts.end()) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace

Sample make_summarization_sample(const SummarizationConfig& cfg,
                                 std::size_t index) {
  if (cfg.doc_len < 32) {
    throw std::invalid_argument("doc_len too small");
  }
  const TokenClasses classes(cfg.vocab_size);
  Rng rng(hash_combine(cfg.seed, 0xD0C5 + index));

  std::vector<Token> doc(cfg.doc_len, -1);
  doc[0] = kBos;

  // Draw facts and distractors from the same salient pool, disjoint. The
  // distractors are the "heavy hitters that are not key tokens": salient
  // tokens repeated heavily near the start of the document that soak up
  // accumulated attention (the f_theta(acc attn) bias of Section 2.3.2)
  // without carrying reference content.
  std::vector<Token> pool =
      pick_facts(classes, cfg.n_facts + cfg.n_distractors, rng);
  const std::vector<Token> facts(pool.begin(),
                                 pool.begin() + static_cast<long>(std::min(
                                     cfg.n_facts, pool.size())));
  const std::vector<Token> distractors(
      pool.begin() + static_cast<long>(facts.size()), pool.end());

  // Early heavy distractors: first ~35% of the document.
  const std::size_t early_end =
      std::max<std::size_t>(2, (cfg.doc_len * 35) / 100);
  for (const Token tok : distractors) {
    const auto slots =
        pick_positions(1, early_end, cfg.distractor_repeats, rng);
    for (const std::size_t p : slots) {
      if (doc[p] < 0) doc[p] = tok;
    }
  }

  // Facts: middle 35%..92% — outside the distractor zone and outside a
  // typical trailing recent window.
  const std::size_t fact_begin_pos = early_end;
  const std::size_t fact_end_pos =
      std::max(fact_begin_pos + 1, (cfg.doc_len * 92) / 100);
  for (const Token f : facts) {
    auto slots =
        pick_positions(fact_begin_pos, fact_end_pos, cfg.fact_repeats * 3,
                       rng);
    std::size_t placed = 0;
    for (const std::size_t p : slots) {
      if (placed == cfg.fact_repeats) break;
      if (doc[p] < 0) {
        doc[p] = f;
        ++placed;
      }
    }
  }

  // Filler everywhere else.
  for (std::size_t i = 1; i < doc.size(); ++i) {
    if (doc[i] < 0) doc[i] = zipf_filler(classes, rng);
  }

  Sample s;
  s.prompt = std::move(doc);
  // Ask for the summary: a separator cue at the end of the prompt.
  s.prompt.push_back(kSep);
  s.reference = reference_in_order(s.prompt, facts);
  s.fact_positions = positions_of(s.prompt, facts);
  return s;
}

std::vector<Sample> make_summarization_set(const SummarizationConfig& cfg,
                                           std::size_t n_samples) {
  std::vector<Sample> out;
  out.reserve(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    out.push_back(make_summarization_sample(cfg, i));
  }
  return out;
}

Sample make_dialogue_sample(const DialogueConfig& cfg, std::size_t index) {
  const TokenClasses classes(cfg.vocab_size);
  Rng rng(hash_combine(cfg.seed, 0xD1A1 + index));

  Sample s;
  s.prompt.push_back(kBos);
  std::vector<Token> early_topics;
  for (std::size_t turn = 0; turn < cfg.n_turns; ++turn) {
    s.prompt.push_back(kSep);
    const std::vector<Token> topics =
        pick_facts(classes, cfg.topics_per_turn, rng);
    const bool early_half = turn < cfg.n_turns / 2;
    std::vector<Token> body(cfg.turn_len, -1);
    // Each topic token appears twice inside its turn.
    for (const Token t : topics) {
      const auto slots = pick_positions(0, cfg.turn_len, 2, rng);
      for (const std::size_t p : slots) {
        if (body[p] < 0) body[p] = t;
      }
      if (early_half) early_topics.push_back(t);
    }
    for (Token& t : body) {
      if (t < 0) t = zipf_filler(classes, rng);
    }
    s.prompt.insert(s.prompt.end(), body.begin(), body.end());
  }
  s.prompt.push_back(kSep);
  // Long-range recall: a good continuation revisits the early topics.
  s.reference = early_topics;
  s.fact_positions = positions_of(s.prompt, early_topics);
  return s;
}

std::vector<Sample> make_dialogue_set(const DialogueConfig& cfg,
                                      std::size_t n_samples) {
  std::vector<Sample> out;
  out.reserve(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    out.push_back(make_dialogue_sample(cfg, i));
  }
  return out;
}

Sample make_long_report_sample(const LongReportConfig& cfg,
                               std::size_t index) {
  const TokenClasses classes(cfg.vocab_size);
  Rng rng(hash_combine(cfg.seed, 0x60F7 + index));

  const std::size_t section_len = cfg.doc_len / cfg.n_sections;
  std::vector<Token> doc;
  doc.reserve(cfg.doc_len + cfg.n_sections + 2);
  doc.push_back(kBos);

  std::vector<Token> all_facts;
  for (std::size_t sec = 0; sec < cfg.n_sections; ++sec) {
    doc.push_back(kSep);  // section boundary
    std::vector<Token> body(section_len, -1);
    const std::vector<Token> facts =
        pick_facts(classes, cfg.facts_per_section, rng);
    for (const Token f : facts) {
      if (std::find(all_facts.begin(), all_facts.end(), f) ==
          all_facts.end()) {
        all_facts.push_back(f);
      }
      auto slots = pick_positions(0, section_len, cfg.fact_repeats * 2, rng);
      std::size_t placed = 0;
      for (const std::size_t p : slots) {
        if (placed == cfg.fact_repeats) break;
        if (body[p] < 0) {
          body[p] = f;
          ++placed;
        }
      }
    }
    // Heavy distractors live in the opening section only.
    if (sec == 0) {
      for (std::size_t d = 0; d < cfg.n_distractors; ++d) {
        const Token tok = zipf_filler(classes, rng);
        const auto slots =
            pick_positions(0, section_len, cfg.distractor_repeats, rng);
        for (const std::size_t p : slots) {
          if (body[p] < 0) body[p] = tok;
        }
      }
    }
    for (Token& t : body) {
      if (t < 0) t = zipf_filler(classes, rng);
    }
    doc.insert(doc.end(), body.begin(), body.end());
  }
  doc.push_back(kSep);

  Sample s;
  s.prompt = std::move(doc);
  s.reference = all_facts;
  s.fact_positions = positions_of(s.prompt, all_facts);
  return s;
}

std::vector<Sample> make_long_report_set(const LongReportConfig& cfg,
                                         std::size_t n_samples) {
  std::vector<Sample> out;
  out.reserve(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    out.push_back(make_long_report_sample(cfg, i));
  }
  return out;
}

std::vector<Token> make_padded_prompt(std::size_t len, std::size_t vocab_size,
                                      std::uint64_t seed) {
  const TokenClasses classes(vocab_size);
  Rng rng(hash_combine(seed, 0xBADD));
  std::vector<Token> out;
  out.reserve(len);
  out.push_back(kBos);
  while (out.size() < len) out.push_back(zipf_filler(classes, rng));
  return out;
}

}  // namespace kf::data
