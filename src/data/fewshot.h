// Synthetic few-shot multiple-choice tasks standing in for the paper's
// lm-eval-harness suite (COPA, PIQA, OpenBookQA, Winogrande — Table 2).
//
// Mechanism: a passage plants the correct option token several times while
// wrong options stay (almost) absent. A model that still *sees* the
// relevant passage tokens after cache eviction assigns the correct option
// a higher next-token log-probability at the answer cue. Shots are
// independent mini-examples whose answers are drawn from the same option
// inventory, so more shots add more supporting occurrences on average —
// the 0-shot -> 5-shot accuracy lift of Table 2.
//
// Scoring protocol (see eval/experiment.h): prefill the prompt under the
// eviction policy, then decode one step on the answer cue <sep> and
// compare the options' log-probabilities against the *reduced* cache.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/vocab.h"

namespace kf::data {

enum class McqTaskKind { kCopa, kPiqa, kOpenBookQa, kWinogrande };

std::string to_string(McqTaskKind kind);

/// Options per question (COPA/PIQA/Winogrande: 2; OpenBookQA: 4).
std::size_t n_options(McqTaskKind kind);

struct McqSample {
  std::vector<Token> prompt;   ///< shots + passage + answer cue
  std::vector<Token> options;  ///< candidate answer tokens
  std::size_t correct = 0;     ///< index into options
};

struct McqConfig {
  McqTaskKind kind = McqTaskKind::kCopa;
  std::size_t n_shots = 0;
  std::size_t passage_len = 160;
  std::size_t answer_repeats = 4;  ///< plants of the correct token
  std::size_t vocab_size = 512;
  std::uint64_t seed = 42;
};

McqSample make_mcq_sample(const McqConfig& cfg, std::size_t index);

std::vector<McqSample> make_mcq_set(const McqConfig& cfg,
                                    std::size_t n_samples);

}  // namespace kf::data
