// Token-space conventions for the synthetic corpora plus a small word-level
// tokenizer used by the runnable examples.
//
// The paper's datasets (CNN/DailyMail, GovReport, SODA) are external
// downloads; the reproduction generates synthetic stand-ins directly in
// token space (see synthetic.h for how they preserve the phenomena the
// eviction study depends on). Token ids are partitioned into classes so
// generators and metrics can reason about token roles.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace kf::data {

using Token = std::int32_t;

/// Reserved special tokens.
inline constexpr Token kBos = 0;
inline constexpr Token kEos = 1;
inline constexpr Token kSep = 2;
inline constexpr Token kPad = 3;
inline constexpr Token kFirstContentToken = 4;

/// Partition of the content-token range used by the generators.
struct TokenClasses {
  std::size_t vocab_size = 512;
  /// Fact tokens: the salient, information-carrying ids a reference
  /// summary is built from ([fact_begin, fact_end)).
  Token fact_begin = kFirstContentToken;
  Token fact_end = 132;
  /// Everything above fact_end is filler (Zipf-distributed background).
  Token filler_begin = 132;

  explicit TokenClasses(std::size_t vocab = 512);

  bool is_fact(Token t) const noexcept {
    return t >= fact_begin && t < fact_end;
  }
  bool is_filler(Token t) const noexcept {
    return t >= filler_begin &&
           t < static_cast<Token>(vocab_size);
  }
  std::size_t n_fact() const noexcept {
    return static_cast<std::size_t>(fact_end - fact_begin);
  }
  std::size_t n_filler() const noexcept {
    return vocab_size - static_cast<std::size_t>(filler_begin);
  }
};

/// Bidirectional word <-> id map built incrementally (examples only; the
/// benches work in token space).
class WordVocab {
 public:
  /// Reserves the special ids and their printable names.
  WordVocab();

  /// Id of `word`, inserting it if new.
  Token add(std::string_view word);

  /// Id of `word` or -1 when absent.
  Token lookup(std::string_view word) const;

  /// Word for an id ("<unk-N>" when out of range).
  std::string word(Token id) const;

  std::size_t size() const noexcept { return words_.size(); }

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, Token> ids_;
};

/// Splits on whitespace, lowercases, strips trailing punctuation, and maps
/// through `vocab` (inserting new words).
std::vector<Token> tokenize_words(WordVocab& vocab, std::string_view text);

/// Joins tokens back into a space-separated string.
std::string detokenize(const WordVocab& vocab, std::span<const Token> tokens);

}  // namespace kf::data
