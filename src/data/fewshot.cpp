#include "data/fewshot.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/rng.h"

namespace kf::data {

std::string to_string(McqTaskKind kind) {
  switch (kind) {
    case McqTaskKind::kCopa: return "copa";
    case McqTaskKind::kPiqa: return "piqa";
    case McqTaskKind::kOpenBookQa: return "openbookqa";
    case McqTaskKind::kWinogrande: return "winogrande";
  }
  return "unknown";
}

std::size_t n_options(McqTaskKind kind) {
  return kind == McqTaskKind::kOpenBookQa ? 4 : 2;
}

namespace {

Token zipf_filler(const TokenClasses& classes, Rng& rng) {
  const double u = rng.uniform();
  const std::size_t idx = static_cast<std::size_t>(
      std::pow(u, 1.2) * static_cast<double>(classes.n_filler()));
  return classes.filler_begin +
         static_cast<Token>(std::min(idx, classes.n_filler() - 1));
}

/// Emits a passage of `len` tokens that plants `answer` `repeats` times and
/// each wrong option at most once.
void emit_passage(std::vector<Token>& out, std::size_t len, Token answer,
                  std::size_t repeats, const std::vector<Token>& wrong,
                  const TokenClasses& classes, Rng& rng) {
  std::vector<Token> body(len, -1);
  const auto place = [&](Token tok, std::size_t count) {
    for (std::size_t c = 0; c < count; ++c) {
      for (int attempts = 0; attempts < 16; ++attempts) {
        const std::size_t p = rng.uniform_u64(len);
        if (body[p] < 0) {
          body[p] = tok;
          break;
        }
      }
    }
  };
  place(answer, repeats);
  for (const Token wtok : wrong) place(wtok, 1);
  for (Token& t : body) {
    if (t < 0) t = zipf_filler(classes, rng);
  }
  out.insert(out.end(), body.begin(), body.end());
}

/// Task flavor tweaks: passage size and how strongly the answer is planted.
void task_shape(McqTaskKind kind, std::size_t& passage_len,
                std::size_t& answer_repeats) {
  switch (kind) {
    case McqTaskKind::kCopa:
      break;  // defaults
    case McqTaskKind::kPiqa:
      passage_len = passage_len * 5 / 4;
      break;
    case McqTaskKind::kOpenBookQa:
      answer_repeats += 1;  // 4 options need a clearer signal
      break;
    case McqTaskKind::kWinogrande:
      passage_len = passage_len * 3 / 4;
      answer_repeats = std::max<std::size_t>(2, answer_repeats - 1);
      break;
  }
}

}  // namespace

McqSample make_mcq_sample(const McqConfig& cfg, std::size_t index) {
  const TokenClasses classes(cfg.vocab_size);
  Rng rng(hash_combine(cfg.seed,
                       hash_combine(0x3C9 + index,
                                    static_cast<std::uint64_t>(cfg.kind))));
  std::size_t passage_len = cfg.passage_len;
  std::size_t answer_repeats = cfg.answer_repeats;
  task_shape(cfg.kind, passage_len, answer_repeats);

  const std::size_t k = n_options(cfg.kind);
  // Draw k distinct option tokens from the fact pool.
  std::vector<Token> pool(classes.n_fact());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool[i] = classes.fact_begin + static_cast<Token>(i);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.uniform_u64(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  McqSample s;
  s.options.assign(pool.begin(), pool.begin() + static_cast<long>(k));
  s.correct = rng.uniform_u64(k);

  s.prompt.push_back(kBos);
  // Shots: independent mini passages with their own answers drawn from the
  // same option inventory; each ends with <sep> answer <sep>.
  for (std::size_t shot = 0; shot < cfg.n_shots; ++shot) {
    const Token shot_answer =
        s.options[rng.uniform_u64(s.options.size())];
    emit_passage(s.prompt, passage_len / 3, shot_answer,
                 std::max<std::size_t>(2, answer_repeats - 1), {}, classes,
                 rng);
    s.prompt.push_back(kSep);
    s.prompt.push_back(shot_answer);
    s.prompt.push_back(kSep);
  }

  std::vector<Token> wrong;
  for (std::size_t i = 0; i < k; ++i) {
    if (i != s.correct) wrong.push_back(s.options[i]);
  }
  emit_passage(s.prompt, passage_len, s.options[s.correct], answer_repeats,
               wrong, classes, rng);
  // Answer cue: the scorer decodes one step on a trailing <sep>.
  return s;
}

std::vector<McqSample> make_mcq_set(const McqConfig& cfg,
                                    std::size_t n_samples) {
  std::vector<McqSample> out;
  out.reserve(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    out.push_back(make_mcq_sample(cfg, i));
  }
  return out;
}

}  // namespace kf::data
