#include "data/vocab.h"

#include <cctype>
#include <stdexcept>

namespace kf::data {

TokenClasses::TokenClasses(std::size_t vocab) : vocab_size(vocab) {
  if (vocab < 64) {
    throw std::invalid_argument("TokenClasses requires vocab_size >= 64");
  }
  // Reserve a quarter of the vocabulary (capped) for fact tokens.
  const std::size_t facts = std::min<std::size_t>(vocab / 4, 128);
  fact_begin = kFirstContentToken;
  fact_end = static_cast<Token>(kFirstContentToken + facts);
  filler_begin = fact_end;
}

WordVocab::WordVocab() {
  words_ = {"<bos>", "<eos>", "<sep>", "<pad>"};
  for (std::size_t i = 0; i < words_.size(); ++i) {
    ids_.emplace(words_[i], static_cast<Token>(i));
  }
}

Token WordVocab::add(std::string_view word) {
  const std::string key(word);
  const auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  const Token id = static_cast<Token>(words_.size());
  words_.push_back(key);
  ids_.emplace(key, id);
  return id;
}

Token WordVocab::lookup(std::string_view word) const {
  const auto it = ids_.find(std::string(word));
  return it == ids_.end() ? -1 : it->second;
}

std::string WordVocab::word(Token id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= words_.size()) {
    return "<unk-" + std::to_string(id) + ">";
  }
  return words_[static_cast<std::size_t>(id)];
}

std::vector<Token> tokenize_words(WordVocab& vocab, std::string_view text) {
  std::vector<Token> out;
  std::string word;
  const auto flush = [&] {
    if (word.empty()) return;
    while (!word.empty() && std::ispunct(static_cast<unsigned char>(
                                word.back()))) {
      word.pop_back();
    }
    if (!word.empty()) out.push_back(vocab.add(word));
    word.clear();
  };
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else {
      word.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    }
  }
  flush();
  return out;
}

std::string detokenize(const WordVocab& vocab,
                       std::span<const Token> tokens) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += vocab.word(tokens[i]);
  }
  return out;
}

}  // namespace kf::data
