// Synthetic corpora standing in for the paper's datasets.
//
// The eviction study depends on three corpus phenomena, which the
// generators control explicitly:
//
//   1. A minority of tokens carry the information (the planted *facts*,
//      repeated a few times across the document) — the "key tokens" whose
//      attention mass Fig 3b measures. References are built from them.
//   2. Key facts sit *outside* any recent window (spread across the whole
//      document), which is why window attention collapses (Fig 3c).
//   3. Early *distractor* tokens repeat heavily near the start. They soak
//      up accumulated-attention mass during the long prompt phase — the
//      bias that misleads f_theta(acc attn)/H2O (Sections 2.3.2-2.3.3) and
//      that Keyformer's regularized score resists.
//
// Three generators mirror the paper's three task datasets:
//   - make_summarization_set : CNN/DailyMail-like documents
//   - make_dialogue_set      : SODA-like multi-turn conversations
//   - make_long_report_set   : GovReport-like long documents (Fig 8)
#pragma once

#include <cstdint>
#include <vector>

#include "data/vocab.h"

namespace kf::data {

/// One evaluation sample: a tokenized document/prompt and its reference.
struct Sample {
  std::vector<Token> prompt;
  std::vector<Token> reference;
  /// Prompt positions holding fact (reference) tokens — used by the
  /// diagnostics and property tests to measure fact retention in caches.
  std::vector<std::size_t> fact_positions;
};

struct SummarizationConfig {
  std::size_t doc_len = 320;
  std::size_t n_facts = 12;
  std::size_t fact_repeats = 3;   ///< occurrences of each fact token
  /// Salient-but-irrelevant tokens repeated heavily near the start: the
  /// accumulated-attention "heavy hitters" that are not key tokens.
  std::size_t n_distractors = 4;
  std::size_t distractor_repeats = 20;
  std::size_t vocab_size = 512;
  std::uint64_t seed = 42;
};

/// Deterministic CNN/DailyMail-like sample #index.
Sample make_summarization_sample(const SummarizationConfig& cfg,
                                 std::size_t index);

std::vector<Sample> make_summarization_set(const SummarizationConfig& cfg,
                                           std::size_t n_samples);

struct DialogueConfig {
  std::size_t n_turns = 8;
  std::size_t turn_len = 48;
  std::size_t topics_per_turn = 2;  ///< facts introduced per turn
  std::size_t vocab_size = 512;
  std::uint64_t seed = 42;
};

/// SODA-like conversation: turns separated by <sep>; the reference is the
/// set of topic tokens from the *early* turns (long-range recall).
Sample make_dialogue_sample(const DialogueConfig& cfg, std::size_t index);

std::vector<Sample> make_dialogue_set(const DialogueConfig& cfg,
                                      std::size_t n_samples);

struct LongReportConfig {
  std::size_t doc_len = 1536;
  std::size_t n_sections = 6;
  std::size_t facts_per_section = 3;
  std::size_t fact_repeats = 3;
  std::size_t n_distractors = 4;
  std::size_t distractor_repeats = 32;
  std::size_t vocab_size = 512;
  std::uint64_t seed = 42;
};

/// GovReport-like long document with per-section facts.
Sample make_long_report_sample(const LongReportConfig& cfg,
                               std::size_t index);

std::vector<Sample> make_long_report_set(const LongReportConfig& cfg,
                                         std::size_t n_samples);

/// Synthetic perf-eval prompt (Section 4.2: "all prompts were padded with
/// synthetic text"): `len` filler tokens after <bos>.
std::vector<Token> make_padded_prompt(std::size_t len, std::size_t vocab_size,
                                      std::uint64_t seed);

}  // namespace kf::data
