#include "eval/heatmap.h"

#include <algorithm>
#include <sstream>

namespace kf::eval {

HeatmapRecorder::HeatmapRecorder(std::size_t n_layers, std::size_t n_heads,
                                 std::size_t n_buckets)
    : n_layers_(n_layers),
      n_heads_(n_heads),
      n_buckets_(std::max<std::size_t>(1, n_buckets)),
      mass_(n_layers * n_heads, std::vector<double>(n_buckets_, 0.0)),
      rows_recorded_(n_layers * n_heads, 0) {}

void HeatmapRecorder::set_sequence_length(std::size_t len) {
  seq_len_ = std::max<std::size_t>(1, len);
}

void HeatmapRecorder::record(const model::AttentionObservation& obs) {
  if (obs.is_prompt || obs.layer >= n_layers_ || obs.attn == nullptr) return;
  const auto& attn = *obs.attn;
  const std::size_t key_len = attn.key_len;
  for (std::size_t h = 0; h < std::min(n_heads_, attn.probs.dim(0)); ++h) {
    auto& buckets = mass_[obs.layer * n_heads_ + h];
    const float* row =
        attn.probs.data() + (h * attn.n_q + (attn.n_q - 1)) * key_len;
    for (std::size_t i = 0; i < key_len; ++i) {
      const std::size_t pos = obs.key_positions[i];
      const std::size_t b =
          std::min(n_buckets_ - 1, pos * n_buckets_ / seq_len_);
      buckets[b] += static_cast<double>(row[i]);
    }
    ++rows_recorded_[obs.layer * n_heads_ + h];
  }
}

double HeatmapRecorder::bucket_mass(std::size_t layer, std::size_t head,
                                    std::size_t bucket) const {
  const auto& buckets = mass_.at(layer * n_heads_ + head);
  const std::size_t rows = rows_recorded_.at(layer * n_heads_ + head);
  if (rows == 0) return 0.0;
  return buckets.at(bucket) / static_cast<double>(rows);
}

std::string HeatmapRecorder::to_csv() const {
  std::ostringstream os;
  os << "layer,head";
  for (std::size_t b = 0; b < n_buckets_; ++b) os << ",b" << b;
  os << '\n';
  for (std::size_t l = 0; l < n_layers_; ++l) {
    for (std::size_t h = 0; h < n_heads_; ++h) {
      os << l << ',' << h;
      for (std::size_t b = 0; b < n_buckets_; ++b) {
        os << ',' << bucket_mass(l, h, b);
      }
      os << '\n';
    }
  }
  return os.str();
}

std::string HeatmapRecorder::ascii_art(std::size_t layer,
                                       std::size_t head) const {
  static constexpr char kRamp[] = " .:-=+*#%@";
  double max_mass = 0.0;
  for (std::size_t b = 0; b < n_buckets_; ++b) {
    max_mass = std::max(max_mass, bucket_mass(layer, head, b));
  }
  std::string out;
  out.reserve(n_buckets_);
  for (std::size_t b = 0; b < n_buckets_; ++b) {
    if (max_mass <= 0.0) {
      out += ' ';
      continue;
    }
    const double frac = bucket_mass(layer, head, b) / max_mass;
    const std::size_t idx = std::min<std::size_t>(
        9, static_cast<std::size_t>(frac * 9.999));
    out += kRamp[idx];
  }
  return out;
}

void HeatmapRecorder::reset() {
  for (auto& buckets : mass_) {
    std::fill(buckets.begin(), buckets.end(), 0.0);
  }
  std::fill(rows_recorded_.begin(), rows_recorded_.end(), 0);
}

}  // namespace kf::eval
