// Attention heat-map recording (Figs 14 and 15): per (layer, head),
// accumulate the decode-phase attention each original key position
// receives, bucketed so long sequences stay compact, and render as CSV or
// coarse ASCII art.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/transformer.h"

namespace kf::eval {

/// Collects attention rows during generation via Transformer's observer.
class HeatmapRecorder {
 public:
  HeatmapRecorder(std::size_t n_layers, std::size_t n_heads,
                  std::size_t n_buckets = 32);

  /// Observer entry point; install with
  ///   model.set_observer([&](const auto& obs) { rec.record(obs); });
  void record(const model::AttentionObservation& obs);

  /// Sets the sequence length used to map positions to buckets. Must be
  /// called before record().
  void set_sequence_length(std::size_t len);

  /// Mean attention received by bucket b at (layer, head), averaged over
  /// recorded decode rows.
  double bucket_mass(std::size_t layer, std::size_t head,
                     std::size_t bucket) const;

  std::size_t n_layers() const noexcept { return n_layers_; }
  std::size_t n_heads() const noexcept { return n_heads_; }
  std::size_t n_buckets() const noexcept { return n_buckets_; }

  /// One CSV row per (layer, head): layer,head,b0,...,b{n-1}.
  std::string to_csv() const;

  /// Coarse ASCII rendering (" .:-=+*#%@" ramp) of one (layer, head).
  std::string ascii_art(std::size_t layer, std::size_t head) const;

  void reset();

 private:
  std::size_t n_layers_;
  std::size_t n_heads_;
  std::size_t n_buckets_;
  std::size_t seq_len_ = 1;
  std::vector<std::vector<double>> mass_;   // [layer*heads][buckets]
  std::vector<std::size_t> rows_recorded_;  // [layer*heads]
};

}  // namespace kf::eval
