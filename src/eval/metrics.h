// Attention-distribution metrics backing Figs 3a/3b/4/11 and the entropy
// argument of Section 3.2 (Eq. 8).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace kf::eval {

/// Fraction of the first `valid_len` entries of an attention row whose
/// probability is at most `threshold_frac * row_max` (Fig 11's threshold
/// sweep; threshold 0 counts effectively-zero entries).
double attention_sparsity(std::span<const float> row, double threshold_frac,
                          std::size_t valid_len);

/// Mean sparsity across all causal rows of one [n_q, key_len] probability
/// block where query q may attend keys [0, q_offset + q].
double mean_causal_sparsity(std::span<const float> probs, std::size_t n_q,
                            std::size_t key_len, std::size_t q_offset,
                            double threshold_frac);

/// Fig 3b: sorts per-token attention mass descending and returns the
/// cumulative fraction of total mass captured by the top x% of tokens for
/// x = 10, 20, ..., 90 (vector of 9 values in [0, 1]).
std::vector<double> attention_mass_cdf(std::span<const double> per_token_mass);

/// Fig 4: given a full-attention probability row and the keep-indices of a
/// reduced cache, returns the renormalized distribution over the kept
/// entries (what softmax produces once the discarded logits are gone).
std::vector<float> renormalized_subset(std::span<const float> full_probs,
                                       std::span<const std::size_t> keep);

}  // namespace kf::eval
