// ROUGE-1 / ROUGE-2 / ROUGE-L (Lin, 2004) over token-id sequences — the
// paper's text-quality metric (MLPerf requires 99-99.9% of the full-
// attention ROUGE scores for summarization).
#pragma once

#include <cstdint>
#include <span>

namespace kf::eval {

using Token = std::int32_t;

struct RougeScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// ROUGE-N with clipped n-gram counts. Empty candidate or reference (or a
/// reference shorter than n) yields all-zero scores.
RougeScore rouge_n(std::span<const Token> candidate,
                   std::span<const Token> reference, std::size_t n);

/// ROUGE-L via longest common subsequence (F-measure with beta = 1).
RougeScore rouge_l(std::span<const Token> candidate,
                   std::span<const Token> reference);

struct RougeSuite {
  RougeScore r1, r2, rl;
};

/// Computes ROUGE-1, ROUGE-2 and ROUGE-L at once.
RougeSuite rouge_all(std::span<const Token> candidate,
                     std::span<const Token> reference);

}  // namespace kf::eval
