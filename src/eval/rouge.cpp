#include "eval/rouge.h"

#include <algorithm>
#include <map>
#include <vector>

namespace kf::eval {

namespace {

RougeScore from_counts(double matches, double cand_total, double ref_total) {
  RougeScore s;
  if (cand_total > 0.0) s.precision = matches / cand_total;
  if (ref_total > 0.0) s.recall = matches / ref_total;
  if (s.precision + s.recall > 0.0) {
    s.f1 = 2.0 * s.precision * s.recall / (s.precision + s.recall);
  }
  return s;
}

}  // namespace

RougeScore rouge_n(std::span<const Token> candidate,
                   std::span<const Token> reference, std::size_t n) {
  if (n == 0 || candidate.size() < n || reference.size() < n) {
    return {};
  }
  using Ngram = std::vector<Token>;
  std::map<Ngram, std::size_t> ref_counts;
  for (std::size_t i = 0; i + n <= reference.size(); ++i) {
    Ngram g(reference.begin() + static_cast<long>(i),
            reference.begin() + static_cast<long>(i + n));
    ++ref_counts[g];
  }
  std::map<Ngram, std::size_t> cand_counts;
  for (std::size_t i = 0; i + n <= candidate.size(); ++i) {
    Ngram g(candidate.begin() + static_cast<long>(i),
            candidate.begin() + static_cast<long>(i + n));
    ++cand_counts[g];
  }
  double matches = 0.0;
  for (const auto& [gram, count] : cand_counts) {
    const auto it = ref_counts.find(gram);
    if (it != ref_counts.end()) {
      matches += static_cast<double>(std::min(count, it->second));
    }
  }
  const double cand_total =
      static_cast<double>(candidate.size() - n + 1);
  const double ref_total = static_cast<double>(reference.size() - n + 1);
  return from_counts(matches, cand_total, ref_total);
}

RougeScore rouge_l(std::span<const Token> candidate,
                   std::span<const Token> reference) {
  if (candidate.empty() || reference.empty()) return {};
  const std::size_t m = candidate.size();
  const std::size_t n = reference.size();
  // Rolling-row LCS.
  std::vector<std::size_t> prev(n + 1, 0);
  std::vector<std::size_t> curr(n + 1, 0);
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      if (candidate[i - 1] == reference[j - 1]) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  const double lcs = static_cast<double>(prev[n]);
  return from_counts(lcs, static_cast<double>(m), static_cast<double>(n));
}

RougeSuite rouge_all(std::span<const Token> candidate,
                     std::span<const Token> reference) {
  RougeSuite s;
  s.r1 = rouge_n(candidate, reference, 1);
  s.r2 = rouge_n(candidate, reference, 2);
  s.rl = rouge_l(candidate, reference);
  return s;
}

}  // namespace kf::eval
