// Experiment harness: runs (model x task x policy x budget) cells and
// aggregates the metrics every bench reports.
//
// Two ROUGE views are produced for generation tasks:
//   - reference ROUGE: against the sample's planted reference (the
//     synthetic analogue of the dataset gold summary);
//   - fidelity ROUGE: against the full-attention generation of the same
//     model (the iso-accuracy notion of Fig 9 — full attention scores 1.0
//     by construction, and the MLPerf-style 99%-of-baseline line is drawn
//     against it).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "data/fewshot.h"
#include "data/synthetic.h"
#include "eval/rouge.h"
#include "kvcache/policy.h"
#include "model/generator.h"
#include "model/transformer.h"

namespace kf::eval {

struct EvalConfig {
  std::size_t max_new_tokens = 48;
  /// KV budget as a fraction of prompt length; >= 1.0 disables eviction.
  double cache_ratio = 1.0;
  double recent_ratio = 0.3;
  float repetition_penalty = 2.0F;
  std::size_t repetition_window = 0;  ///< 0 = penalize all generated tokens
  /// Never emit the special tokens (<bos>/<eos>/<sep>/<pad>).
  bool ban_special_tokens = true;
};

/// Aggregated result of one (policy, task, budget) cell.
struct PolicyTaskResult {
  std::string policy;
  double cache_ratio = 1.0;
  std::size_t n_samples = 0;
  /// Mean F1 against planted references.
  double ref_rouge1 = 0.0, ref_rouge2 = 0.0, ref_rougeL = 0.0;
  /// Mean F1 against the full-attention outputs (1.0 for full attention).
  double fid_rouge1 = 0.0, fid_rouge2 = 0.0, fid_rougeL = 0.0;
  double mean_wall_seconds = 0.0;
  /// Per-phase means (wall == prefill + decode); decode throughput is the
  /// serving-relevant number, unskewed by prompt length.
  double mean_prefill_seconds = 0.0;
  double mean_decode_seconds = 0.0;
  /// Aggregate decode tokens/s across the cell (total decode-produced
  /// tokens / total decode seconds).
  double decode_tokens_per_s = 0.0;
};

/// Generates outputs for every sample under `policy`.
std::vector<std::vector<Token>> generate_outputs(
    model::Transformer& model, std::span<const data::Sample> samples,
    kv::EvictionPolicy& policy, const EvalConfig& cfg);

/// Full pipeline for one cell. `full_outputs` (optional) supplies the
/// fidelity references; pass the result of generate_outputs with a
/// FullAttentionPolicy and cache_ratio 1.0.
PolicyTaskResult evaluate_policy_on_task(
    model::Transformer& model, std::span<const data::Sample> samples,
    kv::EvictionPolicy& policy, const EvalConfig& cfg,
    const std::vector<std::vector<Token>>* full_outputs = nullptr);

/// Multiple-choice accuracy (Table 2 protocol): prefill the prompt under
/// the policy (cache reduced to budget), then decode one step on the <sep>
/// answer cue and compare option log-probabilities. Returns accuracy in
/// [0, 1].
double mcq_accuracy(model::Transformer& model,
                    std::span<const data::McqSample> samples,
                    kv::EvictionPolicy& policy, const EvalConfig& cfg);

}  // namespace kf::eval
