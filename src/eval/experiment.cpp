#include "eval/experiment.h"

#include <cassert>

namespace kf::eval {

namespace {

model::GenerationConfig to_generation_config(const EvalConfig& cfg) {
  model::GenerationConfig g;
  g.max_new_tokens = cfg.max_new_tokens;
  g.cache_ratio = cfg.cache_ratio;
  g.recent_ratio = cfg.recent_ratio;
  g.repetition_penalty = cfg.repetition_penalty;
  g.repetition_window = cfg.repetition_window;
  if (cfg.ban_special_tokens) {
    g.banned_tokens = {data::kBos, data::kEos, data::kSep, data::kPad};
  }
  return g;
}

}  // namespace

std::vector<std::vector<Token>> generate_outputs(
    model::Transformer& model, std::span<const data::Sample> samples,
    kv::EvictionPolicy& policy, const EvalConfig& cfg) {
  const model::GenerationConfig g = to_generation_config(cfg);
  std::vector<std::vector<Token>> outputs;
  outputs.reserve(samples.size());
  for (const data::Sample& s : samples) {
    model::GenerationResult r = model::generate(model, s.prompt, policy, g);
    outputs.push_back(std::move(r.tokens));
  }
  return outputs;
}

PolicyTaskResult evaluate_policy_on_task(
    model::Transformer& model, std::span<const data::Sample> samples,
    kv::EvictionPolicy& policy, const EvalConfig& cfg,
    const std::vector<std::vector<Token>>* full_outputs) {
  assert(full_outputs == nullptr || full_outputs->size() == samples.size());
  const model::GenerationConfig g = to_generation_config(cfg);

  PolicyTaskResult out;
  out.policy = policy.name();
  out.cache_ratio = cfg.cache_ratio;
  out.n_samples = samples.size();

  std::size_t decode_tokens = 0;
  double decode_seconds = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const data::Sample& s = samples[i];
    model::GenerationResult r = model::generate(model, s.prompt, policy, g);
    out.mean_wall_seconds += r.wall_seconds();
    out.mean_prefill_seconds += r.prefill_seconds;
    out.mean_decode_seconds += r.decode_seconds;
    if (r.tokens.size() > 1) decode_tokens += r.tokens.size() - 1;
    decode_seconds += r.decode_seconds;

    const RougeSuite ref = rouge_all(r.tokens, s.reference);
    out.ref_rouge1 += ref.r1.f1;
    out.ref_rouge2 += ref.r2.f1;
    out.ref_rougeL += ref.rl.f1;

    if (full_outputs != nullptr) {
      const RougeSuite fid = rouge_all(r.tokens, (*full_outputs)[i]);
      out.fid_rouge1 += fid.r1.f1;
      out.fid_rouge2 += fid.r2.f1;
      out.fid_rougeL += fid.rl.f1;
    }
  }
  if (!samples.empty()) {
    const double inv = 1.0 / static_cast<double>(samples.size());
    out.ref_rouge1 *= inv;
    out.ref_rouge2 *= inv;
    out.ref_rougeL *= inv;
    out.fid_rouge1 *= inv;
    out.fid_rouge2 *= inv;
    out.fid_rougeL *= inv;
    out.mean_wall_seconds *= inv;
    out.mean_prefill_seconds *= inv;
    out.mean_decode_seconds *= inv;
  }
  if (decode_seconds > 0.0) {
    out.decode_tokens_per_s =
        static_cast<double>(decode_tokens) / decode_seconds;
  }
  return out;
}

double mcq_accuracy(model::Transformer& model,
                    std::span<const data::McqSample> samples,
                    kv::EvictionPolicy& policy, const EvalConfig& cfg) {
  std::size_t correct = 0;
  for (const data::McqSample& s : samples) {
    policy.set_budget(
        kv::make_budget(s.prompt.size(), cfg.cache_ratio, cfg.recent_ratio));
    kv::SequenceInfo info;
    info.prompt_len = s.prompt.size();
    info.total_steps = 1;
    info.n_layers = model.config().n_layers;
    info.n_heads = model.config().n_heads;
    policy.begin_sequence(info);

    model.reset();
    (void)model.prefill(s.prompt, policy, /*total_steps=*/1);
    // Score the options at the answer cue against the *reduced* cache.
    const std::vector<float> logits = model.decode(
        data::kSep, s.prompt.size(), /*t=*/1, /*total_steps=*/1, policy);

    std::size_t best = 0;
    for (std::size_t o = 1; o < s.options.size(); ++o) {
      if (logits[static_cast<std::size_t>(s.options[o])] >
          logits[static_cast<std::size_t>(s.options[best])]) {
        best = o;
      }
    }
    if (best == s.correct) ++correct;
  }
  return samples.empty()
             ? 0.0
             : static_cast<double>(correct) /
                   static_cast<double>(samples.size());
}

}  // namespace kf::eval
