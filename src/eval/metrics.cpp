#include "eval/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace kf::eval {

double attention_sparsity(std::span<const float> row, double threshold_frac,
                          std::size_t valid_len) {
  valid_len = std::min(valid_len, row.size());
  if (valid_len == 0) return 0.0;
  float row_max = 0.0F;
  for (std::size_t i = 0; i < valid_len; ++i) {
    row_max = std::max(row_max, row[i]);
  }
  // At threshold 0 count effectively-zero entries (fp32 underflow scale).
  const double cut = threshold_frac > 0.0
                         ? threshold_frac * static_cast<double>(row_max)
                         : 1e-7;
  std::size_t sparse = 0;
  for (std::size_t i = 0; i < valid_len; ++i) {
    if (static_cast<double>(row[i]) <= cut) ++sparse;
  }
  return static_cast<double>(sparse) / static_cast<double>(valid_len);
}

double mean_causal_sparsity(std::span<const float> probs, std::size_t n_q,
                            std::size_t key_len, std::size_t q_offset,
                            double threshold_frac) {
  if (n_q == 0) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t q = 0; q < n_q; ++q) {
    const std::size_t valid = std::min(key_len, q_offset + q + 1);
    if (valid < 2) continue;  // single-entry rows are trivially dense
    total += attention_sparsity(probs.subspan(q * key_len, key_len),
                                threshold_frac, valid);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

std::vector<double> attention_mass_cdf(
    std::span<const double> per_token_mass) {
  std::vector<double> sorted(per_token_mass.begin(), per_token_mass.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double total = 0.0;
  for (const double v : sorted) total += v;
  std::vector<double> out;
  out.reserve(9);
  if (sorted.empty() || total <= 0.0) {
    out.assign(9, 0.0);
    return out;
  }
  std::vector<double> prefix(sorted.size() + 1, 0.0);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    prefix[i + 1] = prefix[i] + sorted[i];
  }
  for (int pct = 10; pct <= 90; pct += 10) {
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               static_cast<double>(sorted.size()) * pct / 100.0)));
    out.push_back(prefix[std::min(k, sorted.size())] / total);
  }
  return out;
}

std::vector<float> renormalized_subset(std::span<const float> full_probs,
                                       std::span<const std::size_t> keep) {
  double sum = 0.0;
  for (const std::size_t i : keep) {
    assert(i < full_probs.size());
    sum += static_cast<double>(full_probs[i]);
  }
  std::vector<float> out;
  out.reserve(keep.size());
  if (sum <= 0.0) {
    out.assign(keep.size(), 0.0F);
    return out;
  }
  for (const std::size_t i : keep) {
    out.push_back(static_cast<float>(full_probs[i] / sum));
  }
  return out;
}

}  // namespace kf::eval
