#include "model/transformer.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

#include "core/threadpool.h"
#include "model/layer.h"
#include "obs/trace.h"

namespace kf::model {

Transformer::Transformer(ModelConfig cfg)
    : cfg_(std::move(cfg)),
      weights_(build_weights(cfg_)),
      state_(cfg_.n_layers, cfg_.n_heads, cfg_.d_head(),
             /*capacity_hint=*/256) {}

kv::SequenceKvState Transformer::make_kv_state(
    std::size_t capacity_hint) const {
  return kv::SequenceKvState(cfg_.n_layers, cfg_.n_heads, cfg_.d_head(),
                             capacity_hint);
}

std::size_t Transformer::cache_size(std::size_t layer) const {
  return state_.layer(layer).size();
}

std::size_t Transformer::total_cache_tokens() const {
  return state_.total_tokens();
}

kv::KvCache& Transformer::cache(std::size_t layer) {
  return state_.layer(layer);
}

const kv::KvCache& Transformer::cache(std::size_t layer) const {
  return state_.layer(layer);
}

void Transformer::reset() { state_.clear(); }

void Transformer::set_observer(AttentionObserver observer) {
  observer_ = std::move(observer);
}

Tensor Transformer::embed(std::span<const Token> tokens,
                          std::size_t first_pos) const {
  Tensor x({tokens.size(), cfg_.d_model});
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    embed_row(tokens[i], first_pos + i, x.row(i));
  }
  return x;
}

void Transformer::embed_row(Token token, std::size_t position,
                            std::span<float> dst) const {
  if (token < 0 || static_cast<std::size_t>(token) >= cfg_.vocab_size) {
    throw std::out_of_range("token id outside vocabulary");
  }
  const auto src = weights_.embedding.row(static_cast<std::size_t>(token));
  std::copy(src.begin(), src.end(), dst.begin());
  if (cfg_.positional == PositionalKind::kLearned &&
      position < weights_.pos_embedding.dim(0)) {
    add_inplace(dst, weights_.pos_embedding.row(position));
  }
}

Tensor Transformer::lm_logits(const Tensor& x) const {
  const std::size_t n_q = x.dim(0);
  Tensor logits({n_q, cfg_.vocab_size});
  Tensor normed({n_q, cfg_.d_model});
  // Rows are independent; at decode batch sizes the per-row matvec is
  // below the kernel-internal parallel threshold, so parallelize across
  // rows here (identical per-row numerics either way).
  ThreadPool::global().parallel_for(
      n_q,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          layer_norm(x.row(i), weights_.final_gamma.span(),
                     weights_.final_beta.span(), normed.row(i));
          matvec(weights_.lm_head.span(), normed.row(i), logits.row(i),
                 cfg_.vocab_size, cfg_.d_model);
        }
      },
      /*grain=*/1);
  return logits;
}

Tensor Transformer::forward(kv::SequenceKvState& state, Tensor x,
                            std::span<const std::size_t> positions,
                            bool is_prompt, std::size_t t,
                            std::size_t total_steps,
                            kv::EvictionPolicy& policy, bool force_general) {
  const std::size_t n_q = x.dim(0);
  for (std::size_t layer = 0; layer < cfg_.n_layers; ++layer) {
    kv::KvCache& cache = state.layer(layer);
    AttentionResult attn =
        decoder_attention(cfg_, weights_.layers[layer], x, positions, cache,
                          attn_timings_, force_general);

    if (observer_) {
      AttentionObservation obs;
      obs.layer = layer;
      obs.attn = &attn;
      obs.key_positions = cache.original_positions();
      obs.is_prompt = is_prompt;
      obs.decode_step = t;
      observer_(obs);
    }

    kv::PolicyContext ctx;
    ctx.layer = layer;
    ctx.n_heads = cfg_.n_heads;
    ctx.n_queries = n_q;
    ctx.key_len = attn.key_len;
    ctx.logits = attn.logits.span();
    ctx.probs = attn.probs.span();
    ctx.is_prompt = is_prompt;
    ctx.decode_step = t;
    ctx.total_steps = total_steps;
    ctx.cache = &cache;
    policy.observe(ctx);

    decoder_mlp(cfg_, weights_.layers[layer], x);
  }
  return lm_logits(x);
}

Tensor Transformer::prefill(std::span<const Token> prompt,
                            kv::EvictionPolicy& policy,
                            std::size_t total_steps) {
  return prefill(state_, prompt, policy, total_steps);
}

Tensor Transformer::prefill(kv::SequenceKvState& state,
                            std::span<const Token> prompt,
                            kv::EvictionPolicy& policy,
                            std::size_t total_steps) {
  if (prompt.empty()) {
    throw std::invalid_argument("prefill requires a non-empty prompt");
  }
  if (!state.matches(cfg_.n_layers, cfg_.n_heads, cfg_.d_head())) {
    throw std::invalid_argument(
        "sequence state geometry does not match the model");
  }
  if (!state.empty()) {
    throw std::logic_error("prefill called on a non-empty cache; reset()");
  }
  std::vector<std::size_t> positions(prompt.size());
  for (std::size_t i = 0; i < prompt.size(); ++i) positions[i] = i;
  Tensor x = embed(prompt, /*first_pos=*/0);
  return forward(state, std::move(x), positions, /*is_prompt=*/true, /*t=*/0,
                 total_steps, policy);
}

Tensor Transformer::prefill_continue(kv::SequenceKvState& state,
                                     std::span<const Token> tokens,
                                     std::size_t first_pos,
                                     kv::EvictionPolicy& policy,
                                     std::size_t total_steps) {
  if (tokens.empty()) {
    throw std::invalid_argument("prefill_continue requires tokens");
  }
  KF_TRACE_SCOPE("prefill_chunk", "model");
  if (!state.matches(cfg_.n_layers, cfg_.n_heads, cfg_.d_head())) {
    throw std::invalid_argument(
        "sequence state geometry does not match the model");
  }
  for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
    if (state.layer(l).size() != first_pos) {
      throw std::logic_error(
          "prefill_continue: every layer cache must hold exactly first_pos "
          "rows");
    }
  }
  std::vector<std::size_t> positions(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    positions[i] = first_pos + i;
  }
  Tensor x = embed(tokens, first_pos);
  return forward(state, std::move(x), positions, /*is_prompt=*/true, /*t=*/0,
                 total_steps, policy, /*force_general=*/true);
}

std::vector<float> Transformer::decode(Token token, std::size_t position,
                                       std::size_t t,
                                       std::size_t total_steps,
                                       kv::EvictionPolicy& policy) {
  return decode(state_, token, position, t, total_steps, policy);
}

std::vector<float> Transformer::decode(kv::SequenceKvState& state,
                                       Token token, std::size_t position,
                                       std::size_t t,
                                       std::size_t total_steps,
                                       kv::EvictionPolicy& policy) {
  const Token toks[1] = {token};
  const std::size_t positions[1] = {position};
  Tensor x = embed({toks, 1}, position);
  Tensor logits = forward(state, std::move(x), {positions, 1},
                          /*is_prompt=*/false, t, total_steps, policy);
  const auto row = logits.row(0);
  return std::vector<float>(row.begin(), row.end());
}

Tensor Transformer::step_batch(std::span<const DecodeSlot> slots) {
  const std::size_t b_count = slots.size();
  if (b_count == 0) return Tensor({0, cfg_.vocab_size});
  for (const auto& s : slots) {
    if (s.state == nullptr || s.policy == nullptr) {
      throw std::invalid_argument("step_batch slot missing state or policy");
    }
    if (!s.state->matches(cfg_.n_layers, cfg_.n_heads, cfg_.d_head())) {
      throw std::invalid_argument(
          "sequence state geometry does not match the model");
    }
  }
#ifndef NDEBUG
  // Distinctness is the Engine's contract (enforced once per run there);
  // re-checking every decode step costs two hash sets per step, so the
  // hot path only pays for it in debug/sanitizer builds.
  {
    std::unordered_set<const void*> states, policies;
    for (const auto& s : slots) {
      if (!states.insert(s.state).second || !policies.insert(s.policy).second) {
        throw std::invalid_argument(
            "step_batch slots must use distinct states and policies");
      }
    }
  }
#endif

  // Embed each sequence's token at its own position, straight into its row.
  Tensor x({b_count, cfg_.d_model});
  for (std::size_t b = 0; b < b_count; ++b) {
    embed_row(slots[b].token, slots[b].position, x.row(b));
  }

  std::vector<DecodeBatchSlot> aslots(b_count);
  for (std::size_t layer = 0; layer < cfg_.n_layers; ++layer) {
    for (std::size_t b = 0; b < b_count; ++b) {
      aslots[b] = {slots[b].position, &slots[b].state->layer(layer)};
    }
    const std::vector<AttentionResult> results = decoder_attention_batch(
        cfg_, weights_.layers[layer], x, aslots, attn_timings_);

    // Observer fires before policies may compact (key_positions must match
    // the cache the attention actually ran against).
    if (observer_) {
      for (std::size_t b = 0; b < b_count; ++b) {
        AttentionObservation obs;
        obs.layer = layer;
        obs.attn = &results[b];
        obs.key_positions = aslots[b].cache->original_positions();
        obs.is_prompt = false;
        obs.decode_step = slots[b].t;
        obs.batch_slot = b;
        observer_(obs);
      }
    }

    // Per-sequence policy observation (score accumulation + eviction),
    // parallel across sequences: each slot's policy touches only its own
    // cache and its own score state.
    ThreadPool::global().parallel_for(
        b_count,
        [&](std::size_t b0, std::size_t b1) {
          for (std::size_t b = b0; b < b1; ++b) {
            kv::PolicyContext ctx;
            ctx.layer = layer;
            ctx.n_heads = cfg_.n_heads;
            ctx.n_queries = 1;
            ctx.key_len = results[b].key_len;
            ctx.logits = results[b].logits.span();
            ctx.probs = results[b].probs.span();
            ctx.is_prompt = false;
            ctx.decode_step = slots[b].t;
            ctx.total_steps = slots[b].total_steps;
            ctx.cache = aslots[b].cache;
            slots[b].policy->observe(ctx);
          }
        },
        /*grain=*/1);

    if (b_count > 1) {
      decoder_mlp_rows(cfg_, weights_.layers[layer], x);
    } else {
      decoder_mlp(cfg_, weights_.layers[layer], x);
    }
  }
  return lm_logits(x);
}

}  // namespace kf::model
