#include "model/transformer.h"

#include <cassert>
#include <stdexcept>

#include "model/layer.h"

namespace kf::model {

Transformer::Transformer(ModelConfig cfg)
    : cfg_(std::move(cfg)), weights_(build_weights(cfg_)) {
  caches_.reserve(cfg_.n_layers);
  for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
    caches_.emplace_back(cfg_.n_heads, cfg_.d_head(), /*capacity_hint=*/256);
  }
}

std::size_t Transformer::cache_size(std::size_t layer) const {
  return caches_.at(layer).size();
}

std::size_t Transformer::total_cache_tokens() const {
  std::size_t total = 0;
  for (const auto& c : caches_) total += c.size();
  return total;
}

kv::KvCache& Transformer::cache(std::size_t layer) {
  return caches_.at(layer);
}

const kv::KvCache& Transformer::cache(std::size_t layer) const {
  return caches_.at(layer);
}

void Transformer::reset() {
  for (auto& c : caches_) c.clear();
}

void Transformer::set_observer(AttentionObserver observer) {
  observer_ = std::move(observer);
}

Tensor Transformer::embed(std::span<const Token> tokens,
                          std::size_t first_pos) const {
  Tensor x({tokens.size(), cfg_.d_model});
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token t = tokens[i];
    if (t < 0 || static_cast<std::size_t>(t) >= cfg_.vocab_size) {
      throw std::out_of_range("token id outside vocabulary");
    }
    const auto src = weights_.embedding.row(static_cast<std::size_t>(t));
    auto dst = x.row(i);
    for (std::size_t j = 0; j < cfg_.d_model; ++j) dst[j] = src[j];
    if (cfg_.positional == PositionalKind::kLearned) {
      const std::size_t pos = first_pos + i;
      if (pos < weights_.pos_embedding.dim(0)) {
        add_inplace(dst, weights_.pos_embedding.row(pos));
      }
    }
  }
  return x;
}

Tensor Transformer::forward(Tensor x,
                            std::span<const std::size_t> positions,
                            bool is_prompt, std::size_t t,
                            std::size_t total_steps,
                            kv::EvictionPolicy& policy) {
  const std::size_t n_q = x.dim(0);
  for (std::size_t layer = 0; layer < cfg_.n_layers; ++layer) {
    kv::KvCache& cache = caches_[layer];
    AttentionResult attn = decoder_attention(cfg_, weights_.layers[layer], x,
                                             positions, cache, attn_timings_);

    if (observer_) {
      AttentionObservation obs;
      obs.layer = layer;
      obs.attn = &attn;
      obs.key_positions = cache.original_positions();
      obs.is_prompt = is_prompt;
      obs.decode_step = t;
      observer_(obs);
    }

    kv::PolicyContext ctx;
    ctx.layer = layer;
    ctx.n_heads = cfg_.n_heads;
    ctx.n_queries = n_q;
    ctx.key_len = attn.key_len;
    ctx.logits = attn.logits.span();
    ctx.probs = attn.probs.span();
    ctx.is_prompt = is_prompt;
    ctx.decode_step = t;
    ctx.total_steps = total_steps;
    ctx.cache = &cache;
    policy.observe(ctx);

    decoder_mlp(cfg_, weights_.layers[layer], x);
  }

  // Final LayerNorm + tied LM head.
  Tensor logits({n_q, cfg_.vocab_size});
  Tensor normed({cfg_.d_model});
  for (std::size_t i = 0; i < n_q; ++i) {
    layer_norm(x.row(i), weights_.final_gamma.span(),
               weights_.final_beta.span(), normed.span());
    matvec(weights_.lm_head.span(), normed.span(), logits.row(i),
           cfg_.vocab_size, cfg_.d_model);
  }
  return logits;
}

Tensor Transformer::prefill(std::span<const Token> prompt,
                            kv::EvictionPolicy& policy,
                            std::size_t total_steps) {
  if (prompt.empty()) {
    throw std::invalid_argument("prefill requires a non-empty prompt");
  }
  if (!caches_.front().empty()) {
    throw std::logic_error("prefill called on a non-empty cache; reset()");
  }
  std::vector<std::size_t> positions(prompt.size());
  for (std::size_t i = 0; i < prompt.size(); ++i) positions[i] = i;
  Tensor x = embed(prompt, /*first_pos=*/0);
  return forward(std::move(x), positions, /*is_prompt=*/true, /*t=*/0,
                 total_steps, policy);
}

std::vector<float> Transformer::decode(Token token, std::size_t position,
                                       std::size_t t,
                                       std::size_t total_steps,
                                       kv::EvictionPolicy& policy) {
  const Token toks[1] = {token};
  const std::size_t positions[1] = {position};
  Tensor x = embed({toks, 1}, position);
  Tensor logits = forward(std::move(x), {positions, 1}, /*is_prompt=*/false,
                          t, total_steps, policy);
  const auto row = logits.row(0);
  return std::vector<float>(row.begin(), row.end());
}

}  // namespace kf::model
