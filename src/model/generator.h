// Autoregressive generation loop wiring the transformer, a KV-cache
// eviction policy, and the paper's budget semantics together — the main
// user-facing entry point for text generation experiments.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kvcache/policy.h"
#include "model/transformer.h"

namespace kf::model {

struct GenerationConfig {
  std::size_t max_new_tokens = 64;
  /// KV-cache budget as a fraction of prompt length; >= 1.0 disables
  /// eviction (full attention). The paper sweeps 0.1 .. 0.9.
  double cache_ratio = 1.0;
  /// Recent-window fraction of the budget (paper's best range: 0.2-0.3).
  double recent_ratio = 0.3;
  /// Penalty subtracted from the logits of recently generated tokens;
  /// 0 disables. Keeps the synthetic models from degenerate single-token
  /// loops, applied identically across policies.
  float repetition_penalty = 2.0F;
  /// How many trailing generated tokens the penalty covers; 0 = all.
  std::size_t repetition_window = 0;
  /// Token ids never emitted (e.g. specials such as <bos>/<sep>).
  std::vector<Token> banned_tokens;
  /// Stop token; -1 disables early stopping.
  Token eos_token = -1;
};

struct GenerationResult {
  std::vector<Token> tokens;  ///< generated tokens (prompt excluded)
  std::size_t prompt_len = 0;
  kv::CacheBudget budget;
  /// Cache length per layer after generation (budget invariant checks).
  std::vector<std::size_t> final_cache_sizes;
  /// Peak cache length observed across layers (== prompt during prefill
  /// attention, then budget k + 1 transiently at each decode step).
  std::size_t peak_cache_tokens = 0;
  double wall_seconds = 0.0;
};

/// Greedy generation under `policy`. Resets the model's caches, derives the
/// budget from `cfg.cache_ratio`, runs prefill + max_new_tokens decode
/// steps (or until eos). Deterministic.
GenerationResult generate(Transformer& model, std::span<const Token> prompt,
                          kv::EvictionPolicy& policy,
                          const GenerationConfig& cfg);

/// Argmax with an optional repetition penalty over `recent` token ids and
/// a hard ban list.
Token select_greedy(std::span<const float> logits,
                    std::span<const Token> recent, float penalty,
                    std::span<const Token> banned = {});

}  // namespace kf::model
