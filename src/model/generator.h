// Autoregressive generation loop wiring the transformer, a KV-cache
// eviction policy, and the paper's budget semantics together — the main
// user-facing entry point for text generation experiments.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kvcache/policy.h"
#include "model/transformer.h"

namespace kf::model {

struct GenerationConfig {
  std::size_t max_new_tokens = 64;
  /// KV-cache budget as a fraction of prompt length; >= 1.0 disables
  /// eviction (full attention). The paper sweeps 0.1 .. 0.9.
  double cache_ratio = 1.0;
  /// Recent-window fraction of the budget (paper's best range: 0.2-0.3).
  double recent_ratio = 0.3;
  /// Penalty subtracted from the logits of recently generated tokens;
  /// 0 disables. Keeps the synthetic models from degenerate single-token
  /// loops, applied identically across policies.
  float repetition_penalty = 2.0F;
  /// How many trailing generated tokens the penalty covers; 0 = all.
  std::size_t repetition_window = 0;
  /// Token ids never emitted (e.g. specials such as <bos>/<sep>).
  std::vector<Token> banned_tokens;
  /// Stop token; -1 disables early stopping.
  Token eos_token = -1;
};

/// Decode-phase throughput rule shared by GenerationResult and
/// serve::Response: tokens beyond the prefill-produced first, per decode
/// second; 0 when no decode steps ran.
inline double decode_throughput(std::size_t generated_tokens,
                                double decode_seconds) {
  return generated_tokens > 1 && decode_seconds > 0.0
             ? static_cast<double>(generated_tokens - 1) / decode_seconds
             : 0.0;
}

struct GenerationResult {
  std::vector<Token> tokens;  ///< generated tokens (prompt excluded)
  std::size_t prompt_len = 0;
  kv::CacheBudget budget;
  /// Cache length per layer after generation (budget invariant checks).
  std::vector<std::size_t> final_cache_sizes;
  /// Peak cache length observed across layers (== prompt during prefill
  /// attention, then budget k + 1 transiently at each decode step).
  std::size_t peak_cache_tokens = 0;
  /// Prompt-phase wall time (prefill attention + first-token selection).
  double prefill_seconds = 0.0;
  /// Decode-phase wall time (every step after the first token). Serving
  /// throughput is quoted on this phase alone so a long prompt does not
  /// skew tokens/s.
  double decode_seconds = 0.0;

  double wall_seconds() const { return prefill_seconds + decode_seconds; }
  /// See decode_throughput().
  double decode_tokens_per_s() const {
    return decode_throughput(tokens.size(), decode_seconds);
  }
};

/// Greedy generation under `policy`. Resets the model's caches, derives the
/// budget from `cfg.cache_ratio`, runs prefill + max_new_tokens decode
/// steps (or until eos). Deterministic. Implemented as a batch-of-one
/// serve::Engine run against the model's default KV state — token-for-token
/// identical to the classic single-sequence loop.
GenerationResult generate(Transformer& model, std::span<const Token> prompt,
                          kv::EvictionPolicy& policy,
                          const GenerationConfig& cfg);

/// Argmax with an optional repetition penalty over `recent` token ids and
/// a hard ban list.
Token select_greedy(std::span<const float> logits,
                    std::span<const Token> recent, float penalty,
                    std::span<const Token> banned = {});

}  // namespace kf::model
