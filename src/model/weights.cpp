#include "model/weights.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"

namespace kf::model {

std::size_t ModelWeights::parameter_count() const {
  std::size_t n = embedding.size() + lm_head.size() + pos_embedding.size() +
                  final_gamma.size() + final_beta.size();
  for (const LayerWeights& l : layers) {
    n += l.wq.size() + l.wk.size() + l.wv.size() + l.wo.size() +
         l.ln1_gamma.size() + l.ln1_beta.size() + l.ln2_gamma.size() +
         l.ln2_beta.size() + l.w_ff1.size() + l.b_ff1.size() +
         l.w_ff2.size() + l.b_ff2.size();
  }
  return n;
}

HeadRole head_role(std::size_t layer, std::size_t head) {
  // Cycle content -> positional -> mixing, rotated by layer so that no
  // fixed head index is special across the whole stack.
  switch ((head + layer) % 3) {
    case 0: return HeadRole::kContent;
    case 1: return HeadRole::kPositional;
    default: return HeadRole::kMixing;
  }
}

HeadRole head_role_for(const ModelConfig& cfg, std::size_t layer,
                       std::size_t head) {
  if (cfg.positional == PositionalKind::kALiBi) {
    // ALiBi slopes fall with head index, so group by thirds: the steep
    // low-index heads become positional (local), the flat high-index heads
    // become content (long-range), the middle mixes.
    (void)layer;
    const std::size_t group = std::max<std::size_t>(1, cfg.n_heads / 3);
    if (head >= cfg.n_heads - group) return HeadRole::kContent;
    if (head < group) return HeadRole::kPositional;
    return HeadRole::kMixing;
  }
  return head_role(layer, head);
}

namespace {

void fill_normal(Tensor& t, Rng& rng, double stddev) {
  for (float& v : t.span()) v = static_cast<float>(rng.normal(0.0, stddev));
}

void unit_norm_rows(Tensor& t) {
  const std::size_t rows = t.dim(0);
  for (std::size_t r = 0; r < rows; ++r) {
    auto row = t.row(r);
    double norm2 = 0.0;
    for (const float v : row) norm2 += static_cast<double>(v) * v;
    const float inv = static_cast<float>(1.0 / std::sqrt(norm2 + 1e-12));
    for (float& v : row) v *= inv;
  }
}

/// Adds gain * I restricted to the columns of head `h`.
void add_head_identity(Tensor& w, std::size_t h, std::size_t d_head,
                       double gain) {
  const std::size_t d = w.dim(0);
  for (std::size_t j = h * d_head; j < (h + 1) * d_head && j < d; ++j) {
    w.at(j, j) += static_cast<float>(gain);
  }
}

/// y = x^T W for a [rows, cols] weight (x length rows, y length cols).
void matvec_like(const Tensor& w, std::span<const float> x,
                 std::span<float> y, std::size_t rows, std::size_t cols) {
  for (std::size_t j = 0; j < cols; ++j) y[j] = 0.0F;
  for (std::size_t i = 0; i < rows; ++i) {
    const float xi = x[i];
    for (std::size_t j = 0; j < cols; ++j) {
      y[j] += xi * w.at(i, j);
    }
  }
}

/// Adds i.i.d. noise to the columns of head `h`.
void add_head_noise(Tensor& w, std::size_t h, std::size_t d_head, Rng& rng,
                    double stddev) {
  const std::size_t d = w.dim(0);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = h * d_head; j < (h + 1) * d_head; ++j) {
      w.at(i, j) += static_cast<float>(rng.normal(0.0, stddev));
    }
  }
}

LayerWeights build_layer(const ModelConfig& cfg, std::size_t layer, Rng& rng,
                         const std::vector<float>& salience_dir) {
  const std::size_t d = cfg.d_model;
  const std::size_t dh = cfg.d_head();
  LayerWeights l;
  l.wq = Tensor({d, d});
  l.wk = Tensor({d, d});
  l.wv = Tensor({d, d});
  l.wo = Tensor({d, d});
  l.ln1_gamma = Tensor({d});
  l.ln1_beta = Tensor({d});
  l.ln2_gamma = Tensor({d});
  l.ln2_beta = Tensor({d});
  l.w_ff1 = Tensor({d, cfg.d_ff});
  l.b_ff1 = Tensor({cfg.d_ff});
  l.w_ff2 = Tensor({cfg.d_ff, d});
  l.b_ff2 = Tensor({d});

  l.ln1_gamma.fill(1.0F);
  l.ln2_gamma.fill(1.0F);

  if (cfg.weight_style == WeightStyle::kRandom) {
    const double s = 1.0 / std::sqrt(static_cast<double>(d));
    fill_normal(l.wq, rng, s);
    fill_normal(l.wk, rng, s);
    fill_normal(l.wv, rng, s);
    fill_normal(l.wo, rng, s);
    fill_normal(l.w_ff1, rng, s);
    fill_normal(l.w_ff2, rng, 1.0 / std::sqrt(static_cast<double>(cfg.d_ff)));
    return l;
  }

  // Structured generation. LN'd inputs have ~unit per-feature variance, so
  // a head slice has squared norm ~ d_head; a gain g on both W_q and W_k
  // yields same-token logits ~ g^2 * sqrt(d_head) after the 1/sqrt(d_head)
  // attention scaling.
  const double content_gain =
      std::sqrt(cfg.content_logit_scale / std::sqrt(static_cast<double>(dh)));
  const double positional_gain =
      std::sqrt(1.2 / std::sqrt(static_cast<double>(dh)));
  const double mix_stddev = 0.3 / std::sqrt(static_cast<double>(d));

  // Rank-1 key-side salience amplifier for content heads: k gains
  // amp * gain * u_j * (x . u), so salient tokens' keys stand out to every
  // query while the filler-filler background stays flat.
  const auto add_key_salience = [&](Tensor& wk, std::size_t h, double gain) {
    const double amp = cfg.salience_key_amp * gain;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = h * dh; j < (h + 1) * dh; ++j) {
        wk.at(i, j) += static_cast<float>(
            amp * static_cast<double>(salience_dir[i]) *
            static_cast<double>(salience_dir[j]));
      }
    }
  };

  for (std::size_t h = 0; h < cfg.n_heads; ++h) {
    switch (head_role_for(cfg, layer, h)) {
      case HeadRole::kContent:
        add_head_identity(l.wq, h, dh, content_gain);
        add_head_identity(l.wk, h, dh, content_gain);
        add_key_salience(l.wk, h, content_gain);
        add_head_noise(l.wq, h, dh, rng, 0.01);
        add_head_noise(l.wk, h, dh, rng, 0.01);
        break;
      case HeadRole::kPositional:
        add_head_identity(l.wq, h, dh, positional_gain);
        add_head_identity(l.wk, h, dh, positional_gain);
        add_head_noise(l.wq, h, dh, rng, 0.02);
        add_head_noise(l.wk, h, dh, rng, 0.02);
        break;
      case HeadRole::kMixing:
        add_head_noise(l.wq, h, dh, rng, mix_stddev);
        add_head_noise(l.wk, h, dh, rng, mix_stddev);
        break;
    }
  }

  // Value/output: identity-dominated so attended embeddings reach the
  // residual stream (copy path), with mild mixing noise. W_o projects the
  // shared salience direction *out*: salience selects what gets attended,
  // but only the raw token content flows into the residual — otherwise the
  // coherent salience component swamps the LM head's copy signal.
  const double wo_gain = cfg.attn_output_gain * 0.6 /
                         std::sqrt(static_cast<double>(cfg.n_layers));
  for (std::size_t j = 0; j < d; ++j) {
    l.wv.at(j, j) = 0.8F;
    for (std::size_t i = 0; i < d; ++i) {
      const double proj = (i == j ? 1.0 : 0.0) -
                          static_cast<double>(salience_dir[i]) *
                              static_cast<double>(salience_dir[j]);
      l.wo.at(i, j) = static_cast<float>(wo_gain * proj);
    }
  }
  const double small = 0.05 / std::sqrt(static_cast<double>(d));
  for (float& v : l.wv.span()) v += static_cast<float>(rng.normal(0.0, small));
  for (float& v : l.wo.span()) v += static_cast<float>(rng.normal(0.0, small));

  fill_normal(l.w_ff1, rng, 0.3 / std::sqrt(static_cast<double>(d)));
  fill_normal(l.w_ff2, rng, 0.3 / std::sqrt(static_cast<double>(cfg.d_ff)));

  // Center the MLP: GELU's positive mean over random weights would inject
  // a *constant* direction into the residual stream every layer, which
  // systematically biases the LM head toward arbitrary tokens. Calibrate
  // b_ff2 = -E[mlp(x)] over LayerNorm-like inputs so the block is
  // zero-mean.
  {
    Rng calib = rng.fork(0xCA11B);
    constexpr std::size_t kCalibSamples = 64;
    std::vector<double> mean_out(d, 0.0);
    std::vector<float> x(d);
    std::vector<float> hidden(cfg.d_ff);
    for (std::size_t s = 0; s < kCalibSamples; ++s) {
      for (float& v : x) v = static_cast<float>(calib.normal());
      matvec_like(l.w_ff1, x, hidden, d, cfg.d_ff);
      gelu_inplace(hidden);
      for (std::size_t j = 0; j < d; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < cfg.d_ff; ++k) {
          acc += static_cast<double>(hidden[k]) * l.w_ff2.at(k, j);
        }
        mean_out[j] += acc;
      }
    }
    for (std::size_t j = 0; j < d; ++j) {
      l.b_ff2.span()[j] =
          static_cast<float>(-mean_out[j] / kCalibSamples);
    }
  }
  return l;
}

}  // namespace

ModelWeights build_weights(const ModelConfig& cfg) {
  cfg.validate();
  Rng rng(cfg.weight_seed);
  ModelWeights w;

  w.embedding = Tensor({cfg.vocab_size, cfg.d_model});
  fill_normal(w.embedding, rng, 1.0);
  unit_norm_rows(w.embedding);
  w.lm_head = w.embedding;  // raw directions, before salience mixing

  // Shared salience direction u: every embedding mixes in a little of it
  // (so any query's content head probes it); salient ("fact") tokens mix
  // in a lot, which is what concentrates attention mass on them.
  Rng u_rng = rng.fork(0x5A11);
  std::vector<float> u(cfg.d_model);
  double u_norm2 = 0.0;
  for (float& v : u) {
    v = static_cast<float>(u_rng.normal());
    u_norm2 += static_cast<double>(v) * v;
  }
  const float u_inv = static_cast<float>(1.0 / std::sqrt(u_norm2));
  for (float& v : u) v *= u_inv;
  for (std::size_t t = 0; t < cfg.vocab_size; ++t) {
    const bool salient = t >= cfg.salient_begin() && t < cfg.salient_end();
    const double mix = salient ? cfg.fact_salience : cfg.base_salience;
    auto row = w.embedding.row(t);
    for (std::size_t j = 0; j < cfg.d_model; ++j) {
      row[j] += static_cast<float>(mix) * u[j];
    }
  }
  unit_norm_rows(w.embedding);

  if (cfg.positional == PositionalKind::kLearned) {
    // Smooth sinusoidal-plus-noise table: nearby positions get similar
    // embeddings, which is what trained absolute embeddings look like.
    w.pos_embedding = Tensor({cfg.max_seq_len, cfg.d_model});
    Rng pos_rng = rng.fork(0x9090);
    std::vector<double> phase(cfg.d_model);
    std::vector<double> period(cfg.d_model);
    for (std::size_t j = 0; j < cfg.d_model; ++j) {
      phase[j] = pos_rng.uniform() * 6.283185307;
      period[j] = 24.0 + 200.0 * pos_rng.uniform();
    }
    for (std::size_t p = 0; p < cfg.max_seq_len; ++p) {
      for (std::size_t j = 0; j < cfg.d_model; ++j) {
        const double v =
            0.25 * std::sin(static_cast<double>(p) / period[j] + phase[j]);
        w.pos_embedding.at(p, j) = static_cast<float>(v);
      }
    }
  }

  w.final_gamma = Tensor({cfg.d_model});
  w.final_beta = Tensor({cfg.d_model});
  w.final_gamma.fill(1.0F);

  w.layers.reserve(cfg.n_layers);
  for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
    Rng layer_rng = rng.fork(0x1000 + layer);
    w.layers.push_back(build_layer(cfg, layer, layer_rng, u));
  }
  return w;
}

}  // namespace kf::model
