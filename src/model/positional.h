// The three positional-encoding algorithms of the evaluated model families.
//
//   RoPE (Su et al., 2022; GPT-J): rotates consecutive (even, odd) pairs of
//   the query/key head vector by pos * base^(-2i/d_head). Keys are stored
//   *unrotated* in the KV cache and rotated at attention time so that both
//   Table 3 position modes (original vs new index) can be realized.
//
//   ALiBi (Press et al., 2021; MPT): adds -slope_h * (q_pos - k_pos) to the
//   attention logit; slopes form a geometric sequence per head.
//
//   Learned (Cerebras-GPT): a trainable absolute position embedding added
//   to the token embedding at the input; it travels with the token through
//   the cache, so eviction cannot change it (noted in DESIGN.md).
#pragma once

#include <cstddef>
#include <span>

#include "model/config.h"

namespace kf::model {

/// Rotates `vec` (length d_head, even) in place by RoPE at position `pos`.
void rope_rotate(std::span<float> vec, std::size_t pos, double base);

/// ALiBi slope for `head` of `n_heads`. For n_heads a power of two this is
/// 2^(-8 (head+1) / n_heads); otherwise the standard interpolation over the
/// nearest powers of two is used.
double alibi_slope(std::size_t head, std::size_t n_heads);

/// ALiBi additive bias for a (query position, key position) pair.
/// Causal use guarantees k_pos <= q_pos; the bias is 0 at distance 0 and
/// decreases linearly with distance.
double alibi_bias(std::size_t head, std::size_t n_heads, std::size_t q_pos,
                  std::size_t k_pos);

}  // namespace kf::model
