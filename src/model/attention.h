// Multi-head causal self-attention over a KvCache.
//
// The kernel exposes both the scaled unnormalized logits x_i = QK^T/sqrt(d)
// and the post-softmax probabilities for every (head, query, key) — the two
// arrays every score function in the paper consumes (H2O accumulates the
// probabilities, Keyformer regularizes the logits).
//
// Positioning and the append-time rotation contract:
//   - RoPE + PositionMode::kOriginal (the default): a token's effective
//     position is its original sequence position, which never changes once
//     appended — so keys are rotated *once at append time* and stored
//     rotated. No per-step re-rotation of the whole cache.
//   - RoPE + PositionMode::kNew (Table 3 ablation): the effective position
//     is the token's current slot index, which changes on compaction — so
//     keys are stored unrotated and rotated at attention time.
//   - ALiBi / learned: keys are stored as projected.
// Causal masking always uses original order. Switching position_mode only
// takes effect for caches (re)filled after the switch — callers reset the
// cache between mode changes (all in-repo callers do).
//
// Three execution paths produce identical results (within float rounding):
//   - attention_forward_general: any n_q (prefill, multi-token chunks);
//   - attention_decode: the fused single-query fast path — matvec QKV and
//     output projections, per-head dots streaming the cache's contiguous
//     head-major key segments (one per head for the classic arena, one per
//     block for a paged cache), and a single fused pass doing softmax +
//     weighted-value accumulation per head;
//   - attention_decode_batch: N independent sequences decoding one token
//     each — one QKV/output projection GEMM across the batch, then the
//     fused per-head attend over each sequence's own cache in parallel.
// attention_forward dispatches between the first two (cfg.decode_fast_path);
// the batch entry point is driven by Transformer::step_batch.
#pragma once

#include <cstddef>
#include <span>

#include "core/tensor.h"
#include "kvcache/kv_cache.h"
#include "model/config.h"
#include "model/weights.h"

namespace kf::model {

/// Attention internals for one layer invocation.
struct AttentionResult {
  Tensor context;  ///< [n_q, d_model] — heads merged and projected by W_o
  Tensor logits;   ///< [n_heads, n_q, key_len]; masked entries = -inf
  Tensor probs;    ///< [n_heads, n_q, key_len]; masked entries = 0
  std::size_t n_q = 0;
  std::size_t key_len = 0;
};

/// Wall-clock accumulator for the decode-latency breakdown
/// (bench_decode_throughput). Pass nullptr to skip timing entirely.
struct AttentionTimings {
  double project_seconds = 0.0;  ///< QKV + output projections
  double attend_seconds = 0.0;   ///< KV append + dots + softmax + weighted
                                 ///< values (same split on decode fast
                                 ///< path, batched, and general paths)
};

/// Projects `x` (n_q rows that continue the sequence) to Q/K/V, appends the
/// new K/V rows to `cache` at `q_positions` (strictly increasing original
/// positions), then attends each query against the full cache. Dispatches
/// to the fused decode path when n_q == 1 and cfg.decode_fast_path is set.
AttentionResult attention_forward(const ModelConfig& cfg,
                                  const LayerWeights& w, const Tensor& x,
                                  std::span<const std::size_t> q_positions,
                                  kv::KvCache& cache,
                                  AttentionTimings* timings = nullptr);

/// The general blocked path for any n_q (always available — the reference
/// the fast path is parity-tested against).
AttentionResult attention_forward_general(
    const ModelConfig& cfg, const LayerWeights& w, const Tensor& x,
    std::span<const std::size_t> q_positions, kv::KvCache& cache,
    AttentionTimings* timings = nullptr);

/// Fused single-query decode kernel. Requires x.dim(0) == 1; `q_position`
/// must exceed every cached original position.
AttentionResult attention_decode(const ModelConfig& cfg,
                                 const LayerWeights& w, const Tensor& x,
                                 std::size_t q_position, kv::KvCache& cache,
                                 AttentionTimings* timings = nullptr);

/// One sequence's slot in a batched decode step: the new token's original
/// sequence position and the sequence's own cache for this layer.
struct DecodeBatchSlot {
  std::size_t q_position = 0;
  kv::KvCache* cache = nullptr;
};

/// Fused multi-sequence decode kernel: one QKV projection GEMM and one
/// output projection GEMM across the B rows of `x` ([B, d_model], one row
/// per sequence), with each sequence's append + per-head fused attention
/// running against its *own* cache, parallelized across sequences. Row b of
/// the projections accumulates in the same order as the single-sequence
/// path, and sequences never read each other's caches, so each slot's
/// result is independent of what else shares the batch. A batch of one
/// dispatches through attention_forward, and with cfg.decode_fast_path off
/// every row falls back to the general per-row kernel, so a sequence's
/// numerics never depend on batch composition under either config.
std::vector<AttentionResult> attention_decode_batch(
    const ModelConfig& cfg, const LayerWeights& w, const Tensor& x,
    std::span<const DecodeBatchSlot> slots,
    AttentionTimings* timings = nullptr);

/// True when the storage contract keeps cached keys pre-rotated (RoPE with
/// immutable effective positions and append-time rotation enabled).
constexpr bool keys_stored_rotated(const ModelConfig& cfg) noexcept {
  return cfg.positional == PositionalKind::kRoPE &&
         cfg.position_mode == PositionMode::kOriginal &&
         cfg.rope_append_time_rotation;
}

}  // namespace kf::model
