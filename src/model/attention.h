// Multi-head causal self-attention over a KvCache.
//
// The kernel exposes both the scaled unnormalized logits x_i = QK^T/sqrt(d)
// and the post-softmax probabilities for every (head, query, key) — the two
// arrays every score function in the paper consumes (H2O accumulates the
// probabilities, Keyformer regularizes the logits).
//
// Positioning: keys are cached *unrotated*; RoPE rotation / ALiBi bias is
// applied at attention time from either the token's original position
// (PositionMode::kOriginal) or its current slot index in the compacted
// cache (PositionMode::kNew) — the Table 3 ablation. Causal masking always
// uses original order.
#pragma once

#include <span>

#include "core/tensor.h"
#include "kvcache/kv_cache.h"
#include "model/config.h"
#include "model/weights.h"

namespace kf::model {

/// Attention internals for one layer invocation.
struct AttentionResult {
  Tensor context;  ///< [n_q, d_model] — heads merged and projected by W_o
  Tensor logits;   ///< [n_heads, n_q, key_len]; masked entries = -inf
  Tensor probs;    ///< [n_heads, n_q, key_len]; masked entries = 0
  std::size_t n_q = 0;
  std::size_t key_len = 0;
};

/// Projects `x` (n_q rows that continue the sequence) to Q/K/V, appends the
/// new K/V rows to `cache` at `q_positions` (strictly increasing original
/// positions), then attends each query against the full cache.
AttentionResult attention_forward(const ModelConfig& cfg,
                                  const LayerWeights& w, const Tensor& x,
                                  std::span<const std::size_t> q_positions,
                                  kv::KvCache& cache);

}  // namespace kf::model
