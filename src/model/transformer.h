// The decoder-only transformer with per-layer KV caches and eviction-policy
// integration — the inference engine of the reproduction.
//
// Inference follows the paper's two phases (Section 2.1):
//   prefill(prompt)  — processes the whole prompt, populating every layer's
//                      cache and letting the policy reduce it to budget k;
//   decode(token)    — one autoregressive step against the reduced cache
//                      (appends 1 token, the policy evicts 1 to keep k).
//
// After every layer's attention the active EvictionPolicy observes the
// scaled logits and probabilities and may compact that layer's cache.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/tensor.h"
#include "kvcache/kv_cache.h"
#include "kvcache/policy.h"
#include "model/attention.h"
#include "model/config.h"
#include "model/weights.h"

namespace kf::model {

using Token = std::int32_t;

/// Attention internals delivered to an instrumentation observer (sparsity
/// stats, heat maps). Valid only during the callback.
struct AttentionObservation {
  std::size_t layer = 0;
  const AttentionResult* attn = nullptr;
  std::span<const std::size_t> key_positions;  ///< original positions
  bool is_prompt = false;
  std::size_t decode_step = 0;
};

using AttentionObserver = std::function<void(const AttentionObservation&)>;

class Transformer {
 public:
  /// Builds deterministic weights for `cfg` (see weights.h).
  explicit Transformer(ModelConfig cfg);

  const ModelConfig& config() const noexcept { return cfg_; }
  const ModelWeights& weights() const noexcept { return weights_; }

  /// Current cache length of one layer.
  std::size_t cache_size(std::size_t layer) const;
  /// Sum of cache lengths across layers.
  std::size_t total_cache_tokens() const;
  kv::KvCache& cache(std::size_t layer);
  const kv::KvCache& cache(std::size_t layer) const;

  /// Clears all layer caches (start of a new sequence).
  void reset();

  /// Installs an attention observer (pass nullptr-equivalent {} to clear).
  void set_observer(AttentionObserver observer);

  /// Installs a wall-clock sink for the attention-phase breakdown
  /// (bench_decode_throughput); nullptr disables timing.
  void set_attention_timings(AttentionTimings* sink) {
    attn_timings_ = sink;
  }

  /// Switches the position mode (Table 3 org-pos vs new-pos ablation).
  /// Takes effect for caches filled after the next reset()/prefill() —
  /// under RoPE the key-storage contract (pre-rotated vs raw, see
  /// model/attention.h) differs per mode, so a non-empty cache must not
  /// straddle a switch.
  void set_position_mode(PositionMode mode) { cfg_.position_mode = mode; }

  /// Toggles the fused single-query decode path (parity-tested against the
  /// general path; benches flip it to measure the speedup).
  void set_decode_fast_path(bool on) { cfg_.decode_fast_path = on; }

  /// Toggles append-time RoPE rotation (see ModelConfig). Only flip on an
  /// empty cache — benches use the off state as the pre-change baseline.
  void set_rope_append_time_rotation(bool on) {
    cfg_.rope_append_time_rotation = on;
  }

  /// Prompt phase. Returns LM logits for every prompt position,
  /// shape [prompt_len, vocab]. `total_steps` is T in Algorithm 1.
  Tensor prefill(std::span<const Token> prompt, kv::EvictionPolicy& policy,
                 std::size_t total_steps);

  /// One decode step: feeds `token` at sequence position `position`
  /// (original coordinates), decode step `t` (1-based). Returns the LM
  /// logits predicting the next token.
  std::vector<float> decode(Token token, std::size_t position, std::size_t t,
                            std::size_t total_steps,
                            kv::EvictionPolicy& policy);

 private:
  /// Shared layer stack walk. `x` holds embedded rows; returns LM logits
  /// for every row.
  Tensor forward(Tensor x, std::span<const std::size_t> positions,
                 bool is_prompt, std::size_t t, std::size_t total_steps,
                 kv::EvictionPolicy& policy);

  Tensor embed(std::span<const Token> tokens, std::size_t first_pos) const;

  ModelConfig cfg_;
  ModelWeights weights_;
  std::vector<kv::KvCache> caches_;
  AttentionObserver observer_;
  AttentionTimings* attn_timings_ = nullptr;
};

}  // namespace kf::model
