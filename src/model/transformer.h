// The decoder-only transformer with per-layer KV caches and eviction-policy
// integration — the inference engine of the reproduction.
//
// Inference follows the paper's two phases (Section 2.1):
//   prefill(prompt)  — processes the whole prompt, populating every layer's
//                      cache and letting the policy reduce it to budget k;
//   decode(token)    — one autoregressive step against the reduced cache
//                      (appends 1 token, the policy evicts 1 to keep k).
//
// After every layer's attention the active EvictionPolicy observes the
// scaled logits and probabilities and may compact that layer's cache.
//
// Sequence state is externalized: a SequenceKvState (one KvCache per layer)
// can be owned by the caller, so one model serves N sequences concurrently
// — each prefill/decode/step_batch call names the state it runs against.
// The no-state overloads operate on a model-owned default state, keeping
// the classic "one model, one sequence" usage working unchanged.
// step_batch decodes one token for *each* of N sequences: one QKV/output
// projection GEMM across the batch, then per-sequence fused attention over
// each sequence's own cache (see attention_decode_batch).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/tensor.h"
#include "kvcache/kv_cache.h"
#include "kvcache/kv_state.h"
#include "kvcache/policy.h"
#include "model/attention.h"
#include "model/config.h"
#include "model/weights.h"

namespace kf::model {

using Token = std::int32_t;

/// Attention internals delivered to an instrumentation observer (sparsity
/// stats, heat maps). Valid only during the callback.
struct AttentionObservation {
  std::size_t layer = 0;
  const AttentionResult* attn = nullptr;
  std::span<const std::size_t> key_positions;  ///< original positions
  bool is_prompt = false;
  std::size_t decode_step = 0;
  /// Batch slot during step_batch (one observation per slot per layer);
  /// always 0 on the single-sequence prefill/decode path. Observers
  /// aggregating per-sequence state must key on this, since decode_step
  /// alone repeats across concurrent sequences.
  std::size_t batch_slot = 0;
};

using AttentionObserver = std::function<void(const AttentionObservation&)>;

/// One sequence's slot in a batched decode step. Every slot must reference
/// a distinct state and a distinct policy (sequences own their score
/// state); `position` is in original sequence coordinates and `t` is the
/// sequence's own 1-based decode step.
struct DecodeSlot {
  Token token = 0;
  std::size_t position = 0;
  std::size_t t = 1;
  std::size_t total_steps = 0;
  kv::SequenceKvState* state = nullptr;
  kv::EvictionPolicy* policy = nullptr;
};

class Transformer {
 public:
  /// Builds deterministic weights for `cfg` (see weights.h).
  explicit Transformer(ModelConfig cfg);

  const ModelConfig& config() const noexcept { return cfg_; }
  const ModelWeights& weights() const noexcept { return weights_; }

  /// A fresh per-sequence KV state sized for this model.
  kv::SequenceKvState make_kv_state(std::size_t capacity_hint = 256) const;

  /// The model-owned state the no-state overloads run against.
  kv::SequenceKvState& default_kv_state() noexcept { return state_; }
  const kv::SequenceKvState& default_kv_state() const noexcept {
    return state_;
  }

  /// Current cache length of one layer (default state).
  std::size_t cache_size(std::size_t layer) const;
  /// Sum of cache lengths across layers (default state).
  std::size_t total_cache_tokens() const;
  kv::KvCache& cache(std::size_t layer);
  const kv::KvCache& cache(std::size_t layer) const;

  /// Clears the default state's layer caches (start of a new sequence).
  void reset();

  /// Installs an attention observer (pass nullptr-equivalent {} to clear).
  void set_observer(AttentionObserver observer);

  /// Installs a wall-clock sink for the attention-phase breakdown
  /// (bench_decode_throughput); nullptr disables timing.
  void set_attention_timings(AttentionTimings* sink) {
    attn_timings_ = sink;
  }

  /// Switches the position mode (Table 3 org-pos vs new-pos ablation).
  /// Takes effect for caches filled after the next reset()/prefill() —
  /// under RoPE the key-storage contract (pre-rotated vs raw, see
  /// model/attention.h) differs per mode, so a non-empty cache must not
  /// straddle a switch.
  void set_position_mode(PositionMode mode) { cfg_.position_mode = mode; }

  /// Toggles the fused single-query decode path (parity-tested against the
  /// general path; benches flip it to measure the speedup).
  void set_decode_fast_path(bool on) { cfg_.decode_fast_path = on; }

  /// Toggles append-time RoPE rotation (see ModelConfig). Only flip on an
  /// empty cache — benches use the off state as the pre-change baseline.
  void set_rope_append_time_rotation(bool on) {
    cfg_.rope_append_time_rotation = on;
  }

  /// Prompt phase against the default state. Returns LM logits for every
  /// prompt position, shape [prompt_len, vocab]. `total_steps` is T in
  /// Algorithm 1.
  Tensor prefill(std::span<const Token> prompt, kv::EvictionPolicy& policy,
                 std::size_t total_steps);

  /// Prompt phase against a caller-owned sequence state (must be empty).
  Tensor prefill(kv::SequenceKvState& state, std::span<const Token> prompt,
                 kv::EvictionPolicy& policy, std::size_t total_steps);

  /// Prompt-phase continuation: processes `tokens` (original positions
  /// first_pos..first_pos+n-1) against a state whose every layer already
  /// caches exactly `first_pos` rows — an adopted shared prefix, or the
  /// earlier chunk of a chunked prefill. Always runs the general
  /// multi-query attention kernel, so each row's arithmetic is identical
  /// to the corresponding row of one monolithic prefill over the full
  /// prompt (the prefix-cache parity contract). Returns LM logits for
  /// these rows only, shape [tokens.size(), vocab].
  Tensor prefill_continue(kv::SequenceKvState& state,
                          std::span<const Token> tokens,
                          std::size_t first_pos, kv::EvictionPolicy& policy,
                          std::size_t total_steps);

  /// One decode step against the default state: feeds `token` at sequence
  /// position `position` (original coordinates), decode step `t` (1-based).
  /// Returns the LM logits predicting the next token.
  std::vector<float> decode(Token token, std::size_t position, std::size_t t,
                            std::size_t total_steps,
                            kv::EvictionPolicy& policy);

  /// One decode step against a caller-owned sequence state.
  std::vector<float> decode(kv::SequenceKvState& state, Token token,
                            std::size_t position, std::size_t t,
                            std::size_t total_steps,
                            kv::EvictionPolicy& policy);

  /// One decode step for each of N independent sequences sharing these
  /// weights: per layer, one QKV/output projection GEMM across the batch
  /// and fused per-sequence attention over each slot's own cache (run in
  /// parallel), each slot's policy observing (and possibly compacting) only
  /// its own cache. Returns LM logits, shape [N, vocab], row per slot.
  /// A batch of one follows the exact single-sequence decode path.
  Tensor step_batch(std::span<const DecodeSlot> slots);

 private:
  /// Shared layer stack walk. `x` holds embedded rows; returns LM logits
  /// for every row. `force_general` pins the general attention kernel
  /// (chunked prompt phases; see decoder_attention).
  Tensor forward(kv::SequenceKvState& state, Tensor x,
                 std::span<const std::size_t> positions, bool is_prompt,
                 std::size_t t, std::size_t total_steps,
                 kv::EvictionPolicy& policy, bool force_general = false);

  Tensor embed(std::span<const Token> tokens, std::size_t first_pos) const;
  /// Embeds one token at `position` directly into `dst` (d_model floats) —
  /// the allocation-free form step_batch uses per batch row.
  void embed_row(Token token, std::size_t position, std::span<float> dst) const;
  /// Final LayerNorm + tied LM head over every row of `x`.
  Tensor lm_logits(const Tensor& x) const;

  ModelConfig cfg_;
  ModelWeights weights_;
  kv::SequenceKvState state_;  ///< default sequence state
  AttentionObserver observer_;
  AttentionTimings* attn_timings_ = nullptr;
};

}  // namespace kf::model
