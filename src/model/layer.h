// Pre-LayerNorm decoder-layer blocks:
//   x += W_o * Attention(LN1(x))     (attention block, returns internals)
//   x += W2 * GELU(W1 * LN2(x) + b1) + b2
#pragma once

#include <span>

#include "core/tensor.h"
#include "kvcache/kv_cache.h"
#include "model/attention.h"
#include "model/config.h"
#include "model/weights.h"

namespace kf::model {

/// Runs the attention block over `x` ([n_q, d_model] residual-stream rows),
/// updating `x` in place and returning the attention internals for score
/// functions / instrumentation.
AttentionResult decoder_attention(const ModelConfig& cfg,
                                  const LayerWeights& w, Tensor& x,
                                  std::span<const std::size_t> positions,
                                  kv::KvCache& cache,
                                  AttentionTimings* timings = nullptr);

/// Runs the MLP block over `x` in place.
void decoder_mlp(const ModelConfig& cfg, const LayerWeights& w, Tensor& x);

}  // namespace kf::model
