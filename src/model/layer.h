// Pre-LayerNorm decoder-layer blocks:
//   x += W_o * Attention(LN1(x))     (attention block, returns internals)
//   x += W2 * GELU(W1 * LN2(x) + b1) + b2
#pragma once

#include <span>

#include "core/tensor.h"
#include "kvcache/kv_cache.h"
#include "model/attention.h"
#include "model/config.h"
#include "model/weights.h"

namespace kf::model {

/// Runs the attention block over `x` ([n_q, d_model] residual-stream rows),
/// updating `x` in place and returning the attention internals for score
/// functions / instrumentation. `force_general` pins the general kernel
/// even for n_q == 1: chunked prompt phases use it so a one-token chunk
/// runs the same arithmetic a monolithic prefill would have used for that
/// row (the fused fast path matches the general path only to ~1e-5).
AttentionResult decoder_attention(const ModelConfig& cfg,
                                  const LayerWeights& w, Tensor& x,
                                  std::span<const std::size_t> positions,
                                  kv::KvCache& cache,
                                  AttentionTimings* timings = nullptr,
                                  bool force_general = false);

/// Batched decode attention block: LN1 per row, one attention_decode_batch
/// over the per-sequence caches in `slots` (row b of `x` is sequence b's
/// residual-stream row), residual add per row. Returns the per-sequence
/// attention internals in slot order.
std::vector<AttentionResult> decoder_attention_batch(
    const ModelConfig& cfg, const LayerWeights& w, Tensor& x,
    std::span<const DecodeBatchSlot> slots,
    AttentionTimings* timings = nullptr);

/// Runs the MLP block over `x` in place.
void decoder_mlp(const ModelConfig& cfg, const LayerWeights& w, Tensor& x);

/// decoder_mlp applied to each row of `x` in parallel across rows. Used by
/// the batched decode step, where rows are independent sequences and the
/// per-row GEMMs sit below the kernels' internal parallel thresholds (so
/// decoder_mlp would run the whole batch serially). Per-row numerics are
/// identical to decoder_mlp.
void decoder_mlp_rows(const ModelConfig& cfg, const LayerWeights& w,
                      Tensor& x);

}  // namespace kf::model
