#include "model/layer.h"

#include <cassert>

namespace kf::model {

AttentionResult decoder_attention(const ModelConfig& cfg,
                                  const LayerWeights& w, Tensor& x,
                                  std::span<const std::size_t> positions,
                                  kv::KvCache& cache,
                                  AttentionTimings* timings) {
  const std::size_t n_q = x.dim(0);
  const std::size_t d = cfg.d_model;
  assert(x.dim(1) == d);

  Tensor normed({n_q, d});
  for (std::size_t i = 0; i < n_q; ++i) {
    layer_norm(x.row(i), w.ln1_gamma.span(), w.ln1_beta.span(),
               normed.row(i));
  }
  AttentionResult attn =
      attention_forward(cfg, w, normed, positions, cache, timings);
  add_inplace(x.span(), attn.context.span());
  return attn;
}

void decoder_mlp(const ModelConfig& cfg, const LayerWeights& w, Tensor& x) {
  const std::size_t n_q = x.dim(0);
  const std::size_t d = cfg.d_model;
  const std::size_t f = cfg.d_ff;

  Tensor normed({n_q, d});
  for (std::size_t i = 0; i < n_q; ++i) {
    layer_norm(x.row(i), w.ln2_gamma.span(), w.ln2_beta.span(),
               normed.row(i));
  }
  Tensor hidden({n_q, f});
  matmul(normed.span(), w.w_ff1.span(), hidden.span(), n_q, d, f);
  for (std::size_t i = 0; i < n_q; ++i) {
    add_inplace(hidden.row(i), w.b_ff1.span());
  }
  gelu_inplace(hidden.span());
  Tensor out({n_q, d});
  matmul(hidden.span(), w.w_ff2.span(), out.span(), n_q, f, d);
  for (std::size_t i = 0; i < n_q; ++i) {
    add_inplace(out.row(i), w.b_ff2.span());
  }
  add_inplace(x.span(), out.span());
}

}  // namespace kf::model
