#include "model/layer.h"

#include <algorithm>
#include <cassert>

#include "core/threadpool.h"

namespace kf::model {

AttentionResult decoder_attention(const ModelConfig& cfg,
                                  const LayerWeights& w, Tensor& x,
                                  std::span<const std::size_t> positions,
                                  kv::KvCache& cache,
                                  AttentionTimings* timings,
                                  bool force_general) {
  const std::size_t n_q = x.dim(0);
  const std::size_t d = cfg.d_model;
  assert(x.dim(1) == d);

  Tensor normed({n_q, d});
  for (std::size_t i = 0; i < n_q; ++i) {
    layer_norm(x.row(i), w.ln1_gamma.span(), w.ln1_beta.span(),
               normed.row(i));
  }
  AttentionResult attn =
      force_general
          ? attention_forward_general(cfg, w, normed, positions, cache,
                                      timings)
          : attention_forward(cfg, w, normed, positions, cache, timings);
  add_inplace(x.span(), attn.context.span());
  return attn;
}

std::vector<AttentionResult> decoder_attention_batch(
    const ModelConfig& cfg, const LayerWeights& w, Tensor& x,
    std::span<const DecodeBatchSlot> slots, AttentionTimings* timings) {
  const std::size_t b_count = x.dim(0);
  const std::size_t d = cfg.d_model;
  assert(x.dim(1) == d && slots.size() == b_count);

  Tensor normed({b_count, d});
  for (std::size_t b = 0; b < b_count; ++b) {
    layer_norm(x.row(b), w.ln1_gamma.span(), w.ln1_beta.span(),
               normed.row(b));
  }
  std::vector<AttentionResult> results =
      attention_decode_batch(cfg, w, normed, slots, timings);
  for (std::size_t b = 0; b < b_count; ++b) {
    add_inplace(x.row(b), results[b].context.row(0));
  }
  return results;
}

void decoder_mlp(const ModelConfig& cfg, const LayerWeights& w, Tensor& x) {
  const std::size_t n_q = x.dim(0);
  const std::size_t d = cfg.d_model;
  const std::size_t f = cfg.d_ff;

  Tensor normed({n_q, d});
  for (std::size_t i = 0; i < n_q; ++i) {
    layer_norm(x.row(i), w.ln2_gamma.span(), w.ln2_beta.span(),
               normed.row(i));
  }
  Tensor hidden({n_q, f});
  matmul(normed.span(), w.w_ff1.span(), hidden.span(), n_q, d, f);
  for (std::size_t i = 0; i < n_q; ++i) {
    add_inplace(hidden.row(i), w.b_ff1.span());
  }
  gelu_inplace(hidden.span());
  Tensor out({n_q, d});
  matmul(hidden.span(), w.w_ff2.span(), out.span(), n_q, f, d);
  for (std::size_t i = 0; i < n_q; ++i) {
    add_inplace(out.row(i), w.b_ff2.span());
  }
  add_inplace(x.span(), out.span());
}

void decoder_mlp_rows(const ModelConfig& cfg, const LayerWeights& w,
                      Tensor& x) {
  const std::size_t n_q = x.dim(0);
  const std::size_t d = cfg.d_model;
  ThreadPool::global().parallel_for(
      n_q,
      [&](std::size_t i0, std::size_t i1) {
        Tensor row({1, d});
        for (std::size_t i = i0; i < i1; ++i) {
          auto src = x.row(i);
          const auto tmp = row.row(0);
          std::copy(src.begin(), src.end(), tmp.begin());
          decoder_mlp(cfg, w, row);
          std::copy(tmp.begin(), tmp.end(), src.begin());
        }
      },
      /*grain=*/1);
}

}  // namespace kf::model
