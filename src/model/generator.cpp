#include "model/generator.h"

#include <limits>

namespace kf::model {

Token select_greedy(std::span<const float> logits,
                    std::span<const Token> recent, float penalty,
                    std::span<const Token> banned) {
  std::vector<float> adjusted;
  std::span<const float> view = logits;
  if ((penalty > 0.0F && !recent.empty()) || !banned.empty()) {
    adjusted.assign(logits.begin(), logits.end());
    for (const Token t : recent) {
      if (t >= 0 && static_cast<std::size_t>(t) < adjusted.size()) {
        adjusted[static_cast<std::size_t>(t)] -= penalty;
      }
    }
    for (const Token t : banned) {
      if (t >= 0 && static_cast<std::size_t>(t) < adjusted.size()) {
        adjusted[static_cast<std::size_t>(t)] =
            -std::numeric_limits<float>::infinity();
      }
    }
    view = adjusted;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < view.size(); ++i) {
    if (view[i] > view[best]) best = i;
  }
  return static_cast<Token>(best);
}

// generate() is defined in src/serve/engine.cpp, next to the Engine it
// wraps: the model layer declares the API but never includes serve/
// headers, keeping the model -> serve dependency one-way.

}  // namespace kf::model
