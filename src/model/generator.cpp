#include "model/generator.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

namespace kf::model {

Token select_greedy(std::span<const float> logits,
                    std::span<const Token> recent, float penalty,
                    std::span<const Token> banned) {
  std::vector<float> adjusted;
  std::span<const float> view = logits;
  if ((penalty > 0.0F && !recent.empty()) || !banned.empty()) {
    adjusted.assign(logits.begin(), logits.end());
    for (const Token t : recent) {
      if (t >= 0 && static_cast<std::size_t>(t) < adjusted.size()) {
        adjusted[static_cast<std::size_t>(t)] -= penalty;
      }
    }
    for (const Token t : banned) {
      if (t >= 0 && static_cast<std::size_t>(t) < adjusted.size()) {
        adjusted[static_cast<std::size_t>(t)] =
            -std::numeric_limits<float>::infinity();
      }
    }
    view = adjusted;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < view.size(); ++i) {
    if (view[i] > view[best]) best = i;
  }
  return static_cast<Token>(best);
}

GenerationResult generate(Transformer& model, std::span<const Token> prompt,
                          kv::EvictionPolicy& policy,
                          const GenerationConfig& cfg) {
  if (prompt.empty()) {
    throw std::invalid_argument("generate requires a non-empty prompt");
  }
  const auto start = std::chrono::steady_clock::now();

  GenerationResult result;
  result.prompt_len = prompt.size();
  result.budget = kv::make_budget(prompt.size(), cfg.cache_ratio,
                                  cfg.recent_ratio);
  policy.set_budget(result.budget);

  kv::SequenceInfo info;
  info.prompt_len = prompt.size();
  info.total_steps = cfg.max_new_tokens;
  info.n_layers = model.config().n_layers;
  info.n_heads = model.config().n_heads;
  policy.begin_sequence(info);

  model.reset();
  Tensor prompt_logits =
      model.prefill(prompt, policy, cfg.max_new_tokens);
  result.peak_cache_tokens = prompt.size();

  const auto recent_window = [&]() -> std::span<const Token> {
    const std::size_t n = result.tokens.size();
    const std::size_t w =
        cfg.repetition_window == 0 ? n : std::min(n, cfg.repetition_window);
    return {result.tokens.data() + (n - w), w};
  };

  Token next = select_greedy(prompt_logits.row(prompt.size() - 1),
                             recent_window(), cfg.repetition_penalty,
                             cfg.banned_tokens);

  for (std::size_t t = 1; t <= cfg.max_new_tokens; ++t) {
    result.tokens.push_back(next);
    if (cfg.eos_token >= 0 && next == cfg.eos_token) break;
    if (result.tokens.size() >= cfg.max_new_tokens) break;

    const std::size_t position = prompt.size() + t - 1;
    const std::vector<float> logits =
        model.decode(next, position, t, cfg.max_new_tokens, policy);
    for (std::size_t l = 0; l < model.config().n_layers; ++l) {
      result.peak_cache_tokens =
          std::max(result.peak_cache_tokens, model.cache_size(l));
    }
    next = select_greedy(logits, recent_window(), cfg.repetition_penalty,
                         cfg.banned_tokens);
  }

  for (std::size_t l = 0; l < model.config().n_layers; ++l) {
    result.final_cache_sizes.push_back(model.cache_size(l));
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace kf::model
