// Deterministic weight generation.
//
// The reproduction cannot ship 7B-parameter checkpoints, so the structured
// generator plants the attention anatomy the paper's mechanism depends on:
//
//   - content heads: W_q / W_k near scaled identity, so a query attends to
//     cached tokens with similar embeddings (repeated salient tokens become
//     heavy hitters — the "key tokens" of Fig 3b);
//   - positional heads: W_q / W_k near zero, so ALiBi / RoPE geometry
//     dominates (recency structure, MPT-style heat maps of Fig 15);
//   - mixing heads: dense random projections (diffuse attention).
//
// W_v / W_o are identity-dominated so attended token embeddings survive
// into the residual stream; with the tied LM head this yields echo/copy
// dynamics whose outputs visibly depend on which tokens remain cached —
// exactly the sensitivity the eviction study measures.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.h"
#include "model/config.h"

namespace kf::model {

/// Weights of one decoder layer.
struct LayerWeights {
  Tensor wq, wk, wv, wo;  ///< each [d_model, d_model]
  Tensor ln1_gamma, ln1_beta;
  Tensor ln2_gamma, ln2_beta;
  Tensor w_ff1;  ///< [d_model, d_ff]
  Tensor b_ff1;  ///< [d_ff]
  Tensor w_ff2;  ///< [d_ff, d_model]
  Tensor b_ff2;  ///< [d_model]
};

/// All model parameters. The LM head is untied: it scores hidden states
/// against the *raw* token directions (without the shared salience
/// component), so next-token ranking reflects which tokens were actually
/// attended rather than the shared salience signal.
struct ModelWeights {
  Tensor embedding;      ///< [vocab, d_model], unit-norm rows (with salience)
  Tensor lm_head;        ///< [vocab, d_model], unit-norm raw directions
  Tensor pos_embedding;  ///< [max_seq, d_model] for kLearned, else empty
  Tensor final_gamma, final_beta;
  std::vector<LayerWeights> layers;

  /// Total parameter count (for reporting only).
  std::size_t parameter_count() const;
};

/// Kind of attention head planted by the structured generator.
enum class HeadRole { kContent, kPositional, kMixing };

/// Role assigned to (layer, head) by the structured generator: content /
/// positional / mixing cycling by head index.
HeadRole head_role(std::size_t layer, std::size_t head);

/// Config-aware role assignment. For ALiBi models the cycle runs from the
/// highest head index down, so content (long-range) heads receive the
/// *smallest* ALiBi slopes — mirroring trained MPT models, where low-slope
/// heads do the long-range work — and positional heads the largest.
HeadRole head_role_for(const ModelConfig& cfg, std::size_t layer,
                       std::size_t head);

/// Builds deterministic weights for the config (see file comment).
ModelWeights build_weights(const ModelConfig& config);

}  // namespace kf::model
