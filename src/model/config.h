// Model configuration and the three scaled-down model families used across
// the paper's evaluation:
//   - GPT-J        -> RoPE rotary position embeddings
//   - Cerebras-GPT -> learned absolute position embeddings
//   - MPT          -> ALiBi linear biases
// (Section 4: "each using distinct position encoding techniques"). The
// reproduction runs these at laptop scale (d_model 128-256, 4-8 layers);
// the *positional algorithm* — the property the paper varies — is faithful.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

namespace kf::model {

/// Positional-encoding family.
enum class PositionalKind { kRoPE, kALiBi, kLearned };

std::string to_string(PositionalKind kind);

/// How cached keys are positioned after eviction (Table 3 ablation):
/// kOriginal keeps each token's original sequence position; kNew re-indexes
/// tokens by their slot in the compacted cache.
enum class PositionMode { kOriginal, kNew };

std::string to_string(PositionMode mode);

/// How weights are generated (see weights.h).
enum class WeightStyle {
  kStructured,  ///< planted content/positional/mixing heads (default)
  kRandom,      ///< pure i.i.d. random (used by unit tests)
};

struct ModelConfig {
  std::string name = "tiny-rope";
  std::size_t vocab_size = 512;
  std::size_t d_model = 128;
  std::size_t n_layers = 4;
  std::size_t n_heads = 4;
  std::size_t d_ff = 256;
  std::size_t max_seq_len = 4096;
  PositionalKind positional = PositionalKind::kRoPE;
  PositionMode position_mode = PositionMode::kOriginal;
  /// Route single-query (decode) attention through the fused fast path
  /// (attention_decode): matvec projections, contiguous head-major key
  /// scans, one-pass softmax + weighted-value accumulation. Off = always
  /// use the general blocked path; outputs agree within float rounding
  /// (parity-tested at 1e-5), so this is a performance switch, not a
  /// semantics switch.
  bool decode_fast_path = true;
  /// Under RoPE with PositionMode::kOriginal, rotate keys once at append
  /// time and store them rotated (effective positions are immutable, so
  /// per-step re-rotation of the whole cache is pure waste). Off = store
  /// raw keys and rotate every attention call — the pre-fast-path
  /// behavior, kept as a benchmark baseline and a numerical cross-check.
  /// Must not change while any cache is non-empty.
  bool rope_append_time_rotation = true;
  WeightStyle weight_style = WeightStyle::kStructured;
  std::uint64_t weight_seed = 42;
  double rope_base = 10000.0;
  /// Target magnitude of same-token content-head logits (controls how
  /// concentrated attention is; calibrated so that ~90% of attention mass
  /// falls on a minority of tokens, as in Fig 3b).
  double content_logit_scale = 6.0;
  /// Salience direction mixed into embeddings: every token gets
  /// `base_salience` of the shared direction (so all queries probe it) and
  /// tokens in [salient_begin, salient_end) get `fact_salience`. This is
  /// what makes a minority of tokens genuine attention "key tokens"
  /// (Fig 3b) whose eviction visibly damages generation. The range matches
  /// data::TokenClasses' fact range by construction.
  double fact_salience = 1.0;
  double base_salience = 0.1;
  /// Rank-1 amplification of the salience direction in W_k of content
  /// heads: raises fact-key logits for every query without inflating the
  /// filler-filler background (which a symmetric embedding boost would).
  /// The fact:filler key-logit separation scales with fact_salience /
  /// base_salience, the overall boost with this amplifier.
  double salience_key_amp = 9.0;
  /// Multiplier on the attention-output projection gain: controls how
  /// strongly attended (cached) content drives the residual stream versus
  /// the current token's own embedding.
  double attn_output_gain = 1.0;

  std::size_t salient_begin() const noexcept { return 4; }
  std::size_t salient_end() const noexcept {
    return 4 + std::min<std::size_t>(vocab_size / 4, 128);
  }

  std::size_t d_head() const noexcept { return d_model / n_heads; }

  /// Throws std::invalid_argument when dimensions are inconsistent.
  void validate() const;

  /// GPT-J-6B stand-in: RoPE.
  static ModelConfig gptj_like();
  /// Cerebras-GPT-6.7B stand-in: learned absolute positions.
  static ModelConfig cerebras_like();
  /// MPT-7B stand-in: ALiBi.
  static ModelConfig mpt_like();
  /// MPT-7B-storywriter stand-in: ALiBi with a long context window.
  static ModelConfig mpt_storywriter_like();
};

}  // namespace kf::model
