#include "model/attention.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "core/numerics.h"
#include "core/threadpool.h"
#include "model/positional.h"

namespace kf::model {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/// Effective position of cache slot i under the configured mode.
std::size_t key_position(const ModelConfig& cfg, const kv::KvCache& cache,
                         std::size_t i) {
  return cfg.position_mode == PositionMode::kOriginal
             ? cache.original_position(i)
             : i;
}

}  // namespace

AttentionResult attention_forward(const ModelConfig& cfg,
                                  const LayerWeights& w, const Tensor& x,
                                  std::span<const std::size_t> q_positions,
                                  kv::KvCache& cache) {
  const std::size_t n_q = x.dim(0);
  const std::size_t d = cfg.d_model;
  const std::size_t h_count = cfg.n_heads;
  const std::size_t dh = cfg.d_head();
  assert(x.dim(1) == d && q_positions.size() == n_q);

  // Project Q, K, V for all new rows at once.
  Tensor q({n_q, d});
  Tensor k({n_q, d});
  Tensor v({n_q, d});
  matmul(x.span(), w.wq.span(), q.span(), n_q, d, d);
  matmul(x.span(), w.wk.span(), k.span(), n_q, d, d);
  matmul(x.span(), w.wv.span(), v.span(), n_q, d, d);

  for (std::size_t i = 0; i < n_q; ++i) {
    cache.append(k.row(i), v.row(i), q_positions[i]);
  }

  const std::size_t key_len = cache.size();
  AttentionResult out;
  out.n_q = n_q;
  out.key_len = key_len;
  out.context = Tensor({n_q, d});
  out.logits = Tensor({h_count, n_q, key_len});
  out.probs = Tensor({h_count, n_q, key_len});

  const bool use_rope = cfg.positional == PositionalKind::kRoPE;
  const bool use_alibi = cfg.positional == PositionalKind::kALiBi;
  const float inv_sqrt_dh = 1.0F / std::sqrt(static_cast<float>(dh));

  // Effective key positions (fixed for this call).
  std::vector<std::size_t> key_pos(key_len);
  for (std::size_t i = 0; i < key_len; ++i) {
    key_pos[i] = key_position(cfg, cache, i);
  }
  // Effective query positions. Queries occupy the trailing n_q cache slots.
  std::vector<std::size_t> q_eff(n_q);
  for (std::size_t qi = 0; qi < n_q; ++qi) {
    q_eff[qi] = cfg.position_mode == PositionMode::kOriginal
                    ? q_positions[qi]
                    : key_len - n_q + qi;
  }

  // Pre-rotate keys per head once (RoPE), since positions are fixed here.
  std::vector<float> rotated_keys;  // [h, key_len, dh] when RoPE
  if (use_rope) {
    rotated_keys.resize(h_count * key_len * dh);
    ThreadPool::global().parallel_for(
        key_len,
        [&](std::size_t i0, std::size_t i1) {
          for (std::size_t i = i0; i < i1; ++i) {
            for (std::size_t h = 0; h < h_count; ++h) {
              const auto src = cache.key_head(i, h);
              float* dst = rotated_keys.data() + (h * key_len + i) * dh;
              for (std::size_t j = 0; j < dh; ++j) dst[j] = src[j];
              rope_rotate({dst, dh}, key_pos[i], cfg.rope_base);
            }
          }
        },
        /*grain=*/16);
  }

  // ALiBi slopes per head.
  std::vector<double> slopes(h_count, 0.0);
  if (use_alibi) {
    for (std::size_t h = 0; h < h_count; ++h) {
      slopes[h] = alibi_slope(h, h_count);
    }
  }

  float* logits_base = out.logits.data();
  float* probs_base = out.probs.data();
  float* ctx_base = out.context.data();

  ThreadPool::global().parallel_for(
      n_q,
      [&](std::size_t q0, std::size_t q1) {
        std::vector<float> q_head(dh);
        std::vector<float> ctx_head(dh);
        for (std::size_t qi = q0; qi < q1; ++qi) {
          const std::size_t q_orig = q_positions[qi];
          for (std::size_t h = 0; h < h_count; ++h) {
            // Query head vector, rotated if RoPE.
            const float* q_src = q.data() + qi * d + h * dh;
            for (std::size_t j = 0; j < dh; ++j) q_head[j] = q_src[j];
            if (use_rope) {
              rope_rotate({q_head.data(), dh}, q_eff[qi], cfg.rope_base);
            }

            float* lrow = logits_base + (h * n_q + qi) * key_len;
            for (std::size_t i = 0; i < key_len; ++i) {
              // Causality on original order.
              if (cache.original_position(i) > q_orig) {
                lrow[i] = kNegInf;
                continue;
              }
              const float* k_vec =
                  use_rope ? rotated_keys.data() + (h * key_len + i) * dh
                           : cache.key_head(i, h).data();
              float acc = 0.0F;
              for (std::size_t j = 0; j < dh; ++j) acc += q_head[j] * k_vec[j];
              acc *= inv_sqrt_dh;
              if (use_alibi) {
                acc += static_cast<float>(
                    -slopes[h] *
                    static_cast<double>(q_eff[qi] >= key_pos[i]
                                            ? q_eff[qi] - key_pos[i]
                                            : 0));
              }
              lrow[i] = acc;
            }

            // Softmax (masked -inf entries become exactly 0).
            float* prow = probs_base + (h * n_q + qi) * key_len;
            softmax({lrow, key_len}, {prow, key_len});

            // Context for this head.
            for (std::size_t j = 0; j < dh; ++j) ctx_head[j] = 0.0F;
            for (std::size_t i = 0; i < key_len; ++i) {
              const float p = prow[i];
              if (p == 0.0F) continue;
              const auto v_vec = cache.value_head(i, h);
              for (std::size_t j = 0; j < dh; ++j) {
                ctx_head[j] += p * v_vec[j];
              }
            }
            float* ctx_dst = ctx_base + qi * d + h * dh;
            for (std::size_t j = 0; j < dh; ++j) ctx_dst[j] = ctx_head[j];
          }
        }
      },
      /*grain=*/4);

  // Output projection (in place over a copy).
  Tensor merged = out.context;
  matmul(merged.span(), w.wo.span(), out.context.span(), n_q, d, d);
  return out;
}

}  // namespace kf::model
