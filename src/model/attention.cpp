#include "model/attention.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "core/numerics.h"
#include "core/threadpool.h"
#include "core/timing.h"
#include "cpu/kernels.h"
#include "model/positional.h"

namespace kf::model {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/// Effective position of cache slot i under the configured mode.
std::size_t key_position(const ModelConfig& cfg, const kv::KvCache& cache,
                         std::size_t i) {
  return cfg.position_mode == PositionMode::kOriginal
             ? cache.original_position(i)
             : i;
}

/// Appends one freshly projected K/V row, rotating each key head slice by
/// its (immutable) original position first when the storage contract calls
/// for pre-rotated keys. Mutates `k_row` in place.
void append_projected_row(const ModelConfig& cfg, std::span<float> k_row,
                          std::span<const float> v_row, std::size_t position,
                          kv::KvCache& cache) {
  const std::size_t dh = cfg.d_head();
  if (keys_stored_rotated(cfg)) {
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      rope_rotate(k_row.subspan(h * dh, dh), position, cfg.rope_base);
    }
  }
  cache.append(k_row, v_row, position);
}

/// Row-batched append_projected_row over all rows of `k`/`v`.
void append_projected(const ModelConfig& cfg, Tensor& k, const Tensor& v,
                      std::span<const std::size_t> q_positions,
                      kv::KvCache& cache) {
  const std::size_t n_q = k.dim(0);
  for (std::size_t i = 0; i < n_q; ++i) {
    append_projected_row(cfg, k.row(i), v.row(i), q_positions[i], cache);
  }
}

/// The fused per-head attend of the decode fast path: per-head dots over
/// the cache's contiguous key segment, then one pass doing stable softmax
/// and weighted-value accumulation together. The new token's K/V row must
/// already be appended; `q_row` is the un-rotated projected query
/// (d_model floats). Fills out.logits / out.probs and writes the merged
/// head contexts into out.context *without* the W_o projection (callers
/// project, batching the GEMM where possible).
void fused_decode_attend(const ModelConfig& cfg, std::span<const float> q_row,
                         std::size_t q_position, const kv::KvCache& cache,
                         AttentionResult& out) {
  const std::size_t h_count = cfg.n_heads;
  const std::size_t dh = cfg.d_head();
  const std::size_t key_len = cache.size();
  const std::size_t n_segs = cache.segment_count();
  assert(out.key_len == key_len && key_len > 0);

  const bool use_rope = cfg.positional == PositionalKind::kRoPE;
  const bool use_alibi = cfg.positional == PositionalKind::kALiBi;
  const bool stored_rotated = keys_stored_rotated(cfg);
  const float inv_sqrt_dh = 1.0F / std::sqrt(static_cast<float>(dh));

  // The decode token is the newest append, so every cached key is causally
  // visible (original positions ascend) — no masking pass needed.
  assert(cache.original_position(key_len - 1) == q_position);

  const std::size_t q_eff = cfg.position_mode == PositionMode::kOriginal
                                ? q_position
                                : key_len - 1;

  std::vector<float> q_head(dh);
  // Scratch for the one storage mode that cannot pre-rotate (RoPE + kNew).
  std::vector<float> rotated_scratch;
  if (use_rope && !stored_rotated) rotated_scratch.resize(key_len * dh);

  // Per-head segment views handed to the dispatched kernel (POD mirror of
  // kv::KvSegment, resolved fresh per head).
  std::vector<cpu::KvSegmentView> segs(n_segs);

  // ALiBi: effective key positions are head-independent; the bias row is
  // refilled per head (the slope changes) with the exact float-cast
  // expression the fused loop historically applied inline.
  std::vector<std::size_t> kpos;
  std::vector<float> bias;
  if (use_alibi) {
    kpos.resize(key_len);
    for (std::size_t i = 0; i < key_len; ++i) {
      kpos[i] = key_position(cfg, cache, i);
    }
    bias.resize(key_len);
  }

  const cpu::DecodeAttendFn attend = cpu::decode_attend_stub.get();

  for (std::size_t h = 0; h < h_count; ++h) {
    const float* q_src = q_row.data() + h * dh;
    for (std::size_t j = 0; j < dh; ++j) q_head[j] = q_src[j];
    if (use_rope) rope_rotate({q_head.data(), dh}, q_eff, cfg.rope_base);

    for (std::size_t s = 0; s < n_segs; ++s) {
      const kv::KvSegment seg = cache.segment(h, s);
      segs[s] = {seg.keys, seg.values, seg.first, seg.count};
    }

    // RoPE + kNew cannot pre-rotate stored keys: rotate a contiguous
    // scratch copy and let the kernel dot against it (V still streams
    // from the segments). Every other mode dots the segments directly —
    // per-row dots are independent, so segmentation never changes the
    // arithmetic and paged/contiguous caches stay bit-exact.
    const float* keys_override = nullptr;
    if (use_rope && !stored_rotated) {
      for (std::size_t s = 0; s < n_segs; ++s) {
        const kv::KvSegment seg = cache.segment(h, s);
        for (std::size_t r = 0; r < seg.count; ++r) {
          const std::size_t i = seg.first + r;
          float* dst = rotated_scratch.data() + i * dh;
          for (std::size_t j = 0; j < dh; ++j) dst[j] = seg.keys[r * dh + j];
          rope_rotate({dst, dh}, key_position(cfg, cache, i), cfg.rope_base);
        }
      }
      keys_override = rotated_scratch.data();
    }

    const float* bias_ptr = nullptr;
    if (use_alibi) {
      const double slope = alibi_slope(h, h_count);
      for (std::size_t i = 0; i < key_len; ++i) {
        bias[i] = static_cast<float>(
            -slope * static_cast<double>(q_eff - kpos[i]));
      }
      bias_ptr = bias.data();
    }

    // Dispatched fused kernel: per-row QK dots over the segment streams,
    // scale/bias, then one pass of stable softmax + weighted-V accumulate.
    attend(segs.data(), n_segs, q_head.data(), dh, inv_sqrt_dh, bias_ptr,
           keys_override, out.logits.data() + h * key_len,
           out.probs.data() + h * key_len, out.context.data() + h * dh,
           key_len);
  }
}

/// Sizes one decode-step AttentionResult for the current cache length.
void init_decode_result(const ModelConfig& cfg, std::size_t key_len,
                        AttentionResult& out) {
  out.n_q = 1;
  out.key_len = key_len;
  out.context = Tensor({1, cfg.d_model});
  out.logits = Tensor({cfg.n_heads, 1, key_len});
  out.probs = Tensor({cfg.n_heads, 1, key_len});
}

}  // namespace

AttentionResult attention_forward_general(
    const ModelConfig& cfg, const LayerWeights& w, const Tensor& x,
    std::span<const std::size_t> q_positions, kv::KvCache& cache,
    AttentionTimings* timings) {
  const std::size_t n_q = x.dim(0);
  const std::size_t d = cfg.d_model;
  const std::size_t h_count = cfg.n_heads;
  const std::size_t dh = cfg.d_head();
  assert(x.dim(1) == d && q_positions.size() == n_q);

  // Project Q, K, V for all new rows at once.
  double t0 = timings != nullptr ? now_seconds() : 0.0;
  Tensor q({n_q, d});
  Tensor k({n_q, d});
  Tensor v({n_q, d});
  matmul(x.span(), w.wq.span(), q.span(), n_q, d, d);
  matmul(x.span(), w.wk.span(), k.span(), n_q, d, d);
  matmul(x.span(), w.wv.span(), v.span(), n_q, d, d);
  if (timings != nullptr) {
    timings->project_seconds += now_seconds() - t0;
    t0 = now_seconds();  // append counts toward attend on every path
  }

  append_projected(cfg, k, v, q_positions, cache);

  const std::size_t key_len = cache.size();
  AttentionResult out;
  out.n_q = n_q;
  out.key_len = key_len;
  out.context = Tensor({n_q, d});
  out.logits = Tensor({h_count, n_q, key_len});
  out.probs = Tensor({h_count, n_q, key_len});

  const bool use_rope = cfg.positional == PositionalKind::kRoPE;
  const bool use_alibi = cfg.positional == PositionalKind::kALiBi;
  const bool stored_rotated = keys_stored_rotated(cfg);
  const float inv_sqrt_dh = 1.0F / std::sqrt(static_cast<float>(dh));

  // Per-(head, index) K/V row pointers, resolved once from the cache's
  // segment list (one segment per head for the contiguous arena, one per
  // block for a paged cache) so the parallel loops below never pay a
  // virtual lookup per row.
  std::vector<const float*> key_at(h_count * key_len);
  std::vector<const float*> value_at(h_count * key_len);
  {
    const std::size_t n_segs = cache.segment_count();
    for (std::size_t h = 0; h < h_count; ++h) {
      for (std::size_t s = 0; s < n_segs; ++s) {
        const kv::KvSegment seg = cache.segment(h, s);
        for (std::size_t r = 0; r < seg.count; ++r) {
          key_at[h * key_len + seg.first + r] = seg.keys + r * dh;
          value_at[h * key_len + seg.first + r] = seg.values + r * dh;
        }
      }
    }
  }

  // Effective key positions (fixed for this call).
  std::vector<std::size_t> key_pos(key_len);
  for (std::size_t i = 0; i < key_len; ++i) {
    key_pos[i] = key_position(cfg, cache, i);
  }
  // Effective query positions. Queries occupy the trailing n_q cache slots.
  std::vector<std::size_t> q_eff(n_q);
  for (std::size_t qi = 0; qi < n_q; ++qi) {
    q_eff[qi] = cfg.position_mode == PositionMode::kOriginal
                    ? q_positions[qi]
                    : key_len - n_q + qi;
  }

  // RoPE with mutable effective positions (PositionMode::kNew) is the one
  // case where keys cannot be stored pre-rotated: rotate a scratch copy
  // for this call. Under kOriginal the cache already holds rotated keys.
  std::vector<float> rotated_keys;  // [h, key_len, dh]
  if (use_rope && !stored_rotated) {
    rotated_keys.resize(h_count * key_len * dh);
    ThreadPool::global().parallel_for(
        key_len,
        [&](std::size_t i0, std::size_t i1) {
          for (std::size_t i = i0; i < i1; ++i) {
            for (std::size_t h = 0; h < h_count; ++h) {
              const float* src = key_at[h * key_len + i];
              float* dst = rotated_keys.data() + (h * key_len + i) * dh;
              for (std::size_t j = 0; j < dh; ++j) dst[j] = src[j];
              rope_rotate({dst, dh}, key_pos[i], cfg.rope_base);
            }
          }
        },
        /*grain=*/16);
  }

  // ALiBi slopes per head.
  std::vector<double> slopes(h_count, 0.0);
  if (use_alibi) {
    for (std::size_t h = 0; h < h_count; ++h) {
      slopes[h] = alibi_slope(h, h_count);
    }
  }

  float* logits_base = out.logits.data();
  float* probs_base = out.probs.data();
  float* ctx_base = out.context.data();

  ThreadPool::global().parallel_for(
      n_q,
      [&](std::size_t q0, std::size_t q1) {
        std::vector<float> q_head(dh);
        std::vector<float> ctx_head(dh);
        for (std::size_t qi = q0; qi < q1; ++qi) {
          const std::size_t q_orig = q_positions[qi];
          for (std::size_t h = 0; h < h_count; ++h) {
            // Query head vector, rotated if RoPE.
            const float* q_src = q.data() + qi * d + h * dh;
            for (std::size_t j = 0; j < dh; ++j) q_head[j] = q_src[j];
            if (use_rope) {
              rope_rotate({q_head.data(), dh}, q_eff[qi], cfg.rope_base);
            }

            float* lrow = logits_base + (h * n_q + qi) * key_len;
            for (std::size_t i = 0; i < key_len; ++i) {
              // Causality on original order.
              if (cache.original_position(i) > q_orig) {
                lrow[i] = kNegInf;
                continue;
              }
              const float* k_vec =
                  use_rope && !stored_rotated
                      ? rotated_keys.data() + (h * key_len + i) * dh
                      : key_at[h * key_len + i];
              float acc = 0.0F;
              for (std::size_t j = 0; j < dh; ++j) acc += q_head[j] * k_vec[j];
              acc *= inv_sqrt_dh;
              if (use_alibi) {
                acc += static_cast<float>(
                    -slopes[h] *
                    static_cast<double>(q_eff[qi] >= key_pos[i]
                                            ? q_eff[qi] - key_pos[i]
                                            : 0));
              }
              lrow[i] = acc;
            }

            // Softmax (masked -inf entries become exactly 0).
            float* prow = probs_base + (h * n_q + qi) * key_len;
            softmax({lrow, key_len}, {prow, key_len});

            // Context for this head.
            for (std::size_t j = 0; j < dh; ++j) ctx_head[j] = 0.0F;
            for (std::size_t i = 0; i < key_len; ++i) {
              const float p = prow[i];
              if (p == 0.0F) continue;
              const float* v_vec = value_at[h * key_len + i];
              for (std::size_t j = 0; j < dh; ++j) {
                ctx_head[j] += p * v_vec[j];
              }
            }
            float* ctx_dst = ctx_base + qi * d + h * dh;
            for (std::size_t j = 0; j < dh; ++j) ctx_dst[j] = ctx_head[j];
          }
        }
      },
      /*grain=*/4);
  if (timings != nullptr) {
    timings->attend_seconds += now_seconds() - t0;
    t0 = now_seconds();
  }

  // Output projection (in place over a copy).
  Tensor merged = out.context;
  matmul(merged.span(), w.wo.span(), out.context.span(), n_q, d, d);
  if (timings != nullptr) timings->project_seconds += now_seconds() - t0;
  return out;
}

AttentionResult attention_decode(const ModelConfig& cfg,
                                 const LayerWeights& w, const Tensor& x,
                                 std::size_t q_position, kv::KvCache& cache,
                                 AttentionTimings* timings) {
  assert(x.dim(0) == 1);
  const std::size_t d = cfg.d_model;
  assert(x.dim(1) == d);

  // Single-row QKV projection: matvec-shaped, no blocked-matmul overhead.
  double t0 = timings != nullptr ? now_seconds() : 0.0;
  Tensor q({1, d});
  Tensor k({1, d});
  Tensor v({1, d});
  vecmat(x.row(0), w.wq.span(), q.row(0), d, d);
  vecmat(x.row(0), w.wk.span(), k.row(0), d, d);
  vecmat(x.row(0), w.wv.span(), v.row(0), d, d);
  if (timings != nullptr) timings->project_seconds += now_seconds() - t0;

  // Append counts toward attend_seconds, matching the batched path (which
  // fuses append + attend in one parallel region), so phase breakdowns are
  // comparable across batch sizes.
  if (timings != nullptr) t0 = now_seconds();
  append_projected_row(cfg, k.row(0), v.row(0), q_position, cache);

  AttentionResult out;
  init_decode_result(cfg, cache.size(), out);

  fused_decode_attend(cfg, q.row(0), q_position, cache, out);
  if (timings != nullptr) {
    timings->attend_seconds += now_seconds() - t0;
    t0 = now_seconds();
  }

  // Output projection, matvec-shaped.
  Tensor merged = out.context;
  vecmat(merged.row(0), w.wo.span(), out.context.row(0), d, d);
  if (timings != nullptr) timings->project_seconds += now_seconds() - t0;
  return out;
}

std::vector<AttentionResult> attention_decode_batch(
    const ModelConfig& cfg, const LayerWeights& w, const Tensor& x,
    std::span<const DecodeBatchSlot> slots, AttentionTimings* timings) {
  const std::size_t b_count = slots.size();
  assert(x.dim(0) == b_count && x.dim(1) == cfg.d_model);
  std::vector<AttentionResult> results(b_count);
  if (b_count == 0) return results;

  // A batch of one is exactly a single-sequence decode step: route through
  // the standard dispatch so cfg.decode_fast_path keeps its meaning and
  // batch-of-1 serving stays bit-identical to the single-sequence loop.
  if (b_count == 1) {
    results[0] = attention_forward(cfg, w, x, {&slots[0].q_position, 1},
                                   *slots[0].cache, timings);
    return results;
  }

  const std::size_t d = cfg.d_model;

  // With the fast path disabled every sequence must run the same general
  // kernel it would use solo — otherwise a sequence's kernel (and thus its
  // ~1e-5-level numerics) would flip with batch composition, breaking the
  // batch-independence guarantee. Baseline/debug config, so per-row is fine.
  if (!cfg.decode_fast_path) {
    Tensor row({1, d});
    for (std::size_t b = 0; b < b_count; ++b) {
      const auto src = x.row(b);
      std::copy(src.begin(), src.end(), row.row(0).begin());
      results[b] = attention_forward(cfg, w, row, {&slots[b].q_position, 1},
                                     *slots[b].cache, timings);
    }
    return results;
  }

  // One GEMM per projection across the whole batch — the B×d_model matmul
  // that replaces B separate vecmats. Each output row accumulates in the
  // same order as the single-row path, so per-sequence numerics are
  // unchanged by batching.
  double t0 = timings != nullptr ? now_seconds() : 0.0;
  Tensor q({b_count, d});
  Tensor k({b_count, d});
  Tensor v({b_count, d});
  matmul(x.span(), w.wq.span(), q.span(), b_count, d, d);
  matmul(x.span(), w.wk.span(), k.span(), b_count, d, d);
  matmul(x.span(), w.wv.span(), v.span(), b_count, d, d);
  if (timings != nullptr) {
    timings->project_seconds += now_seconds() - t0;
    t0 = now_seconds();
  }

  // Per-sequence append + fused attend, parallel across sequences: every
  // slot touches only its own cache and its own result, so the loop is
  // embarrassingly parallel (callers guarantee distinct caches).
  ThreadPool::global().parallel_for(
      b_count,
      [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
          kv::KvCache& cache = *slots[b].cache;
          append_projected_row(cfg, k.row(b), v.row(b), slots[b].q_position,
                               cache);
          init_decode_result(cfg, cache.size(), results[b]);
          fused_decode_attend(cfg, q.row(b), slots[b].q_position, cache,
                              results[b]);
        }
      },
      /*grain=*/1);
  if (timings != nullptr) {
    timings->attend_seconds += now_seconds() - t0;
    t0 = now_seconds();
  }

  // Batched output projection: gather the merged head contexts, one GEMM
  // against W_o, scatter back per sequence.
  Tensor merged({b_count, d});
  for (std::size_t b = 0; b < b_count; ++b) {
    const auto src = results[b].context.row(0);
    std::copy(src.begin(), src.end(), merged.row(b).begin());
  }
  Tensor projected({b_count, d});
  matmul(merged.span(), w.wo.span(), projected.span(), b_count, d, d);
  for (std::size_t b = 0; b < b_count; ++b) {
    const auto src = projected.row(b);
    std::copy(src.begin(), src.end(), results[b].context.row(0).begin());
  }
  if (timings != nullptr) timings->project_seconds += now_seconds() - t0;
  return results;
}

AttentionResult attention_forward(const ModelConfig& cfg,
                                  const LayerWeights& w, const Tensor& x,
                                  std::span<const std::size_t> q_positions,
                                  kv::KvCache& cache,
                                  AttentionTimings* timings) {
  if (x.dim(0) == 1 && cfg.decode_fast_path) {
    return attention_decode(cfg, w, x, q_positions[0], cache, timings);
  }
  return attention_forward_general(cfg, w, x, q_positions, cache, timings);
}

}  // namespace kf::model
