#include "model/config.h"

#include <stdexcept>

namespace kf::model {

std::string to_string(PositionalKind kind) {
  switch (kind) {
    case PositionalKind::kRoPE: return "rope";
    case PositionalKind::kALiBi: return "alibi";
    case PositionalKind::kLearned: return "learned";
  }
  return "unknown";
}

std::string to_string(PositionMode mode) {
  switch (mode) {
    case PositionMode::kOriginal: return "org_pos";
    case PositionMode::kNew: return "new_pos";
  }
  return "unknown";
}

void ModelConfig::validate() const {
  if (vocab_size < 8) throw std::invalid_argument("vocab_size too small");
  if (d_model == 0 || n_heads == 0 || n_layers == 0 || d_ff == 0) {
    throw std::invalid_argument("model dimensions must be positive");
  }
  if (d_model % n_heads != 0) {
    throw std::invalid_argument("d_model must be divisible by n_heads");
  }
  if (positional == PositionalKind::kRoPE && d_head() % 2 != 0) {
    throw std::invalid_argument("RoPE requires an even head dimension");
  }
  if (max_seq_len == 0) throw std::invalid_argument("max_seq_len must be > 0");
  if (content_logit_scale <= 0.0) {
    throw std::invalid_argument("content_logit_scale must be positive");
  }
}

ModelConfig ModelConfig::gptj_like() {
  ModelConfig c;
  c.name = "gptj-like";
  c.positional = PositionalKind::kRoPE;
  c.vocab_size = 512;
  c.d_model = 128;
  c.n_layers = 4;
  c.n_heads = 4;
  c.d_ff = 256;
  c.weight_seed = 1001;
  return c;
}

ModelConfig ModelConfig::cerebras_like() {
  ModelConfig c;
  c.name = "cerebras-like";
  c.positional = PositionalKind::kLearned;
  c.vocab_size = 512;
  c.d_model = 128;
  c.n_layers = 4;
  c.n_heads = 4;
  c.d_ff = 256;
  c.weight_seed = 2002;
  return c;
}

ModelConfig ModelConfig::mpt_like() {
  ModelConfig c;
  c.name = "mpt-like";
  c.positional = PositionalKind::kALiBi;
  c.vocab_size = 512;
  c.d_model = 128;
  c.n_layers = 4;
  c.n_heads = 8;
  c.d_ff = 256;
  c.weight_seed = 3003;
  return c;
}

ModelConfig ModelConfig::mpt_storywriter_like() {
  ModelConfig c = mpt_like();
  c.name = "mpt-storywriter-like";
  c.max_seq_len = 65536;
  c.weight_seed = 3004;
  return c;
}

}  // namespace kf::model
