#include "model/positional.h"

#include <cassert>
#include <cmath>

namespace kf::model {

void rope_rotate(std::span<float> vec, std::size_t pos, double base) {
  assert(vec.size() % 2 == 0);
  const std::size_t d = vec.size();
  const double p = static_cast<double>(pos);
  for (std::size_t i = 0; i < d; i += 2) {
    const double freq =
        std::pow(base, -static_cast<double>(i) / static_cast<double>(d));
    const double theta = p * freq;
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    const double x0 = vec[i];
    const double x1 = vec[i + 1];
    vec[i] = static_cast<float>(x0 * c - x1 * s);
    vec[i + 1] = static_cast<float>(x0 * s + x1 * c);
  }
}

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

double slope_for_power_of_two(std::size_t head, std::size_t n_heads) {
  // 2^(-8 (head+1) / n_heads)
  const double exponent =
      -8.0 * static_cast<double>(head + 1) / static_cast<double>(n_heads);
  return std::pow(2.0, exponent);
}

}  // namespace

double alibi_slope(std::size_t head, std::size_t n_heads) {
  assert(head < n_heads);
  if (is_power_of_two(n_heads)) {
    return slope_for_power_of_two(head, n_heads);
  }
  // Standard ALiBi fallback: take the slopes for the next power of two
  // below n_heads, then interleave slopes of the doubled set.
  std::size_t lower = 1;
  while (lower * 2 <= n_heads) lower *= 2;
  if (head < lower) return slope_for_power_of_two(head, lower);
  const std::size_t j = head - lower;
  return slope_for_power_of_two(2 * j, 2 * lower);
}

double alibi_bias(std::size_t head, std::size_t n_heads, std::size_t q_pos,
                  std::size_t k_pos) {
  const double distance = q_pos >= k_pos
                              ? static_cast<double>(q_pos - k_pos)
                              : -static_cast<double>(k_pos - q_pos);
  return -alibi_slope(head, n_heads) * distance;
}

}  // namespace kf::model
