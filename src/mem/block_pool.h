// Paged KV memory: a sharded pool of fixed-size token blocks.
//
// Keyformer's serving claim is that discarding non-key tokens turns KV
// memory into admission capacity — but that only works if evicted memory
// actually returns to a shared store other sequences can draw from. The
// BlockPool is that store: each shard owns an arena carved into fixed-size
// blocks of `block_tokens` tokens, head-major inside the block
// ([n_heads][block_tokens][d_head] for K, then the same for V), handed out
// through a per-shard free list. PagedKvCache chains blocks per layer;
// compaction and sequence retirement free whole blocks back to the shard.
//
// Two accounting layers, both per shard:
//   - used blocks: physically allocated to caches right now;
//   - reserved blocks: the BatchScheduler's admission claims. Admission
//     reserves a sequence's worst-case block demand before any token is
//     appended, so `capacity_blocks` is an exact memory cap — a sequence
//     that was admitted can always allocate what it was charged for
//     (used <= reserved <= capacity).
//
// Blocks are reference counted so one immutable chain can back several
// readers (the prefix cache shares a prompt's block chain across every
// sequence carrying that prompt): allocate() hands a block out at
// refcount 1, retain() adds a reader, release() drops one, and the block
// only returns to the free list at refcount 0. `used` counts *physical*
// blocks (refcount >= 1), so sharing N ways still charges the pool once.
// Shards model separate memory domains (the ROADMAP's cache-sharding
// item): placement picks a shard per sequence, eviction and allocation run
// per shard, and aggregate stats expose utilization, fragmentation inputs,
// and high-water marks.
//
// Thread safety: allocate/free/reserve/unreserve/stats take the shard
// mutex (sequences append concurrently in the batched decode step); the
// guarded state is annotated for clang's -Wthread-safety, which proves
// every access goes through it. Block payload pointers are stable for
// the lifetime of the pool: arenas grow by fixed-size slabs into a
// pre-sized directory of atomically published base pointers, never by
// reallocating, so keys()/values() read blocks they own without locks
// (acquire loads pair with the release store that carved the slab).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/aligned.h"
#include "core/annotations.h"
#include "core/mutex.h"

namespace kf::obs {
class Counter;
class MetricsRegistry;
}

namespace kf::mem {

struct BlockPoolConfig {
  std::size_t n_shards = 1;
  /// Hard cap per shard; 0 = unbounded (slabs grow on demand up to the
  /// slab-directory limit).
  std::size_t blocks_per_shard = 0;
  /// Tokens per block.
  std::size_t block_tokens = 16;
  /// Row geometry shared by every cache built on this pool.
  std::size_t n_heads = 0;
  std::size_t d_head = 0;
  /// Observability registry for allocation/reservation counters
  /// (pool.allocs, pool.alloc_failures, pool.reserves,
  /// pool.reserve_failures, pool.emergency_blocks); null disables them.
  /// Must outlive the pool.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Handle to one block: the owning shard and its block id within it.
struct BlockRef {
  std::uint32_t shard = 0;
  std::uint32_t id = 0;
};

/// Which pool operation a fault-injection decision is gating.
enum class FaultOp {
  kReserve,   ///< try_reserve: an admission claim
  kAllocate,  ///< try_allocate: handing out a physical block
};

/// Failure-injection hook for chaos testing: when installed on a pool,
/// should_fail() is consulted on the success path of try_reserve and
/// try_allocate, and a true verdict makes the operation report failure
/// without touching pool state. Implementations must be thread-safe —
/// the pool calls them under a shard mutex from concurrently appending
/// sequences — and should be seeded/deterministic so chaos runs replay
/// (see serve::SeededFaultInjector).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual bool should_fail(FaultOp op, std::size_t shard) = 0;
};

/// Point-in-time counters for one shard.
struct ShardStats {
  std::size_t capacity_blocks = 0;   ///< configured cap; 0 = unbounded
  std::size_t allocated_blocks = 0;  ///< slab-backed blocks ever created
  std::size_t used_blocks = 0;       ///< currently handed out
  std::size_t reserved_blocks = 0;   ///< scheduler admission claims
  std::size_t peak_used_blocks = 0;
  std::size_t peak_reserved_blocks = 0;
};

/// Aggregate of every shard's counters. The peak_* fields are true
/// *simultaneous* pool-wide high-water marks (tracked globally), not sums
/// of per-shard peaks that may have occurred at different times.
struct PoolStats {
  std::size_t n_shards = 0;
  std::size_t capacity_blocks = 0;  ///< 0 when any shard is unbounded
  std::size_t allocated_blocks = 0;
  std::size_t used_blocks = 0;
  std::size_t reserved_blocks = 0;
  std::size_t peak_used_blocks = 0;
  std::size_t peak_reserved_blocks = 0;
};

class BlockPool {
 public:
  explicit BlockPool(BlockPoolConfig cfg);

  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  const BlockPoolConfig& config() const noexcept { return cfg_; }
  std::size_t n_shards() const noexcept { return cfg_.n_shards; }
  std::size_t block_tokens() const noexcept { return cfg_.block_tokens; }

  /// Floats in one block's K (or V) section: n_heads*block_tokens*d_head.
  std::size_t section_floats() const noexcept { return section_floats_; }

  /// Blocks needed to hold `tokens` cache tokens (one layer's demand).
  std::size_t blocks_for_tokens(std::size_t tokens) const noexcept {
    return (tokens + cfg_.block_tokens - 1) / cfg_.block_tokens;
  }

  /// Takes one block from `shard`'s free list (growing the arena by a slab
  /// when the free list is dry and capacity allows) at refcount 1. Throws
  /// std::runtime_error when the shard is exhausted — with correct
  /// scheduler reservations this never fires.
  BlockRef allocate(std::size_t shard);

  /// Non-throwing allocate: nullopt when the shard is exhausted or the
  /// installed fault injector vetoes the allocation. The variant callers
  /// on no-throw paths (appends inside the parallel decode step, where an
  /// escaping exception would terminate the process) must use.
  std::optional<BlockRef> try_allocate(std::size_t shard);

  /// Adds a reference to a live block (a new reader of a shared chain).
  void retain(BlockRef ref);

  /// Drops one reference; at refcount 0 the block returns to its shard's
  /// free list (and stops counting as used).
  void release(BlockRef ref);

  /// Alias of release(): the sole-owner free of the pre-refcount API.
  void free(BlockRef ref) { release(ref); }

  /// Current reference count of a block (0 when not allocated).
  std::uint32_t refcount(BlockRef ref) const;

  /// Claims `blocks` of `shard`'s capacity for a sequence about to run.
  /// False (and no change) when the claim would exceed capacity.
  bool try_reserve(std::size_t shard, std::size_t blocks);

  /// Releases part of an earlier claim.
  void unreserve(std::size_t shard, std::size_t blocks);

  /// Capacity not yet claimed by reservations; SIZE_MAX when unbounded.
  std::size_t unreserved_blocks(std::size_t shard) const;

  /// K rows of one head inside a block: [block_tokens, d_head] row-major.
  float* keys(BlockRef ref, std::size_t head) noexcept;
  const float* keys(BlockRef ref, std::size_t head) const noexcept;
  /// V rows of one head inside a block: [block_tokens, d_head] row-major.
  float* values(BlockRef ref, std::size_t head) noexcept;
  const float* values(BlockRef ref, std::size_t head) const noexcept;

  ShardStats shard_stats(std::size_t shard) const;
  PoolStats stats() const;

  /// Resets peak_used/peak_reserved to current levels (start of a run).
  void reset_peaks();

  /// Installs (nullptr: clears) the fault injector consulted by
  /// try_reserve/try_allocate. The injector must outlive its installation;
  /// atomic, so it can be swapped while sequences run.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_.store(injector, std::memory_order_release);
  }

  /// Observability hook for PagedKvCache's emergency-heap fallback: a
  /// cache that could not get a pool block and fell back to owned heap
  /// memory reports it here (the pool never sees that allocation
  /// otherwise). No-op without a metrics registry.
  void note_emergency_block() noexcept;

 private:
  /// Blocks per arena slab: small enough that an unbounded shard does not
  /// over-commit, large enough that slab allocation stays off the hot path.
  static constexpr std::size_t kBlocksPerSlab = 64;
  /// Slab-directory entries per shard when unbounded (the directory is
  /// pre-sized so block pointers never move).
  static constexpr std::size_t kUnboundedSlabs = 4096;

  struct Shard {
    mutable Mutex mu;
    /// Owning slab arenas (64-byte aligned, see core/aligned.h), filled
    /// in order under `mu`. Payload access goes through `slab_bases`,
    /// not this vector.
    std::vector<AlignedFloatArray> slabs KF_GUARDED_BY(mu);
    /// Lock-free payload directory: slab_bases[i] is stored (release)
    /// exactly once when slab i is carved and never changes, so
    /// keys()/values() load (acquire) without the shard mutex. Pre-sized
    /// in the constructor (`slab_slots` entries); entries never move.
    std::unique_ptr<std::atomic<float*>[]> slab_bases;
    std::size_t slab_slots = 0;  ///< immutable after construction
    std::vector<std::uint32_t> free_list KF_GUARDED_BY(mu);
    /// live[id] is true while block id is handed out — the double-free /
    /// free-of-never-allocated guard (a duplicated id on the free list
    /// would silently alias two caches onto one payload).
    std::vector<bool> live KF_GUARDED_BY(mu);
    /// refs[id]: readers of block id (0 when not allocated). A block
    /// returns to the free list only when the last reader releases it.
    std::vector<std::uint32_t> refs KF_GUARDED_BY(mu);
    std::size_t created KF_GUARDED_BY(mu) = 0;  ///< blocks carved so far
    std::size_t used KF_GUARDED_BY(mu) = 0;
    std::size_t reserved KF_GUARDED_BY(mu) = 0;
    std::size_t peak_used KF_GUARDED_BY(mu) = 0;
    std::size_t peak_reserved KF_GUARDED_BY(mu) = 0;
  };

  /// Carves the next slab arena out of `sh` and pushes its blocks onto
  /// the free list. False when the shard is at capacity or the slab
  /// directory is full (the shard is exhausted).
  bool carve_slab_locked(Shard& sh) KF_REQUIRES(sh.mu);

  float* block_base(BlockRef ref) const noexcept;
  /// CAS-max of `peak` against `value` (pool-wide peaks are updated
  /// outside any single shard's mutex).
  static void raise_peak(std::atomic<std::size_t>& peak, std::size_t value);

  BlockPoolConfig cfg_;
  std::size_t section_floats_ = 0;
  std::size_t block_floats_ = 0;  ///< K + V sections
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Pool-wide counters for true simultaneous high-water marks.
  std::atomic<std::size_t> total_used_{0};
  std::atomic<std::size_t> total_reserved_{0};
  std::atomic<std::size_t> peak_total_used_{0};
  std::atomic<std::size_t> peak_total_reserved_{0};
  /// Chaos hook; null in production. Read with acquire on the reserve/
  /// allocate paths, swapped with release by set_fault_injector.
  std::atomic<FaultInjector*> injector_{nullptr};
  /// Registry-owned counters (null when cfg_.metrics is null): sharded
  /// relaxed adds, cheap enough for the allocate hot path.
  obs::Counter* ctr_allocs_ = nullptr;
  obs::Counter* ctr_alloc_failures_ = nullptr;
  obs::Counter* ctr_reserves_ = nullptr;
  obs::Counter* ctr_reserve_failures_ = nullptr;
  obs::Counter* ctr_emergency_ = nullptr;
};

}  // namespace kf::mem
