// Paged implementation of the kv::KvCache surface: one layer's K/V rows
// live in a chain of fixed-size token blocks allocated from a BlockPool
// shard, instead of a private contiguous arena.
//
// Layout inside each block is the same head-major [n_heads][block_tokens]
// [d_head] the contiguous cache uses per segment, so the decode kernels
// stream per-block runs with identical per-row arithmetic — the paged and
// contiguous paths are bit-exact (pinned by the parity property tests).
//
// Chain invariant: blocks_.size() == ceil(size() / block_tokens) — the
// tail block is the only partially filled one and a fully-drained block is
// returned to the pool immediately (compact frees emptied tail blocks,
// clear and the destructor free everything). Freed memory therefore goes
// back to the *shared* shard free list, where the scheduler's admission
// reservations can hand it to another sequence — the mechanism that turns
// Keyformer's discarded tokens into serving capacity.
#pragma once

#include <vector>

#include "kvcache/kv_cache.h"
#include "mem/block_pool.h"

namespace kf::mem {

class PagedKvCache final : public kv::KvCache {
 public:
  /// Builds an empty cache drawing blocks from `pool`'s shard `shard`.
  /// Geometry (n_heads/d_head/block_tokens) comes from the pool config.
  PagedKvCache(BlockPool& pool, std::size_t shard);
  ~PagedKvCache() override;

  PagedKvCache(const PagedKvCache&) = delete;
  PagedKvCache& operator=(const PagedKvCache&) = delete;

  std::size_t shard() const noexcept { return shard_; }
  /// Blocks currently held (== ceil(size()/block_tokens)).
  std::size_t blocks_held() const noexcept { return blocks_.size(); }
  std::size_t block_tokens() const noexcept { return pool_.block_tokens(); }

  std::span<const float> key_head(std::size_t idx,
                                  std::size_t head) const override;
  std::span<const float> value_head(std::size_t idx,
                                    std::size_t head) const override;

  std::size_t segment_count() const noexcept override {
    return blocks_.size();
  }
  kv::KvSegment segment(std::size_t head, std::size_t s) const override;

 protected:
  void append_rows(std::span<const float> k_row,
                   std::span<const float> v_row) override;
  void compact_rows(std::span<const std::size_t> keep) override;
  void clear_rows() override;

 private:
  void free_blocks_beyond(std::size_t live_tokens);

  BlockPool& pool_;
  std::size_t shard_;
  std::vector<BlockRef> blocks_;
};

}  // namespace kf::mem
