// Paged implementation of the kv::KvCache surface: one layer's K/V rows
// live in a chain of fixed-size token blocks allocated from a BlockPool
// shard, instead of a private contiguous arena.
//
// Layout inside each block is the same head-major [n_heads][block_tokens]
// [d_head] the contiguous cache uses per segment, so the decode kernels
// stream per-block runs with identical per-row arithmetic — the paged and
// contiguous paths are bit-exact (pinned by the parity property tests).
//
// Chain invariant: blocks_.size() == ceil(size() / block_tokens) — the
// tail block is the only partially filled one and a fully-drained block is
// returned to the pool immediately (compact frees emptied tail blocks,
// clear and the destructor free everything). Freed memory therefore goes
// back to the *shared* shard free list, where the scheduler's admission
// reservations can hand it to another sequence — the mechanism that turns
// Keyformer's discarded tokens into serving capacity.
//
// No-throw growth: append_rows and the copy-on-write path run inside the
// batched decode step's parallel_for workers, where an escaping exception
// would take the whole process down — so block acquisition never throws.
// When the pool cannot hand out a block (shard exhausted mid-decode, or a
// chaos-test FaultInjector vetoed it), the cache falls back to a private
// heap "emergency block" (sentinel shard id, same payload layout) and
// latches alloc_failed(). The step's numerics stay exact — the rows are
// real, just not pool-backed — but the sequence is now over its physical
// budget, so the engine preempts it at the next step boundary and resumes
// it by recompute once a reservation is granted again.
//
// Copy-on-write sharing: adopt_prefix() lets an empty cache take over an
// immutable block chain (a prompt prefix another sequence already
// prefilled, handed out by the mem::PrefixIndex) by retaining each block
// instead of copying it. Shared blocks are read exactly like owned ones;
// the first *mutation* that would touch one — an append landing in a
// shared tail slot, or a compact gather writing into a shared destination
// block — copies that block into a freshly allocated private block first,
// so per-sequence score-based eviction keeps working over shared storage
// without ever perturbing the other readers. Releasing (clear, compact
// drains, destructor) decrements refcounts; the chain itself survives as
// long as the index or any reader holds it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "kvcache/kv_cache.h"
#include "mem/block_pool.h"

namespace kf::mem {

class PagedKvCache final : public kv::KvCache {
 public:
  /// Builds an empty cache drawing blocks from `pool`'s shard `shard`.
  /// Geometry (n_heads/d_head/block_tokens) comes from the pool config.
  PagedKvCache(BlockPool& pool, std::size_t shard);
  ~PagedKvCache() override;

  PagedKvCache(const PagedKvCache&) = delete;
  PagedKvCache& operator=(const PagedKvCache&) = delete;

  std::size_t shard() const noexcept { return shard_; }
  /// Blocks currently held (== ceil(size()/block_tokens)).
  std::size_t blocks_held() const noexcept { return blocks_.size(); }
  std::size_t block_tokens() const noexcept { return pool_.block_tokens(); }

  /// The block chain backing this cache, in token order.
  std::span<const BlockRef> blocks() const noexcept { return blocks_; }

  /// Adopts `chain` as this cache's first rows: retains every block
  /// (copy-on-write — nothing is copied until a mutation lands in one) and
  /// seeds positions 0..tokens-1 plus per-head accumulated scores. The
  /// cache must be empty and `tokens` a whole number of blocks, so
  /// subsequent appends open fresh private blocks.
  void adopt_prefix(std::span<const BlockRef> chain, std::size_t tokens,
                    std::span<const std::vector<double>> scores);

  /// Marks the first `blocks` chain blocks as shared: another reader (the
  /// prefix index) just retained them, so future mutations must
  /// copy-on-write. The inverse direction of adopt_prefix — the *donor*
  /// side of sharing.
  void mark_shared_prefix(std::size_t blocks);

  /// Blocks of this chain still shared (refcounted with other readers).
  std::size_t shared_blocks() const noexcept;

  /// Blocks privately copied by the copy-on-write path so far.
  std::size_t cow_copies() const noexcept { return cow_copies_; }

  /// True once any block acquisition fell back to emergency heap memory:
  /// this cache holds rows the pool never granted, so its sequence must be
  /// preempted (or retired) rather than keep decoding past the cap.
  bool alloc_failed() const noexcept { return alloc_failures_ > 0; }
  /// Emergency fallbacks taken so far.
  std::size_t alloc_failures() const noexcept { return alloc_failures_; }

  std::span<const float> key_head(std::size_t idx,
                                  std::size_t head) const override;
  std::span<const float> value_head(std::size_t idx,
                                    std::size_t head) const override;

  std::size_t segment_count() const noexcept override {
    return blocks_.size();
  }
  kv::KvSegment segment(std::size_t head, std::size_t s) const override;

 protected:
  void append_rows(std::span<const float> k_row,
                   std::span<const float> v_row) override;
  void compact_rows(std::span<const std::size_t> keep) override;
  void clear_rows() override;

 private:
  /// Sentinel BlockRef::shard for emergency heap blocks (never a valid
  /// pool shard: pools are bounded far below 2^32 shards).
  static constexpr std::uint32_t kEmergencyShard = 0xffffffffU;
  static bool is_emergency(BlockRef ref) noexcept {
    return ref.shard == kEmergencyShard;
  }

  void free_blocks_beyond(std::size_t live_tokens);
  /// Replaces a (possibly) shared chain block with a private copy before a
  /// write; no-op beyond unmarking when this cache is the last reader.
  void cow_block(std::size_t chain_idx);
  /// A fresh private block: from the pool, or — on failure — an emergency
  /// heap block (latches alloc_failed). Never throws for capacity.
  BlockRef new_block();
  /// Releases one chain block back to where it came from.
  void release_ref(BlockRef ref);
  /// Payload access that dispatches on pool vs emergency blocks.
  float* keys_of(BlockRef ref, std::size_t head) const;
  float* values_of(BlockRef ref, std::size_t head) const;

  BlockPool& pool_;
  std::size_t shard_;
  std::vector<BlockRef> blocks_;
  /// shared_[i]: blocks_[i] was adopted and may still have other readers —
  /// mutations must go through cow_block() first. Parallel to blocks_.
  std::vector<bool> shared_;
  /// Emergency heap payloads (64-byte aligned like pool slabs), indexed
  /// by the ref id; slots null once released. Only this cache ever sees
  /// these blocks — they are invisible to the pool, the scheduler, and
  /// the prefix index.
  std::vector<AlignedFloatArray> emergency_;
  std::size_t cow_copies_ = 0;
  std::size_t alloc_failures_ = 0;
};

}  // namespace kf::mem
