#include "mem/block_pool.h"

#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"

namespace kf::mem {

BlockPool::BlockPool(BlockPoolConfig cfg) : cfg_(cfg) {
  if (cfg_.n_shards == 0) {
    throw std::invalid_argument("BlockPool requires n_shards > 0");
  }
  if (cfg_.metrics != nullptr) {
    ctr_allocs_ = &cfg_.metrics->counter("pool.allocs");
    ctr_alloc_failures_ = &cfg_.metrics->counter("pool.alloc_failures");
    ctr_reserves_ = &cfg_.metrics->counter("pool.reserves");
    ctr_reserve_failures_ = &cfg_.metrics->counter("pool.reserve_failures");
    ctr_emergency_ = &cfg_.metrics->counter("pool.emergency_blocks");
  }
  if (cfg_.block_tokens == 0) {
    throw std::invalid_argument("BlockPool requires block_tokens > 0");
  }
  if (cfg_.n_heads == 0 || cfg_.d_head == 0) {
    throw std::invalid_argument(
        "BlockPool requires n_heads > 0 and d_head > 0");
  }
  section_floats_ = cfg_.n_heads * cfg_.block_tokens * cfg_.d_head;
  block_floats_ = 2 * section_floats_;
  shards_.reserve(cfg_.n_shards);
  for (std::size_t s = 0; s < cfg_.n_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    const std::size_t max_slabs =
        cfg_.blocks_per_shard > 0
            ? (cfg_.blocks_per_shard + kBlocksPerSlab - 1) / kBlocksPerSlab
            : kUnboundedSlabs;
    // Directory only; arenas come lazily. The base-pointer directory is
    // what lock-free readers touch, so it is fully sized up front and
    // its entries only ever transition nullptr -> slab base.
    shard->slabs.resize(max_slabs);
    shard->slab_bases = std::make_unique<std::atomic<float*>[]>(max_slabs);
    for (std::size_t i = 0; i < max_slabs; ++i) {
      shard->slab_bases[i].store(nullptr, std::memory_order_relaxed);
    }
    shard->slab_slots = max_slabs;
    shards_.push_back(std::move(shard));
  }
}

float* BlockPool::block_base(BlockRef ref) const noexcept {
  assert(ref.shard < shards_.size());
  const Shard& sh = *shards_[ref.shard];
  const std::size_t slab = ref.id / kBlocksPerSlab;
  const std::size_t offset = ref.id % kBlocksPerSlab;
  assert(slab < sh.slab_slots);
  // Acquire pairs with the release store in carve_slab_locked: a reader
  // holding a BlockRef sees the slab payload without the shard mutex.
  float* base = sh.slab_bases[slab].load(std::memory_order_acquire);
  assert(base != nullptr);
  return base + offset * block_floats_;
}

bool BlockPool::carve_slab_locked(Shard& sh) {
  // Carve a fresh slab — unless the shard is at capacity or the
  // directory (the unbounded mode's implementation limit) is full.
  if (cfg_.blocks_per_shard > 0 && sh.created >= cfg_.blocks_per_shard) {
    return false;
  }
  const std::size_t slab = sh.created / kBlocksPerSlab;
  if (slab >= sh.slab_slots) return false;
  assert(sh.created % kBlocksPerSlab == 0);
  // 64-byte-aligned (and zeroed) slab so SIMD loads on head-major block
  // payloads start on cache-line boundaries.
  sh.slabs[slab] = make_aligned_floats(kBlocksPerSlab * block_floats_);
  assert(is_simd_aligned(sh.slabs[slab].get()));
  sh.slab_bases[slab].store(sh.slabs[slab].get(), std::memory_order_release);
  std::size_t batch = kBlocksPerSlab;
  if (cfg_.blocks_per_shard > 0) {
    batch = std::min(batch, cfg_.blocks_per_shard - sh.created);
  }
  // Push in reverse so blocks hand out in ascending id order.
  for (std::size_t i = batch; i > 0; --i) {
    sh.free_list.push_back(static_cast<std::uint32_t>(sh.created + i - 1));
  }
  sh.created += batch;
  return true;
}

BlockRef BlockPool::allocate(std::size_t shard) {
  const auto ref = try_allocate(shard);
  if (!ref.has_value()) {
    const ShardStats st = shard_stats(shard);
    throw std::runtime_error(
        "BlockPool: shard " + std::to_string(shard) + " exhausted (" +
        std::to_string(cfg_.blocks_per_shard) + " blocks, used " +
        std::to_string(st.used_blocks) + ", reserved " +
        std::to_string(st.reserved_blocks) +
        "); admission reservations should have prevented this");
  }
  return *ref;
}

std::optional<BlockRef> BlockPool::try_allocate(std::size_t shard) {
  if (shard >= shards_.size()) {
    throw std::invalid_argument("BlockPool::allocate: shard out of range");
  }
  Shard& sh = *shards_[shard];
  const LockGuard lock(sh.mu);
  if (auto* injector = injector_.load(std::memory_order_acquire)) {
    if (injector->should_fail(FaultOp::kAllocate, shard)) {
      if (ctr_alloc_failures_ != nullptr) ctr_alloc_failures_->add();
      return std::nullopt;
    }
  }
  if (sh.free_list.empty() && !carve_slab_locked(sh)) {
    if (ctr_alloc_failures_ != nullptr) ctr_alloc_failures_->add();
    return std::nullopt;
  }
  const std::uint32_t id = sh.free_list.back();
  sh.free_list.pop_back();
  if (sh.live.size() < sh.created) {
    sh.live.resize(sh.created, false);
    sh.refs.resize(sh.created, 0);
  }
  sh.live[id] = true;
  sh.refs[id] = 1;
  ++sh.used;
  if (sh.used > sh.peak_used) sh.peak_used = sh.used;
  raise_peak(peak_total_used_, total_used_.fetch_add(1) + 1);
  if (ctr_allocs_ != nullptr) ctr_allocs_->add();
  return BlockRef{static_cast<std::uint32_t>(shard), id};
}

void BlockPool::raise_peak(std::atomic<std::size_t>& peak,
                           std::size_t value) {
  std::size_t seen = peak.load();
  while (seen < value && !peak.compare_exchange_weak(seen, value)) {
  }
}

void BlockPool::retain(BlockRef ref) {
  if (ref.shard >= shards_.size()) {
    throw std::invalid_argument("BlockPool::retain: shard out of range");
  }
  Shard& sh = *shards_[ref.shard];
  const LockGuard lock(sh.mu);
  if (ref.id >= sh.created || ref.id >= sh.live.size() || !sh.live[ref.id]) {
    throw std::invalid_argument(
        "BlockPool::retain: block is not currently allocated");
  }
  ++sh.refs[ref.id];
}

void BlockPool::release(BlockRef ref) {
  if (ref.shard >= shards_.size()) {
    throw std::invalid_argument("BlockPool::release: shard out of range");
  }
  Shard& sh = *shards_[ref.shard];
  const LockGuard lock(sh.mu);
  if (ref.id >= sh.created || ref.id >= sh.live.size() || !sh.live[ref.id]) {
    // Never-allocated or over-released: putting the id on the free list
    // twice would hand one payload to two caches.
    throw std::invalid_argument(
        "BlockPool::release: block is not currently allocated");
  }
  if (--sh.refs[ref.id] > 0) return;  // other readers keep it alive
  sh.live[ref.id] = false;
  sh.free_list.push_back(ref.id);
  --sh.used;
  total_used_.fetch_sub(1);
}

std::uint32_t BlockPool::refcount(BlockRef ref) const {
  if (ref.shard >= shards_.size()) {
    throw std::invalid_argument("BlockPool::refcount: shard out of range");
  }
  const Shard& sh = *shards_[ref.shard];
  const LockGuard lock(sh.mu);
  if (ref.id >= sh.refs.size()) return 0;
  return sh.refs[ref.id];
}

bool BlockPool::try_reserve(std::size_t shard, std::size_t blocks) {
  if (shard >= shards_.size()) {
    throw std::invalid_argument("BlockPool::try_reserve: shard out of range");
  }
  Shard& sh = *shards_[shard];
  const LockGuard lock(sh.mu);
  if (cfg_.blocks_per_shard > 0 &&
      sh.reserved + blocks > cfg_.blocks_per_shard) {
    if (ctr_reserve_failures_ != nullptr) ctr_reserve_failures_->add();
    return false;
  }
  if (auto* injector = injector_.load(std::memory_order_acquire)) {
    if (injector->should_fail(FaultOp::kReserve, shard)) {
      if (ctr_reserve_failures_ != nullptr) ctr_reserve_failures_->add();
      return false;
    }
  }
  sh.reserved += blocks;
  if (sh.reserved > sh.peak_reserved) sh.peak_reserved = sh.reserved;
  raise_peak(peak_total_reserved_, total_reserved_.fetch_add(blocks) + blocks);
  if (ctr_reserves_ != nullptr) ctr_reserves_->add();
  return true;
}

void BlockPool::note_emergency_block() noexcept {
  if (ctr_emergency_ != nullptr) ctr_emergency_->add();
}

void BlockPool::unreserve(std::size_t shard, std::size_t blocks) {
  if (shard >= shards_.size()) {
    throw std::invalid_argument("BlockPool::unreserve: shard out of range");
  }
  Shard& sh = *shards_[shard];
  const LockGuard lock(sh.mu);
  if (blocks > sh.reserved) {
    throw std::invalid_argument(
        "BlockPool::unreserve: releasing more than reserved");
  }
  sh.reserved -= blocks;
  total_reserved_.fetch_sub(blocks);
}

std::size_t BlockPool::unreserved_blocks(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::invalid_argument(
        "BlockPool::unreserved_blocks: shard out of range");
  }
  const Shard& sh = *shards_[shard];
  const LockGuard lock(sh.mu);
  if (cfg_.blocks_per_shard == 0) return static_cast<std::size_t>(-1);
  return cfg_.blocks_per_shard - sh.reserved;
}

float* BlockPool::keys(BlockRef ref, std::size_t head) noexcept {
  assert(head < cfg_.n_heads);
  return block_base(ref) + head * cfg_.block_tokens * cfg_.d_head;
}

const float* BlockPool::keys(BlockRef ref, std::size_t head) const noexcept {
  assert(head < cfg_.n_heads);
  return block_base(ref) + head * cfg_.block_tokens * cfg_.d_head;
}

float* BlockPool::values(BlockRef ref, std::size_t head) noexcept {
  assert(head < cfg_.n_heads);
  return block_base(ref) + section_floats_ +
         head * cfg_.block_tokens * cfg_.d_head;
}

const float* BlockPool::values(BlockRef ref, std::size_t head) const noexcept {
  assert(head < cfg_.n_heads);
  return block_base(ref) + section_floats_ +
         head * cfg_.block_tokens * cfg_.d_head;
}

ShardStats BlockPool::shard_stats(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::invalid_argument("BlockPool::shard_stats: shard out of range");
  }
  const Shard& sh = *shards_[shard];
  const LockGuard lock(sh.mu);
  ShardStats st;
  st.capacity_blocks = cfg_.blocks_per_shard;
  st.allocated_blocks = sh.created;
  st.used_blocks = sh.used;
  st.reserved_blocks = sh.reserved;
  st.peak_used_blocks = sh.peak_used;
  st.peak_reserved_blocks = sh.peak_reserved;
  return st;
}

PoolStats BlockPool::stats() const {
  PoolStats agg;
  agg.n_shards = shards_.size();
  agg.capacity_blocks =
      cfg_.blocks_per_shard > 0 ? cfg_.blocks_per_shard * shards_.size() : 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardStats st = shard_stats(s);
    agg.allocated_blocks += st.allocated_blocks;
    agg.used_blocks += st.used_blocks;
    agg.reserved_blocks += st.reserved_blocks;
  }
  // True simultaneous pool-wide peaks; summing per-shard peaks would
  // overstate the high-water mark when shards peak at different times.
  agg.peak_used_blocks = peak_total_used_.load();
  agg.peak_reserved_blocks = peak_total_reserved_.load();
  return agg;
}

void BlockPool::reset_peaks() {
  for (auto& shard : shards_) {
    const LockGuard lock(shard->mu);
    shard->peak_used = shard->used;
    shard->peak_reserved = shard->reserved;
  }
  peak_total_used_.store(total_used_.load());
  peak_total_reserved_.store(total_reserved_.load());
}

}  // namespace kf::mem
