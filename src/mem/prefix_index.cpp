#include "mem/prefix_index.h"

#include <algorithm>
#include <stdexcept>

#include "mem/paged_kv_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kf::mem {

PrefixIndex::PrefixIndex(BlockPool& pool, PrefixIndexConfig cfg)
    : pool_(pool), cfg_(cfg) {
  if (cfg_.n_layers == 0) {
    throw std::invalid_argument("PrefixIndex requires n_layers > 0");
  }
  if (cfg_.min_tokens < pool_.block_tokens()) {
    cfg_.min_tokens = pool_.block_tokens();
  }
  if (cfg_.metrics != nullptr) {
    ctr_hits_ = &cfg_.metrics->counter("prefix.hits");
    ctr_misses_ = &cfg_.metrics->counter("prefix.misses");
    ctr_insertions_ = &cfg_.metrics->counter("prefix.insertions");
    ctr_replications_ = &cfg_.metrics->counter("prefix.replications");
    ctr_trims_ = &cfg_.metrics->counter("prefix.trims");
  }
}

PrefixIndex::~PrefixIndex() {
  const LockGuard lock(mu_);
  for (EntryRec& rec : entries_) {
    for (std::size_t s = 0; s < rec.chains.size(); ++s) {
      release_chain_locked(rec.chains[s], s);
    }
  }
}

namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

/// One FNV-1a step folding a token's 4 bytes into the running hash. The
/// single definition keeps hash_run() and lookup()'s rolling hashes
/// bit-identical — a divergence would present as a silent 0% hit rate.
std::uint64_t fnv_step(std::uint64_t h, PrefixToken t) {
  auto v = static_cast<std::uint32_t>(t);
  for (int b = 0; b < 4; ++b) {
    h ^= (v >> (8 * b)) & 0xFFU;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::uint64_t PrefixIndex::hash_run(std::span<const PrefixToken> run) {
  // FNV-1a over the token bytes; entries verify the full run on match, so
  // a collision costs a memcmp, never a wrong chain.
  std::uint64_t h = kFnvBasis;
  for (const PrefixToken t : run) h = fnv_step(h, t);
  return h;
}

PrefixIndexStats PrefixIndex::stats() const {
  const LockGuard lock(mu_);
  PrefixIndexStats st = stats_;
  st.entries = entries_.size();
  st.blocks_held = blocks_held_;
  return st;
}

std::size_t PrefixIndex::blocks_held() const {
  const LockGuard lock(mu_);
  return blocks_held_;
}

std::uint64_t PrefixIndex::revision() const {
  const LockGuard lock(mu_);
  return revision_;
}

const PrefixEntry* PrefixIndex::lookup(std::span<const PrefixToken> prompt,
                                       std::size_t max_tokens) {
  const LockGuard lock(mu_);
  ++stats_.lookups;
  std::size_t longest = 0;
  for (const EntryRec& rec : entries_) {
    longest = std::max(longest, rec.entry->tokens());
  }
  const std::size_t probe_len =
      std::min({longest, max_tokens, prompt.size()});

  // Rolling FNV prefix hashes of the prompt, computed once; candidate
  // entries match on (length, hash) in O(1) and only then pay the full
  // token verification (hash collisions are possible, wrong chains are
  // not).
  std::vector<std::uint64_t> hash_at(probe_len + 1);
  std::uint64_t h = kFnvBasis;
  hash_at[0] = h;
  for (std::size_t i = 0; i < probe_len; ++i) {
    h = fnv_step(h, prompt[i]);
    hash_at[i + 1] = h;
  }

  EntryRec* best = nullptr;
  for (EntryRec& rec : entries_) {
    const PrefixEntry& e = *rec.entry;
    const std::size_t m = e.tokens();
    if (m > probe_len || e.run_hash_ != hash_at[m]) continue;
    if (best != nullptr && m <= best->entry->tokens()) continue;
    if (std::equal(e.run_.begin(), e.run_.end(), prompt.begin())) {
      best = &rec;
    }
  }
  if (best != nullptr) {
    best->last_use = ++tick_;
    ++stats_.lookup_hits;
    if (ctr_hits_ != nullptr) ctr_hits_->add();
    return best->entry.get();
  }
  if (ctr_misses_ != nullptr) ctr_misses_->add();
  return nullptr;
}

PrefixIndex::EntryRec& PrefixIndex::find_rec_locked(const PrefixEntry* entry) {
  for (EntryRec& rec : entries_) {
    if (rec.entry.get() == entry) return rec;
  }
  throw std::invalid_argument("PrefixIndex: unknown entry");
}

const PrefixIndex::EntryRec& PrefixIndex::find_rec_locked(
    const PrefixEntry* entry) const {
  for (const EntryRec& rec : entries_) {
    if (rec.entry.get() == entry) return rec;
  }
  throw std::invalid_argument("PrefixIndex: unknown entry");
}

void PrefixIndex::pin(const PrefixEntry* entry) {
  const LockGuard lock(mu_);
  ++find_rec_locked(entry).pins;
}

void PrefixIndex::unpin(const PrefixEntry* entry) {
  const LockGuard lock(mu_);
  EntryRec& rec = find_rec_locked(entry);
  if (rec.pins == 0) {
    throw std::logic_error("PrefixIndex::unpin without a matching pin");
  }
  --rec.pins;
}

std::size_t PrefixIndex::pins(const PrefixEntry* entry) const {
  const LockGuard lock(mu_);
  return find_rec_locked(entry).pins;
}

bool PrefixIndex::resident_on(const PrefixEntry* entry,
                              std::size_t shard) const {
  const LockGuard lock(mu_);
  const EntryRec& rec = find_rec_locked(entry);
  return shard < rec.chains.size() && !rec.chains[shard].empty();
}

const PrefixIndex::EntryRec* PrefixIndex::lru_candidate_locked(
    bool include_pinned) const {
  const EntryRec* best = nullptr;
  for (const EntryRec& rec : entries_) {
    if (!include_pinned && rec.pins > 0) continue;
    if (best == nullptr || rec.last_use < best->last_use) {
      best = &rec;
    }
  }
  return best;
}

const PrefixEntry* PrefixIndex::lru_candidate(bool include_pinned) const {
  const LockGuard lock(mu_);
  const EntryRec* rec = lru_candidate_locked(include_pinned);
  return rec != nullptr ? rec->entry.get() : nullptr;
}

bool PrefixIndex::make_room_locked(std::size_t blocks) {
  if (cfg_.max_blocks == 0) return true;
  if (blocks > cfg_.max_blocks) return false;
  while (blocks_held_ + blocks > cfg_.max_blocks) {
    const EntryRec* victim = lru_candidate_locked(/*include_pinned=*/false);
    if (victim == nullptr) return false;
    drop_locked(victim->entry.get());
  }
  return true;
}

void PrefixIndex::release_chain_locked(
    std::vector<std::vector<BlockRef>>& chain, std::size_t shard) {
  if (chain.empty()) return;
  std::size_t released = 0;
  for (auto& layer : chain) {
    for (const BlockRef ref : layer) {
      pool_.release(ref);
      ++released;
    }
  }
  pool_.unreserve(shard, released);
  blocks_held_ -= released;
  chain.clear();
}

void PrefixIndex::drop_locked(const PrefixEntry* entry) {
  KF_TRACE_SCOPE("prefix.trim", "prefix");
  EntryRec& rec = find_rec_locked(entry);
  if (rec.pins > 0) {
    throw std::logic_error("PrefixIndex::drop of a pinned entry");
  }
  for (std::size_t s = 0; s < rec.chains.size(); ++s) {
    release_chain_locked(rec.chains[s], s);
  }
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const EntryRec& r) { return &r == &rec; });
  entries_.erase(it);
  ++stats_.trims;
  if (ctr_trims_ != nullptr) ctr_trims_->add();
  ++revision_;
}

void PrefixIndex::drop(const PrefixEntry* entry) {
  const LockGuard lock(mu_);
  drop_locked(entry);
}

bool PrefixIndex::try_drop(const PrefixEntry* entry) {
  const LockGuard lock(mu_);
  if (find_rec_locked(entry).pins > 0) return false;
  drop_locked(entry);
  return true;
}

void PrefixIndex::clear() {
  const LockGuard lock(mu_);
  std::vector<const PrefixEntry*> victims;
  for (const EntryRec& rec : entries_) {
    if (rec.pins == 0) victims.push_back(rec.entry.get());
  }
  for (const PrefixEntry* v : victims) drop_locked(v);
}

const PrefixEntry* PrefixIndex::insert(std::span<const PrefixToken> run,
                                       kv::SequenceKvState& state,
                                       std::vector<double> policy_scores) {
  const std::size_t bt = pool_.block_tokens();
  const std::size_t m = run.size();
  if (m < cfg_.min_tokens || m % bt != 0) return nullptr;
  if (state.n_layers() != cfg_.n_layers) {
    throw std::invalid_argument(
        "PrefixIndex::insert: state layer count does not match the index");
  }

  const LockGuard lock(mu_);
  KF_TRACE_SCOPE("prefix.insert", "prefix");
  // Already indexed? The chain is immutable and content-addressed, so the
  // existing entry is exactly what this insert would produce.
  const std::uint64_t run_hash = hash_run(run);
  for (EntryRec& rec : entries_) {
    const PrefixEntry& e = *rec.entry;
    if (e.tokens() == m && e.run_hash_ == run_hash &&
        std::equal(e.run_.begin(), e.run_.end(), run.begin())) {
      rec.last_use = ++tick_;
      return rec.entry.get();
    }
  }

  const std::size_t bpl = m / bt;
  // Validate every layer before touching refcounts: paged caches on one
  // shard whose leading rows are exactly tokens 0..m-1.
  std::vector<PagedKvCache*> layers;
  layers.reserve(cfg_.n_layers);
  std::size_t shard = 0;
  for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
    auto* paged = dynamic_cast<PagedKvCache*>(&state.layer(l));
    if (paged == nullptr || paged->size() < m) return nullptr;
    // A donor that fell back to emergency heap blocks holds refs the pool
    // does not own; indexing such a chain would retain unretainable
    // blocks. Treat it as uncacheable.
    if (paged->alloc_failed()) return nullptr;
    if (l == 0) {
      shard = paged->shard();
    } else if (paged->shard() != shard) {
      return nullptr;
    }
    const auto positions = paged->original_positions();
    for (std::size_t i = 0; i < m; ++i) {
      if (positions[i] != i) return nullptr;
    }
    layers.push_back(paged);
  }

  const std::size_t needed = cfg_.n_layers * bpl;
  if (!make_room_locked(needed)) return nullptr;
  // The index is a memory tenant like any admitted sequence: its blocks
  // are reserved on the shard so placement and admission see the truth.
  // Under reservation pressure, trim LRU entries resident on this shard
  // (dropping entries elsewhere frees nothing here).
  while (!pool_.try_reserve(shard, needed)) {
    const EntryRec* victim = nullptr;
    for (const EntryRec& rec : entries_) {
      if (rec.pins > 0 || shard >= rec.chains.size() ||
          rec.chains[shard].empty()) {
        continue;
      }
      if (victim == nullptr || rec.last_use < victim->last_use) {
        victim = &rec;
      }
    }
    if (victim == nullptr) return nullptr;
    drop_locked(victim->entry.get());
  }

  auto entry = std::make_unique<PrefixEntry>();
  entry->run_.assign(run.begin(), run.end());
  entry->run_hash_ = run_hash;
  entry->blocks_per_layer_ = bpl;
  entry->scores_.resize(cfg_.n_layers);
  entry->policy_scores_ = std::move(policy_scores);

  EntryRec rec;
  rec.chains.resize(pool_.n_shards());
  rec.last_use = ++tick_;

  auto& chain = rec.chains[shard];
  chain.resize(cfg_.n_layers);
  for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
    const auto blocks = layers[l]->blocks();
    chain[l].assign(blocks.begin(), blocks.begin() + static_cast<long>(bpl));
    for (const BlockRef ref : chain[l]) pool_.retain(ref);
    // Flip the donor to copy-on-write over the now-shared chain: its own
    // eviction must never write through into the indexed blocks.
    layers[l]->mark_shared_prefix(bpl);
    entry->scores_[l].reserve(layers[l]->n_heads());
    for (std::size_t h = 0; h < layers[l]->n_heads(); ++h) {
      const auto scores = layers[l]->scores(h);
      entry->scores_[l].emplace_back(scores.begin(),
                                     scores.begin() + static_cast<long>(m));
    }
  }
  blocks_held_ += needed;
  ++stats_.insertions;
  if (ctr_insertions_ != nullptr) ctr_insertions_->add();
  ++revision_;
  rec.entry = std::move(entry);
  entries_.push_back(std::move(rec));
  return entries_.back().entry.get();
}

bool PrefixIndex::replicate_locked(EntryRec& rec, std::size_t shard) {
  if (shard >= pool_.n_shards()) return false;
  // Source: any resident replica.
  const std::vector<std::vector<BlockRef>>* src = nullptr;
  for (const auto& chain : rec.chains) {
    if (!chain.empty()) {
      src = &chain;
      break;
    }
  }
  if (src == nullptr) return false;

  const std::size_t needed = cfg_.n_layers * rec.entry->blocks_per_layer();
  if (!make_room_locked(needed)) return false;
  if (!pool_.try_reserve(shard, needed)) return false;

  const std::size_t section =
      pool_.config().block_tokens * pool_.config().d_head;
  auto& dst = rec.chains[shard];
  dst.resize(cfg_.n_layers);
  for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
    dst[l].reserve(rec.entry->blocks_per_layer());
    for (const BlockRef from : (*src)[l]) {
      // Allocation can fail even under a successful reservation (a fault
      // injector vetoes individual allocations); roll the half-built
      // replica back and report a clean miss rather than throw out of
      // adopt() on the engine thread.
      const auto to = pool_.try_allocate(shard);
      if (!to.has_value()) {
        for (auto& layer_chain : dst) {
          for (const BlockRef ref : layer_chain) pool_.release(ref);
          layer_chain.clear();
        }
        dst.clear();
        pool_.unreserve(shard, needed);
        return false;
      }
      for (std::size_t h = 0; h < pool_.config().n_heads; ++h) {
        std::copy_n(pool_.keys(from, h), section, pool_.keys(*to, h));
        std::copy_n(pool_.values(from, h), section, pool_.values(*to, h));
      }
      dst[l].push_back(*to);
    }
  }
  blocks_held_ += needed;
  ++stats_.replications;
  if (ctr_replications_ != nullptr) ctr_replications_->add();
  return true;
}

bool PrefixIndex::adopt(const PrefixEntry* entry, kv::SequenceKvState& state) {
  const LockGuard lock(mu_);
  KF_TRACE_SCOPE("prefix.adopt", "prefix");
  EntryRec& rec = find_rec_locked(entry);
  if (state.n_layers() != cfg_.n_layers || !state.empty()) {
    throw std::invalid_argument(
        "PrefixIndex::adopt requires an empty state with matching layers");
  }
  auto* first = dynamic_cast<PagedKvCache*>(&state.layer(0));
  if (first == nullptr) {
    throw std::invalid_argument("PrefixIndex::adopt requires paged caches");
  }
  const std::size_t shard = first->shard();
  if (shard >= rec.chains.size() || rec.chains[shard].empty()) {
    // Pin across replication: make_room_locked()'s LRU trim must never
    // pick the very entry being replicated (the caller may have reached
    // it through an unpinned lookup), or replicate would read freed
    // chains.
    ++rec.pins;
    const bool replicated = replicate_locked(rec, shard);
    --rec.pins;
    if (!replicated) return false;
  }

  const auto& chain = rec.chains[shard];
  for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
    auto* paged = dynamic_cast<PagedKvCache*>(&state.layer(l));
    if (paged == nullptr || paged->shard() != shard) {
      throw std::invalid_argument(
          "PrefixIndex::adopt requires paged caches on one shard");
    }
    paged->adopt_prefix(chain[l], rec.entry->tokens(), rec.entry->scores_[l]);
  }
  rec.last_use = ++tick_;
  return true;
}

}  // namespace kf::mem
