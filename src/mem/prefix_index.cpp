#include "mem/prefix_index.h"

#include <algorithm>
#include <stdexcept>

#include "mem/paged_kv_cache.h"

namespace kf::mem {

PrefixIndex::PrefixIndex(BlockPool& pool, PrefixIndexConfig cfg)
    : pool_(pool), cfg_(cfg) {
  if (cfg_.n_layers == 0) {
    throw std::invalid_argument("PrefixIndex requires n_layers > 0");
  }
  if (cfg_.min_tokens < pool_.block_tokens()) {
    cfg_.min_tokens = pool_.block_tokens();
  }
}

PrefixIndex::~PrefixIndex() {
  for (auto& entry : entries_) {
    for (std::size_t s = 0; s < entry->chains_.size(); ++s) {
      release_chain(entry->chains_[s], s);
    }
  }
}

namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

/// One FNV-1a step folding a token's 4 bytes into the running hash. The
/// single definition keeps hash_run() and lookup()'s rolling hashes
/// bit-identical — a divergence would present as a silent 0% hit rate.
std::uint64_t fnv_step(std::uint64_t h, PrefixToken t) {
  auto v = static_cast<std::uint32_t>(t);
  for (int b = 0; b < 4; ++b) {
    h ^= (v >> (8 * b)) & 0xFFU;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::uint64_t PrefixIndex::hash_run(std::span<const PrefixToken> run) {
  // FNV-1a over the token bytes; entries verify the full run on match, so
  // a collision costs a memcmp, never a wrong chain.
  std::uint64_t h = kFnvBasis;
  for (const PrefixToken t : run) h = fnv_step(h, t);
  return h;
}

PrefixIndexStats PrefixIndex::stats() const noexcept {
  PrefixIndexStats st = stats_;
  st.entries = entries_.size();
  st.blocks_held = blocks_held_;
  return st;
}

const PrefixEntry* PrefixIndex::lookup(std::span<const PrefixToken> prompt,
                                       std::size_t max_tokens) {
  ++stats_.lookups;
  std::size_t longest = 0;
  for (const auto& entry : entries_) longest = std::max(longest, entry->tokens());
  const std::size_t probe_len =
      std::min({longest, max_tokens, prompt.size()});

  // Rolling FNV prefix hashes of the prompt, computed once; candidate
  // entries match on (length, hash) in O(1) and only then pay the full
  // token verification (hash collisions are possible, wrong chains are
  // not).
  std::vector<std::uint64_t> hash_at(probe_len + 1);
  std::uint64_t h = kFnvBasis;
  hash_at[0] = h;
  for (std::size_t i = 0; i < probe_len; ++i) {
    h = fnv_step(h, prompt[i]);
    hash_at[i + 1] = h;
  }

  PrefixEntry* best = nullptr;
  for (const auto& entry : entries_) {
    const std::size_t m = entry->tokens();
    if (m > probe_len || entry->run_hash_ != hash_at[m]) continue;
    if (best != nullptr && m <= best->tokens()) continue;
    if (std::equal(entry->run_.begin(), entry->run_.end(), prompt.begin())) {
      best = entry.get();
    }
  }
  if (best != nullptr) {
    best->last_use_ = ++tick_;
    ++stats_.lookup_hits;
  }
  return best;
}

PrefixEntry* PrefixIndex::find_mutable(const PrefixEntry* entry) {
  for (const auto& e : entries_) {
    if (e.get() == entry) return e.get();
  }
  throw std::invalid_argument("PrefixIndex: unknown entry");
}

void PrefixIndex::pin(const PrefixEntry* entry) { ++find_mutable(entry)->pins_; }

void PrefixIndex::unpin(const PrefixEntry* entry) {
  PrefixEntry* e = find_mutable(entry);
  if (e->pins_ == 0) {
    throw std::logic_error("PrefixIndex::unpin without a matching pin");
  }
  --e->pins_;
}

const PrefixEntry* PrefixIndex::lru_candidate(bool include_pinned) const {
  const PrefixEntry* best = nullptr;
  for (const auto& entry : entries_) {
    if (!include_pinned && entry->pins_ > 0) continue;
    if (best == nullptr || entry->last_use_ < best->last_use_) {
      best = entry.get();
    }
  }
  return best;
}

bool PrefixIndex::make_room(std::size_t blocks) {
  if (cfg_.max_blocks == 0) return true;
  if (blocks > cfg_.max_blocks) return false;
  while (blocks_held_ + blocks > cfg_.max_blocks) {
    const PrefixEntry* victim = lru_candidate(/*include_pinned=*/false);
    if (victim == nullptr) return false;
    drop(victim);
  }
  return true;
}

void PrefixIndex::release_chain(std::vector<std::vector<BlockRef>>& chain,
                                std::size_t shard) {
  if (chain.empty()) return;
  std::size_t released = 0;
  for (auto& layer : chain) {
    for (const BlockRef ref : layer) {
      pool_.release(ref);
      ++released;
    }
  }
  pool_.unreserve(shard, released);
  blocks_held_ -= released;
  chain.clear();
}

void PrefixIndex::drop(const PrefixEntry* entry) {
  PrefixEntry* e = find_mutable(entry);
  if (e->pins_ > 0) {
    throw std::logic_error("PrefixIndex::drop of a pinned entry");
  }
  for (std::size_t s = 0; s < e->chains_.size(); ++s) {
    release_chain(e->chains_[s], s);
  }
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const auto& p) { return p.get() == e; });
  entries_.erase(it);
  ++stats_.trims;
  ++revision_;
}

void PrefixIndex::clear() {
  std::vector<const PrefixEntry*> victims;
  for (const auto& entry : entries_) {
    if (entry->pins_ == 0) victims.push_back(entry.get());
  }
  for (const PrefixEntry* v : victims) drop(v);
}

const PrefixEntry* PrefixIndex::insert(std::span<const PrefixToken> run,
                                       kv::SequenceKvState& state,
                                       std::vector<double> policy_scores) {
  const std::size_t bt = pool_.block_tokens();
  const std::size_t m = run.size();
  if (m < cfg_.min_tokens || m % bt != 0) return nullptr;
  if (state.n_layers() != cfg_.n_layers) {
    throw std::invalid_argument(
        "PrefixIndex::insert: state layer count does not match the index");
  }

  // Already indexed? The chain is immutable and content-addressed, so the
  // existing entry is exactly what this insert would produce.
  const std::uint64_t run_hash = hash_run(run);
  for (const auto& entry : entries_) {
    if (entry->tokens() == m && entry->run_hash_ == run_hash &&
        std::equal(entry->run_.begin(), entry->run_.end(), run.begin())) {
      entry->last_use_ = ++tick_;
      return entry.get();
    }
  }

  const std::size_t bpl = m / bt;
  // Validate every layer before touching refcounts: paged caches on one
  // shard whose leading rows are exactly tokens 0..m-1.
  std::vector<PagedKvCache*> layers;
  layers.reserve(cfg_.n_layers);
  std::size_t shard = 0;
  for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
    auto* paged = dynamic_cast<PagedKvCache*>(&state.layer(l));
    if (paged == nullptr || paged->size() < m) return nullptr;
    if (l == 0) {
      shard = paged->shard();
    } else if (paged->shard() != shard) {
      return nullptr;
    }
    const auto positions = paged->original_positions();
    for (std::size_t i = 0; i < m; ++i) {
      if (positions[i] != i) return nullptr;
    }
    layers.push_back(paged);
  }

  const std::size_t needed = cfg_.n_layers * bpl;
  if (!make_room(needed)) return nullptr;
  // The index is a memory tenant like any admitted sequence: its blocks
  // are reserved on the shard so placement and admission see the truth.
  // Under reservation pressure, trim LRU entries resident on this shard
  // (dropping entries elsewhere frees nothing here).
  while (!pool_.try_reserve(shard, needed)) {
    const PrefixEntry* victim = nullptr;
    for (const auto& entry : entries_) {
      if (entry->pins_ > 0 || !entry->resident_on(shard)) continue;
      if (victim == nullptr || entry->last_use_ < victim->last_use_) {
        victim = entry.get();
      }
    }
    if (victim == nullptr) return nullptr;
    drop(victim);
  }

  auto entry = std::make_unique<PrefixEntry>();
  entry->run_.assign(run.begin(), run.end());
  entry->run_hash_ = run_hash;
  entry->blocks_per_layer_ = bpl;
  entry->chains_.resize(pool_.n_shards());
  entry->scores_.resize(cfg_.n_layers);
  entry->policy_scores_ = std::move(policy_scores);
  entry->last_use_ = ++tick_;

  auto& chain = entry->chains_[shard];
  chain.resize(cfg_.n_layers);
  for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
    const auto blocks = layers[l]->blocks();
    chain[l].assign(blocks.begin(), blocks.begin() + static_cast<long>(bpl));
    for (const BlockRef ref : chain[l]) pool_.retain(ref);
    // Flip the donor to copy-on-write over the now-shared chain: its own
    // eviction must never write through into the indexed blocks.
    layers[l]->mark_shared_prefix(bpl);
    entry->scores_[l].reserve(layers[l]->n_heads());
    for (std::size_t h = 0; h < layers[l]->n_heads(); ++h) {
      const auto scores = layers[l]->scores(h);
      entry->scores_[l].emplace_back(scores.begin(),
                                     scores.begin() + static_cast<long>(m));
    }
  }
  blocks_held_ += needed;
  ++stats_.insertions;
  ++revision_;
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

bool PrefixIndex::replicate(PrefixEntry& entry, std::size_t shard) {
  if (shard >= pool_.n_shards()) return false;
  // Source: any resident replica.
  const std::vector<std::vector<BlockRef>>* src = nullptr;
  for (const auto& chain : entry.chains_) {
    if (!chain.empty()) {
      src = &chain;
      break;
    }
  }
  if (src == nullptr) return false;

  const std::size_t needed = cfg_.n_layers * entry.blocks_per_layer_;
  if (!make_room(needed)) return false;
  if (!pool_.try_reserve(shard, needed)) return false;

  const std::size_t section =
      pool_.config().block_tokens * pool_.config().d_head;
  auto& dst = entry.chains_[shard];
  dst.resize(cfg_.n_layers);
  for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
    dst[l].reserve(entry.blocks_per_layer_);
    for (const BlockRef from : (*src)[l]) {
      const BlockRef to = pool_.allocate(shard);
      for (std::size_t h = 0; h < pool_.config().n_heads; ++h) {
        std::copy_n(pool_.keys(from, h), section, pool_.keys(to, h));
        std::copy_n(pool_.values(from, h), section, pool_.values(to, h));
      }
      dst[l].push_back(to);
    }
  }
  blocks_held_ += needed;
  ++stats_.replications;
  return true;
}

bool PrefixIndex::adopt(const PrefixEntry* entry, kv::SequenceKvState& state) {
  PrefixEntry* e = find_mutable(entry);
  if (state.n_layers() != cfg_.n_layers || !state.empty()) {
    throw std::invalid_argument(
        "PrefixIndex::adopt requires an empty state with matching layers");
  }
  auto* first = dynamic_cast<PagedKvCache*>(&state.layer(0));
  if (first == nullptr) {
    throw std::invalid_argument("PrefixIndex::adopt requires paged caches");
  }
  const std::size_t shard = first->shard();
  if (!e->resident_on(shard)) {
    // Pin across replication: make_room()'s LRU trim must never pick the
    // very entry being replicated (the caller may have reached it through
    // an unpinned lookup), or replicate would read freed chains.
    ++e->pins_;
    const bool replicated = replicate(*e, shard);
    --e->pins_;
    if (!replicated) return false;
  }

  const auto& chain = e->chains_[shard];
  for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
    auto* paged = dynamic_cast<PagedKvCache*>(&state.layer(l));
    if (paged == nullptr || paged->shard() != shard) {
      throw std::invalid_argument(
          "PrefixIndex::adopt requires paged caches on one shard");
    }
    paged->adopt_prefix(chain[l], e->tokens(), e->scores_[l]);
  }
  e->last_use_ = ++tick_;
  return true;
}

}  // namespace kf::mem
