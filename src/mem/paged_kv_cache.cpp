#include "mem/paged_kv_cache.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace kf::mem {

PagedKvCache::PagedKvCache(BlockPool& pool, std::size_t shard)
    : kv::KvCache(pool.config().n_heads, pool.config().d_head),
      pool_(pool),
      shard_(shard) {
  if (shard >= pool.n_shards()) {
    throw std::invalid_argument("PagedKvCache: shard out of range");
  }
}

PagedKvCache::~PagedKvCache() {
  for (const BlockRef ref : blocks_) release_ref(ref);
}

BlockRef PagedKvCache::new_block() {
  if (const auto ref = pool_.try_allocate(shard_)) return *ref;
  // Pool refusal (exhaustion or injected fault): fall back to a private
  // heap block so the in-flight decode step completes with exact rows,
  // and latch the failure for the engine's next-step-boundary check.
  ++alloc_failures_;
  pool_.note_emergency_block();
  emergency_.push_back(make_aligned_floats(2 * pool_.section_floats()));
  return BlockRef{kEmergencyShard,
                  static_cast<std::uint32_t>(emergency_.size() - 1)};
}

void PagedKvCache::release_ref(BlockRef ref) {
  if (is_emergency(ref)) {
    emergency_[ref.id].reset();
    return;
  }
  pool_.release(ref);
}

float* PagedKvCache::keys_of(BlockRef ref, std::size_t head) const {
  if (is_emergency(ref)) {
    return emergency_[ref.id].get() +
           head * pool_.block_tokens() * d_head();
  }
  return pool_.keys(ref, head);
}

float* PagedKvCache::values_of(BlockRef ref, std::size_t head) const {
  if (is_emergency(ref)) {
    return emergency_[ref.id].get() + pool_.section_floats() +
           head * pool_.block_tokens() * d_head();
  }
  return pool_.values(ref, head);
}

void PagedKvCache::adopt_prefix(std::span<const BlockRef> chain,
                                std::size_t tokens,
                                std::span<const std::vector<double>> scores) {
  const std::size_t bt = pool_.block_tokens();
  if (!empty() || !blocks_.empty()) {
    throw std::logic_error("PagedKvCache::adopt_prefix on a non-empty cache");
  }
  if (tokens == 0 || tokens % bt != 0 || chain.size() != tokens / bt) {
    throw std::invalid_argument(
        "PagedKvCache::adopt_prefix: tokens must fill chain.size() whole "
        "blocks");
  }
  for (const BlockRef ref : chain) pool_.retain(ref);
  blocks_.assign(chain.begin(), chain.end());
  shared_.assign(blocks_.size(), true);
  std::vector<std::size_t> positions(tokens);
  for (std::size_t i = 0; i < tokens; ++i) positions[i] = i;
  seed_metadata(positions, scores);
}

void PagedKvCache::mark_shared_prefix(std::size_t blocks) {
  if (blocks > blocks_.size()) {
    throw std::invalid_argument(
        "PagedKvCache::mark_shared_prefix: beyond the chain");
  }
  for (std::size_t i = 0; i < blocks; ++i) shared_[i] = true;
}

std::size_t PagedKvCache::shared_blocks() const noexcept {
  std::size_t n = 0;
  for (const bool s : shared_) n += s ? 1 : 0;
  return n;
}

void PagedKvCache::cow_block(std::size_t chain_idx) {
  const BlockRef old = blocks_[chain_idx];
  // The prefix index (and every other reader) holds its own reference, so
  // refcount 1 means this cache became the sole owner — write in place.
  if (pool_.refcount(old) > 1) {
    const BlockRef fresh = new_block();
    const std::size_t section = pool_.block_tokens() * d_head();
    for (std::size_t h = 0; h < n_heads(); ++h) {
      std::copy_n(keys_of(old, h), section, keys_of(fresh, h));
      std::copy_n(values_of(old, h), section, values_of(fresh, h));
    }
    pool_.release(old);
    blocks_[chain_idx] = fresh;
    ++cow_copies_;
  }
  shared_[chain_idx] = false;
}

void PagedKvCache::append_rows(std::span<const float> k_row,
                               std::span<const float> v_row) {
  const std::size_t bt = pool_.block_tokens();
  const std::size_t t = size();  // metadata not pushed yet: t is our index
  const std::size_t slot = t % bt;
  if (slot == 0) {
    blocks_.push_back(new_block());
    shared_.push_back(false);
  } else if (shared_.back()) {
    // A partially filled shared tail (left by a compact that kept a prefix
    // of an adopted chain): writing the free slot would race other readers
    // of the block, so take a private copy first.
    cow_block(blocks_.size() - 1);
  }
  const BlockRef ref = blocks_.back();
  for (std::size_t h = 0; h < n_heads(); ++h) {
    std::copy_n(k_row.data() + h * d_head(), d_head(),
                keys_of(ref, h) + slot * d_head());
    std::copy_n(v_row.data() + h * d_head(), d_head(),
                values_of(ref, h) + slot * d_head());
  }
}

std::span<const float> PagedKvCache::key_head(std::size_t idx,
                                              std::size_t head) const {
  assert(idx < size() && head < n_heads());
  const std::size_t bt = pool_.block_tokens();
  return {keys_of(blocks_[idx / bt], head) + (idx % bt) * d_head(),
          d_head()};
}

std::span<const float> PagedKvCache::value_head(std::size_t idx,
                                                std::size_t head) const {
  assert(idx < size() && head < n_heads());
  const std::size_t bt = pool_.block_tokens();
  return {values_of(blocks_[idx / bt], head) + (idx % bt) * d_head(),
          d_head()};
}

kv::KvSegment PagedKvCache::segment(std::size_t head, std::size_t s) const {
  assert(head < n_heads() && s < blocks_.size());
  const std::size_t bt = pool_.block_tokens();
  kv::KvSegment seg;
  seg.keys = keys_of(blocks_[s], head);
  seg.values = values_of(blocks_[s], head);
  seg.first = s * bt;
  seg.count = std::min(bt, size() - seg.first);
  return seg;
}

void PagedKvCache::compact_rows(std::span<const std::size_t> keep) {
  // Cross-block forward gather. Destination index never exceeds the source
  // index (keep is ascending), so row j's write cannot clobber a row still
  // to be read — the same argument the contiguous gather relies on, here
  // spanning block boundaries.
  const std::size_t bt = pool_.block_tokens();
  // Copy-on-write pass, before any write: a destination block that takes a
  // moved row (keep[j] != j) and is still shared gets a private copy now,
  // while its contents are untouched. Destination blocks whose whole range
  // is the identity gather (keep[j] == j throughout) are never written and
  // stay shared — the common case when eviction keeps an early prefix.
  for (std::size_t j = 0; j < keep.size(); ++j) {
    if (keep[j] != j && shared_[j / bt]) cow_block(j / bt);
  }
  std::size_t out = 0;
  for (const std::size_t idx : keep) {
    if (idx != out) {
      const BlockRef src = blocks_[idx / bt];
      const BlockRef dst = blocks_[out / bt];
      const std::size_t s_off = (idx % bt) * d_head();
      const std::size_t d_off = (out % bt) * d_head();
      for (std::size_t h = 0; h < n_heads(); ++h) {
        std::copy_n(keys_of(src, h) + s_off, d_head(),
                    keys_of(dst, h) + d_off);
        std::copy_n(values_of(src, h) + s_off, d_head(),
                    values_of(dst, h) + d_off);
      }
    }
    ++out;
  }
  free_blocks_beyond(out);
}

void PagedKvCache::clear_rows() { free_blocks_beyond(0); }

void PagedKvCache::free_blocks_beyond(std::size_t live_tokens) {
  const std::size_t bt = pool_.block_tokens();
  const std::size_t live_blocks = (live_tokens + bt - 1) / bt;
  while (blocks_.size() > live_blocks) {
    release_ref(blocks_.back());
    blocks_.pop_back();
    shared_.pop_back();
  }
}

}  // namespace kf::mem
