// Prefix cache: shared, immutable KV block chains for repeated prompt
// prefixes (system prompts, few-shot contexts), keyed by the prefix's
// token run.
//
// Why it exists: Keyformer's serving win comes from fitting more sequences
// into a fixed KV budget, but a few-shot workload wastes that budget by
// re-prefilling and re-storing one identical context per request. The
// index turns the PR 4 block pool into a multi-tenant cache: the first
// request to prefill a prefix *shares* its freshly written block chain
// (per layer) with the index — no copy, just a refcount — and every later
// request whose prompt starts with the same token run adopts the chain
// copy-on-write instead of recomputing it.
//
// What an entry holds, per prefix run of M tokens (always a whole number
// of pool blocks, so adopters' appends start on a fresh block):
//   - per (layer, shard): the block chain — the K/V rows of tokens
//     0..M-1, exactly as a prefill of those M tokens writes them. The
//     chain is born on the inserting sequence's shard and lazily
//     *replicated* to other shards on demand, keeping reads domain-local;
//   - per layer, per head: the accumulated score-function values at the
//     prefix boundary (what the policy had added after observing the
//     prefix queries), so an adopting sequence's eviction ranking is
//     bit-exact with having prefilled the prefix itself;
//   - optionally, policy-exported score state for policies whose
//     accumulation lives outside the cache (Keyformer's shared scope).
//
// Memory accounting: every block the index holds is *reserved* against
// its pool shard, exactly like a scheduler admission, so placement and
// admission see true remaining capacity; `max_blocks` caps the index's
// total footprint and LRU entries are trimmed to fit (pinned entries —
// ones a waiting sequence's reduced admission charge depends on — are
// exempt until their pins drop).
//
// Thread safety: internally synchronized. One index mutex guards the
// entry set, each entry's chain replicas, the LRU stamps, pin counts,
// the revision counter, and the stats — all annotated for clang's
// -Wthread-safety. A PrefixEntry itself is immutable after insert(), so
// the pointer lookup()/insert() return can be read (tokens, run,
// boundary scores) without the lock; only its index bookkeeping —
// residency, pins, recency — lives behind the mutex, reachable through
// the index's own accessors. Lock ordering: the index mutex is acquired
// BEFORE any BlockPool shard mutex (insert/adopt/drop call into the
// pool while holding it); the pool never calls back into the index.
// Concurrent readers of *adopted* chains are safe because chains are
// immutable and refcounted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <vector>

#include "core/annotations.h"
#include "core/mutex.h"
#include "kvcache/kv_state.h"
#include "mem/block_pool.h"

namespace kf::mem {

/// Token id type (mirrors model::Token without depending on model/).
using PrefixToken = std::int32_t;

struct PrefixIndexConfig {
  /// Decoder layers per entry (one chain per layer).
  std::size_t n_layers = 0;
  /// Cap on blocks the index may hold across all entries and replicas;
  /// 0 = bounded only by pool capacity (reservations still apply).
  std::size_t max_blocks = 0;
  /// Shortest prefix worth indexing, in tokens; rounded up to at least
  /// one pool block.
  std::size_t min_tokens = 0;
  /// Observability registry for hit/miss/insert/replicate/trim counters
  /// (prefix.*); null disables them. Must outlive the index.
  obs::MetricsRegistry* metrics = nullptr;
};

struct PrefixIndexStats {
  std::size_t entries = 0;
  std::size_t blocks_held = 0;  ///< across entries and shard replicas
  std::size_t lookups = 0;
  std::size_t lookup_hits = 0;
  std::size_t insertions = 0;
  std::size_t replications = 0;  ///< lazy cross-shard chain copies
  std::size_t trims = 0;         ///< entries dropped (LRU or pressure)
};

/// One indexed prefix: the immutable payload only. Everything mutable
/// about an entry — which shards its chain is resident on, its LRU
/// stamp, its pin count — is bookkeeping the PrefixIndex keeps under its
/// own mutex (see PrefixIndex::resident_on / pins); keeping it out of
/// this class is what lets entry pointers be read lock-free after
/// lookup()/insert().
class PrefixEntry {
 public:
  /// Prefix length in tokens (a whole number of pool blocks).
  std::size_t tokens() const noexcept { return run_.size(); }
  std::size_t blocks_per_layer() const noexcept { return blocks_per_layer_; }
  /// The exact token run this entry caches.
  std::span<const PrefixToken> run() const noexcept { return run_; }
  /// Policy-exported score state captured at the boundary (may be empty).
  std::span<const double> policy_scores() const noexcept {
    return policy_scores_;
  }

 private:
  friend class PrefixIndex;
  std::vector<PrefixToken> run_;
  std::uint64_t run_hash_ = 0;
  std::size_t blocks_per_layer_ = 0;
  /// scores_[layer][head][token]: accumulated score-function values at the
  /// prefix boundary (shard-independent metadata).
  std::vector<std::vector<std::vector<double>>> scores_;
  std::vector<double> policy_scores_;
};

class PrefixIndex {
 public:
  PrefixIndex(BlockPool& pool, PrefixIndexConfig cfg);
  ~PrefixIndex();

  PrefixIndex(const PrefixIndex&) = delete;
  PrefixIndex& operator=(const PrefixIndex&) = delete;

  const PrefixIndexConfig& config() const noexcept { return cfg_; }
  PrefixIndexStats stats() const KF_EXCLUDES(mu_);
  std::size_t blocks_held() const KF_EXCLUDES(mu_);

  /// Bumped whenever the entry set changes (insert or drop). A negative
  /// lookup stays negative until this moves, so pollers can skip the
  /// longest-prefix probe entirely between changes.
  std::uint64_t revision() const KF_EXCLUDES(mu_);

  /// Longest indexed prefix of `prompt` no longer than `max_tokens`, or
  /// null. Bumps the entry's LRU stamp.
  const PrefixEntry* lookup(std::span<const PrefixToken> prompt,
                            std::size_t max_tokens) KF_EXCLUDES(mu_);

  /// Pins an entry against trimming (a waiting sequence's reduced
  /// admission charge depends on the chain staying resident). Balanced by
  /// unpin().
  void pin(const PrefixEntry* entry) KF_EXCLUDES(mu_);
  void unpin(const PrefixEntry* entry) KF_EXCLUDES(mu_);
  /// Current pin count of an entry.
  std::size_t pins(const PrefixEntry* entry) const KF_EXCLUDES(mu_);

  /// True when the entry's chain has a replica on `shard` (adoptable
  /// without a copy; admission may charge only the unshared demand
  /// there).
  bool resident_on(const PrefixEntry* entry, std::size_t shard) const
      KF_EXCLUDES(mu_);

  /// Indexes the first `run.size()` tokens of `state`'s layer caches as a
  /// new entry, *sharing* (retaining) the underlying block chain — the
  /// donor caches keep using the same blocks, now flipped to
  /// copy-on-write so the donor's own eviction can never corrupt the
  /// indexed chain. Requirements: run length is a whole number of blocks
  /// and >= min_tokens; every layer cache is paged, holds at least
  /// run.size() rows, and its leading positions are 0..run-1.
  /// `policy_scores` is opaque policy-exported state stored alongside.
  /// Returns the entry (the pre-existing one for an already-indexed run),
  /// or null when the run is ineligible or memory cannot be found even
  /// after trimming.
  const PrefixEntry* insert(std::span<const PrefixToken> run,
                            kv::SequenceKvState& state,
                            std::vector<double> policy_scores)
      KF_EXCLUDES(mu_);

  /// Adopts `entry` into `state`'s (empty, paged, single-shard) layer
  /// caches: replicates the chain onto that shard first when it is not
  /// resident there, then retains it into each cache with positions and
  /// boundary scores seeded. False when the replica cannot be
  /// materialized — the caller falls back to a full prefill.
  bool adopt(const PrefixEntry* entry, kv::SequenceKvState& state)
      KF_EXCLUDES(mu_);

  /// Least-recently-used entry, optionally considering pinned ones; null
  /// when none qualifies.
  const PrefixEntry* lru_candidate(bool include_pinned) const
      KF_EXCLUDES(mu_);

  /// Releases an entry's chains (all replicas) and removes it. The entry
  /// must be unpinned.
  void drop(const PrefixEntry* entry) KF_EXCLUDES(mu_);

  /// drop() iff the entry is unpinned, with the pin check and the drop
  /// under ONE mutex acquisition — no window for a concurrent pin to land
  /// between them (a separate pins()-then-drop() has exactly that race).
  /// True when the entry was dropped.
  bool try_drop(const PrefixEntry* entry) KF_EXCLUDES(mu_);

  /// Drops every unpinned entry (tests and servers rotating workloads).
  void clear() KF_EXCLUDES(mu_);

 private:
  /// Index bookkeeping of one entry — the mutable half of the split: the
  /// PrefixEntry payload is immutable and lock-free readable, the record
  /// is guarded by mu_ like the list holding it.
  struct EntryRec {
    std::unique_ptr<PrefixEntry> entry;
    /// chains[shard][layer] — block chain replica on that shard; outer
    /// slot empty when the chain is not resident there.
    std::vector<std::vector<std::vector<BlockRef>>> chains;
    std::uint64_t last_use = 0;
    std::size_t pins = 0;
  };

  EntryRec& find_rec_locked(const PrefixEntry* entry) KF_REQUIRES(mu_);
  const EntryRec& find_rec_locked(const PrefixEntry* entry) const
      KF_REQUIRES(mu_);
  const EntryRec* lru_candidate_locked(bool include_pinned) const
      KF_REQUIRES(mu_);
  /// Frees enough unpinned LRU entries that `blocks` more fit under
  /// max_blocks; true on success (always true when max_blocks == 0).
  bool make_room_locked(std::size_t blocks) KF_REQUIRES(mu_);
  /// Reserves + allocates a chain replica of `rec`'s entry on `shard` by
  /// copying from an existing replica; false when the shard cannot take
  /// it.
  bool replicate_locked(EntryRec& rec, std::size_t shard) KF_REQUIRES(mu_);
  void release_chain_locked(std::vector<std::vector<BlockRef>>& chain,
                            std::size_t shard) KF_REQUIRES(mu_);
  void drop_locked(const PrefixEntry* entry) KF_REQUIRES(mu_);
  static std::uint64_t hash_run(std::span<const PrefixToken> run);

  BlockPool& pool_;
  PrefixIndexConfig cfg_;
  /// Guards every mutable member below; acquired before any BlockPool
  /// shard mutex, never the other way around.
  mutable Mutex mu_;
  /// A list, not a vector, on purpose: adopt()/replicate_locked() hold an
  /// EntryRec& across make_room_locked(), whose LRU trim erases *other*
  /// records. List erasure leaves surviving records address-stable; a
  /// vector would shift them and leave the held reference dangling.
  std::list<EntryRec> entries_ KF_GUARDED_BY(mu_);
  std::size_t blocks_held_ KF_GUARDED_BY(mu_) = 0;
  std::uint64_t tick_ KF_GUARDED_BY(mu_) = 0;
  std::uint64_t revision_ KF_GUARDED_BY(mu_) = 0;
  PrefixIndexStats stats_ KF_GUARDED_BY(mu_);
  /// Registry-owned counters mirroring stats_ for the metrics surface;
  /// null when cfg_.metrics is null.
  obs::Counter* ctr_hits_ = nullptr;
  obs::Counter* ctr_misses_ = nullptr;
  obs::Counter* ctr_insertions_ = nullptr;
  obs::Counter* ctr_replications_ = nullptr;
  obs::Counter* ctr_trims_ = nullptr;
};

}  // namespace kf::mem
