// Prefix cache: shared, immutable KV block chains for repeated prompt
// prefixes (system prompts, few-shot contexts), keyed by the prefix's
// token run.
//
// Why it exists: Keyformer's serving win comes from fitting more sequences
// into a fixed KV budget, but a few-shot workload wastes that budget by
// re-prefilling and re-storing one identical context per request. The
// index turns the PR 4 block pool into a multi-tenant cache: the first
// request to prefill a prefix *shares* its freshly written block chain
// (per layer) with the index — no copy, just a refcount — and every later
// request whose prompt starts with the same token run adopts the chain
// copy-on-write instead of recomputing it.
//
// What an entry holds, per prefix run of M tokens (always a whole number
// of pool blocks, so adopters' appends start on a fresh block):
//   - per (layer, shard): the block chain — the K/V rows of tokens
//     0..M-1, exactly as a prefill of those M tokens writes them. The
//     chain is born on the inserting sequence's shard and lazily
//     *replicated* to other shards on demand, keeping reads domain-local;
//   - per layer, per head: the accumulated score-function values at the
//     prefix boundary (what the policy had added after observing the
//     prefix queries), so an adopting sequence's eviction ranking is
//     bit-exact with having prefilled the prefix itself;
//   - optionally, policy-exported score state for policies whose
//     accumulation lives outside the cache (Keyformer's shared scope).
//
// Memory accounting: every block the index holds is *reserved* against
// its pool shard, exactly like a scheduler admission, so placement and
// admission see true remaining capacity; `max_blocks` caps the index's
// total footprint and LRU entries are trimmed to fit (pinned entries —
// ones a waiting sequence's reduced admission charge depends on — are
// exempt until their pins drop).
//
// Thread safety: none. The serving engine drives the index from its
// single scheduling thread; concurrent readers of *adopted* chains are
// safe because chains are immutable and refcounted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "kvcache/kv_state.h"
#include "mem/block_pool.h"

namespace kf::mem {

/// Token id type (mirrors model::Token without depending on model/).
using PrefixToken = std::int32_t;

struct PrefixIndexConfig {
  /// Decoder layers per entry (one chain per layer).
  std::size_t n_layers = 0;
  /// Cap on blocks the index may hold across all entries and replicas;
  /// 0 = bounded only by pool capacity (reservations still apply).
  std::size_t max_blocks = 0;
  /// Shortest prefix worth indexing, in tokens; rounded up to at least
  /// one pool block.
  std::size_t min_tokens = 0;
};

struct PrefixIndexStats {
  std::size_t entries = 0;
  std::size_t blocks_held = 0;  ///< across entries and shard replicas
  std::size_t lookups = 0;
  std::size_t lookup_hits = 0;
  std::size_t insertions = 0;
  std::size_t replications = 0;  ///< lazy cross-shard chain copies
  std::size_t trims = 0;         ///< entries dropped (LRU or pressure)
};

/// One indexed prefix. Immutable after insertion; owned by the index.
class PrefixEntry {
 public:
  /// Prefix length in tokens (a whole number of pool blocks).
  std::size_t tokens() const noexcept { return run_.size(); }
  std::size_t blocks_per_layer() const noexcept { return blocks_per_layer_; }
  /// The exact token run this entry caches.
  std::span<const PrefixToken> run() const noexcept { return run_; }
  /// True when the chain has a replica on `shard` (adoptable without a
  /// copy; admission may charge only the unshared demand there).
  bool resident_on(std::size_t shard) const noexcept {
    return shard < chains_.size() && !chains_[shard].empty();
  }
  /// Policy-exported score state captured at the boundary (may be empty).
  std::span<const double> policy_scores() const noexcept {
    return policy_scores_;
  }
  std::size_t pins() const noexcept { return pins_; }

 private:
  friend class PrefixIndex;
  std::vector<PrefixToken> run_;
  std::uint64_t run_hash_ = 0;
  std::size_t blocks_per_layer_ = 0;
  /// chains_[shard][layer] — block chain replica on that shard; outer slot
  /// empty when the chain is not resident there.
  std::vector<std::vector<std::vector<BlockRef>>> chains_;
  /// scores_[layer][head][token]: accumulated score-function values at the
  /// prefix boundary (shard-independent metadata).
  std::vector<std::vector<std::vector<double>>> scores_;
  std::vector<double> policy_scores_;
  std::uint64_t last_use_ = 0;
  std::size_t pins_ = 0;
};

class PrefixIndex {
 public:
  PrefixIndex(BlockPool& pool, PrefixIndexConfig cfg);
  ~PrefixIndex();

  PrefixIndex(const PrefixIndex&) = delete;
  PrefixIndex& operator=(const PrefixIndex&) = delete;

  const PrefixIndexConfig& config() const noexcept { return cfg_; }
  PrefixIndexStats stats() const noexcept;
  std::size_t blocks_held() const noexcept { return blocks_held_; }

  /// Bumped whenever the entry set changes (insert or drop). A negative
  /// lookup stays negative until this moves, so pollers can skip the
  /// longest-prefix probe entirely between changes.
  std::uint64_t revision() const noexcept { return revision_; }

  /// Longest indexed prefix of `prompt` no longer than `max_tokens`, or
  /// null. Bumps the entry's LRU stamp.
  const PrefixEntry* lookup(std::span<const PrefixToken> prompt,
                            std::size_t max_tokens);

  /// Pins an entry against trimming (a waiting sequence's reduced
  /// admission charge depends on the chain staying resident). Balanced by
  /// unpin().
  void pin(const PrefixEntry* entry);
  void unpin(const PrefixEntry* entry);

  /// Indexes the first `run.size()` tokens of `state`'s layer caches as a
  /// new entry, *sharing* (retaining) the underlying block chain — the
  /// donor caches keep using the same blocks, now flipped to
  /// copy-on-write so the donor's own eviction can never corrupt the
  /// indexed chain. Requirements: run length is a whole number of blocks
  /// and >= min_tokens; every layer cache is paged, holds at least
  /// run.size() rows, and its leading positions are 0..run-1.
  /// `policy_scores` is opaque policy-exported state stored alongside.
  /// Returns the entry (the pre-existing one for an already-indexed run),
  /// or null when the run is ineligible or memory cannot be found even
  /// after trimming.
  const PrefixEntry* insert(std::span<const PrefixToken> run,
                            kv::SequenceKvState& state,
                            std::vector<double> policy_scores);

  /// Adopts `entry` into `state`'s (empty, paged, single-shard) layer
  /// caches: replicates the chain onto that shard first when it is not
  /// resident there, then retains it into each cache with positions and
  /// boundary scores seeded. False when the replica cannot be
  /// materialized — the caller falls back to a full prefill.
  bool adopt(const PrefixEntry* entry, kv::SequenceKvState& state);

  /// Least-recently-used entry, optionally considering pinned ones; null
  /// when none qualifies.
  const PrefixEntry* lru_candidate(bool include_pinned) const;

  /// Releases an entry's chains (all replicas) and removes it. The entry
  /// must be unpinned.
  void drop(const PrefixEntry* entry);

  /// Drops every unpinned entry (tests and servers rotating workloads).
  void clear();

 private:
  struct EntryPtrHashing;
  PrefixEntry* find_mutable(const PrefixEntry* entry);
  /// Frees enough unpinned LRU entries that `blocks` more fit under
  /// max_blocks; true on success (always true when max_blocks == 0).
  bool make_room(std::size_t blocks);
  /// Reserves + allocates a chain replica of `entry` on `shard` by copying
  /// from an existing replica; false when the shard cannot take it.
  bool replicate(PrefixEntry& entry, std::size_t shard);
  void release_chain(std::vector<std::vector<BlockRef>>& chain,
                     std::size_t shard);
  static std::uint64_t hash_run(std::span<const PrefixToken> run);

  BlockPool& pool_;
  PrefixIndexConfig cfg_;
  std::vector<std::unique_ptr<PrefixEntry>> entries_;
  std::size_t blocks_held_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t revision_ = 0;
  PrefixIndexStats stats_;
};

}  // namespace kf::mem
