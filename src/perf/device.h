// Hardware and model descriptions for the analytical performance model.
//
// The paper's system numbers (Fig 1, 9, 10; Table 1) come from MPT-7B on an
// NVIDIA A100-80GB at batch 1, beam 4. Those artifacts are hardware-gated
// here, so `kf::perf` models the first-order physics the paper itself
// appeals to: token generation is memory-bandwidth-bound, dominated by
// moving weights and the KV cache from HBM (Section 4.2).
#pragma once

#include <cstddef>
#include <string>

namespace kf::perf {

/// Accelerator description.
struct DeviceSpec {
  std::string name = "a100-80gb";
  double hbm_bytes = 80e9;            ///< capacity
  double hbm_bandwidth = 2.039e12;    ///< peak B/s (A100 80GB SXM)
  double mem_efficiency = 0.62;       ///< achievable fraction of peak BW
  double flops = 312e12;              ///< fp16 tensor-core peak FLOP/s
  double flop_efficiency = 0.35;      ///< achievable fraction on GEMV-ish work
  double kernel_overhead_s = 4.5e-6;  ///< fixed per-kernel launch cost

  double effective_bandwidth() const noexcept {
    return hbm_bandwidth * mem_efficiency;
  }
  double effective_flops() const noexcept { return flops * flop_efficiency; }

  static DeviceSpec a100_80gb();
};

/// Model description for the cost model (decoupled from kf::model's tiny
/// executable configs — these are the paper-scale shapes).
struct ModelSpec {
  std::string name = "mpt-7b";
  std::size_t n_params = 6'649'286'656;  ///< ~6.6B
  std::size_t n_layers = 32;
  std::size_t d_model = 4096;
  std::size_t n_heads = 32;
  std::size_t bytes_per_value = 2;  ///< fp16

  /// Bytes of one token's K+V entries across all layers.
  double kv_bytes_per_token() const noexcept {
    return 2.0 * static_cast<double>(n_layers) *
           static_cast<double>(d_model) *
           static_cast<double>(bytes_per_value);
  }
  /// Bytes of the weights.
  double model_bytes() const noexcept {
    return static_cast<double>(n_params) *
           static_cast<double>(bytes_per_value);
  }

  static ModelSpec mpt_7b();
  static ModelSpec gptj_6b();
  static ModelSpec cerebras_6_7b();
};

}  // namespace kf::perf
