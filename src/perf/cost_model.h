// Analytical cost model for autoregressive decoding on an accelerator.
//
// Reproduces the paper's system-level artifacts (Fig 1, Fig 9, Fig 10,
// Table 1) from first-order memory-traffic arithmetic, which is the
// mechanism the paper itself credits: "the main performance boost comes
// from reducing KV cache data movement" (Section 4.2).
//
// Per decode step with context c, batch B, beams m:
//   t_weights = model_bytes / (BW_peak * weight_bw_efficiency)
//   t_kv      = c * kv_bytes_per_token * B * m / kv_effective_bandwidth
//   t_fixed   = per_step_overhead
//   t_score   = policy-dependent: Keyformer's Gumbel-softmax + top-k cost,
//               H2O's accumulation + top-k cost (Fig 10's overhead bar)
//
// kv_effective_bandwidth is the *achieved* bandwidth of the KV-touching
// attention kernels (eager-mode attention reads KV, adds biases, runs
// softmax, concatenates the new token), which is far below HBM peak. The
// default (120 GB/s) is calibrated so that the MPT-7B full-attention rows
// of Table 1 land on the paper's 24.9 / 15.0 / 8.3 tokens/s.
//
// Cache-size evolution during generation:
//   kFull            c(t) = prompt + t              (grows)
//   kStaticPrompt    c(t) = ratio * prompt          (paper's Keyformer)
//   kGrowingFraction c(t) = ratio * (prompt + t)    (fraction of sequence)
//
// Memory model (for the Table 1 OOM rows): weights + KV (peak) + a beam-
// search reorder copy of the KV + attention scratch during prefill.
#pragma once

#include <cstddef>
#include <string>

#include "perf/device.h"

namespace kf::perf {

/// How the cached context evolves over the generation.
enum class CacheMode { kFull, kStaticPrompt, kGrowingFraction };

std::string to_string(CacheMode mode);

/// Score-function / eviction cost class of the policy being modeled.
enum class PolicyCost { kNone, kTopK, kGumbelTopK };

/// Tunable constants (defaults calibrated against Table 1).
struct CostParams {
  double weight_bw_efficiency = 0.65;   ///< big-GEMV HBM efficiency
  double kv_effective_bandwidth = 120e9;  ///< achieved B/s of KV kernels
  double per_step_overhead_s = 2.0e-3;  ///< launches, sampling, beam mgmt
  /// Score-function cost per cached token per layer per step (exp + add).
  double score_cost_per_token_layer_s = 6e-9;
  /// Top-k selection + gather cost per cached token per step.
  double topk_cost_per_token_s = 2e-9;
  /// Transient beam-reorder KV copy (fraction of KV bytes held twice).
  double beam_reorder_copy_fraction = 1.0;
  /// Residual workspace (activations, logits, allocator slack).
  double fixed_workspace_bytes = 2e9;
};

/// One experiment point.
struct WorkloadSpec {
  std::size_t prompt_len = 1024;
  std::size_t gen_len = 1024;
  std::size_t batch = 1;
  std::size_t beams = 4;
  double cache_ratio = 1.0;  ///< fraction of context kept (<= 1.0)
  CacheMode cache_mode = CacheMode::kFull;
  PolicyCost policy_cost = PolicyCost::kNone;
};

/// Cost decomposition of one decode step.
struct StepCost {
  double weight_time = 0.0;
  double kv_time = 0.0;
  double fixed_time = 0.0;
  double score_time = 0.0;
  double kv_bytes = 0.0;
  double total() const noexcept {
    return weight_time + kv_time + fixed_time + score_time;
  }
};

/// Cost of an entire prompt + generation run.
struct InferenceCost {
  double prefill_seconds = 0.0;
  double decode_seconds = 0.0;
  double kv_movement_seconds = 0.0;  ///< sum of per-step kv_time
  double score_seconds = 0.0;        ///< sum of per-step score_time
  double other_seconds = 0.0;        ///< everything else
  double total_seconds = 0.0;
  double throughput_tokens_per_s = 0.0;  ///< batch * gen_len / total
  double kv_cache_peak_bytes = 0.0;
  double model_bytes = 0.0;
  double peak_memory_bytes = 0.0;
  bool oom = false;
};

class CostModel {
 public:
  CostModel(DeviceSpec device, ModelSpec model, CostParams params = {});

  const DeviceSpec& device() const noexcept { return device_; }
  const ModelSpec& model() const noexcept { return model_; }
  const CostParams& params() const noexcept { return params_; }

  /// Context length visible at decode step t (0-based) for a workload.
  std::size_t context_at_step(const WorkloadSpec& w, std::size_t t) const;

  /// Cost decomposition of one decode step with `context` cached tokens.
  StepCost decode_step(std::size_t context, const WorkloadSpec& w) const;

  /// Prefill (prompt processing) time: compute-bound GEMMs + KV writes.
  double prefill_seconds(const WorkloadSpec& w) const;

  /// Peak KV bytes across the run.
  double kv_peak_bytes(const WorkloadSpec& w) const;

  /// Full run. Sets `oom` when peak memory exceeds device HBM; timings are
  /// still reported (as if memory were infinite) so OOM rows can explain
  /// themselves.
  InferenceCost run(const WorkloadSpec& w) const;

 private:
  DeviceSpec device_;
  ModelSpec model_;
  CostParams params_;
};

}  // namespace kf::perf
