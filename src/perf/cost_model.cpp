#include "perf/cost_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace kf::perf {

std::string to_string(CacheMode mode) {
  switch (mode) {
    case CacheMode::kFull: return "full";
    case CacheMode::kStaticPrompt: return "static_prompt";
    case CacheMode::kGrowingFraction: return "growing_fraction";
  }
  return "unknown";
}

CostModel::CostModel(DeviceSpec device, ModelSpec model, CostParams params)
    : device_(device), model_(model), params_(params) {
  if (params_.kv_effective_bandwidth <= 0.0 ||
      params_.weight_bw_efficiency <= 0.0) {
    throw std::invalid_argument("cost model bandwidths must be positive");
  }
}

std::size_t CostModel::context_at_step(const WorkloadSpec& w,
                                       std::size_t t) const {
  switch (w.cache_mode) {
    case CacheMode::kFull:
      return w.prompt_len + t;
    case CacheMode::kStaticPrompt:
      return std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(w.cache_ratio *
                           static_cast<double>(w.prompt_len))));
    case CacheMode::kGrowingFraction:
      return std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(w.cache_ratio *
                           static_cast<double>(w.prompt_len + t))));
  }
  return w.prompt_len + t;
}

StepCost CostModel::decode_step(std::size_t context,
                                const WorkloadSpec& w) const {
  StepCost s;
  s.weight_time =
      model_.model_bytes() /
      (device_.hbm_bandwidth * params_.weight_bw_efficiency);
  s.kv_bytes = static_cast<double>(context) * model_.kv_bytes_per_token() *
               static_cast<double>(w.batch) * static_cast<double>(w.beams);
  s.kv_time = s.kv_bytes / params_.kv_effective_bandwidth;
  s.fixed_time = params_.per_step_overhead_s;

  const double ctx_tokens = static_cast<double>(context) *
                            static_cast<double>(w.batch) *
                            static_cast<double>(w.beams);
  switch (w.policy_cost) {
    case PolicyCost::kNone:
      break;
    case PolicyCost::kTopK:
      s.score_time = ctx_tokens * params_.topk_cost_per_token_s;
      break;
    case PolicyCost::kGumbelTopK:
      s.score_time =
          ctx_tokens * (params_.topk_cost_per_token_s +
                        static_cast<double>(model_.n_layers) *
                            params_.score_cost_per_token_layer_s);
      break;
  }
  return s;
}

double CostModel::prefill_seconds(const WorkloadSpec& w) const {
  // Dense GEMMs: ~2 * params FLOPs per token, compute-bound.
  const double tokens = static_cast<double>(w.prompt_len) *
                        static_cast<double>(w.batch) *
                        static_cast<double>(w.beams);
  const double gemm_flops =
      2.0 * static_cast<double>(model_.n_params) * tokens;
  // Attention score + context matmuls: 4 * c^2 * d per layer.
  const double c = static_cast<double>(w.prompt_len);
  const double attn_flops = 4.0 * c * c *
                            static_cast<double>(model_.d_model) *
                            static_cast<double>(model_.n_layers) *
                            static_cast<double>(w.batch) *
                            static_cast<double>(w.beams);
  const double compute =
      (gemm_flops + attn_flops) / device_.effective_flops();
  // KV write traffic for the prompt.
  const double kv_write =
      tokens * model_.kv_bytes_per_token() / device_.effective_bandwidth();
  return compute + kv_write;
}

double CostModel::kv_peak_bytes(const WorkloadSpec& w) const {
  // The prompt is fully cached before any eviction (prefill peak), and the
  // decode-phase cache may grow beyond it in kFull/kGrowingFraction modes.
  const double per_tok = model_.kv_bytes_per_token() *
                         static_cast<double>(w.batch) *
                         static_cast<double>(w.beams);
  const double prefill_peak = static_cast<double>(w.prompt_len) * per_tok;
  const double last_ctx = static_cast<double>(
      context_at_step(w, w.gen_len > 0 ? w.gen_len - 1 : 0));
  return std::max(prefill_peak, last_ctx * per_tok);
}

InferenceCost CostModel::run(const WorkloadSpec& w) const {
  if (w.cache_ratio <= 0.0 || w.cache_ratio > 1.0) {
    throw std::invalid_argument("cache_ratio must be in (0, 1]");
  }
  InferenceCost out;
  out.prefill_seconds = prefill_seconds(w);
  for (std::size_t t = 0; t < w.gen_len; ++t) {
    const StepCost s = decode_step(context_at_step(w, t), w);
    out.decode_seconds += s.total();
    out.kv_movement_seconds += s.kv_time;
    out.score_seconds += s.score_time;
  }
  out.total_seconds = out.prefill_seconds + out.decode_seconds;
  out.other_seconds =
      out.total_seconds - out.kv_movement_seconds - out.score_seconds;
  out.throughput_tokens_per_s =
      static_cast<double>(w.batch) * static_cast<double>(w.gen_len) /
      out.total_seconds;

  out.model_bytes = model_.model_bytes();
  out.kv_cache_peak_bytes = kv_peak_bytes(w);
  // Attention scratch during prefill: one [heads, c, c] fp16 score matrix
  // per layer materialized transiently (eager attention).
  const double c = static_cast<double>(w.prompt_len);
  const double attn_scratch = static_cast<double>(model_.n_heads) * c * c *
                              static_cast<double>(model_.bytes_per_value) *
                              static_cast<double>(w.batch) *
                              static_cast<double>(w.beams);
  out.peak_memory_bytes =
      out.model_bytes +
      out.kv_cache_peak_bytes * (1.0 + params_.beam_reorder_copy_fraction) +
      attn_scratch + params_.fixed_workspace_bytes;
  out.oom = out.peak_memory_bytes > device_.hbm_bytes;
  return out;
}

}  // namespace kf::perf
