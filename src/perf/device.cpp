#include "perf/device.h"

namespace kf::perf {

DeviceSpec DeviceSpec::a100_80gb() { return DeviceSpec{}; }

ModelSpec ModelSpec::mpt_7b() { return ModelSpec{}; }

ModelSpec ModelSpec::gptj_6b() {
  ModelSpec m;
  m.name = "gpt-j-6b";
  m.n_params = 6'053'381'344;
  m.n_layers = 28;
  m.d_model = 4096;
  m.n_heads = 16;
  return m;
}

ModelSpec ModelSpec::cerebras_6_7b() {
  ModelSpec m;
  m.name = "cerebras-gpt-6.7b";
  m.n_params = 6'658'404'352;
  m.n_layers = 32;
  m.d_model = 4096;
  m.n_heads = 32;
  return m;
}

}  // namespace kf::perf
