#include "obs/monitor.h"

#include <algorithm>

#include "core/timing.h"

namespace kf::obs {

Monitor::Monitor(MonitorConfig cfg) : cfg_(cfg) {
  cfg_.period_ms = std::max(cfg_.period_ms, 0.1);
  cfg_.capacity = std::max<std::size_t>(1, cfg_.capacity);
}

Monitor::~Monitor() { stop(); }

std::size_t Monitor::make_series_locked(std::string name) {
  series_.emplace_back(std::move(name), TimeSeries(cfg_.capacity));
  return series_.size() - 1;
}

void Monitor::add_probe(std::string name, Probe probe) {
  LockGuard lock(mu_);
  ProbeEntry entry;
  entry.fn = std::move(probe);
  entry.series_index = make_series_locked(name);
  entry.name = std::move(name);
  probes_.push_back(std::move(entry));
}

void Monitor::add_histogram_probe(std::string name, const Histogram& hist) {
  LockGuard lock(mu_);
  HistProbeEntry entry;
  entry.hist = &hist;
  entry.last = hist.full_snapshot();
  entry.last_t = now_seconds();
  entry.rate_index = make_series_locked(name + ".rate_per_s");
  entry.p50_index = make_series_locked(name + ".window_p50_ms");
  entry.p99_index = make_series_locked(name + ".window_p99_ms");
  entry.name = std::move(name);
  hist_probes_.push_back(std::move(entry));
}

void Monitor::start() {
  {
    LockGuard lock(mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
    if (epoch_seconds_ == 0.0) epoch_seconds_ = now_seconds();
  }
  thread_ = std::thread([this] { thread_main(); });
}

void Monitor::stop() {
  {
    LockGuard lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
    cv_.notify_all();
  }
  thread_.join();
  LockGuard lock(mu_);
  running_ = false;
  stop_requested_ = false;
}

bool Monitor::running() const {
  LockGuard lock(mu_);
  return running_;
}

void Monitor::thread_main() {
  mu_.lock();
  while (!stop_requested_) {
    poll_locked(now_seconds());
    // Sleeps the poll period; stop() notifies it awake immediately.
    cv_.wait_for(mu_, cfg_.period_ms * 1e-3);
  }
  mu_.unlock();
}

void Monitor::poll_once() {
  LockGuard lock(mu_);
  if (epoch_seconds_ == 0.0) epoch_seconds_ = now_seconds();
  poll_locked(now_seconds());
}

void Monitor::poll_locked(double t_abs) {
  const double t = t_abs - epoch_seconds_;
  ++polls_;
  for (ProbeEntry& probe : probes_) {
    series_[probe.series_index].second.append(t, probe.fn());
  }
  for (HistProbeEntry& probe : hist_probes_) {
    const HistogramSnapshot now = probe.hist->full_snapshot();
    const HistogramSnapshot window = snapshot_diff(now, probe.last);
    const double dt = t_abs - probe.last_t;
    const double rate =
        dt > 0.0 ? static_cast<double>(window.count) / dt : 0.0;
    series_[probe.rate_index].second.append(t, rate);
    series_[probe.p50_index].second.append(t, window.percentile(0.50) * 1e3);
    series_[probe.p99_index].second.append(t, window.percentile(0.99) * 1e3);
    probe.last = now;
    probe.last_t = t_abs;
  }
}

std::uint64_t Monitor::polls() const {
  LockGuard lock(mu_);
  return polls_;
}

TimeSeries Monitor::series(const std::string& name) const {
  LockGuard lock(mu_);
  for (const auto& [series_name, series] : series_) {
    if (series_name == name) return series;
  }
  return TimeSeries(1);
}

std::vector<std::pair<std::string, TimeSeries>> Monitor::snapshot() const {
  LockGuard lock(mu_);
  return series_;
}

}  // namespace kf::obs
