// Span tracer: Chrome trace-event JSON (chrome://tracing, Perfetto) from
// lock-free per-thread ring buffers.
//
// Cost model: when tracing is disabled, KF_TRACE_SCOPE is one relaxed
// atomic load; compiled with -DKF_TRACE_DISABLED it is nothing at all.
// When enabled, a scope costs two trace_ticks() reads (TSC on x86-64) and
// one buffer slot write -- no locks, no allocation after a thread's first
// event. Event names and categories must be string literals (the buffer
// stores the pointers).
//
// Buffers never wrap: each thread publishes events [0, head) with a
// release store and a full buffer drops new events (counted). A published
// slot is never rewritten, so write_chrome_trace() may run concurrently
// with recorders and still reads only complete events; call it after
// Engine::run() returns (ThreadPool joins give the happens-before) for a
// complete file. trace_reset() additionally requires quiescence.
#pragma once

#include <cstdint>
#include <string>

#include "core/timing.h"

namespace kf::obs {

/// True when spans are being collected (process-wide, relaxed load).
bool trace_enabled() noexcept;

/// Turns collection on/off. Enabling touches the trace clock so the
/// calibration anchor predates every event.
void set_trace_enabled(bool on);

/// Events currently buffered across all threads.
std::size_t trace_event_count();

/// Events dropped because a thread's buffer filled.
std::size_t trace_dropped_count();

/// Resets all buffers and the dropped counter. Requires quiescence: no
/// concurrent recorders (tracing disabled, worker pools joined).
void trace_reset();

/// Records a completed span [start_ticks, end_ticks] on this thread.
/// `name`/`cat` must be string literals (pointers are stored).
void trace_complete(const char* name, const char* cat,
                    std::uint64_t start_ticks,
                    std::uint64_t end_ticks) noexcept;

/// Records an instantaneous event ("ph":"i") on this thread.
void trace_instant(const char* name, const char* cat = "engine") noexcept;

/// Writes buffered events as Chrome trace-event JSON ({"traceEvents":
/// [...]}, timestamps in microseconds since the trace-clock anchor).
/// Returns false when the file cannot be written.
bool write_chrome_trace(const std::string& path);

/// RAII span: records [construction, destruction] when tracing was
/// enabled at construction.
class TraceScope {
 public:
  explicit TraceScope(const char* name,
                      const char* cat = "engine") noexcept {
    if (trace_enabled()) {
      name_ = name;
      cat_ = cat;
      start_ = trace_ticks();
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) {
      trace_complete(name_, cat_, start_, trace_ticks());
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace kf::obs

// KF_TRACE_SCOPE(name[, cat]): names a span covering the rest of the
// enclosing block. Compiles to nothing under -DKF_TRACE_DISABLED. Keep
// out of per-ISA src/cpu variant TUs (scripts/lint.py enforces this):
// the innermost kernels are measured through their timing sinks instead.
#if defined(KF_TRACE_DISABLED)
#define KF_TRACE_SCOPE(...) \
  do {                      \
  } while (false)
#define KF_TRACE_INSTANT(...) \
  do {                        \
  } while (false)
#else
#define KF_TRACE_CONCAT_IMPL(a, b) a##b
#define KF_TRACE_CONCAT(a, b) KF_TRACE_CONCAT_IMPL(a, b)
#define KF_TRACE_SCOPE(...)                                    \
  const ::kf::obs::TraceScope KF_TRACE_CONCAT(kf_trace_scope_, \
                                              __COUNTER__) {   \
    __VA_ARGS__                                                \
  }
#define KF_TRACE_INSTANT(...) ::kf::obs::trace_instant(__VA_ARGS__)
#endif
