#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "core/mutex.h"

namespace kf::obs {

namespace {

struct TraceEvent {
  const char* name;
  const char* cat;
  std::uint64_t start_ticks;
  std::uint64_t end_ticks;  ///< == start_ticks for instants
  bool instant;
};

/// Per-thread event buffer. The owning thread writes slots_[head] then
/// publishes with a release store of head_; readers acquire-load head_
/// and see complete slots. head_ only grows until trace_reset().
struct ThreadBuffer {
  static constexpr std::size_t kCapacity = 1 << 14;  ///< 16K events/thread

  void record(const TraceEvent& ev) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h >= kCapacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots_[h] = ev;
    head_.store(h + 1, std::memory_order_release);
  }

  std::vector<TraceEvent> slots_ = std::vector<TraceEvent>(kCapacity);
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::uint32_t tid = 0;
};

std::atomic<bool> g_enabled{false};

/// Registry of every thread's buffer. Buffers are owned here (not by the
/// thread) so events survive thread exit and flush can walk them all.
struct BufferRegistry {
  Mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers KF_GUARDED_BY(mu);
};

BufferRegistry& registry() {
  static BufferRegistry* r = new BufferRegistry();  // leaked: outlive TLS
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    BufferRegistry& reg = registry();
    LockGuard lock(reg.mu);
    raw->tid = static_cast<std::uint32_t>(reg.buffers.size() + 1);
    reg.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buf;
}

/// Snapshot of the buffer list; each buffer is then drained lock-free.
std::vector<ThreadBuffer*> all_buffers() {
  BufferRegistry& reg = registry();
  LockGuard lock(reg.mu);
  std::vector<ThreadBuffer*> out;
  out.reserve(reg.buffers.size());
  for (const auto& b : reg.buffers) {
    out.push_back(b.get());
  }
  return out;
}

void append_json_string(std::string& out, const char* s) {
  out.push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_micros(std::string& out, double us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  out.append(buf);
}

}  // namespace

bool trace_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  if (on) {
    // Touch the clock so the anchor predates every recorded event.
    (void)trace_clock_anchor();
  }
  g_enabled.store(on, std::memory_order_relaxed);
}

std::size_t trace_event_count() {
  std::size_t total = 0;
  for (ThreadBuffer* b : all_buffers()) {
    total += static_cast<std::size_t>(
        b->head_.load(std::memory_order_acquire));
  }
  return total;
}

std::size_t trace_dropped_count() {
  std::size_t total = 0;
  for (ThreadBuffer* b : all_buffers()) {
    total += static_cast<std::size_t>(
        b->dropped_.load(std::memory_order_relaxed));
  }
  return total;
}

void trace_reset() {
  for (ThreadBuffer* b : all_buffers()) {
    b->head_.store(0, std::memory_order_relaxed);
    b->dropped_.store(0, std::memory_order_relaxed);
  }
}

void trace_complete(const char* name, const char* cat,
                    std::uint64_t start_ticks,
                    std::uint64_t end_ticks) noexcept {
  if (!trace_enabled()) {
    return;
  }
  local_buffer().record(
      TraceEvent{name, cat, start_ticks, end_ticks, false});
}

void trace_instant(const char* name, const char* cat) noexcept {
  if (!trace_enabled()) {
    return;
  }
  const std::uint64_t t = trace_ticks();
  local_buffer().record(TraceEvent{name, cat, t, t, true});
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  const std::uint64_t anchor = trace_clock_anchor();
  std::string json;
  json.reserve(std::size_t{1} << 16);
  json.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  for (ThreadBuffer* b : all_buffers()) {
    const std::uint64_t n = b->head_.load(std::memory_order_acquire);
    for (std::uint64_t i = 0; i < n; ++i) {
      const TraceEvent& ev = b->slots_[i];
      if (!first) {
        json.push_back(',');
      }
      first = false;
      json.append("{\"name\":");
      append_json_string(json, ev.name);
      json.append(",\"cat\":");
      append_json_string(json, ev.cat);
      const std::uint64_t rel =
          ev.start_ticks >= anchor ? ev.start_ticks - anchor : 0;
      const double ts = trace_ticks_to_seconds(rel) * 1e6;
      if (ev.instant) {
        json.append(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
        append_micros(json, ts);
      } else {
        const std::uint64_t span = ev.end_ticks >= ev.start_ticks
                                       ? ev.end_ticks - ev.start_ticks
                                       : 0;
        const double dur = trace_ticks_to_seconds(span) * 1e6;
        json.append(",\"ph\":\"X\",\"ts\":");
        append_micros(json, ts);
        json.append(",\"dur\":");
        append_micros(json, dur);
      }
      json.append(",\"pid\":1,\"tid\":");
      json.append(std::to_string(b->tid));
      json.push_back('}');
    }
  }
  json.append("]}\n");
  out << json;
  return static_cast<bool>(out);
}

}  // namespace kf::obs
