#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace kf::obs {

namespace {
std::atomic<unsigned long long> g_diag_count{0};
}  // namespace

void diag(std::string_view message) {
  // Allowlisted in scripts/lint.py: the single fprintf in library code.
  std::string line = "kf: ";
  line.append(message);
  line.push_back('\n');
  std::fprintf(stderr, "%s", line.c_str());
  g_diag_count.fetch_add(1, std::memory_order_relaxed);
}

unsigned long long diag_count() {
  return g_diag_count.load(std::memory_order_relaxed);
}

}  // namespace kf::obs
