// Live-telemetry monitor: a background thread that polls registered
// probes on a wall-clock period into fixed-capacity TimeSeries rings —
// the "how did this metric evolve over the run" half of observability
// that the registry's cumulative counters cannot answer.
//
// Usage:
//   obs::Monitor monitor({.period_ms = 5.0});
//   monitor.add_probe("pool.used_blocks",
//                     [&] { return double(pool.stats().used_blocks); });
//   monitor.add_histogram_probe("step", engine.metrics()
//                                            .histogram("serve.step_seconds"));
//   monitor.start();
//   ... engine.run(...) on another thread (or this one) ...
//   monitor.stop();
//   write_timeseries_json(monitor, "timeseries.json");
//
// Threading contract: every probe callback runs on the monitor thread
// while the monitor's mutex is held, so probes must only touch state
// that is safe to read from a foreign thread mid-run — exactly the
// surfaces the PR 6 locking pass prepared (Engine::stats(),
// BlockPool::stats(), PrefixIndex::stats(), registry histograms). A
// probe must never call back into its own Monitor. Shutdown is an
// annotated mutex/condvar handshake: stop() sets the flag, notifies the
// sleeping thread out of its period wait, and joins.
//
// Histogram probes keep the previous full snapshot and report the
// *window* between polls (snapshot_diff): a completions-per-second rate
// series plus per-window p50/p99 latency series, so a latency regression
// mid-run is visible at the poll where it happened instead of being
// averaged into the run-cumulative percentiles.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/annotations.h"
#include "core/mutex.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace kf::obs {

struct MonitorConfig {
  /// Poll period in wall-clock milliseconds (floored at 0.1 ms).
  double period_ms = 10.0;
  /// Retained samples per series; older samples drop (and are counted).
  std::size_t capacity = 4096;
};

class Monitor {
 public:
  /// A scalar probe: called once per poll, returns the sample value.
  using Probe = std::function<double()>;

  explicit Monitor(MonitorConfig cfg = {});
  ~Monitor();  ///< stops the thread if still running
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Registers a scalar probe feeding the series `name`. Safe before or
  /// during polling; the first sample lands on the next poll.
  void add_probe(std::string name, Probe probe) KF_EXCLUDES(mu_);

  /// Registers a histogram probe: per poll it diffs `hist` against the
  /// previous poll's snapshot and feeds three series — `<name>.rate_per_s`
  /// (window records per second), `<name>.window_p50_ms` and
  /// `<name>.window_p99_ms` (window percentiles, 0 for an empty window).
  /// `hist` must outlive the monitor.
  void add_histogram_probe(std::string name, const Histogram& hist)
      KF_EXCLUDES(mu_);

  /// Starts the background thread (no-op when already running).
  void start() KF_EXCLUDES(mu_);
  /// Stops and joins the background thread (no-op when not running). The
  /// collected series survive; start() may be called again.
  void stop() KF_EXCLUDES(mu_);
  bool running() const KF_EXCLUDES(mu_);

  /// One synchronous poll of every probe — what the thread does each
  /// period; callable without start() for deterministic tests.
  void poll_once() KF_EXCLUDES(mu_);

  /// Polls executed so far (thread ticks + manual poll_once calls).
  std::uint64_t polls() const KF_EXCLUDES(mu_);

  /// Copy of one series' retained window; empty series when `name` is
  /// unknown. Sample timestamps are seconds since the first start()/poll.
  TimeSeries series(const std::string& name) const KF_EXCLUDES(mu_);

  /// Copies of every series (probe registration order; histogram probes
  /// contribute their three derived series).
  std::vector<std::pair<std::string, TimeSeries>> snapshot() const
      KF_EXCLUDES(mu_);

  const MonitorConfig& config() const noexcept { return cfg_; }

 private:
  struct ProbeEntry {
    std::string name;
    Probe fn;
    std::size_t series_index;
  };
  struct HistProbeEntry {
    std::string name;
    const Histogram* hist;
    HistogramSnapshot last;
    double last_t = 0.0;
    std::size_t rate_index;
    std::size_t p50_index;
    std::size_t p99_index;
  };

  void thread_main();
  void poll_locked(double t_abs) KF_REQUIRES(mu_);
  std::size_t make_series_locked(std::string name) KF_REQUIRES(mu_);

  MonitorConfig cfg_;
  mutable Mutex mu_;
  CondVar cv_;
  bool running_ KF_GUARDED_BY(mu_) = false;
  bool stop_requested_ KF_GUARDED_BY(mu_) = false;
  /// Wall clock of the first start()/poll; sample timestamps are
  /// relative to it (0 = not yet established).
  double epoch_seconds_ KF_GUARDED_BY(mu_) = 0.0;
  std::uint64_t polls_ KF_GUARDED_BY(mu_) = 0;
  std::vector<ProbeEntry> probes_ KF_GUARDED_BY(mu_);
  std::vector<HistProbeEntry> hist_probes_ KF_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, TimeSeries>> series_ KF_GUARDED_BY(mu_);
  /// Touched only by start()/stop()/~Monitor, which the threading
  /// contract already serializes (they are control-plane calls).
  std::thread thread_;
};

}  // namespace kf::obs
