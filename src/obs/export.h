// Exporters for the observability layer: Prometheus text-exposition
// format for a MetricsRegistry, and a JSON time-series dump for a
// Monitor's rings.
//
// Prometheus mapping (text format 0.0.4, promtool-checkable):
//   - metric names are `<prefix>_<name>` with every non-[a-zA-Z0-9_:]
//     character of the registry name replaced by '_'
//     ("sched.admitted" -> kf_sched_admitted_total);
//   - Counter  -> `# TYPE ... counter` + a `_total`-suffixed sample;
//   - Gauge    -> `# TYPE ... gauge` + one sample;
//   - Histogram-> `# TYPE ... histogram` + cumulative `_bucket{le="..."}`
//     samples (seconds; only occupied buckets are emitted — cumulative
//     buckets make any subset of the boundaries valid — plus the
//     mandatory `le="+Inf"`), `_sum` (seconds) and `_count`.
//
// Time-series JSON shape:
//   { "period_ms": 5.0, "polls": N,
//     "series": [ { "name": "...", "dropped": 0,
//                   "samples": [[t_seconds, value], ...] }, ... ] }
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/monitor.h"

namespace kf::obs {

/// Renders the registry in Prometheus text-exposition format.
std::string to_prometheus(const MetricsRegistry& registry,
                          const std::string& prefix = "kf");

/// Writes to_prometheus(registry) to `path`; false on I/O failure.
bool write_prometheus(const MetricsRegistry& registry,
                      const std::string& path,
                      const std::string& prefix = "kf");

/// Renders the monitor's retained series windows as JSON.
std::string to_timeseries_json(const Monitor& monitor);

/// Writes to_timeseries_json(monitor) to `path`; false on I/O failure.
bool write_timeseries_json(const Monitor& monitor, const std::string& path);

}  // namespace kf::obs
