// The one sanctioned stderr diagnostic sink for library code. scripts/
// lint.py forbids std::cout/std::cerr/printf/fprintf everywhere under src/
// except obs/log.cpp, so every rare human-facing warning (bad env override,
// clamped thread count) funnels through diag() and stays greppable.
#pragma once

#include <string_view>

namespace kf::obs {

/// Writes one diagnostic line to stderr ("kf: <message>\n"). Thread-safe
/// (single stdio call). For rare, human-facing conditions only -- metrics
/// and traces carry machine-facing telemetry.
void diag(std::string_view message);

/// Number of diagnostics emitted since process start (test hook).
unsigned long long diag_count();

}  // namespace kf::obs
