// Per-request lifecycle timeline: wall-clock stamps for the events a
// request passes through (queued -> admitted -> prefill -> first token ->
// ... -> finished), distilled into the latency figures a serving SLO is
// written against (TTFT, queue wait, inter-token gaps). The engine stamps
// these from its single scheduling thread; the finished timeline rides on
// Response for callers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

namespace kf::obs {

enum class TimelineEventKind {
  kQueued,        ///< engine first saw the request at its arrival step
  kAdmitted,      ///< scheduler granted a batch slot + KV reservation
  kPrefillStart,  ///< prompt prefill (or resume replay) began
  kPrefillEnd,    ///< prompt fully prefilled
  kFirstToken,    ///< first generated token committed
  kPreempted,     ///< parked under memory pressure (KV released)
  kResumed,       ///< re-admitted; recompute replay about to run
  kFinished,      ///< terminal: completed, rejected, or timed out
};

const char* to_string(TimelineEventKind kind) noexcept;

struct TimelineEvent {
  TimelineEventKind kind{};
  double t = 0.0;  ///< kf::now_seconds() stamp (differences meaningful)
};

/// Running min/mean/max over a small stream (per-request inter-token
/// gaps). Single-writer; no synchronization.
struct StreamStats {
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double v) noexcept {
    min = count == 0 ? v : std::min(min, v);
    max = count == 0 ? v : std::max(max, v);
    sum += v;
    ++count;
  }
  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Ordered event list for one request. Events append in stamp order;
/// kPreempted/kResumed may repeat, the rest appear at most once.
class RequestTimeline {
 public:
  void mark(TimelineEventKind kind, double t) { events_.push_back({kind, t}); }

  const std::vector<TimelineEvent>& events() const noexcept {
    return events_;
  }

  bool has(TimelineEventKind kind) const noexcept {
    return first(kind).has_value();
  }

  std::optional<double> first(TimelineEventKind kind) const noexcept {
    for (const TimelineEvent& e : events_) {
      if (e.kind == kind) {
        return e.t;
      }
    }
    return std::nullopt;
  }

  std::optional<double> last(TimelineEventKind kind) const noexcept {
    for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
      if (it->kind == kind) {
        return it->t;
      }
    }
    return std::nullopt;
  }

  /// first token - queued; 0 when either stamp is missing.
  double ttft_seconds() const noexcept {
    return delta(TimelineEventKind::kQueued, TimelineEventKind::kFirstToken);
  }

  /// first admission - queued; 0 when either stamp is missing.
  double queue_wait_seconds() const noexcept {
    return delta(TimelineEventKind::kQueued, TimelineEventKind::kAdmitted);
  }

  /// finished - queued; 0 when either stamp is missing.
  double e2e_seconds() const noexcept {
    return delta(TimelineEventKind::kQueued, TimelineEventKind::kFinished);
  }

 private:
  double delta(TimelineEventKind from, TimelineEventKind to) const noexcept {
    const std::optional<double> a = first(from);
    const std::optional<double> b = first(to);
    if (!a.has_value() || !b.has_value()) {
      return 0.0;
    }
    return *b - *a;
  }

  std::vector<TimelineEvent> events_;
};

}  // namespace kf::obs
