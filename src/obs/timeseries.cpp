#include "obs/timeseries.h"

#include <algorithm>

namespace kf::obs {

TimeSeries::TimeSeries(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.resize(capacity_);
}

void TimeSeries::append(double t, double value) {
  if (size_ < capacity_) {
    ring_[(head_ + size_) % capacity_] = TimeSample{t, value};
    ++size_;
    return;
  }
  ring_[head_] = TimeSample{t, value};
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

const TimeSample& TimeSeries::at(std::size_t i) const noexcept {
  return ring_[(head_ + i) % capacity_];
}

std::vector<TimeSample> TimeSeries::samples() const {
  std::vector<TimeSample> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(at(i));
  }
  return out;
}

double TimeSeries::last() const noexcept {
  return size_ == 0 ? 0.0 : at(size_ - 1).value;
}

double TimeSeries::min() const noexcept {
  if (size_ == 0) return 0.0;
  double m = at(0).value;
  for (std::size_t i = 1; i < size_; ++i) m = std::min(m, at(i).value);
  return m;
}

double TimeSeries::max() const noexcept {
  if (size_ == 0) return 0.0;
  double m = at(0).value;
  for (std::size_t i = 1; i < size_; ++i) m = std::max(m, at(i).value);
  return m;
}

double TimeSeries::mean() const noexcept {
  if (size_ == 0) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < size_; ++i) total += at(i).value;
  return total / static_cast<double>(size_);
}

}  // namespace kf::obs
