// Fixed-capacity time-series ring buffer: the storage unit behind the
// Monitor's live polling. Each sample is a (timestamp, value) pair;
// once the ring is full, append() overwrites the oldest sample and
// counts the drop, so a long-running monitor keeps the most recent
// window at a bounded memory cost. Reductions (last/min/max/mean) run
// over the retained window only.
//
// NOT internally synchronized: the Monitor owns its rings and guards
// every access with its own annotated mutex. Copyable on purpose —
// snapshot() hands callers a value they can walk lock-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kf::obs {

/// One monitored observation: seconds since the monitor started, value
/// in whatever unit the probe reports (tokens, blocks, a rate, ...).
struct TimeSample {
  double t = 0.0;
  double value = 0.0;
};

class TimeSeries {
 public:
  /// `capacity` is the retained-window size in samples (floored at 1).
  explicit TimeSeries(std::size_t capacity);

  /// Appends one sample; once full, the oldest sample is dropped (and
  /// counted in dropped()).
  void append(double t, double value);

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return size_ == 0; }
  /// Samples overwritten since construction (total appended = size() +
  /// dropped()).
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// The i-th retained sample, oldest first; i must be < size().
  const TimeSample& at(std::size_t i) const noexcept;

  /// Retained samples, oldest first.
  std::vector<TimeSample> samples() const;

  // Reductions over the retained window; 0 when empty.
  double last() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;

 private:
  std::size_t capacity_;
  std::vector<TimeSample> ring_;
  std::size_t head_ = 0;  ///< ring index of the oldest retained sample
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace kf::obs
