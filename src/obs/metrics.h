// Metrics registry for the serving stack: named counters, gauges, and
// log-bucketed latency histograms with p50/p95/p99 extraction.
//
// Hot-path cost model:
//   - Counter::add is one relaxed fetch_add on a per-thread cache-line-
//     padded shard (no sharing between decode workers);
//   - Histogram::record is one relaxed fetch_add on a bucket plus relaxed
//     min/max/sum maintenance -- no mutex on any record path;
//   - MetricsRegistry lookups (name -> metric) take the annotated
//     kf::Mutex, so resolve metric pointers once at construction time and
//     keep them; the returned references stay valid for the registry's
//     lifetime.
//
// Histogram buckets are HDR-style: 8 sub-buckets per power-of-two octave
// over [1ns, ~2^42ns], so any reported percentile is the bucket upper
// bound, within 12.5% of the true value (and exact for the recorded
// maximum -- the top of the distribution is what p99 columns care about).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/annotations.h"
#include "core/mutex.h"

namespace kf::obs {

/// Monotonic event counter, sharded per thread so concurrent add() calls
/// from decode workers never contend on one cache line.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds `n` (relaxed; one atomic add on this thread's shard).
  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over shards. Concurrent adds may or may not be included.
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t shard_index() noexcept;
  std::array<Shard, kShards> shards_;
};

/// Last-write-wins scalar (pool utilization, active batch size, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Snapshot of a latency distribution, in seconds.
struct Percentiles {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

struct HistogramSnapshot;

/// Log-bucketed concurrent histogram of durations in seconds.
///
/// record() is wait-free (relaxed atomics only); percentile extraction
/// walks the bucket array without locking, so a snapshot taken while
/// recorders are active is approximate but never torn or racy.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one duration. Negative values clamp to zero; values above
  /// ~2^42 ns (~73 minutes) saturate into the top bucket (the exact
  /// maximum is still tracked and returned for top-bucket percentiles).
  void record(double seconds) noexcept;

  /// Nearest-rank percentile in seconds, `q` in [0, 1]. Returns the
  /// bucket upper bound clamped to the recorded maximum (hence exact for
  /// single-bucket and top-of-range queries); 0 when empty.
  double percentile(double q) const noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept;
  double min() const noexcept;
  double max() const noexcept;

  /// One consistent-enough snapshot of count/p50/p95/p99/mean/max.
  Percentiles snapshot() const noexcept;

  /// Full-resolution copy of the bucket array and registers — the input
  /// to exporters (Prometheus `_bucket` series) and to per-window deltas
  /// (snapshot_diff). Same consistency model as snapshot().
  HistogramSnapshot full_snapshot() const noexcept;

  static constexpr std::size_t kSubBits = 3;  ///< 8 sub-buckets per octave.
  static constexpr std::size_t kSubCount = std::size_t{1} << kSubBits;
  static constexpr std::size_t kMaxShift = 39;  ///< top octave ~2^42 ns.
  static constexpr std::size_t kBucketCount =
      (kMaxShift + 2) << kSubBits;  ///< 328 buckets.

  /// Inclusive upper bound, in ns, of bucket `index`. The last bucket is
  /// a saturation bucket whose nominal bound understates its contents.
  static std::uint64_t bucket_upper_ns(std::size_t index) noexcept;

 private:
  static std::size_t bucket_index(std::uint64_t ns) noexcept;

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Plain-value copy of a Histogram: per-bucket counts plus the count /
/// sum / min / max registers. Two uses:
///   - exporters walk `buckets` to emit cumulative Prometheus `_bucket`
///     series;
///   - a monitor keeps the previous snapshot and calls snapshot_diff()
///     to get the *window's* distribution — per-window rates and
///     percentiles instead of run-cumulative ones.
struct HistogramSnapshot {
  std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t min_ns = ~std::uint64_t{0};
  std::uint64_t max_ns = 0;

  /// Nearest-rank percentile in seconds over the snapshot's buckets,
  /// same contract as Histogram::percentile.
  double percentile(double q) const noexcept;
  /// count/p50/p95/p99/mean/max distilled from this snapshot.
  Percentiles percentiles() const noexcept;

  double sum() const noexcept { return static_cast<double>(sum_ns) * 1e-9; }
  double min() const noexcept {
    return min_ns == ~std::uint64_t{0} ? 0.0
                                       : static_cast<double>(min_ns) * 1e-9;
  }
  double max() const noexcept { return static_cast<double>(max_ns) * 1e-9; }
};

/// The per-window delta `newer - older` (bucket-wise, saturating at 0, so
/// a torn concurrent pair can never underflow). min/max are recovered
/// from the window's occupied bucket bounds — within one bucket width of
/// the true window extremes — because the cumulative registers only track
/// lifetime extremes.
HistogramSnapshot snapshot_diff(const HistogramSnapshot& newer,
                                const HistogramSnapshot& older) noexcept;

/// One named-metric row in a registry dump.
struct MetricRow {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind = Kind::kCounter;
  std::uint64_t count = 0;    ///< counter value / histogram count
  double value = 0.0;         ///< gauge value
  Percentiles percentiles{};  ///< histogram summary
};

/// Named metric store. Lookup creates on first use and is internally
/// synchronized with the annotated kf::Mutex; the returned references are
/// stable for the registry's lifetime, so callers resolve once and record
/// lock-free afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name) KF_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) KF_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name) KF_EXCLUDES(mu_);

  /// All metrics, sorted by name (counters, then gauges, then histograms).
  std::vector<MetricRow> rows() const KF_EXCLUDES(mu_);

  /// Name -> full bucket snapshot for every histogram, sorted by name —
  /// what the Prometheus exporter renders as `_bucket`/`_sum`/`_count`.
  std::vector<std::pair<std::string, HistogramSnapshot>> histogram_snapshots()
      const KF_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      KF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ KF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      KF_GUARDED_BY(mu_);
};

/// Canonical CSV column names for a latency distribution: `prefix`_p50_ms,
/// `prefix`_p95_ms, `prefix`_p99_ms. Both bench_serve_throughput and
/// serve_sim emit these so downstream plotting parses one schema.
/// Canonical prefixes: "ttft", "itl" (inter-token), "queue_wait", "step".
std::vector<std::string> percentile_columns(const std::string& prefix);

/// The matching cell values, formatted in milliseconds with 3 decimals.
std::vector<std::string> percentile_cells(const Percentiles& p);

}  // namespace kf::obs
