#include "obs/export.h"

#include <cctype>
#include <cstdio>
#include <fstream>

namespace kf::obs {

namespace {

std::string sanitize(const std::string& prefix, const std::string& name) {
  std::string out = prefix.empty() ? name : prefix + "_" + name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string format_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string to_prometheus(const MetricsRegistry& registry,
                          const std::string& prefix) {
  std::string out;
  for (const MetricRow& row : registry.rows()) {
    if (row.kind == MetricRow::Kind::kCounter) {
      const std::string name = sanitize(prefix, row.name) + "_total";
      out += "# TYPE " + name + " counter\n";
      out += name + " " + format_u64(row.count) + "\n";
    } else if (row.kind == MetricRow::Kind::kGauge) {
      const std::string name = sanitize(prefix, row.name);
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + format_double(row.value) + "\n";
    }
  }
  for (const auto& [raw_name, snap] : registry.histogram_snapshots()) {
    const std::string name = sanitize(prefix, raw_name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (snap.buckets[i] == 0) continue;
      cumulative += snap.buckets[i];
      const double upper =
          static_cast<double>(Histogram::bucket_upper_ns(i)) * 1e-9;
      out += name + "_bucket{le=\"" + format_double(upper) + "\"} " +
             format_u64(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + format_u64(snap.count) + "\n";
    out += name + "_sum " + format_double(snap.sum()) + "\n";
    out += name + "_count " + format_u64(snap.count) + "\n";
  }
  return out;
}

bool write_prometheus(const MetricsRegistry& registry, const std::string& path,
                      const std::string& prefix) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_prometheus(registry, prefix);
  return static_cast<bool>(out);
}

std::string to_timeseries_json(const Monitor& monitor) {
  std::string out = "{\n";
  out += "  \"period_ms\": " + format_double(monitor.config().period_ms) +
         ",\n";
  out += "  \"polls\": " + format_u64(monitor.polls()) + ",\n";
  out += "  \"series\": [";
  bool first_series = true;
  for (const auto& [name, series] : monitor.snapshot()) {
    if (!first_series) out += ",";
    first_series = false;
    out += "\n    {\"name\": \"" + name + "\", \"dropped\": " +
           format_u64(series.dropped()) + ", \"samples\": [";
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (i > 0) out += ", ";
      const TimeSample& s = series.at(i);
      out += "[" + format_double(s.t) + ", " + format_double(s.value) + "]";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool write_timeseries_json(const Monitor& monitor, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_timeseries_json(monitor);
  return static_cast<bool>(out);
}

}  // namespace kf::obs
