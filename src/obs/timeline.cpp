#include "obs/timeline.h"

namespace kf::obs {

const char* to_string(TimelineEventKind kind) noexcept {
  switch (kind) {
    case TimelineEventKind::kQueued:
      return "queued";
    case TimelineEventKind::kAdmitted:
      return "admitted";
    case TimelineEventKind::kPrefillStart:
      return "prefill_start";
    case TimelineEventKind::kPrefillEnd:
      return "prefill_end";
    case TimelineEventKind::kFirstToken:
      return "first_token";
    case TimelineEventKind::kPreempted:
      return "preempted";
    case TimelineEventKind::kResumed:
      return "resumed";
    case TimelineEventKind::kFinished:
      return "finished";
  }
  return "unknown";
}

}  // namespace kf::obs
