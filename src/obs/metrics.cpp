#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace kf::obs {

namespace {

/// Round-robin thread slots: each thread gets a stable shard for its
/// lifetime; 16 shards keep simultaneous decode workers on distinct lines.
std::atomic<std::size_t> g_next_thread_slot{0};

std::uint64_t seconds_to_ns(double seconds) noexcept {
  if (!(seconds > 0.0)) {
    return 0;
  }
  const double ns = seconds * 1e9;
  constexpr double kMaxNs = 9.2e18;  // < 2^63; avoids UB in the cast
  if (ns >= kMaxNs) {
    return static_cast<std::uint64_t>(kMaxNs);
  }
  return static_cast<std::uint64_t>(std::llround(ns));
}

template <typename Map, typename Metric>
Metric& find_or_create(Map& map, const std::string& name) {
  std::unique_ptr<Metric>& slot = map[name];
  if (slot == nullptr) {
    slot = std::make_unique<Metric>();
  }
  return *slot;
}

}  // namespace

std::size_t Counter::shard_index() noexcept {
  thread_local const std::size_t slot =
      g_next_thread_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

std::size_t Histogram::bucket_index(std::uint64_t ns) noexcept {
  if (ns < kSubCount) {
    return static_cast<std::size_t>(ns);
  }
  const auto msb = static_cast<std::size_t>(std::bit_width(ns)) - 1;
  if (msb - kSubBits > kMaxShift) {
    // Beyond the top octave: everything saturates into the LAST bucket
    // (not scattered by the wrapped sub-index), keeping bucket order
    // monotone so percentile()'s saturation clamp stays correct.
    return kBucketCount - 1;
  }
  const std::size_t shift = msb - kSubBits;
  const auto sub =
      static_cast<std::size_t>((ns >> shift) & (kSubCount - 1));
  return ((shift + 1) << kSubBits) + sub;
}

std::uint64_t Histogram::bucket_upper_ns(std::size_t index) noexcept {
  if (index < kSubCount) {
    return index;
  }
  const std::size_t shift = (index >> kSubBits) - 1;
  const std::uint64_t sub = index & (kSubCount - 1);
  const std::uint64_t low = (kSubCount + sub) << shift;
  return low + ((std::uint64_t{1} << shift) - 1);
}

void Histogram::record(double seconds) noexcept {
  const std::uint64_t ns = seconds_to_ns(seconds);
  buckets_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen_min = min_ns_.load(std::memory_order_relaxed);
  while (ns < seen_min && !min_ns_.compare_exchange_weak(
                              seen_min, ns, std::memory_order_relaxed)) {
  }
  std::uint64_t seen_max = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen_max && !max_ns_.compare_exchange_weak(
                              seen_max, ns, std::memory_order_relaxed)) {
  }
}

double Histogram::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * n), at least 1.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      if (i == kBucketCount - 1) {
        // Saturated overflow bucket: its nominal upper bound means
        // nothing, the tracked maximum is the honest answer.
        return max();
      }
      const double upper = static_cast<double>(bucket_upper_ns(i)) * 1e-9;
      return std::min(upper, max());
    }
  }
  // A concurrent recorder bumped count_ before its bucket: report the max.
  return max();
}

double Histogram::sum() const noexcept {
  return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

double Histogram::min() const noexcept {
  const std::uint64_t v = min_ns_.load(std::memory_order_relaxed);
  return v == ~std::uint64_t{0} ? 0.0 : static_cast<double>(v) * 1e-9;
}

double Histogram::max() const noexcept {
  return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

Percentiles Histogram::snapshot() const noexcept {
  Percentiles p;
  p.count = count();
  if (p.count == 0) {
    return p;
  }
  p.p50 = percentile(0.50);
  p.p95 = percentile(0.95);
  p.p99 = percentile(0.99);
  p.mean = sum() / static_cast<double>(p.count);
  p.max = max();
  return p;
}

HistogramSnapshot Histogram::full_snapshot() const noexcept {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  snap.min_ns = min_ns_.load(std::memory_order_relaxed);
  snap.max_ns = max_ns_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::percentile(double q) const noexcept {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      if (i == Histogram::kBucketCount - 1) {
        return max();  // saturated overflow bucket (see Histogram)
      }
      const double upper =
          static_cast<double>(Histogram::bucket_upper_ns(i)) * 1e-9;
      return std::min(upper, max());
    }
  }
  return max();  // count raced ahead of its bucket in the source histogram
}

Percentiles HistogramSnapshot::percentiles() const noexcept {
  Percentiles p;
  p.count = count;
  if (p.count == 0) {
    return p;
  }
  p.p50 = percentile(0.50);
  p.p95 = percentile(0.95);
  p.p99 = percentile(0.99);
  p.mean = sum() / static_cast<double>(p.count);
  p.max = max();
  return p;
}

HistogramSnapshot snapshot_diff(const HistogramSnapshot& newer,
                                const HistogramSnapshot& older) noexcept {
  HistogramSnapshot d;
  std::size_t first = Histogram::kBucketCount;
  std::size_t last = 0;
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t n = newer.buckets[i];
    const std::uint64_t o = older.buckets[i];
    d.buckets[i] = n > o ? n - o : 0;
    if (d.buckets[i] > 0) {
      if (first == Histogram::kBucketCount) first = i;
      last = i;
    }
  }
  d.count = newer.count > older.count ? newer.count - older.count : 0;
  d.sum_ns = newer.sum_ns > older.sum_ns ? newer.sum_ns - older.sum_ns : 0;
  if (first < Histogram::kBucketCount) {
    d.min_ns = first == 0 ? 0 : Histogram::bucket_upper_ns(first - 1) + 1;
    d.min_ns = std::max(d.min_ns, newer.min_ns);
    d.max_ns = std::min(Histogram::bucket_upper_ns(last), newer.max_ns);
    d.max_ns = std::max(d.max_ns, d.min_ns);
  }
  return d;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  LockGuard lock(mu_);
  return find_or_create<decltype(counters_), Counter>(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  LockGuard lock(mu_);
  return find_or_create<decltype(gauges_), Gauge>(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  LockGuard lock(mu_);
  return find_or_create<decltype(histograms_), Histogram>(histograms_, name);
}

std::vector<MetricRow> MetricsRegistry::rows() const {
  std::vector<MetricRow> out;
  LockGuard lock(mu_);
  for (const auto& [name, c] : counters_) {
    MetricRow row;
    row.name = name;
    row.kind = MetricRow::Kind::kCounter;
    row.count = c->value();
    out.push_back(std::move(row));
  }
  for (const auto& [name, g] : gauges_) {
    MetricRow row;
    row.name = name;
    row.kind = MetricRow::Kind::kGauge;
    row.value = g->value();
    out.push_back(std::move(row));
  }
  for (const auto& [name, h] : histograms_) {
    MetricRow row;
    row.name = name;
    row.kind = MetricRow::Kind::kHistogram;
    row.count = h->count();
    row.percentiles = h->snapshot();
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::histogram_snapshots() const {
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  LockGuard lock(mu_);
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->full_snapshot());
  }
  return out;
}

std::vector<std::string> percentile_columns(const std::string& prefix) {
  return {prefix + "_p50_ms", prefix + "_p95_ms", prefix + "_p99_ms"};
}

namespace {
std::string format_ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return buf;
}
}  // namespace

std::vector<std::string> percentile_cells(const Percentiles& p) {
  return {format_ms(p.p50), format_ms(p.p95), format_ms(p.p99)};
}

}  // namespace kf::obs
