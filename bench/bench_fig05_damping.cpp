// Figure 5 — damping the accumulated-attention score function (f <- alpha*f)
// does not recover full-attention quality. Cerebras-GPT-like model, 50% KV
// cache, recent ratio 20%.
#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  model::Transformer m(model::ModelConfig::cerebras_like());
  const auto samples = bench::summarization_set(opt);

  eval::EvalConfig ec;
  ec.max_new_tokens = opt.gen_tokens;
  auto full = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
  const auto outputs = eval::generate_outputs(m, samples, *full, ec);
  const auto full_res =
      eval::evaluate_policy_on_task(m, samples, *full, ec, &outputs);

  Table t(
      "Fig 5: damping factor sweep for the accumulated-attention score "
      "(Cerebras-like, 50% KV cache, recent ratio 20%)");
  t.header({"damping", "ROUGE-1", "ROUGE-2", "ROUGE-L", "fid_ROUGE-2",
            "reaches_full?"});
  t.row({"full attention", Table::num(full_res.ref_rouge1, 3),
         Table::num(full_res.ref_rouge2, 3), Table::num(full_res.ref_rougeL, 3),
         Table::num(1.0, 3), "-"});

  for (const double alpha : {1.0, 0.975, 0.95, 0.925, 0.9, 0.875}) {
    kv::PolicyConfig pc;
    pc.kind = kv::PolicyKind::kH2O;
    pc.h2o_damping = alpha;
    auto policy = kv::make_policy(pc);
    eval::EvalConfig rc = ec;
    rc.cache_ratio = 0.5;
    rc.recent_ratio = 0.2;
    const auto res =
        eval::evaluate_policy_on_task(m, samples, *policy, rc, &outputs);
    t.row({Table::num(alpha, 3), Table::num(res.ref_rouge1, 3),
           Table::num(res.ref_rouge2, 3), Table::num(res.ref_rougeL, 3),
           Table::num(res.fid_rouge2, 3),
           res.fid_rouge2 >= 0.99 ? "yes" : "no"});
  }
  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "fig05_damping");

  std::cout << "Paper shape check: no damping factor closes the gap to the "
               "full-attention baseline — motivating Keyformer's "
               "regularized score function instead.\n";
  return 0;
}
