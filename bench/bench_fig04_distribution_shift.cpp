// Figure 4 — the softmax distribution shift: removing tokens from the KV
// cache redistributes their probability mass unevenly over the survivors,
// which corrupts the accumulated-attention score function.
//
// We reproduce the paper's illustration directly (their example row) and
// then measure the same effect live in the MPT-like model with a 50%
// reduction: KL divergence between the renormalized distribution and the
// original, and the entropy drop.
#include <algorithm>

#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);

  // The paper's own Fig 4 example row (8 tokens, keep {3,4,5,7}).
  const std::vector<float> paper_row{0.121F, 0.111F, 0.059F, 0.273F,
                                     0.197F, 0.143F, 0.029F, 0.066F};
  const std::vector<std::size_t> keep{3, 4, 5, 7};
  const auto renorm = eval::renormalized_subset(paper_row, keep);

  Table ill("Fig 4 (paper example): attention row before/after 50% eviction");
  ill.header({"token", "full_attention", "after_eviction"});
  std::size_t ki = 0;
  for (std::size_t i = 0; i < paper_row.size(); ++i) {
    const bool kept = ki < keep.size() && keep[ki] == i;
    ill.row({Table::num(static_cast<long long>(i)),
             Table::num(paper_row[i], 3),
             kept ? Table::num(renorm[ki], 3) : "0 (evicted)"});
    if (kept) ++ki;
  }
  ill.print(std::cout);
  bench::maybe_write_csv(opt, ill, "fig04_paper_example");

  // Live measurement on the MPT-like model.
  model::ModelConfig cfg = model::ModelConfig::mpt_like();
  model::Transformer m(cfg);
  const auto samples = bench::summarization_set(opt);

  double mean_kl = 0.0, mean_entropy_full = 0.0, mean_entropy_reduced = 0.0;
  std::size_t rows = 0;
  m.set_observer([&](const model::AttentionObservation& obs) {
    if (!obs.is_prompt) return;
    const auto& attn = *obs.attn;
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      const float* row = attn.probs.data() +
                         (h * attn.n_q + (attn.n_q - 1)) * attn.key_len;
      const std::span<const float> full(row, attn.key_len);
      // Keep the top-half of the row by probability (the oracle 50% cut).
      std::vector<std::size_t> order(attn.key_len);
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return full[a] > full[b];
      });
      order.resize(attn.key_len / 2);
      std::sort(order.begin(), order.end());
      const auto reduced = eval::renormalized_subset(full, order);
      // Compare the kept entries before/after renormalization.
      std::vector<float> kept_before;
      kept_before.reserve(order.size());
      double kept_mass = 0.0;
      for (const std::size_t i : order) {
        kept_before.push_back(full[i]);
        kept_mass += full[i];
      }
      for (float& v : kept_before) v = static_cast<float>(v / kept_mass);
      mean_kl += kl_divergence(reduced, kept_before);
      mean_entropy_full += entropy(full);
      mean_entropy_reduced += entropy(reduced);
      ++rows;
    }
  });
  auto full_policy = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
  eval::EvalConfig ec;
  ec.max_new_tokens = 4;
  (void)eval::generate_outputs(m, samples, *full_policy, ec);
  m.set_observer({});

  Table live("Fig 4 (live, MPT-like): distribution change at 50% reduction");
  live.header({"metric", "value"});
  live.row({"rows measured", Table::num(static_cast<long long>(rows))});
  live.row({"mean entropy (full row)",
            Table::num(mean_entropy_full / rows, 4)});
  live.row({"mean entropy (renormalized survivors)",
            Table::num(mean_entropy_reduced / rows, 4)});
  live.row({"entropy lost to eviction",
            Table::num((mean_entropy_full - mean_entropy_reduced) / rows, 4)});
  live.print(std::cout);
  bench::maybe_write_csv(opt, live, "fig04_live");

  std::cout << "Paper shape check: surviving tokens absorb the discarded "
               "probability mass unevenly (each kept probability grows, "
               "entropy drops), which is what biases f_theta(acc attn).\n";
  return 0;
}
