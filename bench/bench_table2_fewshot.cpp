// Table 2 — few-shot accuracy on the lm-eval-harness-like synthetic tasks
// (COPA / OpenBookQA / Winogrande / PIQA), 0-shot and 5-shot, for
// Cerebras-like and MPT-like models: Full vs H2O vs Keyformer at 50% KV
// cache.
#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const std::size_t n_questions = opt.quick ? 16 : 40;

  Table t("Table 2: few-shot accuracy (%) — H2O and Keyformer at 50% cache");
  t.header({"task", "model", "shots", "full", "h2o", "keyformer"});

  const std::vector<model::ModelConfig> models = {
      model::ModelConfig::cerebras_like(), model::ModelConfig::mpt_like()};
  const std::vector<data::McqTaskKind> tasks = {
      data::McqTaskKind::kCopa, data::McqTaskKind::kOpenBookQa,
      data::McqTaskKind::kWinogrande, data::McqTaskKind::kPiqa};

  for (const auto task : tasks) {
    for (const model::ModelConfig& cfg : models) {
      model::Transformer m(cfg);
      for (const std::size_t shots : {0u, 5u}) {
        data::McqConfig mc;
        mc.kind = task;
        mc.n_shots = shots;
        mc.seed = opt.seed;
        const auto samples = data::make_mcq_set(mc, n_questions);

        std::vector<std::string> row{to_string(task), cfg.name,
                                     std::to_string(shots) + "-shot"};
        for (const auto kind :
             {kv::PolicyKind::kFull, kv::PolicyKind::kH2O,
              kv::PolicyKind::kKeyformer}) {
          auto policy = bench::make_policy(kind, opt.seed);
          eval::EvalConfig ec;
          ec.cache_ratio = kind == kv::PolicyKind::kFull ? 1.0 : 0.5;
          const double acc = eval::mcq_accuracy(m, samples, *policy, ec);
          row.push_back(Table::num(100.0 * acc, 1));
        }
        t.row(row);
      }
    }
  }
  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "table2_fewshot");

  std::cout << "Paper shape check: at 50% cache both eviction methods "
               "track full attention within a few points, and Keyformer "
               "ties or beats H2O on most cells. (Divergence from the "
               "paper: our synthetic shots lengthen the prompt without "
               "adding model knowledge, so 5-shot does not reliably lift "
               "accuracy the way it does for pretrained 7B models — see "
               "EXPERIMENTS.md.)\n";
  return 0;
}
