// Table 2 — few-shot accuracy on the lm-eval-harness-like synthetic tasks
// (COPA / OpenBookQA / Winogrande / PIQA), 0-shot and 5-shot, for
// Cerebras-like and MPT-like models: Full vs H2O vs Keyformer at 50% KV
// cache.
//
// Second sweep: the *serving* cost of few-shot contexts. Every request in
// a few-shot batch re-prefills the identical shot context; the paged
// engine's prefix cache replays it from one shared block chain instead.
// The sweep serves a burst of requests sharing one 8-shot context with
// the cache off and on, reporting prefill tokens actually computed,
// the measured savings, hit/miss counts, and aggregate decode tok/s side
// by side (CSV: table2_prefix_serving).
#include "bench_common.h"

using namespace kf;

namespace {

/// One row of the prefix-serving sweep: a burst of `n_requests` requests
/// sharing an 8-shot context, measured with the prefix cache off and on.
void prefix_serving_row(Table& table, const model::ModelConfig& cfg,
                        std::size_t n_requests, const bench::Options& opt) {
  model::Transformer m(cfg);

  data::McqConfig mc;
  mc.n_shots = 8;
  mc.seed = opt.seed;
  mc.vocab_size = std::min<std::size_t>(mc.vocab_size, cfg.vocab_size);
  // Shared context: a full 8-shot sample. Per-request question: another
  // sample's passage (0-shot prompt minus its leading <bos>).
  const std::vector<data::Token> ctx = data::make_mcq_sample(mc, 0).prompt;
  data::McqConfig qc = mc;
  qc.n_shots = 0;
  std::vector<serve::Request> requests;
  for (std::size_t i = 0; i < n_requests; ++i) {
    serve::Request req;
    req.id = i;
    req.prompt = ctx;
    const auto question = data::make_mcq_sample(qc, i + 1).prompt;
    req.prompt.insert(req.prompt.end(), question.begin() + 1, question.end());
    req.gen.max_new_tokens = opt.quick ? 8 : 16;
    req.gen.cache_ratio = 0.5;
    req.shared_prefix_hint = ctx.size();
    requests.push_back(std::move(req));
  }
  std::size_t total_prompt = 0;
  for (const auto& r : requests) total_prompt += r.prompt.size();

  serve::EngineConfig ec;
  ec.policy.kind = kv::PolicyKind::kKeyformer;
  ec.policy.keyformer.score.seed = opt.seed;
  ec.scheduler.max_batch_size = n_requests;
  ec.paged.enabled = true;
  ec.paged.n_shards = 1;
  ec.paged.block_tokens = 16;

  serve::Engine off(m, ec);
  off.run(requests);
  const double tok_s_off = off.stats().decode_tokens_per_s();
  const std::size_t prefill_off = off.stats().prefilled_tokens;

  ec.prefix.enabled = true;
  serve::Engine on(m, ec);
  on.run(requests);
  const auto& st = on.stats();
  const double saved =
      total_prompt > 0 ? 100.0 * static_cast<double>(st.prefix_tokens_reused) /
                             static_cast<double>(total_prompt)
                       : 0.0;

  table.row({cfg.name, Table::num(static_cast<long long>(n_requests)),
             Table::num(static_cast<long long>(ctx.size())),
             Table::num(static_cast<long long>(prefill_off)),
             Table::num(static_cast<long long>(st.prefilled_tokens)),
             Table::num(saved, 1),
             Table::num(static_cast<long long>(st.prefix_hits)),
             Table::num(static_cast<long long>(st.prefix_misses)),
             Table::num(tok_s_off, 1),
             Table::num(st.decode_tokens_per_s(), 1)});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const std::size_t n_questions = opt.quick ? 16 : 40;

  Table t("Table 2: few-shot accuracy (%) — H2O and Keyformer at 50% cache");
  t.header({"task", "model", "shots", "full", "h2o", "keyformer"});

  const std::vector<model::ModelConfig> models = {
      model::ModelConfig::cerebras_like(), model::ModelConfig::mpt_like()};
  const std::vector<data::McqTaskKind> tasks = {
      data::McqTaskKind::kCopa, data::McqTaskKind::kOpenBookQa,
      data::McqTaskKind::kWinogrande, data::McqTaskKind::kPiqa};

  for (const auto task : tasks) {
    for (const model::ModelConfig& cfg : models) {
      model::Transformer m(cfg);
      for (const std::size_t shots : {0u, 5u}) {
        data::McqConfig mc;
        mc.kind = task;
        mc.n_shots = shots;
        mc.seed = opt.seed;
        const auto samples = data::make_mcq_set(mc, n_questions);

        std::vector<std::string> row{to_string(task), cfg.name,
                                     std::to_string(shots) + "-shot"};
        for (const auto kind :
             {kv::PolicyKind::kFull, kv::PolicyKind::kH2O,
              kv::PolicyKind::kKeyformer}) {
          auto policy = bench::make_policy(kind, opt.seed);
          eval::EvalConfig ec;
          ec.cache_ratio = kind == kv::PolicyKind::kFull ? 1.0 : 0.5;
          const double acc = eval::mcq_accuracy(m, samples, *policy, ec);
          row.push_back(Table::num(100.0 * acc, 1));
        }
        t.row(row);
      }
    }
  }
  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "table2_fewshot");

  Table ps("Few-shot serving: shared 8-shot context, prefix cache off vs on "
           "(keyformer @50% cache, paged KV)");
  ps.header({"model", "reqs", "ctx_tok", "prefill_tok_off", "prefill_tok_on",
             "saved_%", "hits", "misses", "tok/s_off", "tok/s_on"});
  const std::size_t n_requests = opt.quick ? 4 : 8;
  for (const model::ModelConfig& cfg : models) {
    prefix_serving_row(ps, cfg, n_requests, opt);
  }
  std::cout << '\n';
  ps.print(std::cout);
  bench::maybe_write_csv(opt, ps, "table2_prefix_serving");
  std::cout << "Shared-context serving: every request past the first "
               "replays the cached shot context (hits), so prefill computes "
               "only the per-request question; decode output is "
               "token-for-token identical either way (pinned by "
               "test_prefix_sharing).\n\n";

  std::cout << "Paper shape check: at 50% cache both eviction methods "
               "track full attention within a few points, and Keyformer "
               "ties or beats H2O on most cells. (Divergence from the "
               "paper: our synthetic shots lengthen the prompt without "
               "adding model knowledge, so 5-shot does not reliably lift "
               "accuracy the way it does for pretrained 7B models — see "
               "EXPERIMENTS.md.)\n";
  return 0;
}
