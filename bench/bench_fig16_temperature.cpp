// Figure 16 (appendix A.8) — static temperature sweep vs the dynamic
// schedule tau: 1 -> 2 over the generation (MPT-like, CNN/DailyMail-like
// summarization, 50% KV cache).
#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  model::Transformer m(model::ModelConfig::mpt_like());
  const auto samples = bench::summarization_set(opt);

  eval::EvalConfig ec;
  ec.max_new_tokens = opt.gen_tokens;
  auto full = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
  const auto outputs = eval::generate_outputs(m, samples, *full, ec);

  const auto run_with = [&](bool dynamic, double tau) {
    kv::PolicyConfig pc;
    pc.kind = kv::PolicyKind::kKeyformer;
    pc.keyformer.score.seed = opt.seed;
    pc.keyformer.score.temperature.dynamic = dynamic;
    if (!dynamic) {
      pc.keyformer.score.temperature.tau_init = tau;
    }
    auto policy = kv::make_policy(pc);
    eval::EvalConfig rc = ec;
    rc.cache_ratio = 0.5;
    return eval::evaluate_policy_on_task(m, samples, *policy, rc, &outputs);
  };

  Table t(
      "Fig 16: static temperature sweep vs dynamic tau (Keyformer, "
      "MPT-like, 50% KV cache)");
  t.header({"temperature", "fid_ROUGE-2", "fid_ROUGE-1"});
  for (const double tau : {1.0, 2.0, 3.0, 5.0, 10.0, 15.0}) {
    const auto res = run_with(false, tau);
    t.row({"static " + Table::num(tau, 1), Table::num(res.fid_rouge2, 3),
           Table::num(res.fid_rouge1, 3)});
  }
  const auto dyn = run_with(true, 0.0);
  t.row({"dynamic 1->2", Table::num(dyn.fid_rouge2, 3),
         Table::num(dyn.fid_rouge1, 3)});
  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "fig16_temperature");

  std::cout << "Paper shape check: the dynamic 1->2 ramp matches or beats "
               "every static temperature; very large static tau degrades "
               "selection toward uniform.\n";
  return 0;
}
