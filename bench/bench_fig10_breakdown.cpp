// Figure 10 — where the speedup comes from: normalized KV-cache data
// movement time and scaled-dot-product time for full attention vs
// Keyformer at 50% cache, with Keyformer's Gumbel-softmax score overhead
// shown explicitly. MPT-storywriter model spec.
#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const perf::CostModel cm(perf::DeviceSpec::a100_80gb(),
                           perf::ModelSpec::mpt_7b());

  Table t(
      "Fig 10: normalized per-run KV movement and scaled-dot-product time "
      "(full attention = 1.0) with Keyformer's Gumbel-softmax overhead");
  t.header({"seq_len", "kv_move_full", "kv_move_keyformer", "kv_reduction",
            "sdp_keyformer", "gumbel_overhead_frac"});

  for (const std::size_t seq : {512u, 1024u, 2048u, 4096u}) {
    perf::WorkloadSpec full;
    full.prompt_len = seq / 2;
    full.gen_len = seq / 2;
    const perf::InferenceCost cf = cm.run(full);

    perf::WorkloadSpec kfw = full;
    kfw.cache_mode = perf::CacheMode::kStaticPrompt;
    kfw.cache_ratio = 0.5;
    kfw.policy_cost = perf::PolicyCost::kGumbelTopK;
    const perf::InferenceCost ck = cm.run(kfw);

    // The scaled-dot-product time is the KV-touching kernel time; the
    // Gumbel softmax adds the score_seconds on top.
    t.row({Table::num(static_cast<long long>(seq)), Table::num(1.0, 3),
           Table::num(ck.kv_movement_seconds / cf.kv_movement_seconds, 3),
           Table::num(cf.kv_movement_seconds / ck.kv_movement_seconds, 2) +
               "x",
           Table::num((ck.kv_movement_seconds + ck.score_seconds) /
                          cf.kv_movement_seconds,
                      3),
           Table::num(ck.score_seconds /
                          (ck.kv_movement_seconds + ck.score_seconds),
                      3)});
  }
  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "fig10_breakdown");

  std::cout << "Paper shape check: ~3x KV-movement reduction at 4k (static "
               "50% cache vs a cache that grows to 1.5x the prompt), with "
               "the Gumbel-softmax overhead a small fraction of the "
               "attention time.\n";
  return 0;
}
