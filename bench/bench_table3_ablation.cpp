// Table 3 — the method ablation at 60% KV cache on the MPT-like model:
//   Full / Window / H2O / StreamingLLM baselines,
//   Keyformer with per-layer vs shared score functions,
//   Keyformer with original vs new positional information.
#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  model::Transformer m(model::ModelConfig::mpt_like());
  const auto samples = bench::summarization_set(opt);

  eval::EvalConfig ec;
  ec.max_new_tokens = opt.gen_tokens;
  auto full = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
  const auto outputs = eval::generate_outputs(m, samples, *full, ec);
  const auto full_res =
      eval::evaluate_policy_on_task(m, samples, *full, ec, &outputs);

  Table t(
      "Table 3: ROUGE comparison at 60% KV cache (MPT-like, "
      "CNN/DailyMail-like summarization; fidelity F1 to full attention)");
  t.header({"method", "score_fn", "pos_info", "fid_R1", "fid_R2", "fid_RL",
            "ref_R1"});
  t.row({"full", "-", "org", Table::num(1.0, 3), Table::num(1.0, 3),
         Table::num(1.0, 3), Table::num(full_res.ref_rouge1, 3)});

  const auto eval_policy = [&](kv::EvictionPolicy& policy,
                               model::PositionMode mode) {
    m.set_position_mode(mode);
    eval::EvalConfig rc = ec;
    rc.cache_ratio = 0.6;
    const auto res =
        eval::evaluate_policy_on_task(m, samples, policy, rc, &outputs);
    m.set_position_mode(model::PositionMode::kOriginal);
    return res;
  };

  {
    auto policy = bench::make_policy(kv::PolicyKind::kWindow, opt.seed);
    const auto r = eval_policy(*policy, model::PositionMode::kOriginal);
    t.row({"window", "-", "org", Table::num(r.fid_rouge1, 3),
           Table::num(r.fid_rouge2, 3), Table::num(r.fid_rougeL, 3),
           Table::num(r.ref_rouge1, 3)});
  }
  {
    auto policy = bench::make_policy(kv::PolicyKind::kH2O, opt.seed);
    const auto r = eval_policy(*policy, model::PositionMode::kOriginal);
    t.row({"h2o", "per-layer", "org", Table::num(r.fid_rouge1, 3),
           Table::num(r.fid_rouge2, 3), Table::num(r.fid_rougeL, 3),
           Table::num(r.ref_rouge1, 3)});
  }
  {
    auto policy = bench::make_policy(kv::PolicyKind::kStreamingLLM, opt.seed);
    const auto r = eval_policy(*policy, model::PositionMode::kOriginal);
    t.row({"streaming_llm", "-", "org", Table::num(r.fid_rouge1, 3),
           Table::num(r.fid_rouge2, 3), Table::num(r.fid_rougeL, 3),
           Table::num(r.ref_rouge1, 3)});
  }
  {
    auto policy = bench::make_policy(kv::PolicyKind::kKeyformer, opt.seed);
    const auto r = eval_policy(*policy, model::PositionMode::kNew);
    t.row({"keyformer (new pos)", "per-layer", "new",
           Table::num(r.fid_rouge1, 3), Table::num(r.fid_rouge2, 3),
           Table::num(r.fid_rougeL, 3), Table::num(r.ref_rouge1, 3)});
  }
  {
    auto policy = bench::make_policy(kv::PolicyKind::kKeyformer, opt.seed);
    const auto r = eval_policy(*policy, model::PositionMode::kOriginal);
    t.row({"keyformer (org pos)", "per-layer", "org",
           Table::num(r.fid_rouge1, 3), Table::num(r.fid_rouge2, 3),
           Table::num(r.fid_rougeL, 3), Table::num(r.ref_rouge1, 3)});
  }
  {
    kv::PolicyConfig pc;
    pc.kind = kv::PolicyKind::kKeyformer;
    pc.keyformer.scope = kv::ScoreScope::kShared;
    pc.keyformer.score.seed = opt.seed;
    auto policy = kv::make_policy(pc);
    const auto r = eval_policy(*policy, model::PositionMode::kOriginal);
    t.row({"keyformer (org pos)", "shared", "org",
           Table::num(r.fid_rouge1, 3), Table::num(r.fid_rouge2, 3),
           Table::num(r.fid_rougeL, 3), Table::num(r.ref_rouge1, 3)});
  }

  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "table3_ablation");

  std::cout << "Paper shape check: original positions clearly beat "
               "re-indexed (new) positions, and every score-based method "
               "dominates the recency-only baselines (window, "
               "StreamingLLM). At this generous 60% budget on the ALiBi "
               "family the H2O / per-layer / shared margins are small — "
               "Keyformer's advantage shows in the budget sweeps of "
               "Fig 7/8 (see EXPERIMENTS.md for the measured ordering).\n";
  return 0;
}
