// Figure 9 — iso-accuracy inference speedup for MPT-7B: Keyformer at 50%
// KV cache (the budget where it still meets 99% accuracy) vs H2O at 90%
// (H2O misses the accuracy bar at 50%, so its iso-accuracy point is a much
// smaller reduction), both relative to full attention.
#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const perf::CostModel cm(perf::DeviceSpec::a100_80gb(),
                           perf::ModelSpec::mpt_7b());

  Table t(
      "Fig 9: iso-accuracy speedup over full attention (MPT-7B, A100, "
      "batch 1, beam 4; H2O @ 90% cache, Keyformer @ 50% cache)");
  t.header({"sequence", "full_s", "h2o_s", "keyformer_s", "h2o_speedup",
            "keyformer_speedup"});

  for (const std::size_t len : {1024u, 2048u, 4096u}) {
    perf::WorkloadSpec full;
    full.prompt_len = len;
    full.gen_len = len;
    const double t_full = cm.run(full).total_seconds;

    perf::WorkloadSpec h2o = full;
    h2o.cache_mode = perf::CacheMode::kStaticPrompt;
    h2o.cache_ratio = 0.9;
    h2o.policy_cost = perf::PolicyCost::kTopK;
    const double t_h2o = cm.run(h2o).total_seconds;

    perf::WorkloadSpec keyformer = full;
    keyformer.cache_mode = perf::CacheMode::kStaticPrompt;
    keyformer.cache_ratio = 0.5;
    keyformer.policy_cost = perf::PolicyCost::kGumbelTopK;
    const double t_kf = cm.run(keyformer).total_seconds;

    t.row({std::to_string(len) + "+" + std::to_string(len),
           Table::num(t_full, 1), Table::num(t_h2o, 1), Table::num(t_kf, 1),
           Table::num(t_full / t_h2o, 2) + "x",
           Table::num(t_full / t_kf, 2) + "x"});
  }
  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "fig09_speedup");

  std::cout << "Paper shape check: Keyformer's iso-accuracy speedup is "
               "~2x and grows with sequence length; H2O's is much smaller "
               "because it needs 90% of the cache to stay accurate.\n";
  return 0;
}
