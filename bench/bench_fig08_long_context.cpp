// Figure 8 — long-context summarization (GovReport-like, MPT-storywriter
// stand-in): ROUGE-2 at 10%..50% KV cache for H2O vs Keyformer against the
// full-attention baseline. The paper's point: Keyformer holds the 99% line
// at 50% cache where H2O falls short.
#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  if (!opt.quick && opt.samples > 4) opt.samples = 4;  // long docs are slow

  model::ModelConfig cfg = model::ModelConfig::mpt_storywriter_like();
  model::Transformer m(cfg);
  // The paper evaluates 8k-token documents on a 65k-context model; at our
  // ~20x scale-down that maps to ~1k-token reports.
  const auto samples =
      bench::long_report_set(opt, opt.quick ? 512 : 1024);

  eval::EvalConfig ec;
  ec.max_new_tokens = opt.gen_tokens;
  auto full = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
  const auto outputs = eval::generate_outputs(m, samples, *full, ec);
  const auto full_res =
      eval::evaluate_policy_on_task(m, samples, *full, ec, &outputs);

  Table t(
      "Fig 8: long-context summarization (GovReport-like, "
      "MPT-storywriter-like) — ROUGE-2 fidelity vs KV cache");
  t.header({"kv_cache", "h2o", "keyformer", "keyformer>=0.99?"});
  for (const double ratio : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    std::vector<std::string> row{bench::pct(ratio)};
    double kf_fid = 0.0;
    for (const auto kind : {kv::PolicyKind::kH2O, kv::PolicyKind::kKeyformer}) {
      auto policy = bench::make_policy(kind, opt.seed);
      eval::EvalConfig rc = ec;
      rc.cache_ratio = ratio;
      const auto res =
          eval::evaluate_policy_on_task(m, samples, *policy, rc, &outputs);
      row.push_back(Table::num(res.fid_rouge2, 3));
      if (kind == kv::PolicyKind::kKeyformer) kf_fid = res.fid_rouge2;
    }
    row.push_back(kf_fid >= 0.99 ? "yes" : "no");
    t.row(row);
  }
  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "fig08_long_context");

  std::cout << "Full-attention reference ROUGE-1 on planted facts: "
            << Table::num(full_res.ref_rouge1, 3) << "\n";
  std::cout << "Paper shape check: Keyformer stays at or above H2O at "
               "most long-context budgets.\n";
  return 0;
}
