// Decode fast-path throughput bench: tokens/s and a per-step latency
// breakdown (project / attend / score / evict / other) for the RoPE +
// Keyformer configuration on a long-context preset.
//
// Three execution paths are measured over the *same* token stream:
//   general_prechange — general blocked attention, keys stored raw and
//                       re-rotated every step (the pre-fast-path decode
//                       loop, kept as the baseline the speedup claim is
//                       made against);
//   general_prerot    — general path reading append-time-rotated keys
//                       (isolates how much of the win is the rotation
//                       contract alone);
//   fast              — the fused single-query kernel (attention_decode)
//                       on head-major pre-rotated keys.
// The bench also cross-checks parity: max |LM-logit delta| of each path
// versus general_prechange, which must stay within float rounding.
//
//   ./bench/bench_decode_throughput [--quick] [--gen N] [--seed S]
//                                   [--csv DIR]
//
// --csv DIR additionally writes decode_throughput.csv and
// decode_throughput.json into DIR (the CI perf-trajectory artifact).
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/timing.h"

using namespace kf;

namespace {

struct PathResult {
  std::string name;
  std::string isa;  ///< kernel ISA the path dispatched to
  double tokens_per_s = 0.0;
  double ms_per_token = 0.0;
  double project_ms = 0.0;  // per token
  double attend_ms = 0.0;
  double score_ms = 0.0;
  double evict_ms = 0.0;
  double other_ms = 0.0;
  double prefill_seconds = 0.0;
  double max_logit_delta = 0.0;  // vs baseline path
  std::vector<std::vector<float>> step_logits;
};

struct BenchSetup {
  std::size_t prompt_len = 0;
  std::size_t gen_tokens = 0;
  std::uint64_t seed = 0;
};

PathResult run_path(const std::string& name, bool fast_path,
                    bool append_rotation, const BenchSetup& s) {
  model::ModelConfig cfg = model::ModelConfig::gptj_like();
  cfg.max_seq_len = 8192;
  cfg.decode_fast_path = fast_path;
  cfg.rope_append_time_rotation = append_rotation;
  model::Transformer m(cfg);

  // Deterministic prompt and decode token stream shared by every path so
  // outputs are comparable step for step.
  Rng rng(s.seed);
  std::vector<model::Token> prompt(s.prompt_len);
  for (auto& t : prompt) {
    t = static_cast<model::Token>(rng.uniform_u64(cfg.vocab_size));
  }
  std::vector<model::Token> feed(s.gen_tokens);
  for (auto& t : feed) {
    t = static_cast<model::Token>(rng.uniform_u64(cfg.vocab_size));
  }

  auto policy = bench::make_policy(kv::PolicyKind::kKeyformer, s.seed);
  policy->set_budget(kv::make_budget(s.prompt_len, /*cache_ratio=*/0.5));
  kv::SequenceInfo info;
  info.prompt_len = s.prompt_len;
  info.total_steps = s.gen_tokens;
  info.n_layers = cfg.n_layers;
  info.n_heads = cfg.n_heads;
  policy->begin_sequence(info);

  m.reset();
  PathResult r;
  r.name = name;
  r.isa = cpu::isa_name(cpu::active_isa());
  double t0 = now_seconds();
  m.prefill(prompt, *policy, s.gen_tokens);
  r.prefill_seconds = now_seconds() - t0;

  model::AttentionTimings attn;
  kv::PolicyTimings pol;
  m.set_attention_timings(&attn);
  policy->set_timing_sink(&pol);

  t0 = now_seconds();
  for (std::size_t t = 1; t <= s.gen_tokens; ++t) {
    const std::size_t position = s.prompt_len + t - 1;
    r.step_logits.push_back(
        m.decode(feed[t - 1], position, t, s.gen_tokens, *policy));
  }
  const double decode_seconds = now_seconds() - t0;
  m.set_attention_timings(nullptr);
  policy->set_timing_sink(nullptr);

  const double n = static_cast<double>(s.gen_tokens);
  r.tokens_per_s = n / decode_seconds;
  r.ms_per_token = 1e3 * decode_seconds / n;
  r.project_ms = 1e3 * attn.project_seconds / n;
  r.attend_ms = 1e3 * attn.attend_seconds / n;
  r.score_ms = 1e3 * pol.score_seconds / n;
  r.evict_ms = 1e3 * pol.evict_seconds / n;
  r.other_ms = r.ms_per_token - r.project_ms - r.attend_ms - r.score_ms -
               r.evict_ms;
  return r;
}

double max_delta(const PathResult& a, const PathResult& b) {
  double d = 0.0;
  for (std::size_t t = 0; t < a.step_logits.size(); ++t) {
    for (std::size_t i = 0; i < a.step_logits[t].size(); ++i) {
      d = std::max(d, static_cast<double>(std::abs(a.step_logits[t][i] -
                                                   b.step_logits[t][i])));
    }
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  BenchSetup s;
  s.seed = opt.seed;
  // Long-context preset; --quick shrinks it to smoke-test size. An
  // explicit --gen is honored verbatim (post parse_options, which halves
  // it under --quick like every other bench).
  s.prompt_len = opt.quick ? 256 : 1024;
  s.gen_tokens = opt.gen_given ? opt.gen_tokens : (opt.quick ? 32 : 128);
  if (s.gen_tokens == 0) {
    std::cerr << "error: --gen must be positive\n";
    return 1;
  }

  std::cout << "decode throughput (gptj-like RoPE, keyformer @ 50% cache, "
            << "prompt " << s.prompt_len << ", gen " << s.gen_tokens
            << ")\n";

  std::vector<PathResult> results;
  results.push_back(run_path("general_prechange", /*fast=*/false,
                             /*append_rotation=*/false, s));
  results.push_back(run_path("general_prerot", /*fast=*/false,
                             /*append_rotation=*/true, s));
  results.push_back(run_path("fast", /*fast=*/true,
                             /*append_rotation=*/true, s));
  // ISA sweep of the fast path: one extra row per available kernel ISA
  // below the active one, so the artifact records the SIMD speedup matrix
  // alongside the fast-path-vs-general one.
  const cpu::CpuIsa ambient = cpu::active_isa();
  for (int i = 0; i < cpu::kIsaCount; ++i) {
    const auto isa = static_cast<cpu::CpuIsa>(i);
    if (isa == ambient || !cpu::isa_available(isa)) continue;
    cpu::set_isa_override(isa);
    results.push_back(run_path(std::string("fast_") + cpu::isa_name(isa),
                               /*fast=*/true, /*append_rotation=*/true, s));
    cpu::clear_isa_override();
  }
  for (auto& r : results) r.max_logit_delta = max_delta(results.front(), r);

  const double base_tps = results.front().tokens_per_s;
  Table t("decode fast path: tokens/s and per-step latency breakdown");
  t.header({"path", "isa", "tok_per_s", "speedup", "ms_per_tok",
            "project_ms", "attend_ms", "score_ms", "evict_ms", "other_ms",
            "max_logit_delta"});
  for (const auto& r : results) {
    t.row({r.name, r.isa, Table::num(r.tokens_per_s, 1),
           Table::num(r.tokens_per_s / base_tps, 2) + "x",
           Table::num(r.ms_per_token, 3), Table::num(r.project_ms, 3),
           Table::num(r.attend_ms, 3), Table::num(r.score_ms, 3),
           Table::num(r.evict_ms, 3), Table::num(r.other_ms, 3),
           Table::num(r.max_logit_delta, 7)});
  }
  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "decode_throughput");

  if (!opt.csv_dir.empty()) {
    const std::string path = opt.csv_dir + "/decode_throughput.json";
    std::ofstream out(path);
    if (out) {
      out << "{\n  \"prompt_len\": " << s.prompt_len
          << ",\n  \"gen_tokens\": " << s.gen_tokens << ",\n  \"paths\": [";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        out << (i > 0 ? "," : "") << "\n    {\"name\": \"" << r.name
            << "\", \"isa\": \"" << r.isa
            << "\", \"tokens_per_s\": " << r.tokens_per_s
            << ", \"speedup\": " << r.tokens_per_s / base_tps
            << ", \"ms_per_token\": " << r.ms_per_token
            << ", \"project_ms\": " << r.project_ms
            << ", \"attend_ms\": " << r.attend_ms
            << ", \"score_ms\": " << r.score_ms
            << ", \"evict_ms\": " << r.evict_ms
            << ", \"other_ms\": " << r.other_ms
            << ", \"max_logit_delta\": " << r.max_logit_delta << "}";
      }
      out << "\n  ]\n}\n";
      std::cout << "(json written to " << path << ")\n";
    } else {
      std::cerr << "warning: could not write " << path << '\n';
    }
  }

  // results[2] is the ambient-ISA "fast" row (the sweep rows follow it).
  const PathResult& fast = results[2];
  const double speedup = fast.tokens_per_s / base_tps;
  std::cout << "fast path speedup vs pre-change general path: "
            << Table::num(speedup, 2) << "x (isa " << fast.isa
            << "); max logit delta "
            << Table::num(fast.max_logit_delta, 7) << '\n';
  return 0;
}
