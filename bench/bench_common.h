// Shared infrastructure for the per-figure/table bench binaries.
//
// Conventions:
//   - every bench accepts: --samples N  (evaluation samples per cell)
//                          --gen N      (generated tokens per sample)
//                          --seed S     (workload seed)
//                          --csv DIR    (also write CSV series into DIR)
//                          --quick      (tiny sweep for smoke runs)
//   - model families are the scaled-down stand-ins for GPT-J / Cerebras /
//     MPT (see DESIGN.md section 2); "bench scale" is d_model 128, 4
//     layers, the configuration the workload knobs were calibrated for.
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/parse.h"
#include "obs/metrics.h"

#include "keyformer/keyformer.h"

namespace kf::bench {

struct Options {
  std::size_t samples = 8;
  std::size_t gen_tokens = 32;
  std::uint64_t seed = 42;
  std::string csv_dir;
  bool quick = false;
  /// True when --gen appeared on the command line, for benches whose
  /// default generation length differs from Options' (they must not treat
  /// the untouched default as a user choice).
  bool gen_given = false;
};

inline Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    // Strict digits-only values: bare strtoull would wrap " -4" to ~1.8e19
    // samples or silently read "abc" as 0.
    const auto next_count = [&](const char* flag) -> unsigned long long {
      const char* value = next();
      const auto v = parse_count(value);
      if (!v.has_value()) {
        std::cerr << "error: " << flag
                  << " expects a non-negative integer, got \"" << value
                  << "\"\n";
        std::exit(1);
      }
      return *v;
    };
    if (arg == "--samples") o.samples = next_count("--samples");
    else if (arg == "--gen") {
      o.gen_tokens = next_count("--gen");
      o.gen_given = true;
    }
    else if (arg == "--seed") o.seed = next_count("--seed");
    else if (arg == "--csv") {
      o.csv_dir = next();
      if (o.csv_dir.empty() || o.csv_dir.rfind("--", 0) == 0) {
        std::cerr << "error: --csv expects a directory\n";
        std::exit(1);
      }
    }
    else if (arg == "--quick") o.quick = true;
    else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --samples N --gen N --seed S --csv DIR --quick\n";
      std::exit(0);
    }
  }
  if (o.quick) {
    o.samples = std::max<std::size_t>(2, o.samples / 4);
    o.gen_tokens = std::max<std::size_t>(8, o.gen_tokens / 2);
  }
  // One-line dispatch banner so every bench artifact records which kernel
  // variants actually ran (detected ISA, active choice, any override).
  std::cout << cpu::describe() << '\n';
  return o;
}

/// The three evaluated model families at bench scale.
inline std::vector<model::ModelConfig> bench_models() {
  return {model::ModelConfig::gptj_like(), model::ModelConfig::cerebras_like(),
          model::ModelConfig::mpt_like()};
}

/// CNN/DailyMail-like evaluation set.
inline std::vector<data::Sample> summarization_set(const Options& o,
                                                   std::size_t doc_len = 320) {
  data::SummarizationConfig dc;
  dc.doc_len = doc_len;
  dc.seed = o.seed;
  return data::make_summarization_set(dc, o.samples);
}

/// SODA-like conversation set.
inline std::vector<data::Sample> conversation_set(const Options& o) {
  data::DialogueConfig dc;
  dc.seed = o.seed;
  return data::make_dialogue_set(dc, o.samples);
}

/// GovReport-like long-context set.
inline std::vector<data::Sample> long_report_set(const Options& o,
                                                 std::size_t doc_len = 1024) {
  data::LongReportConfig lc;
  lc.doc_len = doc_len;
  lc.seed = o.seed;
  return data::make_long_report_set(lc, o.samples);
}

/// The paper's standard four comparison policies.
inline std::vector<kv::PolicyKind> paper_policies() {
  return {kv::PolicyKind::kWindow, kv::PolicyKind::kH2O,
          kv::PolicyKind::kKeyformer};
}

inline std::unique_ptr<kv::EvictionPolicy> make_policy(kv::PolicyKind kind,
                                                       std::uint64_t seed) {
  kv::PolicyConfig pc;
  pc.kind = kind;
  pc.seed = seed;
  pc.keyformer.score.seed = seed;
  return kv::make_policy(pc);
}

/// Writes a table as CSV into the --csv directory (no-op when unset).
inline void maybe_write_csv(const Options& o, const Table& table,
                            const std::string& name) {
  if (o.csv_dir.empty()) return;
  const std::string path = o.csv_dir + "/" + name + ".csv";
  if (!CsvWriter::from_table(table).write_file(path)) {
    std::cerr << "warning: could not write " << path << '\n';
  } else {
    std::cout << "(csv written to " << path << ")\n";
  }
}

/// Percentage string helper.
inline std::string pct(double ratio) {
  return Table::num(static_cast<long long>(ratio * 100 + 0.5)) + "%";
}

/// Appends the canonical TTFT + inter-token latency columns (ttft_p50_ms
/// ... itl_p99_ms) to a header row. Shared with serve_sim --metrics-csv so
/// every serving artifact carries one column schema.
inline void append_latency_columns(std::vector<std::string>& header) {
  for (const char* prefix : {"ttft", "itl"}) {
    for (std::string& c : obs::percentile_columns(prefix)) {
      header.push_back(std::move(c));
    }
  }
}

/// The matching TTFT + inter-token cells from an engine-stats snapshot.
inline void append_latency_cells(std::vector<std::string>& row,
                                 const serve::EngineStats& stats) {
  for (const obs::Percentiles* p : {&stats.ttft, &stats.inter_token}) {
    for (std::string& c : obs::percentile_cells(*p)) {
      row.push_back(std::move(c));
    }
  }
}

}  // namespace kf::bench
