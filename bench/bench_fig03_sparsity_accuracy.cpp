// Figure 3 — (a) attention sparsity per layer for the three model
// families; (b) CDF of attention mass vs top-x% of tokens ("~90% of the
// attention goes to ~40% of tokens"); (c) ROUGE-2 of Full vs Key-Attention
// vs Window vs H2O at 50% KV cache.
#include <map>

#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);

  Table sparsity("Fig 3a: default attention sparsity (%) per layer");
  sparsity.header({"model", "layer0", "layer1", "layer2", "layer3"});

  Table cdf("Fig 3b: cumulative attention mass of top-x% tokens");
  {
    std::vector<std::string> hdr{"model"};
    for (int p = 10; p <= 90; p += 10) hdr.push_back(std::to_string(p) + "%");
    cdf.header(hdr);
  }

  for (const model::ModelConfig& cfg : bench::bench_models()) {
    model::Transformer m(cfg);
    const auto samples = bench::summarization_set(opt);

    std::vector<double> layer_sparsity(cfg.n_layers, 0.0);
    std::vector<std::size_t> layer_rows(cfg.n_layers, 0);
    // Attention mass received per original position (decode rows).
    std::map<std::size_t, double> position_mass;

    m.set_observer([&](const model::AttentionObservation& obs) {
      const auto& attn = *obs.attn;
      for (std::size_t h = 0; h < cfg.n_heads; ++h) {
        const std::size_t block = h * attn.n_q * attn.key_len;
        layer_sparsity[obs.layer] += eval::mean_causal_sparsity(
            {attn.probs.data() + block, attn.n_q * attn.key_len}, attn.n_q,
            attn.key_len, attn.key_len - attn.n_q, /*threshold=*/0.0);
        ++layer_rows[obs.layer];
        if (!obs.is_prompt) {
          const float* row =
              attn.probs.data() + block + (attn.n_q - 1) * attn.key_len;
          for (std::size_t i = 0; i < attn.key_len; ++i) {
            position_mass[obs.key_positions[i]] += row[i];
          }
        }
      }
    });

    auto full = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
    eval::EvalConfig ec;
    ec.max_new_tokens = opt.gen_tokens;
    (void)eval::generate_outputs(m, samples, *full, ec);
    m.set_observer({});

    std::vector<std::string> row{cfg.name};
    for (std::size_t l = 0; l < cfg.n_layers; ++l) {
      row.push_back(
          Table::num(100.0 * layer_sparsity[l] / layer_rows[l], 1));
    }
    sparsity.row(row);

    std::vector<double> mass;
    mass.reserve(position_mass.size());
    for (const auto& [pos, v] : position_mass) mass.push_back(v);
    const auto series = eval::attention_mass_cdf(mass);
    std::vector<std::string> cdf_row{cfg.name};
    for (const double v : series) cdf_row.push_back(Table::num(v, 3));
    cdf.row(cdf_row);
  }
  sparsity.print(std::cout);
  bench::maybe_write_csv(opt, sparsity, "fig03a_sparsity");
  cdf.print(std::cout);
  bench::maybe_write_csv(opt, cdf, "fig03b_cdf");

  // (c) scheme accuracy at 50% cache.
  Table acc(
      "Fig 3c: ROUGE-2 fidelity to full attention @ 50% KV cache "
      "(Full / KeyAttention / Window / H2O)");
  acc.header({"model", "full", "key_attention", "window", "h2o"});
  for (const model::ModelConfig& cfg : bench::bench_models()) {
    model::Transformer m(cfg);
    const auto samples = bench::summarization_set(opt);
    eval::EvalConfig ec;
    ec.max_new_tokens = opt.gen_tokens;
    auto full = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
    const auto outputs = eval::generate_outputs(m, samples, *full, ec);

    std::vector<std::string> row{cfg.name, Table::num(1.0, 3)};
    for (const auto kind :
         {kv::PolicyKind::kKeyAttention, kv::PolicyKind::kWindow,
          kv::PolicyKind::kH2O}) {
      auto policy = bench::make_policy(kind, opt.seed);
      ec.cache_ratio = 0.5;
      const auto res =
          eval::evaluate_policy_on_task(m, samples, *policy, ec, &outputs);
      row.push_back(Table::num(res.fid_rouge2, 3));
    }
    acc.row(row);
  }
  acc.print(std::cout);
  bench::maybe_write_csv(opt, acc, "fig03c_accuracy");

  std::cout << "Paper shape check: attention is substantially sparse at "
               "every layer; a minority of tokens holds most of the mass; "
               "window-only and key-tokens-only both fall well short of "
               "full attention at 50% cache.\n";
  return 0;
}
