// Table 4 — which logit-adjustment distribution identifies key tokens
// best: Gumbel vs Gaussian (same mean/std) vs constant (Gumbel mean) vs
// none (H2O-style), at 60% KV cache on all three model families.
#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);

  Table t(
      "Table 4: ROUGE-2 fidelity with different logit adjustments "
      "(60% KV cache; Gaussian matches the Gumbel's mean and variance)");
  t.header({"model", "gumbel", "gaussian", "constant", "none"});

  for (const model::ModelConfig& cfg : bench::bench_models()) {
    model::Transformer m(cfg);
    const auto samples = bench::summarization_set(opt);
    eval::EvalConfig ec;
    ec.max_new_tokens = opt.gen_tokens;
    auto full = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
    const auto outputs = eval::generate_outputs(m, samples, *full, ec);

    std::vector<std::string> row{cfg.name};
    for (const auto adjustment :
         {kv::LogitAdjustment::kGumbel, kv::LogitAdjustment::kGaussian,
          kv::LogitAdjustment::kConstant, kv::LogitAdjustment::kNone}) {
      kv::PolicyConfig pc;
      pc.kind = kv::PolicyKind::kKeyformer;
      pc.keyformer.score.adjustment = adjustment;
      pc.keyformer.score.seed = opt.seed;
      auto policy = kv::make_policy(pc);
      eval::EvalConfig rc = ec;
      rc.cache_ratio = 0.6;
      const auto res =
          eval::evaluate_policy_on_task(m, samples, *policy, rc, &outputs);
      row.push_back(Table::num(res.fid_rouge2, 3));
    }
    t.row(row);
  }
  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "table4_distributions");

  std::cout << "Paper shape check: the skewed Gumbel adjustment leads on "
               "the RoPE and learned-position families; the constant shift "
               "cancels in the softmax and lands exactly on the "
               "no-adjustment score. (Divergence: the ALiBi family prefers "
               "the un-noised score at this budget — see EXPERIMENTS.md.)\n";
  return 0;
}
