// Figure 13 (appendix A.5) — the ROUGE-1 and ROUGE-L versions of the
// Fig 7 summarization sweep (MLPerf requires all three ROUGE variants to
// stay within 99% of baseline).
#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const auto samples = bench::summarization_set(opt);

  for (const model::ModelConfig& cfg : bench::bench_models()) {
    model::Transformer m(cfg);
    eval::EvalConfig ec;
    ec.max_new_tokens = opt.gen_tokens;
    auto full = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
    const auto outputs = eval::generate_outputs(m, samples, *full, ec);

    Table t("Fig 13 [" + cfg.name +
            "]: ROUGE-1 / ROUGE-L fidelity vs KV cache");
    t.header({"kv_cache", "window_R1", "h2o_R1", "keyformer_R1",
              "window_RL", "h2o_RL", "keyformer_RL"});

    const std::vector<double> ratios =
        opt.quick ? std::vector<double>{0.3, 0.5, 0.7}
                  : std::vector<double>{0.2, 0.3, 0.4, 0.5,
                                        0.6, 0.7, 0.8, 0.9};
    for (const double ratio : ratios) {
      std::vector<std::string> r1_cells, rl_cells;
      for (const auto kind : bench::paper_policies()) {
        auto policy = bench::make_policy(kind, opt.seed);
        eval::EvalConfig rc = ec;
        rc.cache_ratio = ratio;
        const auto res =
            eval::evaluate_policy_on_task(m, samples, *policy, rc, &outputs);
        r1_cells.push_back(Table::num(res.fid_rouge1, 3));
        rl_cells.push_back(Table::num(res.fid_rougeL, 3));
      }
      std::vector<std::string> row{bench::pct(ratio)};
      row.insert(row.end(), r1_cells.begin(), r1_cells.end());
      row.insert(row.end(), rl_cells.begin(), rl_cells.end());
      t.row(row);
    }
    t.print(std::cout);
    bench::maybe_write_csv(opt, t, "fig13_" + cfg.name);
  }
  std::cout << "Paper shape check: ROUGE-1 and ROUGE-L rank the methods "
               "the same way ROUGE-2 does (Fig 7).\n";
  return 0;
}
