// Table 1 — generation throughput (tokens/s) for MPT-7B on an A100-80GB,
// batch 1, beam 4: Full Attention vs H2O (90% cache) vs Keyformer (50%
// cache), including the batch-2 OOM row.
#include "bench_common.h"

using namespace kf;

namespace {

std::string cell(const perf::CostModel& cm, const perf::WorkloadSpec& w) {
  const perf::InferenceCost c = cm.run(w);
  if (c.oom) return "OOM";
  return Table::num(c.throughput_tokens_per_s, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const perf::CostModel cm(perf::DeviceSpec::a100_80gb(),
                           perf::ModelSpec::mpt_7b());

  Table t(
      "Table 1: generation throughput tokens/s (MPT-7B, A100-80GB, beam 4) "
      "— paper: 24.9/15.0/8.3 full; 27.8/20.5/14.1 H2O; 32.0/24.3/17.0 "
      "Keyformer; OOM/OOM/19.85 at BS=2");
  t.header({"sequence", "full_attention", "h2o_90%cache",
            "keyformer_50%cache"});

  const auto make_row = [&](std::size_t len, std::size_t batch) {
    perf::WorkloadSpec full;
    full.prompt_len = len;
    full.gen_len = len;
    full.batch = batch;

    perf::WorkloadSpec h2o = full;
    // H2O as deployed by the paper tracks a fraction of the growing
    // sequence (its batch-2 row OOMs, which pins down this mode).
    h2o.cache_mode = perf::CacheMode::kGrowingFraction;
    h2o.cache_ratio = 0.9;
    h2o.policy_cost = perf::PolicyCost::kTopK;

    perf::WorkloadSpec keyformer = full;
    keyformer.cache_mode = perf::CacheMode::kStaticPrompt;
    keyformer.cache_ratio = 0.5;
    keyformer.policy_cost = perf::PolicyCost::kGumbelTopK;

    const std::string label = std::to_string(len) + "+" +
                              std::to_string(len) +
                              (batch == 2 ? " (BS=2)" : "");
    t.row({label, cell(cm, full), cell(cm, h2o), cell(cm, keyformer)});
  };

  make_row(1024, 1);
  make_row(2048, 1);
  make_row(4096, 1);
  make_row(4096, 2);

  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "table1_throughput");

  std::cout << "Paper shape check: full-attention rows calibrate to "
               "24.9/15.0/8.3; reduced caches raise throughput ~1.5-2.5x; "
               "only Keyformer fits batch 2 at 4096+4096.\n";
  return 0;
}
