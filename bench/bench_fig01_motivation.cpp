// Figure 1 — the motivation plot.
// (a) Inference latency normalized to sequence length 512 (50% context +
//     50% generation) with the KV-cache data-movement share, MPT-7B,
//     batch 1, beam 4, A100-80GB.
// (b) KV-cache size vs model size (GB) as sequence length grows.
#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  const perf::CostModel cm(perf::DeviceSpec::a100_80gb(),
                           perf::ModelSpec::mpt_7b());

  Table lat(
      "Fig 1a: normalized inference latency and KV movement share "
      "(MPT-7B, A100, batch 1, beam 4, 50% context + 50% generation)");
  lat.header({"seq_len", "latency_s", "normalized", "kv_move_s",
              "kv_share", "other_s"});

  double base = 0.0;
  for (const std::size_t seq : {512u, 2048u, 8192u}) {
    perf::WorkloadSpec w;
    w.prompt_len = seq / 2;
    w.gen_len = seq / 2;
    const perf::InferenceCost c = cm.run(w);
    if (base == 0.0) base = c.total_seconds;
    lat.row({Table::num(static_cast<long long>(seq)),
             Table::num(c.total_seconds, 2),
             Table::num(c.total_seconds / base, 1) + "x",
             Table::num(c.kv_movement_seconds, 2),
             Table::num(100.0 * c.kv_movement_seconds / c.total_seconds, 1) +
                 "%",
             Table::num(c.other_seconds, 2)});
  }
  lat.print(std::cout);
  bench::maybe_write_csv(opt, lat, "fig01a_latency");

  Table mem("Fig 1b: KV cache size vs model size (GB), beam 4");
  mem.header({"seq_len", "kv_cache_gb", "model_gb", "kv_exceeds_model"});
  for (const std::size_t seq : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    perf::WorkloadSpec w;
    w.prompt_len = seq / 2;
    w.gen_len = seq / 2;
    const perf::InferenceCost c = cm.run(w);
    mem.row({Table::num(static_cast<long long>(seq)),
             Table::num(c.kv_cache_peak_bytes / 1e9, 2),
             Table::num(c.model_bytes / 1e9, 2),
             c.kv_cache_peak_bytes > c.model_bytes ? "yes" : "no"});
  }
  mem.print(std::cout);
  bench::maybe_write_csv(opt, mem, "fig01b_memory");

  std::cout << "Paper shape check: latency grows superlinearly with "
               "sequence length; the KV cache passes the model size near "
               "seq 8k (with beam 4); KV movement dominates decode time at "
               "long contexts.\n";
  return 0;
}
