// Figure 7 — the headline accuracy result: ROUGE-2 across KV-cache budgets
// (20%..90%) for Window / H2O / Keyformer against the Full Attention
// baseline, on three model families x {summarization, conversation}.
//
// Reported metric: ROUGE-2 fidelity to the full-attention generation (the
// iso-accuracy notion; full attention = 1.000, red line = 0.99) plus
// reference ROUGE-1 against the planted facts for context.
#include "bench_common.h"

using namespace kf;

namespace {

void run_task(const bench::Options& opt, const std::string& task_name,
              const std::vector<data::Sample>& samples) {
  for (const model::ModelConfig& cfg : bench::bench_models()) {
    model::Transformer m(cfg);
    eval::EvalConfig ec;
    ec.max_new_tokens = opt.gen_tokens;
    auto full = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
    const auto outputs = eval::generate_outputs(m, samples, *full, ec);
    const auto full_res =
        eval::evaluate_policy_on_task(m, samples, *full, ec, &outputs);

    Table t("Fig 7 [" + task_name + "] " + cfg.name +
            " — ROUGE-2 fidelity vs KV cache budget (full = 1.000, "
            "99% line = 0.990); ref_R1 in parentheses column");
    t.header({"kv_cache", "window", "h2o", "keyformer", "keyformer_ref_R1",
              "full_ref_R1"});

    const std::vector<double> ratios =
        opt.quick ? std::vector<double>{0.3, 0.5, 0.7}
                  : std::vector<double>{0.2, 0.3, 0.4, 0.5,
                                        0.6, 0.7, 0.8, 0.9};
    for (const double ratio : ratios) {
      std::vector<std::string> row{bench::pct(ratio)};
      double keyformer_ref = 0.0;
      for (const auto kind : bench::paper_policies()) {
        auto policy = bench::make_policy(kind, opt.seed);
        eval::EvalConfig rc = ec;
        rc.cache_ratio = ratio;
        const auto res =
            eval::evaluate_policy_on_task(m, samples, *policy, rc, &outputs);
        row.push_back(Table::num(res.fid_rouge2, 3));
        if (kind == kv::PolicyKind::kKeyformer) {
          keyformer_ref = res.ref_rouge1;
        }
      }
      row.push_back(Table::num(keyformer_ref, 3));
      row.push_back(Table::num(full_res.ref_rouge1, 3));
      t.row(row);
    }
    t.print(std::cout);
    bench::maybe_write_csv(opt, t,
                           "fig07_" + task_name + "_" + cfg.name);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  run_task(opt, "summarization", bench::summarization_set(opt));
  run_task(opt, "conversation", bench::conversation_set(opt));
  std::cout << "Paper shape check: window attention trails badly at every "
               "budget; Keyformer tracks or beats H2O and approaches the "
               "baseline at smaller budgets than H2O does.\n";
  return 0;
}
