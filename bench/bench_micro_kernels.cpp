// Micro-kernel benchmarks (google-benchmark): the primitive costs behind
// the analytical model — attention step, plain softmax vs Gumbel softmax
// (Keyformer's score overhead, Fig 10), cache compaction, matmul.
//
// Kernels with runtime-dispatched SIMD variants (matvec, vecmat, dot,
// axpy, max_value, logsumexp, softmax, and the fused decode attend inside
// the attention step) are registered once per ISA available on this
// host/build — "BM_Dot<scalar>/4096" vs "BM_Dot<avx2>/4096" rows give the
// speedup matrix directly. Variants the host cannot run are simply not
// registered. Benchmarks run sequentially, so the process-wide ISA
// override each one installs cannot race another benchmark.
#include <benchmark/benchmark.h>

#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "keyformer/keyformer.h"

namespace {

using namespace kf;

/// Scoped kernel-ISA override: benchmarks sweep variants in-process and
/// must restore the env/detected default for the next registrant.
class IsaGuard {
 public:
  explicit IsaGuard(cpu::CpuIsa isa) { cpu::set_isa_override(isa); }
  ~IsaGuard() { cpu::clear_isa_override(); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;
};

void BM_Matmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n, 1.0F), b(n * n, 0.5F), c(n * n);
  for (auto _ : state) {
    matmul(a, b, c, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_Matvec(benchmark::State& state, cpu::CpuIsa isa) {
  // The decode fast path's dot-product shape: [key_len, d_head] keys
  // against one rotated query head.
  const IsaGuard guard(isa);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 32;
  std::vector<float> a(n * k, 0.5F), x(k, 1.0F), y(n);
  for (auto _ : state) {
    matvec(a, x, y, n, k);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * k));
}

void BM_VecMat(benchmark::State& state, cpu::CpuIsa isa) {
  // Row-vector times matrix: decode-path QKV/output projection shape.
  const IsaGuard guard(isa);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n, 0.5F), x(n, 1.0F), y(n);
  for (auto _ : state) {
    vecmat(x, a, y, n, n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}

void BM_Dot(benchmark::State& state, cpu::CpuIsa isa) {
  const IsaGuard guard(isa);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n, 0.5F), b(n, 0.25F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dot(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_Axpy(benchmark::State& state, cpu::CpuIsa isa) {
  // The fused attend's V accumulation shape: ctx += p_i * V_row.
  const IsaGuard guard(isa);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n, 0.5F), y(n, 0.0F);
  for (auto _ : state) {
    axpy(0.125F, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_MaxValue(benchmark::State& state, cpu::CpuIsa isa) {
  const IsaGuard guard(isa);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<float>(i % 31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_value(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_Logsumexp(benchmark::State& state, cpu::CpuIsa isa) {
  const IsaGuard guard(isa);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<float>(i % 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(logsumexp(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_Softmax(benchmark::State& state, cpu::CpuIsa isa) {
  const IsaGuard guard(isa);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n), out(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<float>(i % 17);
  for (auto _ : state) {
    softmax(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_GumbelSoftmaxScore(benchmark::State& state) {
  // Keyformer's per-head score increment over a cache row — the overhead
  // Fig 10 charges against the Gumbel softmax.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> logits(n);
  std::vector<std::size_t> positions(n);
  std::iota(positions.begin(), positions.end(), 0);
  for (std::size_t i = 0; i < n; ++i) logits[i] = static_cast<float>(i % 13);
  std::vector<double> out(n);
  const kv::ScoreFunction fn{kv::ScoreFunctionConfig{}};
  std::size_t t = 0;
  for (auto _ : state) {
    fn.increments(logits, positions, 0, 0, t++ % 64, 64, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GumbelSoftmaxScore)->Arg(512)->Arg(2048)->Arg(8192);

void BM_AttentionDecodeStep(benchmark::State& state, cpu::CpuIsa isa) {
  // Whole single-query attention layer (projections + fused attend) over
  // a pre-filled cache — the end-to-end consumer of the kernels above.
  const IsaGuard guard(isa);
  const std::size_t ctx = static_cast<std::size_t>(state.range(0));
  model::ModelConfig cfg = model::ModelConfig::mpt_like();
  const model::ModelWeights w = model::build_weights(cfg);
  kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head(), ctx + 8);
  Rng rng(1);
  std::vector<float> row(cache.row_width());
  for (std::size_t i = 0; i < ctx; ++i) {
    for (float& v : row) v = static_cast<float>(rng.normal());
    cache.append(row, row, i);
  }
  Tensor x({1, cfg.d_model});
  for (float& v : x.span()) v = static_cast<float>(rng.normal());
  std::size_t pos = ctx;
  for (auto _ : state) {
    const std::size_t positions[1] = {pos++};
    auto r = model::attention_forward(cfg, w.layers[0], x, {positions, 1},
                                      cache);
    benchmark::DoNotOptimize(r.context.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ctx));
}

void BM_CacheCompaction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  model::ModelConfig cfg = model::ModelConfig::mpt_like();
  std::vector<float> row(cfg.d_model, 1.0F);
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < n; i += 2) keep.push_back(i);
  for (auto _ : state) {
    state.PauseTiming();
    kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head(), n);
    for (std::size_t i = 0; i < n; ++i) cache.append(row, row, i);
    state.ResumeTiming();
    cache.compact(keep);
    benchmark::DoNotOptimize(cache.size());
  }
}
BENCHMARK(BM_CacheCompaction)->Arg(1024)->Arg(4096);

void BM_TopKSelection(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> scores(n);
  Rng rng(2);
  for (auto& s : scores) s = rng.uniform();
  for (auto _ : state) {
    auto keep = kv::keep_topk_plus_recent(scores, n, n - n / 10, n / 2);
    benchmark::DoNotOptimize(keep.data());
  }
}
BENCHMARK(BM_TopKSelection)->Arg(1024)->Arg(4096)->Arg(16384);

/// Registers `fn` once per ISA available on this host/build, as
/// "<name><isa>" with the given size arguments.
template <typename Fn>
void register_per_isa(const char* name, Fn fn,
                      const std::vector<std::int64_t>& sizes) {
  for (int i = 0; i < cpu::kIsaCount; ++i) {
    const auto isa = static_cast<cpu::CpuIsa>(i);
    if (!cpu::isa_available(isa)) continue;
    const std::string full =
        std::string(name) + "<" + cpu::isa_name(isa) + ">";
    auto* b = benchmark::RegisterBenchmark(full.c_str(), fn, isa);
    for (const std::int64_t n : sizes) b->Arg(n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << kf::cpu::describe() << '\n';
  register_per_isa("BM_Matvec", BM_Matvec, {512, 2048, 8192});
  register_per_isa("BM_VecMat", BM_VecMat, {128, 256, 1024});
  register_per_isa("BM_Dot", BM_Dot, {64, 512, 4096});
  register_per_isa("BM_Axpy", BM_Axpy, {64, 512, 4096});
  register_per_isa("BM_MaxValue", BM_MaxValue, {512, 2048, 8192});
  register_per_isa("BM_Logsumexp", BM_Logsumexp, {512, 2048, 8192});
  register_per_isa("BM_Softmax", BM_Softmax, {512, 2048, 8192});
  register_per_isa("BM_AttentionDecodeStep", BM_AttentionDecodeStep,
                   {256, 1024, 4096});
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
