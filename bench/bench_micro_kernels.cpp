// Micro-kernel benchmarks (google-benchmark): the primitive costs behind
// the analytical model — attention step, plain softmax vs Gumbel softmax
// (Keyformer's score overhead, Fig 10), cache compaction, matmul.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "keyformer/keyformer.h"

namespace {

using namespace kf;

void BM_Matmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n, 1.0F), b(n * n, 0.5F), c(n * n);
  for (auto _ : state) {
    matmul(a, b, c, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_Matvec(benchmark::State& state) {
  // The decode fast path's dot-product shape: [key_len, d_head] keys
  // against one rotated query head.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 32;
  std::vector<float> a(n * k, 0.5F), x(k, 1.0F), y(n);
  for (auto _ : state) {
    matvec(a, x, y, n, k);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * k));
}
BENCHMARK(BM_Matvec)->Arg(512)->Arg(2048)->Arg(8192);

void BM_VecMat(benchmark::State& state) {
  // Row-vector times matrix: decode-path QKV/output projection shape.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n, 0.5F), x(n, 1.0F), y(n);
  for (auto _ : state) {
    vecmat(x, a, y, n, n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_VecMat)->Arg(128)->Arg(256)->Arg(1024);

void BM_Dot(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n, 0.5F), b(n, 0.25F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dot(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Dot)->Arg(64)->Arg(512)->Arg(4096);

void BM_Softmax(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n), out(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<float>(i % 17);
  for (auto _ : state) {
    softmax(x, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(512)->Arg(2048)->Arg(8192);

void BM_GumbelSoftmaxScore(benchmark::State& state) {
  // Keyformer's per-head score increment over a cache row — the overhead
  // Fig 10 charges against the Gumbel softmax.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> logits(n);
  std::vector<std::size_t> positions(n);
  std::iota(positions.begin(), positions.end(), 0);
  for (std::size_t i = 0; i < n; ++i) logits[i] = static_cast<float>(i % 13);
  std::vector<double> out(n);
  const kv::ScoreFunction fn{kv::ScoreFunctionConfig{}};
  std::size_t t = 0;
  for (auto _ : state) {
    fn.increments(logits, positions, 0, 0, t++ % 64, 64, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GumbelSoftmaxScore)->Arg(512)->Arg(2048)->Arg(8192);

void BM_AttentionDecodeStep(benchmark::State& state) {
  const std::size_t ctx = static_cast<std::size_t>(state.range(0));
  model::ModelConfig cfg = model::ModelConfig::mpt_like();
  const model::ModelWeights w = model::build_weights(cfg);
  kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head(), ctx + 8);
  Rng rng(1);
  std::vector<float> row(cache.row_width());
  for (std::size_t i = 0; i < ctx; ++i) {
    for (float& v : row) v = static_cast<float>(rng.normal());
    cache.append(row, row, i);
  }
  Tensor x({1, cfg.d_model});
  for (float& v : x.span()) v = static_cast<float>(rng.normal());
  std::size_t pos = ctx;
  for (auto _ : state) {
    const std::size_t positions[1] = {pos++};
    auto r = model::attention_forward(cfg, w.layers[0], x, {positions, 1},
                                      cache);
    benchmark::DoNotOptimize(r.context.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ctx));
}
BENCHMARK(BM_AttentionDecodeStep)->Arg(256)->Arg(1024)->Arg(4096);

void BM_CacheCompaction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  model::ModelConfig cfg = model::ModelConfig::mpt_like();
  std::vector<float> row(cfg.d_model, 1.0F);
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < n; i += 2) keep.push_back(i);
  for (auto _ : state) {
    state.PauseTiming();
    kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head(), n);
    for (std::size_t i = 0; i < n; ++i) cache.append(row, row, i);
    state.ResumeTiming();
    cache.compact(keep);
    benchmark::DoNotOptimize(cache.size());
  }
}
BENCHMARK(BM_CacheCompaction)->Arg(1024)->Arg(4096);

void BM_TopKSelection(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> scores(n);
  Rng rng(2);
  for (auto& s : scores) s = rng.uniform();
  for (auto _ : state) {
    auto keep = kv::keep_topk_plus_recent(scores, n, n - n / 10, n / 2);
    benchmark::DoNotOptimize(keep.data());
  }
}
BENCHMARK(BM_TopKSelection)->Arg(1024)->Arg(4096)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
