// Figures 14/15 (appendix A.6) — attention heat maps per (layer, head)
// for the GPT-J-like (RoPE) and MPT-like (ALiBi) models. The x-axis is the
// original token position (bucketed); each row is one head's decode-phase
// attention profile, rendered as ASCII art; the full matrix goes to CSV
// with --csv.
#include <fstream>

#include "bench_common.h"

using namespace kf;

namespace {

void render(const bench::Options& opt, const model::ModelConfig& cfg,
            const std::string& tag) {
  model::Transformer m(cfg);
  data::SummarizationConfig dc;
  dc.seed = opt.seed;
  dc.doc_len = 320;
  const auto sample = data::make_summarization_sample(dc, 0);

  eval::HeatmapRecorder rec(cfg.n_layers, cfg.n_heads, 48);
  rec.set_sequence_length(sample.prompt.size() + opt.gen_tokens);
  m.set_observer(
      [&](const model::AttentionObservation& obs) { rec.record(obs); });

  auto policy = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
  model::GenerationConfig g;
  g.max_new_tokens = opt.gen_tokens;
  g.banned_tokens = {data::kBos, data::kEos, data::kSep, data::kPad};
  model::generate(m, sample.prompt, *policy, g);
  m.set_observer({});

  std::cout << "== Fig 14/15 [" << tag << " / " << cfg.name
            << "]: decode-phase attention per (layer, head) ==\n";
  std::cout << "(x: original position buckets over the sequence; ramp "
               "' .:-=+*#%@'; ALiBi heads 0.. have steep slopes)\n";
  for (std::size_t l = 0; l < cfg.n_layers; ++l) {
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      std::cout << "L" << l << ",H" << h << " |" << rec.ascii_art(l, h)
                << "|\n";
    }
  }
  std::cout << '\n';

  if (!opt.csv_dir.empty()) {
    const std::string path = opt.csv_dir + "/fig14_" + tag + ".csv";
    std::ofstream out(path);
    if (out) {
      out << rec.to_csv();
      std::cout << "(csv written to " << path << ")\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  render(opt, model::ModelConfig::gptj_like(), "gptj_rope");
  render(opt, model::ModelConfig::mpt_like(), "mpt_alibi");
  std::cout << "Paper shape check: RoPE heads show scattered content "
               "hotspots with no single pattern; ALiBi low-index heads "
               "concentrate near the recent edge while high-index heads "
               "reach back — which is why attention sinks alone "
               "(StreamingLLM) underperform on MPT.\n";
  return 0;
}
