// Serving-throughput bench: the measured version of Table 1's "bigger
// batch" row. Two sweeps over the real serve::Engine (not the cost model):
//
//   1. batch scaling — aggregate decode tokens/s vs max batch size at a
//      fixed cache_ratio: continuous batching amortizes the projection
//      GEMMs and runs per-sequence attention in parallel, so aggregate
//      throughput grows with batch size on the same weights;
//   2. memory frontier — at a fixed KV-memory budget
//      (max_concurrent_tokens), sweep cache_ratio: a reduced cache costs
//      ~ratio * prompt_len per sequence, so smaller ratios admit larger
//      batches into the same memory and win aggregate tokens/s — the
//      compounding effect behind the paper's 2.4x claim.
//
//   ./bench/bench_serve_throughput [--quick] [--gen N] [--seed S]
//                                  [--csv DIR]
//
// --csv DIR writes serve_throughput.csv + serve_frontier.csv (the CI
// artifact recording the serving-throughput trajectory).
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace kf;

namespace {

struct Workload {
  std::size_t n_requests = 0;
  std::size_t prompt_len = 0;
  std::size_t gen_tokens = 0;
  std::uint64_t seed = 0;
};

std::vector<serve::Request> make_requests(const model::ModelConfig& cfg,
                                          const Workload& wl) {
  Rng rng(wl.seed);
  std::vector<serve::Request> requests(wl.n_requests);
  for (std::size_t i = 0; i < wl.n_requests; ++i) {
    requests[i].id = i;
    requests[i].prompt.resize(wl.prompt_len);
    for (auto& t : requests[i].prompt) {
      t = static_cast<model::Token>(rng.uniform_u64(cfg.vocab_size));
    }
    requests[i].gen.max_new_tokens = wl.gen_tokens;
  }
  return requests;
}

serve::EngineStats run_cell(model::Transformer& m, const Workload& wl,
                    double cache_ratio, std::size_t max_batch,
                    std::size_t max_tokens) {
  std::vector<serve::Request> requests = make_requests(m.config(), wl);
  for (auto& r : requests) r.gen.cache_ratio = cache_ratio;

  serve::EngineConfig ec;
  ec.policy.kind = kv::PolicyKind::kKeyformer;
  ec.scheduler.max_batch_size = max_batch;
  ec.scheduler.max_concurrent_tokens = max_tokens;
  serve::Engine engine(m, ec);
  engine.run(requests);
  return engine.stats();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);

  Workload wl;
  wl.seed = opt.seed;
  wl.prompt_len = opt.quick ? 96 : 256;
  wl.gen_tokens = opt.gen_given ? opt.gen_tokens : (opt.quick ? 16 : 48);
  if (wl.gen_tokens == 0) {
    std::cerr << "error: --gen must be positive\n";
    return 1;
  }
  const std::vector<std::size_t> batches =
      opt.quick ? std::vector<std::size_t>{1, 4}
                : std::vector<std::size_t>{1, 2, 4, 8};
  wl.n_requests = batches.back() * 2;

  model::ModelConfig cfg = model::ModelConfig::gptj_like();
  cfg.max_seq_len = 4096;
  model::Transformer m(cfg);

  std::cout << "serve throughput (gptj-like RoPE, keyformer policy, "
            << wl.n_requests << " requests, prompt " << wl.prompt_len
            << ", gen " << wl.gen_tokens << ", "
            << ThreadPool::global().size()
            << " worker threads)\n"
            << "note: batch scaling is parallel across sequences — on a "
               "single-core host sweep 1 is expected to be flat\n\n";

  // Sweep 1: batch scaling at fixed cache_ratio.
  const double fixed_ratio = 0.5;
  Table t1("aggregate decode throughput vs batch size (cache_ratio 0.5)");
  t1.header({"max_batch", "decode_tok_per_s", "speedup_vs_b1", "steps",
             "peak_batch", "peak_kv_tokens"});
  double base_tps = 0.0;
  for (const std::size_t b : batches) {
    const serve::EngineStats stats =
        run_cell(m, wl, fixed_ratio, b, /*max_tokens=*/0);
    const double tps = stats.decode_tokens_per_s();
    if (b == batches.front()) base_tps = tps;
    t1.row({Table::num(static_cast<long long>(b)), Table::num(tps, 1),
            Table::num(base_tps > 0.0 ? tps / base_tps : 0.0, 2) + "x",
            Table::num(static_cast<long long>(stats.steps)),
            Table::num(static_cast<long long>(stats.max_batch)),
            Table::num(
                static_cast<long long>(stats.max_tokens_in_use))});
  }
  t1.print(std::cout);
  bench::maybe_write_csv(opt, t1, "serve_throughput");
  std::cout << '\n';

  // Sweep 2: memory frontier — fixed KV budget, varying cache_ratio. The
  // budget fits ~3 full-attention sequences of this workload; reduced
  // ratios fit proportionally more.
  const std::size_t kv_budget = 3 * (wl.prompt_len + wl.gen_tokens);
  const std::vector<double> ratios =
      opt.quick ? std::vector<double>{1.0, 0.5}
                : std::vector<double>{1.0, 0.75, 0.5, 0.25};
  Table t2("fixed KV-memory budget (" + std::to_string(kv_budget) +
           " tokens): cache_ratio buys batch size");
  t2.header({"cache_ratio", "achieved_batch", "decode_tok_per_s",
             "speedup_vs_full", "peak_kv_tokens"});
  double full_tps = 0.0;
  for (const double r : ratios) {
    const serve::EngineStats stats =
        run_cell(m, wl, r, /*max_batch=*/0, kv_budget);
    const double tps = stats.decode_tokens_per_s();
    if (r == ratios.front()) full_tps = tps;
    t2.row({Table::num(r, 2),
            Table::num(static_cast<long long>(stats.max_batch)),
            Table::num(tps, 1),
            Table::num(full_tps > 0.0 ? tps / full_tps : 0.0, 2) + "x",
            Table::num(
                static_cast<long long>(stats.max_tokens_in_use))});
  }
  t2.print(std::cout);
  bench::maybe_write_csv(opt, t2, "serve_frontier");

  std::cout << "\nReading guide: sweep 1 shows continuous batching scaling "
               "aggregate decode tokens/s with batch size on one set of "
               "weights; sweep 2 holds KV memory fixed and shows a reduced "
               "cache ratio converting freed memory into batch size and "
               "throughput — the measured form of Table 1's bigger-batch "
               "row.\n";
  return 0;
}
