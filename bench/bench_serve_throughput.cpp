// Serving-throughput bench: the measured version of Table 1's "bigger
// batch" row. Three sweeps over the real serve::Engine (not the cost
// model):
//
//   1. batch scaling — aggregate decode tokens/s vs max batch size at a
//      fixed cache_ratio: continuous batching amortizes the projection
//      GEMMs and runs per-sequence attention in parallel, so aggregate
//      throughput grows with batch size on the same weights;
//   2. memory frontier — at a fixed KV-memory budget
//      (max_concurrent_tokens), sweep cache_ratio: a reduced cache costs
//      ~ratio * prompt_len per sequence, so smaller ratios admit larger
//      batches into the same memory and win aggregate tokens/s — the
//      compounding effect behind the paper's 2.4x claim;
//   3. shard scaling (with --shards N) — paged KV memory, sweeping the
//      pool's shard count 1..N at the largest batch: per-sequence caches
//      land on separate shards, so allocation/eviction contention and
//      (on NUMA hosts) memory-domain locality stop serializing decode.
//      Like sweep 1, this is parallel across sequences — flat on a
//      single-core host.
//
//   ./bench/bench_serve_throughput [--quick] [--gen N] [--seed S]
//                                  [--csv DIR] [--shards N]
//                                  [--block-tokens N]
//                                  [--monitor-period-ms N]
//                                  [--prom-out FILE] [--timeseries-out FILE]
//
// --shards N additionally switches sweeps 1-2 onto the paged allocator so
// their pool_util / frag columns are live (0 under contiguous caches).
// --csv DIR writes serve_throughput.csv + serve_frontier.csv (+
// serve_shards.csv with --shards) — the CI artifact recording the
// serving-throughput trajectory.
// --monitor-period-ms N attaches a background Monitor thread to every
// cell's engine run; --prom-out / --timeseries-out write that cell's
// metrics registry / time-series rings after each cell (last cell wins),
// so the files describe the final — largest — configuration.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/export.h"
#include "obs/monitor.h"

using namespace kf;

namespace {

struct Workload {
  std::size_t n_requests = 0;
  std::size_t prompt_len = 0;
  std::size_t gen_tokens = 0;
  std::uint64_t seed = 0;
};

struct PagedOptions {
  std::size_t shards = 0;  ///< 0 = contiguous caches
  std::size_t block_tokens = 16;
};

struct MonitorOptions {
  std::size_t period_ms = 0;  ///< 0 = no monitor
  std::string prom_path;
  std::string timeseries_path;
};

std::vector<serve::Request> make_requests(const model::ModelConfig& cfg,
                                          const Workload& wl) {
  Rng rng(wl.seed);
  std::vector<serve::Request> requests(wl.n_requests);
  for (std::size_t i = 0; i < wl.n_requests; ++i) {
    requests[i].id = i;
    requests[i].prompt.resize(wl.prompt_len);
    for (auto& t : requests[i].prompt) {
      t = static_cast<model::Token>(rng.uniform_u64(cfg.vocab_size));
    }
    requests[i].gen.max_new_tokens = wl.gen_tokens;
  }
  return requests;
}

serve::EngineStats run_cell(model::Transformer& m, const Workload& wl,
                            double cache_ratio, std::size_t max_batch,
                            std::size_t max_tokens, const PagedOptions& po,
                            const MonitorOptions& mo) {
  std::vector<serve::Request> requests = make_requests(m.config(), wl);
  for (auto& r : requests) r.gen.cache_ratio = cache_ratio;

  serve::EngineConfig ec;
  ec.policy.kind = kv::PolicyKind::kKeyformer;
  ec.scheduler.max_batch_size = max_batch;
  ec.scheduler.max_concurrent_tokens = max_tokens;
  if (po.shards > 0) {
    ec.paged.enabled = true;
    ec.paged.n_shards = po.shards;
    ec.paged.block_tokens = po.block_tokens;
  }
  serve::Engine engine(m, ec);
  obs::Monitor monitor(
      {.period_ms = static_cast<double>(mo.period_ms)});
  if (mo.period_ms > 0) {
    serve::add_engine_probes(monitor, engine);
    monitor.start();
  }
  engine.run(requests);
  monitor.stop();
  if (!mo.prom_path.empty()) {
    if (!obs::write_prometheus(engine.metrics(), mo.prom_path)) {
      std::cerr << "error: cannot write " << mo.prom_path << '\n';
      std::exit(1);
    }
  }
  if (mo.period_ms > 0 && !mo.timeseries_path.empty()) {
    if (!obs::write_timeseries_json(monitor, mo.timeseries_path)) {
      std::cerr << "error: cannot write " << mo.timeseries_path << '\n';
      std::exit(1);
    }
  }
  return engine.stats();
}

/// Peak pool utilization of one cell (0 under contiguous caches or an
/// unbounded pool).
double pool_util(const serve::EngineStats& stats) {
  return stats.pool_capacity_blocks > 0
             ? static_cast<double>(stats.pool_peak_used_blocks) /
                   static_cast<double>(stats.pool_capacity_blocks)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  PagedOptions po;
  MonitorOptions mo;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_count = [&](const char* flag) -> std::size_t {
      const char* value = i + 1 < argc ? argv[++i] : "";
      const auto v = parse_count(value);
      if (!v.has_value()) {
        std::cerr << "error: " << flag
                  << " expects a non-negative integer, got \"" << value
                  << "\"\n";
        std::exit(1);
      }
      return static_cast<std::size_t>(*v);
    };
    const auto next_path = [&](const char* flag) -> std::string {
      const std::string value = i + 1 < argc ? argv[++i] : "";
      if (value.empty()) {
        std::cerr << "error: " << flag << " expects a file path\n";
        std::exit(1);
      }
      return value;
    };
    if (arg == "--shards") {
      po.shards = next_count("--shards");
    } else if (arg == "--block-tokens") {
      po.block_tokens = next_count("--block-tokens");
      if (po.block_tokens == 0) {
        std::cerr << "error: --block-tokens must be positive\n";
        return 1;
      }
    } else if (arg == "--monitor-period-ms") {
      mo.period_ms = next_count("--monitor-period-ms");
    } else if (arg == "--prom-out") {
      mo.prom_path = next_path("--prom-out");
    } else if (arg == "--timeseries-out") {
      mo.timeseries_path = next_path("--timeseries-out");
    }
  }
  if (mo.period_ms == 0 && !mo.timeseries_path.empty()) {
    mo.period_ms = 5;  // --timeseries-out needs samples to dump
  }

  Workload wl;
  wl.seed = opt.seed;
  wl.prompt_len = opt.quick ? 96 : 256;
  wl.gen_tokens = opt.gen_given ? opt.gen_tokens : (opt.quick ? 16 : 48);
  if (wl.gen_tokens == 0) {
    std::cerr << "error: --gen must be positive\n";
    return 1;
  }
  const std::vector<std::size_t> batches =
      opt.quick ? std::vector<std::size_t>{1, 4}
                : std::vector<std::size_t>{1, 2, 4, 8};
  wl.n_requests = batches.back() * 2;

  model::ModelConfig cfg = model::ModelConfig::gptj_like();
  cfg.max_seq_len = 4096;
  model::Transformer m(cfg);

  std::cout << "serve throughput (gptj-like RoPE, keyformer policy, "
            << wl.n_requests << " requests, prompt " << wl.prompt_len
            << ", gen " << wl.gen_tokens << ", "
            << ThreadPool::global().size() << " worker threads, "
            << (po.shards > 0 ? "paged KV: " + std::to_string(po.shards) +
                                    " shard(s) x " +
                                    std::to_string(po.block_tokens) +
                                    "-token blocks"
                              : std::string("contiguous KV caches"))
            << ")\n"
            << "note: batch and shard scaling are parallel across sequences "
               "— on a single-core host those sweeps are expected to be "
               "flat\n\n";

  // Sweep 1: batch scaling at fixed cache_ratio.
  const double fixed_ratio = 0.5;
  Table t1("aggregate decode throughput vs batch size (cache_ratio 0.5)");
  std::vector<std::string> h1{"max_batch", "isa", "decode_tok_per_s",
                              "speedup_vs_b1", "steps", "peak_batch",
                              "peak_kv_tokens", "pool_util", "frag"};
  bench::append_latency_columns(h1);
  t1.header(h1);
  double base_tps = 0.0;
  for (const std::size_t b : batches) {
    const serve::EngineStats stats =
        run_cell(m, wl, fixed_ratio, b, /*max_tokens=*/0, po, mo);
    const double tps = stats.decode_tokens_per_s();
    if (b == batches.front()) base_tps = tps;
    std::vector<std::string> row{
        Table::num(static_cast<long long>(b)), stats.isa, Table::num(tps, 1),
        Table::num(base_tps > 0.0 ? tps / base_tps : 0.0, 2) + "x",
        Table::num(static_cast<long long>(stats.steps)),
        Table::num(static_cast<long long>(stats.max_batch)),
        Table::num(static_cast<long long>(stats.max_tokens_in_use)),
        Table::num(pool_util(stats), 3),
        Table::num(stats.max_fragmentation, 3)};
    bench::append_latency_cells(row, stats);
    t1.row(row);
  }
  t1.print(std::cout);
  bench::maybe_write_csv(opt, t1, "serve_throughput");
  std::cout << '\n';

  // Sweep 2: memory frontier — fixed KV budget, varying cache_ratio. The
  // budget fits ~3 full-attention sequences of this workload; reduced
  // ratios fit proportionally more.
  const std::size_t kv_budget = 3 * (wl.prompt_len + wl.gen_tokens);
  const std::vector<double> ratios =
      opt.quick ? std::vector<double>{1.0, 0.5}
                : std::vector<double>{1.0, 0.75, 0.5, 0.25};
  Table t2("fixed KV-memory budget (" + std::to_string(kv_budget) +
           " tokens): cache_ratio buys batch size");
  std::vector<std::string> h2{"cache_ratio", "isa", "achieved_batch",
                              "decode_tok_per_s", "speedup_vs_full",
                              "peak_kv_tokens", "pool_util", "frag"};
  bench::append_latency_columns(h2);
  t2.header(h2);
  double full_tps = 0.0;
  for (const double r : ratios) {
    const serve::EngineStats stats =
        run_cell(m, wl, r, /*max_batch=*/0, kv_budget, po, mo);
    const double tps = stats.decode_tokens_per_s();
    if (r == ratios.front()) full_tps = tps;
    std::vector<std::string> row{
        Table::num(r, 2), stats.isa,
        Table::num(static_cast<long long>(stats.max_batch)),
        Table::num(tps, 1),
        Table::num(full_tps > 0.0 ? tps / full_tps : 0.0, 2) + "x",
        Table::num(static_cast<long long>(stats.max_tokens_in_use)),
        Table::num(pool_util(stats), 3),
        Table::num(stats.max_fragmentation, 3)};
    bench::append_latency_cells(row, stats);
    t2.row(row);
  }
  t2.print(std::cout);
  bench::maybe_write_csv(opt, t2, "serve_frontier");

  // Sweep 3: shard scaling — paged pool, shard count 1..N, biggest batch.
  if (po.shards > 0) {
    std::cout << '\n';
    Table t3("aggregate decode throughput vs pool shard count (batch " +
             std::to_string(batches.back()) + ", cache_ratio 0.5)");
    t3.header({"shards", "isa", "decode_tok_per_s", "speedup_vs_s1",
               "peak_blocks_reserved", "pool_util", "frag"});
    double s1_tps = 0.0;
    // Doubling steps, but always ending exactly at the requested count
    // (a --shards 3 run must measure 3 shards, not stop at 2).
    std::vector<std::size_t> shard_counts;
    for (std::size_t s = 1; s < po.shards; s *= 2) shard_counts.push_back(s);
    shard_counts.push_back(po.shards);
    for (const std::size_t s : shard_counts) {
      PagedOptions cell = po;
      cell.shards = s;
      const serve::EngineStats stats = run_cell(
          m, wl, fixed_ratio, batches.back(), /*max_tokens=*/0, cell, mo);
      const double tps = stats.decode_tokens_per_s();
      if (s == 1) s1_tps = tps;
      t3.row({Table::num(static_cast<long long>(s)), stats.isa,
              Table::num(tps, 1),
              Table::num(s1_tps > 0.0 ? tps / s1_tps : 0.0, 2) + "x",
              Table::num(static_cast<long long>(stats.max_blocks_in_use)),
              Table::num(pool_util(stats), 3),
              Table::num(stats.max_fragmentation, 3)});
    }
    t3.print(std::cout);
    bench::maybe_write_csv(opt, t3, "serve_shards");
  }

  std::cout << "\nReading guide: sweep 1 shows continuous batching scaling "
               "aggregate decode tokens/s with batch size on one set of "
               "weights; sweep 2 holds KV memory fixed and shows a reduced "
               "cache ratio converting freed memory into batch size and "
               "throughput — the measured form of Table 1's bigger-batch "
               "row. With --shards, sweep 3 spreads the paged sequences "
               "over more pool shards; pool_util is peak used blocks over "
               "capacity and frag is the worst-step share of block-resident "
               "token slots holding no live token.\n";
  return 0;
}
