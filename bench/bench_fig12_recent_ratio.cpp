// Figure 12 (appendix A.4) — sensitivity to the recent-window ratio w at a
// fixed 70% KV cache: the paper finds 20-30% works best across models.
#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);

  Table t(
      "Fig 12: ROUGE-2 fidelity vs recent-window ratio w at 70% KV cache "
      "(Keyformer)");
  {
    std::vector<std::string> hdr{"model"};
    for (int w = 10; w <= 90; w += 10) hdr.push_back(std::to_string(w) + "%");
    t.header(hdr);
  }

  for (const model::ModelConfig& cfg : bench::bench_models()) {
    model::Transformer m(cfg);
    const auto samples = bench::summarization_set(opt);
    eval::EvalConfig ec;
    ec.max_new_tokens = opt.gen_tokens;
    auto full = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
    const auto outputs = eval::generate_outputs(m, samples, *full, ec);

    std::vector<std::string> row{cfg.name};
    for (int w = 10; w <= 90; w += 10) {
      auto policy = bench::make_policy(kv::PolicyKind::kKeyformer, opt.seed);
      eval::EvalConfig rc = ec;
      rc.cache_ratio = 0.7;
      rc.recent_ratio = w / 100.0;
      const auto res =
          eval::evaluate_policy_on_task(m, samples, *policy, rc, &outputs);
      row.push_back(Table::num(res.fid_rouge2, 3));
    }
    t.row(row);
  }
  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "fig12_recent_ratio");

  std::cout << "Paper shape check: quality peaks at moderate recent "
               "ratios (20-30% on two of three families) and both extremes "
               "(all-recency and no-recency) lose accuracy.\n";
  return 0;
}
