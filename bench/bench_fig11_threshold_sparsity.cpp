// Figure 11 (appendix A.3) — attention sparsity per layer as the
// threshold (fraction of the row maximum) sweeps 0%..5%, MPT-like model.
#include "bench_common.h"

using namespace kf;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  model::ModelConfig cfg = model::ModelConfig::mpt_like();
  model::Transformer m(cfg);
  const auto samples = bench::summarization_set(opt);

  const std::vector<double> thresholds{0.0,    0.0001, 0.0005, 0.001,
                                       0.005,  0.01,   0.03,   0.05};
  // sparsity[threshold][layer]
  std::vector<std::vector<double>> sparsity(
      thresholds.size(), std::vector<double>(cfg.n_layers, 0.0));
  std::vector<std::size_t> rows(cfg.n_layers, 0);

  m.set_observer([&](const model::AttentionObservation& obs) {
    const auto& attn = *obs.attn;
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      const std::size_t block = h * attn.n_q * attn.key_len;
      for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
        sparsity[ti][obs.layer] += eval::mean_causal_sparsity(
            {attn.probs.data() + block, attn.n_q * attn.key_len}, attn.n_q,
            attn.key_len, attn.key_len - attn.n_q, thresholds[ti]);
      }
      ++rows[obs.layer];
    }
  });
  auto full = bench::make_policy(kv::PolicyKind::kFull, opt.seed);
  eval::EvalConfig ec;
  ec.max_new_tokens = opt.gen_tokens / 2;
  (void)eval::generate_outputs(m, samples, *full, ec);
  m.set_observer({});

  Table t("Fig 11: attention sparsity (%) vs threshold (MPT-like)");
  {
    std::vector<std::string> hdr{"threshold"};
    for (std::size_t l = 0; l < cfg.n_layers; ++l) {
      hdr.push_back("layer" + std::to_string(l));
    }
    t.header(hdr);
  }
  for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
    std::vector<std::string> row{Table::num(100.0 * thresholds[ti], 2) + "%"};
    for (std::size_t l = 0; l < cfg.n_layers; ++l) {
      row.push_back(Table::num(100.0 * sparsity[ti][l] / rows[l], 1));
    }
    t.row(row);
  }
  t.print(std::cout);
  bench::maybe_write_csv(opt, t, "fig11_threshold_sparsity");

  std::cout << "Paper shape check: sparsity rises monotonically with the "
               "threshold, from ~50-60% toward 90%+ at 5% of the max.\n";
  return 0;
}
