#include "kvcache/kv_cache.h"

#include <gtest/gtest.h>

#include <vector>

namespace kf::kv {
namespace {

std::vector<float> row_of(std::size_t width, float value) {
  return std::vector<float>(width, value);
}

TEST(KvCache, StartsEmpty) {
  KvCache c(2, 4);
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.row_width(), 8u);
}

TEST(KvCache, RejectsZeroDims) {
  EXPECT_THROW(KvCache(0, 4), std::invalid_argument);
  EXPECT_THROW(KvCache(2, 0), std::invalid_argument);
}

TEST(KvCache, AppendAndRead) {
  KvCache c(2, 3);
  c.append(row_of(6, 1.0F), row_of(6, 2.0F), 0);
  c.append(row_of(6, 3.0F), row_of(6, 4.0F), 1);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.key(0)[0], 1.0F);
  EXPECT_EQ(c.value(1)[5], 4.0F);
  EXPECT_EQ(c.original_position(1), 1u);
}

TEST(KvCache, HeadSlices) {
  KvCache c(2, 2);
  std::vector<float> k{1, 2, 3, 4};
  std::vector<float> v{5, 6, 7, 8};
  c.append(k, v, 0);
  EXPECT_EQ(c.key_head(0, 0)[0], 1.0F);
  EXPECT_EQ(c.key_head(0, 1)[0], 3.0F);
  EXPECT_EQ(c.value_head(0, 1)[1], 8.0F);
}

TEST(KvCache, RejectsWrongRowWidth) {
  KvCache c(2, 3);
  EXPECT_THROW(c.append(row_of(5, 0.0F), row_of(6, 0.0F), 0),
               std::invalid_argument);
}

TEST(KvCache, RejectsNonIncreasingPositions) {
  KvCache c(1, 2);
  c.append(row_of(2, 0.0F), row_of(2, 0.0F), 5);
  EXPECT_THROW(c.append(row_of(2, 0.0F), row_of(2, 0.0F), 5),
               std::invalid_argument);
  EXPECT_THROW(c.append(row_of(2, 0.0F), row_of(2, 0.0F), 3),
               std::invalid_argument);
}

TEST(KvCache, ScoresTrackAppends) {
  KvCache c(2, 2);
  c.append(row_of(4, 0.0F), row_of(4, 0.0F), 0);
  c.append(row_of(4, 0.0F), row_of(4, 0.0F), 1);
  EXPECT_EQ(c.scores(0).size(), 2u);
  c.add_score(0, 1, 2.5);
  c.add_score(1, 1, 1.5);
  EXPECT_DOUBLE_EQ(c.scores(0)[1], 2.5);
  EXPECT_DOUBLE_EQ(c.total_score(1), 4.0);
  EXPECT_DOUBLE_EQ(c.total_score(0), 0.0);
}

TEST(KvCache, DampScoresScalesAllHeads) {
  KvCache c(2, 2);
  c.append(row_of(4, 0.0F), row_of(4, 0.0F), 0);
  c.add_score(0, 0, 4.0);
  c.add_score(1, 0, 2.0);
  c.damp_scores(0.5);
  EXPECT_DOUBLE_EQ(c.total_score(0), 3.0);
}

TEST(KvCache, CompactKeepsSelectedRows) {
  KvCache c(1, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    c.append(row_of(2, static_cast<float>(i)), row_of(2, 10.0F + i), i);
    c.add_score(0, i, static_cast<double>(i));
  }
  const std::vector<std::size_t> keep{0, 2, 4};
  c.compact(keep);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.key(0)[0], 0.0F);
  EXPECT_EQ(c.key(1)[0], 2.0F);
  EXPECT_EQ(c.key(2)[0], 4.0F);
  EXPECT_EQ(c.value(1)[0], 12.0F);
  EXPECT_EQ(c.original_position(2), 4u);
  EXPECT_DOUBLE_EQ(c.scores(0)[1], 2.0);
}

TEST(KvCache, CompactPreservesOrderInvariant) {
  KvCache c(1, 1);
  for (std::size_t i = 0; i < 8; ++i) {
    c.append(row_of(1, 0.0F), row_of(1, 0.0F), i * 3);
  }
  c.compact(std::vector<std::size_t>{1, 3, 6});
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_LT(c.original_position(i - 1), c.original_position(i));
  }
}

TEST(KvCache, CompactRejectsBadIndices) {
  KvCache c(1, 1);
  c.append(row_of(1, 0.0F), row_of(1, 0.0F), 0);
  EXPECT_THROW(c.compact(std::vector<std::size_t>{1}), std::out_of_range);
  c.append(row_of(1, 0.0F), row_of(1, 0.0F), 1);
  EXPECT_THROW(c.compact(std::vector<std::size_t>{1, 0}),
               std::invalid_argument);
  EXPECT_THROW(c.compact(std::vector<std::size_t>{0, 0}),
               std::invalid_argument);
}

TEST(KvCache, CompactToEmpty) {
  KvCache c(1, 1);
  c.append(row_of(1, 0.0F), row_of(1, 0.0F), 0);
  c.compact({});
  EXPECT_TRUE(c.empty());
}

TEST(KvCache, AppendAfterCompactKeepsPositionInvariant) {
  KvCache c(1, 1);
  for (std::size_t i = 0; i < 4; ++i) {
    c.append(row_of(1, 0.0F), row_of(1, 0.0F), i);
  }
  c.compact(std::vector<std::size_t>{0, 1});
  c.append(row_of(1, 9.0F), row_of(1, 9.0F), 10);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.original_position(2), 10u);
  // A position lower than the tail is rejected even after compaction.
  EXPECT_THROW(c.append(row_of(1, 0.0F), row_of(1, 0.0F), 2),
               std::invalid_argument);
}

TEST(KvCache, ClearResetsEverything) {
  KvCache c(2, 2);
  c.append(row_of(4, 1.0F), row_of(4, 1.0F), 0);
  c.add_score(0, 0, 1.0);
  c.clear();
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.scores(0).size(), 0u);
  // Usable again from position 0.
  c.append(row_of(4, 1.0F), row_of(4, 1.0F), 0);
  EXPECT_EQ(c.size(), 1u);
}

}  // namespace
}  // namespace kf::kv
