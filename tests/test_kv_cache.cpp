#include "kvcache/kv_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/rng.h"

namespace kf::kv {
namespace {

std::vector<float> row_of(std::size_t width, float value) {
  return std::vector<float>(width, value);
}

TEST(KvCache, StartsEmpty) {
  ContiguousKvCache c(2, 4);
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.row_width(), 8u);
}

TEST(KvCache, RejectsZeroDims) {
  EXPECT_THROW(ContiguousKvCache(0, 4), std::invalid_argument);
  EXPECT_THROW(ContiguousKvCache(2, 0), std::invalid_argument);
}

TEST(KvCache, AppendAndRead) {
  ContiguousKvCache c(2, 3);
  c.append(row_of(6, 1.0F), row_of(6, 2.0F), 0);
  c.append(row_of(6, 3.0F), row_of(6, 4.0F), 1);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.key_row(0)[0], 1.0F);
  EXPECT_EQ(c.value_row(1)[5], 4.0F);
  EXPECT_EQ(c.original_position(1), 1u);
}

TEST(KvCache, HeadSlices) {
  ContiguousKvCache c(2, 2);
  std::vector<float> k{1, 2, 3, 4};
  std::vector<float> v{5, 6, 7, 8};
  c.append(k, v, 0);
  EXPECT_EQ(c.key_head(0, 0)[0], 1.0F);
  EXPECT_EQ(c.key_head(0, 1)[0], 3.0F);
  EXPECT_EQ(c.value_head(0, 1)[1], 8.0F);
}

TEST(KvCache, RejectsWrongRowWidth) {
  ContiguousKvCache c(2, 3);
  EXPECT_THROW(c.append(row_of(5, 0.0F), row_of(6, 0.0F), 0),
               std::invalid_argument);
}

TEST(KvCache, RejectsNonIncreasingPositions) {
  ContiguousKvCache c(1, 2);
  c.append(row_of(2, 0.0F), row_of(2, 0.0F), 5);
  EXPECT_THROW(c.append(row_of(2, 0.0F), row_of(2, 0.0F), 5),
               std::invalid_argument);
  EXPECT_THROW(c.append(row_of(2, 0.0F), row_of(2, 0.0F), 3),
               std::invalid_argument);
}

TEST(KvCache, ScoresTrackAppends) {
  ContiguousKvCache c(2, 2);
  c.append(row_of(4, 0.0F), row_of(4, 0.0F), 0);
  c.append(row_of(4, 0.0F), row_of(4, 0.0F), 1);
  EXPECT_EQ(c.scores(0).size(), 2u);
  c.add_score(0, 1, 2.5);
  c.add_score(1, 1, 1.5);
  EXPECT_DOUBLE_EQ(c.scores(0)[1], 2.5);
  EXPECT_DOUBLE_EQ(c.total_score(1), 4.0);
  EXPECT_DOUBLE_EQ(c.total_score(0), 0.0);
}

TEST(KvCache, DampScoresScalesAllHeads) {
  ContiguousKvCache c(2, 2);
  c.append(row_of(4, 0.0F), row_of(4, 0.0F), 0);
  c.add_score(0, 0, 4.0);
  c.add_score(1, 0, 2.0);
  c.damp_scores(0.5);
  EXPECT_DOUBLE_EQ(c.total_score(0), 3.0);
}

TEST(KvCache, CompactKeepsSelectedRows) {
  ContiguousKvCache c(1, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    c.append(row_of(2, static_cast<float>(i)), row_of(2, 10.0F + i), i);
    c.add_score(0, i, static_cast<double>(i));
  }
  const std::vector<std::size_t> keep{0, 2, 4};
  c.compact(keep);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.key_row(0)[0], 0.0F);
  EXPECT_EQ(c.key_row(1)[0], 2.0F);
  EXPECT_EQ(c.key_row(2)[0], 4.0F);
  EXPECT_EQ(c.value_row(1)[0], 12.0F);
  EXPECT_EQ(c.original_position(2), 4u);
  EXPECT_DOUBLE_EQ(c.scores(0)[1], 2.0);
}

TEST(KvCache, CompactPreservesOrderInvariant) {
  ContiguousKvCache c(1, 1);
  for (std::size_t i = 0; i < 8; ++i) {
    c.append(row_of(1, 0.0F), row_of(1, 0.0F), i * 3);
  }
  c.compact(std::vector<std::size_t>{1, 3, 6});
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_LT(c.original_position(i - 1), c.original_position(i));
  }
}

TEST(KvCache, CompactRejectsBadIndices) {
  ContiguousKvCache c(1, 1);
  c.append(row_of(1, 0.0F), row_of(1, 0.0F), 0);
  EXPECT_THROW(c.compact(std::vector<std::size_t>{1}), std::out_of_range);
  c.append(row_of(1, 0.0F), row_of(1, 0.0F), 1);
  EXPECT_THROW(c.compact(std::vector<std::size_t>{1, 0}),
               std::invalid_argument);
  EXPECT_THROW(c.compact(std::vector<std::size_t>{0, 0}),
               std::invalid_argument);
}

TEST(KvCache, CompactToEmpty) {
  ContiguousKvCache c(1, 1);
  c.append(row_of(1, 0.0F), row_of(1, 0.0F), 0);
  c.compact({});
  EXPECT_TRUE(c.empty());
}

TEST(KvCache, AppendAfterCompactKeepsPositionInvariant) {
  ContiguousKvCache c(1, 1);
  for (std::size_t i = 0; i < 4; ++i) {
    c.append(row_of(1, 0.0F), row_of(1, 0.0F), i);
  }
  c.compact(std::vector<std::size_t>{0, 1});
  c.append(row_of(1, 9.0F), row_of(1, 9.0F), 10);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.original_position(2), 10u);
  // A position lower than the tail is rejected even after compaction.
  EXPECT_THROW(c.append(row_of(1, 0.0F), row_of(1, 0.0F), 2),
               std::invalid_argument);
}

TEST(KvCache, HeadSegmentsAreContiguous) {
  // keys_head(h) must expose the head's tokens as [size, d_head] row-major
  // contiguous memory, with token t at offset t * d_head — the layout the
  // fused decode kernel's matvec relies on.
  ContiguousKvCache c(2, 3);
  for (std::size_t t = 0; t < 5; ++t) {
    std::vector<float> k(6), v(6);
    for (std::size_t j = 0; j < 6; ++j) {
      k[j] = static_cast<float>(100 * t + j);
      v[j] = static_cast<float>(1000 * t + j);
    }
    c.append(k, v, t);
  }
  for (std::size_t h = 0; h < 2; ++h) {
    const auto seg_k = c.keys_head(h);
    const auto seg_v = c.values_head(h);
    ASSERT_EQ(seg_k.size(), 5u * 3u);
    ASSERT_EQ(seg_v.size(), 5u * 3u);
    for (std::size_t t = 0; t < 5; ++t) {
      const auto head_k = c.key_head(t, h);
      const auto head_v = c.value_head(t, h);
      // Same backing memory, at the expected offset.
      EXPECT_EQ(head_k.data(), seg_k.data() + t * 3);
      EXPECT_EQ(head_v.data(), seg_v.data() + t * 3);
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(head_k[j], static_cast<float>(100 * t + h * 3 + j));
        EXPECT_EQ(head_v[j], static_cast<float>(1000 * t + h * 3 + j));
      }
    }
  }
}

// Property-style check of the head-major layout invariants: a randomized
// append/compact/clear sequence must keep key_head/value_head/scores/
// original_position consistent with a simple token-major reference model.
TEST(KvCache, RandomizedOpsMatchReferenceModel) {
  struct RefToken {
    std::vector<float> k, v;
    std::size_t pos;
    std::vector<double> scores;  // per head
  };
  const std::size_t n_heads = 3, d_head = 4;
  const std::size_t width = n_heads * d_head;
  kf::Rng rng(20260731);

  ContiguousKvCache c(n_heads, d_head, /*capacity_hint=*/2);  // force regrowth
  std::vector<RefToken> ref;
  std::size_t next_pos = 0;

  const auto check = [&] {
    ASSERT_EQ(c.size(), ref.size());
    for (std::size_t t = 0; t < ref.size(); ++t) {
      EXPECT_EQ(c.original_position(t), ref[t].pos);
      for (std::size_t h = 0; h < n_heads; ++h) {
        const auto k = c.key_head(t, h);
        const auto v = c.value_head(t, h);
        for (std::size_t j = 0; j < d_head; ++j) {
          EXPECT_EQ(k[j], ref[t].k[h * d_head + j]);
          EXPECT_EQ(v[j], ref[t].v[h * d_head + j]);
        }
        EXPECT_DOUBLE_EQ(c.scores(h)[t], ref[t].scores[h]);
      }
    }
  };

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t op = rng.uniform_u64(10);
    if (op < 6 || ref.empty()) {  // append
      RefToken tok;
      tok.pos = next_pos;
      next_pos += 1 + rng.uniform_u64(3);
      tok.k.resize(width);
      tok.v.resize(width);
      for (auto& x : tok.k) x = static_cast<float>(rng.normal());
      for (auto& x : tok.v) x = static_cast<float>(rng.normal());
      tok.scores.assign(n_heads, 0.0);
      c.append(tok.k, tok.v, tok.pos);
      ref.push_back(std::move(tok));
    } else if (op < 7) {  // add_score on a random slot
      const std::size_t t = rng.uniform_u64(ref.size());
      const std::size_t h = rng.uniform_u64(n_heads);
      const double v = rng.normal();
      c.add_score(h, t, v);
      ref[t].scores[h] += v;
    } else if (op < 9) {  // compact to a random subset
      std::vector<std::size_t> keep;
      std::vector<RefToken> kept;
      for (std::size_t t = 0; t < ref.size(); ++t) {
        if (rng.uniform_u64(2) == 0) {
          keep.push_back(t);
          kept.push_back(ref[t]);
        }
      }
      c.compact(keep);
      ref = std::move(kept);
    } else {  // clear
      c.clear();
      ref.clear();
      // Positions may restart after clear.
      next_pos = 0;
    }
    check();
  }
}

TEST(KvCache, GrowthIsGeometricAndHintedCachesNeverReallocate) {
  // Cold cache: N appends must cost O(log N) full-segment reallocations,
  // not O(N) — the repeated-copy trap during prefill.
  ContiguousKvCache cold(2, 4);
  std::vector<float> row(cold.row_width(), 1.0F);
  for (std::size_t t = 0; t < 1000; ++t) cold.append(row, row, t);
  EXPECT_LE(cold.reallocations(), 10u);  // ceil(log2(1000/16)) = 6ish
  EXPECT_GE(cold.capacity(), 1000u);

  // A capacity_hint covering the whole append stream (the engine derives
  // it from the admission cost max(prompt, k+1)) pays zero reallocations.
  ContiguousKvCache hinted(2, 4, /*capacity_hint=*/1000);
  for (std::size_t t = 0; t < 1000; ++t) hinted.append(row, row, t);
  EXPECT_EQ(hinted.reallocations(), 0u);
}

TEST(KvCache, ArenasAndHeadSegmentsAre64ByteAligned) {
  // The contiguous arenas allocate at kSimdAlign and capacity is rounded
  // so every head's segment base lands on an alignment boundary — across
  // geometric regrowth and for d_head values that do not divide the
  // alignment width.
  for (const std::size_t d_head : {3UL, 4UL, 16UL, 20UL}) {
    ContiguousKvCache c(3, d_head, /*capacity_hint=*/2);
    std::vector<float> row(c.row_width(), 1.0F);
    for (std::size_t t = 0; t < 200; ++t) {
      c.append(row, row, t);
      for (std::size_t h = 0; h < c.n_heads(); ++h) {
        ASSERT_TRUE(is_simd_aligned(c.keys_head(h).data()))
            << "d_head " << d_head << " head " << h << " after " << t;
        ASSERT_TRUE(is_simd_aligned(c.values_head(h).data()));
      }
    }
  }
}

TEST(KvCache, ClearResetsEverything) {
  ContiguousKvCache c(2, 2);
  c.append(row_of(4, 1.0F), row_of(4, 1.0F), 0);
  c.add_score(0, 0, 1.0);
  c.clear();
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.scores(0).size(), 0u);
  // Usable again from position 0.
  c.append(row_of(4, 1.0F), row_of(4, 1.0F), 0);
  EXPECT_EQ(c.size(), 1u);
}

}  // namespace
}  // namespace kf::kv
