#include "eval/heatmap.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "kvcache/policy_factory.h"
#include "model/generator.h"

namespace kf::eval {
namespace {

model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.max_seq_len = 256;
  return cfg;
}

TEST(Heatmap, RecordsDecodeRowsOnly) {
  model::Transformer m(tiny_config());
  HeatmapRecorder rec(2, 2, 8);
  rec.set_sequence_length(40);
  m.set_observer([&](const model::AttentionObservation& obs) {
    rec.record(obs);
  });
  auto policy = kf::kv::make_policy(kf::kv::PolicyKind::kFull);
  model::GenerationConfig gcfg;
  gcfg.max_new_tokens = 6;
  std::vector<model::Token> prompt(20);
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    prompt[i] = static_cast<model::Token>(i % 60);
  }
  model::generate(m, prompt, *policy, gcfg);

  // Some attention mass must have been recorded for every (layer, head).
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t h = 0; h < 2; ++h) {
      double total = 0.0;
      for (std::size_t b = 0; b < 8; ++b) total += rec.bucket_mass(l, h, b);
      EXPECT_GT(total, 0.5) << "layer " << l << " head " << h;
      EXPECT_LE(total, 1.5);
    }
  }
}

TEST(Heatmap, CsvHasOneRowPerLayerHead) {
  HeatmapRecorder rec(3, 4, 5);
  const std::string csv = rec.to_csv();
  std::size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1u + 3u * 4u);
}

TEST(Heatmap, AsciiArtHasBucketWidth) {
  HeatmapRecorder rec(1, 1, 16);
  EXPECT_EQ(rec.ascii_art(0, 0).size(), 16u);
}

TEST(Heatmap, ResetClears) {
  model::Transformer m(tiny_config());
  HeatmapRecorder rec(2, 2, 4);
  rec.set_sequence_length(30);
  m.set_observer([&](const model::AttentionObservation& obs) {
    rec.record(obs);
  });
  auto policy = kf::kv::make_policy(kf::kv::PolicyKind::kFull);
  model::GenerationConfig gcfg;
  gcfg.max_new_tokens = 4;
  std::vector<model::Token> prompt(10, 5);
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    prompt[i] = static_cast<model::Token>(4 + i);
  }
  model::generate(m, prompt, *policy, gcfg);
  rec.reset();
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(rec.bucket_mass(0, 0, b), 0.0);
  }
}

}  // namespace
}  // namespace kf::eval
