// Engine-level observability: per-request timelines on Response, the
// engine's latency histograms, the metrics registry counters, and span
// tracing across a real run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "serve/engine.h"

namespace kf::serve {
namespace {

using model::ModelConfig;
using model::Token;
using model::Transformer;
using obs::TimelineEventKind;

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.max_seq_len = 512;
  return cfg;
}

std::vector<Token> make_prompt(std::size_t n, std::uint64_t seed = 0) {
  std::vector<Token> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<Token>((i * 11 + 3 + seed * 7) % 64);
  }
  return p;
}

std::vector<Request> make_requests(std::size_t n, std::size_t prompt_len,
                                   std::size_t gen_tokens) {
  std::vector<Request> reqs(n);
  for (std::size_t i = 0; i < n; ++i) {
    reqs[i].id = i;
    reqs[i].arrival_step = i;  // staggered so queue waits are non-trivial
    reqs[i].prompt = make_prompt(prompt_len, i);
    reqs[i].gen.max_new_tokens = gen_tokens;
    reqs[i].gen.cache_ratio = 0.5;
  }
  return reqs;
}

TEST(ServeTimeline, ResponsesCarryCompleteTimelines) {
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  EngineConfig ec;
  ec.scheduler.max_batch_size = 2;
  Engine engine(m, ec);

  const auto responses = engine.run(make_requests(4, 24, 8));
  ASSERT_EQ(responses.size(), 4u);
  for (const Response& r : responses) {
    ASSERT_EQ(r.finish, FinishReason::kLength) << "request " << r.id;
    EXPECT_TRUE(r.timeline.has(TimelineEventKind::kQueued));
    EXPECT_TRUE(r.timeline.has(TimelineEventKind::kAdmitted));
    EXPECT_TRUE(r.timeline.has(TimelineEventKind::kPrefillStart));
    EXPECT_TRUE(r.timeline.has(TimelineEventKind::kPrefillEnd));
    EXPECT_TRUE(r.timeline.has(TimelineEventKind::kFirstToken));
    EXPECT_TRUE(r.timeline.has(TimelineEventKind::kFinished));
    // Stamps are monotone along the lifecycle.
    EXPECT_LE(*r.timeline.first(TimelineEventKind::kQueued),
              *r.timeline.first(TimelineEventKind::kAdmitted));
    EXPECT_LE(*r.timeline.first(TimelineEventKind::kAdmitted),
              *r.timeline.first(TimelineEventKind::kPrefillStart));
    EXPECT_LE(*r.timeline.first(TimelineEventKind::kPrefillStart),
              *r.timeline.first(TimelineEventKind::kFirstToken));
    EXPECT_LE(*r.timeline.first(TimelineEventKind::kFirstToken),
              *r.timeline.first(TimelineEventKind::kFinished));
    // The distilled figures ride along and agree with the timeline.
    EXPECT_GT(r.ttft_seconds, 0.0);
    EXPECT_DOUBLE_EQ(r.ttft_seconds, r.timeline.ttft_seconds());
    EXPECT_GE(r.queue_wait_seconds, 0.0);
    // 8 generated tokens -> 7 inter-token gaps.
    EXPECT_EQ(r.inter_token.count, r.tokens.size() - 1);
    EXPECT_GE(r.inter_token.min, 0.0);
  }
}

TEST(ServeTimeline, EngineHistogramsMatchWorkload) {
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  EngineConfig ec;
  ec.scheduler.max_batch_size = 4;
  Engine engine(m, ec);

  const auto responses = engine.run(make_requests(4, 24, 8));
  const EngineStats st = engine.stats();
  // One TTFT and one queue-wait sample per completed request; one step
  // sample per decode step; inter-token gaps sum over requests.
  EXPECT_EQ(st.ttft.count, 4u);
  EXPECT_EQ(st.queue_wait.count, 4u);
  EXPECT_EQ(st.step_latency.count, st.steps);
  std::size_t gaps = 0;
  for (const Response& r : responses) gaps += r.inter_token.count;
  EXPECT_EQ(st.inter_token.count, gaps);
  EXPECT_GT(st.ttft.p99, 0.0);
  EXPECT_LE(st.ttft.p50, st.ttft.p99);
  EXPECT_GT(st.step_latency.max, 0.0);

  // The same distributions are reachable through the registry by name.
  const obs::Percentiles reg_ttft =
      engine.metrics().histogram("serve.ttft_seconds").snapshot();
  EXPECT_EQ(reg_ttft.count, st.ttft.count);
  EXPECT_DOUBLE_EQ(reg_ttft.p99, st.ttft.p99);
}

TEST(ServeTimeline, SchedulerCountersInRegistry) {
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  EngineConfig ec;
  ec.scheduler.max_batch_size = 2;
  Engine engine(m, ec);
  engine.run(make_requests(5, 16, 4));
  EXPECT_EQ(engine.metrics().counter("sched.admitted").value(), 5u);
  EXPECT_EQ(engine.metrics().counter("sched.rejected").value(), 0u);
}

TEST(ServeTimeline, PoolCountersUnderPagedMemory) {
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  EngineConfig ec;
  ec.scheduler.max_batch_size = 2;
  ec.scheduler.max_concurrent_tokens = 256;
  ec.paged.enabled = true;
  ec.paged.n_shards = 2;
  ec.paged.block_tokens = 8;
  Engine engine(m, ec);
  engine.run(make_requests(4, 24, 8));
  EXPECT_GT(engine.metrics().counter("pool.allocs").value(), 0u);
  EXPECT_GT(engine.metrics().counter("pool.reserves").value(), 0u);
  EXPECT_EQ(engine.metrics().counter("pool.emergency_blocks").value(), 0u);
}

TEST(ServeTimeline, TraceSpansCoverARun) {
  obs::set_trace_enabled(false);
  obs::trace_reset();

  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  EngineConfig ec;
  ec.scheduler.max_batch_size = 2;
  Engine engine(m, ec);

  obs::set_trace_enabled(true);
  engine.run(make_requests(3, 16, 4));
  obs::set_trace_enabled(false);
  EXPECT_GT(obs::trace_event_count(), 0u);

  const std::string path = testing::TempDir() + "kf_engine_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  for (const char* span : {"\"engine.run\"", "\"prefill\"", "\"step_batch\"",
                           "\"sample\"", "\"attn.project\"",
                           "\"attn.attend\"", "\"retire\""}) {
    EXPECT_NE(json.find(span), std::string::npos) << span;
  }
  std::remove(path.c_str());
  obs::trace_reset();
}

TEST(ServeTimeline, TracingDisabledAddsNoSpans) {
  obs::set_trace_enabled(false);
  obs::trace_reset();
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  EngineConfig ec;
  Engine engine(m, ec);
  engine.run(make_requests(2, 16, 4));
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

}  // namespace
}  // namespace kf::serve
