// Engine-level observability: per-request timelines on Response, the
// engine's latency histograms, the metrics registry counters, and span
// tracing across a real run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <atomic>

#include "mem/block_pool.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "serve/engine.h"

namespace kf::serve {
namespace {

using model::ModelConfig;
using model::Token;
using model::Transformer;
using obs::TimelineEventKind;

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.max_seq_len = 512;
  return cfg;
}

std::vector<Token> make_prompt(std::size_t n, std::uint64_t seed = 0) {
  std::vector<Token> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<Token>((i * 11 + 3 + seed * 7) % 64);
  }
  return p;
}

std::vector<Request> make_requests(std::size_t n, std::size_t prompt_len,
                                   std::size_t gen_tokens) {
  std::vector<Request> reqs(n);
  for (std::size_t i = 0; i < n; ++i) {
    reqs[i].id = i;
    reqs[i].arrival_step = i;  // staggered so queue waits are non-trivial
    reqs[i].prompt = make_prompt(prompt_len, i);
    reqs[i].gen.max_new_tokens = gen_tokens;
    reqs[i].gen.cache_ratio = 0.5;
  }
  return reqs;
}

TEST(ServeTimeline, ResponsesCarryCompleteTimelines) {
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  EngineConfig ec;
  ec.scheduler.max_batch_size = 2;
  Engine engine(m, ec);

  const auto responses = engine.run(make_requests(4, 24, 8));
  ASSERT_EQ(responses.size(), 4u);
  for (const Response& r : responses) {
    ASSERT_EQ(r.finish, FinishReason::kLength) << "request " << r.id;
    EXPECT_TRUE(r.timeline.has(TimelineEventKind::kQueued));
    EXPECT_TRUE(r.timeline.has(TimelineEventKind::kAdmitted));
    EXPECT_TRUE(r.timeline.has(TimelineEventKind::kPrefillStart));
    EXPECT_TRUE(r.timeline.has(TimelineEventKind::kPrefillEnd));
    EXPECT_TRUE(r.timeline.has(TimelineEventKind::kFirstToken));
    EXPECT_TRUE(r.timeline.has(TimelineEventKind::kFinished));
    // Stamps are monotone along the lifecycle.
    EXPECT_LE(*r.timeline.first(TimelineEventKind::kQueued),
              *r.timeline.first(TimelineEventKind::kAdmitted));
    EXPECT_LE(*r.timeline.first(TimelineEventKind::kAdmitted),
              *r.timeline.first(TimelineEventKind::kPrefillStart));
    EXPECT_LE(*r.timeline.first(TimelineEventKind::kPrefillStart),
              *r.timeline.first(TimelineEventKind::kFirstToken));
    EXPECT_LE(*r.timeline.first(TimelineEventKind::kFirstToken),
              *r.timeline.first(TimelineEventKind::kFinished));
    // The distilled figures ride along and agree with the timeline.
    EXPECT_GT(r.ttft_seconds, 0.0);
    EXPECT_DOUBLE_EQ(r.ttft_seconds, r.timeline.ttft_seconds());
    EXPECT_GE(r.queue_wait_seconds, 0.0);
    // 8 generated tokens -> 7 inter-token gaps.
    EXPECT_EQ(r.inter_token.count, r.tokens.size() - 1);
    EXPECT_GE(r.inter_token.min, 0.0);
  }
}

TEST(ServeTimeline, EngineHistogramsMatchWorkload) {
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  EngineConfig ec;
  ec.scheduler.max_batch_size = 4;
  Engine engine(m, ec);

  const auto responses = engine.run(make_requests(4, 24, 8));
  const EngineStats st = engine.stats();
  // One TTFT and one queue-wait sample per completed request; one step
  // sample per decode step; inter-token gaps sum over requests.
  EXPECT_EQ(st.ttft.count, 4u);
  EXPECT_EQ(st.queue_wait.count, 4u);
  EXPECT_EQ(st.step_latency.count, st.steps);
  std::size_t gaps = 0;
  for (const Response& r : responses) gaps += r.inter_token.count;
  EXPECT_EQ(st.inter_token.count, gaps);
  EXPECT_GT(st.ttft.p99, 0.0);
  EXPECT_LE(st.ttft.p50, st.ttft.p99);
  EXPECT_GT(st.step_latency.max, 0.0);

  // The same distributions are reachable through the registry by name.
  const obs::Percentiles reg_ttft =
      engine.metrics().histogram("serve.ttft_seconds").snapshot();
  EXPECT_EQ(reg_ttft.count, st.ttft.count);
  EXPECT_DOUBLE_EQ(reg_ttft.p99, st.ttft.p99);
}

TEST(ServeTimeline, SchedulerCountersInRegistry) {
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  EngineConfig ec;
  ec.scheduler.max_batch_size = 2;
  Engine engine(m, ec);
  engine.run(make_requests(5, 16, 4));
  EXPECT_EQ(engine.metrics().counter("sched.admitted").value(), 5u);
  EXPECT_EQ(engine.metrics().counter("sched.rejected").value(), 0u);
}

TEST(ServeTimeline, PoolCountersUnderPagedMemory) {
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  EngineConfig ec;
  ec.scheduler.max_batch_size = 2;
  ec.scheduler.max_concurrent_tokens = 256;
  ec.paged.enabled = true;
  ec.paged.n_shards = 2;
  ec.paged.block_tokens = 8;
  Engine engine(m, ec);
  engine.run(make_requests(4, 24, 8));
  EXPECT_GT(engine.metrics().counter("pool.allocs").value(), 0u);
  EXPECT_GT(engine.metrics().counter("pool.reserves").value(), 0u);
  EXPECT_EQ(engine.metrics().counter("pool.emergency_blocks").value(), 0u);
}

TEST(ServeTimeline, TraceSpansCoverARun) {
  obs::set_trace_enabled(false);
  obs::trace_reset();

  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  EngineConfig ec;
  ec.scheduler.max_batch_size = 2;
  Engine engine(m, ec);

  obs::set_trace_enabled(true);
  engine.run(make_requests(3, 16, 4));
  obs::set_trace_enabled(false);
  EXPECT_GT(obs::trace_event_count(), 0u);

  const std::string path = testing::TempDir() + "kf_engine_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  for (const char* span : {"\"engine.run\"", "\"prefill\"", "\"step_batch\"",
                           "\"sample\"", "\"attn.project\"",
                           "\"attn.attend\"", "\"retire\""}) {
    EXPECT_NE(json.find(span), std::string::npos) << span;
  }
  std::remove(path.c_str());
  obs::trace_reset();
}

// ---------------------------------------------------------------------------
// Edge interleavings: lifecycle stamps under preemption, rejection, and
// degenerate workloads.

TEST(ServeTimeline, PreemptThenTimeoutKeepsOrderedStamps) {
  // A victim parked under queue pressure whose deadline expires before it
  // can resume: the timeline must show kPreempted then kFinished (no
  // kResumed), and the distilled TTFT from its pre-park tokens survives.
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  std::vector<Request> requests(2);
  requests[0].prompt = make_prompt(32, 0);
  requests[0].gen.max_new_tokens = 16;
  requests[0].gen.cache_ratio = 0.5;
  requests[0].deadline_steps = 10;  // expires while parked
  requests[1].prompt = make_prompt(32, 1);
  requests[1].gen.max_new_tokens = 8;
  // Full attention: once admitted, request 1 occupies the whole pool
  // (32 + 8 tokens = 10 blocks), so the parked victim cannot resume
  // before its deadline — the interleaving under test.
  requests[1].gen.cache_ratio = 1.0;
  requests[1].arrival_step = 4;  // starved behind request 0

  EngineConfig ec;
  ec.paged.enabled = true;
  ec.paged.n_shards = 1;
  ec.paged.block_tokens = 8;
  ec.paged.blocks_per_shard = 10;  // one 32-token prompt fits, not two
  // Pressure window 3: request 1 (queued at 4) parks request 0 at step 7;
  // the parked victim's own counter-pressure would fire at step 10, but
  // the engine sheds deadlines first each step — so request 0 leaves as a
  // timeout while still parked, never resuming.
  ec.preempt.queue_pressure_steps = 3;
  ec.preempt.min_victim_age_steps = 2;
  Engine engine(m, ec);

  const auto responses = engine.run(requests);
  ASSERT_EQ(responses.size(), 2u);
  const Response& victim = responses[0];
  EXPECT_GE(engine.stats().preemptions, 1u);
  ASSERT_EQ(victim.finish, FinishReason::kTimeout);
  EXPECT_TRUE(victim.timeline.has(TimelineEventKind::kPreempted));
  EXPECT_FALSE(victim.timeline.has(TimelineEventKind::kResumed));
  EXPECT_TRUE(victim.timeline.has(TimelineEventKind::kFinished));
  EXPECT_LE(*victim.timeline.first(TimelineEventKind::kPreempted),
            *victim.timeline.first(TimelineEventKind::kFinished));
  // It decoded before parking, so first-token latency is real.
  EXPECT_TRUE(victim.timeline.has(TimelineEventKind::kFirstToken));
  EXPECT_GT(victim.ttft_seconds, 0.0);
  // The survivor is untouched by its neighbor's deadline.
  EXPECT_EQ(responses[1].finish, FinishReason::kLength);
  EXPECT_EQ(responses[1].tokens.size(), 8u);
}

/// Fault injector that lets the first `allow` block allocations succeed
/// and vetoes every one after — deterministic mid-decode exhaustion.
class FailAllocationsAfter final : public mem::FaultInjector {
 public:
  explicit FailAllocationsAfter(std::size_t allow) : allow_(allow) {}
  bool should_fail(mem::FaultOp op, std::size_t /*shard*/) override {
    if (op != mem::FaultOp::kAllocate) return false;
    return calls_.fetch_add(1, std::memory_order_relaxed) >= allow_;
  }

 private:
  const std::size_t allow_;
  std::atomic<std::size_t> calls_{0};
};

TEST(ServeTimeline, ResumeThenRejectAfterPreemptionBudget) {
  // Permanent allocation failure forces a park; the resume attempt fails
  // the same way, and once the per-sequence preemption budget is spent
  // the engine must contain the sequence as kRejected — with the full
  // park/resume history on its timeline — instead of parking it forever.
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  std::vector<Request> requests(1);
  requests[0].prompt = make_prompt(16, 0);
  requests[0].gen.max_new_tokens = 24;
  requests[0].gen.cache_ratio = 1.0;

  EngineConfig ec;
  ec.paged.enabled = true;
  ec.paged.n_shards = 1;
  ec.paged.block_tokens = 8;
  ec.preempt.max_per_sequence = 2;
  Engine engine(m, ec);
  // Admission + prefill of a 16-token prompt needs 2 blocks x 2 layers;
  // allow those plus a few decode appends, then fail everything.
  FailAllocationsAfter injector(/*allow=*/6);
  engine.set_fault_injector(&injector);

  const auto responses = engine.run(requests);
  engine.set_fault_injector(nullptr);
  ASSERT_EQ(responses.size(), 1u);
  const Response& r = responses[0];
  ASSERT_EQ(r.finish, FinishReason::kRejected);
  EXPECT_GE(engine.stats().preemptions, 1u);
  EXPECT_GE(engine.stats().alloc_failures, 1u);
  EXPECT_TRUE(r.timeline.has(TimelineEventKind::kPreempted));
  EXPECT_TRUE(r.timeline.has(TimelineEventKind::kResumed));
  EXPECT_TRUE(r.timeline.has(TimelineEventKind::kFinished));
  EXPECT_LE(*r.timeline.first(TimelineEventKind::kPreempted),
            *r.timeline.first(TimelineEventKind::kResumed));
  // Containment released every block: nothing may leak past the run.
  ASSERT_NE(engine.pool(), nullptr);
  EXPECT_EQ(engine.pool()->stats().used_blocks, 0u);
}

TEST(ServeTimeline, ZeroGeneratedTokensHasNoFirstTokenStamp) {
  // max_new_tokens == 0 finishes kLength after prefill without entering
  // decode: TTFT must be *absent* (no kFirstToken stamp, no TTFT
  // histogram sample) — not reported as a bogus 0.
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  Engine engine(m, EngineConfig{});
  std::vector<Request> requests(1);
  requests[0].prompt = make_prompt(16, 0);
  requests[0].gen.max_new_tokens = 0;

  const auto responses = engine.run(requests);
  ASSERT_EQ(responses.size(), 1u);
  const Response& r = responses[0];
  EXPECT_EQ(r.finish, FinishReason::kLength);
  EXPECT_TRUE(r.tokens.empty());
  EXPECT_TRUE(r.timeline.has(TimelineEventKind::kPrefillEnd));
  EXPECT_TRUE(r.timeline.has(TimelineEventKind::kFinished));
  EXPECT_FALSE(r.timeline.has(TimelineEventKind::kFirstToken));
  EXPECT_EQ(r.ttft_seconds, 0.0);
  EXPECT_EQ(r.timeline.ttft_seconds(), 0.0);
  EXPECT_EQ(r.inter_token.count, 0u);
  EXPECT_EQ(engine.stats().ttft.count, 0u);
  EXPECT_EQ(engine.metrics().histogram("serve.ttft_seconds").count(), 0u);
}

// ---------------------------------------------------------------------------
// Eviction introspection on responses.

TEST(ServeTimeline, EvictionSummaryIsBatchingInvariant) {
  // Decode is bit-exact regardless of batch composition, so a request's
  // eviction digest must be identical whether it ran solo or batched —
  // the serving-side fig-3 distribution is a property of the request, not
  // the schedule.
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  Request probe;
  probe.id = 0;
  probe.prompt = make_prompt(48, 0);
  probe.gen.max_new_tokens = 16;
  probe.gen.cache_ratio = 0.5;

  EngineConfig ec;
  ec.scheduler.max_batch_size = 3;
  Engine solo_engine(m, ec);
  const auto solo = solo_engine.run({&probe, 1});
  ASSERT_EQ(solo.size(), 1u);

  std::vector<Request> batch = make_requests(3, 48, 16);
  batch[0] = probe;
  Engine batch_engine(m, ec);
  const auto batched = batch_engine.run(batch);
  ASSERT_EQ(batched.size(), 3u);

  const kv::EvictionSummary& a = solo[0].eviction;
  const kv::EvictionSummary& b = batched[0].eviction;
  EXPECT_GT(a.decisions, 0u);
  EXPECT_GT(a.tokens_evicted, 0u);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.tokens_evicted, b.tokens_evicted);
  EXPECT_EQ(a.tokens_kept, b.tokens_kept);
  EXPECT_EQ(a.position_counts, b.position_counts);
  // Token streams are bit-exact across batch compositions; accumulated
  // scores see last-digit float noise from batched kernel summation
  // order, so the score digests compare within a hair.
  EXPECT_NEAR(a.score_min, b.score_min, 1e-6);
  EXPECT_NEAR(a.score_max, b.score_max, 1e-6);
  EXPECT_NEAR(a.score_mean, b.score_mean, 1e-6);
  EXPECT_NEAR(a.score_p50, b.score_p50, 1e-6);

  // Qualitative fig-3 shape under Keyformer: the earliest span bucket
  // (initial "key" tokens) and the final bucket (the recent window)
  // survive eviction; the mid-span carries the bulk of the drops.
  constexpr std::size_t kB = kv::EvictionSummary::kPositionBuckets;
  std::uint64_t mid = 0;
  for (std::size_t i = kB / 4; i < (3 * kB) / 4; ++i) {
    mid += a.position_counts[i];
  }
  EXPECT_LT(a.position_counts[0], mid);
  EXPECT_LT(a.position_counts[kB - 1], mid);

  // The engine-lifetime aggregate saw exactly this sequence's activity.
  const kv::EvictionTelemetry report = solo_engine.eviction_report();
  EXPECT_EQ(report.decisions(), a.decisions);
  EXPECT_EQ(report.tokens_evicted(), a.tokens_evicted);
  EXPECT_EQ(report.n_layers(), cfg.n_layers);
  EXPECT_EQ(report.n_heads(), cfg.n_heads);
  const EngineStats st = solo_engine.stats();
  EXPECT_EQ(st.eviction_decisions, a.decisions);
  EXPECT_EQ(st.evicted_tokens, a.tokens_evicted);
  EXPECT_EQ(st.kept_tokens, a.tokens_kept);
  EXPECT_EQ(
      solo_engine.metrics().counter("evict.keyformer.decisions").value(),
      a.decisions);
}

TEST(ServeTimeline, TracingDisabledAddsNoSpans) {
  obs::set_trace_enabled(false);
  obs::trace_reset();
  ModelConfig cfg = tiny_config();
  Transformer m(cfg);
  EngineConfig ec;
  Engine engine(m, ec);
  engine.run(make_requests(2, 16, 4));
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

}  // namespace
}  // namespace kf::serve
