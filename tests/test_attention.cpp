#include "model/attention.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/rng.h"
#include "model/weights.h"

namespace kf::model {
namespace {

ModelConfig tiny_config(PositionalKind pos = PositionalKind::kRoPE) {
  ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.positional = pos;
  cfg.max_seq_len = 256;
  return cfg;
}

using kf::Rng;

Tensor random_rows(std::size_t n, std::size_t d, std::uint64_t seed) {
  Tensor x({n, d});
  Rng rng(seed);
  for (float& v : x.span()) v = static_cast<float>(rng.normal());
  return x;
}

std::vector<std::size_t> iota_positions(std::size_t n, std::size_t start = 0) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), start);
  return p;
}

class AttentionAllPositional
    : public ::testing::TestWithParam<PositionalKind> {};

TEST_P(AttentionAllPositional, ProbsRowsSumToOneAndCausal) {
  const ModelConfig cfg = tiny_config(GetParam());
  const ModelWeights w = build_weights(cfg);
  kv::KvCache cache(cfg.n_heads, cfg.d_head());
  const std::size_t n = 12;
  Tensor x = random_rows(n, cfg.d_model, 5);
  const auto positions = iota_positions(n);
  const AttentionResult r =
      attention_forward(cfg, w.layers[0], x, positions, cache);

  ASSERT_EQ(r.key_len, n);
  for (std::size_t h = 0; h < cfg.n_heads; ++h) {
    for (std::size_t q = 0; q < n; ++q) {
      const float* row = r.probs.data() + (h * n + q) * n;
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        sum += row[i];
        if (i > q) {
          EXPECT_EQ(row[i], 0.0F) << "causality violated at q=" << q;
        }
      }
      EXPECT_NEAR(sum, 1.0, 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, AttentionAllPositional,
                         ::testing::Values(PositionalKind::kRoPE,
                                           PositionalKind::kALiBi,
                                           PositionalKind::kLearned),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Attention, AppendsToCache) {
  const ModelConfig cfg = tiny_config();
  const ModelWeights w = build_weights(cfg);
  kv::KvCache cache(cfg.n_heads, cfg.d_head());
  Tensor x = random_rows(4, cfg.d_model, 6);
  attention_forward(cfg, w.layers[0], x, iota_positions(4), cache);
  EXPECT_EQ(cache.size(), 4u);
  Tensor y = random_rows(1, cfg.d_model, 7);
  attention_forward(cfg, w.layers[0], y, iota_positions(1, 4), cache);
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.original_position(4), 4u);
}

TEST(Attention, DecodeRowAttendsWholeCache) {
  const ModelConfig cfg = tiny_config();
  const ModelWeights w = build_weights(cfg);
  kv::KvCache cache(cfg.n_heads, cfg.d_head());
  Tensor x = random_rows(6, cfg.d_model, 8);
  attention_forward(cfg, w.layers[0], x, iota_positions(6), cache);
  Tensor q = random_rows(1, cfg.d_model, 9);
  const AttentionResult r =
      attention_forward(cfg, w.layers[0], q, iota_positions(1, 6), cache);
  EXPECT_EQ(r.key_len, 7u);
  const float* row = r.probs.data();  // head 0, query 0
  double sum = 0.0;
  for (std::size_t i = 0; i < 7; ++i) sum += row[i];
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(Attention, IdenticalTokensAttractContentAttention) {
  // A query identical to one cached token should put more mass there than
  // on unrelated tokens (content-head structure).
  const ModelConfig cfg = tiny_config(PositionalKind::kLearned);
  const ModelWeights w = build_weights(cfg);
  kv::KvCache cache(cfg.n_heads, cfg.d_head());
  Tensor x({3, cfg.d_model});
  Rng rng(10);
  for (float& v : x.span()) v = static_cast<float>(rng.normal());
  // Make row 2 equal to row 0.
  for (std::size_t j = 0; j < cfg.d_model; ++j) {
    x.at(2, j) = x.at(0, j);
  }
  const AttentionResult r =
      attention_forward(cfg, w.layers[0], x, iota_positions(3), cache);
  // Find the content head (head 0 at layer 0 for the cycle assignment).
  const float* row = r.probs.data() + (0 * 3 + 2) * 3;  // head 0, query 2
  EXPECT_GT(row[0], row[1]);
}

TEST(Attention, RopePositionModeChangesLogitsAfterCompaction) {
  const ModelConfig org = tiny_config(PositionalKind::kRoPE);
  ModelConfig newpos = org;
  newpos.position_mode = PositionMode::kNew;
  const ModelWeights w = build_weights(org);

  const auto run = [&](const ModelConfig& cfg) {
    kv::KvCache cache(cfg.n_heads, cfg.d_head());
    Tensor x = random_rows(8, cfg.d_model, 11);
    attention_forward(cfg, w.layers[0], x, iota_positions(8), cache);
    // Evict tokens 1..4 — kept tokens now have index != original position.
    cache.compact(std::vector<std::size_t>{0, 5, 6, 7});
    Tensor q = random_rows(1, cfg.d_model, 12);
    return attention_forward(cfg, w.layers[0], q, iota_positions(1, 8),
                             cache);
  };
  const AttentionResult a = run(org);
  const AttentionResult b = run(newpos);
  bool differs = false;
  for (std::size_t i = 0; i < a.logits.size() && !differs; ++i) {
    if (std::isfinite(a.logits.span()[i]) &&
        std::abs(a.logits.span()[i] - b.logits.span()[i]) > 1e-5F) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Attention, PositionModeIrrelevantBeforeEviction) {
  // With an uncompacted cache, index == original position, so both modes
  // must agree bit-for-bit.
  const ModelConfig org = tiny_config(PositionalKind::kALiBi);
  ModelConfig newpos = org;
  newpos.position_mode = PositionMode::kNew;
  const ModelWeights w = build_weights(org);
  const auto run = [&](const ModelConfig& cfg) {
    kv::KvCache cache(cfg.n_heads, cfg.d_head());
    Tensor x = random_rows(6, cfg.d_model, 13);
    return attention_forward(cfg, w.layers[0], x, iota_positions(6), cache);
  };
  const AttentionResult a = run(org);
  const AttentionResult b = run(newpos);
  for (std::size_t i = 0; i < a.probs.size(); ++i) {
    EXPECT_EQ(a.probs.span()[i], b.probs.span()[i]);
  }
}

TEST(Attention, AlibiBiasFavorsRecencyOnPositionalHead) {
  const ModelConfig cfg = tiny_config(PositionalKind::kALiBi);
  const ModelWeights w = build_weights(cfg);
  kv::KvCache cache(cfg.n_heads, cfg.d_head());
  // Identical token rows: content is symmetric, only ALiBi differentiates.
  Tensor x({24, cfg.d_model});
  Rng rng(14);
  std::vector<float> proto(cfg.d_model);
  for (auto& v : proto) v = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = 0; j < cfg.d_model; ++j) x.at(i, j) = proto[j];
  }
  const AttentionResult r =
      attention_forward(cfg, w.layers[0], x, iota_positions(24), cache);
  // Positional head = head 0 (steepest slope). Mass on the most recent
  // non-self key should exceed mass on the most distant key.
  const std::size_t q = 23;
  const float* row = r.probs.data() + (0 * 24 + q) * 24;
  EXPECT_GT(row[22], row[0]);
}

TEST(Attention, ContextShapeAndFiniteness) {
  const ModelConfig cfg = tiny_config();
  const ModelWeights w = build_weights(cfg);
  kv::KvCache cache(cfg.n_heads, cfg.d_head());
  Tensor x = random_rows(5, cfg.d_model, 15);
  const AttentionResult r =
      attention_forward(cfg, w.layers[0], x, iota_positions(5), cache);
  EXPECT_EQ(r.context.dim(0), 5u);
  EXPECT_EQ(r.context.dim(1), cfg.d_model);
  for (const float v : r.context.span()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace kf::model
