#include "model/attention.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/rng.h"
#include "model/positional.h"
#include "model/weights.h"

namespace kf::model {
namespace {

ModelConfig tiny_config(PositionalKind pos = PositionalKind::kRoPE) {
  ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.positional = pos;
  cfg.max_seq_len = 256;
  return cfg;
}

using kf::Rng;

Tensor random_rows(std::size_t n, std::size_t d, std::uint64_t seed) {
  Tensor x({n, d});
  Rng rng(seed);
  for (float& v : x.span()) v = static_cast<float>(rng.normal());
  return x;
}

std::vector<std::size_t> iota_positions(std::size_t n, std::size_t start = 0) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), start);
  return p;
}

class AttentionAllPositional
    : public ::testing::TestWithParam<PositionalKind> {};

TEST_P(AttentionAllPositional, ProbsRowsSumToOneAndCausal) {
  const ModelConfig cfg = tiny_config(GetParam());
  const ModelWeights w = build_weights(cfg);
  kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head());
  const std::size_t n = 12;
  Tensor x = random_rows(n, cfg.d_model, 5);
  const auto positions = iota_positions(n);
  const AttentionResult r =
      attention_forward(cfg, w.layers[0], x, positions, cache);

  ASSERT_EQ(r.key_len, n);
  for (std::size_t h = 0; h < cfg.n_heads; ++h) {
    for (std::size_t q = 0; q < n; ++q) {
      const float* row = r.probs.data() + (h * n + q) * n;
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        sum += row[i];
        if (i > q) {
          EXPECT_EQ(row[i], 0.0F) << "causality violated at q=" << q;
        }
      }
      EXPECT_NEAR(sum, 1.0, 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, AttentionAllPositional,
                         ::testing::Values(PositionalKind::kRoPE,
                                           PositionalKind::kALiBi,
                                           PositionalKind::kLearned),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Attention, AppendsToCache) {
  const ModelConfig cfg = tiny_config();
  const ModelWeights w = build_weights(cfg);
  kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head());
  Tensor x = random_rows(4, cfg.d_model, 6);
  attention_forward(cfg, w.layers[0], x, iota_positions(4), cache);
  EXPECT_EQ(cache.size(), 4u);
  Tensor y = random_rows(1, cfg.d_model, 7);
  attention_forward(cfg, w.layers[0], y, iota_positions(1, 4), cache);
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.original_position(4), 4u);
}

TEST(Attention, DecodeRowAttendsWholeCache) {
  const ModelConfig cfg = tiny_config();
  const ModelWeights w = build_weights(cfg);
  kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head());
  Tensor x = random_rows(6, cfg.d_model, 8);
  attention_forward(cfg, w.layers[0], x, iota_positions(6), cache);
  Tensor q = random_rows(1, cfg.d_model, 9);
  const AttentionResult r =
      attention_forward(cfg, w.layers[0], q, iota_positions(1, 6), cache);
  EXPECT_EQ(r.key_len, 7u);
  const float* row = r.probs.data();  // head 0, query 0
  double sum = 0.0;
  for (std::size_t i = 0; i < 7; ++i) sum += row[i];
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(Attention, IdenticalTokensAttractContentAttention) {
  // A query identical to one cached token should put more mass there than
  // on unrelated tokens (content-head structure).
  const ModelConfig cfg = tiny_config(PositionalKind::kLearned);
  const ModelWeights w = build_weights(cfg);
  kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head());
  Tensor x({3, cfg.d_model});
  Rng rng(10);
  for (float& v : x.span()) v = static_cast<float>(rng.normal());
  // Make row 2 equal to row 0.
  for (std::size_t j = 0; j < cfg.d_model; ++j) {
    x.at(2, j) = x.at(0, j);
  }
  const AttentionResult r =
      attention_forward(cfg, w.layers[0], x, iota_positions(3), cache);
  // Find the content head (head 0 at layer 0 for the cycle assignment).
  const float* row = r.probs.data() + (0 * 3 + 2) * 3;  // head 0, query 2
  EXPECT_GT(row[0], row[1]);
}

TEST(Attention, RopePositionModeChangesLogitsAfterCompaction) {
  const ModelConfig org = tiny_config(PositionalKind::kRoPE);
  ModelConfig newpos = org;
  newpos.position_mode = PositionMode::kNew;
  const ModelWeights w = build_weights(org);

  const auto run = [&](const ModelConfig& cfg) {
    kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head());
    Tensor x = random_rows(8, cfg.d_model, 11);
    attention_forward(cfg, w.layers[0], x, iota_positions(8), cache);
    // Evict tokens 1..4 — kept tokens now have index != original position.
    cache.compact(std::vector<std::size_t>{0, 5, 6, 7});
    Tensor q = random_rows(1, cfg.d_model, 12);
    return attention_forward(cfg, w.layers[0], q, iota_positions(1, 8),
                             cache);
  };
  const AttentionResult a = run(org);
  const AttentionResult b = run(newpos);
  bool differs = false;
  for (std::size_t i = 0; i < a.logits.size() && !differs; ++i) {
    if (std::isfinite(a.logits.span()[i]) &&
        std::abs(a.logits.span()[i] - b.logits.span()[i]) > 1e-5F) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Attention, PositionModeIrrelevantBeforeEviction) {
  // With an uncompacted cache, index == original position, so both modes
  // must agree bit-for-bit.
  const ModelConfig org = tiny_config(PositionalKind::kALiBi);
  ModelConfig newpos = org;
  newpos.position_mode = PositionMode::kNew;
  const ModelWeights w = build_weights(org);
  const auto run = [&](const ModelConfig& cfg) {
    kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head());
    Tensor x = random_rows(6, cfg.d_model, 13);
    return attention_forward(cfg, w.layers[0], x, iota_positions(6), cache);
  };
  const AttentionResult a = run(org);
  const AttentionResult b = run(newpos);
  for (std::size_t i = 0; i < a.probs.size(); ++i) {
    EXPECT_EQ(a.probs.span()[i], b.probs.span()[i]);
  }
}

TEST(Attention, AlibiBiasFavorsRecencyOnPositionalHead) {
  const ModelConfig cfg = tiny_config(PositionalKind::kALiBi);
  const ModelWeights w = build_weights(cfg);
  kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head());
  // Identical token rows: content is symmetric, only ALiBi differentiates.
  Tensor x({24, cfg.d_model});
  Rng rng(14);
  std::vector<float> proto(cfg.d_model);
  for (auto& v : proto) v = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = 0; j < cfg.d_model; ++j) x.at(i, j) = proto[j];
  }
  const AttentionResult r =
      attention_forward(cfg, w.layers[0], x, iota_positions(24), cache);
  // Positional head = head 0 (steepest slope). Mass on the most recent
  // non-self key should exceed mass on the most distant key.
  const std::size_t q = 23;
  const float* row = r.probs.data() + (0 * 24 + q) * 24;
  EXPECT_GT(row[22], row[0]);
}

// ---------------------------------------------------------------------------
// Decode fast-path parity: attention_decode must reproduce the general
// blocked path within float rounding for every positional family and both
// position modes, on compacted and uncompacted caches.
// ---------------------------------------------------------------------------

struct ParityCase {
  PositionalKind positional;
  PositionMode mode;
};

class DecodeParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(DecodeParity, FastPathMatchesGeneralPath) {
  ModelConfig cfg = tiny_config(GetParam().positional);
  cfg.position_mode = GetParam().mode;
  const ModelWeights w = build_weights(cfg);

  // Populate two independent caches with the same prefill + a compaction
  // that scatters slot indices away from original positions.
  const auto prefill_one = [&](kv::KvCache& cache) {
    Tensor x = random_rows(10, cfg.d_model, 21);
    attention_forward_general(cfg, w.layers[0], x, iota_positions(10), cache);
    cache.compact(std::vector<std::size_t>{0, 1, 5, 7, 8, 9});
  };
  kv::ContiguousKvCache cache_general(cfg.n_heads, cfg.d_head());
  kv::ContiguousKvCache cache_fast(cfg.n_heads, cfg.d_head());
  prefill_one(cache_general);
  prefill_one(cache_fast);

  // Several decode steps so the parity covers growing caches too.
  for (std::size_t step = 0; step < 3; ++step) {
    Tensor q = random_rows(1, cfg.d_model, 22 + step);
    const std::size_t pos = 10 + step;
    const AttentionResult general = attention_forward_general(
        cfg, w.layers[0], q, iota_positions(1, pos), cache_general);
    const AttentionResult fast =
        attention_decode(cfg, w.layers[0], q, pos, cache_fast);

    ASSERT_EQ(general.key_len, fast.key_len);
    for (std::size_t i = 0; i < general.logits.size(); ++i) {
      EXPECT_NEAR(general.logits.span()[i], fast.logits.span()[i], 1e-5F)
          << "logit " << i << " at step " << step;
    }
    for (std::size_t i = 0; i < general.probs.size(); ++i) {
      EXPECT_NEAR(general.probs.span()[i], fast.probs.span()[i], 1e-5F)
          << "prob " << i << " at step " << step;
    }
    for (std::size_t i = 0; i < general.context.size(); ++i) {
      EXPECT_NEAR(general.context.span()[i], fast.context.span()[i], 1e-5F)
          << "context " << i << " at step " << step;
    }
    // The two caches must also stay identical (same appended K/V rows).
    ASSERT_EQ(cache_general.size(), cache_fast.size());
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      const auto kg = cache_general.keys_head(h);
      const auto kff = cache_fast.keys_head(h);
      for (std::size_t i = 0; i < kg.size(); ++i) {
        EXPECT_NEAR(kg[i], kff[i], 1e-6F);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAndModes, DecodeParity,
    ::testing::Values(
        ParityCase{PositionalKind::kRoPE, PositionMode::kOriginal},
        ParityCase{PositionalKind::kRoPE, PositionMode::kNew},
        ParityCase{PositionalKind::kALiBi, PositionMode::kOriginal},
        ParityCase{PositionalKind::kALiBi, PositionMode::kNew},
        ParityCase{PositionalKind::kLearned, PositionMode::kOriginal}),
    [](const auto& info) {
      return to_string(info.param.positional) + "_" +
             to_string(info.param.mode);
    });

TEST(Attention, AppendTimeRotationMatchesPerStepRotation) {
  // The two RoPE storage contracts (keys pre-rotated at append vs raw keys
  // re-rotated every step) apply the identical rotation to the identical
  // floats, so their attention outputs must agree — on both the fused
  // decode path and the general path.
  ModelConfig pre = tiny_config(PositionalKind::kRoPE);
  ModelConfig raw = pre;
  raw.rope_append_time_rotation = false;
  const ModelWeights w = build_weights(pre);

  const auto run = [&](const ModelConfig& cfg, bool fast) {
    ModelConfig c = cfg;
    c.decode_fast_path = fast;
    kv::ContiguousKvCache cache(c.n_heads, c.d_head());
    Tensor x = random_rows(8, c.d_model, 51);
    attention_forward(c, w.layers[0], x, iota_positions(8), cache);
    cache.compact(std::vector<std::size_t>{0, 2, 3, 6, 7});
    Tensor q = random_rows(1, c.d_model, 52);
    return attention_forward(c, w.layers[0], q, iota_positions(1, 8), cache);
  };

  const AttentionResult a = run(pre, /*fast=*/true);
  for (const bool fast : {true, false}) {
    const AttentionResult b = run(raw, fast);
    ASSERT_EQ(a.key_len, b.key_len);
    for (std::size_t i = 0; i < a.logits.size(); ++i) {
      EXPECT_NEAR(a.logits.span()[i], b.logits.span()[i], 1e-5F);
    }
    for (std::size_t i = 0; i < a.context.size(); ++i) {
      EXPECT_NEAR(a.context.span()[i], b.context.span()[i], 1e-5F);
    }
  }
}

TEST(Attention, DispatchUsesFastPathResult) {
  // attention_forward on a single row must agree with attention_decode
  // exactly (it dispatches to it when decode_fast_path is on), and with
  // the general path when the flag is off.
  ModelConfig cfg = tiny_config(PositionalKind::kRoPE);
  const ModelWeights w = build_weights(cfg);
  kv::ContiguousKvCache a(cfg.n_heads, cfg.d_head());
  kv::ContiguousKvCache b(cfg.n_heads, cfg.d_head());
  Tensor x = random_rows(4, cfg.d_model, 31);
  attention_forward(cfg, w.layers[0], x, iota_positions(4), a);
  attention_forward(cfg, w.layers[0], x, iota_positions(4), b);

  Tensor q = random_rows(1, cfg.d_model, 32);
  const AttentionResult via_dispatch =
      attention_forward(cfg, w.layers[0], q, iota_positions(1, 4), a);
  const AttentionResult direct = attention_decode(cfg, w.layers[0], q, 4, b);
  for (std::size_t i = 0; i < via_dispatch.context.size(); ++i) {
    EXPECT_EQ(via_dispatch.context.span()[i], direct.context.span()[i]);
  }

  ModelConfig general_cfg = cfg;
  general_cfg.decode_fast_path = false;
  kv::ContiguousKvCache c(cfg.n_heads, cfg.d_head());
  attention_forward(general_cfg, w.layers[0], x, iota_positions(4), c);
  Tensor q2 = random_rows(1, cfg.d_model, 32);
  const AttentionResult via_general =
      attention_forward(general_cfg, w.layers[0], q2, iota_positions(1, 4), c);
  for (std::size_t i = 0; i < via_general.context.size(); ++i) {
    EXPECT_NEAR(via_general.context.span()[i], direct.context.span()[i],
                1e-5F);
  }
}

TEST(Attention, RopeKeysStoredPreRotatedUnderOriginalMode) {
  // Under RoPE + kOriginal the cache must hold *rotated* keys (append-time
  // rotation): reading a cached key head and comparing against manually
  // rotating the unrotated projection must match.
  ModelConfig cfg = tiny_config(PositionalKind::kRoPE);
  ASSERT_TRUE(keys_stored_rotated(cfg));
  ModelConfig newpos = cfg;
  newpos.position_mode = PositionMode::kNew;
  ASSERT_FALSE(keys_stored_rotated(newpos));
  const ModelWeights w = build_weights(cfg);

  Tensor x = random_rows(3, cfg.d_model, 41);
  kv::ContiguousKvCache rotated(cfg.n_heads, cfg.d_head());
  attention_forward(cfg, w.layers[0], x, iota_positions(3), rotated);
  kv::ContiguousKvCache raw(cfg.n_heads, cfg.d_head());
  attention_forward(newpos, w.layers[0], x, iota_positions(3), raw);

  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      std::vector<float> expect(raw.key_head(i, h).begin(),
                                raw.key_head(i, h).end());
      rope_rotate(expect, i, cfg.rope_base);
      const auto got = rotated.key_head(i, h);
      for (std::size_t j = 0; j < expect.size(); ++j) {
        EXPECT_NEAR(got[j], expect[j], 1e-6F);
      }
    }
  }
}

TEST(Attention, ContextShapeAndFiniteness) {
  const ModelConfig cfg = tiny_config();
  const ModelWeights w = build_weights(cfg);
  kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head());
  Tensor x = random_rows(5, cfg.d_model, 15);
  const AttentionResult r =
      attention_forward(cfg, w.layers[0], x, iota_positions(5), cache);
  EXPECT_EQ(r.context.dim(0), 5u);
  EXPECT_EQ(r.context.dim(1), cfg.d_model);
  for (const float v : r.context.span()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace kf::model
