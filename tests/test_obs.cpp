// Observability layer: histogram bucket math and edge cases, counter
// sharding under contention, percentile column schema, span tracing with
// Chrome-JSON output, and the per-request timeline derivations.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeline.h"
#include "obs/trace.h"

namespace kf::obs {
namespace {

// ---------------------------------------------------------------- histogram

TEST(Histogram, EmptyReportsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(0.99), 0.0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  const Percentiles p = h.snapshot();
  EXPECT_EQ(p.count, 0u);
  EXPECT_EQ(p.p99, 0.0);
}

TEST(Histogram, SingleSampleIsExactAtEveryPercentile) {
  Histogram h;
  const double v = 0.00317;  // 3.17 ms
  h.record(v);
  // Every percentile clamps the bucket upper bound to the recorded max,
  // so a one-sample histogram answers exactly.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), v);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), v);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), v);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), v);
  EXPECT_DOUBLE_EQ(h.min(), v);
  EXPECT_DOUBLE_EQ(h.max(), v);
}

TEST(Histogram, IdenticalSamplesStayInOneBucketAndExact) {
  Histogram h;
  const double v = 0.010;  // 10 ms
  for (int i = 0; i < 1000; ++i) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), v);
  EXPECT_DOUBLE_EQ(h.percentile(0.95), v);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), v);
  EXPECT_NEAR(h.sum(), 1000 * v, 1e-6);
}

TEST(Histogram, TopBucketSaturationStillReportsExactMax) {
  Histogram h;
  const double huge = 2.0e5;  // 200,000 s >> the ~2^42 ns top octave
  h.record(huge);
  h.record(3.0e5);
  // Both land in the saturated top bucket; the recorded max keeps the
  // answer exact instead of the bucket's astronomically large bound.
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 3.0e5);
  EXPECT_DOUBLE_EQ(h.max(), 3.0e5);
  EXPECT_DOUBLE_EQ(h.min(), huge);
}

TEST(Histogram, NegativeSamplesClampToZero) {
  Histogram h;
  h.record(-1.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, PinnedSyntheticLatencies) {
  // 1..100 ms, one sample each: nearest-rank p50 is the 50th sample
  // (50 ms), p95 the 95th, p99 the 99th — each reported within the
  // documented 12.5% bucket error, never below the true value.
  Histogram h;
  for (int ms = 1; ms <= 100; ++ms) h.record(ms * 1e-3);
  EXPECT_EQ(h.count(), 100u);
  const struct {
    double q;
    double true_value;
  } cases[] = {{0.50, 0.050}, {0.95, 0.095}, {0.99, 0.099}};
  for (const auto& c : cases) {
    const double got = h.percentile(c.q);
    EXPECT_GE(got, c.true_value) << "q=" << c.q;
    EXPECT_LE(got, c.true_value * 1.125) << "q=" << c.q;
  }
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.100);  // exact: recorded max
  EXPECT_NEAR(h.snapshot().mean, 0.0505, 1e-4);
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  // 8 threads x 10k records; exercised under TSan by the CI matrix. The
  // record path is relaxed atomics only, so totals must still balance.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(((t + 1) * 1e-3) + i * 1e-9);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(h.max(), 8e-3);
  EXPECT_LE(h.percentile(0.5), h.percentile(0.99));
}

// ------------------------------------------------------- snapshot windows

TEST(HistogramSnapshot, FullSnapshotMatchesLiveReadings) {
  Histogram h;
  for (const double v : {1e-3, 2e-3, 4e-3, 8e-3}) h.record(v);
  const HistogramSnapshot s = h.full_snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min(), h.min());
  EXPECT_DOUBLE_EQ(s.max(), h.max());
  EXPECT_DOUBLE_EQ(s.sum(), h.sum());
  EXPECT_DOUBLE_EQ(s.percentile(0.5), h.percentile(0.5));
  const Percentiles p = s.percentiles();
  EXPECT_EQ(p.count, 4u);
  EXPECT_DOUBLE_EQ(p.max, h.max());
}

TEST(HistogramSnapshot, DiffIsolatesTheWindow) {
  // Two polls of a cumulative histogram: the diff must describe only the
  // records that landed between them — that is the whole point of
  // per-window monitoring (a mid-run latency spike shows in its window
  // instead of being averaged into lifetime percentiles).
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1e-3);  // fast early phase
  const HistogramSnapshot before = h.full_snapshot();
  for (int i = 0; i < 10; ++i) h.record(100e-3);  // slow late phase
  const HistogramSnapshot after = h.full_snapshot();

  const HistogramSnapshot window = snapshot_diff(after, before);
  EXPECT_EQ(window.count, 10u);
  // All window samples are ~100 ms; the log buckets are within 12.5%.
  EXPECT_GT(window.percentile(0.5), 80e-3);
  EXPECT_GT(window.min(), 50e-3);  // window min, not the lifetime 1 ms min
  EXPECT_GE(window.max(), window.min());
  EXPECT_NEAR(window.sum(), 10 * 100e-3, 0.01);

  // Cumulative percentiles, by contrast, still answer for the whole run.
  EXPECT_LT(after.percentile(0.5), 10e-3);
}

TEST(HistogramSnapshot, EmptyWindowDiffsToZero) {
  Histogram h;
  for (int i = 0; i < 5; ++i) h.record(2e-3);
  const HistogramSnapshot s = h.full_snapshot();
  const HistogramSnapshot window = snapshot_diff(s, s);
  EXPECT_EQ(window.count, 0u);
  EXPECT_EQ(window.min(), 0.0);
  EXPECT_EQ(window.max(), 0.0);
  EXPECT_EQ(window.percentile(0.99), 0.0);
}

TEST(HistogramSnapshot, RegistryExposesAllHistograms) {
  MetricsRegistry reg;
  reg.histogram("b.lat").record(1e-3);
  reg.histogram("a.lat").record(2e-3);
  const auto snaps = reg.histogram_snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].first, "a.lat");  // sorted by name
  EXPECT_EQ(snaps[1].first, "b.lat");
  EXPECT_EQ(snaps[0].second.count, 1u);
}

// ------------------------------------------------------------------ counter

TEST(Counter, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Counter, AddWithIncrement) {
  Counter c;
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12u);
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistry, LookupIsStableAndCreatesOnce) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  reg.gauge("g").set(1.5);
  reg.histogram("h").record(0.001);
  const std::vector<MetricRow> rows = reg.rows();
  ASSERT_EQ(rows.size(), 3u);
  // Counters, then gauges, then histograms; sorted by name within kind.
  EXPECT_EQ(rows[0].name, "x");
  EXPECT_EQ(rows[0].kind, MetricRow::Kind::kCounter);
  EXPECT_EQ(rows[0].count, 3u);
  EXPECT_EQ(rows[1].name, "g");
  EXPECT_DOUBLE_EQ(rows[1].value, 1.5);
  EXPECT_EQ(rows[2].name, "h");
  EXPECT_EQ(rows[2].percentiles.count, 1u);
}

TEST(MetricsRegistry, PercentileColumnSchema) {
  const std::vector<std::string> cols = percentile_columns("ttft");
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], "ttft_p50_ms");
  EXPECT_EQ(cols[1], "ttft_p95_ms");
  EXPECT_EQ(cols[2], "ttft_p99_ms");
  Percentiles p;
  p.p50 = 0.0005;
  p.p95 = 0.010;
  p.p99 = 1.5;
  const std::vector<std::string> cells = percentile_cells(p);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "0.500");
  EXPECT_EQ(cells[1], "10.000");
  EXPECT_EQ(cells[2], "1500.000");
}

// -------------------------------------------------------------------- trace

TEST(Trace, DisabledScopesRecordNothing) {
  set_trace_enabled(false);
  trace_reset();
  {
    KF_TRACE_SCOPE("invisible");
    KF_TRACE_INSTANT("also_invisible");
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(Trace, ChromeJsonRoundTrip) {
  set_trace_enabled(false);
  trace_reset();
  set_trace_enabled(true);
  {
    KF_TRACE_SCOPE("outer", "test");
    { KF_TRACE_SCOPE("inner", "test"); }
    KF_TRACE_INSTANT("marker", "test");
  }
  std::thread worker([] { KF_TRACE_SCOPE("worker_span", "test"); });
  worker.join();
  set_trace_enabled(false);
  EXPECT_EQ(trace_event_count(), 4u);
  EXPECT_EQ(trace_dropped_count(), 0u);

  const std::string path =
      testing::TempDir() + "kf_test_trace_roundtrip.json";
  ASSERT_TRUE(write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  // Structural round-trip without a JSON library: the braces/brackets
  // balance (no string in the output may contain them — names are
  // engine-controlled literals), and the documents fields are present.
  int depth = 0;
  bool balanced = true;
  for (const char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    if (depth < 0) balanced = false;
  }
  EXPECT_TRUE(balanced);
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"worker_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  std::remove(path.c_str());
  trace_reset();
}

TEST(Trace, SpanDurationsAreOrderedAndNonNegative) {
  set_trace_enabled(false);
  trace_reset();
  set_trace_enabled(true);
  const std::uint64_t t0 = trace_ticks();
  std::atomic<int> spin{0};
  while (spin.fetch_add(1, std::memory_order_relaxed) < 10000) {
  }
  const std::uint64_t t1 = trace_ticks();
  set_trace_enabled(false);
  EXPECT_GE(t1, t0);
  // Tick deltas convert to a sane wall-time: positive, below a second
  // for a 10k-iteration spin.
  const double dt = trace_ticks_to_seconds(t1 - t0);
  EXPECT_GE(dt, 0.0);
  EXPECT_LT(dt, 1.0);
  trace_reset();
}

// ----------------------------------------------------------------- timeline

TEST(Timeline, DerivesLatenciesFromStamps) {
  RequestTimeline tl;
  tl.mark(TimelineEventKind::kQueued, 10.0);
  tl.mark(TimelineEventKind::kAdmitted, 10.5);
  tl.mark(TimelineEventKind::kPrefillStart, 10.5);
  tl.mark(TimelineEventKind::kPrefillEnd, 11.0);
  tl.mark(TimelineEventKind::kFirstToken, 11.25);
  tl.mark(TimelineEventKind::kFinished, 12.0);
  EXPECT_DOUBLE_EQ(tl.queue_wait_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(tl.ttft_seconds(), 1.25);
  EXPECT_DOUBLE_EQ(tl.e2e_seconds(), 2.0);
  EXPECT_TRUE(tl.has(TimelineEventKind::kPrefillEnd));
  EXPECT_FALSE(tl.has(TimelineEventKind::kPreempted));
}

TEST(Timeline, MissingStampsReportZero) {
  RequestTimeline tl;
  EXPECT_DOUBLE_EQ(tl.ttft_seconds(), 0.0);
  tl.mark(TimelineEventKind::kQueued, 5.0);
  EXPECT_DOUBLE_EQ(tl.ttft_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(tl.queue_wait_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(tl.e2e_seconds(), 0.0);
}

TEST(Timeline, FirstAndLastPickTheRightRepeat) {
  RequestTimeline tl;
  tl.mark(TimelineEventKind::kPreempted, 1.0);
  tl.mark(TimelineEventKind::kResumed, 2.0);
  tl.mark(TimelineEventKind::kPreempted, 3.0);
  tl.mark(TimelineEventKind::kResumed, 4.0);
  EXPECT_DOUBLE_EQ(*tl.first(TimelineEventKind::kPreempted), 1.0);
  EXPECT_DOUBLE_EQ(*tl.last(TimelineEventKind::kPreempted), 3.0);
  EXPECT_DOUBLE_EQ(*tl.last(TimelineEventKind::kResumed), 4.0);
}

TEST(Timeline, StreamStatsTracksMinMeanMax) {
  StreamStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST(Timeline, EventKindNames) {
  EXPECT_STREQ(to_string(TimelineEventKind::kQueued), "queued");
  EXPECT_STREQ(to_string(TimelineEventKind::kFirstToken), "first_token");
  EXPECT_STREQ(to_string(TimelineEventKind::kFinished), "finished");
}

}  // namespace
}  // namespace kf::obs
