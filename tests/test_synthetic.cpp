#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/vocab.h"

namespace kf::data {
namespace {

TEST(TokenClasses, PartitionIsConsistent) {
  const TokenClasses c(512);
  EXPECT_EQ(c.fact_begin, kFirstContentToken);
  EXPECT_EQ(c.fact_end, c.filler_begin);
  EXPECT_EQ(c.n_fact(), 128u);
  EXPECT_TRUE(c.is_fact(10));
  EXPECT_FALSE(c.is_fact(200));
  EXPECT_TRUE(c.is_filler(200));
  EXPECT_FALSE(c.is_filler(511 + 1));
}

TEST(TokenClasses, RejectsTinyVocab) {
  EXPECT_THROW(TokenClasses(16), std::invalid_argument);
}

TEST(Summarization, DeterministicPerIndex) {
  const SummarizationConfig cfg;
  const Sample a = make_summarization_sample(cfg, 3);
  const Sample b = make_summarization_sample(cfg, 3);
  EXPECT_EQ(a.prompt, b.prompt);
  EXPECT_EQ(a.reference, b.reference);
  const Sample c = make_summarization_sample(cfg, 4);
  EXPECT_NE(a.prompt, c.prompt);
}

TEST(Summarization, ShapeAndTokenValidity) {
  SummarizationConfig cfg;
  cfg.doc_len = 200;
  const Sample s = make_summarization_sample(cfg, 0);
  EXPECT_EQ(s.prompt.size(), 201u);  // doc + <sep> cue
  EXPECT_EQ(s.prompt.front(), kBos);
  EXPECT_EQ(s.prompt.back(), kSep);
  for (const Token t : s.prompt) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, static_cast<Token>(cfg.vocab_size));
  }
}

TEST(Summarization, ReferenceIsFactTokensInOrder) {
  const SummarizationConfig cfg;
  const TokenClasses classes(cfg.vocab_size);
  const Sample s = make_summarization_sample(cfg, 1);
  EXPECT_EQ(s.reference.size(), cfg.n_facts);
  for (const Token t : s.reference) {
    EXPECT_TRUE(classes.is_fact(t));
  }
  // Ordered by first appearance; all distinct.
  const std::set<Token> uniq(s.reference.begin(), s.reference.end());
  EXPECT_EQ(uniq.size(), s.reference.size());
}

TEST(Summarization, FactPositionsPointAtFacts) {
  const SummarizationConfig cfg;
  const Sample s = make_summarization_sample(cfg, 2);
  EXPECT_GE(s.fact_positions.size(), cfg.n_facts);
  for (const std::size_t p : s.fact_positions) {
    ASSERT_LT(p, s.prompt.size());
    EXPECT_NE(std::find(s.reference.begin(), s.reference.end(), s.prompt[p]),
              s.reference.end());
  }
}

TEST(Summarization, FactsAvoidTheEarlyDistractorZone) {
  SummarizationConfig cfg;
  cfg.doc_len = 300;
  const Sample s = make_summarization_sample(cfg, 5);
  const std::size_t early_end = (cfg.doc_len * 35) / 100;
  for (const std::size_t p : s.fact_positions) {
    EXPECT_GE(p, early_end);
  }
}

TEST(Summarization, DistractorsRepeatHeavilyEarly) {
  SummarizationConfig cfg;
  cfg.doc_len = 320;
  const Sample s = make_summarization_sample(cfg, 7);
  const TokenClasses classes(cfg.vocab_size);
  const std::size_t early_end = (cfg.doc_len * 35) / 100;
  // Count salient-range tokens in the early zone that are not references.
  std::size_t distractor_occurrences = 0;
  for (std::size_t i = 1; i < early_end; ++i) {
    const Token t = s.prompt[i];
    if (classes.is_fact(t) &&
        std::find(s.reference.begin(), s.reference.end(), t) ==
            s.reference.end()) {
      ++distractor_occurrences;
    }
  }
  EXPECT_GE(distractor_occurrences, cfg.n_distractors * 10);
}

TEST(Summarization, SetProducesRequestedCount) {
  const auto set = make_summarization_set(SummarizationConfig{}, 5);
  EXPECT_EQ(set.size(), 5u);
}

TEST(Summarization, RejectsTinyDoc) {
  SummarizationConfig cfg;
  cfg.doc_len = 8;
  EXPECT_THROW(make_summarization_sample(cfg, 0), std::invalid_argument);
}

TEST(Dialogue, StructureAndReference) {
  DialogueConfig cfg;
  const Sample s = make_dialogue_sample(cfg, 0);
  EXPECT_EQ(s.prompt.front(), kBos);
  EXPECT_EQ(s.prompt.back(), kSep);
  const std::size_t seps = static_cast<std::size_t>(
      std::count(s.prompt.begin(), s.prompt.end(), kSep));
  EXPECT_EQ(seps, cfg.n_turns + 1);
  // Early-turn topics form the reference.
  EXPECT_EQ(s.reference.size(), (cfg.n_turns / 2) * cfg.topics_per_turn);
}

TEST(Dialogue, ReferenceTopicsAppearTwicePerTurn) {
  DialogueConfig cfg;
  const Sample s = make_dialogue_sample(cfg, 1);
  for (const Token topic : s.reference) {
    const auto count =
        std::count(s.prompt.begin(), s.prompt.end(), topic);
    EXPECT_GE(count, 2);
  }
}

TEST(LongReport, SectionsAndLength) {
  LongReportConfig cfg;
  cfg.doc_len = 600;
  cfg.n_sections = 4;
  const Sample s = make_long_report_sample(cfg, 0);
  const std::size_t seps = static_cast<std::size_t>(
      std::count(s.prompt.begin(), s.prompt.end(), kSep));
  EXPECT_EQ(seps, cfg.n_sections + 1);
  EXPECT_GE(s.prompt.size(), cfg.doc_len);
}

TEST(LongReport, FactsSpreadAcrossSections) {
  LongReportConfig cfg;
  cfg.doc_len = 900;
  cfg.n_sections = 6;
  const Sample s = make_long_report_sample(cfg, 2);
  // Fact positions must span at least half the document.
  ASSERT_FALSE(s.fact_positions.empty());
  const std::size_t span =
      s.fact_positions.back() - s.fact_positions.front();
  EXPECT_GT(span, s.prompt.size() / 2);
}

TEST(PaddedPrompt, LengthAndBos) {
  const auto p = make_padded_prompt(128, 512, 1);
  EXPECT_EQ(p.size(), 128u);
  EXPECT_EQ(p[0], kBos);
  const TokenClasses classes(512);
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_TRUE(classes.is_filler(p[i]));
  }
}

TEST(WordVocab, RoundTrip) {
  WordVocab v;
  const Token hello = v.add("hello");
  EXPECT_EQ(v.lookup("hello"), hello);
  EXPECT_EQ(v.word(hello), "hello");
  EXPECT_EQ(v.add("hello"), hello);
  EXPECT_EQ(v.lookup("missing"), -1);
}

TEST(WordVocab, SpecialsPreRegistered) {
  const WordVocab v;
  EXPECT_EQ(v.word(kBos), "<bos>");
  EXPECT_EQ(v.word(kSep), "<sep>");
  EXPECT_EQ(v.size(), 4u);
}

TEST(Tokenizer, LowercasesAndStripsPunctuation) {
  WordVocab v;
  const auto toks = tokenize_words(v, "Hello, World! hello");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], toks[2]);
  EXPECT_EQ(detokenize(v, toks), "hello world hello");
}

}  // namespace
}  // namespace kf::data
