#include "eval/rouge.h"

#include <gtest/gtest.h>

#include <vector>

namespace kf::eval {
namespace {

using Tokens = std::vector<Token>;

TEST(RougeN, IdenticalSequencesScoreOne) {
  const Tokens t{1, 2, 3, 4};
  const RougeScore r1 = rouge_n(t, t, 1);
  const RougeScore r2 = rouge_n(t, t, 2);
  EXPECT_DOUBLE_EQ(r1.f1, 1.0);
  EXPECT_DOUBLE_EQ(r2.f1, 1.0);
}

TEST(RougeN, DisjointSequencesScoreZero) {
  const Tokens a{1, 2, 3};
  const Tokens b{4, 5, 6};
  EXPECT_DOUBLE_EQ(rouge_n(a, b, 1).f1, 0.0);
  EXPECT_DOUBLE_EQ(rouge_n(a, b, 2).f1, 0.0);
}

TEST(RougeN, KnownUnigramValues) {
  // candidate: {1,2,3,4}; reference: {1,2,5,6,7}. Matches = 2.
  const Tokens cand{1, 2, 3, 4};
  const Tokens ref{1, 2, 5, 6, 7};
  const RougeScore r = rouge_n(cand, ref, 1);
  EXPECT_NEAR(r.precision, 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(r.recall, 2.0 / 5.0, 1e-12);
  EXPECT_NEAR(r.f1, 2.0 * 0.5 * 0.4 / 0.9, 1e-12);
}

TEST(RougeN, ClippedCounts) {
  // Candidate repeats a token more often than the reference contains it.
  const Tokens cand{1, 1, 1, 1};
  const Tokens ref{1, 2};
  const RougeScore r = rouge_n(cand, ref, 1);
  EXPECT_NEAR(r.precision, 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(r.recall, 1.0 / 2.0, 1e-12);
}

TEST(RougeN, BigramsRequireAdjacency) {
  const Tokens cand{1, 2, 9, 3, 4};
  const Tokens ref{1, 2, 3, 4};
  const RougeScore r = rouge_n(cand, ref, 2);
  // Candidate bigrams: (1,2),(2,9),(9,3),(3,4); ref: (1,2),(2,3),(3,4).
  EXPECT_NEAR(r.precision, 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(r.recall, 2.0 / 3.0, 1e-12);
}

TEST(RougeN, EmptyOrShortInputs) {
  const Tokens t{1, 2};
  EXPECT_DOUBLE_EQ(rouge_n({}, t, 1).f1, 0.0);
  EXPECT_DOUBLE_EQ(rouge_n(t, {}, 1).f1, 0.0);
  EXPECT_DOUBLE_EQ(rouge_n(Tokens{1}, t, 2).f1, 0.0);
  EXPECT_DOUBLE_EQ(rouge_n(t, t, 0).f1, 0.0);
}

TEST(RougeL, IdenticalSequencesScoreOne) {
  const Tokens t{5, 6, 7};
  EXPECT_DOUBLE_EQ(rouge_l(t, t).f1, 1.0);
}

TEST(RougeL, SubsequenceNotSubstring) {
  // LCS of {1,9,2,8,3} and {1,2,3} is {1,2,3} (length 3) despite gaps.
  const Tokens cand{1, 9, 2, 8, 3};
  const Tokens ref{1, 2, 3};
  const RougeScore r = rouge_l(cand, ref);
  EXPECT_NEAR(r.recall, 1.0, 1e-12);
  EXPECT_NEAR(r.precision, 3.0 / 5.0, 1e-12);
}

TEST(RougeL, OrderMatters) {
  const Tokens cand{3, 2, 1};
  const Tokens ref{1, 2, 3};
  const RougeScore r = rouge_l(cand, ref);
  EXPECT_NEAR(r.recall, 1.0 / 3.0, 1e-12);  // LCS length 1
}

TEST(RougeL, EmptyInputs) {
  const Tokens t{1};
  EXPECT_DOUBLE_EQ(rouge_l({}, t).f1, 0.0);
  EXPECT_DOUBLE_EQ(rouge_l(t, {}).f1, 0.0);
}

TEST(RougeAll, ConsistentWithIndividualScores) {
  const Tokens cand{1, 2, 3, 9};
  const Tokens ref{1, 2, 3};
  const RougeSuite s = rouge_all(cand, ref);
  EXPECT_DOUBLE_EQ(s.r1.f1, rouge_n(cand, ref, 1).f1);
  EXPECT_DOUBLE_EQ(s.r2.f1, rouge_n(cand, ref, 2).f1);
  EXPECT_DOUBLE_EQ(s.rl.f1, rouge_l(cand, ref).f1);
}

TEST(Rouge, ScoresBoundedInUnitInterval) {
  const Tokens cand{1, 1, 2, 3, 4, 4, 5};
  const Tokens ref{2, 3, 3, 6};
  for (const RougeScore& r :
       {rouge_n(cand, ref, 1), rouge_n(cand, ref, 2), rouge_l(cand, ref)}) {
    EXPECT_GE(r.precision, 0.0);
    EXPECT_LE(r.precision, 1.0);
    EXPECT_GE(r.recall, 0.0);
    EXPECT_LE(r.recall, 1.0);
    EXPECT_GE(r.f1, 0.0);
    EXPECT_LE(r.f1, 1.0);
  }
}

TEST(Rouge, SymmetryOfF1) {
  // Swapping candidate and reference swaps precision/recall, keeps F1.
  const Tokens a{1, 2, 3, 4, 5};
  const Tokens b{3, 4, 5, 6};
  const RougeScore ab = rouge_n(a, b, 1);
  const RougeScore ba = rouge_n(b, a, 1);
  EXPECT_DOUBLE_EQ(ab.precision, ba.recall);
  EXPECT_DOUBLE_EQ(ab.recall, ba.precision);
  EXPECT_NEAR(ab.f1, ba.f1, 1e-12);
}

}  // namespace
}  // namespace kf::eval
