#include "mem/paged_kv_cache.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "kvcache/kv_cache.h"

namespace kf::mem {
namespace {

BlockPoolConfig pool_config(std::size_t block_tokens = 4,
                            std::size_t n_heads = 2, std::size_t d_head = 3) {
  BlockPoolConfig cfg;
  cfg.n_shards = 1;
  cfg.blocks_per_shard = 0;  // unbounded: the cache under test decides
  cfg.block_tokens = block_tokens;
  cfg.n_heads = n_heads;
  cfg.d_head = d_head;
  return cfg;
}

std::vector<float> ramp_row(std::size_t width, float base) {
  std::vector<float> row(width);
  for (std::size_t i = 0; i < width; ++i) {
    row[i] = base + static_cast<float>(i) * 0.25F;
  }
  return row;
}

TEST(PagedKvCache, ChainInvariantAcrossAppends) {
  BlockPool pool(pool_config(/*block_tokens=*/4));
  PagedKvCache c(pool, 0);
  EXPECT_EQ(c.blocks_held(), 0u);
  for (std::size_t t = 0; t < 10; ++t) {
    const auto k = ramp_row(c.row_width(), static_cast<float>(t));
    c.append(k, k, t);
    EXPECT_EQ(c.blocks_held(), (t + 1 + 3) / 4) << "token " << t;
    EXPECT_EQ(pool.shard_stats(0).used_blocks, c.blocks_held());
  }
}

TEST(PagedKvCache, SegmentsTileTheCacheInOrder) {
  BlockPool pool(pool_config(/*block_tokens=*/4));
  PagedKvCache c(pool, 0);
  for (std::size_t t = 0; t < 10; ++t) {
    const auto k = ramp_row(c.row_width(), static_cast<float>(t));
    c.append(k, k, t);
  }
  ASSERT_EQ(c.segment_count(), 3u);
  for (std::size_t h = 0; h < c.n_heads(); ++h) {
    std::size_t covered = 0;
    for (std::size_t s = 0; s < c.segment_count(); ++s) {
      const kv::KvSegment seg = c.segment(h, s);
      EXPECT_EQ(seg.first, covered);
      covered += seg.count;
      // Each segment row must agree with the per-index accessor.
      for (std::size_t r = 0; r < seg.count; ++r) {
        const auto expect_k = c.key_head(seg.first + r, h);
        const auto expect_v = c.value_head(seg.first + r, h);
        for (std::size_t j = 0; j < c.d_head(); ++j) {
          EXPECT_EQ(seg.keys[r * c.d_head() + j], expect_k[j]);
          EXPECT_EQ(seg.values[r * c.d_head() + j], expect_v[j]);
        }
      }
    }
    EXPECT_EQ(covered, c.size());
  }
}

TEST(PagedKvCache, CompactFreesEmptiedTailBlocks) {
  BlockPool pool(pool_config(/*block_tokens=*/4));
  PagedKvCache c(pool, 0);
  for (std::size_t t = 0; t < 12; ++t) {
    const auto k = ramp_row(c.row_width(), static_cast<float>(t));
    c.append(k, k, t);
  }
  EXPECT_EQ(c.blocks_held(), 3u);
  // Keep 5 scattered tokens: 2 blocks remain, 1 returns to the pool.
  const std::vector<std::size_t> keep{0, 3, 6, 9, 11};
  c.compact(keep);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.blocks_held(), 2u);
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 2u);
  // Kept rows gathered in order.
  EXPECT_EQ(c.original_position(0), 0u);
  EXPECT_EQ(c.original_position(4), 11u);
  EXPECT_EQ(c.key_row(1), ramp_row(c.row_width(), 3.0F));
  EXPECT_EQ(c.value_row(3), ramp_row(c.row_width(), 9.0F));
}

TEST(PagedKvCache, ClearAndDestructorReturnEveryBlock) {
  BlockPool pool(pool_config());
  {
    PagedKvCache c(pool, 0);
    for (std::size_t t = 0; t < 9; ++t) {
      const auto k = ramp_row(c.row_width(), static_cast<float>(t));
      c.append(k, k, t);
    }
    EXPECT_GT(pool.shard_stats(0).used_blocks, 0u);
    c.clear();
    EXPECT_EQ(pool.shard_stats(0).used_blocks, 0u);
    EXPECT_EQ(c.size(), 0u);
    for (std::size_t t = 0; t < 5; ++t) {  // reusable after clear
      const auto k = ramp_row(c.row_width(), static_cast<float>(t));
      c.append(k, k, t);
    }
    EXPECT_EQ(pool.shard_stats(0).used_blocks, 2u);
  }
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 0u);  // destructor freed
}

/// The core acceptance property: identical append/compact/clear/score op
/// sequences through a contiguous and a paged cache must leave bit-exact
/// K/V/score/position state, across several block sizes (including ones
/// that never divide the lengths evenly).
TEST(PagedKvCache, RandomizedOpsBitExactVsContiguous) {
  for (const std::size_t block_tokens : {1, 3, 4, 7, 16}) {
    const std::size_t n_heads = 2;
    const std::size_t d_head = 3;
    BlockPool pool(pool_config(block_tokens, n_heads, d_head));
    PagedKvCache paged(pool, 0);
    kv::ContiguousKvCache contiguous(n_heads, d_head, /*capacity_hint=*/2);
    Rng rng(7 + block_tokens);

    std::size_t next_pos = 0;
    const auto check_equal = [&](std::size_t step) {
      ASSERT_EQ(paged.size(), contiguous.size()) << "step " << step;
      for (std::size_t t = 0; t < paged.size(); ++t) {
        ASSERT_EQ(paged.original_position(t), contiguous.original_position(t))
            << "step " << step;
        ASSERT_EQ(paged.key_row(t), contiguous.key_row(t)) << "step " << step;
        ASSERT_EQ(paged.value_row(t), contiguous.value_row(t))
            << "step " << step;
      }
      for (std::size_t h = 0; h < n_heads; ++h) {
        const auto ps = paged.scores(h);
        const auto cs = contiguous.scores(h);
        for (std::size_t t = 0; t < paged.size(); ++t) {
          ASSERT_EQ(ps[t], cs[t]) << "step " << step << " head " << h;
        }
      }
      ASSERT_EQ(paged.blocks_held(),
                (paged.size() + block_tokens - 1) / block_tokens)
          << "step " << step;
      ASSERT_EQ(pool.shard_stats(0).used_blocks, paged.blocks_held())
          << "step " << step;
    };

    for (std::size_t step = 0; step < 400; ++step) {
      const std::uint64_t op = rng.uniform_u64(10);
      if (op < 6 || paged.empty()) {
        std::vector<float> k(paged.row_width());
        std::vector<float> v(paged.row_width());
        for (auto& x : k) x = static_cast<float>(rng.normal());
        for (auto& x : v) x = static_cast<float>(rng.normal());
        next_pos += 1 + rng.uniform_u64(3);
        paged.append(k, v, next_pos);
        contiguous.append(k, v, next_pos);
      } else if (op < 7) {
        const std::size_t h = rng.uniform_u64(n_heads);
        const std::size_t idx = rng.uniform_u64(paged.size());
        const double val = rng.normal();
        paged.add_score(h, idx, val);
        contiguous.add_score(h, idx, val);
      } else if (op < 8) {
        const double f = 0.5 + 0.5 * rng.uniform();
        paged.damp_scores(f);
        contiguous.damp_scores(f);
      } else if (op < 9) {
        std::vector<std::size_t> keep;
        for (std::size_t t = 0; t < paged.size(); ++t) {
          if (rng.uniform_u64(3) > 0) keep.push_back(t);
        }
        paged.compact(keep);
        contiguous.compact(keep);
      } else {
        paged.clear();
        contiguous.clear();
      }
      check_equal(step);
    }
  }
}

TEST(PagedKvCache, RejectsOutOfRangeShard) {
  BlockPool pool(pool_config());
  EXPECT_THROW(PagedKvCache(pool, 1), std::invalid_argument);
}

TEST(PagedKvCache, CompactToEmptyThenRegrow) {
  // Satellite coverage: a cache drained to zero by compaction must return
  // every block and then grow again from scratch exactly like a fresh
  // cache (chain invariant, stats, and contents all intact).
  BlockPool pool(pool_config(/*block_tokens=*/4));
  PagedKvCache c(pool, 0);
  for (std::size_t t = 0; t < 11; ++t) {
    const auto k = ramp_row(c.row_width(), static_cast<float>(t));
    c.append(k, k, t);
  }
  EXPECT_EQ(c.blocks_held(), 3u);
  c.compact({});  // keep nothing
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.blocks_held(), 0u);
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 0u);
  // Regrowth: positions may restart (the cache is empty), contents land
  // in freshly allocated blocks.
  for (std::size_t t = 0; t < 6; ++t) {
    const auto k = ramp_row(c.row_width(), 100.0F + static_cast<float>(t));
    c.append(k, k, t);
    EXPECT_EQ(c.blocks_held(), (t + 1 + 3) / 4);
  }
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 2u);
  EXPECT_EQ(c.key_row(4), ramp_row(c.row_width(), 104.0F));
  EXPECT_EQ(c.original_position(5), 5u);
}

// ---------------------------------------------------------------------------
// Copy-on-write prefix sharing.

/// Builds a donor cache holding `tokens` rows (positions 0..tokens-1) with
/// deterministic contents and per-head scores i * (head + 1).
void fill_prefix(PagedKvCache& c, std::size_t tokens) {
  for (std::size_t t = 0; t < tokens; ++t) {
    const auto k = ramp_row(c.row_width(), static_cast<float>(t));
    const auto v = ramp_row(c.row_width(), 1000.0F + static_cast<float>(t));
    c.append(k, v, t);
    for (std::size_t h = 0; h < c.n_heads(); ++h) {
      c.add_score(h, t, static_cast<double>(t * (h + 1)));
    }
  }
}

std::vector<std::vector<double>> snapshot_scores(const PagedKvCache& c,
                                                 std::size_t tokens) {
  std::vector<std::vector<double>> scores;
  for (std::size_t h = 0; h < c.n_heads(); ++h) {
    const auto s = c.scores(h);
    scores.emplace_back(s.begin(), s.begin() + static_cast<long>(tokens));
  }
  return scores;
}

TEST(PagedKvCache, AdoptPrefixSharesBlocksAndSeedsMetadata) {
  BlockPool pool(pool_config(/*block_tokens=*/4));
  PagedKvCache donor(pool, 0);
  fill_prefix(donor, 8);  // exactly 2 blocks
  const std::vector<BlockRef> chain(donor.blocks().begin(),
                                    donor.blocks().end());
  const auto scores = snapshot_scores(donor, 8);

  PagedKvCache reader(pool, 0);
  reader.adopt_prefix(chain, 8, scores);
  EXPECT_EQ(reader.size(), 8u);
  EXPECT_EQ(reader.blocks_held(), 2u);
  EXPECT_EQ(reader.shared_blocks(), 2u);
  // Physically the same blocks: used counts them once, refcount twice.
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 2u);
  EXPECT_EQ(pool.refcount(chain[0]), 2u);
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_EQ(reader.key_row(t), donor.key_row(t)) << "token " << t;
    EXPECT_EQ(reader.value_row(t), donor.value_row(t)) << "token " << t;
    EXPECT_EQ(reader.original_position(t), t);
  }
  for (std::size_t h = 0; h < reader.n_heads(); ++h) {
    EXPECT_EQ(reader.scores(h)[5], donor.scores(h)[5]);
  }
  // Appends open a fresh private block; the shared ones stay shared.
  const auto k = ramp_row(reader.row_width(), 50.0F);
  reader.append(k, k, 8);
  EXPECT_EQ(reader.blocks_held(), 3u);
  EXPECT_EQ(reader.shared_blocks(), 2u);
  EXPECT_EQ(reader.cow_copies(), 0u);
}

TEST(PagedKvCache, AdoptPrefixValidatesAlignmentAndEmptiness) {
  BlockPool pool(pool_config(/*block_tokens=*/4));
  PagedKvCache donor(pool, 0);
  fill_prefix(donor, 8);
  const std::vector<BlockRef> chain(donor.blocks().begin(),
                                    donor.blocks().end());
  PagedKvCache reader(pool, 0);
  // 7 tokens is not block-aligned; 8 tokens over one block is a mismatch.
  EXPECT_THROW(reader.adopt_prefix(chain, 7, snapshot_scores(donor, 7)),
               std::invalid_argument);
  EXPECT_THROW(
      reader.adopt_prefix({chain.data(), 1}, 8, snapshot_scores(donor, 8)),
      std::invalid_argument);
  reader.adopt_prefix(chain, 8, snapshot_scores(donor, 8));
  EXPECT_THROW(reader.adopt_prefix(chain, 8, snapshot_scores(donor, 8)),
               std::logic_error);
}

TEST(PagedKvCache, CompactCopiesSharedDestinationBlocksOnWrite) {
  BlockPool pool(pool_config(/*block_tokens=*/4));
  PagedKvCache donor(pool, 0);
  fill_prefix(donor, 12);  // 3 blocks
  const std::vector<BlockRef> chain(donor.blocks().begin(),
                                    donor.blocks().end());
  PagedKvCache reader(pool, 0);
  reader.adopt_prefix(chain, 12, snapshot_scores(donor, 12));

  // Keep rows 0..3 untouched (identity gather: block 0 stays shared) and
  // gather 4 scattered later rows into block 1 (written: must be copied).
  const std::vector<std::size_t> keep{0, 1, 2, 3, 5, 7, 9, 11};
  reader.compact(keep);
  EXPECT_EQ(reader.size(), 8u);
  EXPECT_EQ(reader.blocks_held(), 2u);
  EXPECT_EQ(reader.cow_copies(), 1u);
  EXPECT_EQ(reader.shared_blocks(), 1u);  // block 0 still shared
  EXPECT_EQ(reader.blocks()[0].id, chain[0].id);
  EXPECT_NE(reader.blocks()[1].id, chain[1].id);

  // The donor's rows are untouched by the reader's eviction.
  for (std::size_t t = 0; t < 12; ++t) {
    EXPECT_EQ(donor.key_row(t), ramp_row(donor.row_width(),
                                         static_cast<float>(t)))
        << "donor perturbed at " << t;
  }
  // The reader's gathered rows match the kept originals.
  for (std::size_t j = 0; j < keep.size(); ++j) {
    EXPECT_EQ(reader.key_row(j),
              ramp_row(reader.row_width(), static_cast<float>(keep[j])));
    EXPECT_EQ(reader.original_position(j), keep[j]);
  }
  // Drained chain tail went back: donor's block 2 ref dropped to 1.
  EXPECT_EQ(pool.refcount(chain[2]), 1u);
}

TEST(PagedKvCache, AppendIntoSharedPartialTailCopiesFirst) {
  BlockPool pool(pool_config(/*block_tokens=*/4));
  PagedKvCache donor(pool, 0);
  fill_prefix(donor, 8);
  const std::vector<BlockRef> chain(donor.blocks().begin(),
                                    donor.blocks().end());
  PagedKvCache reader(pool, 0);
  reader.adopt_prefix(chain, 8, snapshot_scores(donor, 8));
  // Evict to 6 rows with an identity keep: both blocks stay shared, the
  // tail block now has free slots.
  const std::vector<std::size_t> identity{0, 1, 2, 3, 4, 5};
  reader.compact(identity);
  EXPECT_EQ(reader.cow_copies(), 0u);
  EXPECT_EQ(reader.shared_blocks(), 2u);
  // Appending into the shared tail's free slot must copy it first — the
  // donor still reads its own rows 6 and 7 through that block.
  const auto k = ramp_row(reader.row_width(), 77.0F);
  reader.append(k, k, 20);
  EXPECT_EQ(reader.cow_copies(), 1u);
  EXPECT_EQ(reader.key_row(6), k);
  EXPECT_EQ(donor.key_row(6), ramp_row(donor.row_width(), 6.0F));
  EXPECT_EQ(donor.key_row(7), ramp_row(donor.row_width(), 7.0F));
}

TEST(PagedKvCache, CowSkipsCopyWhenLastReader) {
  BlockPool pool(pool_config(/*block_tokens=*/4));
  std::vector<BlockRef> chain;
  {
    PagedKvCache donor(pool, 0);
    fill_prefix(donor, 4);
    chain.assign(donor.blocks().begin(), donor.blocks().end());
    for (const BlockRef r : chain) pool.retain(r);  // stand-in for an index
  }  // donor gone; "index" still holds the chain
  PagedKvCache reader(pool, 0);
  const std::vector<std::vector<double>> zeros(2, std::vector<double>(4, 0.0));
  reader.adopt_prefix(chain, 4, zeros);
  for (const BlockRef r : chain) pool.release(r);  // index drops the entry
  EXPECT_EQ(pool.refcount(chain[0]), 1u);  // reader is the last one
  // A mutating compact now writes in place: no copy, block id unchanged.
  const std::vector<std::size_t> keep{0, 2, 3};
  reader.compact(keep);
  EXPECT_EQ(reader.cow_copies(), 0u);
  EXPECT_EQ(reader.shared_blocks(), 0u);
  EXPECT_EQ(reader.blocks()[0].id, chain[0].id);
}

/// Injector that vetoes every allocation, forever.
class AlwaysFailAllocate final : public FaultInjector {
 public:
  bool should_fail(FaultOp op, std::size_t /*shard*/) override {
    return op == FaultOp::kAllocate;
  }
};

TEST(PagedKvCache, AllocationFailureFallsBackToEmergencyBlocksExactly) {
  // When the pool denies a block mid-append, the cache latches
  // alloc_failed() and keeps the step numerically exact on emergency heap
  // memory — reads return the real rows, and teardown never touches the
  // pool for emergency refs.
  BlockPool pool(pool_config(/*block_tokens=*/4));
  PagedKvCache c(pool, 0);
  // First block from the pool, then cut the supply.
  for (std::size_t t = 0; t < 4; ++t) {
    const auto k = ramp_row(c.row_width(), static_cast<float>(t));
    c.append(k, k, t);
  }
  EXPECT_FALSE(c.alloc_failed());
  AlwaysFailAllocate inject;
  pool.set_fault_injector(&inject);
  for (std::size_t t = 4; t < 7; ++t) {
    const auto k = ramp_row(c.row_width(), static_cast<float>(t));
    c.append(k, k, t);
  }
  EXPECT_TRUE(c.alloc_failed());
  EXPECT_EQ(c.alloc_failures(), 1u);  // one emergency block covers 4..6
  EXPECT_EQ(c.size(), 7u);
  // The pool only ever granted the first block.
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 1u);
  // Every row — pool-backed and emergency alike — reads back exactly.
  for (std::size_t t = 0; t < 7; ++t) {
    const auto expect = ramp_row(c.row_width(), static_cast<float>(t));
    for (std::size_t h = 0; h < c.n_heads(); ++h) {
      const auto k = c.key_head(t, h);
      const auto v = c.value_head(t, h);
      for (std::size_t i = 0; i < c.d_head(); ++i) {
        EXPECT_EQ(k[i], expect[h * c.d_head() + i]) << "t " << t;
        EXPECT_EQ(v[i], expect[h * c.d_head() + i]) << "t " << t;
      }
    }
  }
  pool.set_fault_injector(nullptr);
}

}  // namespace
}  // namespace kf::mem
