#include "mem/paged_kv_cache.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "kvcache/kv_cache.h"

namespace kf::mem {
namespace {

BlockPoolConfig pool_config(std::size_t block_tokens = 4,
                            std::size_t n_heads = 2, std::size_t d_head = 3) {
  BlockPoolConfig cfg;
  cfg.n_shards = 1;
  cfg.blocks_per_shard = 0;  // unbounded: the cache under test decides
  cfg.block_tokens = block_tokens;
  cfg.n_heads = n_heads;
  cfg.d_head = d_head;
  return cfg;
}

std::vector<float> ramp_row(std::size_t width, float base) {
  std::vector<float> row(width);
  for (std::size_t i = 0; i < width; ++i) {
    row[i] = base + static_cast<float>(i) * 0.25F;
  }
  return row;
}

TEST(PagedKvCache, ChainInvariantAcrossAppends) {
  BlockPool pool(pool_config(/*block_tokens=*/4));
  PagedKvCache c(pool, 0);
  EXPECT_EQ(c.blocks_held(), 0u);
  for (std::size_t t = 0; t < 10; ++t) {
    const auto k = ramp_row(c.row_width(), static_cast<float>(t));
    c.append(k, k, t);
    EXPECT_EQ(c.blocks_held(), (t + 1 + 3) / 4) << "token " << t;
    EXPECT_EQ(pool.shard_stats(0).used_blocks, c.blocks_held());
  }
}

TEST(PagedKvCache, SegmentsTileTheCacheInOrder) {
  BlockPool pool(pool_config(/*block_tokens=*/4));
  PagedKvCache c(pool, 0);
  for (std::size_t t = 0; t < 10; ++t) {
    const auto k = ramp_row(c.row_width(), static_cast<float>(t));
    c.append(k, k, t);
  }
  ASSERT_EQ(c.segment_count(), 3u);
  for (std::size_t h = 0; h < c.n_heads(); ++h) {
    std::size_t covered = 0;
    for (std::size_t s = 0; s < c.segment_count(); ++s) {
      const kv::KvSegment seg = c.segment(h, s);
      EXPECT_EQ(seg.first, covered);
      covered += seg.count;
      // Each segment row must agree with the per-index accessor.
      for (std::size_t r = 0; r < seg.count; ++r) {
        const auto expect_k = c.key_head(seg.first + r, h);
        const auto expect_v = c.value_head(seg.first + r, h);
        for (std::size_t j = 0; j < c.d_head(); ++j) {
          EXPECT_EQ(seg.keys[r * c.d_head() + j], expect_k[j]);
          EXPECT_EQ(seg.values[r * c.d_head() + j], expect_v[j]);
        }
      }
    }
    EXPECT_EQ(covered, c.size());
  }
}

TEST(PagedKvCache, CompactFreesEmptiedTailBlocks) {
  BlockPool pool(pool_config(/*block_tokens=*/4));
  PagedKvCache c(pool, 0);
  for (std::size_t t = 0; t < 12; ++t) {
    const auto k = ramp_row(c.row_width(), static_cast<float>(t));
    c.append(k, k, t);
  }
  EXPECT_EQ(c.blocks_held(), 3u);
  // Keep 5 scattered tokens: 2 blocks remain, 1 returns to the pool.
  const std::vector<std::size_t> keep{0, 3, 6, 9, 11};
  c.compact(keep);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.blocks_held(), 2u);
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 2u);
  // Kept rows gathered in order.
  EXPECT_EQ(c.original_position(0), 0u);
  EXPECT_EQ(c.original_position(4), 11u);
  EXPECT_EQ(c.key_row(1), ramp_row(c.row_width(), 3.0F));
  EXPECT_EQ(c.value_row(3), ramp_row(c.row_width(), 9.0F));
}

TEST(PagedKvCache, ClearAndDestructorReturnEveryBlock) {
  BlockPool pool(pool_config());
  {
    PagedKvCache c(pool, 0);
    for (std::size_t t = 0; t < 9; ++t) {
      const auto k = ramp_row(c.row_width(), static_cast<float>(t));
      c.append(k, k, t);
    }
    EXPECT_GT(pool.shard_stats(0).used_blocks, 0u);
    c.clear();
    EXPECT_EQ(pool.shard_stats(0).used_blocks, 0u);
    EXPECT_EQ(c.size(), 0u);
    for (std::size_t t = 0; t < 5; ++t) {  // reusable after clear
      const auto k = ramp_row(c.row_width(), static_cast<float>(t));
      c.append(k, k, t);
    }
    EXPECT_EQ(pool.shard_stats(0).used_blocks, 2u);
  }
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 0u);  // destructor freed
}

/// The core acceptance property: identical append/compact/clear/score op
/// sequences through a contiguous and a paged cache must leave bit-exact
/// K/V/score/position state, across several block sizes (including ones
/// that never divide the lengths evenly).
TEST(PagedKvCache, RandomizedOpsBitExactVsContiguous) {
  for (const std::size_t block_tokens : {1, 3, 4, 7, 16}) {
    const std::size_t n_heads = 2;
    const std::size_t d_head = 3;
    BlockPool pool(pool_config(block_tokens, n_heads, d_head));
    PagedKvCache paged(pool, 0);
    kv::ContiguousKvCache contiguous(n_heads, d_head, /*capacity_hint=*/2);
    Rng rng(7 + block_tokens);

    std::size_t next_pos = 0;
    const auto check_equal = [&](std::size_t step) {
      ASSERT_EQ(paged.size(), contiguous.size()) << "step " << step;
      for (std::size_t t = 0; t < paged.size(); ++t) {
        ASSERT_EQ(paged.original_position(t), contiguous.original_position(t))
            << "step " << step;
        ASSERT_EQ(paged.key_row(t), contiguous.key_row(t)) << "step " << step;
        ASSERT_EQ(paged.value_row(t), contiguous.value_row(t))
            << "step " << step;
      }
      for (std::size_t h = 0; h < n_heads; ++h) {
        const auto ps = paged.scores(h);
        const auto cs = contiguous.scores(h);
        for (std::size_t t = 0; t < paged.size(); ++t) {
          ASSERT_EQ(ps[t], cs[t]) << "step " << step << " head " << h;
        }
      }
      ASSERT_EQ(paged.blocks_held(),
                (paged.size() + block_tokens - 1) / block_tokens)
          << "step " << step;
      ASSERT_EQ(pool.shard_stats(0).used_blocks, paged.blocks_held())
          << "step " << step;
    };

    for (std::size_t step = 0; step < 400; ++step) {
      const std::uint64_t op = rng.uniform_u64(10);
      if (op < 6 || paged.empty()) {
        std::vector<float> k(paged.row_width());
        std::vector<float> v(paged.row_width());
        for (auto& x : k) x = static_cast<float>(rng.normal());
        for (auto& x : v) x = static_cast<float>(rng.normal());
        next_pos += 1 + rng.uniform_u64(3);
        paged.append(k, v, next_pos);
        contiguous.append(k, v, next_pos);
      } else if (op < 7) {
        const std::size_t h = rng.uniform_u64(n_heads);
        const std::size_t idx = rng.uniform_u64(paged.size());
        const double val = rng.normal();
        paged.add_score(h, idx, val);
        contiguous.add_score(h, idx, val);
      } else if (op < 8) {
        const double f = 0.5 + 0.5 * rng.uniform();
        paged.damp_scores(f);
        contiguous.damp_scores(f);
      } else if (op < 9) {
        std::vector<std::size_t> keep;
        for (std::size_t t = 0; t < paged.size(); ++t) {
          if (rng.uniform_u64(3) > 0) keep.push_back(t);
        }
        paged.compact(keep);
        contiguous.compact(keep);
      } else {
        paged.clear();
        contiguous.clear();
      }
      check_equal(step);
    }
  }
}

TEST(PagedKvCache, RejectsOutOfRangeShard) {
  BlockPool pool(pool_config());
  EXPECT_THROW(PagedKvCache(pool, 1), std::invalid_argument);
}

}  // namespace
}  // namespace kf::mem
