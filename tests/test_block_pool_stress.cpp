// Randomized multi-threaded stress of the BlockPool: the regression net
// for the pool's concurrency contract (shard-mutex-guarded bookkeeping,
// lock-free slab-directory publication for payload access). Run under
// ThreadSanitizer in CI; single-threaded runs still exercise the
// invariants.
//
// Each worker loops: reserve a random claim on a random shard, allocate
// blocks against it, stamp and verify payloads (catches two owners
// aliasing one block and a torn slab publication alike), churn refcounts,
// release everything, unreserve. A dedicated observer hammers the stats
// accessors, asserting the per-shard invariant used <= reserved <=
// capacity on every consistent snapshot. After the join the pool must be
// empty: every block back on a free list, every reservation returned.
#include "mem/block_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

namespace kf::mem {
namespace {

constexpr std::size_t kShards = 3;
constexpr std::size_t kBlocksPerShard = 24;

BlockPoolConfig stress_config() {
  BlockPoolConfig cfg;
  cfg.n_shards = kShards;
  cfg.blocks_per_shard = kBlocksPerShard;
  cfg.block_tokens = 4;
  cfg.n_heads = 2;
  cfg.d_head = 3;
  return cfg;
}

// A value no other block's stamp collides with.
float stamp_of(BlockRef ref) {
  return static_cast<float>(ref.shard) * 1000.0F +
         static_cast<float>(ref.id) + 0.5F;
}

void stamp(BlockPool& pool, BlockRef ref) {
  const std::size_t heads = pool.config().n_heads;
  const std::size_t section = pool.config().block_tokens * pool.config().d_head;
  for (std::size_t h = 0; h < heads; ++h) {
    float* k = pool.keys(ref, h);
    float* v = pool.values(ref, h);
    for (std::size_t i = 0; i < section; ++i) {
      k[i] = stamp_of(ref);
      v[i] = -stamp_of(ref);
    }
  }
}

bool verify_stamp(const BlockPool& pool, BlockRef ref) {
  const std::size_t heads = pool.config().n_heads;
  const std::size_t section = pool.config().block_tokens * pool.config().d_head;
  for (std::size_t h = 0; h < heads; ++h) {
    const float* k = pool.keys(ref, h);
    const float* v = pool.values(ref, h);
    for (std::size_t i = 0; i < section; ++i) {
      if (k[i] != stamp_of(ref) || v[i] != -stamp_of(ref)) return false;
    }
  }
  return true;
}

TEST(BlockPoolStress, ConcurrentReserveAllocateChurnLeavesPoolEmpty) {
  BlockPool pool(stress_config());

  // One pre-shared block per shard: workers retain/release and read it
  // concurrently, stressing refcounts above 1 the way prefix-cache chains
  // do. Backed by a reservation so used <= reserved holds throughout.
  std::vector<BlockRef> shared;
  for (std::size_t s = 0; s < kShards; ++s) {
    ASSERT_TRUE(pool.try_reserve(s, 1));
    shared.push_back(pool.allocate(s));
    stamp(pool, shared.back());
  }

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 300;
  std::atomic<bool> failed{false};
  std::atomic<bool> stop_observer{false};

  const auto worker = [&](std::size_t tid) {
    std::mt19937 rng(static_cast<std::mt19937::result_type>(tid) + 1);
    std::uniform_int_distribution<std::size_t> shard_dist(0, kShards - 1);
    std::uniform_int_distribution<std::size_t> claim_dist(1, 3);
    for (std::size_t round = 0; round < kRounds && !failed; ++round) {
      const std::size_t s = shard_dist(rng);
      const std::size_t claim = claim_dist(rng);
      if (!pool.try_reserve(s, claim)) continue;  // shard contended: skip
      std::vector<BlockRef> mine;
      for (std::size_t i = 0; i < claim; ++i) {
        mine.push_back(pool.allocate(s));
        stamp(pool, mine.back());
      }
      // Refcount churn on an owned block and on the shared one.
      pool.retain(mine.front());
      pool.retain(shared[s]);
      if (!verify_stamp(pool, shared[s])) failed = true;
      pool.release(shared[s]);
      pool.release(mine.front());
      // Nobody else may have written our blocks: aliasing (a block handed
      // to two owners) or a mis-published slab shows up here.
      for (const BlockRef ref : mine) {
        if (!verify_stamp(pool, ref)) failed = true;
      }
      for (const BlockRef ref : mine) pool.release(ref);
      pool.unreserve(s, claim);
    }
  };

  // Stats observer: every consistent snapshot must satisfy the accounting
  // invariant; allocate/release never run outside a reservation here.
  const auto observer = [&] {
    while (!stop_observer) {
      for (std::size_t s = 0; s < kShards; ++s) {
        const ShardStats st = pool.shard_stats(s);
        if (st.used_blocks > st.reserved_blocks ||
            st.reserved_blocks > st.capacity_blocks) {
          failed = true;
        }
      }
      const PoolStats total = pool.stats();
      if (total.used_blocks > total.reserved_blocks) failed = true;
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  threads.emplace_back(observer);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(worker, t);
  }
  for (std::size_t t = 1; t < threads.size(); ++t) threads[t].join();
  stop_observer = true;
  threads.front().join();

  EXPECT_FALSE(failed) << "invariant violated or payload corrupted";

  // The shared chains survived the churn intact at refcount 1.
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(pool.refcount(shared[s]), 1u);
    EXPECT_TRUE(verify_stamp(pool, shared[s]));
    pool.release(shared[s]);
    pool.unreserve(s, 1);
  }

  // Empty pool: every block returned, every claim released, peaks sane.
  const PoolStats st = pool.stats();
  EXPECT_EQ(st.used_blocks, 0u);
  EXPECT_EQ(st.reserved_blocks, 0u);
  EXPECT_LE(st.peak_used_blocks, st.peak_reserved_blocks);
  EXPECT_LE(st.peak_reserved_blocks, kShards * kBlocksPerShard);
  for (std::size_t s = 0; s < kShards; ++s) {
    const ShardStats ss = pool.shard_stats(s);
    EXPECT_EQ(ss.used_blocks, 0u);
    EXPECT_EQ(ss.reserved_blocks, 0u);
    EXPECT_LE(ss.allocated_blocks, ss.capacity_blocks);
  }

  // Emptied means reusable: a full-capacity sweep still succeeds.
  std::vector<BlockRef> sweep;
  ASSERT_TRUE(pool.try_reserve(0, kBlocksPerShard));
  for (std::size_t i = 0; i < kBlocksPerShard; ++i) {
    sweep.push_back(pool.allocate(0));
  }
  for (const BlockRef ref : sweep) pool.release(ref);
  pool.unreserve(0, kBlocksPerShard);
}

// Unbounded shards grow by slabs while readers touch already-published
// payloads: the acquire/release slab-directory handshake under fire.
TEST(BlockPoolStress, ConcurrentSlabGrowthKeepsPublishedPayloadsStable) {
  BlockPoolConfig cfg = stress_config();
  cfg.n_shards = 1;
  cfg.blocks_per_shard = 0;  // unbounded: every carve goes through a slab
  BlockPool pool(cfg);

  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 100;  // > kBlocksPerSlab total: grows
  std::atomic<bool> failed{false};

  const auto worker = [&](std::size_t tid) {
    std::mt19937 rng(static_cast<std::mt19937::result_type>(tid) + 101);
    std::uniform_int_distribution<int> coin(0, 3);
    std::vector<BlockRef> mine;
    for (std::size_t i = 0; i < kPerThread && !failed; ++i) {
      mine.push_back(pool.allocate(0));
      stamp(pool, mine.back());
      // Re-read a random earlier block: its slab may have been published
      // long ago or by another thread a moment ago.
      const std::size_t pick = rng() % mine.size();
      if (!verify_stamp(pool, mine[pick])) failed = true;
      if (coin(rng) == 0 && mine.size() > 1) {
        pool.release(mine.back());
        mine.pop_back();
      }
    }
    for (const BlockRef ref : mine) pool.release(ref);
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(failed) << "payload corrupted across slab growth";
  EXPECT_EQ(pool.stats().used_blocks, 0u);
  EXPECT_GT(pool.stats().allocated_blocks, 64u);  // really grew past 1 slab
}

}  // namespace
}  // namespace kf::mem
