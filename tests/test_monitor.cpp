// Live-telemetry monitor: TimeSeries ring semantics, deterministic
// poll_once sampling, histogram window probes, the background thread
// polling a live Engine::run() (the TSan target for the monitor's locking
// contract), and the Prometheus / JSON exporters.
#include "obs/monitor.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "serve/engine.h"

namespace kf::obs {
namespace {

// ------------------------------------------------------------- time series

TEST(TimeSeries, AppendsUpToCapacity) {
  TimeSeries ts(4);
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.capacity(), 4u);
  ts.append(0.0, 10.0);
  ts.append(1.0, 20.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.dropped(), 0u);
  EXPECT_DOUBLE_EQ(ts.at(0).t, 0.0);
  EXPECT_DOUBLE_EQ(ts.at(1).value, 20.0);
  EXPECT_DOUBLE_EQ(ts.last(), 20.0);
  EXPECT_DOUBLE_EQ(ts.min(), 10.0);
  EXPECT_DOUBLE_EQ(ts.max(), 20.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 15.0);
}

TEST(TimeSeries, OverflowDropsOldestAndCounts) {
  TimeSeries ts(3);
  for (int i = 0; i < 7; ++i) {
    ts.append(static_cast<double>(i), static_cast<double>(i * 100));
  }
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.dropped(), 4u);
  // The retained window is the newest three samples, oldest first.
  EXPECT_DOUBLE_EQ(ts.at(0).t, 4.0);
  EXPECT_DOUBLE_EQ(ts.at(1).t, 5.0);
  EXPECT_DOUBLE_EQ(ts.at(2).t, 6.0);
  EXPECT_DOUBLE_EQ(ts.last(), 600.0);
  EXPECT_DOUBLE_EQ(ts.min(), 400.0);  // reductions cover the window only
  const std::vector<TimeSample> all = ts.samples();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all.front().t, 4.0);
}

TEST(TimeSeries, ZeroCapacityIsFlooredToOne) {
  TimeSeries ts(0);
  EXPECT_EQ(ts.capacity(), 1u);
  ts.append(0.0, 1.0);
  ts.append(1.0, 2.0);
  EXPECT_EQ(ts.size(), 1u);
  EXPECT_DOUBLE_EQ(ts.last(), 2.0);
  EXPECT_EQ(ts.dropped(), 1u);
}

// ----------------------------------------------------------------- monitor

TEST(Monitor, PollOnceSamplesEveryProbe) {
  Monitor monitor;
  int ticks = 0;
  monitor.add_probe("ticks", [&ticks] { return static_cast<double>(++ticks); });
  monitor.add_probe("constant", [] { return 42.0; });
  monitor.poll_once();
  monitor.poll_once();
  monitor.poll_once();
  EXPECT_EQ(monitor.polls(), 3u);
  const TimeSeries ticks_ts = monitor.series("ticks");
  ASSERT_EQ(ticks_ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks_ts.at(0).value, 1.0);
  EXPECT_DOUBLE_EQ(ticks_ts.at(2).value, 3.0);
  // Timestamps are relative to the first poll and nondecreasing.
  EXPECT_GE(ticks_ts.at(0).t, 0.0);
  EXPECT_LE(ticks_ts.at(0).t, ticks_ts.at(2).t);
  EXPECT_DOUBLE_EQ(monitor.series("constant").last(), 42.0);
  EXPECT_TRUE(monitor.series("no-such-probe").empty());
  const auto snap = monitor.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "ticks");  // registration order
}

TEST(Monitor, HistogramProbeReportsTheWindow) {
  Histogram hist;
  Monitor monitor;
  monitor.add_histogram_probe("lat", hist);

  for (int i = 0; i < 8; ++i) hist.record(1e-3);
  monitor.poll_once();
  for (int i = 0; i < 4; ++i) hist.record(64e-3);
  monitor.poll_once();

  const TimeSeries p50 = monitor.series("lat.window_p50_ms");
  const TimeSeries rate = monitor.series("lat.rate_per_s");
  ASSERT_EQ(p50.size(), 2u);
  ASSERT_EQ(rate.size(), 2u);
  // First window holds the 1 ms records, second only the 64 ms ones —
  // cumulative percentiles could never report a 64 ms median here.
  EXPECT_LT(p50.at(0).value, 2.0);
  EXPECT_GT(p50.at(1).value, 32.0);
  EXPECT_GT(rate.at(0).value, 0.0);
  EXPECT_GT(rate.at(1).value, 0.0);
  EXPECT_GE(monitor.series("lat.window_p99_ms").at(1).value,
            p50.at(1).value);
}

TEST(Monitor, HistogramProbeEmptyWindowIsZero) {
  Histogram hist;
  Monitor monitor;
  monitor.add_histogram_probe("lat", hist);
  monitor.poll_once();
  monitor.poll_once();  // nothing recorded in between
  EXPECT_DOUBLE_EQ(monitor.series("lat.rate_per_s").at(1).value, 0.0);
  EXPECT_DOUBLE_EQ(monitor.series("lat.window_p50_ms").at(1).value, 0.0);
}

TEST(Monitor, BackgroundThreadPollsOnItsPeriod) {
  Monitor monitor({.period_ms = 1.0});
  monitor.add_probe("one", [] { return 1.0; });
  EXPECT_FALSE(monitor.running());
  monitor.start();
  EXPECT_TRUE(monitor.running());
  // Sleep far longer than the period; the thread must have ticked.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  monitor.stop();
  EXPECT_FALSE(monitor.running());
  const std::uint64_t first_run = monitor.polls();
  EXPECT_GE(first_run, 2u);
  // Restart keeps the collected series and keeps appending.
  monitor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  monitor.stop();
  EXPECT_GT(monitor.polls(), first_run);
  EXPECT_EQ(monitor.series("one").size() + monitor.series("one").dropped(),
            monitor.polls());
}

// The acceptance-gate scenario: a Monitor on a 1 ms period (nominally
// 1000 Hz, comfortably past the 100 Hz floor) polling every standard
// engine probe while Engine::run() decodes on another thread. Runs under
// TSan in CI — any probe touching engine state outside its locking
// contract fails there.
TEST(Monitor, PollsLiveEngineRun) {
  model::ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.max_seq_len = 512;
  model::Transformer m(cfg);

  serve::EngineConfig ec;
  ec.scheduler.max_batch_size = 2;
  ec.scheduler.max_concurrent_tokens = 256;
  ec.paged.enabled = true;
  ec.paged.n_shards = 2;
  ec.paged.block_tokens = 8;
  ec.prefix.enabled = true;
  serve::Engine engine(m, ec);

  std::vector<serve::Request> requests(4);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = i;
    requests[i].arrival_step = i;
    requests[i].prompt.assign(24, static_cast<model::Token>((i * 7 + 3) % 64));
    requests[i].gen.max_new_tokens = 16;
    requests[i].gen.cache_ratio = 0.5;
  }

  Monitor monitor({.period_ms = 1.0});
  serve::add_engine_probes(monitor, engine);
  monitor.start();
  std::vector<serve::Response> responses;
  std::thread runner([&] { responses = engine.run(requests); });
  runner.join();
  // One deterministic poll after the run so the final sample reflects the
  // finished engine regardless of thread timing.
  monitor.poll_once();
  monitor.stop();

  ASSERT_EQ(responses.size(), 4u);
  EXPECT_GE(monitor.polls(), 1u);
  const serve::EngineStats st = engine.stats();
  const TimeSeries steps = monitor.series("engine.steps");
  ASSERT_FALSE(steps.empty());
  EXPECT_DOUBLE_EQ(steps.last(), static_cast<double>(st.steps));
  EXPECT_DOUBLE_EQ(monitor.series("engine.decoded_tokens").last(),
                   static_cast<double>(st.decoded_tokens));
  // Occupancy probes return to zero once the run drains.
  EXPECT_DOUBLE_EQ(monitor.series("engine.active_sequences").last(),
                   0.0);
  EXPECT_DOUBLE_EQ(monitor.series("engine.waiting_sequences").last(),
                   0.0);
  // Pool and prefix probes exist because paging + prefix cache are on.
  EXPECT_FALSE(monitor.series("pool.used_blocks").empty());
  EXPECT_FALSE(monitor.series("prefix.hit_rate").empty());
  // Histogram probes derived their window series.
  EXPECT_FALSE(monitor.series("step.rate_per_s").empty());
  EXPECT_FALSE(monitor.series("itl.window_p99_ms").empty());
}

// --------------------------------------------------------------- exporters

TEST(Export, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.counter("sched.admitted").add(7);
  reg.gauge("pool.frag").set(0.25);
  reg.histogram("serve.step_seconds").record(1e-3);
  reg.histogram("serve.step_seconds").record(2e-3);

  const std::string text = to_prometheus(reg);
  // Counters: TYPE line + _total suffix, dots sanitized to underscores.
  EXPECT_NE(text.find("# TYPE kf_sched_admitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("kf_sched_admitted_total 7"), std::string::npos);
  // Gauges keep their value.
  EXPECT_NE(text.find("# TYPE kf_pool_frag gauge"), std::string::npos);
  EXPECT_NE(text.find("kf_pool_frag 0.25"), std::string::npos);
  // Histograms: TYPE line, at least one bucket, the mandatory +Inf
  // bucket, _sum and _count.
  EXPECT_NE(text.find("# TYPE kf_serve_step_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("kf_serve_step_seconds_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("kf_serve_step_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("kf_serve_step_seconds_sum"), std::string::npos);
  // Every line is either a comment or `name value` — no empty names.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    EXPECT_EQ(line.rfind("kf_", 0), 0u) << line;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST(Export, PrometheusBucketCountsAreCumulative) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  for (int i = 0; i < 5; ++i) h.record(1e-3);
  for (int i = 0; i < 3; ++i) h.record(50e-3);
  const std::string text = to_prometheus(reg);
  // Collect the bucket counts in order; they must be nondecreasing and
  // end at the total count.
  std::istringstream lines(text);
  std::string line;
  std::uint64_t prev = 0;
  std::uint64_t last = 0;
  std::size_t buckets = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("kf_lat_bucket", 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    const std::uint64_t v = std::stoull(line.substr(space + 1));
    EXPECT_GE(v, prev) << line;
    prev = v;
    last = v;
    ++buckets;
  }
  EXPECT_GE(buckets, 3u);  // 1 ms bucket(s) + 50 ms bucket(s) + +Inf
  EXPECT_EQ(last, 8u);
}

TEST(Export, TimeseriesJsonRoundTrip) {
  Monitor monitor({.period_ms = 2.5, .capacity = 8});
  int n = 0;
  monitor.add_probe("x", [&n] { return static_cast<double>(n++); });
  for (int i = 0; i < 3; ++i) monitor.poll_once();

  const std::string json = to_timeseries_json(monitor);
  EXPECT_NE(json.find("\"period_ms\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"polls\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"x\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"samples\": ["), std::string::npos);

  const std::string path = testing::TempDir() + "kf_timeseries.json";
  ASSERT_TRUE(write_timeseries_json(monitor, path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), json);
  std::remove(path.c_str());
}

TEST(Export, WritePrometheusToFile) {
  MetricsRegistry reg;
  reg.counter("c").add();
  const std::string path = testing::TempDir() + "kf_prom.txt";
  ASSERT_TRUE(write_prometheus(reg, path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), to_prometheus(reg));
  std::remove(path.c_str());
  EXPECT_FALSE(write_prometheus(reg, "/no/such/dir/kf_prom.txt"));
}

}  // namespace
}  // namespace kf::obs
