// Engine-level prefix-cache acceptance suite:
//   - shared-prefix decode is bit-exact vs unshared (prefix cache on vs
//     off produces token-for-token identical outputs) across eviction
//     policies and positional families;
//   - randomized churn leaks nothing: after every run the only blocks off
//     the free lists are the index's retained chains, and clearing the
//     cache returns the pool to zero used / zero reserved (used == 0 is
//     equivalent to refcount 0 on every block — the pool counts a block
//     as used exactly while its refcount is nonzero);
//   - a few-shot-style burst of 8 requests sharing one context skips more
//     than half of all prefill tokens.
#include "serve/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"
#include "kvcache/policy_factory.h"

namespace kf::serve {
namespace {

using model::GenerationConfig;
using model::ModelConfig;
using model::PositionalKind;
using model::Token;
using model::Transformer;

ModelConfig tiny_config(PositionalKind pos = PositionalKind::kRoPE) {
  ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.max_seq_len = 512;
  cfg.positional = pos;
  return cfg;
}

std::vector<Token> make_tokens(std::size_t n, std::uint64_t seed) {
  std::vector<Token> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<Token>((i * 13 + 5 + seed * 11) % 64);
  }
  return p;
}

/// `n` requests sharing one `ctx_len`-token context, each with a unique
/// tail, arrivals staggered by `stagger` engine steps.
std::vector<Request> shared_context_requests(std::size_t n,
                                             std::size_t ctx_len,
                                             std::size_t stagger = 0) {
  const std::vector<Token> ctx = make_tokens(ctx_len, 7);
  std::vector<Request> requests;
  for (std::size_t i = 0; i < n; ++i) {
    Request req;
    req.id = i;
    req.prompt = ctx;
    const auto tail = make_tokens(8 + (i % 3) * 4, 100 + i);
    req.prompt.insert(req.prompt.end(), tail.begin(), tail.end());
    req.gen.max_new_tokens = 6 + (i % 4);
    req.gen.cache_ratio = 0.5;
    req.arrival_step = i * stagger;
    req.shared_prefix_hint = ctx_len;
    requests.push_back(std::move(req));
  }
  return requests;
}

EngineConfig paged_config(kv::PolicyKind kind, bool prefix_on,
                          std::size_t n_shards = 2) {
  EngineConfig ec;
  ec.policy.kind = kind;
  ec.scheduler.max_batch_size = 4;
  ec.paged.enabled = true;
  ec.paged.n_shards = n_shards;
  ec.paged.block_tokens = 8;
  ec.prefix.enabled = prefix_on;
  return ec;
}

class PrefixParity
    : public ::testing::TestWithParam<
          std::tuple<PositionalKind, kv::PolicyKind>> {};

TEST_P(PrefixParity, SharedPrefixDecodeIsBitExactVsUnshared) {
  const auto [pos, kind] = GetParam();
  Transformer model(tiny_config(pos));
  const auto requests = shared_context_requests(/*n=*/5, /*ctx_len=*/48,
                                                /*stagger=*/2);

  Engine off(model, paged_config(kind, /*prefix_on=*/false));
  const auto expected = off.run(requests);

  Engine on(model, paged_config(kind, /*prefix_on=*/true));
  const auto got = on.run(requests);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].tokens, expected[i].tokens) << "req " << i;
  }
  // The cache actually engaged: every request after the first found the
  // context (it was inserted by the first prefill of the run).
  EXPECT_GE(on.stats().prefix_hits, 1u);
  EXPECT_GT(on.stats().prefix_tokens_reused, 0u);
  EXPECT_GT(on.stats().prefix_blocks_shared, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesTimesFamilies, PrefixParity,
    ::testing::Combine(::testing::Values(PositionalKind::kRoPE,
                                         PositionalKind::kALiBi,
                                         PositionalKind::kLearned),
                       ::testing::Values(kv::PolicyKind::kFull,
                                         kv::PolicyKind::kWindow,
                                         kv::PolicyKind::kRandom,
                                         kv::PolicyKind::kStreamingLLM,
                                         kv::PolicyKind::kH2O,
                                         kv::PolicyKind::kKeyformer)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_" +
             kv::to_string(std::get<1>(info.param));
    });

TEST(PrefixSharing, CrossRunReuseStaysBitExact) {
  // The index outlives run(): a second identical run hits on every
  // eligible prompt (including the first) and still reproduces the same
  // tokens.
  Transformer model(tiny_config());
  Engine engine(model, paged_config(kv::PolicyKind::kKeyformer, true));
  const auto requests = shared_context_requests(4, 48);
  const auto first = engine.run(requests);
  EXPECT_GE(engine.stats().prefix_hits, 3u);  // all but the inserting one
  const auto second = engine.run(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(second[i].tokens, first[i].tokens) << "req " << i;
  }
  EXPECT_EQ(engine.stats().prefix_hits, 4u);   // now even the first hits
  EXPECT_EQ(engine.stats().prefix_misses, 0u);
}

TEST(PrefixSharing, EightWayBurstSkipsOverHalfThePrefillTokens) {
  // The acceptance bar: 8 requests sharing one few-shot-sized context
  // must skip >= 50% of all prefill tokens.
  Transformer model(tiny_config());
  const auto requests = shared_context_requests(/*n=*/8, /*ctx_len=*/96);
  std::size_t total_prompt = 0;
  for (const auto& r : requests) total_prompt += r.prompt.size();

  EngineConfig ec = paged_config(kv::PolicyKind::kKeyformer, true);
  ec.scheduler.max_batch_size = 8;
  Engine engine(model, ec);
  const auto responses = engine.run(requests);
  ASSERT_EQ(responses.size(), 8u);

  const auto& st = engine.stats();
  EXPECT_EQ(st.prefix_hits, 7u);
  EXPECT_EQ(st.prefix_misses, 1u);
  EXPECT_EQ(st.prefix_tokens_reused, 7u * 96u);
  EXPECT_EQ(st.prefilled_tokens + st.prefix_tokens_reused, total_prompt);
  EXPECT_GE(static_cast<double>(st.prefix_tokens_reused),
            0.5 * static_cast<double>(total_prompt));
  EXPECT_DOUBLE_EQ(st.prefix_hit_rate(), 7.0 / 8.0);
}

TEST(PrefixSharing, RandomizedChurnLeaksNoBlocksOrRefcounts) {
  // Randomized mixed workload (shared contexts of two lengths, unique
  // prompts, staggered arrivals, mixed generation lengths) over several
  // runs. After every run: zero reservations and zero used blocks beyond
  // the index's retained chains; after clearing the cache: a completely
  // empty pool — used == 0, reserved == 0, which the pool's accounting
  // makes equivalent to refcount 0 on every block.
  Transformer model(tiny_config());
  EngineConfig ec = paged_config(kv::PolicyKind::kKeyformer, true);
  ec.prefix.max_blocks = 48;
  Engine engine(model, ec);
  Rng rng(4242);

  for (std::size_t round = 0; round < 4; ++round) {
    std::vector<Request> requests;
    const std::vector<Token> ctx_a = make_tokens(40, 1);
    const std::vector<Token> ctx_b = make_tokens(24, 2);
    for (std::size_t i = 0; i < 7; ++i) {
      Request req;
      req.id = i;
      const std::uint64_t flavor = rng.uniform_u64(3);
      if (flavor == 0) {
        req.prompt = ctx_a;
        req.shared_prefix_hint = ctx_a.size();
      } else if (flavor == 1) {
        req.prompt = ctx_b;
        req.shared_prefix_hint = ctx_b.size();
      }
      const auto tail = make_tokens(6 + rng.uniform_u64(20), 50 + i);
      req.prompt.insert(req.prompt.end(), tail.begin(), tail.end());
      req.gen.max_new_tokens = 3 + rng.uniform_u64(8);
      req.gen.cache_ratio = 0.5;
      req.arrival_step = rng.uniform_u64(6);
      requests.push_back(std::move(req));
    }
    engine.run(requests);

    ASSERT_NE(engine.pool(), nullptr);
    ASSERT_NE(engine.prefix_index(), nullptr);
    const mem::PoolStats ps = engine.pool()->stats();
    const std::size_t held = engine.prefix_index()->blocks_held();
    EXPECT_EQ(ps.used_blocks, held) << "round " << round;
    EXPECT_EQ(ps.reserved_blocks, held) << "round " << round;
    EXPECT_LE(held, ec.prefix.max_blocks) << "round " << round;
  }

  engine.clear_prefix_cache();
  const mem::PoolStats ps = engine.pool()->stats();
  EXPECT_EQ(engine.prefix_index()->blocks_held(), 0u);
  EXPECT_EQ(ps.used_blocks, 0u);
  EXPECT_EQ(ps.reserved_blocks, 0u);
}

TEST(PrefixSharing, RequiresPagedMemoryAndUndampedScores) {
  Transformer model(tiny_config());
  EngineConfig ec;
  ec.prefix.enabled = true;
  EXPECT_THROW(Engine(model, ec), std::invalid_argument);

  EngineConfig damped = paged_config(kv::PolicyKind::kKeyformer, true);
  damped.policy.keyformer.score.damping = 0.95;
  EXPECT_THROW(Engine(model, damped), std::invalid_argument);

  EngineConfig h2o = paged_config(kv::PolicyKind::kH2O, true);
  h2o.policy.h2o_damping = 0.9;
  EXPECT_THROW(Engine(model, h2o), std::invalid_argument);
}

TEST(PrefixSharing, CallerOwnedPoliciesBypassTheCache) {
  // A request bringing its own policy instance must not adopt or insert:
  // the cached score snapshots belong to the engine's policy config.
  Transformer model(tiny_config());
  Engine engine(model, paged_config(kv::PolicyKind::kKeyformer, true));
  auto requests = shared_context_requests(2, 48);
  auto own_a = kv::make_policy(kv::PolicyKind::kKeyformer);
  auto own_b = kv::make_policy(kv::PolicyKind::kKeyformer);
  requests[0].policy = own_a.get();
  requests[1].policy = own_b.get();
  engine.run(requests);
  EXPECT_EQ(engine.stats().prefix_hits, 0u);
  EXPECT_EQ(engine.stats().prefix_misses, 0u);
  EXPECT_EQ(engine.prefix_index()->stats().insertions, 0u);
}

TEST(PrefixSharing, StaggeredArrivalsNeverChargeMoreThanUnshared) {
  // With the cache on, later same-context arrivals charge at most their
  // unshared block demand, so the reservation high-water mark can only
  // drop (or stay) relative to the cache-off run of the same workload.
  Transformer model(tiny_config());
  const auto requests = shared_context_requests(6, 64, /*stagger=*/3);

  Engine off(model, paged_config(kv::PolicyKind::kKeyformer, false));
  off.run(requests);
  Engine on(model, paged_config(kv::PolicyKind::kKeyformer, true));
  on.run(requests);
  EXPECT_LE(on.stats().max_blocks_in_use, off.stats().max_blocks_in_use);
  EXPECT_GE(on.stats().prefix_hits, 1u);
}

}  // namespace
}  // namespace kf::serve
