#include "model/weights.h"

#include <gtest/gtest.h>

#include <cmath>

namespace kf::model {
namespace {

TEST(ModelConfig, ValidateCatchesBadDims) {
  ModelConfig c;
  c.d_model = 130;
  c.n_heads = 4;  // not divisible
  EXPECT_THROW(c.validate(), std::invalid_argument);

  ModelConfig rope;
  rope.positional = PositionalKind::kRoPE;
  rope.d_model = 12;
  rope.n_heads = 4;  // d_head == 3, odd -> invalid for RoPE
  EXPECT_THROW(rope.validate(), std::invalid_argument);

  ModelConfig tiny_vocab;
  tiny_vocab.vocab_size = 4;
  EXPECT_THROW(tiny_vocab.validate(), std::invalid_argument);
}

TEST(ModelConfig, PresetsAreValid) {
  EXPECT_NO_THROW(ModelConfig::gptj_like().validate());
  EXPECT_NO_THROW(ModelConfig::cerebras_like().validate());
  EXPECT_NO_THROW(ModelConfig::mpt_like().validate());
  EXPECT_NO_THROW(ModelConfig::mpt_storywriter_like().validate());
}

TEST(ModelConfig, PresetsUseDistinctPositionalFamilies) {
  EXPECT_EQ(ModelConfig::gptj_like().positional, PositionalKind::kRoPE);
  EXPECT_EQ(ModelConfig::cerebras_like().positional,
            PositionalKind::kLearned);
  EXPECT_EQ(ModelConfig::mpt_like().positional, PositionalKind::kALiBi);
}

TEST(ModelConfig, SalientRangeMatchesTokenClassConvention) {
  // data::TokenClasses uses the same formula; this guards the coupling.
  ModelConfig c;
  c.vocab_size = 512;
  EXPECT_EQ(c.salient_begin(), 4u);
  EXPECT_EQ(c.salient_end(), 4u + 128u);
  c.vocab_size = 256;
  EXPECT_EQ(c.salient_end(), 4u + 64u);
}

TEST(Weights, DeterministicForSameSeed) {
  const ModelConfig cfg = ModelConfig::gptj_like();
  const ModelWeights a = build_weights(cfg);
  const ModelWeights b = build_weights(cfg);
  ASSERT_EQ(a.embedding.size(), b.embedding.size());
  for (std::size_t i = 0; i < a.embedding.size(); ++i) {
    EXPECT_EQ(a.embedding.span()[i], b.embedding.span()[i]);
  }
  for (std::size_t i = 0; i < a.layers[0].wq.size(); ++i) {
    EXPECT_EQ(a.layers[0].wq.span()[i], b.layers[0].wq.span()[i]);
  }
}

TEST(Weights, SeedChangesWeights) {
  ModelConfig cfg = ModelConfig::gptj_like();
  const ModelWeights a = build_weights(cfg);
  cfg.weight_seed += 1;
  const ModelWeights b = build_weights(cfg);
  bool differs = false;
  for (std::size_t i = 0; i < a.embedding.size() && !differs; ++i) {
    differs = a.embedding.span()[i] != b.embedding.span()[i];
  }
  EXPECT_TRUE(differs);
}

TEST(Weights, EmbeddingRowsUnitNorm) {
  const ModelWeights w = build_weights(ModelConfig::gptj_like());
  for (std::size_t r = 0; r < w.embedding.dim(0); r += 37) {
    double norm2 = 0.0;
    for (const float v : w.embedding.row(r)) {
      norm2 += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(norm2, 1.0, 1e-4);
  }
}

TEST(Weights, LmHeadIsRawWithoutSalience) {
  // Salient embeddings share the salience direction; lm_head rows must not
  // (they are the pre-mixing raws). Mean pairwise dot of salient embedding
  // rows exceeds that of lm_head rows.
  const ModelConfig cfg = ModelConfig::gptj_like();
  const ModelWeights w = build_weights(cfg);
  double emb_dot = 0.0, head_dot = 0.0;
  int pairs = 0;
  for (std::size_t a = cfg.salient_begin(); a < cfg.salient_begin() + 20;
       ++a) {
    for (std::size_t b = a + 1; b < cfg.salient_begin() + 20; ++b) {
      double de = 0.0, dh = 0.0;
      for (std::size_t j = 0; j < cfg.d_model; ++j) {
        de += static_cast<double>(w.embedding.at(a, j)) *
              w.embedding.at(b, j);
        dh += static_cast<double>(w.lm_head.at(a, j)) * w.lm_head.at(b, j);
      }
      emb_dot += de;
      head_dot += dh;
      ++pairs;
    }
  }
  EXPECT_GT(emb_dot / pairs, head_dot / pairs + 0.1);
}

TEST(Weights, LearnedPositionalTableOnlyForCerebras) {
  EXPECT_GT(build_weights(ModelConfig::cerebras_like()).pos_embedding.size(),
            0u);
  EXPECT_EQ(build_weights(ModelConfig::gptj_like()).pos_embedding.size(), 0u);
  EXPECT_EQ(build_weights(ModelConfig::mpt_like()).pos_embedding.size(), 0u);
}

TEST(Weights, LearnedPositionsAreSmooth) {
  const ModelWeights w = build_weights(ModelConfig::cerebras_like());
  // Adjacent positions are more similar than distant ones.
  const auto dist2 = [&](std::size_t a, std::size_t b) {
    double acc = 0.0;
    for (std::size_t j = 0; j < w.pos_embedding.dim(1); ++j) {
      const double d = static_cast<double>(w.pos_embedding.at(a, j)) -
                       w.pos_embedding.at(b, j);
      acc += d * d;
    }
    return acc;
  };
  EXPECT_LT(dist2(100, 101), dist2(100, 400));
}

TEST(Weights, ParameterCountPositive) {
  const ModelWeights w = build_weights(ModelConfig::gptj_like());
  EXPECT_GT(w.parameter_count(), 100000u);
}

TEST(Weights, LayerCountMatchesConfig) {
  const ModelConfig cfg = ModelConfig::mpt_like();
  const ModelWeights w = build_weights(cfg);
  EXPECT_EQ(w.layers.size(), cfg.n_layers);
}

TEST(HeadRoles, CycleCoversAllRoles) {
  bool content = false, positional = false, mixing = false;
  for (std::size_t h = 0; h < 3; ++h) {
    switch (head_role(0, h)) {
      case HeadRole::kContent: content = true; break;
      case HeadRole::kPositional: positional = true; break;
      case HeadRole::kMixing: mixing = true; break;
    }
  }
  EXPECT_TRUE(content && positional && mixing);
}

TEST(HeadRoles, AlibiContentHeadsGetFlattestSlopes) {
  const ModelConfig cfg = ModelConfig::mpt_like();  // 8 heads
  EXPECT_EQ(head_role_for(cfg, 0, 0), HeadRole::kPositional);
  EXPECT_EQ(head_role_for(cfg, 0, 1), HeadRole::kPositional);
  EXPECT_EQ(head_role_for(cfg, 0, 6), HeadRole::kContent);
  EXPECT_EQ(head_role_for(cfg, 0, 7), HeadRole::kContent);
  EXPECT_EQ(head_role_for(cfg, 0, 3), HeadRole::kMixing);
}

TEST(Weights, RandomStyleProducesDenseMatrices) {
  ModelConfig cfg = ModelConfig::gptj_like();
  cfg.weight_style = WeightStyle::kRandom;
  const ModelWeights w = build_weights(cfg);
  // No identity structure: diagonal should not dominate.
  double diag = 0.0, off = 0.0;
  const Tensor& wq = w.layers[0].wq;
  for (std::size_t i = 0; i < cfg.d_model; ++i) {
    diag += std::abs(wq.at(i, i));
    off += std::abs(wq.at(i, (i + 1) % cfg.d_model));
  }
  EXPECT_LT(diag, 3.0 * off);
}

}  // namespace
}  // namespace kf::model
