#include "serve/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.h"
#include "kvcache/policy_factory.h"
#include "model/generator.h"

namespace kf::serve {
namespace {

using model::GenerationConfig;
using model::ModelConfig;
using model::PositionalKind;
using model::Token;
using model::Transformer;

ModelConfig tiny_config(PositionalKind pos = PositionalKind::kRoPE) {
  ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.max_seq_len = 512;
  cfg.positional = pos;
  return cfg;
}

std::vector<Token> make_prompt(std::size_t n, std::uint64_t seed = 0) {
  std::vector<Token> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<Token>((i * 11 + 3 + seed * 7) % 64);
  }
  return p;
}

/// The classic pre-engine single-sequence loop, kept verbatim as the
/// golden reference the Engine must reproduce token for token.
std::vector<Token> reference_generate(Transformer& model,
                                      std::span<const Token> prompt,
                                      kv::EvictionPolicy& policy,
                                      const GenerationConfig& cfg) {
  policy.set_budget(
      kv::make_budget(prompt.size(), cfg.cache_ratio, cfg.recent_ratio));
  kv::SequenceInfo info;
  info.prompt_len = prompt.size();
  info.total_steps = cfg.max_new_tokens;
  info.n_layers = model.config().n_layers;
  info.n_heads = model.config().n_heads;
  policy.begin_sequence(info);

  model.reset();
  const Tensor prompt_logits =
      model.prefill(prompt, policy, cfg.max_new_tokens);

  std::vector<Token> tokens;
  const auto recent_window = [&]() -> std::span<const Token> {
    const std::size_t n = tokens.size();
    const std::size_t w =
        cfg.repetition_window == 0 ? n : std::min(n, cfg.repetition_window);
    return {tokens.data() + (n - w), w};
  };

  Token next = model::select_greedy(prompt_logits.row(prompt.size() - 1),
                                    recent_window(), cfg.repetition_penalty,
                                    cfg.banned_tokens);
  for (std::size_t t = 1; t <= cfg.max_new_tokens; ++t) {
    tokens.push_back(next);
    if (cfg.eos_token >= 0 && next == cfg.eos_token) break;
    if (tokens.size() >= cfg.max_new_tokens) break;
    const std::size_t position = prompt.size() + t - 1;
    const std::vector<float> logits =
        model.decode(next, position, t, cfg.max_new_tokens, policy);
    next = model::select_greedy(logits, recent_window(),
                                cfg.repetition_penalty, cfg.banned_tokens);
  }
  return tokens;
}

class EngineParity
    : public ::testing::TestWithParam<
          std::tuple<PositionalKind, kv::PolicyKind>> {};

TEST_P(EngineParity, BatchOfOneMatchesReferenceLoopTokenExactly) {
  const auto [pos, kind] = GetParam();
  Transformer model(tiny_config(pos));

  GenerationConfig g;
  g.max_new_tokens = 12;
  g.cache_ratio = kind == kv::PolicyKind::kFull ? 1.0 : 0.5;
  const auto prompt = make_prompt(32);

  auto ref_policy = kv::make_policy(kind);
  const std::vector<Token> expected =
      reference_generate(model, prompt, *ref_policy, g);

  EngineConfig ec;
  ec.policy.kind = kind;
  Engine engine(model, ec);
  Request req;
  req.prompt = prompt;
  req.gen = g;
  const auto responses = engine.run({&req, 1});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].tokens, expected);
  EXPECT_EQ(responses[0].prompt_len, prompt.size());
  EXPECT_EQ(responses[0].finish, FinishReason::kLength);
  EXPECT_GT(responses[0].prefill_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesTimesFamilies, EngineParity,
    ::testing::Combine(::testing::Values(PositionalKind::kRoPE,
                                         PositionalKind::kALiBi,
                                         PositionalKind::kLearned),
                       ::testing::Values(kv::PolicyKind::kFull,
                                         kv::PolicyKind::kWindow,
                                         kv::PolicyKind::kRandom,
                                         kv::PolicyKind::kStreamingLLM,
                                         kv::PolicyKind::kH2O,
                                         kv::PolicyKind::kKeyformer)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_" +
             kv::to_string(std::get<1>(info.param));
    });

TEST(Engine, GenerateIsABatchOfOneClient) {
  // generate() routes through the Engine; its result must carry the same
  // tokens as a direct engine run with the same policy configuration.
  Transformer model(tiny_config());
  GenerationConfig g;
  g.max_new_tokens = 10;
  g.cache_ratio = 0.5;
  const auto prompt = make_prompt(24);

  auto policy = kv::make_policy(kv::PolicyKind::kKeyformer);
  const auto direct = model::generate(model, prompt, *policy, g);

  EngineConfig ec;
  ec.policy.kind = kv::PolicyKind::kKeyformer;
  Engine engine(model, ec);
  Request req;
  req.prompt = prompt;
  req.gen = g;
  const auto responses = engine.run({&req, 1});
  EXPECT_EQ(responses[0].tokens, direct.tokens);
}

TEST(Engine, MixedBatchSequencesDoNotPerturbEachOther) {
  // Randomized continuous-batching run: mixed prompt lengths, staggered
  // arrivals, mixed generation lengths — every request's token stream must
  // be identical to its solo batch-of-one run, and per-sequence budget
  // invariants must hold throughout.
  Transformer model(tiny_config());
  Rng rng(123);

  std::vector<Request> requests;
  for (std::size_t i = 0; i < 7; ++i) {
    Request req;
    req.id = i;
    req.prompt = make_prompt(12 + rng.uniform_u64(30), /*seed=*/i);
    req.gen.max_new_tokens = 4 + rng.uniform_u64(10);
    req.gen.cache_ratio = 0.5;
    req.arrival_step = rng.uniform_u64(6);
    requests.push_back(std::move(req));
  }

  EngineConfig ec;
  ec.policy.kind = kv::PolicyKind::kKeyformer;
  ec.scheduler.max_batch_size = 4;
  ec.scheduler.max_concurrent_tokens = 120;

  Engine engine(model, ec);
  const auto mixed = engine.run(requests);
  ASSERT_EQ(mixed.size(), requests.size());
  EXPECT_LE(engine.stats().max_batch, 4u);
  EXPECT_LE(engine.stats().max_tokens_in_use, 120u);
  EXPECT_GT(engine.stats().decoded_tokens, 0u);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    // Budget invariants per sequence.
    const auto& r = mixed[i];
    const kv::CacheBudget budget = kv::make_budget(
        requests[i].prompt.size(), requests[i].gen.cache_ratio);
    EXPECT_EQ(r.budget.max_tokens, budget.max_tokens) << "req " << i;
    for (const std::size_t size : r.final_cache_sizes) {
      EXPECT_LE(size, std::max(budget.max_tokens, requests[i].prompt.size()))
          << "req " << i;
    }
    EXPECT_LE(r.peak_cache_tokens,
              std::max(requests[i].prompt.size(), budget.max_tokens + 1))
        << "req " << i;
    EXPECT_EQ(r.tokens.size(), requests[i].gen.max_new_tokens)
        << "req " << i;

    // Solo run of the same request: identical tokens.
    Engine solo(model, ec);
    Request alone = requests[i];
    alone.arrival_step = 0;
    const auto solo_resp = solo.run({&alone, 1});
    EXPECT_EQ(r.tokens, solo_resp[0].tokens) << "req " << i;
  }
}

TEST(Engine, MixedBatchDeterministicAcrossRuns) {
  Transformer model(tiny_config(PositionalKind::kALiBi));
  std::vector<Request> requests;
  for (std::size_t i = 0; i < 5; ++i) {
    Request req;
    req.prompt = make_prompt(16 + 4 * i, i);
    req.gen.max_new_tokens = 6 + i;
    req.gen.cache_ratio = 0.6;
    req.arrival_step = i / 2;
    requests.push_back(std::move(req));
  }
  EngineConfig ec;
  ec.scheduler.max_batch_size = 3;
  Engine engine(model, ec);
  const auto a = engine.run(requests);
  const auto b = engine.run(requests);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tokens, b[i].tokens) << "req " << i;
  }
}

TEST(Engine, EosRetiresSequenceMidBatchWithoutPerturbingOthers) {
  Transformer model(tiny_config());
  // Probe run to learn the first generated token of request 0, then make
  // that token its eos so it retires after one token while others run on.
  Request probe;
  probe.prompt = make_prompt(20, 0);
  probe.gen.max_new_tokens = 8;
  Engine engine(model, EngineConfig{});
  const auto probe_resp = engine.run({&probe, 1});
  ASSERT_FALSE(probe_resp[0].tokens.empty());

  std::vector<Request> requests(3);
  for (std::size_t i = 0; i < 3; ++i) {
    requests[i].id = i;
    requests[i].prompt = make_prompt(20, i);
    requests[i].gen.max_new_tokens = 8;
  }
  requests[0].gen.eos_token = probe_resp[0].tokens[0];

  const auto mixed = engine.run(requests);
  EXPECT_EQ(mixed[0].tokens.size(), 1u);
  EXPECT_EQ(mixed[0].finish, FinishReason::kEos);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(mixed[i].tokens.size(), 8u);
    Engine solo(model, EngineConfig{});
    const auto solo_resp = solo.run({&requests[i], 1});
    EXPECT_EQ(mixed[i].tokens, solo_resp[0].tokens) << "req " << i;
  }
}

TEST(Engine, LateArrivalJoinsMidStream) {
  Transformer model(tiny_config());
  std::vector<Request> requests(2);
  requests[0].prompt = make_prompt(16, 0);
  requests[0].gen.max_new_tokens = 10;
  requests[1].prompt = make_prompt(16, 1);
  requests[1].gen.max_new_tokens = 4;
  requests[1].arrival_step = 5;  // joins while request 0 is decoding

  Engine engine(model, EngineConfig{});
  const auto responses = engine.run(requests);
  EXPECT_EQ(responses[0].tokens.size(), 10u);
  EXPECT_EQ(responses[1].tokens.size(), 4u);
  EXPECT_GE(responses[1].first_decode_step, 5u);
  // The latecomer's tokens match its solo run regardless of the join.
  Engine solo(model, EngineConfig{});
  Request alone = requests[1];
  alone.arrival_step = 0;
  const auto solo_resp = solo.run({&alone, 1});
  EXPECT_EQ(responses[1].tokens, solo_resp[0].tokens);
}

TEST(Engine, ZeroMaxNewTokensFinishesWithoutDecoding) {
  Transformer model(tiny_config());
  Request req;
  req.prompt = make_prompt(8);
  req.gen.max_new_tokens = 0;
  Engine engine(model, EngineConfig{});
  const auto responses = engine.run({&req, 1});
  EXPECT_TRUE(responses[0].tokens.empty());
  EXPECT_EQ(responses[0].finish, FinishReason::kLength);
  EXPECT_EQ(engine.stats().steps, 0u);
}

TEST(Engine, RejectsEmptyPromptAndBatchKeepsDecoding) {
  // An empty prompt is contained as a kRejected response — never an
  // exception — and the valid request next to it decodes normally.
  Transformer model(tiny_config());
  Engine engine(model, EngineConfig{});
  std::vector<Request> requests(2);
  // requests[0]: empty prompt.
  requests[1].prompt = make_prompt(8);
  requests[1].gen.max_new_tokens = 4;
  const auto responses = engine.run(requests);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].finish, FinishReason::kRejected);
  EXPECT_FALSE(responses[0].error.empty());
  EXPECT_TRUE(responses[0].tokens.empty());
  EXPECT_NE(responses[1].finish, FinishReason::kRejected);
  EXPECT_EQ(responses[1].tokens.size(), 4u);
  EXPECT_EQ(engine.stats().rejections, 1u);
}

TEST(Engine, RejectsExternalKvStateWithWrongGeometry) {
  Transformer model(tiny_config());  // 2 layers, 2 heads, d_head 8
  Engine engine(model, EngineConfig{});
  Request req;
  req.prompt = make_prompt(8);
  req.gen.max_new_tokens = 2;

  // Wrong layer count.
  kv::SequenceKvState wrong_layers(1, 2, 8);
  req.kv_state = &wrong_layers;
  auto responses = engine.run({&req, 1});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].finish, FinishReason::kRejected);
  EXPECT_FALSE(responses[0].error.empty());

  // Same layer count and same row width (4x4 == 2x8 == 16 floats), but a
  // different head split — must be rejected, not silently misread.
  kv::SequenceKvState wrong_split(2, 4, 4);
  req.kv_state = &wrong_split;
  responses = engine.run({&req, 1});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].finish, FinishReason::kRejected);

  // Matching geometry passes.
  kv::SequenceKvState ok(2, 2, 8);
  req.kv_state = &ok;
  responses = engine.run({&req, 1});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[0].finish, FinishReason::kRejected);
  EXPECT_EQ(responses[0].tokens.size(), 2u);
}

TEST(Engine, RejectsSharedKvStateOrPolicyAcrossRequests) {
  // Two live requests on one kv_state (or one policy) would clobber each
  // other's caches/score state; the engine rejects the duplicates up
  // front (first claimant wins) instead of failing deep inside
  // step_batch after wasted prefill work.
  Transformer model(tiny_config());
  Engine engine(model, EngineConfig{});
  std::vector<Request> requests(2);
  requests[0].prompt = make_prompt(8, 0);
  requests[0].gen.max_new_tokens = 2;
  requests[1].prompt = make_prompt(8, 1);
  requests[1].gen.max_new_tokens = 2;

  kv::SequenceKvState shared(2, 2, 8);
  requests[0].kv_state = &shared;
  requests[1].kv_state = &shared;
  auto responses = engine.run(requests);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_NE(responses[0].finish, FinishReason::kRejected);  // first wins
  EXPECT_EQ(responses[0].tokens.size(), 2u);
  EXPECT_EQ(responses[1].finish, FinishReason::kRejected);
  EXPECT_FALSE(responses[1].error.empty());

  requests[0].kv_state = nullptr;
  requests[1].kv_state = nullptr;
  auto shared_policy = kv::make_policy(kv::PolicyKind::kKeyformer);
  requests[0].policy = shared_policy.get();
  requests[1].policy = shared_policy.get();
  responses = engine.run(requests);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_NE(responses[0].finish, FinishReason::kRejected);
  EXPECT_EQ(responses[1].finish, FinishReason::kRejected);
  EXPECT_FALSE(responses[1].error.empty());
}

// ---------------------------------------------------------------------------
// Paged KV memory mode.

TEST_P(EngineParity, PagedMemoryMatchesContiguousTokenExactly) {
  // The paged allocator must be invisible to generation: same requests,
  // same tokens, for every policy x positional family, across block sizes
  // that do and don't divide the cache lengths.
  const auto [pos, kind] = GetParam();
  Transformer model(tiny_config(pos));

  GenerationConfig g;
  g.max_new_tokens = 12;
  g.cache_ratio = kind == kv::PolicyKind::kFull ? 1.0 : 0.5;
  const auto prompt = make_prompt(32);

  EngineConfig contiguous_cfg;
  contiguous_cfg.policy.kind = kind;
  Engine contiguous(model, contiguous_cfg);
  Request req;
  req.prompt = prompt;
  req.gen = g;
  const auto expected = contiguous.run({&req, 1});

  for (const std::size_t block_tokens : {3, 16}) {
    EngineConfig pc = contiguous_cfg;
    pc.paged.enabled = true;
    pc.paged.n_shards = 2;
    pc.paged.block_tokens = block_tokens;
    Engine paged(model, pc);
    const auto got = paged.run({&req, 1});
    EXPECT_EQ(got[0].tokens, expected[0].tokens)
        << "block_tokens " << block_tokens;
    ASSERT_NE(paged.pool(), nullptr);
    EXPECT_EQ(paged.pool()->stats().used_blocks, 0u)
        << "blocks leaked at block_tokens " << block_tokens;
    EXPECT_GT(paged.stats().pool_peak_used_blocks, 0u);
  }
}

TEST(Engine, PagedMixedBatchMatchesContiguousAndLeaksNothing) {
  // Randomized admit/retire churn under a real block cap: staggered
  // arrivals, mixed lengths, sequences joining as others retire. Token
  // streams must match the contiguous engine run for run, and after the
  // run every block must be back on the free lists with no reservations
  // left — the no-leak half of the acceptance criteria.
  Transformer model(tiny_config());
  Rng rng(321);
  std::vector<Request> requests;
  for (std::size_t i = 0; i < 9; ++i) {
    Request req;
    req.id = i;
    req.prompt = make_prompt(12 + rng.uniform_u64(30), /*seed=*/i);
    req.gen.max_new_tokens = 4 + rng.uniform_u64(10);
    req.gen.cache_ratio = 0.5;
    req.arrival_step = rng.uniform_u64(8);
    requests.push_back(std::move(req));
  }

  EngineConfig ec;
  ec.policy.kind = kv::PolicyKind::kKeyformer;
  ec.scheduler.max_batch_size = 4;
  ec.scheduler.max_concurrent_tokens = 120;
  Engine contiguous(model, ec);
  const auto expected = contiguous.run(requests);

  EngineConfig pc = ec;
  pc.paged.enabled = true;
  pc.paged.n_shards = 2;
  pc.paged.block_tokens = 8;
  Engine paged(model, pc);
  const auto got = paged.run(requests);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Block-granular admission can only delay a join (rounding up to
    // whole blocks), never change a sequence's own tokens.
    EXPECT_EQ(got[i].tokens, expected[i].tokens) << "req " << i;
  }
  ASSERT_NE(paged.pool(), nullptr);
  const mem::PoolStats ps = paged.pool()->stats();
  EXPECT_EQ(ps.used_blocks, 0u) << "leaked blocks";
  EXPECT_EQ(ps.reserved_blocks, 0u) << "leaked reservations";
  EXPECT_GT(paged.stats().max_blocks_in_use, 0u);
  EXPECT_GT(paged.stats().pool_capacity_blocks, 0u);
  EXPECT_LE(paged.stats().pool_peak_used_blocks,
            paged.stats().pool_capacity_blocks);
  EXPECT_GE(paged.stats().max_fragmentation, 0.0);
  EXPECT_LT(paged.stats().max_fragmentation, 1.0);
}

TEST(Engine, PagedModeDerivesPoolCapacityFromTokenBudget) {
  Transformer model(tiny_config());  // 2 layers
  EngineConfig ec;
  ec.scheduler.max_concurrent_tokens = 100;
  ec.paged.enabled = true;
  ec.paged.n_shards = 2;
  ec.paged.block_tokens = 8;
  Engine engine(model, ec);
  ASSERT_NE(engine.pool(), nullptr);
  // 2 layers * ceil(100/8)=13 -> 26 blocks, split over 2 shards = 13 each.
  EXPECT_EQ(engine.pool()->config().blocks_per_shard, 13u);
  EXPECT_EQ(engine.pool()->stats().capacity_blocks, 26u);
}

TEST(Engine, PagedModeRejectsExternalKvState) {
  Transformer model(tiny_config());
  EngineConfig ec;
  ec.paged.enabled = true;
  Engine engine(model, ec);
  Request req;
  req.prompt = make_prompt(8);
  req.gen.max_new_tokens = 2;
  kv::SequenceKvState external(2, 2, 8);
  req.kv_state = &external;
  const auto responses = engine.run({&req, 1});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].finish, FinishReason::kRejected);
  EXPECT_FALSE(responses[0].error.empty());
}

TEST(Engine, GenerateStillWorksWhilePagedEngineExists) {
  // generate() builds its own contiguous batch-of-one engine; a paged
  // engine on the same model must not disturb it.
  Transformer model(tiny_config());
  EngineConfig ec;
  ec.paged.enabled = true;
  Engine paged(model, ec);
  GenerationConfig g;
  g.max_new_tokens = 6;
  g.cache_ratio = 0.5;
  auto policy = kv::make_policy(kv::PolicyKind::kKeyformer);
  const auto prompt = make_prompt(16);
  const auto result = model::generate(model, prompt, *policy, g);
  EXPECT_EQ(result.tokens.size(), 6u);
}

TEST(Engine, AggregateStatsAreConsistent) {
  Transformer model(tiny_config());
  std::vector<Request> requests(3);
  std::size_t expected_decoded = 0;
  std::size_t expected_prefill = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    requests[i].prompt = make_prompt(10 + i, i);
    requests[i].gen.max_new_tokens = 5;
    expected_decoded += 5 - 1;  // first token comes from prefill
    expected_prefill += requests[i].prompt.size();
  }
  Engine engine(model, EngineConfig{});
  const auto responses = engine.run(requests);
  EXPECT_EQ(engine.stats().decoded_tokens, expected_decoded);
  EXPECT_EQ(engine.stats().prefilled_tokens, expected_prefill);
  EXPECT_EQ(engine.stats().max_batch, 3u);
  EXPECT_GT(engine.stats().decode_tokens_per_s(), 0.0);
  for (const auto& r : responses) {
    EXPECT_GT(r.decode_tokens_per_s(), 0.0);
    EXPECT_GT(r.prefill_seconds, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Robustness: preemption/resume, deadlines, oversized containment.

TEST(EngineRobustness, PreemptResumeIsTokenExactAcrossPolicies) {
  // Admission pressure parks a decoding victim and later resumes it by
  // recompute; its token stream must be identical to an unpressured solo
  // run — for more than one eviction policy, since resume replays the
  // policy's trims step by step.
  for (const auto kind : {kv::PolicyKind::kKeyformer, kv::PolicyKind::kH2O}) {
    Transformer model(tiny_config());
    std::vector<Request> requests(2);
    requests[0].prompt = make_prompt(32, 0);
    requests[0].gen.max_new_tokens = 16;
    requests[0].gen.cache_ratio = 0.5;
    requests[1].prompt = make_prompt(32, 1);
    requests[1].gen.max_new_tokens = 6;
    requests[1].gen.cache_ratio = 0.5;
    requests[1].arrival_step = 4;  // starved behind request 0

    EngineConfig ec;
    ec.policy.kind = kind;
    ec.paged.enabled = true;
    ec.paged.n_shards = 1;
    ec.paged.block_tokens = 8;
    // One shard, room for one 32-token prompt (8 blocks) but not two.
    ec.paged.blocks_per_shard = 10;
    ec.preempt.queue_pressure_steps = 2;
    ec.preempt.min_victim_age_steps = 2;
    Engine engine(model, ec);
    const auto mixed = engine.run(requests);
    ASSERT_EQ(mixed.size(), 2u);
    EXPECT_GE(engine.stats().preemptions, 1u);
    EXPECT_GT(engine.stats().resume_replayed_tokens, 0u);
    EXPECT_GE(mixed[0].preemptions, 1u);
    EXPECT_EQ(mixed[0].tokens.size(), 16u);
    EXPECT_EQ(mixed[1].tokens.size(), 6u);

    // Solo, unpressured runs: identical streams.
    for (std::size_t i = 0; i < 2; ++i) {
      EngineConfig solo_cfg = ec;
      solo_cfg.paged.blocks_per_shard = 0;  // derive: effectively unbounded
      Engine solo(model, solo_cfg);
      Request alone = requests[i];
      alone.arrival_step = 0;
      const auto solo_resp = solo.run({&alone, 1});
      EXPECT_EQ(solo_resp[0].preemptions, 0u);
      EXPECT_EQ(mixed[i].tokens, solo_resp[0].tokens)
          << "req " << i << " policy " << static_cast<int>(kind);
    }
  }
}

TEST(EngineRobustness, DeadlineStepsTimesOutActiveSequence) {
  Transformer model(tiny_config());
  std::vector<Request> requests(2);
  requests[0].prompt = make_prompt(16, 0);
  requests[0].gen.max_new_tokens = 20;
  requests[0].deadline_steps = 5;  // far below 20 decode steps
  requests[1].prompt = make_prompt(16, 1);
  requests[1].gen.max_new_tokens = 8;
  Engine engine(model, EngineConfig{});
  const auto responses = engine.run(requests);
  EXPECT_EQ(responses[0].finish, FinishReason::kTimeout);
  EXPECT_FALSE(responses[0].error.empty());
  EXPECT_LT(responses[0].tokens.size(), 20u);
  // The neighbor is untouched by the shed.
  EXPECT_EQ(responses[1].tokens.size(), 8u);
  EXPECT_NE(responses[1].finish, FinishReason::kTimeout);
  EXPECT_EQ(engine.stats().timeouts, 1u);
}

TEST(EngineRobustness, MaxQueueStepsTimesOutStarvedWaiter) {
  Transformer model(tiny_config());
  std::vector<Request> requests(2);
  requests[0].prompt = make_prompt(24, 0);
  requests[0].gen.max_new_tokens = 20;
  requests[0].gen.cache_ratio = 0.5;
  requests[1].prompt = make_prompt(24, 1);
  requests[1].gen.max_new_tokens = 4;
  requests[1].gen.cache_ratio = 0.5;
  requests[1].max_queue_steps = 6;  // gives up long before 0 finishes
  EngineConfig ec;
  ec.preempt.enabled = false;  // starve honestly; no preemption rescue
  ec.scheduler.max_batch_size = 1;
  Engine engine(model, ec);
  const auto responses = engine.run(requests);
  EXPECT_EQ(responses[0].tokens.size(), 20u);
  EXPECT_EQ(responses[1].finish, FinishReason::kTimeout);
  EXPECT_TRUE(responses[1].tokens.empty());
  EXPECT_FALSE(responses[1].error.empty());
  EXPECT_EQ(engine.stats().timeouts, 1u);
}

TEST(EngineRobustness, OversizedForShardRejectedRestOfBatchCompletes) {
  // PR 4 threw out of run() for a demand above a whole shard; now the
  // request is contained as kRejected and its batchmates still decode —
  // token-exactly.
  Transformer model(tiny_config());
  std::vector<Request> requests(2);
  requests[0].prompt = make_prompt(128, 0);  // 16 blocks/layer: hopeless
  requests[0].gen.max_new_tokens = 4;
  requests[1].prompt = make_prompt(16, 1);
  requests[1].gen.max_new_tokens = 6;
  requests[1].gen.cache_ratio = 0.5;
  EngineConfig ec;
  ec.policy.kind = kv::PolicyKind::kKeyformer;
  ec.paged.enabled = true;
  ec.paged.n_shards = 1;
  ec.paged.block_tokens = 8;
  ec.paged.blocks_per_shard = 8;
  Engine engine(model, ec);
  const auto responses = engine.run(requests);
  EXPECT_EQ(responses[0].finish, FinishReason::kRejected);
  EXPECT_FALSE(responses[0].error.empty());
  EXPECT_TRUE(responses[0].tokens.empty());
  EXPECT_EQ(responses[1].tokens.size(), 6u);
  EXPECT_EQ(engine.stats().rejections, 1u);
  // The survivor's stream matches its solo run.
  Engine solo(model, ec);
  const auto solo_resp = solo.run({&requests[1], 1});
  EXPECT_EQ(responses[1].tokens, solo_resp[0].tokens);
  // Nothing leaked: only free blocks remain in the pool.
  EXPECT_EQ(engine.pool()->stats().used_blocks, 0u);
  EXPECT_EQ(engine.pool()->stats().reserved_blocks, 0u);
}

}  // namespace
}  // namespace kf::serve
