#include "core/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/parse.h"

namespace kf {
namespace {

TEST(ParseCount, AcceptsPlainDigits) {
  EXPECT_EQ(parse_count("0"), 0ULL);
  EXPECT_EQ(parse_count("42"), 42ULL);
  EXPECT_EQ(parse_count("18446744073709551615"), ~0ULL);
}

TEST(ParseCount, RejectsNonDigitsAndEmpty) {
  EXPECT_FALSE(parse_count(nullptr).has_value());
  EXPECT_FALSE(parse_count("").has_value());
  EXPECT_FALSE(parse_count(" 4").has_value());
  EXPECT_FALSE(parse_count("-4").has_value());
  EXPECT_FALSE(parse_count("+4").has_value());
  EXPECT_FALSE(parse_count("4x").has_value());
}

TEST(ParseCount, RejectsValuesAboveMax) {
  EXPECT_FALSE(parse_count("18446744073709551616").has_value());
  EXPECT_FALSE(parse_count("257", 256).has_value());
  EXPECT_EQ(parse_count("256", 256), 256ULL);
  // Single digit already above max: the guard must not underflow max - digit.
  EXPECT_FALSE(parse_count("9", 5).has_value());
  EXPECT_FALSE(parse_count("1", 0).has_value());
  EXPECT_EQ(parse_count("0", 0), 0ULL);
}

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleElement) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(1, [&](std::size_t b, std::size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, GrainLimitsChunking) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.parallel_for(
      10, [&](std::size_t, std::size_t) { chunks.fetch_add(1); },
      /*grain=*/10);
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPool, SumMatchesSequential) {
  ThreadPool pool(6);
  std::vector<long long> values(4096);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<long long> total{0};
  pool.parallel_for(values.size(), [&](std::size_t b, std::size_t e) {
    long long local = 0;
    for (std::size_t i = b; i < e; ++i) local += values[i];
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 4096LL * 4097 / 2);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(100, [&](std::size_t b, std::size_t e) {
      count += static_cast<int>(e - b);
    });
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // Regression: a parallel_for issued from inside a worker used to enqueue
  // chunks and block on done_cv while occupying its worker slot; with every
  // worker doing the same, no thread was left to drain the queue and the
  // pool deadlocked. Nested calls must run inline and still cover the
  // full range exactly once. (A regression here shows up as a CTest
  // timeout.)
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64 * 32);
  pool.parallel_for(
      64,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t outer = b; outer < e; ++outer) {
          pool.parallel_for(32, [&, outer](std::size_t ib, std::size_t ie) {
            for (std::size_t inner = ib; inner < ie; ++inner) {
              hits[outer * 32 + inner].fetch_add(1);
            }
          });
        }
      },
      /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GlobalIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace kf
