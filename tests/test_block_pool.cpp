#include "mem/block_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/rng.h"

namespace kf::mem {
namespace {

BlockPoolConfig small_config(std::size_t shards = 2,
                             std::size_t blocks_per_shard = 8) {
  BlockPoolConfig cfg;
  cfg.n_shards = shards;
  cfg.blocks_per_shard = blocks_per_shard;
  cfg.block_tokens = 4;
  cfg.n_heads = 2;
  cfg.d_head = 3;
  return cfg;
}

TEST(BlockPool, RejectsDegenerateConfig) {
  auto cfg = small_config();
  cfg.n_shards = 0;
  EXPECT_THROW(BlockPool{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.block_tokens = 0;
  EXPECT_THROW(BlockPool{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.n_heads = 0;
  EXPECT_THROW(BlockPool{cfg}, std::invalid_argument);
}

TEST(BlockPool, AllocateFreeRoundTrip) {
  BlockPool pool(small_config());
  const BlockRef a = pool.allocate(0);
  const BlockRef b = pool.allocate(0);
  EXPECT_EQ(a.shard, 0u);
  EXPECT_NE(a.id, b.id);
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 2u);
  EXPECT_EQ(pool.shard_stats(1).used_blocks, 0u);
  pool.free(a);
  pool.free(b);
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 0u);
  // Everything freed: the next allocations reuse the same ids.
  const BlockRef c = pool.allocate(0);
  EXPECT_LT(c.id, 2u);
}

TEST(BlockPool, PayloadPointersAreStableAndDisjoint) {
  // Write a distinct pattern into every head section of every block, then
  // verify nothing overlapped — the addressing math carves disjoint
  // [block][K/V][head][token][d_head] regions.
  BlockPool pool(small_config(1, 6));
  const auto& cfg = pool.config();
  std::vector<BlockRef> refs;
  for (std::size_t i = 0; i < 6; ++i) refs.push_back(pool.allocate(0));
  const std::size_t head_floats = cfg.block_tokens * cfg.d_head;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      const float kv_tag = static_cast<float>(i * 100 + h * 10);
      for (std::size_t j = 0; j < head_floats; ++j) {
        pool.keys(refs[i], h)[j] = kv_tag + 1.0F;
        pool.values(refs[i], h)[j] = kv_tag + 2.0F;
      }
    }
  }
  for (std::size_t i = 0; i < refs.size(); ++i) {
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      const float kv_tag = static_cast<float>(i * 100 + h * 10);
      for (std::size_t j = 0; j < head_floats; ++j) {
        EXPECT_EQ(pool.keys(refs[i], h)[j], kv_tag + 1.0F);
        EXPECT_EQ(pool.values(refs[i], h)[j], kv_tag + 2.0F);
      }
    }
  }
}

TEST(BlockPool, SlabAllocationsAre64ByteAligned) {
  // Slab arenas allocate at kSimdAlign (core/aligned.h) so SIMD loads on
  // head-major block payloads start cache-line aligned. Block 0 of every
  // slab IS the slab base; the property must hold across slab growth and
  // across shards.
  BlockPoolConfig cfg = small_config(2, 0);  // unbounded: slabs on demand
  BlockPool pool(cfg);
  for (std::size_t s = 0; s < 2; ++s) {
    std::vector<BlockRef> refs;
    for (std::size_t i = 0; i < 130; ++i) refs.push_back(pool.allocate(s));
    for (const BlockRef r : refs) {
      if (r.id % 64 == 0) {  // kBlocksPerSlab: this block is a slab base
        EXPECT_TRUE(is_simd_aligned(pool.keys(r, 0)))
            << "shard " << s << " block " << r.id;
      }
    }
    for (const BlockRef r : refs) pool.free(r);
  }
}

TEST(BlockPool, ExhaustionThrowsAndFreeRecovers) {
  BlockPool pool(small_config(1, 3));
  std::vector<BlockRef> refs;
  for (std::size_t i = 0; i < 3; ++i) refs.push_back(pool.allocate(0));
  EXPECT_THROW(pool.allocate(0), std::runtime_error);
  pool.free(refs.back());
  refs.pop_back();
  EXPECT_NO_THROW(refs.push_back(pool.allocate(0)));
}

TEST(BlockPool, ReservationAccounting) {
  BlockPool pool(small_config(2, 8));
  EXPECT_TRUE(pool.try_reserve(0, 5));
  EXPECT_EQ(pool.unreserved_blocks(0), 3u);
  EXPECT_FALSE(pool.try_reserve(0, 4));  // 5 + 4 > 8: no change
  EXPECT_EQ(pool.shard_stats(0).reserved_blocks, 5u);
  EXPECT_TRUE(pool.try_reserve(0, 3));
  EXPECT_EQ(pool.unreserved_blocks(0), 0u);
  // Shard 1 is independent.
  EXPECT_TRUE(pool.try_reserve(1, 8));
  pool.unreserve(0, 8);
  EXPECT_EQ(pool.unreserved_blocks(0), 8u);
  EXPECT_THROW(pool.unreserve(0, 1), std::invalid_argument);
}

TEST(BlockPool, UnboundedPoolGrowsOnDemand) {
  BlockPool pool(small_config(1, /*blocks_per_shard=*/0));
  EXPECT_EQ(pool.unreserved_blocks(0), static_cast<std::size_t>(-1));
  std::vector<BlockRef> refs;
  for (std::size_t i = 0; i < 200; ++i) refs.push_back(pool.allocate(0));
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 200u);
  EXPECT_GE(pool.shard_stats(0).allocated_blocks, 200u);
  for (const BlockRef r : refs) pool.free(r);
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 0u);
}

TEST(BlockPool, PeaksTrackHighWaterAndReset) {
  BlockPool pool(small_config(1, 8));
  std::vector<BlockRef> refs;
  for (std::size_t i = 0; i < 6; ++i) refs.push_back(pool.allocate(0));
  for (const BlockRef r : refs) pool.free(r);
  EXPECT_EQ(pool.shard_stats(0).peak_used_blocks, 6u);
  pool.reset_peaks();
  EXPECT_EQ(pool.shard_stats(0).peak_used_blocks, 0u);
}

TEST(BlockPool, RandomizedAllocFreeNeverLeaks) {
  // N random alloc/free cycles across shards; at the end every freed
  // block must be reusable and used counts must be exactly what is still
  // held — the pool-invariant half of the leak test (the engine half
  // lives in test_serve_engine).
  BlockPool pool(small_config(3, 16));
  Rng rng(99);
  std::vector<BlockRef> held;
  for (std::size_t step = 0; step < 2000; ++step) {
    const bool can_alloc = [&] {
      for (std::size_t s = 0; s < 3; ++s) {
        if (pool.shard_stats(s).used_blocks < 16) return true;
      }
      return false;
    }();
    if (!held.empty() && (!can_alloc || rng.uniform_u64(2) == 0)) {
      const std::size_t pick = rng.uniform_u64(held.size());
      pool.free(held[pick]);
      held[pick] = held.back();
      held.pop_back();
    } else if (can_alloc) {
      std::size_t shard = rng.uniform_u64(3);
      while (pool.shard_stats(shard).used_blocks >= 16) {
        shard = (shard + 1) % 3;
      }
      held.push_back(pool.allocate(shard));
    }
    std::size_t used = 0;
    for (std::size_t s = 0; s < 3; ++s) {
      used += pool.shard_stats(s).used_blocks;
    }
    ASSERT_EQ(used, held.size()) << "step " << step;
  }
  for (const BlockRef r : held) pool.free(r);
  const PoolStats st = pool.stats();
  EXPECT_EQ(st.used_blocks, 0u);
  EXPECT_LE(st.allocated_blocks, st.capacity_blocks);
}

TEST(BlockPool, FreeDetectsDoubleFree) {
  BlockPool pool(small_config(1, 4));
  const BlockRef a = pool.allocate(0);
  const BlockRef b = pool.allocate(0);
  pool.free(a);
  EXPECT_THROW(pool.free(a), std::invalid_argument);  // double free
  BlockRef never;  // never allocated on this shard
  never.shard = 0;
  never.id = 3;
  EXPECT_THROW(pool.free(never), std::invalid_argument);
  pool.free(b);
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 0u);
}

TEST(BlockPool, AggregatePeakIsSimultaneousNotSumOfShardPeaks) {
  // Shard 0 peaks at 3, then drains; shard 1 peaks at 3 afterwards. The
  // pool never holds more than 3 at once, so the aggregate peak must be
  // 3 — not the 6 that summing per-shard peaks would report.
  BlockPool pool(small_config(2, 8));
  std::vector<BlockRef> held;
  for (std::size_t i = 0; i < 3; ++i) held.push_back(pool.allocate(0));
  for (const BlockRef r : held) pool.free(r);
  held.clear();
  for (std::size_t i = 0; i < 3; ++i) held.push_back(pool.allocate(1));
  for (const BlockRef r : held) pool.free(r);
  EXPECT_EQ(pool.shard_stats(0).peak_used_blocks, 3u);
  EXPECT_EQ(pool.shard_stats(1).peak_used_blocks, 3u);
  EXPECT_EQ(pool.stats().peak_used_blocks, 3u);
  // Same rule for reservations.
  ASSERT_TRUE(pool.try_reserve(0, 4));
  pool.unreserve(0, 4);
  ASSERT_TRUE(pool.try_reserve(1, 4));
  pool.unreserve(1, 4);
  EXPECT_EQ(pool.stats().peak_reserved_blocks, 4u);
}

TEST(BlockPool, RefcountRetainKeepsBlockAliveUntilLastRelease) {
  BlockPool pool(small_config(1, 8));
  const BlockRef r = pool.allocate(0);
  EXPECT_EQ(pool.refcount(r), 1u);
  pool.retain(r);
  pool.retain(r);
  EXPECT_EQ(pool.refcount(r), 3u);
  pool.release(r);
  pool.release(r);
  // Still alive: one reader left, used still counts it once.
  EXPECT_EQ(pool.refcount(r), 1u);
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 1u);
  pool.release(r);
  EXPECT_EQ(pool.refcount(r), 0u);
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 0u);
  // Fully released: further touches are errors, and the id is reusable.
  EXPECT_THROW(pool.retain(r), std::invalid_argument);
  EXPECT_THROW(pool.release(r), std::invalid_argument);
  const BlockRef again = pool.allocate(0);
  EXPECT_EQ(again.id, r.id);
  EXPECT_EQ(pool.refcount(again), 1u);
  pool.release(again);
}

TEST(BlockPool, SharedBlockChargesUsedOnce) {
  // Sharing N ways is the whole point of the prefix cache: the pool must
  // charge the physical block once no matter how many readers hold it.
  BlockPool pool(small_config(1, 4));
  const BlockRef r = pool.allocate(0);
  for (int i = 0; i < 5; ++i) pool.retain(r);
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 1u);
  EXPECT_EQ(pool.stats().used_blocks, 1u);
  for (int i = 0; i < 6; ++i) pool.release(r);
  EXPECT_EQ(pool.stats().used_blocks, 0u);
}

TEST(BlockPool, RandomizedRefcountChurnNeverLeaks) {
  // Interleaved allocate/retain/release across shards; live refcount
  // bookkeeping mirrored locally. After draining, every block must be at
  // refcount 0 with used back to zero — the no-leak half of the
  // prefix-cache acceptance criteria at the pool level.
  BlockPool pool(small_config(2, 16));
  Rng rng(99);
  std::vector<std::pair<BlockRef, std::size_t>> live;  // ref, local count
  for (std::size_t step = 0; step < 2000; ++step) {
    const std::uint64_t op = rng.uniform_u64(10);
    if (op < 4 || live.empty()) {
      const std::size_t shard = rng.uniform_u64(2);
      if (pool.shard_stats(shard).used_blocks < 16) {
        live.emplace_back(pool.allocate(shard), 1u);
      }
    } else if (op < 6) {
      auto& [ref, count] = live[rng.uniform_u64(live.size())];
      pool.retain(ref);
      ++count;
    } else {
      const std::size_t pick = rng.uniform_u64(live.size());
      auto& [ref, count] = live[pick];
      pool.release(ref);
      if (--count == 0) {
        live.erase(live.begin() + static_cast<long>(pick));
      }
    }
    std::size_t used = 0;
    for (const auto& [ref, count] : live) {
      EXPECT_EQ(pool.refcount(ref), count);
      ++used;
    }
    ASSERT_EQ(pool.stats().used_blocks, used) << "step " << step;
  }
  for (auto& [ref, count] : live) {
    while (count-- > 0) pool.release(ref);
    EXPECT_EQ(pool.refcount(ref), 0u);
  }
  EXPECT_EQ(pool.stats().used_blocks, 0u);
}

TEST(BlockPool, TryAllocateReturnsNulloptAtCapacityInsteadOfThrowing) {
  BlockPool pool(small_config(1, 2));
  std::vector<BlockRef> held;
  for (;;) {
    const auto ref = pool.try_allocate(0);
    if (!ref.has_value()) break;
    held.push_back(*ref);
  }
  EXPECT_EQ(held.size(), 2u);
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 2u);
  // Freeing one makes try_allocate succeed again.
  pool.free(held.back());
  held.pop_back();
  const auto again = pool.try_allocate(0);
  ASSERT_TRUE(again.has_value());
  held.push_back(*again);
  for (const BlockRef r : held) pool.free(r);
  EXPECT_EQ(pool.stats().used_blocks, 0u);
}

/// Scripted injector: fails the next `n` calls of the given op.
class CountdownInjector final : public FaultInjector {
 public:
  CountdownInjector(FaultOp op, std::size_t n) : op_(op), left_(n) {}
  bool should_fail(FaultOp op, std::size_t /*shard*/) override {
    if (op != op_ || left_ == 0) return false;
    --left_;
    return true;
  }

 private:
  const FaultOp op_;
  std::size_t left_;
};

TEST(BlockPool, FaultInjectorVetoesReserveThenRecovers) {
  BlockPool pool(small_config(1, 8));
  CountdownInjector inject(FaultOp::kReserve, 2);
  pool.set_fault_injector(&inject);
  // Capacity is plentiful, but the injector vetoes the first two claims —
  // and a vetoed reserve must leave the counters untouched.
  EXPECT_FALSE(pool.try_reserve(0, 2));
  EXPECT_FALSE(pool.try_reserve(0, 2));
  EXPECT_EQ(pool.shard_stats(0).reserved_blocks, 0u);
  EXPECT_TRUE(pool.try_reserve(0, 2));
  EXPECT_EQ(pool.shard_stats(0).reserved_blocks, 2u);
  pool.unreserve(0, 2);
  pool.set_fault_injector(nullptr);
}

TEST(BlockPool, FaultInjectorVetoesAllocateThenRecovers) {
  BlockPool pool(small_config(1, 8));
  CountdownInjector inject(FaultOp::kAllocate, 1);
  pool.set_fault_injector(&inject);
  EXPECT_FALSE(pool.try_allocate(0).has_value());
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 0u);
  const auto ref = pool.try_allocate(0);
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(pool.shard_stats(0).used_blocks, 1u);
  // Clearing the injector stops all vetoes; allocate() (the throwing
  // wrapper) also works again.
  pool.set_fault_injector(nullptr);
  const BlockRef b = pool.allocate(0);
  pool.free(*ref);
  pool.free(b);
  EXPECT_EQ(pool.stats().used_blocks, 0u);
}

TEST(BlockPool, StatsAggregateAcrossShards) {
  BlockPool pool(small_config(2, 8));
  const BlockRef a = pool.allocate(0);
  const BlockRef b = pool.allocate(1);
  ASSERT_TRUE(pool.try_reserve(1, 2));
  const PoolStats st = pool.stats();
  EXPECT_EQ(st.n_shards, 2u);
  EXPECT_EQ(st.capacity_blocks, 16u);
  EXPECT_EQ(st.used_blocks, 2u);
  EXPECT_EQ(st.reserved_blocks, 2u);
  pool.free(a);
  pool.free(b);
  pool.unreserve(1, 2);
}

}  // namespace
}  // namespace kf::mem
