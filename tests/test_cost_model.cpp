#include "perf/cost_model.h"

#include <gtest/gtest.h>

namespace kf::perf {
namespace {

CostModel default_model() {
  return CostModel(DeviceSpec::a100_80gb(), ModelSpec::mpt_7b());
}

WorkloadSpec workload(std::size_t len, double ratio = 1.0,
                      CacheMode mode = CacheMode::kFull,
                      std::size_t batch = 1) {
  WorkloadSpec w;
  w.prompt_len = len;
  w.gen_len = len;
  w.batch = batch;
  w.cache_ratio = ratio;
  w.cache_mode = mode;
  return w;
}

TEST(CostModel, CalibratedToPaperTable1FullAttention) {
  // Paper Table 1 (MPT-7B, A100, batch 1, beam 4): 24.9 / 15.0 / 8.3
  // tokens/s for 1024+1024 / 2048+2048 / 4096+4096 full attention.
  const CostModel m = default_model();
  const double t1 = m.run(workload(1024)).throughput_tokens_per_s;
  const double t2 = m.run(workload(2048)).throughput_tokens_per_s;
  const double t4 = m.run(workload(4096)).throughput_tokens_per_s;
  EXPECT_NEAR(t1, 24.9, 2.5);
  EXPECT_NEAR(t2, 15.0, 1.5);
  EXPECT_NEAR(t4, 8.3, 1.0);
}

TEST(CostModel, ThroughputFallsWithSequenceLength) {
  const CostModel m = default_model();
  double prev = 1e18;
  for (const std::size_t len : {512u, 1024u, 2048u, 4096u, 8192u}) {
    const double t = m.run(workload(len)).throughput_tokens_per_s;
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(CostModel, ReducedCacheIsFaster) {
  const CostModel m = default_model();
  const double full = m.run(workload(4096)).throughput_tokens_per_s;
  const double half =
      m.run(workload(4096, 0.5, CacheMode::kStaticPrompt))
          .throughput_tokens_per_s;
  EXPECT_GT(half, 1.5 * full);
  EXPECT_LT(half, 3.5 * full);
}

TEST(CostModel, SpeedupGrowsWithSequenceLength) {
  // Fig 9 shape: the 50%-cache speedup increases with sequence length.
  const CostModel m = default_model();
  double prev_speedup = 0.0;
  for (const std::size_t len : {1024u, 2048u, 4096u}) {
    const double full = m.run(workload(len)).total_seconds;
    const double reduced =
        m.run(workload(len, 0.5, CacheMode::kStaticPrompt)).total_seconds;
    const double speedup = full / reduced;
    EXPECT_GT(speedup, prev_speedup);
    prev_speedup = speedup;
  }
  EXPECT_GT(prev_speedup, 1.8);
}

TEST(CostModel, ContextEvolutionPerMode) {
  const CostModel m = default_model();
  WorkloadSpec w = workload(1000, 0.5, CacheMode::kFull);
  EXPECT_EQ(m.context_at_step(w, 0), 1000u);
  EXPECT_EQ(m.context_at_step(w, 500), 1500u);
  w.cache_mode = CacheMode::kStaticPrompt;
  EXPECT_EQ(m.context_at_step(w, 0), 500u);
  EXPECT_EQ(m.context_at_step(w, 500), 500u);
  w.cache_mode = CacheMode::kGrowingFraction;
  EXPECT_EQ(m.context_at_step(w, 0), 500u);
  EXPECT_EQ(m.context_at_step(w, 1000), 1000u);
}

TEST(CostModel, KvBytesLinearInContextAndBeams) {
  const CostModel m = default_model();
  WorkloadSpec w = workload(1024);
  const StepCost a = m.decode_step(1000, w);
  const StepCost b = m.decode_step(2000, w);
  EXPECT_NEAR(b.kv_bytes, 2.0 * a.kv_bytes, 1.0);
  w.beams = 8;
  const StepCost c = m.decode_step(1000, w);
  EXPECT_NEAR(c.kv_bytes, 2.0 * a.kv_bytes, 1.0);
}

TEST(CostModel, ScoreOverheadOrdering) {
  const CostModel m = default_model();
  WorkloadSpec none = workload(2048);
  WorkloadSpec topk = none;
  topk.policy_cost = PolicyCost::kTopK;
  WorkloadSpec gumbel = none;
  gumbel.policy_cost = PolicyCost::kGumbelTopK;
  const double c0 = m.decode_step(2048, none).score_time;
  const double c1 = m.decode_step(2048, topk).score_time;
  const double c2 = m.decode_step(2048, gumbel).score_time;
  EXPECT_EQ(c0, 0.0);
  EXPECT_GT(c1, 0.0);
  EXPECT_GT(c2, c1);
}

TEST(CostModel, GumbelOverheadIsSmallFraction) {
  // Fig 10: the score-function overhead is visible but small relative to
  // the attention/KV time it saves.
  const CostModel m = default_model();
  WorkloadSpec w = workload(4096, 0.5, CacheMode::kStaticPrompt);
  w.policy_cost = PolicyCost::kGumbelTopK;
  const StepCost s = m.decode_step(2048, w);
  EXPECT_LT(s.score_time, 0.2 * s.kv_time);
}

TEST(CostModel, Table1OomPattern) {
  // 4096+4096 at batch 2: full attention and H2O(90%, growing) OOM on the
  // 80 GB device; Keyformer at 50% static fits.
  const CostModel m = default_model();
  EXPECT_TRUE(m.run(workload(4096, 1.0, CacheMode::kFull, 2)).oom);
  EXPECT_TRUE(
      m.run(workload(4096, 0.9, CacheMode::kGrowingFraction, 2)).oom);
  EXPECT_FALSE(
      m.run(workload(4096, 0.5, CacheMode::kStaticPrompt, 2)).oom);
}

TEST(CostModel, Batch1NeverOomsAtPaperSizes) {
  const CostModel m = default_model();
  for (const std::size_t len : {1024u, 2048u, 4096u}) {
    EXPECT_FALSE(m.run(workload(len)).oom) << len;
  }
}

TEST(CostModel, KvCacheExceedsModelSizeBeyond8k) {
  // Fig 1b: with beam 4, the KV cache passes the 13.3 GB model size around
  // a sequence length of 8k.
  const CostModel m = default_model();
  const InferenceCost at2k = m.run(workload(1024));  // seq 2k
  EXPECT_LT(at2k.kv_cache_peak_bytes, at2k.model_bytes);
  const InferenceCost at8k = m.run(workload(4096));  // seq 8k
  EXPECT_GT(at8k.kv_cache_peak_bytes, at8k.model_bytes);
}

TEST(CostModel, KvMovementShareGrowsWithContext) {
  // Fig 1a: the KV-movement share of decode time rises with sequence len.
  const CostModel m = default_model();
  const InferenceCost small = m.run(workload(256));
  const InferenceCost large = m.run(workload(4096));
  const double share_small =
      small.kv_movement_seconds / small.total_seconds;
  const double share_large =
      large.kv_movement_seconds / large.total_seconds;
  EXPECT_GT(share_large, share_small);
  EXPECT_GT(share_large, 0.4);
}

TEST(CostModel, LatencyGrowsSuperlinearly) {
  // Fig 1a: 16x longer sequences cost far more than 16x the latency.
  const CostModel m = default_model();
  const double t512 = m.run(workload(256)).total_seconds;   // seq 512
  const double t8k = m.run(workload(4096)).total_seconds;   // seq 8k
  EXPECT_GT(t8k / t512, 25.0);
}

TEST(CostModel, RejectsBadRatio) {
  const CostModel m = default_model();
  WorkloadSpec w = workload(128, 0.0);
  EXPECT_THROW(m.run(w), std::invalid_argument);
  w.cache_ratio = 1.5;
  EXPECT_THROW(m.run(w), std::invalid_argument);
}

TEST(CostModel, PrefillScalesWithPromptLength) {
  const CostModel m = default_model();
  const double p1 = m.prefill_seconds(workload(1024));
  const double p2 = m.prefill_seconds(workload(2048));
  EXPECT_GT(p2, 1.8 * p1);
}

TEST(ModelSpecs, PaperScaleParameters) {
  EXPECT_NEAR(static_cast<double>(ModelSpec::mpt_7b().n_params), 6.65e9,
              0.1e9);
  EXPECT_NEAR(static_cast<double>(ModelSpec::gptj_6b().n_params), 6.05e9,
              0.1e9);
  EXPECT_NEAR(ModelSpec::mpt_7b().model_bytes(), 13.3e9, 0.2e9);
  // 2 tensors * 32 layers * 4096 dim * 2 bytes = 512 KiB per token.
  EXPECT_NEAR(ModelSpec::mpt_7b().kv_bytes_per_token(), 524288.0, 1.0);
}

}  // namespace
}  // namespace kf::perf
