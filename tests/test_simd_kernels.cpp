// Per-ISA parity suite for the runtime-dispatched SIMD kernels
// (src/cpu): every variant the host/build provides must reproduce the
// scalar reference — element-wise at 1e-5-scale tolerances for the
// arithmetic kernels, exactly for max_value and the softmax masking
// contract, and end to end through attention and the full transformer
// (contiguous and paged caches, all eviction policies, all positional
// families). The suite is parameterized over CpuIsa; variants the host
// cannot run are GTEST_SKIPped, never silently passed.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "keyformer/keyformer.h"

namespace kf {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Scoped dispatch override; restores the env/detected default on exit.
class IsaOverride {
 public:
  explicit IsaOverride(cpu::CpuIsa isa) { cpu::set_isa_override(isa); }
  ~IsaOverride() { cpu::clear_isa_override(); }
  IsaOverride(const IsaOverride&) = delete;
  IsaOverride& operator=(const IsaOverride&) = delete;
};

template <typename F>
auto under_isa(cpu::CpuIsa isa, F&& f) {
  const IsaOverride scoped(isa);
  return f();
}

std::vector<float> random_vec(Rng& rng, std::size_t n, float scale = 2.0F) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal()) * scale;
  return v;
}

/// Lengths straddling the vector widths: below one AVX2 lane-set, exact
/// multiples of 8 and 16, off-by-one tails on both sides, and long runs.
const std::size_t kLengths[] = {1,  2,  3,  5,  7,  8,   9,   15,  16, 17,
                                31, 32, 33, 63, 64, 65, 100, 257, 1000};

class SimdParity : public ::testing::TestWithParam<cpu::CpuIsa> {
 protected:
  void SetUp() override {
    if (!cpu::isa_available(GetParam())) {
      GTEST_SKIP() << cpu::isa_name(GetParam())
                   << " variants not available on this host/build";
    }
  }
};

TEST_P(SimdParity, DotMatchesScalar) {
  Rng rng(11);
  for (const std::size_t n : kLengths) {
    const auto a = random_vec(rng, n);
    const auto b = random_vec(rng, n);
    const float ref =
        under_isa(cpu::CpuIsa::kScalar, [&] { return dot(a, b); });
    const float got = under_isa(GetParam(), [&] { return dot(a, b); });
    // Error scales with the magnitude of the summed products, not the
    // result (cancellation can make the result tiny).
    double mag = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mag += std::abs(static_cast<double>(a[i]) * b[i]);
    }
    EXPECT_NEAR(got, ref, 1e-5 * (1.0 + mag)) << "n=" << n;
  }
}

TEST_P(SimdParity, MatvecMatchesScalar) {
  Rng rng(12);
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 1}, {3, 5}, {7, 8}, {9, 17}, {33, 32}, {64, 33}, {128, 100}};
  for (const auto& [n, k] : shapes) {
    const auto a = random_vec(rng, n * k);
    const auto x = random_vec(rng, k);
    std::vector<float> ref(n), got(n);
    under_isa(cpu::CpuIsa::kScalar, [&] { matvec(a, x, ref, n, k); return 0; });
    under_isa(GetParam(), [&] { matvec(a, x, got, n, k); return 0; });
    for (std::size_t r = 0; r < n; ++r) {
      double mag = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        mag += std::abs(static_cast<double>(a[r * k + j]) * x[j]);
      }
      EXPECT_NEAR(got[r], ref[r], 1e-5 * (1.0 + mag))
          << n << "x" << k << " row " << r;
    }
  }
}

TEST_P(SimdParity, VecmatMatchesScalar) {
  Rng rng(13);
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 1}, {5, 3}, {8, 7}, {17, 9}, {32, 33}, {33, 64}, {100, 128}};
  for (const auto& [n, k] : shapes) {
    const auto a = random_vec(rng, n * k);
    const auto x = random_vec(rng, n);
    std::vector<float> ref(k), got(k);
    under_isa(cpu::CpuIsa::kScalar, [&] { vecmat(x, a, ref, n, k); return 0; });
    under_isa(GetParam(), [&] { vecmat(x, a, got, n, k); return 0; });
    for (std::size_t j = 0; j < k; ++j) {
      double mag = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        mag += std::abs(static_cast<double>(x[i]) * a[i * k + j]);
      }
      EXPECT_NEAR(got[j], ref[j], 1e-5 * (1.0 + mag))
          << n << "x" << k << " col " << j;
    }
  }
}

TEST_P(SimdParity, AxpyMatchesScalar) {
  Rng rng(14);
  for (const std::size_t n : kLengths) {
    const auto x = random_vec(rng, n);
    const auto y0 = random_vec(rng, n);
    std::vector<float> ref = y0, got = y0;
    under_isa(cpu::CpuIsa::kScalar, [&] { axpy(0.37F, x, ref); return 0; });
    under_isa(GetParam(), [&] { axpy(0.37F, x, got); return 0; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i], ref[i], 1e-5F * (1.0F + std::abs(ref[i])))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST_P(SimdParity, MaxValueMatchesScalarExactly) {
  Rng rng(15);
  for (const std::size_t n : kLengths) {
    auto x = random_vec(rng, n);
    const float ref =
        under_isa(cpu::CpuIsa::kScalar, [&] { return max_value(x); });
    const float got = under_isa(GetParam(), [&] { return max_value(x); });
    EXPECT_EQ(got, ref) << "n=" << n;
    // Masked logits are the common caller: -inf entries must not perturb
    // the maximum (and an all--inf row must return exactly -inf).
    if (n >= 3) {
      x[0] = -kInf;
      x[n / 2] = -kInf;
      EXPECT_EQ(under_isa(GetParam(), [&] { return max_value(x); }),
                under_isa(cpu::CpuIsa::kScalar, [&] { return max_value(x); }))
          << "n=" << n << " with -inf entries";
    }
  }
  const std::vector<float> all_masked(9, -kInf);
  EXPECT_EQ(under_isa(GetParam(), [&] { return max_value(all_masked); }),
            -kInf);
}

TEST_P(SimdParity, LogsumexpMatchesScalar) {
  Rng rng(16);
  for (const std::size_t n : kLengths) {
    const auto x = random_vec(rng, n, 3.0F);
    const double ref =
        under_isa(cpu::CpuIsa::kScalar, [&] { return logsumexp(x); });
    const double got = under_isa(GetParam(), [&] { return logsumexp(x); });
    EXPECT_NEAR(got, ref, 1e-5 * (1.0 + std::abs(ref))) << "n=" << n;
  }
  // All--inf rows have no finite logsumexp; whatever non-finite value the
  // scalar reference produces, the variants must reproduce its class.
  const std::vector<float> all_masked(11, -kInf);
  const double ref =
      under_isa(cpu::CpuIsa::kScalar, [&] { return logsumexp(all_masked); });
  const double got =
      under_isa(GetParam(), [&] { return logsumexp(all_masked); });
  EXPECT_EQ(std::isnan(got), std::isnan(ref));
  if (!std::isnan(ref)) {
    EXPECT_EQ(got, ref);
  }
}

TEST_P(SimdParity, SoftmaxMatchesScalar) {
  Rng rng(17);
  for (const std::size_t n : kLengths) {
    const auto x = random_vec(rng, n, 3.0F);
    std::vector<float> ref(n), got(n);
    for (const double tau : {1.0, 0.5, 2.3}) {
      under_isa(cpu::CpuIsa::kScalar,
                [&] { softmax_temperature(x, ref, tau); return 0; });
      under_isa(GetParam(),
                [&] { softmax_temperature(x, got, tau); return 0; });
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(got[i], ref[i], 1e-5F)
            << "n=" << n << " tau=" << tau << " i=" << i;
        sum += got[i];
      }
      EXPECT_NEAR(sum, 1.0, 1e-4) << "n=" << n << " tau=" << tau;
    }
    // Plain softmax is the tau == 1 case of the same kernel; spot-check
    // the public entry point too.
    under_isa(cpu::CpuIsa::kScalar, [&] { softmax(x, ref); return 0; });
    under_isa(GetParam(), [&] { softmax(x, got); return 0; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i], ref[i], 1e-5F) << "n=" << n << " i=" << i;
    }
  }
}

TEST_P(SimdParity, SoftmaxMaskedEntriesAreExactZeros) {
  // The eviction policies test probs == 0.0F to recognize masked slots, so
  // -inf logits must map to exact zeros in every variant — including -inf
  // lanes inside a full vector and in the scalar tail.
  Rng rng(18);
  for (const std::size_t n : kLengths) {
    if (n < 5) continue;  // three masked slots must leave live entries
    auto x = random_vec(rng, n, 3.0F);
    x[0] = -kInf;
    x[n / 2] = -kInf;
    x[n - 1] = -kInf;
    std::vector<float> out(n, 7.0F);
    under_isa(GetParam(), [&] { softmax(x, out); return 0; });
    EXPECT_EQ(out[0], 0.0F) << "n=" << n;
    EXPECT_EQ(out[n / 2], 0.0F) << "n=" << n;
    EXPECT_EQ(out[n - 1], 0.0F) << "n=" << n;
    double sum = 0.0;
    for (const float v : out) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-4) << "n=" << n;
  }
}

TEST_P(SimdParity, SoftmaxAllMaskedRowIsAllZeros) {
  for (const std::size_t n : {1U, 7U, 8U, 9U, 33U}) {
    const std::vector<float> x(n, -kInf);
    std::vector<float> out(n, 7.0F);
    under_isa(GetParam(), [&] { softmax(x, out); return 0; });
    for (const float v : out) EXPECT_EQ(v, 0.0F) << "n=" << n;
    under_isa(GetParam(),
              [&] { softmax_temperature(x, out, 1.7); return 0; });
    for (const float v : out) EXPECT_EQ(v, 0.0F) << "n=" << n;
  }
}

TEST_P(SimdParity, SoftmaxSupportsAliasedInputOutput) {
  // softmax(x, x) — the in-place form some callers use. The variants read
  // the whole input before the first store per pass, so aliasing must
  // give the same answer as the out-of-place call.
  Rng rng(19);
  for (const std::size_t n : kLengths) {
    const auto x = random_vec(rng, n, 3.0F);
    std::vector<float> ref(n);
    under_isa(cpu::CpuIsa::kScalar, [&] { softmax(x, ref); return 0; });
    std::vector<float> inplace = x;
    under_isa(GetParam(), [&] { softmax(inplace, inplace); return 0; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(inplace[i], ref[i], 1e-5F) << "n=" << n << " i=" << i;
    }
    std::vector<float> inplace_t = x;
    under_isa(cpu::CpuIsa::kScalar,
              [&] { softmax_temperature(x, ref, 0.8); return 0; });
    under_isa(GetParam(), [&] {
      softmax_temperature(inplace_t, inplace_t, 0.8);
      return 0;
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(inplace_t[i], ref[i], 1e-5F) << "n=" << n << " i=" << i;
    }
  }
}

model::ModelConfig tiny_config(model::PositionalKind pos) {
  model::ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.positional = pos;
  cfg.max_seq_len = 128;
  return cfg;
}

std::vector<model::Token> make_prompt(std::size_t n) {
  std::vector<model::Token> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<model::Token>((i * 7 + 5) % 64);
  }
  return p;
}

/// One fused decode attention step over a deterministically filled cache.
model::AttentionResult attend_once(const model::ModelConfig& cfg,
                                   kv::KvCache& cache, std::size_t ctx) {
  const model::ModelWeights w = model::build_weights(cfg);
  Rng rng(21);
  std::vector<float> row(cache.row_width());
  for (std::size_t i = 0; i < ctx; ++i) {
    for (float& v : row) v = static_cast<float>(rng.normal());
    cache.append(row, row, i);
  }
  Tensor x({1, cfg.d_model});
  for (float& v : x.span()) v = static_cast<float>(rng.normal());
  const std::size_t positions[1] = {ctx};
  return model::attention_forward(cfg, w.layers[0], x, {positions, 1},
                                  cache);
}

void expect_attention_parity(const model::AttentionResult& got,
                             const model::AttentionResult& ref) {
  ASSERT_EQ(got.context.size(), ref.context.size());
  for (std::size_t i = 0; i < ref.context.size(); ++i) {
    EXPECT_NEAR(got.context.span()[i], ref.context.span()[i],
                1e-5F * (1.0F + std::abs(ref.context.span()[i])))
        << "context " << i;
  }
  ASSERT_EQ(got.probs.size(), ref.probs.size());
  for (std::size_t i = 0; i < ref.probs.size(); ++i) {
    EXPECT_NEAR(got.probs.span()[i], ref.probs.span()[i], 1e-5F)
        << "prob " << i;
  }
}

TEST_P(SimdParity, FusedDecodeAttendMatchesScalarContiguous) {
  for (const auto pos : {model::PositionalKind::kRoPE,
                         model::PositionalKind::kALiBi,
                         model::PositionalKind::kLearned}) {
    const model::ModelConfig cfg = tiny_config(pos);
    // 37 rows: two full 16-token segments plus an odd tail under the
    // paged geometry below, and an odd key_len here.
    const std::size_t ctx = 37;
    const auto ref = under_isa(cpu::CpuIsa::kScalar, [&] {
      kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head(), ctx + 1);
      return attend_once(cfg, cache, ctx);
    });
    const auto got = under_isa(GetParam(), [&] {
      kv::ContiguousKvCache cache(cfg.n_heads, cfg.d_head(), ctx + 1);
      return attend_once(cfg, cache, ctx);
    });
    SCOPED_TRACE(model::to_string(pos));
    expect_attention_parity(got, ref);
  }
}

TEST_P(SimdParity, FusedDecodeAttendMatchesScalarPaged) {
  const model::ModelConfig cfg = tiny_config(model::PositionalKind::kRoPE);
  mem::BlockPoolConfig pc;
  pc.n_shards = 1;
  pc.block_tokens = 16;
  pc.n_heads = cfg.n_heads;
  pc.d_head = cfg.d_head();
  const std::size_t ctx = 37;  // 2 full blocks + a 5-row tail
  mem::BlockPool pool_ref(pc), pool_got(pc);
  const auto ref = under_isa(cpu::CpuIsa::kScalar, [&] {
    mem::PagedKvCache cache(pool_ref, 0);
    return attend_once(cfg, cache, ctx);
  });
  const auto got = under_isa(GetParam(), [&] {
    mem::PagedKvCache cache(pool_got, 0);
    return attend_once(cfg, cache, ctx);
  });
  expect_attention_parity(got, ref);
}

TEST_P(SimdParity, TransformerEndToEndMatchesScalar) {
  // Full-stack parity: prefill + 4 decode steps with live eviction, over
  // every policy x positional family, run once under the scalar dispatch
  // and once under the parameter ISA. Policies are re-seeded per run, so
  // score noise is identical and only kernel arithmetic differs.
  const kv::PolicyKind policies[] = {
      kv::PolicyKind::kFull,         kv::PolicyKind::kWindow,
      kv::PolicyKind::kRandom,       kv::PolicyKind::kStreamingLLM,
      kv::PolicyKind::kH2O,          kv::PolicyKind::kKeyformer};
  const model::PositionalKind positions[] = {model::PositionalKind::kRoPE,
                                             model::PositionalKind::kALiBi,
                                             model::PositionalKind::kLearned};
  const auto prompt = make_prompt(16);
  for (const auto pos : positions) {
    for (const auto kind : policies) {
      const auto run = [&](cpu::CpuIsa isa) {
        return under_isa(isa, [&] {
          model::Transformer m(tiny_config(pos));
          kv::PolicyConfig pc;
          pc.kind = kind;
          pc.seed = 99;
          pc.keyformer.score.seed = 99;
          const auto policy = kv::make_policy(pc);
          policy->set_budget(kv::make_budget(prompt.size(), 0.5));
          kv::SequenceInfo info;
          info.prompt_len = prompt.size();
          info.total_steps = 4;
          info.n_layers = 2;
          info.n_heads = 2;
          policy->begin_sequence(info);
          m.prefill(prompt, *policy, 4);
          std::vector<std::vector<float>> steps;
          for (std::size_t t = 1; t <= 4; ++t) {
            steps.push_back(m.decode(static_cast<model::Token>(t),
                                     prompt.size() + t - 1, t, 4, *policy));
          }
          return steps;
        });
      };
      const auto ref = run(cpu::CpuIsa::kScalar);
      const auto got = run(GetParam());
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t t = 0; t < ref.size(); ++t) {
        ASSERT_EQ(got[t].size(), ref[t].size());
        for (std::size_t i = 0; i < ref[t].size(); ++i) {
          EXPECT_NEAR(got[t][i], ref[t][i], 1e-4F)
              << to_string(kind) << "/" << model::to_string(pos) << " step "
              << t << " logit " << i;
        }
      }
    }
  }
}

TEST_P(SimdParity, TransformerPagedStateMatchesScalar) {
  // Same end-to-end check through a caller-owned paged state: the fused
  // attend streams multi-segment block chains instead of one arena.
  const model::ModelConfig cfg = tiny_config(model::PositionalKind::kRoPE);
  const auto prompt = make_prompt(16);
  const auto run = [&](cpu::CpuIsa isa) {
    return under_isa(isa, [&] {
      mem::BlockPoolConfig pc;
      pc.n_shards = 1;
      pc.block_tokens = 4;  // multi-block chains from a 16-token prompt
      pc.n_heads = cfg.n_heads;
      pc.d_head = cfg.d_head();
      mem::BlockPool pool(pc);
      model::Transformer m(cfg);
      kv::SequenceKvState state(pool, 0, cfg.n_layers);
      kv::KeyformerPolicy policy;
      policy.set_budget(kv::make_budget(prompt.size(), 0.5));
      kv::SequenceInfo info;
      info.prompt_len = prompt.size();
      info.total_steps = 4;
      info.n_layers = cfg.n_layers;
      info.n_heads = cfg.n_heads;
      policy.begin_sequence(info);
      m.prefill(state, prompt, policy, 4);
      std::vector<std::vector<float>> steps;
      for (std::size_t t = 1; t <= 4; ++t) {
        steps.push_back(m.decode(state, static_cast<model::Token>(t),
                                 prompt.size() + t - 1, t, 4, policy));
      }
      return steps;
    });
  };
  const auto ref = run(cpu::CpuIsa::kScalar);
  const auto got = run(GetParam());
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t t = 0; t < ref.size(); ++t) {
    for (std::size_t i = 0; i < ref[t].size(); ++i) {
      EXPECT_NEAR(got[t][i], ref[t][i], 1e-4F)
          << "step " << t << " logit " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIsas, SimdParity,
    ::testing::Values(cpu::CpuIsa::kScalar, cpu::CpuIsa::kAvx2,
                      cpu::CpuIsa::kAvx512),
    [](const ::testing::TestParamInfo<cpu::CpuIsa>& info) {
      return std::string(cpu::isa_name(info.param));
    });

}  // namespace
}  // namespace kf
