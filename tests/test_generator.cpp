#include "model/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "kvcache/policy_factory.h"

namespace kf::model {
namespace {

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.max_seq_len = 256;
  return cfg;
}

std::vector<Token> make_prompt(std::size_t n) {
  std::vector<Token> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<Token>((i * 11 + 3) % 64);
  }
  return p;
}

TEST(SelectGreedy, PicksArgmax) {
  const std::vector<float> logits{0.1F, 3.0F, -1.0F};
  EXPECT_EQ(select_greedy(logits, {}, 0.0F), 1);
}

TEST(SelectGreedy, RepetitionPenaltyShiftsChoice) {
  const std::vector<float> logits{1.0F, 1.5F, 0.0F};
  const std::vector<Token> recent{1};
  EXPECT_EQ(select_greedy(logits, recent, 1.0F), 0);
  EXPECT_EQ(select_greedy(logits, recent, 0.0F), 1);
}

TEST(SelectGreedy, BannedTokensNeverSelected) {
  const std::vector<float> logits{10.0F, 1.0F, 0.5F};
  const std::vector<Token> banned{0};
  EXPECT_EQ(select_greedy(logits, {}, 0.0F, banned), 1);
}

TEST(SelectGreedy, IgnoresOutOfRangeEntries) {
  const std::vector<float> logits{1.0F, 2.0F};
  const std::vector<Token> recent{-5, 99};
  EXPECT_EQ(select_greedy(logits, recent, 1.0F), 1);
}

TEST(Generate, ProducesRequestedTokenCount) {
  Transformer m(tiny_config());
  auto policy = kv::make_policy(kv::PolicyKind::kFull);
  GenerationConfig cfg;
  cfg.max_new_tokens = 12;
  const auto prompt = make_prompt(10);
  const GenerationResult r = generate(m, prompt, *policy, cfg);
  EXPECT_EQ(r.tokens.size(), 12u);
  EXPECT_EQ(r.prompt_len, 10u);
}

TEST(Generate, RejectsEmptyPrompt) {
  Transformer m(tiny_config());
  auto policy = kv::make_policy(kv::PolicyKind::kFull);
  EXPECT_THROW(generate(m, {}, *policy, GenerationConfig{}),
               std::invalid_argument);
}

TEST(Generate, Deterministic) {
  Transformer m(tiny_config());
  auto policy = kv::make_policy(kv::PolicyKind::kKeyformer);
  GenerationConfig cfg;
  cfg.max_new_tokens = 10;
  cfg.cache_ratio = 0.5;
  const auto prompt = make_prompt(24);
  const GenerationResult a = generate(m, prompt, *policy, cfg);
  const GenerationResult b = generate(m, prompt, *policy, cfg);
  EXPECT_EQ(a.tokens, b.tokens);
}

TEST(Generate, FullAttentionCacheGrows) {
  Transformer m(tiny_config());
  auto policy = kv::make_policy(kv::PolicyKind::kFull);
  GenerationConfig cfg;
  cfg.max_new_tokens = 8;
  const auto prompt = make_prompt(10);
  const GenerationResult r = generate(m, prompt, *policy, cfg);
  // Prompt + 7 decode appends (the last generated token is never fed back).
  for (const std::size_t size : r.final_cache_sizes) {
    EXPECT_EQ(size, 10u + 7u);
  }
}

class ReducedCacheBudget : public ::testing::TestWithParam<double> {};

TEST_P(ReducedCacheBudget, StaticCacheSizeDuringGeneration) {
  const double ratio = GetParam();
  Transformer m(tiny_config());
  auto policy = kv::make_policy(kv::PolicyKind::kKeyformer);
  GenerationConfig cfg;
  cfg.max_new_tokens = 8;
  cfg.cache_ratio = ratio;
  const auto prompt = make_prompt(40);
  const GenerationResult r = generate(m, prompt, *policy, cfg);
  const kv::CacheBudget expected = kv::make_budget(40, ratio);
  EXPECT_EQ(r.budget.max_tokens, expected.max_tokens);
  for (const std::size_t size : r.final_cache_sizes) {
    EXPECT_EQ(size, expected.max_tokens);
  }
  // Transiently the cache holds k + 1 entries (append then evict).
  EXPECT_LE(r.peak_cache_tokens,
            std::max<std::size_t>(40, expected.max_tokens + 1));
}

INSTANTIATE_TEST_SUITE_P(Ratios, ReducedCacheBudget,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

TEST(Generate, EosStopsEarly) {
  Transformer m(tiny_config());
  auto policy = kv::make_policy(kv::PolicyKind::kFull);
  GenerationConfig cfg;
  cfg.max_new_tokens = 50;
  // Force every selection to the same token by banning nothing and making
  // eos whatever gets generated first.
  const auto prompt = make_prompt(8);
  const GenerationResult probe = generate(m, prompt, *policy, cfg);
  ASSERT_FALSE(probe.tokens.empty());
  cfg.eos_token = probe.tokens[0];
  const GenerationResult r = generate(m, prompt, *policy, cfg);
  EXPECT_EQ(r.tokens.size(), 1u);
  EXPECT_EQ(r.tokens[0], cfg.eos_token);
}

TEST(Generate, BannedTokensAbsentFromOutput) {
  Transformer m(tiny_config());
  auto policy = kv::make_policy(kv::PolicyKind::kFull);
  GenerationConfig cfg;
  cfg.max_new_tokens = 16;
  cfg.banned_tokens = {0, 1, 2, 3};
  const GenerationResult r = generate(m, make_prompt(10), *policy, cfg);
  for (const Token t : r.tokens) {
    EXPECT_GT(t, 3);
  }
}

TEST(Generate, RepetitionPenaltyReducesDuplicates) {
  Transformer m(tiny_config());
  auto policy = kv::make_policy(kv::PolicyKind::kFull);
  GenerationConfig with;
  with.max_new_tokens = 16;
  with.repetition_penalty = 4.0F;
  GenerationConfig without = with;
  without.repetition_penalty = 0.0F;
  const auto prompt = make_prompt(12);
  const auto count_distinct = [](const std::vector<Token>& ts) {
    std::vector<Token> u = ts;
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
    return u.size();
  };
  const GenerationResult a = generate(m, prompt, *policy, with);
  const GenerationResult b = generate(m, prompt, *policy, without);
  EXPECT_GE(count_distinct(a.tokens), count_distinct(b.tokens));
}

TEST(Generate, PerPhaseTimingRecorded) {
  Transformer m(tiny_config());
  auto policy = kv::make_policy(kv::PolicyKind::kFull);
  GenerationConfig cfg;
  cfg.max_new_tokens = 4;
  const GenerationResult r = generate(m, make_prompt(6), *policy, cfg);
  EXPECT_GT(r.prefill_seconds, 0.0);
  EXPECT_GT(r.decode_seconds, 0.0);
  EXPECT_GT(r.wall_seconds(), 0.0);
  // 4 tokens: 1 from prefill logits + 3 decode steps.
  EXPECT_NEAR(r.decode_tokens_per_s(), 3.0 / r.decode_seconds, 1e-9);
}

}  // namespace
}  // namespace kf::model
