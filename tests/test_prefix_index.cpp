#include "mem/prefix_index.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mem/paged_kv_cache.h"

namespace kf::mem {
namespace {

constexpr std::size_t kLayers = 2;
constexpr std::size_t kHeads = 2;
constexpr std::size_t kDHead = 3;
constexpr std::size_t kBlockTokens = 4;

BlockPoolConfig pool_config(std::size_t shards = 1,
                            std::size_t blocks_per_shard = 0) {
  BlockPoolConfig cfg;
  cfg.n_shards = shards;
  cfg.blocks_per_shard = blocks_per_shard;
  cfg.block_tokens = kBlockTokens;
  cfg.n_heads = kHeads;
  cfg.d_head = kDHead;
  return cfg;
}

PrefixIndexConfig index_config(std::size_t max_blocks = 0) {
  PrefixIndexConfig cfg;
  cfg.n_layers = kLayers;
  cfg.max_blocks = max_blocks;
  return cfg;
}

/// A paged state on `shard` whose layer caches hold `run` as rows
/// 0..run-1 (K row value encodes (layer, token)) with scores token * (h+1)
/// + layer.
kv::SequenceKvState fill_state(BlockPool& pool, std::size_t shard,
                               std::span<const PrefixToken> run) {
  kv::SequenceKvState state(pool, shard, kLayers);
  for (std::size_t l = 0; l < kLayers; ++l) {
    auto& cache = state.layer(l);
    for (std::size_t t = 0; t < run.size(); ++t) {
      std::vector<float> k(cache.row_width(),
                           static_cast<float>(run[t]) + 0.5F * l);
      std::vector<float> v(cache.row_width(),
                           1000.0F + static_cast<float>(t));
      cache.append(k, v, t);
      for (std::size_t h = 0; h < kHeads; ++h) {
        cache.add_score(h, t, static_cast<double>(t * (h + 1) + l));
      }
    }
  }
  return state;
}

std::vector<PrefixToken> make_run(std::size_t n, PrefixToken base = 0) {
  std::vector<PrefixToken> run(n);
  std::iota(run.begin(), run.end(), base);
  return run;
}

TEST(PrefixIndex, InsertSharesTheLiveChainWithoutCopying) {
  BlockPool pool(pool_config());
  PrefixIndex index(pool, index_config());
  const auto run = make_run(8);
  auto state = fill_state(pool, 0, run);

  const PrefixEntry* entry = index.insert(run, state, {});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->tokens(), 8u);
  EXPECT_EQ(entry->blocks_per_layer(), 2u);
  EXPECT_TRUE(index.resident_on(entry, 0));
  // Shared, not copied: physical used stays at the state's own blocks,
  // each now refcounted by the index too; the index reserved its share.
  EXPECT_EQ(pool.stats().used_blocks, kLayers * 2);
  EXPECT_EQ(index.blocks_held(), kLayers * 2);
  EXPECT_EQ(pool.shard_stats(0).reserved_blocks, kLayers * 2);
  const auto* paged = dynamic_cast<const PagedKvCache*>(&state.layer(0));
  EXPECT_EQ(pool.refcount(paged->blocks()[0]), 2u);
  // The chain survives the inserting sequence.
  state.clear();
  EXPECT_EQ(pool.stats().used_blocks, kLayers * 2);
}

TEST(PrefixIndex, InsertRejectsIneligibleRuns) {
  BlockPool pool(pool_config());
  PrefixIndex index(pool, index_config());
  const auto run = make_run(8);
  auto state = fill_state(pool, 0, run);
  // Not block-aligned.
  EXPECT_EQ(index.insert(std::span(run).first(6), state, {}), nullptr);
  // Shorter than one block (min_tokens floor).
  EXPECT_EQ(index.insert(std::span(run).first(0), state, {}), nullptr);
  // Duplicate insert returns the existing entry.
  const PrefixEntry* a = index.insert(run, state, {});
  const PrefixEntry* b = index.insert(run, state, {});
  EXPECT_EQ(a, b);
  EXPECT_EQ(index.stats().insertions, 1u);
}

TEST(PrefixIndex, LookupFindsLongestIndexedPrefix) {
  BlockPool pool(pool_config());
  PrefixIndex index(pool, index_config());
  const auto long_run = make_run(12);
  const std::span<const PrefixToken> short_run(long_run.data(), 4);
  auto state_a = fill_state(pool, 0, short_run);
  auto state_b = fill_state(pool, 0, long_run);
  ASSERT_NE(index.insert(short_run, state_a, {}), nullptr);
  const PrefixEntry* longer = index.insert(long_run, state_b, {});
  ASSERT_NE(longer, nullptr);

  // A prompt extending the long run matches the longest entry ...
  auto prompt = make_run(20);
  EXPECT_EQ(index.lookup(prompt, prompt.size() - 1), longer);
  // ... unless the caller caps the match below it.
  EXPECT_EQ(index.lookup(prompt, 11)->tokens(), 4u);
  // A prompt diverging after 4 tokens falls back to the short entry.
  prompt[5] = 999;
  EXPECT_EQ(index.lookup(prompt, prompt.size() - 1)->tokens(), 4u);
  // A prompt diverging immediately misses.
  prompt[0] = 999;
  EXPECT_EQ(index.lookup(prompt, prompt.size() - 1), nullptr);
  EXPECT_EQ(index.stats().lookups, 4u);
  EXPECT_EQ(index.stats().lookup_hits, 3u);
}

TEST(PrefixIndex, AdoptSeedsCachesFromTheSharedChain) {
  BlockPool pool(pool_config());
  PrefixIndex index(pool, index_config());
  const auto run = make_run(8);
  auto donor = fill_state(pool, 0, run);
  const PrefixEntry* entry = index.insert(run, donor, {1.0, 2.0});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->policy_scores().size(), 2u);

  kv::SequenceKvState reader(pool, 0, kLayers);
  ASSERT_TRUE(index.adopt(entry, reader));
  for (std::size_t l = 0; l < kLayers; ++l) {
    const auto& cache = reader.layer(l);
    ASSERT_EQ(cache.size(), 8u);
    for (std::size_t t = 0; t < 8; ++t) {
      EXPECT_EQ(cache.key_row(t), donor.layer(l).key_row(t));
      EXPECT_EQ(cache.original_position(t), t);
    }
    for (std::size_t h = 0; h < kHeads; ++h) {
      EXPECT_EQ(cache.scores(h)[7], static_cast<double>(7 * (h + 1) + l));
    }
  }
  // Donor + index + reader all reference the chain; one physical copy.
  EXPECT_EQ(pool.stats().used_blocks, kLayers * 2);
}

TEST(PrefixIndex, AdoptReplicatesAcrossShards) {
  BlockPool pool(pool_config(/*shards=*/2, /*blocks_per_shard=*/16));
  PrefixIndex index(pool, index_config());
  const auto run = make_run(8);
  auto donor = fill_state(pool, 0, run);
  const PrefixEntry* entry = index.insert(run, donor, {});
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(index.resident_on(entry, 1));

  kv::SequenceKvState reader(pool, 1, kLayers);
  ASSERT_TRUE(index.adopt(entry, reader));
  EXPECT_TRUE(index.resident_on(entry, 1));
  EXPECT_EQ(index.stats().replications, 1u);
  // The replica is a real copy on shard 1, reserved there.
  EXPECT_EQ(pool.shard_stats(1).used_blocks, kLayers * 2);
  EXPECT_EQ(pool.shard_stats(1).reserved_blocks, kLayers * 2);
  EXPECT_EQ(reader.layer(0).key_row(3), donor.layer(0).key_row(3));
  // A second shard-1 adopter shares the replica instead of copying again.
  kv::SequenceKvState reader2(pool, 1, kLayers);
  ASSERT_TRUE(index.adopt(entry, reader2));
  EXPECT_EQ(index.stats().replications, 1u);
  EXPECT_EQ(pool.shard_stats(1).used_blocks, kLayers * 2);
}

TEST(PrefixIndex, LruTrimUnderBlockBudgetSkipsPinned) {
  BlockPool pool(pool_config());
  // Budget fits exactly two 2-block-per-layer entries.
  PrefixIndex index(pool, index_config(/*max_blocks=*/2 * kLayers * 2));
  const auto run_a = make_run(8, 0);
  const auto run_b = make_run(8, 100);
  const auto run_c = make_run(8, 200);
  auto state_a = fill_state(pool, 0, run_a);
  auto state_b = fill_state(pool, 0, run_b);
  auto state_c = fill_state(pool, 0, run_c);

  const PrefixEntry* a = index.insert(run_a, state_a, {});
  const PrefixEntry* b = index.insert(run_b, state_b, {});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Touch a so b becomes LRU; inserting c must trim b.
  index.lookup(run_a, run_a.size());
  ASSERT_NE(index.insert(run_c, state_c, {}), nullptr);
  EXPECT_EQ(index.stats().entries, 2u);
  EXPECT_EQ(index.stats().trims, 1u);
  EXPECT_EQ(index.lookup(run_b, run_b.size()), nullptr);
  EXPECT_NE(index.lookup(run_a, run_a.size()), nullptr);

  // Pin the LRU entry: the next insert has no victim and fails.
  const PrefixEntry* lru = index.lru_candidate(/*include_pinned=*/false);
  ASSERT_NE(lru, nullptr);
  index.pin(lru);
  const auto run_d = make_run(8, 300);
  auto state_d = fill_state(pool, 0, run_d);
  EXPECT_NE(index.lru_candidate(/*include_pinned=*/false), lru);
  index.pin(index.lru_candidate(/*include_pinned=*/false));
  EXPECT_EQ(index.insert(run_d, state_d, {}), nullptr);
  index.unpin(lru);
  ASSERT_NE(index.insert(run_d, state_d, {}), nullptr);
}

TEST(PrefixIndex, ReplicationUnderTightBudgetNeverDropsTheSourceEntry) {
  // Regression: with a block budget that fits exactly one chain, adopting
  // on a second shard needs room for a replica, and the LRU victim
  // make_room() finds is the very entry being replicated. The replication
  // must fail cleanly (entry intact, usable on its home shard) — not
  // read through a freed chain.
  BlockPool pool(pool_config(/*shards=*/2, /*blocks_per_shard=*/16));
  PrefixIndex index(pool, index_config(/*max_blocks=*/kLayers * 2));
  const auto run = make_run(8);
  auto donor = fill_state(pool, 0, run);
  const PrefixEntry* entry = index.insert(run, donor, {});
  ASSERT_NE(entry, nullptr);

  kv::SequenceKvState cross(pool, 1, kLayers);
  EXPECT_FALSE(index.adopt(entry, cross));  // no room for a replica
  // The entry survived and still adopts on its resident shard.
  EXPECT_EQ(index.stats().entries, 1u);
  EXPECT_EQ(index.lookup(run, run.size()), entry);
  kv::SequenceKvState local(pool, 0, kLayers);
  EXPECT_TRUE(index.adopt(entry, local));
  EXPECT_EQ(local.layer(0).key_row(3), donor.layer(0).key_row(3));
}

TEST(PrefixIndex, AdoptReplicationTrimKeepsSurvivingRecordsStable) {
  // Regression: adopt() holds the adoptee's EntryRec across
  // replicate_locked() -> make_room_locked(), which erases the LRU victim
  // from the entry container. When entries lived in a std::vector, erasing
  // a victim inserted *earlier* than the adoptee shifted the vector and
  // left the held reference dangling — the post-replication pin decrement
  // and chain read then touched the wrong record (pins(B) stuck at 1
  // below, chains corrupted). Records must stay address-stable across
  // trims of other entries.
  BlockPool pool(pool_config(/*shards=*/2, /*blocks_per_shard=*/16));
  // Budget fits exactly two 2-block-per-layer chains: A plus B, no replica.
  PrefixIndex index(pool, index_config(/*max_blocks=*/2 * kLayers * 2));
  const auto run_a = make_run(8, 0);
  const auto run_b = make_run(8, 100);
  auto state_a = fill_state(pool, 0, run_a);
  auto state_b = fill_state(pool, 0, run_b);
  const PrefixEntry* a = index.insert(run_a, state_a, {});
  const PrefixEntry* b = index.insert(run_b, state_b, {});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);  // b is newer, so a is the LRU victim

  // Replicating b onto shard 1 needs 4 blocks over budget: make_room
  // drops a (the earlier-inserted record) mid-adopt.
  kv::SequenceKvState reader(pool, 1, kLayers);
  ASSERT_TRUE(index.adopt(b, reader));
  EXPECT_EQ(index.stats().entries, 1u);
  EXPECT_EQ(index.stats().trims, 1u);
  EXPECT_TRUE(index.resident_on(b, 1));
  // The adopt-internal pin was taken and released on the SAME record.
  EXPECT_EQ(index.pins(b), 0u);
  // The adopted rows came from b's chain, untouched by the trim.
  for (std::size_t l = 0; l < kLayers; ++l) {
    ASSERT_EQ(reader.layer(l).size(), 8u);
    for (std::size_t t = 0; t < 8; ++t) {
      EXPECT_EQ(reader.layer(l).key_row(t), state_b.layer(l).key_row(t));
    }
  }
  // b's bookkeeping is intact: recency, lookup, and a clean drop.
  EXPECT_EQ(index.lookup(run_b, run_b.size()), b);
  EXPECT_EQ(index.lookup(run_a, run_a.size()), nullptr);
  reader.clear();
  EXPECT_NO_THROW(index.drop(b));
  EXPECT_EQ(index.blocks_held(), 0u);
  EXPECT_EQ(pool.stats().reserved_blocks, 0u);
}

TEST(PrefixIndex, TryDropIsAtomicOnPinState) {
  BlockPool pool(pool_config());
  PrefixIndex index(pool, index_config());
  const auto run = make_run(8);
  auto state = fill_state(pool, 0, run);
  const PrefixEntry* entry = index.insert(run, state, {});
  ASSERT_NE(entry, nullptr);
  index.pin(entry);
  EXPECT_FALSE(index.try_drop(entry));  // pinned: refused, never throws
  EXPECT_EQ(index.stats().entries, 1u);
  index.unpin(entry);
  EXPECT_TRUE(index.try_drop(entry));
  EXPECT_EQ(index.stats().entries, 0u);
  EXPECT_EQ(index.blocks_held(), 0u);
}

TEST(PrefixIndex, RevisionMovesOnInsertAndDrop) {
  BlockPool pool(pool_config());
  PrefixIndex index(pool, index_config());
  const std::uint64_t r0 = index.revision();
  const auto run = make_run(8);
  auto state = fill_state(pool, 0, run);
  const PrefixEntry* entry = index.insert(run, state, {});
  ASSERT_NE(entry, nullptr);
  EXPECT_GT(index.revision(), r0);
  const std::uint64_t r1 = index.revision();
  index.lookup(run, run.size());  // reads never move the revision
  EXPECT_EQ(index.revision(), r1);
  index.drop(entry);
  EXPECT_GT(index.revision(), r1);
}

TEST(PrefixIndex, DropAndClearReturnEveryBlockAndReservation) {
  BlockPool pool(pool_config());
  PrefixIndex index(pool, index_config());
  const auto run = make_run(8);
  {
    auto state = fill_state(pool, 0, run);
    ASSERT_NE(index.insert(run, state, {}), nullptr);
  }  // inserting state gone; the index holds the only references
  EXPECT_EQ(pool.stats().used_blocks, kLayers * 2);
  EXPECT_EQ(pool.stats().reserved_blocks, kLayers * 2);
  index.clear();
  EXPECT_EQ(index.stats().entries, 0u);
  EXPECT_EQ(index.blocks_held(), 0u);
  EXPECT_EQ(pool.stats().used_blocks, 0u);
  EXPECT_EQ(pool.stats().reserved_blocks, 0u);
}

TEST(PrefixIndex, InsertReservationPressureTrimsResidentEntries) {
  // Pool of 10 blocks per shard: one 4-block entry plus a 4-block state
  // leaves 2 unreserved, so indexing a second state must trim the first
  // entry to find room (its blocks are the only reclaimable ones).
  BlockPool pool(pool_config(/*shards=*/1, /*blocks_per_shard=*/10));
  PrefixIndex index(pool, index_config());
  const auto run_a = make_run(8, 0);
  const auto run_b = make_run(8, 100);
  auto state_a = fill_state(pool, 0, run_a);
  ASSERT_NE(index.insert(run_a, state_a, {}), nullptr);
  state_a.clear();
  auto state_b = fill_state(pool, 0, run_b);
  ASSERT_TRUE(pool.try_reserve(0, 4));  // squeeze: 4 index + 4 fake = 8/12
  const PrefixEntry* b = index.insert(run_b, state_b, {});
  ASSERT_NE(b, nullptr);  // trimmed entry a to fit
  EXPECT_EQ(index.stats().trims, 1u);
  EXPECT_EQ(index.lookup(run_a, run_a.size()), nullptr);
  pool.unreserve(0, 4);
}

}  // namespace
}  // namespace kf::mem
