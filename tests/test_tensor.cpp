#include "core/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "core/rng.h"

namespace kf {
namespace {

TEST(Tensor, ShapeAndZeroInit) {
  Tensor t({3, 4});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.dim(1), 4u);
  EXPECT_EQ(t.size(), 12u);
  for (const float v : t.span()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, AtAndRow) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0F;
  EXPECT_EQ(t.row(1)[2], 5.0F);
  EXPECT_EQ(t.at(0, 0), 0.0F);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t.at(0, 5) = 3.0F;
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.at(1, 1), 3.0F);  // same flat index 5
}

TEST(Tensor, ReshapeRejectsSizeChange) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, RejectsRank5) {
  EXPECT_THROW(Tensor({1, 1, 1, 1, 1}), std::invalid_argument);
}

TEST(Matmul, MatchesNaiveReference) {
  Rng rng(1);
  const std::size_t m = 13, k = 17, n = 11;
  std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  matmul(a, b, c, m, k, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      ref[i * n + j] = static_cast<float>(acc);
    }
  }
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4F) << "at " << i;
  }
}

TEST(Matmul, LargeProblemUsesThreadsConsistently) {
  // Big enough to trigger the threaded path; must equal the naive result.
  Rng rng(2);
  const std::size_t m = 64, k = 96, n = 80;
  std::vector<float> a(m * k), b(k * n), c(m * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  matmul(a, b, c, m, k, n);
  // Spot-check a few entries against naive computation.
  for (const std::size_t idx : {std::size_t{0}, m * n / 2, m * n - 1}) {
    const std::size_t i = idx / n, j = idx % n;
    double acc = 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
    }
    EXPECT_NEAR(c[idx], acc, 1e-3);
  }
}

TEST(MatmulTransposedB, MatchesMatmul) {
  Rng rng(3);
  const std::size_t m = 9, k = 15, n = 7;
  std::vector<float> a(m * k), b(n * k), bt(k * n), c1(m * n), c2(m * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) bt[j * n + i] = b[i * k + j];
  }
  matmul_transposed_b(a, b, c1, m, k, n);
  matmul(a, bt, c2, m, k, n);
  for (std::size_t i = 0; i < m * n; ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4F);
}

TEST(Matvec, MatchesNaive) {
  Rng rng(4);
  const std::size_t n = 21, k = 33;
  std::vector<float> a(n * k), x(k), y(n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : x) v = static_cast<float>(rng.normal());
  matvec(a, x, y, n, k);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      acc += static_cast<double>(a[i * k + j]) * x[j];
    }
    EXPECT_NEAR(y[i], acc, 1e-4);
  }
}

TEST(Vecmat, MatchesNaive) {
  Rng rng(5);
  const std::size_t n = 12, k = 8;
  std::vector<float> a(n * k), x(n), y(k);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : x) v = static_cast<float>(rng.normal());
  vecmat(x, a, y, n, k);
  for (std::size_t j = 0; j < k; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += static_cast<double>(x[i]) * a[i * k + j];
    }
    EXPECT_NEAR(y[j], acc, 1e-4);
  }
}

TEST(Vecmat, ParallelThresholdMatchesNaive) {
  // Large enough that n * k crosses the threading threshold (2^18): the
  // column-parallel path must agree with the naive accumulation.
  Rng rng(6);
  const std::size_t n = 700, k = 600;
  std::vector<float> a(n * k), x(n), y(k);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : x) v = static_cast<float>(rng.normal());
  vecmat(x, a, y, n, k);
  for (std::size_t j = 0; j < k; j += 97) {  // sample columns
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += static_cast<double>(x[i]) * a[i * k + j];
    }
    EXPECT_NEAR(y[j], acc, 1e-2) << "column " << j;
  }
}

TEST(Dot, Basic) {
  std::vector<float> a{1, 2, 3};
  std::vector<float> b{4, 5, 6};
  EXPECT_FLOAT_EQ(dot(a, b), 32.0F);
}

TEST(Dot, UnrolledTailsMatchNaive) {
  // Lengths around the 4-wide unroll boundary, including the remainder
  // loop.
  Rng rng(7);
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 63u, 64u, 65u}) {
    std::vector<float> a(n), b(n);
    for (auto& v : a) v = static_cast<float>(rng.normal());
    for (auto& v : b) v = static_cast<float>(rng.normal());
    double expect = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      expect += static_cast<double>(a[i]) * b[i];
    }
    EXPECT_NEAR(dot(a, b), expect, 1e-4) << "n=" << n;
  }
}

TEST(Axpy, AccumulatesScaledVector) {
  std::vector<float> y{1.0F, 2.0F, 3.0F};
  std::vector<float> x{10.0F, 20.0F, 30.0F};
  axpy(0.5F, x, y);
  EXPECT_FLOAT_EQ(y[0], 6.0F);
  EXPECT_FLOAT_EQ(y[1], 12.0F);
  EXPECT_FLOAT_EQ(y[2], 18.0F);
  axpy(0.0F, x, y);  // no-op scale
  EXPECT_FLOAT_EQ(y[0], 6.0F);
}

TEST(AddScale, InPlace) {
  std::vector<float> y{1, 2};
  std::vector<float> x{3, 4};
  add_inplace(y, x);
  EXPECT_FLOAT_EQ(y[0], 4.0F);
  scale_inplace(y, 0.5F);
  EXPECT_FLOAT_EQ(y[1], 3.0F);
}

TEST(Gelu, KnownValues) {
  std::vector<float> y{0.0F, 1.0F, -1.0F, 3.0F};
  gelu_inplace(y);
  EXPECT_NEAR(y[0], 0.0F, 1e-6F);
  EXPECT_NEAR(y[1], 0.8412F, 1e-3F);
  EXPECT_NEAR(y[2], -0.1588F, 1e-3F);
  EXPECT_NEAR(y[3], 2.9964F, 1e-3F);
}

TEST(LayerNorm, NormalizesToUnitVariance) {
  Rng rng(6);
  const std::size_t d = 64;
  std::vector<float> x(d), gamma(d, 1.0F), beta(d, 0.0F), out(d);
  for (auto& v : x) v = static_cast<float>(rng.normal(3.0, 2.0));
  layer_norm(x, gamma, beta, out);
  double mean = 0.0, var = 0.0;
  for (const float v : out) mean += v;
  mean /= d;
  for (const float v : out) var += (v - mean) * (v - mean);
  var /= d;
  EXPECT_NEAR(mean, 0.0, 1e-4);
  EXPECT_NEAR(var, 1.0, 1e-2);
}

TEST(LayerNorm, GammaBetaApplied) {
  std::vector<float> x{1.0F, -1.0F};
  std::vector<float> gamma{2.0F, 2.0F};
  std::vector<float> beta{1.0F, 1.0F};
  std::vector<float> out(2);
  layer_norm(x, gamma, beta, out);
  EXPECT_NEAR(out[0], 3.0F, 1e-3F);
  EXPECT_NEAR(out[1], -1.0F, 1e-3F);
}

}  // namespace
}  // namespace kf
