#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace kf::eval {
namespace {

TEST(Sparsity, AllEqualRowIsDense) {
  const std::vector<float> row{0.25F, 0.25F, 0.25F, 0.25F};
  EXPECT_DOUBLE_EQ(attention_sparsity(row, 0.5, 4), 0.0);
}

TEST(Sparsity, ZeroThresholdCountsZeros) {
  const std::vector<float> row{0.5F, 0.0F, 0.5F, 0.0F};
  EXPECT_DOUBLE_EQ(attention_sparsity(row, 0.0, 4), 0.5);
}

TEST(Sparsity, ThresholdFractionOfMax) {
  const std::vector<float> row{1.0F, 0.04F, 0.5F, 0.04F};
  // threshold 5% of max (=0.05): two entries below.
  EXPECT_DOUBLE_EQ(attention_sparsity(row, 0.05, 4), 0.5);
}

TEST(Sparsity, ValidLenRestrictsDenominator) {
  const std::vector<float> row{1.0F, 0.0F, 0.0F, 0.0F};
  EXPECT_DOUBLE_EQ(attention_sparsity(row, 0.0, 2), 0.5);
}

TEST(Sparsity, MonotoneInThreshold) {
  const std::vector<float> row{1.0F, 0.3F, 0.1F, 0.02F, 0.005F};
  double prev = -1.0;
  for (const double t : {0.0, 0.01, 0.05, 0.2, 0.5}) {
    const double s = attention_sparsity(row, t, 5);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(MeanCausalSparsity, SkipsTrivialRows) {
  // 2 queries over key_len 2 with offset 0: row 0 has 1 valid entry
  // (skipped), row 1 has 2.
  const std::vector<float> probs{1.0F, 0.0F, 0.5F, 0.5F};
  const double s = mean_causal_sparsity(probs, 2, 2, 0, 0.0);
  EXPECT_DOUBLE_EQ(s, 0.0);  // row 1 is dense
}

TEST(MassCdf, ReturnsNineMonotoneFractions) {
  std::vector<double> mass(100);
  for (std::size_t i = 0; i < mass.size(); ++i) {
    mass[i] = static_cast<double>(i);
  }
  const auto cdf = attention_mass_cdf(mass);
  ASSERT_EQ(cdf.size(), 9u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i], cdf[i - 1]);
  }
  EXPECT_GT(cdf[0], 0.0);
  EXPECT_LE(cdf[8], 1.0);
}

TEST(MassCdf, ConcentratedMassSaturatesEarly) {
  std::vector<double> mass(100, 0.001);
  mass[0] = 100.0;
  const auto cdf = attention_mass_cdf(mass);
  EXPECT_GT(cdf[0], 0.99);  // top 10% holds nearly everything
}

TEST(MassCdf, UniformMassIsLinear) {
  const std::vector<double> mass(50, 1.0);
  const auto cdf = attention_mass_cdf(mass);
  for (int i = 0; i < 9; ++i) {
    EXPECT_NEAR(cdf[static_cast<std::size_t>(i)], 0.1 * (i + 1), 0.03);
  }
}

TEST(MassCdf, EmptyInputIsZeros) {
  const auto cdf = attention_mass_cdf({});
  for (const double v : cdf) EXPECT_EQ(v, 0.0);
}

TEST(RenormalizedSubset, SumsToOne) {
  const std::vector<float> full{0.1F, 0.2F, 0.3F, 0.4F};
  const std::vector<std::size_t> keep{1, 3};
  const auto sub = renormalized_subset(full, keep);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_NEAR(sub[0] + sub[1], 1.0F, 1e-6F);
  EXPECT_NEAR(sub[0], 0.2F / 0.6F, 1e-6F);
}

TEST(RenormalizedSubset, PreservesRelativeOrder) {
  const std::vector<float> full{0.05F, 0.5F, 0.15F, 0.3F};
  const std::vector<std::size_t> keep{0, 1, 3};
  const auto sub = renormalized_subset(full, keep);
  EXPECT_GT(sub[1], sub[2]);
  EXPECT_GT(sub[2], sub[0]);
}

TEST(RenormalizedSubset, AmplifiesKeptProbabilities) {
  // The Fig 4 effect: surviving entries absorb the discarded mass.
  const std::vector<float> full{0.121F, 0.111F, 0.059F, 0.273F,
                                0.197F, 0.143F, 0.029F, 0.066F};
  const std::vector<std::size_t> keep{3, 4, 5, 7};
  const auto sub = renormalized_subset(full, keep);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    EXPECT_GT(sub[i], full[keep[i]]);
  }
}

TEST(RenormalizedSubset, HandlesZeroMass) {
  const std::vector<float> full{0.0F, 0.0F};
  const auto sub = renormalized_subset(full, std::vector<std::size_t>{0});
  EXPECT_EQ(sub[0], 0.0F);
}

}  // namespace
}  // namespace kf::eval
